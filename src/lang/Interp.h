//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniConc interpreter: a small-step abstract machine with one
/// explicit control stack per thread, driven by a deterministic seeded
/// scheduler. Every shared-memory and synchronization action emits one
/// trace operation, so running a program yields exactly the event stream
/// (Figure 1 of the paper) that RoadRunner's bytecode instrumentation
/// would produce — this is the repository's substitute for the JVM
/// substrate (see DESIGN.md).
///
/// Determinism: given the same program, seed, and options, the produced
/// trace, output, and step count are identical. Different seeds yield
/// different interleavings, which is how the tests explore schedules.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_LANG_INTERP_H
#define FASTTRACK_LANG_INTERP_H

#include "lang/Ast.h"
#include "trace/Trace.h"

#include <string>

namespace ft::lang {

/// Scheduler and resource limits.
struct InterpOptions {
  uint64_t Seed = 1;

  /// Probability of a context switch at each step boundary.
  double SwitchProbability = 0.3;

  /// Abort after this many machine steps (runaway-loop guard).
  uint64_t MaxSteps = 50'000'000;

  /// Maximum threads ever spawned; bounded by the 8-bit epoch tid space.
  unsigned MaxThreads = 250;
};

/// Result of one interpretation.
struct InterpResult {
  bool Ok = false;
  Diag Error;          ///< Valid when !Ok (runtime error, deadlock, ...).
  Trace EventTrace;    ///< The emitted operation stream.
  std::string Output;  ///< Concatenated 'print' lines.
  uint64_t Steps = 0;  ///< Machine steps executed.
  /// Shared accesses whose event the elision plan suppressed (see
  /// src/analysis): the access happened, the event was never emitted.
  /// Always 0 for a program the planner has not stamped. Elision does
  /// not perturb the scheduler, so for a given program, seed, and
  /// options Output and Steps are identical with and without it.
  uint64_t EventsElided = 0;
};

/// Runs \p P under the scheduler in \p Options. \p P must have been
/// successfully resolved (see Sema.h).
InterpResult interpret(const Program &P,
                       const InterpOptions &Options = InterpOptions());

/// Convenience: compile and run \p Source. Compile-time diagnostics are
/// returned through \p Diags with Ok == false.
InterpResult runSource(std::string_view Source, std::vector<Diag> &Diags,
                       const InterpOptions &Options = InterpOptions());

} // namespace ft::lang

#endif // FASTTRACK_LANG_INTERP_H
