#include "support/Status.h"

using namespace ft;

const char *ft::statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::IoError:
    return "io-error";
  case StatusCode::ParseError:
    return "parse-error";
  case StatusCode::ValidationError:
    return "validation-error";
  case StatusCode::CheckpointError:
    return "checkpoint-error";
  case StatusCode::ResourceExhausted:
    return "resource-exhausted";
  case StatusCode::Stalled:
    return "stalled";
  case StatusCode::Cancelled:
    return "cancelled";
  case StatusCode::ToolFault:
    return "tool-fault";
  }
  return "unknown";
}

const char *ft::severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  case Severity::Fatal:
    return "fatal";
  }
  return "unknown";
}

std::string ft::toString(const Diagnostic &D) {
  std::string Out = severityName(D.Sev);
  Out += ": ";
  if (D.Line != 0) {
    Out += "line " + std::to_string(D.Line) + ": ";
  } else if (D.OpIndex != NoOpIndex) {
    Out += "op " + std::to_string(D.OpIndex) + ": ";
  }
  Out += D.Message;
  Out += " [";
  Out += statusCodeName(D.Code);
  Out += ']';
  return Out;
}

std::string Status::toString() const {
  if (ok())
    return "ok";
  return std::string(statusCodeName(Code)) + ": " + Msg;
}
