//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SINGLETRACK-style dynamic determinism checker (Sadowski, Freund,
/// Flanagan, ESOP 2009), the second downstream analysis of Section 5.2.
///
/// Where Velodrome allows an atomic block to consume external results as
/// long as no cycle forms, a deterministic block must not observe *any*
/// concurrent external effect at all: every incoming edge must originate
/// from before the block began. This is a strictly stronger property, so
/// SingleTrack reports a superset of Velodrome's violations — matching
/// its higher baseline slowdown in the paper's composition table.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CHECKERS_SINGLETRACK_H
#define FASTTRACK_CHECKERS_SINGLETRACK_H

#include "checkers/TransactionalClockBase.h"

namespace ft {

/// The determinism checker.
class SingleTrack : public TransactionalClockBase {
public:
  const char *name() const override { return "SingleTrack"; }

protected:
  void checkIncomingEdge(ThreadId T, const VectorClock &Source,
                         ThreadId From, size_t OpIndex,
                         const std::string &EdgeDesc) override;
};

} // namespace ft

#endif // FASTTRACK_CHECKERS_SINGLETRACK_H
