//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online dispatch entry point: the push-mode sibling of replay().
///
/// replay() pulls events out of an immutable Trace; an OnlineDriver is
/// handed events one at a time, in the total order they were observed, by
/// a producer that does not yet know how the execution ends — the
/// in-process runtime of src/runtime, a streaming ingester, or a test.
/// The driver applies the exact per-event semantics of the serial replay
/// loop (re-entrant lock filtering, raw-stream op indices) so that a tool
/// driven online reports byte-for-byte the warnings an offline replay of
/// the same stream would: the online/offline equivalence contract the
/// runtime's flight recorder depends on.
///
/// Because events arrive from a live program, entity counts cannot be
/// known up front. The driver is constructed with a *capacity*
/// ToolContext — the tool pre-sizes its shadow state from it exactly as
/// it would for a trace — and every incoming operation is bounds-checked
/// against that capacity.
///
/// Unlike the original (PR 3) driver, an over-capacity variable or a
/// shadow-memory budget breach no longer kills detection outright: the
/// driver carries an *overload degradation ladder* (the online analogue
/// of framework/ResourceGovernor.h, following SmartTrack's philosophy of
/// degrading work per event rather than giving up):
///
///   Full → CoarseGranularity(8) → CoarseGranularity(64)
///        → CoarseGranularity(512) → AccessSampling(1-in-8) → SyncOnly
///
/// Coarse rungs fold variable ids through a widening divisor (the
/// GranularityMap mapping of replay()); sampling delivers a deterministic
/// 1-in-N subset of accesses; SyncOnly drops all accesses. Sync events
/// (acquire/release/fork/join/volatiles) are *never* degraded, so the
/// happens-before spine stays exact on every rung. Each transition emits
/// a Warning diagnostic anchored to the raw op index. Halting remains
/// only for the failures no rung can absorb: thread/lock/volatile
/// capacity breaches, barriers, and tools that throw mid-dispatch.
///
/// The equivalence contract survives degradation because the transform is
/// applied *before* the flight recorder sees the op: offer() remaps the
/// operation in place and tells the caller whether it is part of the
/// delivered stream. Replaying a degraded capture offline therefore
/// reproduces the online warnings byte for byte — the capture *is* the
/// delivered subsequence.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_ONLINEDRIVER_H
#define FASTTRACK_FRAMEWORK_ONLINEDRIVER_H

#include "framework/Tool.h"
#include "support/Status.h"
#include "trace/ReentrancyFilter.h"

#include <functional>
#include <vector>

namespace ft {

class MemoryTracker;

/// One rung of the overload-degradation ladder.
struct DegradeStep {
  enum class Kind : uint8_t {
    /// Map variable ids through a widening divisor (fields-per-object),
    /// like ResourceGovernor's 8/64/512 rungs. Divisors are absolute,
    /// not cumulative: the step's Param replaces any earlier divisor.
    CoarseGranularity,
    /// Deliver a deterministic 1 in Param accesses; drop the rest.
    AccessSampling,
    /// Drop every access; only the sync spine reaches the tool.
    SyncOnly,
  };
  Kind K = Kind::CoarseGranularity;
  unsigned Param = 8;
};

/// Policy for stepping down under overload instead of halting. The
/// effective configuration at rung R is the cumulative result of applying
/// ladder steps [0, R): the latest coarse divisor, the latest sampling
/// modulus, and whether a SyncOnly step was crossed.
struct DegradePolicy {
  /// Pin the whole ladder off: every trigger that would have degraded
  /// halts instead (the pre-PR-5 behavior).
  bool Enabled = true;

  /// Rungs in the order they are applied. The default mirrors
  /// ResourceGovernor's divisor ladder, then sheds accesses.
  std::vector<DegradeStep> Ladder = {
      {DegradeStep::Kind::CoarseGranularity, 8},
      {DegradeStep::Kind::CoarseGranularity, 64},
      {DegradeStep::Kind::CoarseGranularity, 512},
      {DegradeStep::Kind::AccessSampling, 8},
      {DegradeStep::Kind::SyncOnly, 0},
  };

  /// Shadow-memory budget in bytes; 0 disables the budget trigger. The
  /// driver probes Tool::shadowBytes() every BudgetCheckEveryOps raw ops
  /// and steps down one rung per breached probe. Once the ladder is
  /// exhausted the run continues unbudgeted (with a Note diagnostic),
  /// exactly like the governor's final rung.
  uint64_t ShadowBudgetBytes = 0;
  unsigned BudgetCheckEveryOps = 4096;

  /// Optional tracker observing every budget probe (live/peak bytes).
  MemoryTracker *Tracker = nullptr;

  /// Ladder steps pre-applied at construction (0 = start Full). Lets the
  /// benches measure a pinned rung without manufacturing overload.
  unsigned StartRung = 0;
};

/// Options controlling one online dispatch session.
struct OnlineDriverOptions {
  /// Sentinel for the fault-injection knob below.
  static constexpr uint64_t NoFault = ~0ull;

  /// Strip redundant re-entrant lock acquires/releases before dispatch,
  /// as the serial replay loop does. Keep this in sync with the replay
  /// options used to re-check a captured stream offline.
  bool FilterReentrantLocks = true;

  /// Invoked once per new warning, immediately after the event that
  /// raised it was dispatched — the "report races as they happen" sink.
  /// Called from whichever thread calls dispatch(); may be empty.
  std::function<void(const RaceWarning &)> WarningSink;

  /// Overload-degradation policy (see DegradePolicy).
  DegradePolicy Degrade;

  /// Fault injection: the first budget probe at or after this raw op
  /// index reports a breach regardless of actual shadow size (the
  /// runtime's FaultPlan "allocation failure" hook). NoFault disables.
  uint64_t ForceBudgetBreachAtRawOp = NoFault;
};

/// Drives one Tool from a live, totally-ordered event stream.
///
/// Not thread-safe: exactly one thread (the runtime's sequencer) may call
/// offer()/dispatch()/finish(). Concurrency belongs to the producers
/// upstream; by the time events reach the driver they are already merged.
class OnlineDriver {
public:
  /// What happened to one offered operation.
  enum class DispatchOutcome : uint8_t {
    /// Part of the delivered stream: dispatched to the tool, or filtered
    /// by the re-entrant lock filter (which still consumes a raw index).
    /// A flight recorder must capture the operation as offer() left it
    /// (coarse rungs remap the variable id in place).
    Delivered,
    /// Shed by a degraded rung (sampling or SyncOnly). Not part of the
    /// delivered stream; must not be captured.
    Dropped,
    /// The driver is halted — by this operation or an earlier one.
    /// Nothing was consumed; must not be captured.
    Rejected,
  };

  /// Calls Checker.begin(Capacity); the capacity bounds the entity ids
  /// dispatch() will accept (tools index shadow state without checks).
  OnlineDriver(Tool &Checker, const ToolContext &Capacity,
               OnlineDriverOptions Options = OnlineDriverOptions());

  /// Feeds the next operation of the merged stream, applying the current
  /// degradation rung first: \p Op's variable id is remapped in place on
  /// coarse rungs, so on Delivered the caller captures \p Op as returned.
  /// Every Delivered operation consumes one raw op index — including
  /// re-entrant lock events the filter strips — so indices agree with an
  /// offline replay of the captured stream. Barrier operations cannot be
  /// dispatched online (their thread sets live in a Trace side table)
  /// and halt the driver. A tool that throws mid-dispatch halts the
  /// driver with a ToolFault diagnostic instead of unwinding into the
  /// sequencer (compose tools through ToolGroup to quarantine the
  /// thrower and keep its siblings detecting).
  DispatchOutcome offer(Operation &Op);

  /// Compatibility shim over offer(): true iff the operation was
  /// Delivered. Callers that capture the stream should use offer() to
  /// distinguish Dropped from Rejected and to see the remapped id.
  bool dispatch(const Operation &Op) {
    Operation Copy = Op;
    return offer(Copy) == DispatchOutcome::Delivered;
  }

  /// Steps one rung down the ladder on behalf of an external overload
  /// signal (the runtime's supervisor: sustained ring pressure, repeated
  /// sequencer stalls). \returns false when degradation is pinned off or
  /// the ladder is exhausted; the caller decides what to do then — the
  /// driver does not halt, because shedding continues at the final rung.
  bool requestStepDown(StatusCode Code, const std::string &Reason);

  /// Calls Checker.end() and flushes the warning sink. A throwing end()
  /// is absorbed into a ToolFault diagnostic. Idempotent.
  void finish();

  /// True once an unrecoverable operation stopped the analysis. The
  /// application may keep running; events are dropped.
  bool halted() const { return Halted; }

  /// Raw op indices consumed (== the length of a faithful capture).
  uint64_t rawOps() const { return Raw; }

  /// Events actually forwarded to the tool (post lock filtering).
  uint64_t dispatched() const { return Dispatched; }

  /// Accesses whose handler returned the pass flag.
  uint64_t accessesPassed() const { return AccessesPassed; }

  /// Accesses shed by sampling/SyncOnly rungs (not in the capture).
  uint64_t accessesDropped() const { return AccessesDropped; }

  /// Current ladder position: 0 = Full, N = ladder step N-1 applied.
  unsigned rung() const { return Rung; }

  /// Degradation transitions taken (== diagnostics emitted for them).
  unsigned degradations() const { return Degradations; }

  /// Diagnostics describing halts and degradations, anchored to the raw
  /// op index at which they happened.
  const std::vector<Diagnostic> &diags() const { return Diags; }

  const ToolContext &capacity() const { return Capacity; }

private:
  void halt(std::string Message);
  void halt(StatusCode Code, std::string Message);
  bool stepDown(StatusCode Code, const std::string &Reason);
  void applyRung();
  void probeBudget();
  void drainWarnings();

  Tool &Checker;
  ToolContext Capacity;
  OnlineDriverOptions Options;
  ReentrancyFilter Reentrancy;
  std::vector<Diagnostic> Diags;
  uint64_t Raw = 0;
  uint64_t Dispatched = 0;
  uint64_t AccessesPassed = 0;
  uint64_t AccessesDropped = 0;
  uint64_t AccessCounter = 0; ///< Accesses seen by the sampling gate.
  uint64_t NextProbe = ~0ull; ///< Raw index of the next budget probe.
  size_t SinkCursor = 0;
  unsigned Rung = 0;
  unsigned Degradations = 0;
  // Effective configuration at the current rung (derived by applyRung).
  uint32_t Divisor = 1;
  unsigned SampleEvery = 1;
  bool SyncOnlyMode = false;
  bool Halted = false;
  bool Finished = false;
};

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_ONLINEDRIVER_H
