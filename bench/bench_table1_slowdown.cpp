//===----------------------------------------------------------------------===//
//
// Experiment E2 — Table 1 (left half): instrumented running time of every
// tool on the sixteen benchmarks, reported as slowdown relative to the
// EMPTY tool (the paper normalizes against the uninstrumented program and
// measures EMPTY's own overhead separately; with a trace-replay substrate
// EMPTY *is* the uninstrumented baseline).
//
// Paper shape to reproduce (compute-bound averages, Table 1):
//   Eraser 8.6x/4.1x≈2.1 over EMPTY, MultiRace 21.7/4.1≈5.3,
//   Goldilocks 31.6/4.1≈7.7, BasicVC 89.8/4.1≈21.9, DJIT+ 20.2/4.1≈4.9,
//   FastTrack 8.5/4.1≈2.1 — i.e. FastTrack ≈ Eraser, ≈2.3x faster than
//   DJIT+, ≈10x faster than BasicVC.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/ToolRegistry.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace ft;
using namespace ft::bench;

int main(int argc, char **argv) {
  BenchReport Report("bench_table1_slowdown", argc, argv);
  banner("Table 1 (left): slowdown relative to the Empty tool");

  const std::vector<std::string> Tools = {"empty",      "eraser", "multirace",
                                          "goldilocks", "basicvc", "djit+",
                                          "fasttrack"};
  Table Out;
  Out.addHeader({"Program", "Events", "Empty(s)", "Eraser", "MultiRace",
                 "Goldilocks", "BasicVC", "DJIT+", "FastTrack"});

  std::vector<double> GeoSum(Tools.size(), 0.0);
  unsigned GeoCount = 0;

  for (const Workload &W : benchmarkSuite()) {
    Trace T = W.Generate(/*Seed=*/1, sizeFactor());
    double EmptySeconds = 0;
    std::vector<std::string> Row = {W.Name + (W.ComputeBound ? "" : "*")};
    std::vector<double> Slowdowns;
    for (size_t I = 0; I != Tools.size(); ++I) {
      auto Checker = createTool(Tools[I]);
      ReplayResult Result = timedReplay(T, *Checker);
      if (I == 0) {
        EmptySeconds = Result.Seconds;
        Row.push_back(withCommas(Result.Events));
        Row.push_back(fixed(EmptySeconds, 3));
        continue;
      }
      double Slowdown =
          EmptySeconds > 0 ? Result.Seconds / EmptySeconds : 0.0;
      Slowdowns.push_back(Slowdown);
      Row.push_back(slowdown(Slowdown));
      Report.metric(W.Name + "_" + Tools[I] + "_slowdown", Slowdown, "x");
    }
    Out.addRow(Row);
    if (W.ComputeBound) {
      ++GeoCount;
      for (size_t I = 0; I != Slowdowns.size(); ++I)
        GeoSum[I + 1] += Slowdowns[I];
    }
  }

  Out.addSeparator();
  std::vector<std::string> Avg = {"Average (compute-bound)", "", ""};
  for (size_t I = 1; I != Tools.size(); ++I) {
    Avg.push_back(slowdown(GeoSum[I] / GeoCount));
    Report.metric("avg_" + Tools[I] + "_slowdown", GeoSum[I] / GeoCount, "x");
  }
  Out.addRow(Avg);

  std::fputs(Out.render().c_str(), stdout);
  std::printf("\n('*' rows are not compute-bound and are excluded from the "
              "average, as in the paper.)\n");
  std::printf("Paper shape: FastTrack ~= Eraser, ~2.3x faster than DJIT+, "
              "~10x faster than BasicVC;\nMultiRace ~= DJIT+; Goldilocks "
              "slowest of the precise tools after BasicVC.\n");
  return Report.write() ? 0 : 1;
}
