#include "trace/TraceBuilder.h"

// TraceBuilder is header-only; this file anchors the library target.
