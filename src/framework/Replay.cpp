#include "framework/Replay.h"

#include "support/MemoryTracker.h"
#include "support/Stopwatch.h"
#include "trace/ReentrancyFilter.h"

using namespace ft;

ToolContext ft::makeToolContext(const Trace &T, const GranularityMap &Map) {
  ToolContext Context;
  Context.NumThreads = T.numThreads();
  Context.NumLocks = T.numLocks();
  Context.NumVolatiles = T.numVolatiles();
  if (Map.identity()) {
    Context.NumVars = T.numVars();
  } else {
    unsigned MaxVar = 0;
    for (VarId X = 0; X != T.numVars(); ++X)
      MaxVar = std::max(MaxVar, Map.map(X) + 1);
    Context.NumVars = MaxVar;
  }
  return Context;
}

void ft::dispatchSyncOp(Tool &Checker, const Trace &T, const Operation &Op,
                        size_t I) {
  switch (Op.Kind) {
  case OpKind::Acquire:
    Checker.onAcquire(Op.Thread, Op.Target, I);
    break;
  case OpKind::Release:
    Checker.onRelease(Op.Thread, Op.Target, I);
    break;
  case OpKind::Fork:
    Checker.onFork(Op.Thread, Op.Target, I);
    break;
  case OpKind::Join:
    Checker.onJoin(Op.Thread, Op.Target, I);
    break;
  case OpKind::VolatileRead:
    Checker.onVolatileRead(Op.Thread, Op.Target, I);
    break;
  case OpKind::VolatileWrite:
    Checker.onVolatileWrite(Op.Thread, Op.Target, I);
    break;
  case OpKind::Barrier:
    Checker.onBarrier(T.barrierSet(Op.Target), I);
    break;
  case OpKind::AtomicBegin:
    Checker.onAtomicBegin(Op.Thread, I);
    break;
  case OpKind::AtomicEnd:
    Checker.onAtomicEnd(Op.Thread, I);
    break;
  case OpKind::Read:
  case OpKind::Write:
    break; // handled by the access path
  }
}

namespace {

/// The shared replay loop. \p ForEachAccess receives the access events and
/// decides what "passed" means; sync events are dispatched via \p Sync.
/// \p Probe reports the tool-side shadow bytes for the budget governor.
/// \returns the trace index after the last processed operation — T.size()
/// on completion, earlier (with \p BudgetExceeded set) on a budget stop.
template <typename AccessFn, typename SyncFn, typename ProbeFn>
size_t replayLoop(const Trace &T, const ReplayOptions &Options,
                  const GranularityMap &Map, AccessFn &&Access, SyncFn &&Sync,
                  ProbeFn &&Probe, uint64_t &Events, bool &BudgetExceeded) {
  ReentrancyFilter Reentrancy(T.numThreads(), T.numLocks());
  bool FilterLocks = Options.FilterReentrantLocks;
  uint64_t Budget = Options.ShadowBudgetBytes;
  bool Probing = Budget != 0 || Options.BudgetTracker != nullptr;
  size_t CheckEvery = std::max(1u, Options.BudgetCheckEveryOps);

  for (size_t I = 0, E = T.size(); I != E; ++I) {
    if (Probing && I != 0 && I % CheckEvery == 0) {
      uint64_t Live = Probe();
      if (Options.BudgetTracker)
        Options.BudgetTracker->sampleLive(Live);
      if (Budget != 0 && Live > Budget) {
        BudgetExceeded = true;
        return I;
      }
    }
    const Operation &Op = T[I];
    switch (Op.Kind) {
    case OpKind::Read:
    case OpKind::Write:
      ++Events;
      Access(Op.Kind, Op.Thread, Map.map(Op.Target), I);
      break;
    case OpKind::Acquire:
      if (FilterLocks && !Reentrancy.onAcquire(Op.Thread, Op.Target))
        break;
      ++Events;
      Sync(Op, I);
      break;
    case OpKind::Release:
      if (FilterLocks && !Reentrancy.onRelease(Op.Thread, Op.Target))
        break;
      ++Events;
      Sync(Op, I);
      break;
    default:
      ++Events;
      Sync(Op, I);
      break;
    }
  }
  return T.size();
}

} // namespace

ReplayResult ft::replay(const Trace &T, Tool &Checker,
                        const ReplayOptions &Options) {
  GranularityMap Map = GranularityMap::make(Options);
  ReplayResult Result;
  ClockStats Before = clockStats();

  Stopwatch Watch;
  Checker.begin(makeToolContext(T, Map));
  Result.StoppedAtOp = replayLoop(
      T, Options, Map,
      [&](OpKind Kind, ThreadId Thread, VarId X, size_t I) {
        bool Passed = Kind == OpKind::Read ? Checker.onRead(Thread, X, I)
                                           : Checker.onWrite(Thread, X, I);
        Result.AccessesPassed += Passed;
      },
      [&](const Operation &Op, size_t I) { dispatchSyncOp(Checker, T, Op, I); },
      [&] { return Checker.shadowBytes(); }, Result.Events,
      Result.BudgetExceeded);
  Checker.end();
  Result.Seconds = Watch.seconds();

  Result.Clocks = clockStats() - Before;
  Result.ShadowBytes = Checker.shadowBytes();
  Result.NumWarnings = Checker.warnings().size();
  return Result;
}

PipelineResult ft::replayFiltered(const Trace &T, Tool &Filter,
                                  Tool &Downstream,
                                  const ReplayOptions &Options) {
  GranularityMap Map = GranularityMap::make(Options);
  PipelineResult Result;
  ClockStats Before = clockStats();
  ToolContext Context = makeToolContext(T, Map);

  Stopwatch Watch;
  Filter.begin(Context);
  Downstream.begin(Context);
  Result.Total.StoppedAtOp = replayLoop(
      T, Options, Map,
      [&](OpKind Kind, ThreadId Thread, VarId X, size_t I) {
        ++Result.AccessesSeen;
        if (Kind == OpKind::Read) {
          if (!Filter.onRead(Thread, X, I))
            return;
          ++Result.AccessesForwarded;
          Downstream.onRead(Thread, X, I);
        } else {
          if (!Filter.onWrite(Thread, X, I))
            return;
          ++Result.AccessesForwarded;
          Downstream.onWrite(Thread, X, I);
        }
      },
      [&](const Operation &Op, size_t I) {
        dispatchSyncOp(Filter, T, Op, I);
        dispatchSyncOp(Downstream, T, Op, I);
      },
      [&] { return Filter.shadowBytes() + Downstream.shadowBytes(); },
      Result.Total.Events, Result.Total.BudgetExceeded);
  Filter.end();
  Downstream.end();
  Result.Total.Seconds = Watch.seconds();

  Result.Total.Clocks = clockStats() - Before;
  Result.Total.ShadowBytes = Filter.shadowBytes() + Downstream.shadowBytes();
  Result.Total.NumWarnings =
      Filter.warnings().size() + Downstream.warnings().size();
  Result.Total.AccessesPassed = Result.AccessesForwarded;
  return Result;
}
