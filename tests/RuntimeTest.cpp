//===--- RuntimeTest.cpp - the online in-process detection runtime --------===//
//
// Covers the pieces bottom-up (ring, interner) and then the contracts the
// subsystem exists for: ticket order is a legal linearization (captures
// pass TraceValidator), online warnings equal an offline replay of the
// flight-recorder capture exactly, capture files round-trip through
// TraceIO, and backpressure/capacity limits degrade without deadlock.
//
// The CI TSan job runs this binary: real producer threads against the
// real sequencer certify the runtime's own concurrency.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "detectors/Eraser.h"
#include "framework/Replay.h"
#include "runtime/FaultPlan.h"
#include "runtime/Instrument.h"
#include "support/MemoryTracker.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"
#include "trace/TraceValidator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

using namespace ft;
namespace rt = ft::runtime;

namespace {

void expectSameWarnings(const std::vector<RaceWarning> &Online,
                        const std::vector<RaceWarning> &Offline) {
  ASSERT_EQ(Online.size(), Offline.size());
  for (size_t I = 0; I != Online.size(); ++I) {
    EXPECT_EQ(Online[I].Var, Offline[I].Var) << "warning " << I;
    EXPECT_EQ(Online[I].OpIndex, Offline[I].OpIndex) << "warning " << I;
    EXPECT_EQ(Online[I].CurrentThread, Offline[I].CurrentThread);
    EXPECT_EQ(Online[I].CurrentKind, Offline[I].CurrentKind);
    EXPECT_EQ(Online[I].PriorThread, Offline[I].PriorThread);
    EXPECT_EQ(Online[I].PriorKind, Offline[I].PriorKind);
    EXPECT_EQ(Online[I].Detail, Offline[I].Detail);
  }
}

/// Runs \p Body under an online FastTrack session and asserts the full
/// online/offline equivalence contract: the capture is feasible, and an
/// offline replay of it reproduces the online warnings exactly.
template <typename Body>
rt::OnlineReport checkedSession(FastTrack &Detector, Body &&Run,
                                rt::OnlineOptions Options = {}) {
  // These are exact-equivalence contract tests: every emitted event must
  // be delivered. Pin off the overload ladder and the supervisor's
  // load-shedding so a slow CI machine (TSan especially) cannot shed
  // accesses mid-test. Resilience behavior has its own suite
  // (OnlineResilienceTest.cpp).
  Options.Degrade.Enabled = false;
  Options.Supervise.Enabled = false;
  rt::Engine Engine(Detector, std::move(Options));
  Run();
  rt::OnlineReport Report = Engine.finish();

  EXPECT_FALSE(Report.Halted);
  for (const Diagnostic &D : Report.Diags)
    ADD_FAILURE() << toString(D);
  EXPECT_TRUE(isFeasible(Report.Captured));

  FastTrack Offline;
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
  return Report;
}

} // namespace

//===----------------------------------------------------------------------===//
// EventRing
//===----------------------------------------------------------------------===//

TEST(EventRing, FifoAndWraparound) {
  rt::EventRing Ring(4);
  EXPECT_EQ(Ring.capacity(), 4u);
  for (uint64_t Round = 0; Round != 3; ++Round) {
    for (uint64_t I = 0; I != 4; ++I) {
      ASSERT_TRUE(Ring.hasSpace());
      Ring.push({Round * 4 + I, OpKind::Read, static_cast<uint32_t>(I)});
    }
    EXPECT_FALSE(Ring.hasSpace());
    for (uint64_t I = 0; I != 4; ++I) {
      const rt::OnlineEvent *E = Ring.peek();
      ASSERT_NE(E, nullptr);
      EXPECT_EQ(E->Seq, Round * 4 + I);
      Ring.pop();
    }
    EXPECT_EQ(Ring.peek(), nullptr);
    EXPECT_TRUE(Ring.empty());
  }
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(rt::EventRing(3).capacity(), 4u);
  EXPECT_EQ(rt::EventRing(5).capacity(), 8u);
  EXPECT_EQ(rt::EventRing(1024).capacity(), 1024u);
}

TEST(EventRing, PopRunDrainsConsecutiveTickets) {
  rt::EventRing Ring(8);
  for (uint64_t I = 0; I != 5; ++I)
    Ring.push({I, OpKind::Read, static_cast<uint32_t>(I)});
  rt::OnlineEvent Out[8];
  uint64_t Next = 0;
  size_t N = Ring.popRunInto(Next, Out, 8);
  ASSERT_EQ(N, 5u);
  EXPECT_EQ(Next, 5u);
  for (uint64_t I = 0; I != 5; ++I) {
    EXPECT_EQ(Out[I].Seq, I);
    EXPECT_EQ(Out[I].Target, I);
  }
  EXPECT_TRUE(Ring.empty());
  EXPECT_EQ(Ring.popRunInto(Next, Out, 8), 0u);
}

TEST(EventRing, PopRunRespectsMaxAndResumes) {
  rt::EventRing Ring(8);
  for (uint64_t I = 0; I != 6; ++I)
    Ring.push({I, OpKind::Write, 0});
  rt::OnlineEvent Out[4];
  uint64_t Next = 0;
  EXPECT_EQ(Ring.popRunInto(Next, Out, 4), 4u);
  EXPECT_EQ(Next, 4u);
  EXPECT_EQ(Ring.popRunInto(Next, Out, 4), 2u);
  EXPECT_EQ(Next, 6u);
  EXPECT_TRUE(Ring.empty());
}

TEST(EventRing, PopRunStopsAtOutOfRunTicket) {
  // Ticket 7 belongs to another thread's ring; this ring resumes at 8.
  rt::EventRing Ring(8);
  Ring.push({5, OpKind::Read, 0});
  Ring.push({6, OpKind::Read, 0});
  Ring.push({8, OpKind::Read, 0});
  rt::OnlineEvent Out[8];
  uint64_t Next = 5;
  EXPECT_EQ(Ring.popRunInto(Next, Out, 8), 2u);
  EXPECT_EQ(Next, 7u);
  ASSERT_NE(Ring.peek(), nullptr);
  EXPECT_EQ(Ring.peek()->Seq, 8u) << "out-of-run event must stay queued";
  Next = 8;
  EXPECT_EQ(Ring.popRunInto(Next, Out, 8), 1u);
  EXPECT_TRUE(Ring.empty());
}

TEST(EventRing, PopRunFreesSpaceForTheProducer) {
  rt::EventRing Ring(4);
  rt::OnlineEvent Out[4];
  uint64_t Next = 0;
  for (uint64_t I = 0; I != 4; ++I)
    Ring.push({I, OpKind::Read, 0});
  EXPECT_FALSE(Ring.hasSpace());
  EXPECT_EQ(Ring.popRunInto(Next, Out, 4), 4u);
  EXPECT_TRUE(Ring.hasSpace()) << "batch pop must release all slots";
  for (uint64_t I = 4; I != 8; ++I) {
    ASSERT_TRUE(Ring.hasSpace());
    Ring.push({I, OpKind::Read, 0});
  }
  EXPECT_EQ(Ring.popRunInto(Next, Out, 4), 4u);
  EXPECT_EQ(Next, 8u);
}

//===----------------------------------------------------------------------===//
// EntityInterner
//===----------------------------------------------------------------------===//

TEST(EntityInterner, DenseStableIdsPerKind) {
  rt::EntityInterner Interner;
  int A, B, C;
  EXPECT_EQ(Interner.intern(rt::EntityKind::Var, &A), 0u);
  EXPECT_EQ(Interner.intern(rt::EntityKind::Var, &B), 1u);
  EXPECT_EQ(Interner.intern(rt::EntityKind::Var, &A), 0u); // stable
  // Kinds are independent id spaces: the same address can be a var id
  // and a lock id.
  EXPECT_EQ(Interner.intern(rt::EntityKind::Lock, &A), 0u);
  EXPECT_EQ(Interner.intern(rt::EntityKind::Volatile, &C), 0u);
  EXPECT_EQ(Interner.numVars(), 2u);
  EXPECT_EQ(Interner.numLocks(), 1u);
  EXPECT_EQ(Interner.numVolatiles(), 1u);
  EXPECT_EQ(Interner.allocateThreadId(), 0u);
  EXPECT_EQ(Interner.allocateThreadId(), 1u);
}

//===----------------------------------------------------------------------===//
// Engine: capture shape and linearization
//===----------------------------------------------------------------------===//

TEST(OnlineEngine, SingleThreadedCaptureIsTheProgramOrder) {
  FastTrack Detector;
  rt::Shared<int> X;
  rt::Mutex M;
  rt::Engine Engine(Detector);
  FT_WRITE(X, 1);
  M.lock();
  (void)FT_READ(X);
  M.unlock();
  rt::OnlineReport Report = Engine.finish();

  Trace Expected = TraceBuilder().wr(0, 0).acq(0, 0).rd(0, 0).rel(0, 0).take();
  EXPECT_EQ(serializeTrace(Report.Captured), serializeTrace(Expected));
  EXPECT_EQ(Report.EventsCaptured, 4u);
  EXPECT_EQ(Report.EventsDispatched, 4u);
  EXPECT_EQ(Report.NumWarnings, 0u);
}

TEST(OnlineEngine, ForkAndJoinBracketChildEvents) {
  FastTrack Detector;
  rt::Shared<int> X;
  rt::Engine Engine(Detector);
  FT_WRITE(X, 1);
  rt::Thread Child([&X] { FT_WRITE(X, 2); });
  Child.join();
  (void)FT_READ(X);
  rt::OnlineReport Report = Engine.finish();

  // fork-join ordering makes this race-free, and the capture must spell
  // the bracketing out exactly.
  Trace Expected =
      TraceBuilder().wr(0, 0).fork(0, 1).wr(1, 0).join(0, 1).rd(0, 0).take();
  EXPECT_EQ(serializeTrace(Report.Captured), serializeTrace(Expected));
  EXPECT_EQ(Report.NumWarnings, 0u);
  EXPECT_TRUE(isFeasible(Report.Captured));
}

TEST(OnlineEngine, DetectsARaceOnlineAndReportsItImmediately) {
  FastTrack Detector;
  rt::Shared<int> X;
  std::vector<RaceWarning> Sunk;
  rt::OnlineOptions Options;
  Options.OnWarning = [&Sunk](const RaceWarning &W) { Sunk.push_back(W); };

  rt::Engine Engine(Detector, Options);
  FT_WRITE(X, 1);
  rt::Thread A([&X] { FT_WRITE(X, 2); });
  rt::Thread B([&X] { (void)FT_READ(X); });
  A.join();
  B.join();
  rt::OnlineReport Report = Engine.finish();

  EXPECT_EQ(Report.NumWarnings, 1u); // dedup: one warning for x0
  ASSERT_EQ(Sunk.size(), 1u);
  EXPECT_EQ(Sunk[0].Var, 0u);
  expectSameWarnings(Detector.warnings(), Sunk);
}

TEST(OnlineEngine, DowngradedSharedSkipsEventsButCountsThem) {
  // The native elision annotation: a downgraded Shared<T> performs its
  // accesses without emitting, and the session report says how many.
  FastTrack Detector;
  rt::Shared<int> Local;
  rt::Shared<int> Checked;
  Local.downgrade();
  EXPECT_FALSE(Local.checked());

  rt::Engine Engine(Detector);
  FT_WRITE(Local, 1);
  FT_WRITE(Checked, 2);
  rt::Thread Child([&Local] {
    FT_WRITE(Local, 3); // would be a capture-visible op if checked
    (void)FT_READ(Local);
  });
  Child.join();
  (void)FT_READ(Checked);
  rt::OnlineReport Report = Engine.finish();

  // Only Checked's accesses (plus fork/join) reach the stream.
  Trace Expected =
      TraceBuilder().wr(0, 0).fork(0, 1).join(0, 1).rd(0, 0).take();
  EXPECT_EQ(serializeTrace(Report.Captured), serializeTrace(Expected));
  EXPECT_EQ(Report.EventsElided, 3u);
  EXPECT_EQ(Report.NumWarnings, 0u);
  EXPECT_EQ(Local.read(), 3);
}

TEST(OnlineEngine, UpgradeRestoresEmission) {
  FastTrack Detector;
  rt::Shared<int> X;
  X.downgrade();
  X.upgrade();

  rt::Engine Engine(Detector);
  FT_WRITE(X, 1);
  rt::OnlineReport Report = Engine.finish();
  EXPECT_EQ(Report.EventsCaptured, 1u);
  EXPECT_EQ(Report.EventsElided, 0u);
}

TEST(OnlineEngine, UncheckedIsAPureUninstrumentedPassThrough) {
  FastTrack Detector;
  rt::Unchecked<int> Scratch(5);
  rt::Engine Engine(Detector);
  Scratch.write(Scratch.read() + 1);
  rt::Thread Child([&Scratch] { (void)Scratch.read(); });
  Child.join();
  rt::OnlineReport Report = Engine.finish();

  EXPECT_EQ(Scratch.read(), 6);
  // Nothing emitted, nothing counted: Unchecked is invisible to the
  // session (unlike downgrade(), which is audited via EventsElided).
  Trace Expected = TraceBuilder().fork(0, 1).join(0, 1).take();
  EXPECT_EQ(serializeTrace(Report.Captured), serializeTrace(Expected));
  EXPECT_EQ(Report.EventsElided, 0u);
}

//===----------------------------------------------------------------------===//
// Online/offline equivalence on the ported example programs
//===----------------------------------------------------------------------===//

namespace {

/// The bounded-buffer port (examples/native_bounded_buffer.cpp), small.
struct BoundedBuffer {
  rt::Mutex M;
  rt::CondVar CV;
  rt::Shared<int> Slot;
  rt::Shared<int> Full;
  rt::Shared<int> Consumed;

  void producer(int Items) {
    for (int I = 1; I <= Items; ++I) {
      std::lock_guard<rt::Mutex> Guard(M);
      CV.wait(M, [this] { return FT_READ(Full) == 0; });
      FT_WRITE(Slot, I * 10);
      FT_WRITE(Full, 1);
      CV.notifyAll();
    }
  }
  void consumer(int Items) {
    for (int I = 0; I < Items; ++I) {
      std::lock_guard<rt::Mutex> Guard(M);
      CV.wait(M, [this] { return FT_READ(Full) == 1; });
      FT_WRITE(Consumed, FT_READ(Consumed) + FT_READ(Slot));
      FT_WRITE(Full, 0);
      CV.notifyAll();
    }
  }
};

/// The broken double-checked-locking port (racy on every schedule).
struct BrokenLazyInit {
  rt::Mutex InitLock;
  rt::Shared<int> Singleton;
  rt::Shared<int> Initialized;

  int getInstance() {
    if (FT_READ(Initialized) == 0) {
      std::lock_guard<rt::Mutex> Guard(InitLock);
      if (FT_READ(Initialized) == 0) {
        FT_WRITE(Singleton, 42);
        FT_WRITE(Initialized, 1);
      }
    }
    return FT_READ(Singleton);
  }
};

} // namespace

TEST(OnlineEquivalence, BoundedBufferIsRaceFreeOnEverySchedule) {
  for (int Round = 0; Round != 5; ++Round) {
    FastTrack Detector;
    BoundedBuffer Buffer;
    rt::OnlineReport Report = checkedSession(Detector, [&Buffer] {
      rt::Thread P([&Buffer] { Buffer.producer(5); });
      rt::Thread C([&Buffer] { Buffer.consumer(5); });
      P.join();
      C.join();
    });
    EXPECT_EQ(Report.NumWarnings, 0u) << "round " << Round;
    EXPECT_EQ(Buffer.Consumed.read(), 150);
  }
}

TEST(OnlineEquivalence, HoldsForEverySequencerBatchSize) {
  // Batch edges: 1 degenerates to the unbatched drain, 2 and 3 force
  // mid-run batch boundaries, 1024 exceeds every ring's content. The
  // merged order (and so the warnings) must be identical throughout.
  for (size_t Batch : {size_t(1), size_t(2), size_t(3), size_t(1024)}) {
    FastTrack Detector;
    BoundedBuffer Buffer;
    rt::OnlineOptions Options;
    Options.SequencerBatch = Batch;
    rt::OnlineReport Report = checkedSession(
        Detector,
        [&Buffer] {
          rt::Thread P([&Buffer] { Buffer.producer(5); });
          rt::Thread C([&Buffer] { Buffer.consumer(5); });
          P.join();
          C.join();
        },
        std::move(Options));
    EXPECT_EQ(Report.NumWarnings, 0u) << "batch " << Batch;
    EXPECT_EQ(Buffer.Consumed.read(), 150);
  }
}

TEST(OnlineEquivalence, DoubleCheckedLockingIsRacyOnEverySchedule) {
  for (int Round = 0; Round != 5; ++Round) {
    FastTrack Detector;
    BrokenLazyInit Lazy;
    rt::OnlineReport Report = checkedSession(Detector, [&Lazy] {
      rt::Thread A([&Lazy] { (void)Lazy.getInstance(); });
      rt::Thread B([&Lazy] { (void)Lazy.getInstance(); });
      A.join();
      B.join();
    });
    // Whatever the schedule, the unprotected flag read races with the
    // initializing write (see the example for the argument).
    EXPECT_GT(Report.NumWarnings, 0u) << "round " << Round;
  }
}

TEST(OnlineEquivalence, VolatileFlagFixesDoubleCheckedLocking) {
  FastTrack Detector;
  rt::Mutex InitLock;
  rt::Shared<int> Singleton;
  rt::Volatile<int> Initialized;
  auto GetInstance = [&] {
    if (Initialized.read() == 0) {
      std::lock_guard<rt::Mutex> Guard(InitLock);
      if (Initialized.read() == 0) {
        FT_WRITE(Singleton, 42);
        Initialized.write(1);
      }
    }
    return FT_READ(Singleton);
  };
  rt::OnlineReport Report = checkedSession(Detector, [&] {
    rt::Thread A([&] { (void)GetInstance(); });
    rt::Thread B([&] { (void)GetInstance(); });
    A.join();
    B.join();
  });
  EXPECT_EQ(Report.NumWarnings, 0u);
}

//===----------------------------------------------------------------------===//
// Flight recorder: capture → validate → save → load → replay round trip
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, CaptureRoundTripsThroughDiskAndReplay) {
  const char *Path = "runtime_capture_roundtrip.trc";
  FastTrack Detector;
  rt::Shared<int> X, Y;
  rt::Mutex M;
  rt::OnlineOptions Options;
  Options.CapturePath = Path;

  rt::Engine Engine(Detector, Options);
  FT_WRITE(Y, 5);
  rt::Thread A([&] {
    M.lock();
    FT_WRITE(X, 1);
    M.unlock();
    (void)FT_READ(Y); // race with main's later write
  });
  M.lock();
  FT_WRITE(X, 2);
  M.unlock();
  FT_WRITE(Y, 6);
  A.join();
  rt::OnlineReport Report = Engine.finish();
  ASSERT_TRUE(Report.Diags.empty());

  // 1. The in-memory capture is feasible (already asserted by the engine
  //    when ValidateCapture is on; assert independently here).
  EXPECT_TRUE(isFeasible(Report.Captured));

  // 2. The .trc file parses back to the identical trace.
  Trace Loaded;
  ParseReport Parse = loadTraceFile(Path, Loaded);
  ASSERT_TRUE(Parse.ok());
  EXPECT_EQ(serializeTrace(Loaded), serializeTrace(Report.Captured));
  EXPECT_TRUE(isFeasible(Loaded));

  // 3. Replaying the loaded file reproduces the online warnings exactly.
  FastTrack Offline;
  replay(Loaded, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
  EXPECT_EQ(Detector.warnings().size(), 1u); // the y race

  std::remove(Path);
}

TEST(FlightRecorder, KeepCaptureOffStillWritesTheFile) {
  const char *Path = "runtime_capture_fileonly.trc";
  FastTrack Detector;
  rt::Shared<int> X;
  rt::OnlineOptions Options;
  Options.CapturePath = Path;
  Options.KeepCapture = false;

  rt::Engine Engine(Detector, Options);
  FT_WRITE(X, 1);
  rt::OnlineReport Report = Engine.finish();
  EXPECT_TRUE(Report.Captured.empty()); // not kept in memory

  Trace Loaded;
  ASSERT_TRUE(loadTraceFile(Path, Loaded).ok());
  EXPECT_EQ(Loaded.size(), 1u);
  std::remove(Path);
}

//===----------------------------------------------------------------------===//
// Backpressure, capacity, and degraded modes
//===----------------------------------------------------------------------===//

TEST(OnlineEngine, TinyRingsBackpressureWithoutDeadlockOrLoss) {
  // Rings of 4 events force constant producer parking; every event must
  // still arrive, in a feasible order.
  FastTrack Detector;
  rt::OnlineOptions Options;
  Options.RingCapacity = 4;
  // "Or loss" is the point here: disable every shedding mechanism so the
  // count below is exact even when CI runs this at TSan speed.
  Options.Degrade.Enabled = false;
  Options.Supervise.Enabled = false;
  rt::Mutex M;
  rt::Shared<int> X;
  constexpr int PerThread = 500;

  rt::Engine Engine(Detector, Options);
  auto Hammer = [&] {
    for (int I = 0; I != PerThread; ++I) {
      std::lock_guard<rt::Mutex> Guard(M);
      FT_WRITE(X, I);
    }
  };
  rt::Thread A(Hammer);
  rt::Thread B(Hammer);
  A.join();
  B.join();
  rt::OnlineReport Report = Engine.finish();

  // 2 forks + 2 joins + 2 threads × 500 × (acq + wr + rel).
  EXPECT_EQ(Report.EventsCaptured, 4u + 2u * PerThread * 3u);
  EXPECT_EQ(Report.NumWarnings, 0u);
  EXPECT_TRUE(isFeasible(Report.Captured));
}

TEST(OnlineEngine, BackpressureParkUnparkIsCountedNotLost) {
  // Tiny rings plus an injected slow-consumer storm guarantee producers
  // park; generous supervisor deadlines guarantee nothing is shed. The
  // report must carry the MaxQueueDepth-style pressure stats while the
  // delivered stream stays complete. (The TSan CI job runs this: parking
  // and unparking across producer/sequencer threads is the racy part.)
  FastTrack Detector;
  rt::FaultPlan Faults;
  Faults.DelayFromTicket = 0;
  Faults.DelayToTicket = 50; // storm over the first 50 tickets only
  Faults.DelayPerDeliveryUs = 1000;
  rt::OnlineOptions Options;
  Options.RingCapacity = 4;
  Options.Faults = &Faults;
  Options.Degrade.Enabled = false;          // nothing may be shed...
  Options.Supervise.MaxParkMs = 60000;      // ...parked accesses wait
  Options.Supervise.StallDeadlineMs = 60000; // a slow merge is not a stall
  rt::Mutex M;
  rt::Shared<int> X;
  constexpr int PerThread = 100;

  rt::Engine Engine(Detector, Options);
  auto Hammer = [&] {
    for (int I = 0; I != PerThread; ++I) {
      std::lock_guard<rt::Mutex> Guard(M);
      FT_WRITE(X, I);
    }
  };
  rt::Thread A(Hammer);
  rt::Thread B(Hammer);
  A.join();
  B.join();
  rt::OnlineReport Report = Engine.finish();

  EXPECT_EQ(Report.EventsCaptured, 4u + 2u * PerThread * 3u);
  EXPECT_EQ(Report.NumWarnings, 0u);
  EXPECT_FALSE(Report.Halted);
  EXPECT_EQ(Report.DroppedOverload, 0u);
  EXPECT_EQ(Report.DroppedPostHalt, 0u);
  EXPECT_EQ(Report.AccessesShed, 0u);
  EXPECT_EQ(Report.SequencerRestarts, 0u);
  // Pressure really happened, and the per-thread rows account for it.
  EXPECT_GT(Report.ParkEpisodes, 0u);
  EXPECT_GT(Report.MaxBacklog, 0u);
  uint64_t Parks = 0;
  for (const rt::ThreadDropStats &S : Report.PerThreadDrops)
    Parks += S.Parks;
  EXPECT_EQ(Parks, Report.ParkEpisodes);
  EXPECT_TRUE(isFeasible(Report.Captured));
}

TEST(OnlineEngine, CapacityBreachHaltsDetectionNotTheProgram) {
  FastTrack Detector;
  rt::OnlineOptions Options;
  Options.MaxVars = 2;
  // With the ladder on, an over-capacity variable coarsens instead of
  // halting (OnlineResilienceTest covers that); this test pins the
  // pre-ladder halt behavior.
  Options.Degrade.Enabled = false;
  std::vector<rt::Shared<int>> Vars(8);

  rt::Engine Engine(Detector, Options);
  for (rt::Shared<int> &V : Vars)
    FT_WRITE(V, 1); // third distinct variable breaches MaxVars
  rt::OnlineReport Report = Engine.finish();

  EXPECT_TRUE(Report.Halted);
  ASSERT_FALSE(Report.Diags.empty());
  EXPECT_EQ(Report.Diags[0].Code, StatusCode::ResourceExhausted);
  // The six writes emitted after the breach are not lost silently: each
  // is counted exactly once (at emit when the halt was already visible,
  // or discarded by the sequencer when it was ticketed first) and the
  // loss is flagged by a one-shot diagnostic.
  EXPECT_EQ(Report.DroppedPostHalt, 6u);
  bool DropDiag = false;
  for (const Diagnostic &D : Report.Diags)
    DropDiag |= D.Code == StatusCode::Cancelled &&
                D.Message.find("dropped after detection halted") !=
                    std::string::npos;
  EXPECT_TRUE(DropDiag);
  // The capture holds exactly the accepted prefix, still replayable.
  EXPECT_EQ(Report.Captured.size(), 2u);
  FastTrack Offline;
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
}

TEST(OnlineEngine, NoEngineMeansPassThrough) {
  ASSERT_EQ(rt::Engine::current(), nullptr);
  rt::Shared<int> X;
  rt::Mutex M;
  M.lock();
  FT_WRITE(X, 7);
  M.unlock();
  EXPECT_EQ(FT_READ(X), 7);
  rt::Thread T([&X] { FT_WRITE(X, 8); });
  T.join();
  EXPECT_EQ(FT_READ(X), 8);
}

TEST(OnlineEngine, ObjectsOutlivingASessionReInternCleanly) {
  // The same Shared/Mutex objects run under two engines; the id cache
  // must not leak ids across sessions (generation stamping).
  rt::Shared<int> X;
  rt::Mutex M;
  auto Run = [&] {
    FastTrack Detector;
    rt::Engine Engine(Detector);
    M.lock();
    FT_WRITE(X, 1);
    M.unlock();
    rt::OnlineReport Report = Engine.finish();
    EXPECT_EQ(Report.EventsCaptured, 3u);
    EXPECT_EQ(Report.Captured[1].Target, 0u); // dense again each session
    return Report.NumWarnings;
  };
  EXPECT_EQ(Run(), 0u);
  EXPECT_EQ(Run(), 0u);
}

TEST(OnlineEngine, ForeignThreadsAreAnalyzedButFlaggedByTheValidator) {
  // A plain std::thread (no fork edge) touching instrumented state: its
  // accesses are analyzed — conservatively unordered, so this races —
  // and the capture fails validation, as documented.
  FastTrack Detector;
  rt::OnlineOptions Options;
  Options.ValidateCapture = false; // we validate by hand below
  rt::Shared<int> X;

  rt::Engine Engine(Detector, Options);
  FT_WRITE(X, 1);
  std::thread Foreign([&X] { FT_WRITE(X, 2); });
  Foreign.join();
  rt::OnlineReport Report = Engine.finish();

  EXPECT_EQ(Report.NumWarnings, 1u); // no fork edge: a (real) race
  EXPECT_FALSE(isFeasible(Report.Captured));
}

//===----------------------------------------------------------------------===//
// Stress: many threads, mixed primitives, online == offline every time
//===----------------------------------------------------------------------===//

TEST(OnlineEquivalence, StressManyThreadsMixedPrimitives) {
  constexpr unsigned NumThreads = 8;
  constexpr int Iters = 200;
  FastTrack Detector;
  rt::Mutex Locks[2];
  rt::Shared<int> Protected[2];
  rt::Shared<int> Racy;
  rt::Volatile<int> Flag;

  rt::OnlineReport Report = checkedSession(Detector, [&] {
    // Intern in a fixed order so var ids are deterministic, and seed the
    // fork edges that order these writes before every thread.
    FT_WRITE(Protected[0], 0);
    FT_WRITE(Protected[1], 0);
    FT_WRITE(Racy, 0);
    std::vector<rt::Thread> Threads;
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        // First action, before any lock: two threads' initial writes can
        // never be happens-before ordered, so this races on EVERY
        // schedule (the only edge into a fresh thread is its fork).
        FT_WRITE(Racy, static_cast<int>(T));
        for (int I = 0; I != Iters; ++I) {
          unsigned Which = (T + I) % 2;
          Locks[Which].lock();
          FT_WRITE(Protected[Which], FT_READ(Protected[Which]) + 1);
          Locks[Which].unlock();
          if (I % 32 == 0) {
            Flag.write(I);
            (void)Flag.read();
          }
        }
      });
    for (rt::Thread &T : Threads)
      T.join();
  });

  EXPECT_EQ(Report.NumWarnings, 1u); // exactly the Racy variable
  EXPECT_EQ(Detector.warnings()[0].Var, 2u);
  EXPECT_GT(Report.EventsCaptured, NumThreads * Iters * 3ull);
}

//===----------------------------------------------------------------------===//
// Eraser online: any existing Tool runs unchanged
//===----------------------------------------------------------------------===//

TEST(OnlineEngine, EraserRunsOnlineUnchanged) {
  Eraser Detector;
  rt::Mutex M;
  rt::Shared<int> Guarded, Unguarded;

  rt::Engine Engine(Detector);
  rt::Thread A([&] {
    M.lock();
    FT_WRITE(Guarded, 1);
    M.unlock();
    FT_WRITE(Unguarded, 1);
  });
  rt::Thread B([&] {
    M.lock();
    FT_WRITE(Guarded, 2);
    M.unlock();
    FT_WRITE(Unguarded, 2);
  });
  A.join();
  B.join();
  rt::OnlineReport Report = Engine.finish();

  ASSERT_EQ(Report.NumWarnings, 1u);
  EXPECT_EQ(Detector.warnings()[0].Var, 1u); // Unguarded

  Eraser Offline;
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
}

//===----------------------------------------------------------------------===//
// Thread churn: recycled slots, bounded shadow lifecycle, graceful
// exhaustion (the unbounded-churn robustness contract)
//===----------------------------------------------------------------------===//

namespace {

/// Validator options for captures of sessions that recycle thread slots:
/// one dense id legally carries several non-overlapping lifetimes.
TraceValidatorOptions tidReuse() {
  TraceValidatorOptions O;
  O.AllowTidReuse = true;
  return O;
}

/// The churn suite's exact-equivalence check (checkedSession validates
/// with the default options, which reject tid reuse by design).
void expectOfflineEquivalent(const FastTrack &Online, const Trace &Captured) {
  FastTrack Offline;
  replay(Captured, Offline);
  expectSameWarnings(Online.warnings(), Offline.warnings());
}

} // namespace

TEST(ThreadChurn, SequentialChurnRecyclesSlots) {
  // 200 short-lived threads through an 8-slot table: every fork after the
  // first reincarnates the drained slot of its joined predecessor, so the
  // session pays for 2 slots (main + one live child), not 201.
  constexpr int Churn = 200;
  FastTrack Detector;
  rt::OnlineOptions Options;
  Options.MaxThreads = 8;
  Options.Degrade.Enabled = false;
  Options.Supervise.Enabled = false;
  rt::Shared<int> X;

  rt::Engine Engine(Detector, Options);
  for (int I = 0; I != Churn; ++I) {
    rt::Thread T([&X, I] { FT_WRITE(X, I); });
    T.join(); // join -> next fork: writes chain through main, race-free
  }
  rt::OnlineReport Report = Engine.finish();

  EXPECT_FALSE(Report.Halted);
  for (const Diagnostic &D : Report.Diags)
    ADD_FAILURE() << toString(D);
  EXPECT_EQ(Report.NumWarnings, 0u);
  EXPECT_EQ(Report.SlotsAllocated, 2u);
  EXPECT_EQ(Report.PeakLiveSlots, 2u);
  EXPECT_EQ(Report.ThreadsRecycled, static_cast<uint64_t>(Churn - 1));
  EXPECT_EQ(Report.ForksRejected, 0u);
  EXPECT_EQ(Report.UntrackedEvents, 0u);
  // The capture genuinely reuses tids: feasible only under AllowTidReuse.
  EXPECT_TRUE(isFeasible(Report.Captured, tidReuse()));
  EXPECT_FALSE(isFeasible(Report.Captured));
  expectOfflineEquivalent(Detector, Report.Captured);
}

TEST(ThreadChurn, RecyclingOffPreservesFreshIdBehavior) {
  // The PR 3 behavior is still available: with recycling pinned off each
  // fork consumes a fresh slot forever.
  FastTrack Detector;
  rt::OnlineOptions Options;
  Options.RecycleThreadSlots = false;
  Options.Degrade.Enabled = false;
  Options.Supervise.Enabled = false;
  rt::Shared<int> X;

  rt::Engine Engine(Detector, Options);
  for (int I = 0; I != 5; ++I) {
    rt::Thread T([&X, I] { FT_WRITE(X, I); });
    T.join();
  }
  rt::OnlineReport Report = Engine.finish();

  EXPECT_EQ(Report.SlotsAllocated, 6u); // main + 5 children
  EXPECT_EQ(Report.ThreadsRecycled, 0u);
  EXPECT_TRUE(isFeasible(Report.Captured)); // no tid ever reused
  expectOfflineEquivalent(Detector, Report.Captured);
}

TEST(ThreadChurn, ForeignThreadsGetFreshSlotsNeverRecycled) {
  // A foreign (non-runtime) thread has no fork edge, so splicing it into
  // a dead thread's slot would invent ordering: it must always take a
  // fresh slot even when drained slots are free.
  FastTrack Detector;
  rt::OnlineOptions Options;
  Options.MaxThreads = 4;
  Options.ValidateCapture = false; // foreign thread: no fork edge
  Options.Degrade.Enabled = false;
  Options.Supervise.Enabled = false;
  rt::Shared<int> X, Y;

  rt::Engine Engine(Detector, Options);
  rt::Thread T([&X] { FT_WRITE(X, 1); });
  T.join(); // slot 1 retires and drains
  std::thread Foreign([&Y] { FT_WRITE(Y, 2); });
  Foreign.join();
  rt::OnlineReport Report = Engine.finish();

  EXPECT_EQ(Report.SlotsAllocated, 3u); // main, child, foreign
  EXPECT_EQ(Report.ThreadsRecycled, 0u);
  EXPECT_EQ(Report.ForksRejected, 0u);
}

TEST(ThreadChurn, SlotExhaustionDegradesGracefully) {
  // 8 slots, all live (main + 7 held children): the 8th child must not
  // abort or halt detection — it runs untracked, the rejection surfaces
  // as a structured Status plus one supervisor diagnostic, and once the
  // held children are joined the next fork is tracked again.
  FastTrack Detector;
  rt::OnlineOptions Options;
  Options.MaxThreads = 8;
  Options.Degrade.Enabled = false;
  Options.Supervise.Enabled = false;
  std::vector<rt::Shared<int>> Vars(9);

  rt::Engine Engine(Detector, Options);
  std::atomic<bool> Release{false};
  std::atomic<int> Started{0};
  std::vector<rt::Thread> Held;
  for (int I = 0; I != 7; ++I)
    Held.emplace_back([&, I] {
      FT_WRITE(Vars[I], I);
      Started.fetch_add(1);
      while (!Release.load())
        std::this_thread::yield();
    });
  while (Started.load() != 7)
    std::this_thread::yield();

  // All 8 slots live: a direct fork request reports exhaustion without
  // emitting anything.
  ThreadId Direct = 0;
  Status S = Engine.tryForkThread(Direct);
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::ResourceExhausted);
  EXPECT_EQ(Direct, rt::Engine::NoThread);

  // The shim path: the child still runs, untracked.
  std::atomic<bool> UntrackedRan{false};
  rt::Thread Over([&] {
    FT_WRITE(Vars[7], 7); // dropped and counted, never delivered
    UntrackedRan.store(true);
  });
  EXPECT_EQ(Over.id(), rt::Engine::NoThread);
  Over.join();
  EXPECT_TRUE(UntrackedRan.load());

  Release.store(true);
  for (rt::Thread &T : Held)
    T.join();

  // With the table drained, churn resumes on recycled slots.
  rt::Thread After([&] { FT_WRITE(Vars[8], 8); });
  After.join();
  EXPECT_NE(After.id(), rt::Engine::NoThread);

  rt::OnlineReport Report = Engine.finish();
  EXPECT_FALSE(Report.Halted);
  EXPECT_EQ(Report.SlotsAllocated, 8u);
  EXPECT_EQ(Report.PeakLiveSlots, 8u);
  EXPECT_EQ(Report.ForksRejected, 2u); // tryForkThread + the Over shim
  EXPECT_EQ(Report.UntrackedEvents, 1u);
  EXPECT_GE(Report.ThreadsRecycled, 1u);
  bool SawExhaustion = false;
  for (const Diagnostic &D : Report.Diags)
    SawExhaustion |= D.Code == StatusCode::ResourceExhausted &&
                     D.Message.find("exhausted") != std::string::npos;
  EXPECT_TRUE(SawExhaustion);
  EXPECT_TRUE(isFeasible(Report.Captured, tidReuse()));
  expectOfflineEquivalent(Detector, Report.Captured);
}

TEST(ThreadChurn, SoakTenThousandThreadsBoundedAndEquivalent) {
  // The acceptance workload: 10,000 sequential short-lived threads, one
  // deliberate race per thread on its own variable. Capped at 8 slots
  // with recycling, the session must (a) run to completion, (b) keep VC
  // width and shadow memory at max-live scale, and (c) report the same
  // races as an uncapped run that gives every thread a fresh id.
  constexpr unsigned Churn = 10000;
  std::vector<rt::Shared<int>> Vars(Churn); // distinct interned ids

  auto racedVars = [](const std::vector<RaceWarning> &Warnings) {
    std::vector<VarId> Ids;
    for (const RaceWarning &W : Warnings)
      Ids.push_back(W.Var);
    return Ids;
  };
  auto runChurn = [&](auto &Tool, rt::OnlineOptions Options) {
    Options.Supervise.Enabled = false;
    rt::Engine Engine(Tool, Options);
    for (unsigned I = 0; I != Churn; ++I) {
      rt::Thread T([&Vars, I] { FT_WRITE(Vars[I], 1); });
      FT_WRITE(Vars[I], 2); // concurrent with the child: races always
      T.join();
    }
    return Engine.finish();
  };

  // Capped run: 8 slots, recycling on, memory tracked (a huge budget so
  // the probe samples without ever breaching).
  FastTrack Capped;
  MemoryTracker Tracker;
  rt::OnlineOptions CappedOptions;
  CappedOptions.MaxThreads = 8;
  CappedOptions.Degrade.Enabled = true;
  CappedOptions.Degrade.ShadowBudgetBytes = 1ull << 40;
  CappedOptions.Degrade.Tracker = &Tracker;
  rt::OnlineReport CappedReport = runChurn(Capped, CappedOptions);

  EXPECT_FALSE(CappedReport.Halted);
  EXPECT_EQ(CappedReport.DegradeRung, 0u); // tracked, never degraded
  EXPECT_EQ(CappedReport.NumWarnings, Churn);
  EXPECT_EQ(CappedReport.SlotsAllocated, 2u); // peak VC width = max-live
  EXPECT_EQ(CappedReport.PeakLiveSlots, 2u);
  EXPECT_EQ(CappedReport.ThreadsRecycled, Churn - 1);
  EXPECT_EQ(CappedReport.ForksRejected, 0u);
  // Bounded RSS: 10k threads' shadow fits in single-digit megabytes
  // (an uncapped FastTrack64 run pays hundreds for the VC columns).
  EXPECT_GT(Tracker.peakBytes(), 0u);
  EXPECT_LT(Tracker.peakBytes(), 16u << 20);
  EXPECT_TRUE(isFeasible(CappedReport.Captured, tidReuse()));
  expectOfflineEquivalent(Capped, CappedReport.Captured);

  // Uncapped control: fresh 16-bit-tid slots for all 10k threads (the
  // 8-bit default epoch layout cannot even name them).
  FastTrack64 Uncapped;
  rt::OnlineOptions UncappedOptions;
  UncappedOptions.MaxThreads = Churn + 50;
  UncappedOptions.RecycleThreadSlots = false;
  UncappedOptions.RingCapacity = 64; // 10k rings: keep the table small
  UncappedOptions.Degrade.Enabled = false;
  rt::OnlineReport UncappedReport = runChurn(Uncapped, UncappedOptions);

  EXPECT_FALSE(UncappedReport.Halted);
  EXPECT_EQ(UncappedReport.NumWarnings, Churn);
  EXPECT_EQ(UncappedReport.SlotsAllocated, Churn + 1);
  EXPECT_EQ(UncappedReport.ThreadsRecycled, 0u);
  EXPECT_TRUE(isFeasible(UncappedReport.Captured));

  // No warning differences: the same variables race, in the same order
  // (one per churn iteration; reporter thread/epoch are schedule-local).
  EXPECT_EQ(racedVars(Capped.warnings()), racedVars(Uncapped.warnings()));
}
