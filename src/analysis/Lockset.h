//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Must-hold locksets at every shared-access site (the RacerF-style
/// lockset-at-site abstraction the elision classifier builds on).
///
/// Two ingredients:
///
///   - **Within a function**, the syntactic nesting of `sync (m)` blocks
///     gives an exact must-hold set (collected by the facts walker;
///     re-entrant nesting collapses, `wait` re-acquires before any
///     subsequent site runs).
///   - **Across calls**, a function's *context lockset* is what is held
///     on every possible entry: the intersection over all incoming call
///     edges of (caller's context ∪ caller-side syntactic set). A spawn
///     edge contributes the empty set — a freshly forked thread holds
///     no locks, whatever its parent held at the spawn site (the "fork
///     inside a critical section" trap).
///
/// The fixpoint is decreasing from ⊤ (all locks), so functions the
/// program never enters keep ⊤ and never weaken a verdict; a function
/// that is both called under a lock and spawned intersects down to ∅.
/// The result over-approximates nothing: SiteLocks(s) ⊆ locks actually
/// held whenever s executes.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_ANALYSIS_LOCKSET_H
#define FASTTRACK_ANALYSIS_LOCKSET_H

#include "analysis/CallGraph.h"

#include <set>

namespace ft::analysis {

struct LocksetInfo {
  /// Per function: locks definitely held at every entry. ⊤ (all lock
  /// ids) for functions with no incoming edges (main is pinned to ∅).
  std::vector<std::set<uint32_t>> ContextLocks;
  /// Per facts site index: locks definitely held when the site runs.
  std::vector<std::set<uint32_t>> SiteLocks;
};

LocksetInfo computeLocksets(const lang::Program &P,
                            const ProgramFacts &Facts);

} // namespace ft::analysis

#endif // FASTTRACK_ANALYSIS_LOCKSET_H
