//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-level accounting of shadow-state allocations.
///
/// The paper's Table 3 reports per-tool memory overheads. Rather than
/// inspecting the OS heap, every analysis-state allocation in this project
/// (vector clocks, VarState records, lock sets) is charged to a
/// MemoryTracker so the overhead can be regenerated deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_SUPPORT_MEMORYTRACKER_H
#define FASTTRACK_SUPPORT_MEMORYTRACKER_H

#include <cstddef>
#include <cstdint>

namespace ft {

/// Tracks live and peak bytes charged by an analysis tool, optionally
/// against a budget. The resource governor (framework/ResourceGovernor.h)
/// samples a tool's shadowBytes() into a tracker between events and
/// degrades analysis granularity when the budget is breached, instead of
/// letting a long replay die to OOM.
class MemoryTracker {
public:
  /// Charges \p Bytes to the tracker.
  void allocate(size_t Bytes) {
    Live += Bytes;
    Total += Bytes;
    if (Live > Peak)
      Peak = Live;
  }

  /// Releases \p Bytes previously charged.
  void release(size_t Bytes) { Live -= Bytes < Live ? Bytes : Live; }

  /// Replaces the live-byte reading with a fresh sample of externally
  /// owned state (e.g. a tool's shadowBytes()), updating the peak. Used
  /// by the governor's periodic probes, where state is resampled whole
  /// rather than charged allocation by allocation.
  void sampleLive(uint64_t Bytes) {
    Live = Bytes;
    if (Live > Peak)
      Peak = Live;
  }

  /// Sets the byte budget; 0 (the default) means unlimited.
  void setBudget(uint64_t Bytes) { Budget = Bytes; }

  /// Returns the configured budget (0 = unlimited).
  uint64_t budgetBytes() const { return Budget; }

  /// True when live bytes exceed a nonzero budget.
  bool overBudget() const { return Budget != 0 && Live > Budget; }

  /// Returns bytes currently charged.
  uint64_t liveBytes() const { return Live; }

  /// Returns the high-water mark of charged bytes.
  uint64_t peakBytes() const { return Peak; }

  /// Returns the cumulative bytes ever charged (ignores releases).
  uint64_t totalBytes() const { return Total; }

  /// Resets all counters to zero (the budget is configuration, not a
  /// counter, and survives).
  void reset() { Live = Peak = Total = 0; }

private:
  uint64_t Live = 0;
  uint64_t Peak = 0;
  uint64_t Total = 0;
  uint64_t Budget = 0;
};

/// Returns the process-wide tracker used when no per-tool tracker is bound.
MemoryTracker &globalMemoryTracker();

} // namespace ft

#endif // FASTTRACK_SUPPORT_MEMORYTRACKER_H
