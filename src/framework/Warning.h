//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Race warnings emitted by analysis tools.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_WARNING_H
#define FASTTRACK_FRAMEWORK_WARNING_H

#include "trace/Operation.h"

#include <string>

namespace ft {

/// Sentinel for a warning whose prior access's thread is unknown (Eraser's
/// lockset state machine does not always track it).
inline constexpr ThreadId UnknownThread = ~0u;

/// One race warning. The paper's tools report at most one warning per
/// field (variable); the Tool base class enforces that policy.
struct RaceWarning {
  VarId Var = 0;
  /// The access that triggered the warning.
  size_t OpIndex = 0;
  ThreadId CurrentThread = 0;
  OpKind CurrentKind = OpKind::Read;
  /// The conflicting earlier access, when the analysis knows it.
  ThreadId PriorThread = UnknownThread;
  OpKind PriorKind = OpKind::Write;
  /// Free-form detail, e.g. "write-write race" or "empty lockset".
  std::string Detail;
};

/// Renders a warning like "race on x3 at op 17: wr by thread 1 conflicts
/// with wr by thread 0 (write-write race)".
std::string toString(const RaceWarning &W);

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_WARNING_H
