//===--- EpochTest.cpp - packed epoch representation tests ----------------===//

#include "clock/Epoch.h"

#include <gtest/gtest.h>

using namespace ft;

TEST(Epoch, DefaultIsMinimal) {
  Epoch E;
  EXPECT_EQ(E.tid(), 0u);
  EXPECT_EQ(E.clock(), 0u);
  EXPECT_TRUE(E.isMinimal());
  EXPECT_EQ(E.raw(), 0u);
  EXPECT_EQ(E.str(), "0@0");
}

TEST(Epoch, PacksTidInTopEightBits) {
  // Section 4: top eight bits store the tid, bottom twenty-four the clock.
  Epoch E = Epoch::make(5, 1234);
  EXPECT_EQ(E.tid(), 5u);
  EXPECT_EQ(E.clock(), 1234u);
  EXPECT_EQ(E.raw(), (5u << 24) | 1234u);
}

TEST(Epoch, MaxValuesFit) {
  Epoch E = Epoch::make(Epoch::MaxTid, Epoch::MaxClock);
  EXPECT_EQ(E.tid(), Epoch::MaxTid);
  EXPECT_EQ(E.clock(), Epoch::MaxClock);
  EXPECT_EQ(Epoch::MaxTid, 255u);
  EXPECT_EQ(Epoch::MaxClock, (1u << 24) - 1);
}

TEST(Epoch, SameThreadEpochsCompareAsIntegers) {
  // Section 4: two epochs of the same thread compare directly as integers
  // because the tid bits are identical.
  Epoch A = Epoch::make(3, 10);
  Epoch B = Epoch::make(3, 11);
  EXPECT_LT(A.raw(), B.raw());
}

TEST(Epoch, ReadSharedSentinelIsNotAValidEpoch) {
  Epoch RS = Epoch::readShared();
  EXPECT_TRUE(RS.isReadShared());
  EXPECT_FALSE(Epoch().isReadShared());
  EXPECT_FALSE(Epoch::make(255, Epoch::MaxClock - 1).isReadShared());
  EXPECT_EQ(RS.str(), "READ_SHARED");
}

TEST(Epoch, EqualityAndStr) {
  EXPECT_EQ(Epoch::make(0, 4), Epoch::make(0, 4));
  EXPECT_NE(Epoch::make(0, 4), Epoch::make(1, 4));
  EXPECT_NE(Epoch::make(0, 4), Epoch::make(0, 5));
  EXPECT_EQ(Epoch::make(0, 4).str(), "4@0");
  EXPECT_EQ(Epoch::make(1, 8).str(), "8@1");
}

TEST(Epoch, RawRoundTrip) {
  Epoch E = Epoch::make(17, 99);
  EXPECT_EQ(Epoch::fromRaw(E.raw()), E);
}

TEST(Epoch64, SixteenBitTidFortyEightBitClock) {
  // Section 4 mentions 64-bit epochs for large tids or clock values.
  Epoch64 E = Epoch64::make(40000, (1ULL << 40));
  EXPECT_EQ(E.tid(), 40000u);
  EXPECT_EQ(E.clock(), 1ULL << 40);
  EXPECT_EQ(Epoch64::MaxTid, 65535u);
  EXPECT_EQ(Epoch64::MaxClock, (1ULL << 48) - 1);
}

TEST(Epoch64, ReadSharedDistinctFromAllEpochs) {
  EXPECT_TRUE(Epoch64::readShared().isReadShared());
  EXPECT_FALSE(Epoch64::make(65535, 5).isReadShared());
}
