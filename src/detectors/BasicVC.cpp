#include "detectors/BasicVC.h"

#include "framework/Replay.h"

using namespace ft;

void BasicVC::begin(const ToolContext &Context) {
  VectorClockToolBase::begin(Context);
  Vars.assign(Context.NumVars, VarState());
}

ThreadId BasicVC::conflictingThread(const VectorClock &Prior,
                                    ThreadId T) const {
  const VectorClock &Ct = threadClock(T);
  for (ThreadId U = 0; U != Prior.size(); ++U)
    if (Prior.get(U) > Ct.get(U))
      return U;
  return UnknownThread;
}

bool BasicVC::onRead(ThreadId T, VarId X, size_t OpIndex) {
  VarState &State = Vars[X];
  const VectorClock &Ct = threadClock(T);
  if (!State.W.leq(Ct)) {
    RaceWarning W;
    W.Var = X;
    W.OpIndex = OpIndex;
    W.CurrentThread = T;
    W.CurrentKind = OpKind::Read;
    W.PriorThread = conflictingThread(State.W, T);
    W.PriorKind = OpKind::Write;
    W.Detail = "write-read race";
    reportRace(std::move(W));
  }
  State.R.set(T, currentClock(T));
  return true;
}

bool BasicVC::onWrite(ThreadId T, VarId X, size_t OpIndex) {
  VarState &State = Vars[X];
  const VectorClock &Ct = threadClock(T);
  bool WriteRace = !State.W.leq(Ct);
  bool ReadRace = !State.R.leq(Ct);
  if (WriteRace || ReadRace) {
    RaceWarning W;
    W.Var = X;
    W.OpIndex = OpIndex;
    W.CurrentThread = T;
    W.CurrentKind = OpKind::Write;
    W.PriorThread =
        conflictingThread(WriteRace ? State.W : State.R, T);
    W.PriorKind = WriteRace ? OpKind::Write : OpKind::Read;
    W.Detail = WriteRace ? "write-write race" : "read-write race";
    reportRace(std::move(W));
  }
  State.W.set(T, currentClock(T));
  return true;
}

size_t BasicVC::shadowBytes() const {
  size_t Bytes = VectorClockToolBase::shadowBytes();
  for (const VarState &State : Vars)
    Bytes += sizeof(VarState) + State.R.memoryBytes() + State.W.memoryBytes();
  return Bytes;
}

FT_REGISTER_FAST_REPLAY(::ft::BasicVC);
