//===----------------------------------------------------------------------===//
//
// racecheck: a small command-line front end over the trace text format —
// analyze recorded executions from any source with any of the detectors.
//
// Usage:
//   trace_file_tool                     # self-demo on a generated file
//   trace_file_tool FILE.trc [tool...]  # e.g. trace_file_tool t.trc
//                                       #      fasttrack eraser djit+
//
//===----------------------------------------------------------------------===//

#include "core/ToolRegistry.h"
#include "framework/Replay.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ft;

namespace {

int analyze(const std::string &Path, const std::vector<std::string> &Tools) {
  Trace T;
  std::string Error;
  if (!loadTraceFile(Path, T, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  auto Violations = validateTrace(T);
  std::printf("%s: %zu events, %u threads, %u variables, %u locks\n",
              Path.c_str(), T.size(), T.numThreads(), T.numVars(),
              T.numLocks());
  if (!Violations.empty()) {
    std::printf("warning: trace is not feasible (%zu violations); first: "
                "op %zu: %s\n",
                Violations.size(), Violations[0].OpIndex,
                Violations[0].Message.c_str());
  }
  std::printf("%s", computeStats(T).summary().c_str());

  for (const std::string &Name : Tools) {
    auto Detector = createTool(Name);
    if (!Detector) {
      std::fprintf(stderr, "error: unknown tool '%s' (known:", Name.c_str());
      for (const std::string &Known : registeredToolNames())
        std::fprintf(stderr, " %s", Known.c_str());
      std::fprintf(stderr, ")\n");
      return 1;
    }
    ReplayResult Result = replay(T, *Detector);
    std::printf("\n[%s] %zu warning(s) in %.3fs\n", Detector->name(),
                Detector->warnings().size(), Result.Seconds);
    for (const RaceWarning &W : Detector->warnings())
      std::printf("  %s\n", toString(W).c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2) {
    std::vector<std::string> Tools;
    for (int I = 2; I < Argc; ++I)
      Tools.push_back(Argv[I]);
    if (Tools.empty())
      Tools.push_back("fasttrack");
    return analyze(Argv[1], Tools);
  }

  // Self-demo: write a small racy trace to a file, then analyze it.
  std::printf("trace_file_tool self-demo (pass FILE.trc [tools...] to "
              "analyze your own traces)\n\n");
  Trace T = TraceBuilder()
                .fork(0, 1)
                .lockedWr(0, 0, 0)
                .lockedWr(1, 0, 0)
                .wr(0, 1)
                .rd(1, 1) // race on x1
                .join(0, 1)
                .take();
  std::string Path = "demo_trace.trc";
  std::string Error;
  if (!saveTraceFile(Path, T, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("wrote %s:\n%s\n", Path.c_str(), serializeTrace(T).c_str());
  return analyze(Path, {"fasttrack", "djit+", "eraser"});
}
