//===----------------------------------------------------------------------===//
//
// Experiment E16 — memory-governed detection: the budget-enforced shadow
// table (shadow/ShadowPolicy.h) versus the ungoverned paged table on a
// million-variable streaming workload.
//
// One trace, three configurations:
//   ungoverned   policy off: every touched page stays resident forever
//   compressed   governance on, no budget: cold write-only pages pack
//                losslessly; warnings must be identical to ungoverned
//   governed     1 MiB byte budget: watermark trips summarize cold pages
//                to one page-granularity slot; races must still surface
//                in the same page regions
//
// The workload streams writes over 2^20 variables (2048 shadow pages),
// re-reads every fourth page so a quarter of the space carries read
// state the lossless compressor refuses (write-only pages only), churns
// a small hot set to drive maintenance generations, then plants racing
// writes from an unordered thread across the swept space — every race
// lands on a page that is compressed or summarized by the time it fires.
//
// Acceptance: the ungoverned footprint exceeds the governed high water
// by >= 4x, compressed warnings match ungoverned warning-for-warning,
// and the governed run still reports every race's page region.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FastTrack.h"
#include "shadow/ShadowTable.h"
#include "support/Table.h"
#include "trace/TraceBuilder.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace ft;
using namespace ft::bench;

namespace {

constexpr VarId Space = 1u << 20;            // 2048 shadow pages
constexpr uint64_t BudgetBytes = 1u << 20;   // 1 MiB governed budget
constexpr unsigned PlantedRaces = 8;

std::string fixed1(double Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%.1f", Value);
  return Buffer;
}

/// The shared E16 trace (see file header). Thread 1 streams the space;
/// thread 2 is forked before the sweep and never synchronizes with it,
/// so its late writes race with thread 1's accesses.
Trace streamingWorkload(unsigned ChurnPasses) {
  TraceBuilder B;
  B.fork(0, 1).fork(0, 2);
  for (VarId X = 0; X != Space; ++X)
    B.wr(1, X);
  // Read-mark every fourth page: per-var read epochs block lossless
  // compression there, so holding the budget requires summarization.
  for (VarId Page = 0; Page != (Space >> ShadowPageShift); Page += 4)
    for (VarId X = 0; X != ShadowPageVars; ++X)
      B.rd(1, (Page << ShadowPageShift) + X);
  // Hot-set churn keeps accesses flowing while the swept pages cool
  // through the maintenance generations.
  for (unsigned P = 0; P != ChurnPasses; ++P)
    B.wr(1, 7).rd(1, 7);
  // Planted races: pages 0, 256, 512, ... are all read-marked pages, so
  // under the budget each racing access lands on a summarized region.
  for (unsigned I = 0; I != PlantedRaces; ++I)
    B.wr(2, I * (Space / PlantedRaces) + 123);
  B.join(0, 1).join(0, 2);
  return B.take();
}

struct ConfigResult {
  const char *Name;
  const char *JsonPrefix;
  ReplayResult Replay;
  size_t ShadowBytes = 0;
  ShadowGovernorStats Gov;
  std::vector<RaceWarning> Warnings;
};

ConfigResult run(const char *Name, const char *JsonPrefix, const Trace &T,
                 const ShadowMemoryPolicy &Policy) {
  FastTrackOptions Options;
  Options.Memory = Policy;
  FastTrack Tool(Options);
  ConfigResult R;
  R.Name = Name;
  R.JsonPrefix = JsonPrefix;
  R.Replay = timedReplay(T, Tool);
  R.ShadowBytes = Tool.shadowBytes();
  R.Gov = Tool.shadowGovernorStats();
  R.Warnings = Tool.warnings();
  return R;
}

bool sameWarnings(const std::vector<RaceWarning> &A,
                  const std::vector<RaceWarning> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Var != B[I].Var || A[I].OpIndex != B[I].OpIndex ||
        A[I].CurrentThread != B[I].CurrentThread ||
        A[I].Detail != B[I].Detail)
      return false;
  return true;
}

/// Page-granularity soundness: every ungoverned warning's page region is
/// warned somewhere in the governed run.
bool regionsCovered(const std::vector<RaceWarning> &Dense,
                    const std::vector<RaceWarning> &Governed) {
  std::vector<VarId> Regions;
  for (const RaceWarning &W : Governed)
    Regions.push_back(W.Var >> ShadowPageShift);
  std::sort(Regions.begin(), Regions.end());
  for (const RaceWarning &W : Dense)
    if (!std::binary_search(Regions.begin(), Regions.end(),
                            W.Var >> ShadowPageShift))
      return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("bench_shadow_pressure", argc, argv);
  banner("E16: budget-enforced shadow memory vs ungoverned paged table");

  const unsigned Churn = static_cast<unsigned>(
      20000 * sizeFactor() < 1 ? 1 : 20000 * sizeFactor());
  const Trace T = streamingWorkload(Churn);

  ShadowMemoryPolicy Off;

  ShadowMemoryPolicy Compress;
  Compress.Enabled = true;

  ShadowMemoryPolicy Budget;
  Budget.Enabled = true;
  Budget.BudgetBytes = BudgetBytes;
  Budget.ColdAgeTicks = 1;

  ConfigResult Results[] = {
      run("ungoverned", "ungoverned", T, Off),
      run("compressed", "compressed", T, Compress),
      run("governed-1MiB", "governed", T, Budget),
  };
  const ConfigResult &Dense = Results[0];
  const ConfigResult &Packed = Results[1];
  const ConfigResult &Gov = Results[2];

  Table Out;
  Out.addHeader({"Config", "ns/event", "Shadow bytes", "High water",
                 "Compressed", "Summarized", "Trips", "Warnings"});
  for (const ConfigResult &R : Results) {
    double NsPerEvent = R.Replay.Events
                            ? R.Replay.Seconds * 1e9 /
                                  static_cast<double>(R.Replay.Events)
                            : 0;
    uint64_t HighWater =
        R.Gov.ShadowBytesHighWater ? R.Gov.ShadowBytesHighWater
                                   : R.ShadowBytes;
    Out.addRow({R.Name, fixed1(NsPerEvent), withCommas(R.ShadowBytes),
                withCommas(HighWater), withCommas(R.Gov.PagesCompressed),
                withCommas(R.Gov.PagesSummarized),
                withCommas(R.Gov.BudgetTrips),
                withCommas(R.Warnings.size())});

    std::string Prefix = R.JsonPrefix;
    Report.metric(Prefix + "_ns_per_event", NsPerEvent, "ns");
    Report.metric(Prefix + "_shadow_bytes",
                  static_cast<double>(R.ShadowBytes), "bytes");
    Report.metric(Prefix + "_high_water", static_cast<double>(HighWater),
                  "bytes");
    Report.metric(Prefix + "_pages_compressed",
                  static_cast<double>(R.Gov.PagesCompressed));
    Report.metric(Prefix + "_pages_summarized",
                  static_cast<double>(R.Gov.PagesSummarized));
    Report.metric(Prefix + "_budget_trips",
                  static_cast<double>(R.Gov.BudgetTrips));
    Report.metric(Prefix + "_warnings",
                  static_cast<double>(R.Warnings.size()));
  }
  std::fputs(Out.render().c_str(), stdout);

  const bool LosslessEqual = sameWarnings(Dense.Warnings, Packed.Warnings);
  const bool Sound = regionsCovered(Dense.Warnings, Gov.Warnings);
  const uint64_t GovHighWater = Gov.Gov.ShadowBytesHighWater;
  const double Ratio = GovHighWater
                           ? static_cast<double>(Dense.ShadowBytes) /
                                 static_cast<double>(GovHighWater)
                           : 0;
  const bool UnderBudget =
      GovHighWater != 0 &&
      GovHighWater <= BudgetBytes + (64u << 10); // one maintenance overshoot

  Report.metric("budget_bytes", static_cast<double>(BudgetBytes), "bytes");
  Report.metric("footprint_ratio", Ratio, "x");
  Report.metric("budget_held", UnderBudget ? 1 : 0, "bool");
  Report.metric("lossless_warnings_equal", LosslessEqual ? 1 : 0, "bool");
  Report.metric("governed_regions_sound", Sound ? 1 : 0, "bool");

  std::printf("\nBudget %s: governed high water %s vs ungoverned %s bytes "
              "(%sx).\n",
              withCommas(BudgetBytes).c_str(),
              withCommas(GovHighWater).c_str(),
              withCommas(Dense.ShadowBytes).c_str(), fixed1(Ratio).c_str());
  std::printf("Lossless compression warning-for-warning equal: %s; "
              "governed run covers every raced page region: %s.\n",
              LosslessEqual ? "yes" : "NO", Sound ? "yes" : "NO");
  std::printf("Acceptance: ratio >= 4x with the budget held, warnings "
              "equal under compression, regions sound under the budget.\n");

  const bool Accept = Ratio >= 4.0 && UnderBudget && LosslessEqual && Sound;
  if (!Accept)
    std::fprintf(stderr, "error: E16 acceptance check failed\n");
  return (Report.write() && Accept) ? 0 : 1;
}
