//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event dispatcher: replays a trace through one tool (or a filter →
/// tool pipeline) and gathers the measurements every experiment needs —
/// wall time, vector-clock counter deltas, shadow memory, warning counts.
///
/// Two RoadRunner behaviours are reproduced here rather than inside each
/// tool, so that all tools benefit identically:
///   - re-entrant lock acquires/releases (which are redundant) are
///     filtered out (Section 4, "ROADRUNNER");
///   - fine/coarse analysis granularity is applied by remapping variable
///     ids before dispatch (Section 4, "Granularity").
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_REPLAY_H
#define FASTTRACK_FRAMEWORK_REPLAY_H

#include "clock/ClockStats.h"
#include "framework/Tool.h"
#include "support/MemoryTracker.h"
#include "support/Status.h"
#include "support/Stopwatch.h"
#include "trace/ReentrancyFilter.h"
#include "trace/Trace.h"

#include <algorithm>
#include <limits>
#include <type_traits>
#include <typeinfo>

namespace ft {

/// Analysis granularity (Section 4). Fine: every variable is its own
/// shadow entity. Coarse: variables are grouped into objects, trading
/// precision for memory.
enum class Granularity : uint8_t { Fine, Coarse };

class GranularityMap;

/// Options controlling one replay.
struct ReplayOptions {
  Granularity Gran = Granularity::Fine;

  /// Under coarse granularity, maps each variable to its object. When
  /// null, the default mapping Var / DefaultFieldsPerObject is used.
  const std::vector<uint32_t> *VarToObject = nullptr;

  /// Fields per object for the default coarse mapping.
  unsigned DefaultFieldsPerObject = 8;

  /// Strip redundant re-entrant lock acquires/releases before dispatch.
  bool FilterReentrantLocks = true;

  /// Soft shadow-memory budget in bytes; 0 (the default) is unlimited.
  /// When set, the replay loop probes the tool's shadowBytes() every
  /// BudgetCheckEveryOps operations and stops early — setting
  /// ReplayResult::BudgetExceeded — on breach. Callers that want
  /// degrade-instead-of-die semantics use replayGoverned()
  /// (framework/ResourceGovernor.h), which retries at coarser
  /// granularity instead of surfacing the truncated run.
  uint64_t ShadowBudgetBytes = 0;

  /// How often (in trace operations) the budget probe runs. Probes cost
  /// an O(state) shadowBytes() walk, so they are amortized.
  unsigned BudgetCheckEveryOps = 4096;

  /// Optional tracker that receives every budget probe via sampleLive(),
  /// so callers observe live/peak shadow bytes across the replay. Not
  /// consulted for the budget itself (ShadowBudgetBytes is).
  MemoryTracker *BudgetTracker = nullptr;
};

/// Precomputed variable remapping for the requested granularity. Shared
/// by the serial and sharded replay engines so both dispatch identical
/// variable ids (and the shard partitioner groups whole objects).
class GranularityMap {
public:
  static GranularityMap make(const ReplayOptions &Options) {
    GranularityMap Map;
    if (Options.Gran == Granularity::Fine)
      return Map;
    Map.Identity = false;
    Map.Explicit = Options.VarToObject;
    Map.Divisor =
        Options.DefaultFieldsPerObject ? Options.DefaultFieldsPerObject : 1;
    return Map;
  }

  VarId map(VarId X) const {
    if (Identity)
      return X;
    if (Explicit)
      return X < Explicit->size() ? (*Explicit)[X] : X;
    return X / Divisor;
  }

  bool identity() const { return Identity; }

private:
  const std::vector<uint32_t> *Explicit = nullptr;
  unsigned Divisor = 1;
  bool Identity = true;
};

/// Builds the ToolContext for replaying \p T under \p Map (entity counts
/// already reflect the granularity remapping).
ToolContext makeToolContext(const Trace &T, const GranularityMap &Map);

/// Dispatches one non-access operation to \p Checker. Shared by the
/// serial loop, the pipeline loop, and the sharded engine's sync-replay
/// workers.
void dispatchSyncOp(Tool &Checker, const Trace &T, const Operation &Op,
                    size_t I);

/// Measurements from one replay.
struct ReplayResult {
  double Seconds = 0;            ///< Wall-clock time of the replay loop.
  uint64_t Events = 0;           ///< Events dispatched to the tool.
  uint64_t AccessesPassed = 0;   ///< Accesses the tool flagged interesting.
  ClockStats Clocks;             ///< Delta of the global VC counters.
  size_t ShadowBytes = 0;        ///< Tool-reported shadow state at end.
  size_t NumWarnings = 0;        ///< Warnings after the replay.

  /// True when the replay stopped early because ShadowBudgetBytes was
  /// breached; StoppedAtOp then holds the trace index after the last
  /// processed operation (== trace size on a completed run).
  bool BudgetExceeded = false;
  size_t StoppedAtOp = 0;
};

namespace detail {

/// The shared replay loop. \p ForEachAccess receives the access events and
/// decides what "passed" means; sync events are dispatched via \p Sync.
/// \p Probe reports the tool-side shadow bytes for the budget governor.
/// \returns the trace index after the last processed operation — T.size()
/// on completion, earlier (with \p BudgetExceeded set) on a budget stop.
///
/// Reads and writes dominate every workload in the suite (the paper's
/// benchmarks run ~96% accesses), so the loop is arranged with the access
/// dispatch as the predicted-taken straight-line path: one branch on
/// isAccess(), then the sync switch only for the rare remainder. The
/// budget probe is a single equality test against a precomputed next-fire
/// index rather than a modulo per event.
template <typename AccessFn, typename SyncFn, typename ProbeFn>
size_t replayLoop(const Trace &T, const ReplayOptions &Options,
                  const GranularityMap &Map, AccessFn &&Access, SyncFn &&Sync,
                  ProbeFn &&Probe, uint64_t &Events, bool &BudgetExceeded) {
  ReentrancyFilter Reentrancy(T.numThreads(), T.numLocks());
  const bool FilterLocks = Options.FilterReentrantLocks;
  const uint64_t Budget = Options.ShadowBudgetBytes;
  const bool Probing = Budget != 0 || Options.BudgetTracker != nullptr;
  const size_t CheckEvery = std::max(1u, Options.BudgetCheckEveryOps);
  size_t NextProbe =
      Probing ? CheckEvery : std::numeric_limits<size_t>::max();

  for (size_t I = 0, E = T.size(); I != E; ++I) {
    if (I == NextProbe) {
      NextProbe += CheckEvery;
      uint64_t Live = Probe();
      if (Options.BudgetTracker)
        Options.BudgetTracker->sampleLive(Live);
      if (Budget != 0 && Live > Budget) {
        BudgetExceeded = true;
        return I;
      }
    }
    const Operation &Op = T[I];
    if (isAccess(Op.Kind)) {
      ++Events;
      Access(Op.Kind, Op.Thread, Map.map(Op.Target), I);
      continue;
    }
    if (FilterLocks) {
      if (Op.Kind == OpKind::Acquire &&
          !Reentrancy.onAcquire(Op.Thread, Op.Target))
        continue;
      if (Op.Kind == OpKind::Release &&
          !Reentrancy.onRelease(Op.Thread, Op.Target))
        continue;
    }
    ++Events;
    Sync(Op, I);
  }
  return T.size();
}

/// Dispatches onRead non-virtually when the concrete tool type is known
/// at compile time (the qualified call pins the override, which lets the
/// compiler inline FastTrack's same-epoch fast path straight into the
/// replay loop). The ToolT == Tool instantiation keeps the virtual call
/// for type-erased callers.
template <typename ToolT>
inline bool callOnRead(ToolT &Checker, ThreadId T, VarId X, size_t I) {
  if constexpr (std::is_same_v<ToolT, Tool>)
    return Checker.onRead(T, X, I);
  else
    return Checker.ToolT::onRead(T, X, I);
}

template <typename ToolT>
inline bool callOnWrite(ToolT &Checker, ThreadId T, VarId X, size_t I) {
  if constexpr (std::is_same_v<ToolT, Tool>)
    return Checker.onWrite(T, X, I);
  else
    return Checker.ToolT::onWrite(T, X, I);
}

} // namespace detail

/// Replays \p T through \p Checker with the access handlers dispatched
/// non-virtually for the concrete \p ToolT. Correct only when \p Checker
/// really is a \p ToolT (not a further-derived type that overrides
/// onRead/onWrite again); replay() enforces that with an exact-type check
/// before selecting this path. Sync handlers stay virtual — they are off
/// the hot path.
template <typename ToolT>
ReplayResult replayWithTool(const Trace &T, ToolT &Checker,
                            const ReplayOptions &Options = ReplayOptions()) {
  GranularityMap Map = GranularityMap::make(Options);
  ReplayResult Result;
  ClockStats Before = clockStats();

  Stopwatch Watch;
  Checker.begin(makeToolContext(T, Map));
  Result.StoppedAtOp = detail::replayLoop(
      T, Options, Map,
      [&](OpKind Kind, ThreadId Thread, VarId X, size_t I) {
        bool Passed = Kind == OpKind::Read
                          ? detail::callOnRead(Checker, Thread, X, I)
                          : detail::callOnWrite(Checker, Thread, X, I);
        Result.AccessesPassed += Passed;
      },
      [&](const Operation &Op, size_t I) { dispatchSyncOp(Checker, T, Op, I); },
      [&] { return Checker.shadowBytes(); }, Result.Events,
      Result.BudgetExceeded);
  Checker.end();
  Result.Seconds = Watch.seconds();

  Result.Clocks = clockStats() - Before;
  Result.ShadowBytes = Checker.shadowBytes();
  Result.NumWarnings = Checker.warnings().size();
  return Result;
}

/// A probe tried by replay() before falling back to virtual dispatch:
/// returns true (and fills \p Result) when it recognizes the dynamic type
/// of \p Checker and ran the devirtualized loop for it.
using FastReplayProbeFn = bool (*)(const Trace &T, Tool &Checker,
                                   const ReplayOptions &Options,
                                   ReplayResult &Result);

/// Adds \p Probe to the registry replay() consults. Called from static
/// initializers in each tool's translation unit (so a tool that is linked
/// in is automatically fast-pathed, and one that isn't costs nothing).
void registerFastReplay(FastReplayProbeFn Probe);

/// The generic probe for concrete tool \p ToolT: exact dynamic-type match
/// only, so a subclass of a registered tool safely falls back to the
/// virtual path.
template <typename ToolT>
bool fastReplayProbe(const Trace &T, Tool &Checker,
                     const ReplayOptions &Options, ReplayResult &Result) {
  if (typeid(Checker) != typeid(ToolT))
    return false;
  Result = replayWithTool(T, static_cast<ToolT &>(Checker), Options);
  return true;
}

/// Registers fastReplayProbe<ToolT> at static-initialization time.
struct FastReplayRegistrar {
  explicit FastReplayRegistrar(FastReplayProbeFn Probe) {
    registerFastReplay(Probe);
  }
};

#define FT_FAST_REPLAY_CONCAT2(A, B) A##B
#define FT_FAST_REPLAY_CONCAT(A, B) FT_FAST_REPLAY_CONCAT2(A, B)

/// Place in the tool's own .cpp, where the access handlers' bodies are
/// visible to the replayWithTool instantiation.
#define FT_REGISTER_FAST_REPLAY(ToolT)                                         \
  static ::ft::FastReplayRegistrar FT_FAST_REPLAY_CONCAT(                      \
      FtFastReplayRegistrar_, __LINE__)(&::ft::fastReplayProbe<ToolT>)

/// Replays \p T through \p Checker. Consults the fast-replay registry
/// first: when \p Checker's exact type was registered, the devirtualized
/// replayWithTool<ToolT> loop runs; otherwise the loop dispatches
/// virtually. Results are identical either way.
ReplayResult replay(const Trace &T, Tool &Checker,
                    const ReplayOptions &Options = ReplayOptions());

/// Measurements from one filtered (composed) replay.
struct PipelineResult {
  ReplayResult Total;            ///< Timing of the whole pipeline.
  uint64_t AccessesSeen = 0;     ///< Accesses entering the filter.
  uint64_t AccessesForwarded = 0;///< Accesses the filter let through.
};

/// Replays \p T through the composition Filter → Downstream: every
/// synchronization event reaches both tools; read/write events reach
/// \p Downstream only when \p Filter's handler returns true. This is the
/// analogue of RoadRunner's "-tool FastTrack:Velodrome" chaining.
PipelineResult replayFiltered(const Trace &T, Tool &Filter, Tool &Downstream,
                              const ReplayOptions &Options = ReplayOptions());

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_REPLAY_H
