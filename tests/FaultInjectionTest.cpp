//===--- FaultInjectionTest.cpp - kill, corrupt, starve, stall ------------===//
//
// Deterministic fault injection for the fault-tolerant replay pipeline:
//   - checkpoint/resume under injected kills, corrupt images, and
//     mismatched traces (framework/Checkpoint.h) — resumed runs must be
//     bit-identical to uninterrupted ones, invalid images must only ever
//     cost time;
//   - shadow-memory budgets and the degradation ladder
//     (framework/ResourceGovernor.h) — a starved replay completes at
//     coarser granularity with a warning instead of dying;
//   - stalled parallel-replay workers (framework/ParallelReplay.h) — the
//     watchdog cancels the sharded attempt and the serial fallback
//     produces the same warnings.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "framework/Checkpoint.h"
#include "framework/ParallelReplay.h"
#include "framework/ResourceGovernor.h"
#include "framework/ToolGroup.h"
#include "runtime/FaultPlan.h"
#include "support/ByteStream.h"
#include "support/MemoryTracker.h"
#include "trace/RandomTrace.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace ft;

namespace {

/// A chaotic trace with enough events for several checkpoint intervals
/// and enough races for the warning comparisons to have teeth.
Trace makeRacyTrace(uint64_t Seed, unsigned OpsPerThread = 400) {
  RandomTraceConfig Config;
  Config.Seed = Seed;
  Config.NumThreads = 4;
  Config.NumVars = 64;
  Config.OpsPerThread = OpsPerThread;
  Config.ChaosProbability = 0.15;
  return generateRandomTrace(Config);
}

void expectSameWarnings(const std::vector<RaceWarning> &Expected,
                        const std::vector<RaceWarning> &Actual,
                        const char *Where) {
  ASSERT_EQ(Expected.size(), Actual.size()) << Where;
  for (size_t I = 0; I != Expected.size(); ++I) {
    EXPECT_EQ(Expected[I].Var, Actual[I].Var) << Where << " #" << I;
    EXPECT_EQ(Expected[I].OpIndex, Actual[I].OpIndex) << Where << " #" << I;
    EXPECT_EQ(Expected[I].CurrentThread, Actual[I].CurrentThread)
        << Where << " #" << I;
    EXPECT_EQ(Expected[I].PriorThread, Actual[I].PriorThread)
        << Where << " #" << I;
    EXPECT_EQ(Expected[I].Detail, Actual[I].Detail) << Where << " #" << I;
  }
}

void expectSameRuleStats(const FastTrackRuleStats &A,
                         const FastTrackRuleStats &B, const char *Where) {
  EXPECT_EQ(A.ReadSameEpoch, B.ReadSameEpoch) << Where;
  EXPECT_EQ(A.ReadShared, B.ReadShared) << Where;
  EXPECT_EQ(A.ReadExclusive, B.ReadExclusive) << Where;
  EXPECT_EQ(A.ReadShare, B.ReadShare) << Where;
  EXPECT_EQ(A.WriteSameEpoch, B.WriteSameEpoch) << Where;
  EXPECT_EQ(A.WriteExclusive, B.WriteExclusive) << Where;
  EXPECT_EQ(A.WriteShared, B.WriteShared) << Where;
}

/// The strongest equality check available: the full serialized analysis
/// state σ = (C, L, R, W) plus rule counters, byte for byte.
std::string shadowImage(const FastTrack &Tool) {
  ByteWriter Writer;
  Tool.snapshotShadow(Writer);
  return std::string(Writer.bytes());
}

bool fileExists(const std::string &Path) {
  if (std::FILE *File = std::fopen(Path.c_str(), "rb")) {
    std::fclose(File);
    return true;
  }
  return false;
}

bool hasDiag(const std::vector<Diagnostic> &Diags, StatusCode Code) {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

} // namespace

TEST(Checkpoint, NoFileMatchesPlainReplay) {
  // With checkpointing disabled the driver must mirror replay() exactly.
  Trace T = makeRacyTrace(11);
  FastTrack Plain, Checkpointed;
  ReplayResult Reference = replay(T, Plain);
  CheckpointedReplayResult Result = replayCheckpointed(T, Checkpointed);
  EXPECT_TRUE(Result.St.ok());
  EXPECT_FALSE(Result.Resumed);
  EXPECT_EQ(Result.CheckpointsWritten, 0u);
  EXPECT_EQ(Result.Result.Events, Reference.Events);
  EXPECT_EQ(Result.Result.AccessesPassed, Reference.AccessesPassed);
  expectSameWarnings(Plain.warnings(), Checkpointed.warnings(), "no-file");
  expectSameRuleStats(Plain.ruleStats(), Checkpointed.ruleStats(), "no-file");
  EXPECT_EQ(shadowImage(Plain), shadowImage(Checkpointed));
}

TEST(Checkpoint, KillAndResumeIsBitIdentical) {
  Trace T = makeRacyTrace(12);
  FastTrack Reference;
  ReplayResult Uninterrupted = replay(T, Reference);

  const std::string Path = "fault_kill_resume.ckpt";
  std::remove(Path.c_str());
  CheckpointOptions Ck;
  Ck.Path = Path;
  Ck.EveryOps = 64;

  // Run 1: killed mid-trace. No end() hook fires, no state is flushed —
  // only the periodically renamed-into-place checkpoints survive.
  CheckpointOptions Crash = Ck;
  Crash.InjectCrashAfterOps = 500;
  FastTrack Victim;
  CheckpointedReplayResult Killed = replayCheckpointed(T, Victim, {}, Crash);
  EXPECT_EQ(Killed.St.code(), StatusCode::Cancelled);
  EXPECT_GT(Killed.CheckpointsWritten, 0u);
  EXPECT_LT(Killed.Result.StoppedAtOp, T.size());
  ASSERT_TRUE(fileExists(Path));

  // Run 2: a fresh process (fresh tool) resumes and finishes.
  FastTrack Survivor;
  CheckpointedReplayResult Resumed = replayCheckpointed(T, Survivor, {}, Ck);
  EXPECT_TRUE(Resumed.St.ok());
  EXPECT_TRUE(Resumed.Resumed);
  EXPECT_GT(Resumed.ResumedAtOp, 0u);
  EXPECT_EQ(Resumed.ResumedAtOp % Ck.EveryOps, 0u);

  EXPECT_EQ(Resumed.Result.Events, Uninterrupted.Events);
  EXPECT_EQ(Resumed.Result.AccessesPassed, Uninterrupted.AccessesPassed);
  expectSameWarnings(Reference.warnings(), Survivor.warnings(), "resume");
  expectSameRuleStats(Reference.ruleStats(), Survivor.ruleStats(), "resume");
  EXPECT_EQ(shadowImage(Reference), shadowImage(Survivor));

  // A completed run cleans up its checkpoint.
  EXPECT_FALSE(fileExists(Path));
}

TEST(Checkpoint, RepeatedKillsEventuallyComplete) {
  // A run that dies every 300 ops still finishes: each attempt resumes
  // from the last checkpoint and makes >= (300 - 64) ops of progress.
  Trace T = makeRacyTrace(13, /*OpsPerThread=*/500);
  FastTrack Reference;
  replay(T, Reference);

  const std::string Path = "fault_repeated_kills.ckpt";
  std::remove(Path.c_str());
  CheckpointOptions Ck;
  Ck.Path = Path;
  Ck.EveryOps = 64;
  Ck.InjectCrashAfterOps = 300;

  int Attempts = 0;
  FastTrack Final;
  for (; Attempts != 60; ++Attempts) {
    FastTrack Tool;
    CheckpointedReplayResult Result = replayCheckpointed(T, Tool, {}, Ck);
    if (Result.St.ok()) {
      expectSameWarnings(Reference.warnings(), Tool.warnings(), "repeated");
      expectSameRuleStats(Reference.ruleStats(), Tool.ruleStats(),
                          "repeated");
      EXPECT_EQ(shadowImage(Reference), shadowImage(Tool));
      break;
    }
    EXPECT_EQ(Result.St.code(), StatusCode::Cancelled);
  }
  EXPECT_GT(Attempts, 1);
  EXPECT_LT(Attempts, 60);
}

TEST(Checkpoint, CorruptImageIsIgnoredWithDiagnostic) {
  Trace T = makeRacyTrace(14);
  FastTrack Reference;
  replay(T, Reference);

  const std::string Path = "fault_corrupt.ckpt";
  std::remove(Path.c_str());
  CheckpointOptions Ck;
  Ck.Path = Path;
  Ck.EveryOps = 64;

  CheckpointOptions Crash = Ck;
  Crash.InjectCrashAfterOps = 400;
  FastTrack Victim;
  replayCheckpointed(T, Victim, {}, Crash);
  ASSERT_TRUE(fileExists(Path));

  // Flip one byte mid-image; the trailing checksum must catch it.
  {
    std::FILE *File = std::fopen(Path.c_str(), "rb+");
    ASSERT_NE(File, nullptr);
    std::fseek(File, 100, SEEK_SET);
    int C = std::fgetc(File);
    std::fseek(File, 100, SEEK_SET);
    std::fputc(C ^ 0x40, File);
    std::fclose(File);
  }

  FastTrack Tool;
  CheckpointedReplayResult Result = replayCheckpointed(T, Tool, {}, Ck);
  EXPECT_TRUE(Result.St.ok());
  EXPECT_FALSE(Result.Resumed);
  EXPECT_TRUE(hasDiag(Result.Diags, StatusCode::CheckpointError));
  expectSameWarnings(Reference.warnings(), Tool.warnings(), "corrupt");
  EXPECT_EQ(shadowImage(Reference), shadowImage(Tool));
}

TEST(Checkpoint, WrongTraceIsRejectedByFingerprint) {
  Trace A = makeRacyTrace(15);
  Trace B = makeRacyTrace(16);
  FastTrack ReferenceB;
  replay(B, ReferenceB);

  const std::string Path = "fault_wrong_trace.ckpt";
  std::remove(Path.c_str());
  CheckpointOptions Ck;
  Ck.Path = Path;
  Ck.EveryOps = 64;

  CheckpointOptions Crash = Ck;
  Crash.InjectCrashAfterOps = 400;
  FastTrack Victim;
  replayCheckpointed(A, Victim, {}, Crash);
  ASSERT_TRUE(fileExists(Path));

  // Resuming trace B against A's checkpoint must start B from scratch.
  FastTrack Tool;
  CheckpointedReplayResult Result = replayCheckpointed(B, Tool, {}, Ck);
  EXPECT_TRUE(Result.St.ok());
  EXPECT_FALSE(Result.Resumed);
  EXPECT_TRUE(hasDiag(Result.Diags, StatusCode::CheckpointError));
  expectSameWarnings(ReferenceB.warnings(), Tool.warnings(), "wrong-trace");
  EXPECT_EQ(shadowImage(ReferenceB), shadowImage(Tool));
}

TEST(Checkpoint, ConfigMismatchIsRejectedByFingerprint) {
  // Same trace, different granularity: the shadow layouts are
  // incompatible, so the fingerprint must differ.
  Trace T = makeRacyTrace(17);
  const std::string Path = "fault_config_mismatch.ckpt";
  std::remove(Path.c_str());
  CheckpointOptions Ck;
  Ck.Path = Path;
  Ck.EveryOps = 64;

  CheckpointOptions Crash = Ck;
  Crash.InjectCrashAfterOps = 400;
  FastTrack Victim;
  replayCheckpointed(T, Victim, {}, Crash);
  ASSERT_TRUE(fileExists(Path));

  ReplayOptions Coarse;
  Coarse.Gran = Granularity::Coarse;
  FastTrack CoarseReference;
  replay(T, CoarseReference, Coarse);
  FastTrack Tool;
  CheckpointedReplayResult Result = replayCheckpointed(T, Tool, Coarse, Ck);
  EXPECT_TRUE(Result.St.ok());
  EXPECT_FALSE(Result.Resumed);
  EXPECT_TRUE(hasDiag(Result.Diags, StatusCode::CheckpointError));
  expectSameWarnings(CoarseReference.warnings(), Tool.warnings(),
                     "config-mismatch");
  std::remove(Path.c_str());
}

namespace {

/// A tool without checkpoint support (no ShardableTool base at all).
class PlainCounter : public Tool {
public:
  const char *name() const override { return "PlainCounter"; }
  bool onRead(ThreadId, VarId, size_t) override {
    ++Reads;
    return true;
  }
  uint64_t Reads = 0;
};

} // namespace

TEST(Checkpoint, NonCheckpointableToolDegradesGracefully) {
  Trace T = makeRacyTrace(18);
  const std::string Path = "fault_unsupported.ckpt";
  std::remove(Path.c_str());
  CheckpointOptions Ck;
  Ck.Path = Path;
  Ck.EveryOps = 64;

  PlainCounter Tool;
  CheckpointedReplayResult Result = replayCheckpointed(T, Tool, {}, Ck);
  EXPECT_TRUE(Result.St.ok());
  EXPECT_TRUE(hasDiag(Result.Diags, StatusCode::CheckpointError));
  EXPECT_EQ(Result.CheckpointsWritten, 0u);
  EXPECT_FALSE(fileExists(Path));
  EXPECT_GT(Tool.Reads, 0u); // the replay itself still ran
}

TEST(Governor, BudgetBreachDegradesAndCompletes) {
  // Starve a fine-granularity replay: the governor must walk the ladder
  // and finish at coarse granularity with warnings, never die.
  Trace T = makeRacyTrace(19);
  FastTrack Tool;
  GovernorOptions Gov;
  Gov.ShadowBudgetBytes = 2048; // far below fine-granularity needs
  Gov.BudgetCheckEveryOps = 16;
  MemoryTracker Tracker;
  Gov.Tracker = &Tracker;

  GovernedReplayResult Result = replayGoverned(T, Tool, {}, Gov);
  EXPECT_TRUE(Result.St.ok());
  EXPECT_GE(Result.Degradations, 1u);
  EXPECT_EQ(Result.FinalGran, Granularity::Coarse);
  EXPECT_FALSE(Result.Result.BudgetExceeded);
  EXPECT_EQ(Result.Result.StoppedAtOp, T.size());
  EXPECT_TRUE(hasDiag(Result.Diags, StatusCode::ResourceExhausted));
  EXPECT_GT(Tracker.peakBytes(), 0u);

  // The completed attempt equals a from-scratch run at that granularity.
  ReplayOptions Coarse;
  Coarse.Gran = Granularity::Coarse;
  Coarse.DefaultFieldsPerObject = Result.FinalFieldsPerObject;
  FastTrack Reference;
  replay(T, Reference, Coarse);
  expectSameWarnings(Reference.warnings(), Tool.warnings(), "degraded");
  expectSameRuleStats(Reference.ruleStats(), Tool.ruleStats(), "degraded");
}

TEST(Governor, UnlimitedBudgetNeverDegrades) {
  Trace T = makeRacyTrace(20);
  FastTrack Governed, Plain;
  GovernedReplayResult Result = replayGoverned(T, Governed);
  replay(T, Plain);
  EXPECT_EQ(Result.Degradations, 0u);
  EXPECT_EQ(Result.FinalGran, Granularity::Fine);
  EXPECT_TRUE(Result.Diags.empty());
  expectSameWarnings(Plain.warnings(), Governed.warnings(), "unlimited");
}

TEST(Governor, AmpleBudgetStaysFine) {
  Trace T = makeRacyTrace(21);
  FastTrack Tool;
  GovernorOptions Gov;
  Gov.ShadowBudgetBytes = 1ull << 30;
  GovernedReplayResult Result = replayGoverned(T, Tool, {}, Gov);
  EXPECT_EQ(Result.Degradations, 0u);
  EXPECT_EQ(Result.FinalGran, Granularity::Fine);
}

TEST(Replay, BudgetStopsEarlyAtProbeBoundary) {
  Trace T = makeRacyTrace(22);
  FastTrack Tool;
  ReplayOptions Options;
  Options.ShadowBudgetBytes = 1; // impossible: first probe breaches
  Options.BudgetCheckEveryOps = 8;
  ReplayResult Result = replay(T, Tool, Options);
  EXPECT_TRUE(Result.BudgetExceeded);
  EXPECT_LT(Result.StoppedAtOp, T.size());
  EXPECT_EQ(Result.StoppedAtOp % 8, 0u);
}

TEST(Replay, BudgetTrackerObservesPeakWithoutBudget) {
  Trace T = makeRacyTrace(23);
  FastTrack Tool;
  MemoryTracker Tracker;
  ReplayOptions Options;
  Options.BudgetTracker = &Tracker;
  Options.BudgetCheckEveryOps = 16;
  ReplayResult Result = replay(T, Tool, Options);
  EXPECT_FALSE(Result.BudgetExceeded);
  EXPECT_EQ(Result.StoppedAtOp, T.size());
  EXPECT_GT(Tracker.peakBytes(), 0u);
}

TEST(Watchdog, StalledWorkerFallsBackToSerial) {
  Trace T = makeRacyTrace(24);
  FastTrack Reference;
  replay(T, Reference);

  FastTrack Tool;
  ParallelReplayOptions Options;
  Options.NumShards = 4;
  Options.WatchdogTimeoutMs = 50;
  Options.InjectStallShard = 2;
  ParallelReplayResult Result = parallelReplay(T, Tool, Options);
  EXPECT_TRUE(Result.WatchdogFired);
  EXPECT_FALSE(Result.Sharded);
  EXPECT_TRUE(hasDiag(Result.Diags, StatusCode::Stalled));
  expectSameWarnings(Reference.warnings(), Tool.warnings(), "stall");
  expectSameRuleStats(Reference.ruleStats(), Tool.ruleStats(), "stall");
  EXPECT_EQ(Result.Total.NumWarnings, Reference.warnings().size());
}

TEST(Quarantine, ThrowingMemberIsIsolatedSiblingsKeepDetecting) {
  // A composition survives one member throwing mid-stream: the group
  // quarantines it at the faulting op and the healthy sibling's verdicts
  // are exactly what it would have produced running alone.
  Trace T = makeRacyTrace(26);
  FastTrack Reference;
  replay(T, Reference);

  FastTrack Healthy, Victim;
  ft::runtime::ThrowAfterTool Bomb(Victim, 50);
  ToolGroup Group({&Healthy, &Bomb});
  ReplayResult Result = replay(T, Group);

  EXPECT_EQ(Result.Events, T.size()); // the replay itself never aborted
  EXPECT_FALSE(Group.quarantined(0));
  EXPECT_TRUE(Group.quarantined(1));
  EXPECT_EQ(Group.activeMembers(), 1u);
  ASSERT_EQ(Group.diags().size(), 1u);
  EXPECT_EQ(Group.diags()[0].Code, StatusCode::ToolFault);
  EXPECT_NE(Group.diags()[0].OpIndex, NoOpIndex);
  expectSameWarnings(Reference.warnings(), Healthy.warnings(), "quarantine");
  expectSameRuleStats(Reference.ruleStats(), Healthy.ruleStats(),
                      "quarantine");
  // The group adopted the surviving member's warnings.
  expectSameWarnings(Reference.warnings(), Group.warnings(), "group-adopt");
}

TEST(Quarantine, HealthyGroupMatchesSoloRunExactly) {
  Trace T = makeRacyTrace(27);
  FastTrack Reference;
  replay(T, Reference);

  FastTrack A, B;
  ToolGroup Group({&A, &B});
  replay(T, Group);
  EXPECT_EQ(Group.activeMembers(), 2u);
  EXPECT_TRUE(Group.diags().empty());
  expectSameWarnings(Reference.warnings(), A.warnings(), "group-a");
  expectSameWarnings(Reference.warnings(), B.warnings(), "group-b");
}

TEST(Quarantine, GroupWithEveryMemberDeadStillCompletes) {
  Trace T = makeRacyTrace(28);
  FastTrack Victim;
  ft::runtime::ThrowAfterTool Bomb(Victim, 0); // first access throws
  ToolGroup Group({&Bomb});
  ReplayResult Result = replay(T, Group);
  EXPECT_EQ(Result.Events, T.size());
  EXPECT_EQ(Group.activeMembers(), 0u);
  EXPECT_TRUE(Group.warnings().empty());
}

TEST(Watchdog, HealthyRunStaysSharded) {
  Trace T = makeRacyTrace(25);
  FastTrack Reference;
  replay(T, Reference);

  FastTrack Tool;
  ParallelReplayOptions Options;
  Options.NumShards = 4;
  Options.WatchdogTimeoutMs = 60000; // generous: must never fire
  ParallelReplayResult Result = parallelReplay(T, Tool, Options);
  EXPECT_FALSE(Result.WatchdogFired);
  EXPECT_TRUE(Result.Sharded);
  EXPECT_TRUE(Result.Diags.empty());
  expectSameWarnings(Reference.warnings(), Tool.warnings(), "healthy");
}

TEST(Checkpoint, TidReuseTraceResumesBitIdentical) {
  // Crash-and-resume over a trace whose tids carry several lifetimes
  // (the online engine's recycled slots, replayed offline): the clock
  // snapshot must carry each slot's dead-lifetime clock across the
  // crash, or the resumed replay would mis-order stale epochs against
  // later incarnations. The bystander thread 3 is concurrent with every
  // lifetime, so genuine races cross the checkpoint boundary too.
  TraceBuilder B;
  B.fork(0, 3);
  for (int I = 0; I != 30; ++I) {
    B.fork(0, 1).wr(1, 0).rd(1, 1).join(0, 1);
    if (I % 5 == 0)
      B.wr(3, 0); // no edge to tid 1's incarnations: races
    B.fork(0, 2).rd(2, 1).wr(2, 1).join(0, 2);
  }
  B.join(0, 3);
  Trace T = B.take();

  FastTrack Reference;
  ReplayResult Uninterrupted = replay(T, Reference);
  EXPECT_FALSE(Reference.warnings().empty());

  const std::string Path = "fault_tid_reuse.ckpt";
  std::remove(Path.c_str());
  CheckpointOptions Ck;
  Ck.Path = Path;
  Ck.EveryOps = 32; // lands mid-incarnation repeatedly

  CheckpointOptions Crash = Ck;
  Crash.InjectCrashAfterOps = 120;
  FastTrack Victim;
  CheckpointedReplayResult Killed = replayCheckpointed(T, Victim, {}, Crash);
  EXPECT_EQ(Killed.St.code(), StatusCode::Cancelled);
  ASSERT_TRUE(fileExists(Path));

  FastTrack Survivor;
  CheckpointedReplayResult Resumed = replayCheckpointed(T, Survivor, {}, Ck);
  EXPECT_TRUE(Resumed.St.ok());
  EXPECT_TRUE(Resumed.Resumed);
  EXPECT_EQ(Resumed.Result.Events, Uninterrupted.Events);
  expectSameWarnings(Reference.warnings(), Survivor.warnings(), "tid reuse");
  expectSameRuleStats(Reference.ruleStats(), Survivor.ruleStats(),
                      "tid reuse");
  EXPECT_EQ(shadowImage(Reference), shadowImage(Survivor));
  EXPECT_FALSE(fileExists(Path));
}
