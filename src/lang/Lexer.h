//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniConc. Supports '//' line comments and
/// '/* */' block comments; integers are decimal 64-bit.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_LANG_LEXER_H
#define FASTTRACK_LANG_LEXER_H

#include "lang/Token.h"

#include <string_view>
#include <vector>

namespace ft::lang {

/// Lexes a whole source buffer into a token vector ending with Eof.
/// Lexical errors become Error tokens (the parser reports them).
std::vector<Token> lex(std::string_view Source);

} // namespace ft::lang

#endif // FASTTRACK_LANG_LEXER_H
