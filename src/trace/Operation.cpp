#include "trace/Operation.h"

using namespace ft;

const char *ft::opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::Read:
    return "rd";
  case OpKind::Write:
    return "wr";
  case OpKind::Acquire:
    return "acq";
  case OpKind::Release:
    return "rel";
  case OpKind::Fork:
    return "fork";
  case OpKind::Join:
    return "join";
  case OpKind::VolatileRead:
    return "vrd";
  case OpKind::VolatileWrite:
    return "vwr";
  case OpKind::Barrier:
    return "barrier";
  case OpKind::AtomicBegin:
    return "abegin";
  case OpKind::AtomicEnd:
    return "aend";
  }
  return "?";
}

std::string ft::toString(const Operation &Op) {
  std::string Out = opKindName(Op.Kind);
  Out += '(';
  Out += std::to_string(Op.Thread);
  switch (Op.Kind) {
  case OpKind::Read:
  case OpKind::Write:
    Out += ",x" + std::to_string(Op.Target);
    break;
  case OpKind::Acquire:
  case OpKind::Release:
    Out += ",m" + std::to_string(Op.Target);
    break;
  case OpKind::Fork:
  case OpKind::Join:
    Out += ",t" + std::to_string(Op.Target);
    break;
  case OpKind::VolatileRead:
  case OpKind::VolatileWrite:
    Out += ",v" + std::to_string(Op.Target);
    break;
  case OpKind::Barrier:
    Out += ",set#" + std::to_string(Op.Target);
    break;
  case OpKind::AtomicBegin:
  case OpKind::AtomicEnd:
    break;
  }
  Out += ')';
  return Out;
}
