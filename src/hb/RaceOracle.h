//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground-truth race enumeration over the exact happens-before relation.
///
/// A trace has a race condition iff it contains two concurrent conflicting
/// accesses (Section 2.1). The oracle enumerates racy pairs by brute
/// force per variable; it exists to validate the fast detectors, not to be
/// fast itself.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_HB_RACEORACLE_H
#define FASTTRACK_HB_RACEORACLE_H

#include "hb/HappensBefore.h"

#include <vector>

namespace ft {

/// One racy pair of accesses.
struct RacePair {
  VarId Var;
  size_t FirstIndex;  ///< Earlier access (trace order).
  size_t SecondIndex; ///< Later access.
  OpKind FirstKind;
  OpKind SecondKind;
  ThreadId FirstThread;
  ThreadId SecondThread;
};

/// Options for race enumeration.
struct RaceOracleOptions {
  /// Stop after this many racy pairs (0 = unlimited).
  size_t MaxPairs = 0;
  /// Report only the first racy pair per variable, mirroring the paper's
  /// tools, which report at most one race per field.
  bool FirstPerVar = false;
};

/// Enumerates racy pairs of \p T in trace order of the second access.
std::vector<RacePair>
findRaces(const Trace &T, const RaceOracleOptions &Options = RaceOracleOptions());

/// Returns the set of variables with at least one race in \p T, sorted.
std::vector<VarId> racyVars(const Trace &T);

/// Returns true iff \p T is race-free.
bool isRaceFree(const Trace &T);

} // namespace ft

#endif // FASTTRACK_HB_RACEORACLE_H
