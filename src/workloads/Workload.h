//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic benchmark suite: sixteen trace generators whose sharing
/// structure mirrors the Java programs of the paper's Table 1 (elevator,
/// hedc, tsp, mtrt, jbb, the Java Grande kernels, colt, raja, philo), plus
/// five "Eclipse operation" workloads for the Section 5.3 experiment.
///
/// Each generator is a deterministic function of a seed and a size factor,
/// produces a feasible trace, and documents its ground truth: how many
/// variables truly race (validated against the happens-before oracle in
/// the test suite) and how the imprecise tools are expected to misjudge
/// it. See DESIGN.md for why matching the access-pattern statistics
/// reproduces the paper's relative-cost shape.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_WORKLOADS_WORKLOAD_H
#define FASTTRACK_WORKLOADS_WORKLOAD_H

#include "trace/Trace.h"

#include <functional>
#include <string>
#include <vector>

namespace ft {

/// One benchmark workload.
struct Workload {
  std::string Name;
  /// Worker threads (the generated trace additionally has the main
  /// thread, like the Java originals' main + workers).
  unsigned Workers = 4;
  /// True when the original is compute-bound; Table 1 averages exclude
  /// the others (elevator, philo, hedc, jbb).
  bool ComputeBound = true;
  /// Number of variables with a real race (oracle-verified ground truth).
  unsigned RealRacyVars = 0;
  /// Variables Eraser warns about spuriously (expected false alarms).
  unsigned ExpectedEraserFalseAlarms = 0;
  /// Builds the trace. SizeFactor 1.0 targets the default event volume
  /// (hundreds of thousands of events); tests use small factors.
  std::function<Trace(uint64_t Seed, double SizeFactor)> Generate;
};

/// The sixteen Table 1 benchmark analogues, in the paper's row order.
const std::vector<Workload> &benchmarkSuite();

/// Looks up a benchmark by name; nullptr when unknown.
const Workload *findWorkload(const std::string &Name);

/// The five Eclipse operations of Section 5.3 (Startup, Import,
/// Clean Small, Clean Large, Debug) — 24-thread IDE-like workloads.
const std::vector<Workload> &eclipseOperations();

} // namespace ft

#endif // FASTTRACK_WORKLOADS_WORKLOAD_H
