//===----------------------------------------------------------------------===//
//
// Experiment E7 — Section 5.3: checking the five Eclipse operations
// (Startup, Import, Clean Small, Clean Large, Debug) on a 24-thread
// IDE-like workload, with EMPTY / ERASER / DJIT+ / FASTTRACK.
//
// Paper shape: FastTrack's slowdown is at or below DJIT+'s on the
// compute-intensive operations and comparable to Eraser's; FastTrack
// reports 30 distinct warnings (all real) while Eraser drowns them in
// 960 mostly-spurious ones.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/ToolRegistry.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace ft;
using namespace ft::bench;

int main(int argc, char **argv) {
  BenchReport Report("bench_eclipse", argc, argv);
  banner("Section 5.3: Eclipse operations (24 threads)");

  const std::vector<std::string> Tools = {"empty", "eraser", "djit+",
                                          "fasttrack"};
  Table Out;
  Out.addHeader({"Operation", "Events", "Eraser", "DJIT+", "FastTrack",
                 "Eraser warn", "FT warn"});

  unsigned EraserTotal = 0, FtTotal = 0;
  for (const Workload &W : eclipseOperations()) {
    Trace T = W.Generate(/*Seed=*/1, sizeFactor());
    double EmptySeconds = 0;
    std::vector<std::string> Row = {W.Name};
    unsigned EraserWarnings = 0, FtWarnings = 0;
    for (size_t I = 0; I != Tools.size(); ++I) {
      auto Checker = createTool(Tools[I]);
      ReplayResult Result = timedReplay(T, *Checker);
      if (I == 0) {
        EmptySeconds = Result.Seconds;
        Row.push_back(withCommas(Result.Events));
        continue;
      }
      Row.push_back(
          slowdown(EmptySeconds > 0 ? Result.Seconds / EmptySeconds : 0));
      if (Tools[I] == "eraser")
        EraserWarnings = Checker->warnings().size();
      if (Tools[I] == "fasttrack")
        FtWarnings = Checker->warnings().size();
    }
    Row.push_back(std::to_string(EraserWarnings));
    Row.push_back(std::to_string(FtWarnings));
    EraserTotal += EraserWarnings;
    FtTotal += FtWarnings;
    Out.addRow(Row);
  }
  std::fputs(Out.render().c_str(), stdout);

  std::printf("\nTotals: Eraser %u warnings vs FastTrack %u.\n", EraserTotal,
              FtTotal);
  std::printf("Paper: Eraser ~960 warnings vs FastTrack 30 (all real); "
              "FastTrack's slowdown <= DJIT+'s, comparable to Eraser's.\n");
  Report.metric("eraser_warnings", double(EraserTotal));
  Report.metric("fasttrack_warnings", double(FtTotal));
  return Report.write() ? 0 : 1;
}
