//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation for workload synthesis and
/// property-based testing.
///
/// Two generators are provided: SplitMix64 (used for seeding and cheap
/// stateless hashing) and Xoshiro256StarStar (the workhorse generator, with
/// 256 bits of state and excellent statistical quality). All workloads and
/// property tests in this repository are deterministic functions of a seed.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_SUPPORT_RNG_H
#define FASTTRACK_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace ft {

/// Mixes a 64-bit value into a well-distributed 64-bit hash.
///
/// This is the finalizer of the SplitMix64 generator; it is a bijection on
/// 64-bit values and is suitable for hashing small integers.
uint64_t splitMix64(uint64_t X);

/// A tiny stateful SplitMix64 stream, mainly used to seed Xoshiro.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value of the stream.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    return splitMix64(State);
  }

private:
  uint64_t State;
};

/// The xoshiro256** generator of Blackman and Vigna.
///
/// Fast, small, and statistically strong; the default generator for all
/// synthetic workloads and randomized tests. Never produces the all-zero
/// state because seeding goes through SplitMix64.
class Xoshiro256StarStar {
public:
  /// Seeds the generator; any seed (including 0) is valid.
  explicit Xoshiro256StarStar(uint64_t Seed = 0x853c49e6748fea9bULL);

  /// Returns the next 64 random bits.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero. Uses Lemire's multiply-shift rejection-free approximation,
  /// which is unbiased enough for workload generation.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P = 0.5);

  /// Returns a uniform double in [0, 1).
  double nextDouble();

private:
  uint64_t State[4];
};

/// Draws an index in [0, N) according to a table of relative weights.
///
/// \p Weights must contain at least one positive entry among the first
/// \p N values. Used to realize the paper's operation-mix percentages
/// (e.g. 82.3 % reads / 14.5 % writes / 3.3 % sync).
unsigned pickWeighted(Xoshiro256StarStar &Rng, const double *Weights,
                      unsigned N);

} // namespace ft

#endif // FASTTRACK_SUPPORT_RNG_H
