//===--- PropertyTest.cpp - oracle-validated properties on random traces --===//
//
// The heart of the correctness argument: on thousands of seeded random
// feasible traces, every precise detector must agree exactly with the
// happens-before oracle about *which variables race* (the paper's
// guarantee: at least the first race on each variable is detected, and no
// false alarms — Theorem 1).
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "detectors/BasicVC.h"
#include "detectors/DjitPlus.h"
#include "detectors/Eraser.h"
#include "detectors/Goldilocks.h"
#include "framework/Replay.h"
#include "hb/RaceOracle.h"
#include "trace/RandomTrace.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceValidator.h"

#include "DenseShadowReference.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

using namespace ft;

namespace {

std::vector<VarId> warnedVars(Tool &Checker, const Trace &T) {
  replay(T, Checker);
  std::vector<VarId> Vars;
  for (const RaceWarning &W : Checker.warnings())
    Vars.push_back(W.Var);
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars;
}

RandomTraceConfig configFor(uint64_t Seed, double Chaos) {
  RandomTraceConfig Config;
  Config.Seed = Seed;
  Config.NumThreads = 2 + Seed % 4;       // 2..5 workers
  Config.NumVars = 8 + Seed % 17;         // 8..24 variables
  Config.NumLocks = 1 + Seed % 4;
  Config.NumVolatiles = 1 + Seed % 3;
  Config.OpsPerThread = 20 + Seed % 60;
  Config.ChaosProbability = Chaos;
  Config.BarrierProbability = (Seed % 3 == 0) ? 0.02 : 0.0;
  return Config;
}

} // namespace

class RandomTraceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTraceProperty, GeneratedTracesAreFeasible) {
  for (double Chaos : {0.0, 0.1, 0.4}) {
    Trace T = generateRandomTrace(configFor(GetParam(), Chaos));
    auto Violations = validateTrace(T);
    EXPECT_TRUE(Violations.empty())
        << "seed " << GetParam() << " chaos " << Chaos << ": "
        << (Violations.empty() ? "" : Violations[0].Message);
  }
}

TEST_P(RandomTraceProperty, DisciplinedTracesAreRaceFree) {
  Trace T = generateRandomTrace(configFor(GetParam(), 0.0));
  EXPECT_TRUE(isRaceFree(T)) << "seed " << GetParam();
  FastTrack Ft;
  EXPECT_TRUE(warnedVars(Ft, T).empty()) << "seed " << GetParam();
}

TEST_P(RandomTraceProperty, FastTrackMatchesOracleExactly) {
  for (double Chaos : {0.05, 0.2, 0.5}) {
    Trace T = generateRandomTrace(configFor(GetParam(), Chaos));
    std::vector<VarId> Expected = racyVars(T);
    FastTrack Ft;
    EXPECT_EQ(warnedVars(Ft, T), Expected)
        << "seed " << GetParam() << " chaos " << Chaos;
  }
}

TEST_P(RandomTraceProperty, PreciseDetectorsAgreeWithEachOther) {
  Trace T = generateRandomTrace(configFor(GetParam(), 0.25));
  FastTrack Ft;
  DjitPlus Djit;
  BasicVC Basic;
  Goldilocks Goldi(/*UnsoundThreadLocal=*/false);
  auto FtVars = warnedVars(Ft, T);
  EXPECT_EQ(warnedVars(Djit, T), FtVars) << "seed " << GetParam();
  EXPECT_EQ(warnedVars(Basic, T), FtVars) << "seed " << GetParam();
  EXPECT_EQ(warnedVars(Goldi, T), FtVars) << "seed " << GetParam();
}

TEST_P(RandomTraceProperty, AblatedFastTrackKeepsPrecision) {
  Trace T = generateRandomTrace(configFor(GetParam(), 0.3));
  std::vector<VarId> Expected = racyVars(T);

  FastTrackOptions NoFast;
  NoFast.SameEpochFastPath = false;
  FastTrack A(NoFast);
  EXPECT_EQ(warnedVars(A, T), Expected) << "seed " << GetParam();

  FastTrackOptions NoEpochReads;
  NoEpochReads.EpochReads = false;
  FastTrack B(NoEpochReads);
  EXPECT_EQ(warnedVars(B, T), Expected) << "seed " << GetParam();

  FastTrackOptions Extended;
  Extended.ExtendedSharedSameEpoch = true;
  FastTrack C(Extended);
  EXPECT_EQ(warnedVars(C, T), Expected) << "seed " << GetParam();
}

TEST_P(RandomTraceProperty, PagedShadowMatchesDenseReference) {
  // The production detector stores shadow state in the paged/SoA
  // ShadowTable; the reference reimplements the same Figure 2 rules over
  // the naive dense AoS layout. Sparse page-straddling variable spaces
  // exercise fault-in, partial pages, and side-store handle churn; the
  // two must agree warning for warning, not just var for var.
  for (double Chaos : {0.0, 0.15, 0.45}) {
    RandomTraceConfig Config = configFor(GetParam(), Chaos);
    Config.NumVars = static_cast<unsigned>(
        ShadowPageVars * (1 + GetParam() % 3) + GetParam() * 31);
    Trace T = generateRandomTrace(Config);
    FastTrack Paged;
    DenseFastTrackReference Dense;
    replay(T, Paged);
    replay(T, Dense);
    ASSERT_EQ(Dense.warnings().size(), Paged.warnings().size())
        << "seed " << GetParam() << " chaos " << Chaos;
    for (size_t I = 0; I != Dense.warnings().size(); ++I) {
      const RaceWarning &E = Dense.warnings()[I];
      const RaceWarning &A = Paged.warnings()[I];
      EXPECT_EQ(E.Var, A.Var) << "seed " << GetParam();
      EXPECT_EQ(E.OpIndex, A.OpIndex) << "seed " << GetParam();
      EXPECT_EQ(E.CurrentThread, A.CurrentThread) << "seed " << GetParam();
      EXPECT_EQ(E.PriorThread, A.PriorThread) << "seed " << GetParam();
      EXPECT_EQ(E.Detail, A.Detail) << "seed " << GetParam();
    }
  }
}

namespace {

/// A seeded workload shaped for memory governance: a streaming-write
/// sweep over dozens of page regions (the cold write-only state that
/// compresses), a few read-shared variables, unsynchronized writes that
/// race against the sweep, and enough trailing churn to drive the
/// access-keyed maintenance clock. Random traces won't do here — their
/// variable spaces are tiny and every page stays read-warm.
Trace governanceTrace(uint64_t Seed) {
  std::mt19937_64 Rng(Seed * 0x9E3779B97F4A7C15ull + 1);
  TraceBuilder B;
  B.fork(0, 1).fork(0, 2);
  const unsigned Sweep = 60 + Seed % 60;
  std::vector<VarId> Written;
  for (unsigned I = 0; I != Sweep; ++I) {
    const VarId X = static_cast<VarId>(
        (1 + Rng() % 138) * ShadowPageVars + Rng() % ShadowPageVars);
    B.wr(1, X);
    Written.push_back(X);
  }
  for (unsigned I = 0; I != 4; ++I) {
    const VarId X = static_cast<VarId>(Rng() % (8 * ShadowPageVars));
    B.rd(1, X).rd(2, X);
  }
  // Thread 2 never synchronizes with thread 1: these writes race with
  // the sweep (and sometimes with each other's pages).
  for (unsigned I = 0; I != 6; ++I)
    B.wr(2, Written[Rng() % Written.size()]);
  const int Churn = 200 + static_cast<int>(Seed % 200);
  for (int I = 0; I != Churn; ++I)
    B.wr(1, 3).rd(1, 3);
  B.wr(1, 140 * ShadowPageVars - 1); // pin NumVars = 71680 → paged table
  B.join(0, 1).join(0, 2);
  return B.take();
}

} // namespace

TEST_P(RandomTraceProperty, GovernedCompressionIsWarningForWarningLossless) {
  // With no budget, governance is compression only — lossless by
  // construction, so the governed detector must agree with the dense
  // reference warning for warning even while pages sit compressed.
  Trace T = governanceTrace(GetParam());
  FastTrackOptions Gov;
  Gov.Memory.Enabled = true;
  Gov.Memory.MaintainEveryAccesses = 64;
  Gov.Memory.ColdAgeTicks = 1;
  FastTrack Governed(Gov);
  DenseFastTrackReference Dense;
  replay(T, Governed);
  replay(T, Dense);
  ASSERT_GT(Governed.shadowGovernorStats().PagesCompressed, 0u)
      << "seed " << GetParam();
  ASSERT_FALSE(Dense.warnings().empty()) << "seed " << GetParam();
  ASSERT_EQ(Dense.warnings().size(), Governed.warnings().size())
      << "seed " << GetParam();
  for (size_t I = 0; I != Dense.warnings().size(); ++I) {
    const RaceWarning &E = Dense.warnings()[I];
    const RaceWarning &A = Governed.warnings()[I];
    EXPECT_EQ(E.Var, A.Var) << "seed " << GetParam();
    EXPECT_EQ(E.OpIndex, A.OpIndex) << "seed " << GetParam();
    EXPECT_EQ(E.CurrentThread, A.CurrentThread) << "seed " << GetParam();
    EXPECT_EQ(E.PriorThread, A.PriorThread) << "seed " << GetParam();
    EXPECT_EQ(E.Detail, A.Detail) << "seed " << GetParam();
  }
}

TEST_P(RandomTraceProperty, PressureSheddingIsPageRegionSound) {
  // Under a budget small enough to force summarization, per-variable
  // precision may coarsen to the page region — but soundness survives:
  // every page region the unbounded dense reference flags must also be
  // flagged by the governed detector (a summary only joins histories, so
  // a conflicting access can only find *more* to conflict with).
  Trace T = governanceTrace(GetParam());
  FastTrackOptions Gov;
  Gov.Memory.Enabled = true;
  Gov.Memory.BudgetBytes = 32 * 1024;
  Gov.Memory.MaintainEveryAccesses = 32;
  Gov.Memory.ColdAgeTicks = 1;
  FastTrack Governed(Gov);
  DenseFastTrackReference Dense;
  replay(T, Governed);
  replay(T, Dense);
  ASSERT_GT(Governed.shadowGovernorStats().BudgetTrips, 0u)
      << "seed " << GetParam();
  ASSERT_GT(Governed.shadowGovernorStats().PagesSummarized, 0u)
      << "seed " << GetParam();
  ASSERT_FALSE(Dense.warnings().empty()) << "seed " << GetParam();

  std::vector<VarId> GovernedRegions;
  for (const RaceWarning &W : Governed.warnings())
    GovernedRegions.push_back(W.Var >> ShadowPageShift);
  std::sort(GovernedRegions.begin(), GovernedRegions.end());
  for (const RaceWarning &W : Dense.warnings()) {
    const VarId Region = W.Var >> ShadowPageShift;
    EXPECT_TRUE(std::binary_search(GovernedRegions.begin(),
                                   GovernedRegions.end(), Region))
        << "seed " << GetParam() << ": dense race on x" << W.Var
        << " lost from page region " << Region << " under pressure";
  }
}

TEST_P(RandomTraceProperty, GovernedDetectionIsDeterministic) {
  // Every governance decision — temperature, compression, shedding order
  // — is keyed on the dispatched access stream, never the clock or the
  // allocator, so two identical runs agree bit for bit on warnings and
  // telemetry alike.
  Trace T = governanceTrace(GetParam());
  FastTrackOptions Gov;
  Gov.Memory.Enabled = true;
  Gov.Memory.BudgetBytes = 32 * 1024;
  Gov.Memory.MaintainEveryAccesses = 32;
  Gov.Memory.ColdAgeTicks = 1;
  FastTrack A(Gov), B(Gov);
  replay(T, A);
  replay(T, B);
  ASSERT_EQ(A.warnings().size(), B.warnings().size()) << "seed " << GetParam();
  for (size_t I = 0; I != A.warnings().size(); ++I) {
    EXPECT_EQ(A.warnings()[I].Var, B.warnings()[I].Var);
    EXPECT_EQ(A.warnings()[I].OpIndex, B.warnings()[I].OpIndex);
    EXPECT_EQ(A.warnings()[I].Detail, B.warnings()[I].Detail);
  }
  const ShadowGovernorStats SA = A.shadowGovernorStats();
  const ShadowGovernorStats SB = B.shadowGovernorStats();
  EXPECT_EQ(SA.PagesCompressed, SB.PagesCompressed);
  EXPECT_EQ(SA.PagesSummarized, SB.PagesSummarized);
  EXPECT_EQ(SA.BudgetTrips, SB.BudgetTrips);
  EXPECT_EQ(SA.ShadowBytesHighWater, SB.ShadowBytesHighWater);
}

TEST_P(RandomTraceProperty, EraserStaysQuietOnDisciplinedLockTraces) {
  // With no chaos, barriers, or fork hand-offs of shared data, Eraser's
  // lockset discipline holds. (Eraser may still warn when read-shared
  // data is later written under a lock — so restrict to chaos 0 and
  // accept only warnings that the oracle also calls racy... which is an
  // empty set here.)
  RandomTraceConfig Config = configFor(GetParam(), 0.0);
  Config.BarrierProbability = 0.0;
  Trace T = generateRandomTrace(Config);
  ASSERT_TRUE(isRaceFree(T));
  // Eraser may report spurious warnings (it is imprecise); the property
  // we check is the *sound* direction on lock-protected data: it must not
  // crash and every warning it does report is on a variable the oracle
  // knows is race-free (i.e. a false alarm, counted as such in E3).
  Eraser E;
  replay(T, E);
  SUCCEED();
}

TEST_P(RandomTraceProperty, CoarseGranularityNeverMissesFineRaces) {
  // Merging variables can only add conflicts, never remove them — the
  // set of fine-grain racy objects is a subset of coarse-grain warnings.
  Trace T = generateRandomTrace(configFor(GetParam(), 0.3));
  FastTrack Fine;
  replay(T, Fine);

  FastTrack Coarse;
  ReplayOptions Options;
  Options.Gran = Granularity::Coarse;
  Options.DefaultFieldsPerObject = 4;
  replay(T, Coarse, Options);

  std::vector<VarId> CoarseVars;
  for (const RaceWarning &W : Coarse.warnings())
    CoarseVars.push_back(W.Var);
  for (const RaceWarning &W : Fine.warnings()) {
    VarId Object = W.Var / 4;
    EXPECT_TRUE(std::find(CoarseVars.begin(), CoarseVars.end(), Object) !=
                CoarseVars.end())
        << "seed " << GetParam() << " fine race on x" << W.Var
        << " lost under coarse granularity";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraceProperty,
                         ::testing::Range<uint64_t>(1, 81));
