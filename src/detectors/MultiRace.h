//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MULTIRACE: the hybrid LockSet / DJIT+ detector of Pozniansky and
/// Schuster, as described in Section 5.1 of the FastTrack paper:
///
///   "MULTIRACE maintains DJIT+'s instrumentation state, as well as a lock
///    set for each memory location. The checker updates the lock set for a
///    location on the first access in an epoch, and full vector clock
///    comparisons are performed after this lock set becomes empty."
///
/// While some lock is consistently held on every access (nonempty
/// candidate set), accesses are totally ordered and the O(n) comparisons
/// can be skipped soundly. The Eraser-style Virgin/Exclusive states for
/// thread-local data are unsound in the same way Eraser's are, which is
/// where MultiRace loses precision relative to DJIT+.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_DETECTORS_MULTIRACE_H
#define FASTTRACK_DETECTORS_MULTIRACE_H

#include "detectors/Eraser.h"
#include "detectors/LockSet.h"
#include "framework/VectorClockToolBase.h"

namespace ft {

/// Execution counters separating the lockset path from the VC path
/// (Section 5.1 reports "roughly 10% of all operations required an ERASER
/// operation").
struct MultiRaceStats {
  uint64_t SameEpochHits = 0;
  uint64_t LockSetOps = 0;
  uint64_t VcComparisons = 0;
};

/// The MultiRace analysis.
class MultiRace : public VectorClockToolBase {
public:
  const char *name() const override { return "MultiRace"; }

  void begin(const ToolContext &Context) override;
  bool onRead(ThreadId T, VarId X, size_t OpIndex) override;
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override;
  void onAcquire(ThreadId T, LockId M, size_t OpIndex) override;
  void onRelease(ThreadId T, LockId M, size_t OpIndex) override;
  void onBarrier(const std::vector<ThreadId> &Threads,
                 size_t OpIndex) override;
  size_t shadowBytes() const override;

  const MultiRaceStats &stats() const { return Stats; }

private:
  struct VarShadow {
    VectorClock R;
    VectorClock W;
    LockSet Candidates;
    EraserVarState State = EraserVarState::Virgin;
    ThreadId Owner = 0;
    uint32_t Generation = 0;
    /// Once the candidate set empties, every subsequent first-in-epoch
    /// access pays the DJIT+ comparisons.
    bool LockSetDead = false;
  };

  void refresh(VarShadow &Shadow);
  /// Updates the Eraser-style discipline state; returns true when the
  /// access is "protected" (thread-local or nonempty lockset) so the VC
  /// comparison may be skipped.
  bool updateDiscipline(VarShadow &Shadow, ThreadId T, bool IsWrite);
  void reportAccessRace(ThreadId T, VarId X, size_t OpIndex, OpKind Kind,
                        const VectorClock &Prior, OpKind PriorKind);

  HeldLocks Held;
  std::vector<VarShadow> Vars;
  MultiRaceStats Stats;
  uint32_t Generation = 0;
};

} // namespace ft

#endif // FASTTRACK_DETECTORS_MULTIRACE_H
