//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program facts and the call/spawn graph for the static elision pass.
///
/// One walk over the resolved MiniConc AST collects the raw facts —
/// every shared-access site with its syntactic lockset, every call and
/// spawn edge with loop context — and the graph layer turns them into
/// the whole-program summaries the classifier consumes:
///
///   - a {Zero, One, Many} execution-multiplicity bound per function
///     (how many times it may run across the whole execution);
///   - the abstract-thread set: main plus one thread per reachable
///     spawn site, each with a dynamic-instance bound;
///   - which abstract threads may execute each function (closure over
///     call edges from each thread's root);
///   - the pre-fork region: accesses main (or a function called only
///     from that region) performs before the first statement that can
///     transitively spawn. Everything a pre-fork access produced
///     happens-before every event of every later-forked thread, so the
///     classifier may exclude these sites from escape and lockset
///     reasoning (docs/ARCHITECTURE.md, "The elision layer").
///
/// Everything here over-approximates: more threads, more reachability,
/// and higher multiplicity than real executions — never less — so a
/// verdict built on these facts errs toward MustInstrument.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_ANALYSIS_CALLGRAPH_H
#define FASTTRACK_ANALYSIS_CALLGRAPH_H

#include "lang/Ast.h"

#include <map>
#include <string>
#include <vector>

namespace ft::analysis {

/// How often a function (or spawn site) may execute across one whole
/// program run. The lattice Zero < One < Many, with saturating
/// arithmetic: One + One = Many, x * Many = Many (unless Zero).
enum class Mult : uint8_t { Zero, One, Many };

inline Mult multAdd(Mult A, Mult B) {
  if (A == Mult::Zero)
    return B;
  if (B == Mult::Zero)
    return A;
  return Mult::Many;
}

inline Mult multMul(Mult A, Mult B) {
  if (A == Mult::Zero || B == Mult::Zero)
    return Mult::Zero;
  if (A == Mult::Many || B == Mult::Many)
    return Mult::Many;
  return Mult::One;
}

/// One static shared-variable access site: an Expr that emits rd/wr
/// when evaluated (VarRef in Shared position, or Index — as rvalue for
/// reads, as an Assign target for writes).
struct AccessSiteFact {
  lang::Expr *Node = nullptr;
  uint32_t Fn = 0;          ///< Enclosing function index.
  uint32_t GlobalIndex = 0; ///< Index into Program.Globals (arrays whole).
  bool IsWrite = false;
  /// Locks held *syntactically* within the enclosing function at this
  /// site (enclosing sync blocks; re-entrant nesting collapses to the
  /// set). Context locks from call sites are added by the lockset pass.
  std::vector<uint32_t> HeldWithin;
  /// The site runs only in main's pre-fork region (directly, or inside
  /// a function proven to execute only from it).
  bool PreFork = false;
};

/// One static call or spawn edge.
struct CallEdgeFact {
  lang::Expr *Node = nullptr;
  uint32_t Caller = 0;
  uint32_t Callee = 0;
  bool IsSpawn = false;
  bool InLoop = false; ///< Lexically inside a while (body or condition).
  std::vector<uint32_t> HeldWithin; ///< Caller-side syntactic lockset.
  bool PreForkCall = false; ///< Call issued from main's pre-fork region.
};

/// The raw facts of one resolved program.
struct ProgramFacts {
  std::vector<AccessSiteFact> Sites;
  std::vector<CallEdgeFact> Edges;
  std::vector<std::vector<size_t>> EdgesInto; ///< Per callee fn: edge idx.
  std::vector<std::vector<size_t>> EdgesFrom; ///< Per caller fn: edge idx.
  std::vector<bool> ContainsSpawnDirect;      ///< Per fn: has a Spawn expr.
  /// VarId base -> Program.Globals index, for resolving Index sites.
  std::map<uint32_t, uint32_t> GlobalOfBaseId;
};

/// Walks every function of \p P (which must be successfully resolved)
/// and collects sites and edges. The AST is taken non-const because the
/// site records keep mutable Expr pointers for the planner to stamp.
ProgramFacts collectFacts(lang::Program &P);

/// One abstract thread: main, or the threads created by one spawn site.
struct AbstractThread {
  uint32_t Root = 0;   ///< Function the thread starts in.
  Mult Instances = Mult::One; ///< Dynamic threads this site may create.
  std::string Name;    ///< "main" or "spawn worker@12".
};

/// Whole-program summaries derived from the facts. Building them also
/// marks the pre-fork sites and edges in \p Facts.
struct CallGraphInfo {
  std::vector<Mult> FnMult;     ///< Execution bound per function.
  std::vector<bool> MaySpawn;   ///< Fn can transitively reach a spawn.
  std::vector<AbstractThread> Threads; ///< [0] is always main.
  /// Per function: the abstract threads that may execute it (indices
  /// into Threads), via call-edge closure from each thread's root.
  std::vector<std::vector<uint32_t>> FnThreads;
  /// Per function: every execution happens inside main's pre-fork
  /// region (called only from there, transitively, and spawn-free).
  std::vector<bool> PreForkOnly;
};

CallGraphInfo buildCallGraph(const lang::Program &P, ProgramFacts &Facts);

} // namespace ft::analysis

#endif // FASTTRACK_ANALYSIS_CALLGRAPH_H
