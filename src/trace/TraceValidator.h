//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks that a trace is feasible: Section 2.1 of the paper restricts
/// attention to traces respecting the usual constraints on forks, joins,
/// and locking. The detectors assume these constraints; the workload
/// generators and the MiniConc interpreter are tested to produce only
/// feasible traces.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_TRACEVALIDATOR_H
#define FASTTRACK_TRACE_TRACEVALIDATOR_H

#include "support/Status.h"
#include "trace/Trace.h"

#include <string>
#include <vector>

namespace ft {

/// Feasibility violations are reported through the structured diagnostic
/// model (support/Status.h): Code = ValidationError, Sev = Error, and
/// OpIndex anchors the offending operation (T.size() for end-of-trace
/// violations like an unclosed atomic block).
using TraceViolation = Diagnostic;

/// Options controlling which constraints TraceValidator enforces.
struct TraceValidatorOptions {
  /// Allow the same thread to re-acquire a lock it already holds
  /// (re-entrant locking). The framework's ReentrantLockFilter strips the
  /// redundant pairs before analysis, as RoadRunner does.
  bool AllowReentrantLocks = false;

  /// Require every thread other than the main thread (id 0) to be forked
  /// before its first operation.
  bool RequireFork = true;

  /// Require atomic begin/end markers to be balanced per thread.
  bool CheckAtomicBalance = true;

  /// Enforce Section 2.1's rule (4): at least one operation of u between
  /// fork(t,u) and join(v,u). A degraded online capture legitimately
  /// violates it — access shedding can remove every operation of a
  /// thread while its fork/join spine is always delivered — so the
  /// runtime validates shed captures with this off.
  bool RequireThreadOps = true;

  /// Allow fork(t,u) of a tid u that has already been joined: the online
  /// engine recycles the slot of a fully joined thread, so one dense id
  /// legally carries several non-overlapping thread lifetimes
  /// (fork ... join, fork ... join, ...). Each reincarnation is validated
  /// as a fresh lifetime — rules (3) and (4) apply per incarnation, and a
  /// tid acting after its join but *before* its next fork is still a
  /// violation. Off (the default), a joined tid may never be forked
  /// again.
  bool AllowTidReuse = false;
};

/// Validates the constraints of Section 2.1:
///  (1) no thread acquires a lock previously acquired but not released,
///  (2) no thread releases a lock it did not previously acquire,
///  (3) no operations of thread u precede fork(t,u) or follow join(v,u),
///  (4) at least one operation of u occurs between fork(t,u) and join(v,u).
/// Plus: fork/join sanity (no self-fork, no double fork — unless the tid
/// was joined and AllowTidReuse is on, join only of forked threads) and
/// barrier sets containing only live threads.
std::vector<Diagnostic>
validateTrace(const Trace &T,
              const TraceValidatorOptions &Options = TraceValidatorOptions());

/// Returns true when validateTrace reports no violations.
inline bool isFeasible(const Trace &T, const TraceValidatorOptions &Options =
                                           TraceValidatorOptions()) {
  return validateTrace(T, Options).empty();
}

} // namespace ft

#endif // FASTTRACK_TRACE_TRACEVALIDATOR_H
