#include "detectors/EmptyTool.h"

#include "framework/Replay.h"

// EmptyTool is header-only; this file anchors it in the library.

FT_REGISTER_FAST_REPLAY(::ft::EmptyTool);
