//===--- CorpusTest.cpp - the MiniConc example-program corpus -------------===//
//
// End-to-end differential testing: every program in examples/programs is
// compiled, executed across many schedules, validated for feasibility,
// and race-checked with FastTrack against the exact oracle. The corpus
// covers the classic synchronization idioms (ordered lock acquisition,
// condition variables, barrier phases, readers-writer) plus one
// deliberately racy double-checked-locking specimen.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "framework/Replay.h"
#include "hb/RaceOracle.h"
#include "lang/Interp.h"
#include "trace/TraceValidator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

using namespace ft;
using namespace ft::lang;

#ifndef FT_CORPUS_DIR
#error "FT_CORPUS_DIR must point at examples/programs"
#endif

namespace {

struct CorpusEntry {
  const char *File;
  const char *ExpectedOutput; ///< nullptr: schedule-dependent output.
  bool Racy;                  ///< Ground truth: does any schedule race?
};

const CorpusEntry Corpus[] = {
    {"philosophers.mc", "30\n", false},
    {"bounded_buffer.mc", "150\n", false},
    {"stencil.mc", nullptr, false},
    {"readers_writer.mc", "8\n", false},
    {"double_checked.mc", "42\n", true},
    {"worker_ledger.mc", "50\n", false},
};

std::string readFileOrEmpty(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return {};
  std::string Text;
  char Buf[1 << 14];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Text.append(Buf, Got);
  std::fclose(File);
  return Text;
}

std::vector<VarId> warnedVars(const Trace &T) {
  FastTrack Detector;
  replay(T, Detector);
  std::vector<VarId> Vars;
  for (const RaceWarning &W : Detector.warnings())
    Vars.push_back(W.Var);
  std::sort(Vars.begin(), Vars.end());
  return Vars;
}

} // namespace

class Corpus_ : public ::testing::TestWithParam<size_t> {
protected:
  const CorpusEntry &entry() const { return Corpus[GetParam()]; }

  std::string source() const {
    return readFileOrEmpty(std::string(FT_CORPUS_DIR) + "/" + entry().File);
  }
};

TEST_P(Corpus_, CompilesAndRunsAcrossSchedules) {
  std::string Source = source();
  ASSERT_FALSE(Source.empty()) << entry().File;

  bool AnyRace = false;
  for (uint64_t Seed = 1; Seed <= 15; ++Seed) {
    std::vector<Diag> Diags;
    InterpOptions Options;
    Options.Seed = Seed;
    InterpResult Run = runSource(Source, Diags, Options);
    ASSERT_TRUE(Diags.empty())
        << entry().File << ": " << toString(Diags.front());
    ASSERT_TRUE(Run.Ok) << entry().File << " seed " << Seed << ": "
                        << toString(Run.Error);
    if (entry().ExpectedOutput) {
      EXPECT_EQ(Run.Output, entry().ExpectedOutput)
          << entry().File << " seed " << Seed;
    }

    // Every emitted trace is feasible.
    auto Violations = validateTrace(Run.EventTrace);
    ASSERT_TRUE(Violations.empty())
        << entry().File << " seed " << Seed << ": "
        << Violations.front().Message;

    // FastTrack is oracle-exact on every schedule.
    std::vector<VarId> Expected = racyVars(Run.EventTrace);
    EXPECT_EQ(warnedVars(Run.EventTrace), Expected)
        << entry().File << " seed " << Seed;
    AnyRace |= !Expected.empty();
  }
  EXPECT_EQ(AnyRace, entry().Racy) << entry().File;
}

INSTANTIATE_TEST_SUITE_P(Programs, Corpus_,
                         ::testing::Range<size_t>(0, std::size(Corpus)),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           std::string Name = Corpus[Info.param].File;
                           Name.resize(Name.size() - 3); // drop ".mc"
                           for (char &C : Name)
                             if (!std::isalnum(
                                     static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });
