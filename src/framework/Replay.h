//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event dispatcher: replays a trace through one tool (or a filter →
/// tool pipeline) and gathers the measurements every experiment needs —
/// wall time, vector-clock counter deltas, shadow memory, warning counts.
///
/// Two RoadRunner behaviours are reproduced here rather than inside each
/// tool, so that all tools benefit identically:
///   - re-entrant lock acquires/releases (which are redundant) are
///     filtered out (Section 4, "ROADRUNNER");
///   - fine/coarse analysis granularity is applied by remapping variable
///     ids before dispatch (Section 4, "Granularity").
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_REPLAY_H
#define FASTTRACK_FRAMEWORK_REPLAY_H

#include "clock/ClockStats.h"
#include "framework/Tool.h"
#include "support/Status.h"
#include "trace/Trace.h"

namespace ft {

class MemoryTracker;

/// Analysis granularity (Section 4). Fine: every variable is its own
/// shadow entity. Coarse: variables are grouped into objects, trading
/// precision for memory.
enum class Granularity : uint8_t { Fine, Coarse };

class GranularityMap;

/// Options controlling one replay.
struct ReplayOptions {
  Granularity Gran = Granularity::Fine;

  /// Under coarse granularity, maps each variable to its object. When
  /// null, the default mapping Var / DefaultFieldsPerObject is used.
  const std::vector<uint32_t> *VarToObject = nullptr;

  /// Fields per object for the default coarse mapping.
  unsigned DefaultFieldsPerObject = 8;

  /// Strip redundant re-entrant lock acquires/releases before dispatch.
  bool FilterReentrantLocks = true;

  /// Soft shadow-memory budget in bytes; 0 (the default) is unlimited.
  /// When set, the replay loop probes the tool's shadowBytes() every
  /// BudgetCheckEveryOps operations and stops early — setting
  /// ReplayResult::BudgetExceeded — on breach. Callers that want
  /// degrade-instead-of-die semantics use replayGoverned()
  /// (framework/ResourceGovernor.h), which retries at coarser
  /// granularity instead of surfacing the truncated run.
  uint64_t ShadowBudgetBytes = 0;

  /// How often (in trace operations) the budget probe runs. Probes cost
  /// an O(state) shadowBytes() walk, so they are amortized.
  unsigned BudgetCheckEveryOps = 4096;

  /// Optional tracker that receives every budget probe via sampleLive(),
  /// so callers observe live/peak shadow bytes across the replay. Not
  /// consulted for the budget itself (ShadowBudgetBytes is).
  MemoryTracker *BudgetTracker = nullptr;
};

/// Precomputed variable remapping for the requested granularity. Shared
/// by the serial and sharded replay engines so both dispatch identical
/// variable ids (and the shard partitioner groups whole objects).
class GranularityMap {
public:
  static GranularityMap make(const ReplayOptions &Options) {
    GranularityMap Map;
    if (Options.Gran == Granularity::Fine)
      return Map;
    Map.Identity = false;
    Map.Explicit = Options.VarToObject;
    Map.Divisor =
        Options.DefaultFieldsPerObject ? Options.DefaultFieldsPerObject : 1;
    return Map;
  }

  VarId map(VarId X) const {
    if (Identity)
      return X;
    if (Explicit)
      return X < Explicit->size() ? (*Explicit)[X] : X;
    return X / Divisor;
  }

  bool identity() const { return Identity; }

private:
  const std::vector<uint32_t> *Explicit = nullptr;
  unsigned Divisor = 1;
  bool Identity = true;
};

/// Builds the ToolContext for replaying \p T under \p Map (entity counts
/// already reflect the granularity remapping).
ToolContext makeToolContext(const Trace &T, const GranularityMap &Map);

/// Dispatches one non-access operation to \p Checker. Shared by the
/// serial loop, the pipeline loop, and the sharded engine's sync-replay
/// workers.
void dispatchSyncOp(Tool &Checker, const Trace &T, const Operation &Op,
                    size_t I);

/// Measurements from one replay.
struct ReplayResult {
  double Seconds = 0;            ///< Wall-clock time of the replay loop.
  uint64_t Events = 0;           ///< Events dispatched to the tool.
  uint64_t AccessesPassed = 0;   ///< Accesses the tool flagged interesting.
  ClockStats Clocks;             ///< Delta of the global VC counters.
  size_t ShadowBytes = 0;        ///< Tool-reported shadow state at end.
  size_t NumWarnings = 0;        ///< Warnings after the replay.

  /// True when the replay stopped early because ShadowBudgetBytes was
  /// breached; StoppedAtOp then holds the trace index after the last
  /// processed operation (== trace size on a completed run).
  bool BudgetExceeded = false;
  size_t StoppedAtOp = 0;
};

/// Replays \p T through \p Checker.
ReplayResult replay(const Trace &T, Tool &Checker,
                    const ReplayOptions &Options = ReplayOptions());

/// Measurements from one filtered (composed) replay.
struct PipelineResult {
  ReplayResult Total;            ///< Timing of the whole pipeline.
  uint64_t AccessesSeen = 0;     ///< Accesses entering the filter.
  uint64_t AccessesForwarded = 0;///< Accesses the filter let through.
};

/// Replays \p T through the composition Filter → Downstream: every
/// synchronization event reaches both tools; read/write events reach
/// \p Downstream only when \p Filter's handler returns true. This is the
/// analogue of RoadRunner's "-tool FastTrack:Velodrome" chaining.
PipelineResult replayFiltered(const Trace &T, Tool &Filter, Tool &Downstream,
                              const ReplayOptions &Options = ReplayOptions());

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_REPLAY_H
