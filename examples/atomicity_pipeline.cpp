//===----------------------------------------------------------------------===//
//
// Analysis composition (Section 5.2): chain FastTrack in front of the
// Velodrome atomicity checker — the analogue of RoadRunner's
// "-tool FastTrack:Velodrome" — on a MiniConc program whose atomic block
// is not serializable.
//
// The program's 'transfer' reads a balance inside an atomic block while a
// concurrent thread updates it between the block's read and write: a
// classic lost update. FastTrack filters the redundant race-free accesses
// and Velodrome reports the serializability cycle on what remains.
//
//===----------------------------------------------------------------------===//

#include "checkers/Velodrome.h"
#include "core/FastTrack.h"
#include "framework/Replay.h"
#include "lang/Interp.h"

#include <cstdio>

using namespace ft;
using namespace ft::lang;

namespace {

const char *DemoProgram = R"(
shared balance;
shared audit;

fn auditor(rounds) {
  local i = 0;
  while (i < rounds) {
    atomic {
      local snapshot = balance;   // read inside the atomic block
      audit = audit + snapshot;
      balance = snapshot + 1;     // write back: lost update if interleaved
    }
    i = i + 1;
  }
}

fn main() {
  let a = spawn auditor(40);
  let b = spawn auditor(40);
  join a; join b;
  print balance;
}
)";

} // namespace

int main() {
  std::printf("FastTrack:Velodrome composition demo\n"
              "====================================\n\n");

  bool SawViolation = false;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    std::vector<Diag> Diags;
    InterpOptions Options;
    Options.Seed = Seed;
    InterpResult Run = runSource(DemoProgram, Diags, Options);
    if (!Run.Ok) {
      std::printf("error: %s\n",
                  Diags.empty() ? toString(Run.Error).c_str()
                                : toString(Diags[0]).c_str());
      return 1;
    }

    FastTrack Filter;
    Velodrome Checker;
    PipelineResult Result = replayFiltered(Run.EventTrace, Filter, Checker);

    if (Seed == 1)
      std::printf("schedule 1: %llu accesses seen, %llu forwarded past "
                  "FastTrack (%.1f%% filtered)\n\n",
                  (unsigned long long)Result.AccessesSeen,
                  (unsigned long long)Result.AccessesForwarded,
                  Result.AccessesSeen
                      ? 100.0 * (Result.AccessesSeen -
                                 Result.AccessesForwarded) /
                            Result.AccessesSeen
                      : 0.0);

    if (!Checker.violations().empty() && !SawViolation) {
      SawViolation = true;
      const CheckerViolation &V = Checker.violations().front();
      std::printf("seed %llu: atomicity violation in thread %u's block "
                  "(begun at op %zu): %s\n",
                  (unsigned long long)Seed, V.Thread, V.BeginIndex,
                  V.Detail.c_str());
      std::printf("          program printed: %s",
                  Run.Output.c_str());
    }
  }

  if (!SawViolation) {
    std::printf("no schedule exhibited the violation (unexpected)\n");
    return 1;
  }
  std::printf("\nExpected final balance is 80; schedules with the lost "
              "update print less.\nFastTrack also reports the underlying "
              "data race; Velodrome pinpoints the non-serializable block.\n");
  return 0;
}
