//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DJIT+: the high-performance vector-clock race detector of Pozniansky
/// and Schuster, as reviewed in Section 2.2 and the right column of
/// Figure 2 of the FastTrack paper:
///
///   [DJIT+ READ SAME EPOCH]   Rx(t) = Ct(t)                  -> no-op
///   [DJIT+ READ]              check Wx ⊑ Ct; Rx(t) := Ct(t)
///   [DJIT+ WRITE SAME EPOCH]  Wx(t) = Ct(t)                  -> no-op
///   [DJIT+ WRITE]             check Wx ⊑ Ct, Rx ⊑ Ct; Wx(t) := Ct(t)
///
/// Unlike BasicVC it skips redundant same-epoch accesses, but every
/// first-in-epoch access still costs an O(n) vector-clock comparison —
/// exactly the cost FastTrack's epochs eliminate.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_DETECTORS_DJITPLUS_H
#define FASTTRACK_DETECTORS_DJITPLUS_H

#include "framework/ShardableTool.h"
#include "framework/VectorClockToolBase.h"

namespace ft {

/// Per-rule firing counters for the DJIT+ analysis (experiment E1).
struct DjitRuleStats {
  uint64_t ReadSameEpoch = 0;
  uint64_t ReadGeneral = 0;
  uint64_t WriteSameEpoch = 0;
  uint64_t WriteGeneral = 0;

  uint64_t reads() const { return ReadSameEpoch + ReadGeneral; }
  uint64_t writes() const { return WriteSameEpoch + WriteGeneral; }

  /// Pointwise accumulation (sharded replay folds per-shard counters).
  DjitRuleStats &operator+=(const DjitRuleStats &Other) {
    ReadSameEpoch += Other.ReadSameEpoch;
    ReadGeneral += Other.ReadGeneral;
    WriteSameEpoch += Other.WriteSameEpoch;
    WriteGeneral += Other.WriteGeneral;
    return *this;
  }
};

/// The DJIT+ analysis. R and W vector clocks are allocated lazily per
/// variable on first use, which is what Table 2's allocation counts
/// measure. Sync behaviour is pure Figure 3, so DJIT+ shards by variable
/// under spine-driven parallel replay.
class DjitPlus : public VectorClockToolBase, public ShardableTool {
public:
  const char *name() const override { return "DJIT+"; }

  void begin(const ToolContext &Context) override;
  bool onRead(ThreadId T, VarId X, size_t OpIndex) override;
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override;
  size_t shadowBytes() const override;

  const DjitRuleStats &ruleStats() const { return Rules; }

  // ShardableTool.
  ShardMode shardMode() const override { return ShardMode::SpineDriven; }
  std::unique_ptr<Tool> cloneForShard() const override {
    return std::make_unique<DjitPlus>();
  }
  void mergeShard(Tool &ShardTool) override {
    Rules += static_cast<DjitPlus &>(ShardTool).Rules;
  }

private:
  ThreadId conflictingThread(const VectorClock &Prior, ThreadId T) const;
  void reportAccessRace(ThreadId T, VarId X, size_t OpIndex, OpKind Kind,
                        const VectorClock &Prior, OpKind PriorKind);

  struct VarState {
    VectorClock R;
    VectorClock W;
  };
  std::vector<VarState> Vars;
  DjitRuleStats Rules;
};

} // namespace ft

#endif // FASTTRACK_DETECTORS_DJITPLUS_H
