//===----------------------------------------------------------------------===//
//
// Experiment E15 — shadow layout: the compressed two-level SoA shadow
// table (shadow/ShadowTable.h) versus the dense AoS layout it replaced
// (one 2-epoch + inline-VC record per declared variable).
//
// Four workloads stress the axes the layout trades on:
//   dense-hot          every variable hot: pure packed-slot streaming
//   sparse-address     million-var space, ~1 % touched: page compression
//   read-shared-heavy  many inflated read VCs: side-store behaviour
//   million-var tour   every page faulted once: fault-in + full residency
//
// Reported per workload: ns/event, measured shadow bytes, the analytic
// dense-layout footprint for the same trace (NumVars × record size), and
// the reduction ratio. The dense figure is exact, not estimated: the old
// layout pre-sized its array to NumVars records regardless of touches.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FastTrack.h"
#include "support/Table.h"
#include "trace/TraceBuilder.h"

#include <cstdio>

using namespace ft;
using namespace ft::bench;

namespace {

/// Bytes per variable of the replaced dense AoS layout: the packed epoch
/// pair plus the always-inline read vector clock.
constexpr size_t DenseBytesPerVar = 2 * sizeof(Epoch) + sizeof(VectorClock);

std::string fixed1(double Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%.1f", Value);
  return Buffer;
}

struct WorkloadResult {
  const char *Name;
  ReplayResult Replay;
  size_t PagedBytes = 0;
  size_t DenseBytes = 0;
  size_t ResidentPages = 0;
};

WorkloadResult run(const char *Name, const Trace &T) {
  FastTrack Tool;
  WorkloadResult R;
  R.Name = Name;
  R.Replay = timedReplay(T, Tool);
  R.PagedBytes = Tool.shadowBytes();
  R.DenseBytes = static_cast<size_t>(T.numVars()) * DenseBytesPerVar;
  R.ResidentPages = Tool.residentShadowPages();
  return R;
}

/// Every variable hot: two threads sweep disjoint halves of a 4096-var
/// array repeatedly. Exercises the packed-pair cache behaviour on the
/// same-epoch and exclusive fast paths.
Trace denseHot(unsigned Passes) {
  constexpr VarId Vars = 4096;
  TraceBuilder B;
  B.fork(0, 1).fork(0, 2);
  for (unsigned P = 0; P != Passes; ++P)
    for (VarId X = 0; X != Vars / 2; ++X) {
      B.wr(1, X).rd(1, X);
      B.wr(2, Vars / 2 + X).rd(2, Vars / 2 + X);
    }
  B.join(0, 1).join(0, 2);
  return B.take();
}

/// A million-variable address space with ~1 % of pages touched: four
/// threads stride through disjoint page-sized islands. The dense layout
/// pays for every declared variable; the paged one only for the islands.
Trace sparseAddress(unsigned Passes) {
  constexpr VarId Space = 1u << 20;
  constexpr unsigned Islands = 40;         // touched pages per thread
  TraceBuilder B;
  for (ThreadId T = 1; T <= 4; ++T)
    B.fork(0, T);
  for (unsigned P = 0; P != Passes; ++P)
    for (unsigned I = 0; I != Islands; ++I)
      for (ThreadId T = 1; T <= 4; ++T) {
        // Island i of thread t: one 64-var run inside its own page.
        VarId Base = ((T - 1) * Islands + I) * 6553 % (Space - 64);
        for (VarId X = 0; X != 64; ++X)
          B.wr(T, Base + X);
      }
  for (ThreadId T = 1; T <= 4; ++T)
    B.join(0, T);
  B.wr(0, Space - 1); // pin the declared space to a million variables
  return B.take();
}

/// Sixteen forked readers over 2048 variables, no cross-reader ordering:
/// every variable inflates, and the wide (spilled) read VCs live in the
/// side store. A final writer pass deflates half of them.
Trace readSharedHeavy(unsigned Passes) {
  constexpr VarId Vars = 2048;
  constexpr ThreadId Readers = 16;
  TraceBuilder B;
  for (ThreadId T = 1; T <= Readers; ++T)
    B.fork(0, T);
  for (unsigned P = 0; P != Passes; ++P)
    for (VarId X = 0; X != Vars; ++X)
      for (ThreadId T = 1; T <= Readers; ++T)
        B.rd(T, X);
  for (ThreadId T = 1; T <= Readers; ++T)
    B.join(0, T);
  for (VarId X = 0; X != Vars / 2; ++X) // joins ordered the readers
    B.wr(0, X);                         // before us: deflation, no races
  return B.take();
}

/// One thread writes each of a million variables once: every page faults
/// in, so this measures cold fault-in cost and the fully-resident
/// footprint (the layout's worst case for compression).
Trace millionVarTour() {
  constexpr VarId Space = 1u << 20;
  TraceBuilder B;
  B.fork(0, 1);
  for (VarId X = 0; X != Space; ++X)
    B.wr(1, X);
  B.join(0, 1);
  return B.take();
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("bench_shadow_layout", argc, argv);
  banner("E15: paged SoA shadow table vs dense AoS layout");

  const unsigned Passes =
      static_cast<unsigned>(4 * sizeFactor() < 1 ? 1 : 4 * sizeFactor());

  WorkloadResult Results[] = {
      run("dense-hot", denseHot(Passes)),
      run("sparse-address", sparseAddress(Passes)),
      run("read-shared-heavy", readSharedHeavy(Passes / 4 ? Passes / 4 : 1)),
      run("million-var tour", millionVarTour()),
  };

  Table Out;
  Out.addHeader({"Workload", "Events", "ns/event", "Shadow bytes",
                 "Dense bytes", "Reduction", "Pages"});
  for (const WorkloadResult &R : Results) {
    double NsPerEvent = R.Replay.Events
                            ? R.Replay.Seconds * 1e9 /
                                  static_cast<double>(R.Replay.Events)
                            : 0;
    double Reduction = R.PagedBytes
                           ? static_cast<double>(R.DenseBytes) /
                                 static_cast<double>(R.PagedBytes)
                           : 0;
    Out.addRow({R.Name, withCommas(R.Replay.Events), fixed1(NsPerEvent),
                withCommas(R.PagedBytes), withCommas(R.DenseBytes),
                fixed1(Reduction) + "x", withCommas(R.ResidentPages)});

    std::string Prefix = R.Name;
    for (char &C : Prefix)
      if (C == ' ' || C == '-')
        C = '_';
    Report.metric(Prefix + "_ns_per_event", NsPerEvent, "ns");
    Report.metric(Prefix + "_shadow_bytes",
                  static_cast<double>(R.PagedBytes), "bytes");
    Report.metric(Prefix + "_dense_shadow_bytes",
                  static_cast<double>(R.DenseBytes), "bytes");
    Report.metric(Prefix + "_shadow_reduction", Reduction, "x");
    Report.metric(Prefix + "_resident_pages",
                  static_cast<double>(R.ResidentPages), "pages");
  }
  std::fputs(Out.render().c_str(), stdout);

  std::printf("\nDense record: %zu bytes/var (2 epochs + inline read VC); "
              "paged slot: %zu bytes/var hot + 8 bytes per %u-var region "
              "directory entry.\n",
              DenseBytesPerVar, 2 * sizeof(Epoch), ShadowPageVars);
  std::printf("Sparse and million-var reductions come from paying only for "
              "touched pages; the acceptance bar is >= 2x on both.\n");

  return Report.write() ? 0 : 1;
}
