//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock sets and per-thread held-lock tracking, shared by the Eraser and
/// MultiRace detectors (and, in generalized "synchronization device" form,
/// by Goldilocks).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_DETECTORS_LOCKSET_H
#define FASTTRACK_DETECTORS_LOCKSET_H

#include "trace/Ids.h"

#include <cstddef>
#include <vector>

namespace ft {

/// A small sorted set of lock ids. Lock sets shrink monotonically under
/// intersection (Eraser's C(v) refinement), so a sorted vector is compact
/// and fast for the handful of locks typically held.
class LockSet {
public:
  LockSet() = default;

  /// Builds a set from \p Locks (sorted, deduplicated).
  explicit LockSet(std::vector<LockId> Locks);

  /// Intersects this set with \p Other in place.
  void intersectWith(const LockSet &Other);

  /// Inserts \p M.
  void insert(LockId M);

  bool contains(LockId M) const;
  bool empty() const { return Locks.empty(); }
  size_t size() const { return Locks.size(); }
  void clear() { Locks.clear(); }

  const std::vector<LockId> &locks() const { return Locks; }
  size_t memoryBytes() const { return Locks.capacity() * sizeof(LockId); }

  friend bool operator==(const LockSet &A, const LockSet &B) {
    return A.Locks == B.Locks;
  }

private:
  std::vector<LockId> Locks; // sorted, unique
};

/// Tracks the set of locks each thread currently holds, fed by
/// acquire/release events. Acquires arrive already re-entrancy-filtered
/// by the replay layer, so each (thread, lock) pair nests at most once.
class HeldLocks {
public:
  /// Resets to \p NumThreads empty sets.
  void reset(unsigned NumThreads);

  void acquire(ThreadId T, LockId M);
  void release(ThreadId T, LockId M);

  /// The locks \p T currently holds, as a LockSet view.
  const LockSet &held(ThreadId T) const { return Held[T]; }

  size_t memoryBytes() const;

private:
  std::vector<LockSet> Held;
};

} // namespace ft

#endif // FASTTRACK_DETECTORS_LOCKSET_H
