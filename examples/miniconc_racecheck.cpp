//===----------------------------------------------------------------------===//
//
// End-to-end pipeline on real programs: compile a MiniConc source file,
// execute it under the deterministic scheduler (the repository's analogue
// of RoadRunner instrumenting a JVM), and run FastTrack on the emitted
// event stream — across several schedules.
//
// Usage:
//   miniconc_racecheck               # run the two built-in demo programs
//   miniconc_racecheck FILE.mc [N]   # check FILE across N seeds (def. 10)
//   miniconc_racecheck --shards S ...  # sharded parallel replay across S
//                                      # workers (0 = all cores)
//   miniconc_racecheck --dump-analysis ...  # print the static elision
//                                      # classification per access site
//   miniconc_racecheck --no-elide ...  # keep every access instrumented
//                                      # (disable the static elision pass)
//
//===----------------------------------------------------------------------===//

#include "analysis/Elision.h"
#include "core/FastTrack.h"
#include "framework/ParallelReplay.h"
#include "lang/Interp.h"
#include "lang/Sema.h"
#include "trace/TraceStats.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace ft;
using namespace ft::lang;

namespace {

/// -1: serial replay(). Otherwise parallelReplay with this NumShards
/// (0 = one shard per hardware thread).
int ShardsFlag = -1;

/// --no-elide: run every access instrumented (the pre-analysis event
/// stream). Elision never changes which variables are reported racy —
/// the flag exists to demonstrate that, and to measure the saving.
bool NoElide = false;

/// --dump-analysis: print the per-site classification table before
/// checking.
bool DumpAnalysis = false;

/// Replays through FastTrack with the engine selected by --shards.
void checkTrace(const Trace &T, FastTrack &Detector) {
  if (ShardsFlag < 0) {
    replay(T, Detector);
    return;
  }
  ParallelReplayOptions Options;
  Options.NumShards = static_cast<unsigned>(ShardsFlag);
  parallelReplay(T, Detector, Options);
}

const char *BuggyBank = R"(
// A bank with a deposit path that forgets the lock.
shared balance;
lock m;

fn teller(rounds) {
  local i = 0;
  while (i < rounds) {
    sync (m) { balance = balance + 10; }
    i = i + 1;
  }
}

fn hastyTeller(rounds) {
  local i = 0;
  while (i < rounds) {
    balance = balance + 10;   // RACE: no lock
    i = i + 1;
  }
}

fn main() {
  let a = spawn teller(25);
  let b = spawn hastyTeller(25);
  join a; join b;
  print balance;
}
)";

const char *SafePipeline = R"(
// A race-free pipeline: data handed through a volatile flag and a
// barrier-synchronized reduction.
shared data[8];
shared sum;
volatile ready;
lock m;
barrier phase(3);

fn producer() {
  local i = 0;
  while (i < 8) { data[i] = i * 3; i = i + 1; }
  ready = 1;
  await phase;
}

fn consumer() {
  while (ready == 0) { }      // spin on the volatile
  local i = 0;
  while (i < 8) {
    sync (m) { sum = sum + data[i]; }
    i = i + 1;
  }
  await phase;
}

fn main() {
  let p = spawn producer();
  let c = spawn consumer();
  await phase;
  join p; join c;
  print sum;
}
)";

/// Compiles and runs \p Source across \p Seeds schedules, checking each
/// emitted trace with FastTrack.
int checkProgram(const std::string &Title, const std::string &Source,
                 unsigned Seeds) {
  std::printf("=== %s ===\n", Title.c_str());

  // Compile once; the elision pass stamps the AST, so every seed below
  // replays the same plan.
  Program P;
  std::vector<Diag> Diags;
  if (!compileProgram(Source, P, Diags)) {
    for (const Diag &D : Diags)
      std::printf("compile error: %s\n", toString(D).c_str());
    return 1;
  }
  analysis::AnalysisResult Analysis = analysis::analyzeProgram(P);
  analysis::ElisionOptions ElideOpts;
  ElideOpts.Enabled = !NoElide;
  analysis::ElisionPlan Plan = analysis::planElision(P, Analysis, ElideOpts);
  if (DumpAnalysis)
    std::printf("%s", analysis::renderAnalysisTable(Analysis).c_str());
  std::printf("%s\n", analysis::toString(Plan).c_str());

  unsigned RacySchedules = 0;
  uint64_t Elided = 0, Emitted = 0;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    InterpOptions Options;
    Options.Seed = Seed;
    InterpResult Run = interpret(P, Options);
    if (!Run.Ok) {
      std::printf("runtime error: %s\n", toString(Run.Error).c_str());
      return 1;
    }
    Elided += Run.EventsElided;
    Emitted += Run.EventTrace.size();

    FastTrack Detector;
    checkTrace(Run.EventTrace, Detector);
    if (Seed == 1) {
      TraceStats Stats = computeStats(Run.EventTrace);
      std::printf("schedule 1: %llu events (%.1f%% reads), program output: "
                  "%s",
                  (unsigned long long)Stats.total(), Stats.readPercent(),
                  Run.Output.empty() ? "(none)\n" : Run.Output.c_str());
    }
    if (!Detector.warnings().empty()) {
      ++RacySchedules;
      if (RacySchedules == 1)
        for (const RaceWarning &W : Detector.warnings())
          std::printf("seed %llu: %s\n", (unsigned long long)Seed,
                      toString(W).c_str());
    }
  }
  if (Elided != 0)
    std::printf("elision saved %llu of %llu access+sync events across %u "
                "schedules (%.1f%%).\n",
                (unsigned long long)Elided,
                (unsigned long long)(Elided + Emitted), Seeds,
                100.0 * (double)Elided / (double)(Elided + Emitted));
  std::printf("%u of %u schedules produced race warnings.\n\n",
              RacySchedules, Seeds);
  return 0;
}

std::string readFile(const char *Path, bool &Ok) {
  std::FILE *File = std::fopen(Path, "rb");
  if (!File) {
    Ok = false;
    return {};
  }
  std::string Text;
  char Buf[1 << 14];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Text.append(Buf, Got);
  std::fclose(File);
  Ok = true;
  return Text;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<const char *> Args;
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--shards") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --shards needs a count (0 = all "
                             "cores)\n");
        return 1;
      }
      ShardsFlag = std::atoi(Argv[++I]);
      if (ShardsFlag < 0) {
        std::fprintf(stderr, "error: invalid shard count '%s'\n", Argv[I]);
        return 1;
      }
      continue;
    }
    if (std::string(Argv[I]) == "--no-elide") {
      NoElide = true;
      continue;
    }
    if (std::string(Argv[I]) == "--dump-analysis") {
      DumpAnalysis = true;
      continue;
    }
    Args.push_back(Argv[I]);
  }

  if (!Args.empty()) {
    bool Ok = true;
    std::string Source = readFile(Args[0], Ok);
    if (!Ok) {
      std::fprintf(stderr, "error: cannot read '%s'\n", Args[0]);
      return 1;
    }
    unsigned Seeds = Args.size() > 1 ? std::atoi(Args[1]) : 10;
    return checkProgram(Args[0], Source, Seeds ? Seeds : 10);
  }

  std::printf("MiniConc race checking demo\n===========================\n\n");
  int Status = checkProgram("buggy bank (one teller forgets the lock)",
                            BuggyBank, 10);
  Status |= checkProgram("safe pipeline (volatile + lock + barrier)",
                         SafePipeline, 10);
  std::printf("Note how the racy program may still print the right total "
              "on lucky schedules\n— FastTrack flags it on every schedule "
              "that exhibits the unordered accesses.\n");
  return Status;
}
