//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operation-mix statistics over a trace. Figure 2 of the paper annotates
/// each analysis rule with the observed instruction frequencies (82.3 %
/// reads, 14.5 % writes, 3.3 % other); this module recomputes that mix for
/// our synthetic workloads so experiment E1 can compare against the paper.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_TRACESTATS_H
#define FASTTRACK_TRACE_TRACESTATS_H

#include "trace/Trace.h"

#include <string>

namespace ft {

/// Counts of each operation class in a trace.
struct TraceStats {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Acquires = 0;
  uint64_t Releases = 0;
  uint64_t Forks = 0;
  uint64_t Joins = 0;
  uint64_t VolatileReads = 0;
  uint64_t VolatileWrites = 0;
  uint64_t Barriers = 0;
  uint64_t AtomicMarkers = 0;

  /// Total number of operations counted.
  uint64_t total() const {
    return Reads + Writes + Acquires + Releases + Forks + Joins +
           VolatileReads + VolatileWrites + Barriers + AtomicMarkers;
  }

  /// Synchronization + threading operations ("Other" in Figure 2/3).
  uint64_t syncOps() const {
    return Acquires + Releases + Forks + Joins + VolatileReads +
           VolatileWrites + Barriers;
  }

  double readPercent() const;
  double writePercent() const;
  double syncPercent() const;

  /// Multi-line human-readable summary.
  std::string summary() const;
};

/// Computes the operation mix of \p T.
TraceStats computeStats(const Trace &T);

/// Counts the acquire/release operations the re-entrancy filter strips
/// before dispatch (a dry run of ReentrancyFilter over \p T). Useful for
/// instrumentation accounting: raw ops minus this is what tools see.
uint64_t countReentrantLockOps(const Trace &T);

/// Per-thread operation counts, indexed by ThreadId (size numThreads()).
std::vector<uint64_t> countOpsPerThread(const Trace &T);

} // namespace ft

#endif // FASTTRACK_TRACE_TRACESTATS_H
