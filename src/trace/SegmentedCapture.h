//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe segmented flight recording: the merged online stream is
/// written as a chain of bounded .trc segments, each sealed with a footer
/// and fsynced, so killing the recorder process mid-run loses at most the
/// one segment that was still open.
///
/// Segment files are named `<prefix>.seg000000.trc`, `<prefix>.seg000001
/// .trc`, ... and each contains plain .trc text (TraceIO.h) — any segment
/// loads on its own with loadTraceFile. A sealed segment ends with a
/// footer written as a comment line, so the plain parser skips it:
///
/// \code
///   rd 0 3
///   wr 1 3
///   # ftseg sealed records=2 sum=0123456789abcdef
/// \endcode
///
/// `records` is the operation count and `sum` the FNV-1a 64 checksum of
/// every byte above the footer. The writer flushes and fsyncs at each
/// seal, so a sealed footer on disk implies the payload above it is fully
/// durable and intact (the checksum verifies it).
///
/// recoverSegmentedCapture() walks the chain: every sealed segment is
/// loaded whole after its checksum verifies; the final, unsealed segment
/// (the torn tail of a crash) contributes its valid prefix — trailing
/// bytes after the last newline are discarded (a record cut mid-write),
/// then records are kept up to the first malformed line. The recovered
/// trace is therefore always a prefix of the delivered stream, so an
/// offline replay of it reproduces the online warnings emitted up to
/// that point.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_SEGMENTEDCAPTURE_H
#define FASTTRACK_TRACE_SEGMENTEDCAPTURE_H

#include "support/Status.h"
#include "trace/Trace.h"

#include <cstdio>
#include <string>
#include <vector>

namespace ft {

/// Options for one segmented recording.
struct SegmentWriterOptions {
  /// Seal the current segment once its payload reaches this many bytes.
  /// Small segments bound crash loss; large ones bound file count.
  size_t SegmentBytes = 1u << 20;

  /// fsync each segment at seal time (and the final one at finish). Off
  /// only for tests that simulate torn writes.
  bool Fsync = true;

  /// Flush the stdio buffer after every append batch. Keeps the torn
  /// tail's valid prefix close to the crash point at the cost of a
  /// write syscall per sequencer batch.
  bool FlushEveryAppend = true;
};

/// Writes a totally-ordered operation stream as sealed .trc segments.
/// Single-writer: the online sequencer thread owns it. I/O failures are
/// absorbed into diagnostics (recording stops; detection keeps running).
class SegmentedTraceWriter {
public:
  SegmentedTraceWriter(std::string Prefix,
                       SegmentWriterOptions Options = SegmentWriterOptions());
  ~SegmentedTraceWriter();

  SegmentedTraceWriter(const SegmentedTraceWriter &) = delete;
  SegmentedTraceWriter &operator=(const SegmentedTraceWriter &) = delete;

  /// Appends \p N non-barrier operations (one sequencer batch). Seals and
  /// rolls to a new segment whenever the size bound is crossed.
  void append(const Operation *Ops, size_t N);

  /// Seals the open segment and closes the chain. Idempotent. \returns
  /// Ok, or the first I/O failure encountered over the writer's life.
  Status finish();

  /// Segments sealed so far (finish() seals the last one).
  unsigned segmentsSealed() const { return Sealed; }

  /// Operations handed to append() over the writer's life.
  uint64_t recordsWritten() const { return TotalRecords; }

  /// True once an I/O failure stopped recording (appends become no-ops).
  bool broken() const { return Broken; }

  /// I/O failures, if any.
  const std::vector<Diagnostic> &diags() const { return Diags; }

  /// Path of segment \p Index for \p Prefix: `<prefix>.segNNNNNN.trc`.
  static std::string segmentPath(const std::string &Prefix, unsigned Index);

private:
  void fail(std::string Message);
  bool ensureOpen();
  void seal();

  std::string Prefix;
  SegmentWriterOptions Options;
  std::FILE *File = nullptr;
  std::string Buffer;          ///< Reused per-append serialization buffer.
  size_t PayloadBytes = 0;     ///< Bytes written to the open segment.
  uint64_t SegmentRecords = 0; ///< Records in the open segment.
  uint64_t Sum = 0;            ///< Running FNV-1a of the open payload.
  uint64_t TotalRecords = 0;
  unsigned NextIndex = 0; ///< Index the next opened segment will get.
  unsigned Sealed = 0;
  bool Broken = false;
  bool Finished = false;
  std::vector<Diagnostic> Diags;
};

/// What recoverSegmentedCapture() salvaged.
struct CaptureRecovery {
  /// Ok when the chain was consistent (sealed segments verified, at most
  /// a torn tail); an Error status when a sealed segment failed its
  /// checksum or record count (recovery still returns the prefix that
  /// verified).
  Status St;

  /// Per-segment notes, torn-tail salvage details, integrity failures.
  std::vector<Diagnostic> Diags;

  unsigned SegmentsSealed = 0; ///< Segments that verified sealed+intact.
  unsigned SegmentsTorn = 0;   ///< Unsealed tails salvaged (0 or 1).
  uint64_t Records = 0;        ///< Operations recovered into the trace.

  bool ok() const { return St.ok(); }
};

/// Loads every verified segment of \p Prefix's chain plus the valid
/// prefix of a torn tail into \p Out (cleared first). See file comment
/// for the prefix guarantee.
CaptureRecovery recoverSegmentedCapture(const std::string &Prefix, Trace &Out);

} // namespace ft

#endif // FASTTRACK_TRACE_SEGMENTEDCAPTURE_H
