//===--- ParallelReplayTest.cpp - sharded replay determinism --------------===//
//
// The contract of parallelReplay (docs/ARCHITECTURE.md, "Sharded
// replay"): for any shard count, any shardable tool, and any feasible
// trace, the merged result is bit-identical to serial replay() — the
// same warnings in the same order with the same fields, the same rule
// counters, the same event and pass counts. These tests enforce that
// contract over seeded RandomTrace sweeps (including chaotic, racy
// configurations), the MiniConc example-program corpus, both granularity
// modes, and every shard mode — plus unit tests for the partition plan,
// the merge cursor, and the sync spine that back the engine.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "core/ToolRegistry.h"
#include "detectors/BasicVC.h"
#include "detectors/DjitPlus.h"
#include "detectors/Eraser.h"
#include "framework/ParallelReplay.h"
#include "framework/SyncSpine.h"
#include "lang/Interp.h"
#include "trace/RandomTrace.h"
#include "trace/ShardPartition.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace ft;

#ifndef FT_CORPUS_DIR
#error "FT_CORPUS_DIR must point at examples/programs"
#endif

namespace {

const unsigned ShardCounts[] = {1, 2, 3, 4, 8};

/// Full-field warning equality; EXPECTs with a context label on mismatch.
void expectSameWarnings(const std::vector<RaceWarning> &Serial,
                        const std::vector<RaceWarning> &Sharded,
                        const std::string &Label) {
  ASSERT_EQ(Serial.size(), Sharded.size()) << Label;
  for (size_t I = 0; I != Serial.size(); ++I) {
    const RaceWarning &A = Serial[I], &B = Sharded[I];
    EXPECT_EQ(A.Var, B.Var) << Label << " warning " << I;
    EXPECT_EQ(A.OpIndex, B.OpIndex) << Label << " warning " << I;
    EXPECT_EQ(A.CurrentThread, B.CurrentThread) << Label << " warning " << I;
    EXPECT_EQ(A.CurrentKind, B.CurrentKind) << Label << " warning " << I;
    EXPECT_EQ(A.PriorThread, B.PriorThread) << Label << " warning " << I;
    EXPECT_EQ(A.PriorKind, B.PriorKind) << Label << " warning " << I;
    EXPECT_EQ(A.Detail, B.Detail) << Label << " warning " << I;
  }
}

/// Replays \p T through registry tool \p Name serially and with every
/// shard count, asserting identical warnings and bookkeeping throughout.
/// \returns the serial warning count (so callers can assert racy-ness).
size_t expectDeterministic(const Trace &T, const std::string &Name,
                           const std::string &Label,
                           const ReplayOptions &Replay = ReplayOptions()) {
  auto Serial = createTool(Name);
  EXPECT_TRUE(Serial) << Name;
  if (!Serial)
    return 0;
  ReplayResult Reference = replay(T, *Serial, Replay);

  for (unsigned Shards : ShardCounts) {
    std::string Where = Label + " [" + Name + " @" +
                        std::to_string(Shards) + " shards]";
    auto Checker = createTool(Name);
    ParallelReplayOptions Options;
    Options.Replay = Replay;
    Options.NumShards = Shards;
    ParallelReplayResult Result = parallelReplay(T, *Checker, Options);

    expectSameWarnings(Serial->warnings(), Checker->warnings(), Where);
    EXPECT_EQ(Reference.Events, Result.Total.Events) << Where;
    EXPECT_EQ(Reference.AccessesPassed, Result.Total.AccessesPassed) << Where;
    EXPECT_EQ(Serial->warnings().size(), Result.Total.NumWarnings) << Where;
    // Shards > 1 must actually engage the sharded engine for these tools.
    EXPECT_EQ(Shards > 1 && !T.empty(), Result.Sharded) << Where;
  }
  return Serial->warnings().size();
}

/// A chaotic (racy) configuration in the shape of the paper's benchmarks:
/// undisciplined accesses, barriers, volatiles, and access bursts.
RandomTraceConfig chaoticConfig(uint64_t Seed) {
  RandomTraceConfig Config;
  Config.Seed = Seed;
  Config.NumThreads = 8;
  Config.NumVars = 64;
  Config.NumLocks = 4;
  Config.NumVolatiles = 3;
  Config.OpsPerThread = 400;
  Config.ChaosProbability = 0.05;
  Config.BarrierProbability = 0.01;
  Config.MaxAccessBurst = 3;
  return Config;
}

std::string readFileOrEmpty(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return {};
  std::string Text;
  char Buf[1 << 14];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Text.append(Buf, Got);
  std::fclose(File);
  return Text;
}

} // namespace

//===----------------------------------------------------------------------===//
// Determinism: every shardable tool, random traces
//===----------------------------------------------------------------------===//

TEST(ParallelReplay, MatchesSerialOnRandomTraces) {
  size_t TotalWarnings = 0;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    Trace T = generateRandomTrace(chaoticConfig(Seed));
    std::string Label = "chaotic seed " + std::to_string(Seed);
    for (const char *Name :
         {"fasttrack", "fasttrack64", "djit+", "basicvc", "eraser"})
      TotalWarnings += expectDeterministic(T, Name, Label);
  }
  // The sweep must exercise the warning-merge path, not just clean runs.
  EXPECT_GT(TotalWarnings, 0u);
}

TEST(ParallelReplay, MatchesSerialOnRaceFreeTraces) {
  RandomTraceConfig Config = chaoticConfig(11);
  Config.ChaosProbability = 0.0; // disciplined: provably race-free
  Trace T = generateRandomTrace(Config);
  for (const char *Name : {"fasttrack", "djit+", "basicvc"})
    EXPECT_EQ(expectDeterministic(T, Name, "race-free"), 0u);
}

TEST(ParallelReplay, RuleCountersFoldExactly) {
  Trace T = generateRandomTrace(chaoticConfig(3));

  FastTrack SerialFT;
  replay(T, SerialFT);
  DjitPlus SerialDjit;
  replay(T, SerialDjit);

  for (unsigned Shards : ShardCounts) {
    ParallelReplayOptions Options;
    Options.NumShards = Shards;

    FastTrack ShardedFT;
    parallelReplay(T, ShardedFT, Options);
    const FastTrackRuleStats &A = SerialFT.ruleStats();
    const FastTrackRuleStats &B = ShardedFT.ruleStats();
    EXPECT_EQ(A.ReadSameEpoch, B.ReadSameEpoch) << Shards;
    EXPECT_EQ(A.ReadShared, B.ReadShared) << Shards;
    EXPECT_EQ(A.ReadExclusive, B.ReadExclusive) << Shards;
    EXPECT_EQ(A.ReadShare, B.ReadShare) << Shards;
    EXPECT_EQ(A.WriteSameEpoch, B.WriteSameEpoch) << Shards;
    EXPECT_EQ(A.WriteExclusive, B.WriteExclusive) << Shards;
    EXPECT_EQ(A.WriteShared, B.WriteShared) << Shards;

    DjitPlus ShardedDjit;
    parallelReplay(T, ShardedDjit, Options);
    const DjitRuleStats &C = SerialDjit.ruleStats();
    const DjitRuleStats &D = ShardedDjit.ruleStats();
    EXPECT_EQ(C.ReadSameEpoch, D.ReadSameEpoch) << Shards;
    EXPECT_EQ(C.ReadGeneral, D.ReadGeneral) << Shards;
    EXPECT_EQ(C.WriteSameEpoch, D.WriteSameEpoch) << Shards;
    EXPECT_EQ(C.WriteGeneral, D.WriteGeneral) << Shards;
  }
}

TEST(ParallelReplay, CoarseGranularityMatchesSerial) {
  Trace T = generateRandomTrace(chaoticConfig(7));
  ReplayOptions Coarse;
  Coarse.Gran = Granularity::Coarse;
  Coarse.DefaultFieldsPerObject = 4;
  for (const char *Name : {"fasttrack", "eraser"})
    expectDeterministic(T, Name, "coarse granularity", Coarse);
}

TEST(ParallelReplay, ShardModesAreAsDeclared) {
  Trace T = generateRandomTrace(chaoticConfig(5));
  ParallelReplayOptions Options;
  Options.NumShards = 4;

  FastTrack VC;
  EXPECT_EQ(parallelReplay(T, VC, Options).Mode, ShardMode::SpineDriven);
  Eraser LockSet;
  EXPECT_EQ(parallelReplay(T, LockSet, Options).Mode, ShardMode::SyncReplay);
}

//===----------------------------------------------------------------------===//
// Serial fallback
//===----------------------------------------------------------------------===//

TEST(ParallelReplay, NonShardableToolFallsBackToSerial) {
  Trace T = generateRandomTrace(chaoticConfig(2));

  // Order-sensitive tools (Goldilocks streams a global event list) never
  // implement ShardableTool; the engine must run them serially and still
  // produce their usual result.
  auto Reference = createTool("goldilocks");
  ASSERT_TRUE(Reference);
  ASSERT_EQ(dynamic_cast<ShardableTool *>(Reference.get()), nullptr);
  replay(T, *Reference);

  auto Checker = createTool("goldilocks");
  ParallelReplayOptions Options;
  Options.NumShards = 8;
  ParallelReplayResult Result = parallelReplay(T, *Checker, Options);
  EXPECT_FALSE(Result.Sharded);
  expectSameWarnings(Reference->warnings(), Checker->warnings(),
                     "goldilocks fallback");
}

TEST(ParallelReplay, OneShardAndEmptyTracesFallBack) {
  Trace T = generateRandomTrace(chaoticConfig(1));
  FastTrack Checker;
  ParallelReplayOptions Options;
  Options.NumShards = 1;
  EXPECT_FALSE(parallelReplay(T, Checker, Options).Sharded);

  Trace Empty;
  FastTrack Checker2;
  Options.NumShards = 4;
  EXPECT_FALSE(parallelReplay(Empty, Checker2, Options).Sharded);
}

//===----------------------------------------------------------------------===//
// Corpus programs (end-to-end through the MiniConc pipeline)
//===----------------------------------------------------------------------===//

TEST(ParallelReplay, MatchesSerialOnCorpusPrograms) {
  const char *Programs[] = {"philosophers.mc", "bounded_buffer.mc",
                            "stencil.mc", "readers_writer.mc",
                            "double_checked.mc"};
  size_t TotalWarnings = 0;
  for (const char *Program : Programs) {
    std::string Source =
        readFileOrEmpty(std::string(FT_CORPUS_DIR) + "/" + Program);
    ASSERT_FALSE(Source.empty()) << Program;
    for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
      std::vector<lang::Diag> Diags;
      lang::InterpOptions Options;
      Options.Seed = Seed;
      lang::InterpResult Run = lang::runSource(Source, Diags, Options);
      ASSERT_TRUE(Diags.empty() && Run.Ok) << Program;
      std::string Label =
          std::string(Program) + " seed " + std::to_string(Seed);
      for (const char *Name : {"fasttrack", "eraser"})
        TotalWarnings += expectDeterministic(Run.EventTrace, Name, Label);
    }
  }
  EXPECT_GT(TotalWarnings, 0u); // double_checked.mc races on some seeds
}

//===----------------------------------------------------------------------===//
// Unit tests: partition plan, merge cursor, sync spine
//===----------------------------------------------------------------------===//

TEST(ShardPartition, CollectsDispatchedSyncSchedule) {
  Trace T = generateRandomTrace(chaoticConfig(4));
  std::vector<uint32_t> SyncOps = collectSyncOps(T, true);
  ASSERT_FALSE(SyncOps.empty());
  uint32_t Prev = 0;
  for (size_t J = 0; J != SyncOps.size(); ++J) {
    uint32_t I = SyncOps[J];
    if (J) {
      EXPECT_LT(Prev, I);
    }
    Prev = I;
    EXPECT_TRUE(T[I].Kind != OpKind::Read && T[I].Kind != OpKind::Write);
  }
  // Every non-access event appears, except filtered re-entrant lock ops.
  size_t NonAccess = 0;
  for (size_t I = 0; I != T.size(); ++I)
    NonAccess += T[I].Kind != OpKind::Read && T[I].Kind != OpKind::Write;
  EXPECT_LE(SyncOps.size(), NonAccess);
  EXPECT_EQ(collectSyncOps(T, false).size(), NonAccess);
}

TEST(ShardPartition, ReentrantLockOpsAreFiltered) {
  Trace T = TraceBuilder()
                .acq(0, 0)
                .acq(0, 0) // re-entrant: filtered
                .wr(0, 0)
                .rel(0, 0) // inner release: filtered
                .rel(0, 0)
                .take();
  EXPECT_EQ(collectSyncOps(T, true), (std::vector<uint32_t>{0, 4}));
  EXPECT_EQ(collectSyncOps(T, false), (std::vector<uint32_t>{0, 1, 3, 4}));
}

TEST(SyncSpineTest, RecordsLazilyAtFirstAccessAfterClockChange) {
  Trace T = TraceBuilder()
                .fork(0, 1)      // 0: both clocks change
                .acq(1, 0)       // 1: no-op join (lock still ⊥) — no entry
                .wr(1, 0)        // 2: t1 records its fork-time clock (@0)
                .rel(1, 0)       // 3: t1 clock changes
                .wr(1, 1)        // 4: t1 records its release clock (@3)
                .barrier({0, 1}) // 5: both clocks change
                .wr(0, 0)        // 6: t0 records — fork + barrier collapse
                .join(0, 1)      // 7: both change; never accessed again
                .take();
  SpinePrePass Pre = buildSyncSpine(T, true);
  const SyncSpine &Spine = Pre.Spine;

  // The dispatched sync schedule excludes only access events here.
  EXPECT_EQ(Pre.SyncOps, (std::vector<uint32_t>{0, 1, 3, 5, 7}));

  ASSERT_EQ(Spine.PerThread.size(), 2u);
  // Deferred recording: a clock is copied only at the owning thread's
  // next data access, so t0's fork-time change is never materialized
  // (the barrier superseded it) and the join updates don't exist at all.
  ASSERT_EQ(Spine.PerThread[0].size(), 1u);
  ASSERT_EQ(Spine.PerThread[1].size(), 2u);
  EXPECT_EQ(Spine.numUpdates(), 3u);
  EXPECT_EQ(Spine.PerThread[0][0].OpIndex, 5u);
  EXPECT_EQ(Spine.PerThread[1][0].OpIndex, 0u);
  EXPECT_EQ(Spine.PerThread[1][1].OpIndex, 3u);
  EXPECT_GT(Spine.memoryBytes(), 0u);

  // The recorded clocks carry the happens-before content: t1's release
  // clock advances its own entry past its fork-time clock, and t0's
  // barrier clock dominates both of t1's recorded states.
  EXPECT_GT(Spine.PerThread[1][1].Clock.get(1),
            Spine.PerThread[1][0].Clock.get(1));
  EXPECT_GE(Spine.PerThread[0][0].Clock.get(1),
            Spine.PerThread[1][1].Clock.get(1));
}
