//===--- WorkloadsTest.cpp - the 16 benchmark analogues + Eclipse ops -----===//
//
// Validates each synthetic workload's ground truth: feasibility, oracle-
// verified race content, the warning behaviour of every detector (the
// right column of Table 1), and the operation mix the generators were
// calibrated to.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "detectors/BasicVC.h"
#include "detectors/DjitPlus.h"
#include "detectors/Eraser.h"
#include "detectors/Goldilocks.h"
#include "detectors/MultiRace.h"
#include "framework/Replay.h"
#include "hb/RaceOracle.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

/// Small size factor: tests need speed, not volume.
constexpr double TestFactor = 0.04;

size_t warningsOf(Tool &Checker, const Trace &T) {
  replay(T, Checker);
  return Checker.warnings().size();
}

} // namespace

class WorkloadSuite : public ::testing::TestWithParam<size_t> {
protected:
  const Workload &workload() const { return benchmarkSuite()[GetParam()]; }
};

TEST_P(WorkloadSuite, TracesAreFeasible) {
  const Workload &W = workload();
  Trace T = W.Generate(7, TestFactor);
  auto Violations = validateTrace(T);
  ASSERT_TRUE(Violations.empty())
      << W.Name << ": " << (Violations.empty() ? "" : Violations[0].Message);
  EXPECT_EQ(T.numThreads(), W.Workers + 1) << W.Name;
}

TEST_P(WorkloadSuite, DeterministicPerSeed) {
  const Workload &W = workload();
  Trace A = W.Generate(11, TestFactor);
  Trace B = W.Generate(11, TestFactor);
  ASSERT_EQ(A.size(), B.size()) << W.Name;
  for (size_t I = 0; I != A.size(); ++I)
    ASSERT_EQ(A[I], B[I]) << W.Name << " op " << I;
}

TEST_P(WorkloadSuite, OracleConfirmsGroundTruthRaceCount) {
  const Workload &W = workload();
  Trace T = W.Generate(7, TestFactor);
  EXPECT_EQ(racyVars(T).size(), W.RealRacyVars) << W.Name;
}

TEST_P(WorkloadSuite, FastTrackFindsExactlyTheRealRaces) {
  const Workload &W = workload();
  Trace T = W.Generate(7, TestFactor);
  FastTrack Ft;
  EXPECT_EQ(warningsOf(Ft, T), W.RealRacyVars) << W.Name;
}

TEST_P(WorkloadSuite, PreciseVcDetectorsAgree) {
  const Workload &W = workload();
  Trace T = W.Generate(7, TestFactor);
  DjitPlus Djit;
  BasicVC Basic;
  EXPECT_EQ(warningsOf(Djit, T), W.RealRacyVars) << W.Name;
  EXPECT_EQ(warningsOf(Basic, T), W.RealRacyVars) << W.Name;
}

TEST_P(WorkloadSuite, EraserWarningsMatchTable1) {
  const Workload &W = workload();
  Trace T = W.Generate(7, TestFactor);
  Eraser E;
  replay(T, E);
  // Eraser reports its false alarms plus the subset of real races its
  // state machine can see (it misses silent write->read hand-offs: two
  // of the hedc races and one of the jbb races).
  unsigned Missed = W.Name == "hedc" ? 2 : W.Name == "jbb" ? 1 : 0;
  EXPECT_EQ(E.warnings().size(),
            W.ExpectedEraserFalseAlarms + W.RealRacyVars - Missed)
      << W.Name;
}

TEST_P(WorkloadSuite, GoldilocksUnsoundFastPathMissesHandoffs) {
  const Workload &W = workload();
  Trace T = W.Generate(7, TestFactor);
  Goldilocks Fast(/*UnsoundThreadLocal=*/true);
  unsigned Missed = W.Name == "hedc" ? 3 : W.Name == "jbb" ? 1 : 0;
  EXPECT_EQ(warningsOf(Fast, T), W.RealRacyVars - Missed) << W.Name;

  Goldilocks Sound(/*UnsoundThreadLocal=*/false);
  EXPECT_EQ(warningsOf(Sound, T), W.RealRacyVars) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadSuite,
    ::testing::Range<size_t>(0, benchmarkSuite().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return benchmarkSuite()[Info.param].Name;
    });

TEST(WorkloadRegistry, SuiteMatchesPaperRowOrderAndTotals) {
  const auto &Suite = benchmarkSuite();
  ASSERT_EQ(Suite.size(), 16u);
  EXPECT_EQ(Suite.front().Name, "colt");
  EXPECT_EQ(Suite.back().Name, "jbb");
  unsigned TotalReal = 0, TotalEraserFalse = 0, NotComputeBound = 0;
  for (const Workload &W : Suite) {
    TotalReal += W.RealRacyVars;
    TotalEraserFalse += W.ExpectedEraserFalseAlarms;
    NotComputeBound += !W.ComputeBound;
  }
  EXPECT_EQ(TotalReal, 8u);        // FastTrack column total in Table 1
  EXPECT_EQ(NotComputeBound, 4u);  // elevator, philo, hedc, jbb
  // Eraser column total is 27 = false alarms + real races it sees (8-3).
  EXPECT_EQ(TotalEraserFalse + TotalReal - 3, 27u);
}

TEST(WorkloadRegistry, FindWorkloadByName) {
  EXPECT_NE(findWorkload("tsp"), nullptr);
  EXPECT_NE(findWorkload("eclipse-debug"), nullptr);
  EXPECT_EQ(findWorkload("nope"), nullptr);
}

TEST(WorkloadMix, AggregateOperationMixApproximatesFigure2) {
  // The paper reports 82.3 % reads / 14.5 % writes / 3.3 % sync across
  // its benchmarks; the generators were calibrated to stay in the same
  // regime (read-dominated, sync rare).
  uint64_t Reads = 0, Writes = 0, Sync = 0, Total = 0;
  for (const Workload &W : benchmarkSuite()) {
    Trace T = W.Generate(3, TestFactor);
    TraceStats Stats = computeStats(T);
    Reads += Stats.Reads;
    Writes += Stats.Writes;
    Sync += Stats.syncOps();
    Total += Stats.total();
  }
  double ReadPct = 100.0 * Reads / Total;
  double WritePct = 100.0 * Writes / Total;
  double SyncPct = 100.0 * Sync / Total;
  EXPECT_GT(ReadPct, 55.0);
  EXPECT_LT(WritePct, 42.0);
  EXPECT_LT(SyncPct, 12.0);
}

class EclipseSuite : public ::testing::TestWithParam<size_t> {
protected:
  const Workload &op() const { return eclipseOperations()[GetParam()]; }
};

TEST_P(EclipseSuite, FeasibleAndTwentyFourThreaded) {
  const Workload &W = op();
  Trace T = W.Generate(5, 0.2);
  EXPECT_TRUE(isFeasible(T)) << W.Name;
  EXPECT_EQ(T.numThreads(), 25u) << W.Name; // 24 workers + main
}

TEST_P(EclipseSuite, FastTrackWarningsAreTheRealRaces) {
  const Workload &W = op();
  Trace T = W.Generate(5, 1.0);
  FastTrack Ft;
  size_t FtWarnings = warningsOf(Ft, T);
  EXPECT_EQ(FtWarnings, W.RealRacyVars) << W.Name;

  // Eraser drowns the real warnings in spurious ones (the 960-vs-30
  // contrast of Section 5.3).
  Eraser E;
  size_t EraserWarnings = warningsOf(E, T);
  EXPECT_GT(EraserWarnings, 10 * FtWarnings) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, EclipseSuite,
    ::testing::Range<size_t>(0, eclipseOperations().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = eclipseOperations()[Info.param].Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(EclipseRegistry, ThirtyRealRacesAcrossTheFiveOps) {
  unsigned Total = 0;
  for (const Workload &W : eclipseOperations())
    Total += W.RealRacyVars;
  EXPECT_EQ(Total, 30u); // "FASTTRACK reported 30 distinct warnings"
}
