//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of traces, one operation per line:
///
/// \code
///   # comment
///   rd 0 3          # rd(t=0, x=3)
///   wr 1 3
///   acq 0 2
///   rel 0 2
///   fork 0 1
///   join 0 1
///   vrd 0 1         # volatile read
///   vwr 0 1         # volatile write
///   barrier 0 1 2   # barrier release of threads {0,1,2}
///   abegin 0        # atomic-block begin
///   aend 0
/// \endcode
///
/// The format lets examples and external fuzzers feed traces to the
/// detectors without linking against the generators.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_TRACEIO_H
#define FASTTRACK_TRACE_TRACEIO_H

#include "trace/Trace.h"

#include <string>
#include <string_view>

namespace ft {

/// Renders \p T in the text format described above.
std::string serializeTrace(const Trace &T);

/// Parses the text format into \p Out.
///
/// \returns true on success; on failure returns false and describes the
/// problem (with a 1-based line number) in \p Error.
bool parseTrace(std::string_view Text, Trace &Out, std::string &Error);

/// Writes \p T to \p Path. \returns true on success.
bool saveTraceFile(const std::string &Path, const Trace &T,
                   std::string &Error);

/// Reads a trace from \p Path into \p Out. \returns true on success.
bool loadTraceFile(const std::string &Path, Trace &Out, std::string &Error);

} // namespace ft

#endif // FASTTRACK_TRACE_TRACEIO_H
