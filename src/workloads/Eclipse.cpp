//===----------------------------------------------------------------------===//
//
// The five Eclipse 3.4.0 operations of Section 5.3, modelled as
// 24-thread IDE workloads: a lock-protected job queue, large read-shared
// workspace metadata, per-thread build scratch state, and the specific
// warning sources the paper lists — races on a tree-node array, progress
// meters, a double-checked-locking field, result-hand-back array entries,
// and debugger stream initialization. Eclipse's wait/notify, semaphore,
// and readers-writer-lock idioms (which Eraser cannot model) appear as
// volatile hand-offs, giving Eraser its hundreds of spurious warnings
// (960 across the five operations in the paper).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/WorkloadKit.h"

#include <algorithm>
#include <cmath>

using namespace ft;

namespace {

/// Shape of one Eclipse operation.
struct EclipseSpec {
  const char *Name;
  unsigned Rounds;          ///< Work volume at SizeFactor 1.
  unsigned MetadataVars;    ///< Read-shared workspace metadata size.
  unsigned RealRaces;       ///< Racy variables (tree nodes, meters, ...).
  unsigned EraserHandoffs;  ///< Spurious-warning hand-offs.
};

Trace makeEclipseOp(const EclipseSpec &Spec, uint64_t Seed, double F) {
  unsigned Workers = 24;
  WorkloadKit Kit(Workers, Seed);
  unsigned Rounds =
      std::max(1u, static_cast<unsigned>(std::lround(Spec.Rounds * F)));

  VarId Metadata = Kit.allocVars(Spec.MetadataVars);
  VarId JobQueue = Kit.allocVars(32);
  VarId Resources = Kit.allocVars(8);
  VarId Tl = Kit.allocVars(Workers * 8);
  VarId RacyVars = Kit.allocVars(Spec.RealRaces);
  VarId Handoffs = Kit.allocVars(Spec.EraserHandoffs);
  LockId QueueLock = Kit.allocLocks(1);
  LockId ResourceLocks = Kit.allocLocks(8);
  VolatileId Flags = Kit.allocVolatiles(Spec.EraserHandoffs);

  // Workspace metadata is initialized by the UI thread, then read-shared.
  for (unsigned I = 0; I != Spec.MetadataVars; ++I)
    Kit.wr(0, Metadata + I);
  Kit.forkAll();

  Kit.rounds(Rounds, [&](ThreadId T, unsigned R) {
    // Pull a job.
    Kit.acq(T, QueueLock);
    Kit.rd(T, JobQueue + (R % 32));
    Kit.wr(T, JobQueue + (R % 32));
    Kit.rel(T, QueueLock);
    // Consult the workspace and build in scratch space.
    Kit.readSharedSweep(T, Metadata, Spec.MetadataVars, 20);
    Kit.threadLocalWork(T, Tl + (T - 1) * 8, 8, 24);
    // Touch a resource under a fine-grained lock.
    unsigned Slot = static_cast<unsigned>(Kit.Rng.nextBelow(8));
    Kit.lockedRmw(T, ResourceLocks + Slot, Resources + Slot);
    // The real races: tree nodes / progress meters / double-checked
    // locking. Each racy variable is shared by a fixed pair of threads
    // that update it in the *same* round — accesses in different rounds
    // would be serialized by the job-queue lock.
    if (Spec.RealRaces != 0 && R % 8 == 1) {
      unsigned Pair = (T - 1) / 2;
      if (Pair < Spec.RealRaces)
        Kit.racyRmw(T, RacyVars + Pair);
    }
  });

  // The non-lock synchronization idioms Eraser cannot follow.
  for (unsigned I = 0; I != Spec.EraserHandoffs; ++I)
    Kit.volatileHandoffFalseAlarm(
        Kit.workerTid(I % Workers),
        Kit.workerTid((I + 7) % Workers), Handoffs + I, 1, Flags + I);

  Kit.joinAll();
  return Kit.take();
}

const EclipseSpec Specs[] = {
    //               rounds meta  races handoffs
    {"eclipse-startup", 160, 1024, 8, 220},
    {"eclipse-import", 90, 512, 6, 180},
    {"eclipse-clean-small", 110, 512, 6, 190},
    {"eclipse-clean-large", 260, 1024, 6, 200},
    {"eclipse-debug", 30, 256, 4, 170},
};

} // namespace

const std::vector<Workload> &ft::eclipseOperations() {
  static const std::vector<Workload> Ops = [] {
    std::vector<Workload> Result;
    for (const EclipseSpec &Spec : Specs) {
      Workload W;
      W.Name = Spec.Name;
      W.Workers = 24;
      W.ComputeBound = true;
      W.RealRacyVars = Spec.RealRaces;
      W.ExpectedEraserFalseAlarms = Spec.EraserHandoffs;
      W.Generate = [&Spec](uint64_t Seed, double F) {
        return makeEclipseOp(Spec, Seed, F);
      };
      Result.push_back(std::move(W));
    }
    return Result;
  }();
  return Ops;
}
