//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic wall-clock stopwatch used by the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_SUPPORT_STOPWATCH_H
#define FASTTRACK_SUPPORT_STOPWATCH_H

#include <chrono>

namespace ft {

/// Measures elapsed wall-clock time from construction or the last restart.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the measurement window.
  void restart() { Start = Clock::now(); }

  /// Returns seconds elapsed since construction or the last restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns nanoseconds elapsed since construction or the last restart.
  uint64_t nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                Start)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace ft

#endif // FASTTRACK_SUPPORT_STOPWATCH_H
