#include "trace/TraceIO.h"

#include <algorithm>
#include <cstdio>
#include <optional>

using namespace ft;

void ft::serializeOperation(std::string &Out, const Operation &Op) {
  Out += opKindName(Op.Kind);
  Out += ' ';
  Out += std::to_string(Op.Thread);
  if (Op.Target != NoTarget) {
    Out += ' ';
    Out += std::to_string(Op.Target);
  }
  Out += '\n';
}

std::string ft::serializeTrace(const Trace &T) {
  std::string Out;
  Out.reserve(T.size() * 8);
  for (const Operation &Op : T) {
    if (Op.Kind == OpKind::Barrier) {
      Out += opKindName(Op.Kind);
      for (ThreadId U : T.barrierSet(Op.Target)) {
        Out += ' ';
        Out += std::to_string(U);
      }
      Out += '\n';
      continue;
    }
    serializeOperation(Out, Op);
  }
  return Out;
}

namespace {

std::optional<uint32_t> parseU32(std::string_view Tok) {
  if (Tok.empty() || Tok.size() > 10)
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Tok) {
    if (C < '0' || C > '9')
      return std::nullopt;
    Value = Value * 10 + (C - '0');
  }
  if (Value > 0xffffffffULL)
    return std::nullopt;
  return static_cast<uint32_t>(Value);
}

std::optional<OpKind> kindFromName(std::string_view Name) {
  static const std::pair<const char *, OpKind> Names[] = {
      {"rd", OpKind::Read},          {"wr", OpKind::Write},
      {"acq", OpKind::Acquire},      {"rel", OpKind::Release},
      {"fork", OpKind::Fork},        {"join", OpKind::Join},
      {"vrd", OpKind::VolatileRead}, {"vwr", OpKind::VolatileWrite},
      {"barrier", OpKind::Barrier},  {"abegin", OpKind::AtomicBegin},
      {"aend", OpKind::AtomicEnd},
  };
  for (const auto &[Str, Kind] : Names)
    if (Name == Str)
      return Kind;
  return std::nullopt;
}

/// One record at a time: tokenizes each line, appends well-formed records
/// to the trace, and routes malformed ones through the strict/salvage
/// policy. Shared by the in-memory parser and the streaming file loader,
/// so both enforce identical record grammar and diagnostics.
class LineParser {
public:
  LineParser(Trace &Out, const ParseOptions &Options, ParseReport &Report)
      : Out(Out), Options(Options), Report(Report) {}

  /// Parses one raw input line (comments and blanks allowed). \p MaybeTruncated
  /// marks a final line with no trailing newline, where a malformed
  /// record usually means the file was cut off mid-write.
  void consumeLine(std::string_view Raw, unsigned LineNo,
                   bool MaybeTruncated = false) {
    if (Aborted)
      return;
    size_t Hash = Raw.find('#');
    if (Hash != std::string_view::npos)
      Raw = Raw.substr(0, Hash);
    tokenize(Raw);
    if (Tokens.empty())
      return;
    std::string Err;
    if (parseRecord(Err)) {
      ++Report.Records;
      return;
    }
    if (MaybeTruncated)
      Err += " (truncated final record?)";
    recordError(LineNo, std::move(Err));
  }

  /// Emits the salvage summary note. Call once after the last line.
  void finish() {
    if (Options.Salvage && Report.Skipped != 0 && !Aborted)
      Report.Diags.push_back(
          {StatusCode::ParseError, Severity::Note, 0, NoOpIndex,
           "salvage: skipped " + std::to_string(Report.Skipped) +
               " malformed record(s), kept " +
               std::to_string(Report.Records)});
  }

  /// True once the parse failed hard; remaining input is not consumed.
  bool aborted() const { return Aborted; }

private:
  void tokenize(std::string_view Raw) {
    Tokens.clear();
    size_t Pos = 0;
    while (Pos < Raw.size()) {
      while (Pos < Raw.size() &&
             (Raw[Pos] == ' ' || Raw[Pos] == '\t' || Raw[Pos] == '\r'))
        ++Pos;
      size_t Start = Pos;
      while (Pos < Raw.size() && Raw[Pos] != ' ' && Raw[Pos] != '\t' &&
             Raw[Pos] != '\r')
        ++Pos;
      if (Pos > Start)
        Tokens.push_back(Raw.substr(Start, Pos - Start));
    }
  }

  /// Parses an id token, enforcing the MaxId bound (ids that large would
  /// collide with the NoTarget sentinel or wrap entity counts).
  std::optional<uint32_t> parseId(std::string_view Tok, const char *What,
                                  std::string &Err) {
    auto Value = parseU32(Tok);
    if (!Value) {
      Err = std::string("bad ") + What + " '" + std::string(Tok) + "'";
      return std::nullopt;
    }
    if (*Value >= Options.MaxId) {
      Err = std::string(What) + " " + std::string(Tok) +
            " out of range (ids must be < " + std::to_string(Options.MaxId) +
            ")";
      return std::nullopt;
    }
    return Value;
  }

  bool parseRecord(std::string &Err) {
    auto Kind = kindFromName(Tokens[0]);
    if (!Kind) {
      Err = "unknown operation '" + std::string(Tokens[0]) + "'";
      return false;
    }

    if (*Kind == OpKind::Barrier) {
      if (Tokens.size() < 2) {
        Err = "barrier needs at least one thread id";
        return false;
      }
      BarrierSet.clear();
      for (size_t I = 1; I != Tokens.size(); ++I) {
        auto Tid = parseId(Tokens[I], "thread id", Err);
        if (!Tid)
          return false;
        if (std::find(BarrierSet.begin(), BarrierSet.end(), *Tid) !=
            BarrierSet.end()) {
          Err = "duplicate thread id " + std::string(Tokens[I]) +
                " in barrier";
          return false;
        }
        BarrierSet.push_back(*Tid);
      }
      Out.appendBarrier(BarrierSet);
      return true;
    }

    bool HasTarget = *Kind != OpKind::AtomicBegin && *Kind != OpKind::AtomicEnd;
    size_t Expected = HasTarget ? 3 : 2;
    if (Tokens.size() != Expected) {
      Err = "expected " + std::to_string(Expected - 1) + " operand(s) for '" +
            std::string(Tokens[0]) + "'";
      return false;
    }

    auto Tid = parseId(Tokens[1], "thread id", Err);
    if (!Tid)
      return false;
    uint32_t Target = NoTarget;
    if (HasTarget) {
      auto Parsed = parseId(Tokens[2], "target id", Err);
      if (!Parsed)
        return false;
      Target = *Parsed;
    }
    Out.append(Operation(*Kind, *Tid, Target));
    return true;
  }

  void recordError(unsigned LineNo, std::string Message) {
    if (Options.Salvage) {
      ++Report.Skipped;
      Report.Diags.push_back({StatusCode::ParseError, Severity::Warning,
                              LineNo, NoOpIndex, std::move(Message)});
      if (Report.Skipped > Options.ErrorBudget) {
        // The Diagnostic's Line field already carries the position; only the
        // flat Status message needs it spelled out.
        std::string Brief = "salvage error budget (" +
                            std::to_string(Options.ErrorBudget) + ") exhausted";
        Report.St = Status::error(StatusCode::ParseError,
                                  Brief + " at line " + std::to_string(LineNo));
        Report.Diags.push_back({StatusCode::ParseError, Severity::Fatal,
                                LineNo, NoOpIndex, std::move(Brief)});
        Aborted = true;
      }
      return;
    }
    Report.St = Status::error(StatusCode::ParseError,
                              "line " + std::to_string(LineNo) + ": " + Message);
    Report.Diags.push_back({StatusCode::ParseError, Severity::Error, LineNo,
                            NoOpIndex, std::move(Message)});
    Aborted = true;
  }

  Trace &Out;
  const ParseOptions &Options;
  ParseReport &Report;
  std::vector<std::string_view> Tokens;
  std::vector<ThreadId> BarrierSet;
  bool Aborted = false;
};

} // namespace

ParseReport ft::parseTrace(std::string_view Text, Trace &Out,
                           const ParseOptions &Options) {
  Out.clear();
  ParseReport Report;
  LineParser Parser(Out, Options, Report);
  unsigned LineNo = 0;
  while (!Text.empty() && !Parser.aborted()) {
    size_t Eol = Text.find('\n');
    bool LastAndUnterminated = Eol == std::string_view::npos;
    std::string_view Raw =
        LastAndUnterminated ? Text : Text.substr(0, Eol);
    Text = LastAndUnterminated ? std::string_view() : Text.substr(Eol + 1);
    Parser.consumeLine(Raw, ++LineNo, LastAndUnterminated);
  }
  Parser.finish();
  return Report;
}

Status ft::saveTraceFile(const std::string &Path, const Trace &T) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return Status::error(StatusCode::IoError,
                         "cannot open '" + Path + "' for writing");
  std::string Text = serializeTrace(T);
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  std::fclose(File);
  if (Written != Text.size())
    return Status::error(StatusCode::IoError, "short write to '" + Path + "'");
  return Status::okStatus();
}

ParseReport ft::loadTraceFile(const std::string &Path, Trace &Out,
                              const ParseOptions &Options) {
  Out.clear();
  ParseReport Report;
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Report.St = Status::error(StatusCode::IoError,
                              "cannot open '" + Path + "' for reading");
    Report.Diags.push_back({StatusCode::IoError, Severity::Error, 0,
                            NoOpIndex, Report.St.message()});
    return Report;
  }

  // Stream in fixed-size chunks; only a partial trailing line is ever
  // carried between chunks, so peak memory stays one chunk + the trace.
  LineParser Parser(Out, Options, Report);
  std::string Carry;
  char Buf[1 << 16];
  unsigned LineNo = 0;
  size_t Got;
  while (!Parser.aborted() &&
         (Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0) {
    std::string_view Chunk(Buf, Got);
    size_t Start = 0;
    for (size_t Eol; (Eol = Chunk.find('\n', Start)) != std::string_view::npos;
         Start = Eol + 1) {
      std::string_view Line = Chunk.substr(Start, Eol - Start);
      if (Carry.empty()) {
        Parser.consumeLine(Line, ++LineNo);
      } else {
        Carry.append(Line);
        Parser.consumeLine(Carry, ++LineNo);
        Carry.clear();
      }
      if (Parser.aborted())
        break;
    }
    if (!Parser.aborted())
      Carry.append(Chunk.substr(Start));
  }
  bool ReadError = std::ferror(File) != 0;
  std::fclose(File);

  if (ReadError && !Parser.aborted()) {
    Report.St = Status::error(StatusCode::IoError,
                              "read error on '" + Path + "'");
    Report.Diags.push_back({StatusCode::IoError, Severity::Error, 0,
                            NoOpIndex, Report.St.message()});
    return Report;
  }
  // A final line with no newline: parse it, flagging that a malformed
  // record here usually means the file was truncated mid-write.
  if (!Parser.aborted() && !Carry.empty())
    Parser.consumeLine(Carry, ++LineNo, /*MaybeTruncated=*/true);
  Parser.finish();
  return Report;
}
