//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread event channel: a bounded single-producer single-consumer
/// ring buffer carrying instrumentation events from one application thread
/// to the sequencer.
///
/// One ring per instrumented thread keeps the hot emit path free of
/// cross-thread contention: the producer touches only its own tail (and
/// reads the consumer's head with acquire ordering), the sequencer only
/// its own heads. The bound is the backpressure mechanism — a thread that
/// outruns the detector parks in emit() until the sequencer drains, so
/// detection memory stays O(threads × capacity) no matter how fast the
/// application generates events (the C11Tester/RoadRunner budgeting
/// discipline, not an unbounded log).
///
/// Two standard SPSC optimizations keep the indices off each other's
/// cache lines:
///  - Head and Tail live on separate 64-byte-aligned lines, so a push
///    never invalidates the line a pop is spinning on (and vice versa).
///  - Each side keeps a private cached copy of the other side's index and
///    only re-reads the shared atomic when the cache says the ring looks
///    full (producer) or empty (consumer). A steady-state push/pop pair
///    is then one relaxed load + one release store per side.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_RUNTIME_EVENTRING_H
#define FASTTRACK_RUNTIME_EVENTRING_H

#include "trace/Operation.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

namespace ft::runtime {

/// One instrumentation event in flight. The producing thread is implied
/// by the ring it travels through; Seq is the global total-order ticket
/// the sequencer merges on.
struct OnlineEvent {
  uint64_t Seq = 0;
  OpKind Kind = OpKind::Read;
  uint32_t Target = 0;
};

/// Bounded SPSC ring of OnlineEvents. Capacity is rounded up to a power
/// of two. All cross-thread hand-off is acquire/release on Head/Tail, so
/// the ring is data-race-free by construction (certified by the CI TSan
/// job, which runs real producer threads against a real sequencer).
class EventRing {
public:
  explicit EventRing(size_t Capacity) {
    size_t Pow2 = 1;
    while (Pow2 < Capacity)
      Pow2 <<= 1;
    Buffer.resize(Pow2);
    Mask = Pow2 - 1;
  }

  EventRing(const EventRing &) = delete;
  EventRing &operator=(const EventRing &) = delete;

  size_t capacity() const { return Buffer.size(); }

  // --- producer side ---

  /// True when push() may be called. The producer owns Tail, so a true
  /// result cannot be invalidated by the consumer (draining only makes
  /// more room). Non-const: refreshes the producer's cached head when the
  /// ring looks full.
  bool hasSpace() {
    uint64_t T = Tail.load(std::memory_order_relaxed);
    if (T - HeadCache < Buffer.size())
      return true;
    HeadCache = Head.load(std::memory_order_acquire);
    return T - HeadCache < Buffer.size();
  }

  /// Appends \p E. Precondition: hasSpace().
  void push(const OnlineEvent &E) {
    uint64_t T = Tail.load(std::memory_order_relaxed);
    assert(T - Head.load(std::memory_order_acquire) < Buffer.size() &&
           "push on a full ring");
    Buffer[T & Mask] = E;
    Tail.store(T + 1, std::memory_order_release);
  }

  // --- consumer side ---

  /// Returns the oldest event without consuming it, or nullptr when the
  /// ring is empty. The slot stays valid until the matching pop().
  /// Non-const: refreshes the consumer's cached tail when the ring looks
  /// empty.
  const OnlineEvent *peek() {
    uint64_t H = Head.load(std::memory_order_relaxed);
    if (H == TailCache) {
      TailCache = Tail.load(std::memory_order_acquire);
      if (H == TailCache)
        return nullptr;
    }
    return &Buffer[H & Mask];
  }

  /// Consumes the event peek() returned.
  void pop() {
    uint64_t H = Head.load(std::memory_order_relaxed);
    assert(H != Tail.load(std::memory_order_acquire) && "pop on empty ring");
    Head.store(H + 1, std::memory_order_release);
  }

  /// Batch drain for the sequencer: copies out up to \p Max consecutive
  /// events whose tickets continue the run \p NextSeq, advancing
  /// \p NextSeq past each one, and releases all consumed slots with a
  /// single Head store (so a parked producer sees the whole batch of
  /// space at once). Stops early at the first out-of-run ticket — that
  /// event stays in the ring for a later visit. Returns the number of
  /// events written to \p Out.
  size_t popRunInto(uint64_t &NextSeq, OnlineEvent *Out, size_t Max) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    if (H == TailCache) {
      TailCache = Tail.load(std::memory_order_acquire);
      if (H == TailCache)
        return 0;
    }
    size_t N = 0;
    while (N != Max && H != TailCache) {
      const OnlineEvent &E = Buffer[H & Mask];
      if (E.Seq != NextSeq)
        break;
      Out[N++] = E;
      ++H;
      ++NextSeq;
    }
    if (N != 0)
      Head.store(H, std::memory_order_release);
    return N;
  }

  bool empty() const {
    return Head.load(std::memory_order_acquire) ==
           Tail.load(std::memory_order_acquire);
  }

private:
  std::vector<OnlineEvent> Buffer;
  size_t Mask = 0;

  /// Consumer cache line: the shared head index plus the consumer's
  /// private cached copy of Tail.
  alignas(64) std::atomic<uint64_t> Head{0}; ///< Next slot to consume.
  uint64_t TailCache = 0;

  /// Producer cache line: the shared tail index plus the producer's
  /// private cached copy of Head.
  alignas(64) std::atomic<uint64_t> Tail{0}; ///< Next slot to fill.
  uint64_t HeadCache = 0;
};

} // namespace ft::runtime

#endif // FASTTRACK_RUNTIME_EVENTRING_H
