//===--- FastTrackTest.cpp - the FastTrack algorithm, rule by rule --------===//

#include "core/FastTrack.h"
#include "clock/ClockStats.h"
#include "framework/Replay.h"
#include "hb/HappensBefore.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

/// Replays \p T through a fresh FastTrack instance and returns it.
struct FtRun {
  FastTrack Tool;
  ReplayResult Result;

  explicit FtRun(const Trace &T, FastTrackOptions Options = FastTrackOptions())
      : Tool(Options) {
    Result = replay(T, Tool);
  }

  size_t warningCount() const { return Tool.warnings().size(); }
  const FastTrackRuleStats &rules() const { return Tool.ruleStats(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// The worked examples from the paper.
//===----------------------------------------------------------------------===//

TEST(FastTrack, Section22LockHandoffIsRaceFree) {
  // wr(0,x) rel(0,m) acq(1,m) wr(1,x): the Section 2.2/3 example. The
  // second write sees Wx = 4@0 ≼ C1 and no race is reported.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(0, 0)
                .wr(0, 0)
                .rel(0, 0)
                .acq(1, 0)
                .wr(1, 0)
                .rel(1, 0)
                .take();
  FtRun R(T);
  EXPECT_EQ(R.warningCount(), 0u);
  EXPECT_EQ(R.rules().WriteExclusive, 2u);
}

TEST(FastTrack, Figure4AdaptiveRepresentation) {
  // The Figure 4 trace: Rx inflates to a VC at the concurrent second read,
  // deflates back to an epoch at the ordered write, and ends as a
  // non-minimal epoch after the final read.
  Trace T = TraceBuilder()
                .wr(0, 0)    // Wx := epoch of thread 0
                .fork(0, 1)
                .rd(1, 0)    // Rx := epoch 1@1 (exclusive)
                .rd(0, 0)    // concurrent with rd(1,x): Rx inflates to VC
                .join(0, 1)
                .wr(0, 0)    // happens after both reads: Rx deflates to ⊥e
                .rd(0, 0)    // Rx := non-minimal epoch
                .take();
  FtRun R(T);
  EXPECT_EQ(R.warningCount(), 0u);
  EXPECT_EQ(R.rules().ReadExclusive, 2u); // rd(1,x) and the final rd(0,x)
  EXPECT_EQ(R.rules().ReadShare, 1u);     // rd(0,x) inflates
  EXPECT_EQ(R.rules().WriteShared, 1u);   // wr(0,x) after join deflates
  EXPECT_EQ(R.Tool.inflatedReadStates(), 0u); // deflated by the write
}

//===----------------------------------------------------------------------===//
// Read rules.
//===----------------------------------------------------------------------===//

TEST(FastTrack, ReadSameEpochFastPath) {
  Trace T = TraceBuilder().rd(0, 0).rd(0, 0).rd(0, 0).take();
  FtRun R(T);
  EXPECT_EQ(R.rules().ReadExclusive, 1u);
  EXPECT_EQ(R.rules().ReadSameEpoch, 2u);
  EXPECT_EQ(R.warningCount(), 0u);
}

TEST(FastTrack, ReadExclusiveAcrossEpochs) {
  // A release increments the thread's clock, ending the epoch; the next
  // read is first-in-epoch again but still exclusive.
  Trace T =
      TraceBuilder().rd(0, 0).acq(0, 0).rel(0, 0).rd(0, 0).take();
  FtRun R(T);
  EXPECT_EQ(R.rules().ReadExclusive, 2u);
  EXPECT_EQ(R.rules().ReadSameEpoch, 0u);
}

TEST(FastTrack, ReadShareInflatesOnConcurrentReads) {
  Trace T = TraceBuilder().fork(0, 1).rd(0, 0).rd(1, 0).take();
  FtRun R(T);
  EXPECT_EQ(R.rules().ReadShare, 1u);
  EXPECT_EQ(R.Tool.inflatedReadStates(), 1u);
  EXPECT_EQ(R.warningCount(), 0u);
}

TEST(FastTrack, ReadSharedUpdatesInPlace) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .rd(0, 0)
                .rd(1, 0) // inflate
                .rd(2, 0) // [FT READ SHARED]
                .take();
  FtRun R(T);
  EXPECT_EQ(R.rules().ReadShare, 1u);
  EXPECT_EQ(R.rules().ReadShared, 1u);
}

TEST(FastTrack, OrderedReadsByDifferentThreadsStayExclusive) {
  // Reads ordered through a lock: the epoch representation suffices.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(0, 0)
                .rd(0, 0)
                .rel(0, 0)
                .acq(1, 0)
                .rd(1, 0)
                .rel(1, 0)
                .take();
  FtRun R(T);
  EXPECT_EQ(R.rules().ReadExclusive, 2u);
  EXPECT_EQ(R.rules().ReadShare, 0u);
}

//===----------------------------------------------------------------------===//
// Write rules and race detection.
//===----------------------------------------------------------------------===//

TEST(FastTrack, WriteSameEpochFastPath) {
  Trace T = TraceBuilder().wr(0, 0).wr(0, 0).take();
  FtRun R(T);
  EXPECT_EQ(R.rules().WriteExclusive, 1u);
  EXPECT_EQ(R.rules().WriteSameEpoch, 1u);
}

TEST(FastTrack, DetectsWriteWriteRace) {
  Trace T = TraceBuilder().fork(0, 1).wr(0, 0).wr(1, 0).take();
  FtRun R(T);
  ASSERT_EQ(R.warningCount(), 1u);
  const RaceWarning &W = R.Tool.warnings()[0];
  EXPECT_EQ(W.Var, 0u);
  EXPECT_EQ(W.CurrentThread, 1u);
  EXPECT_EQ(W.PriorThread, 0u);
  EXPECT_EQ(W.Detail, "write-write race");
}

TEST(FastTrack, DetectsWriteReadRace) {
  Trace T = TraceBuilder().fork(0, 1).wr(0, 0).rd(1, 0).take();
  FtRun R(T);
  ASSERT_EQ(R.warningCount(), 1u);
  EXPECT_EQ(R.Tool.warnings()[0].Detail, "write-read race");
  EXPECT_EQ(R.Tool.warnings()[0].PriorThread, 0u);
}

TEST(FastTrack, DetectsReadWriteRaceExclusive) {
  Trace T = TraceBuilder().fork(0, 1).rd(0, 0).wr(1, 0).take();
  FtRun R(T);
  ASSERT_EQ(R.warningCount(), 1u);
  EXPECT_EQ(R.Tool.warnings()[0].Detail, "read-write race");
}

TEST(FastTrack, DetectsReadWriteRaceShared) {
  // Two concurrent readers inflate Rx; a concurrent write must compare
  // against the whole read vector ([FT WRITE SHARED] slow path).
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .rd(0, 0)
                .rd(1, 0)
                .wr(2, 0)
                .take();
  FtRun R(T);
  ASSERT_EQ(R.warningCount(), 1u);
  EXPECT_EQ(R.Tool.warnings()[0].Detail, "read-write race");
  EXPECT_EQ(R.rules().WriteShared, 1u);
}

TEST(FastTrack, BarrierSeparatedPhasesAreRaceFree) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .barrier({0, 1})
                .wr(0, 0)
                .barrier({0, 1})
                .rd(1, 0)
                .take();
  FtRun R(T);
  EXPECT_EQ(R.warningCount(), 0u);
}

TEST(FastTrack, VolatileHandoffIsRaceFree) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(0, 0)
                .volWr(0, 0)
                .volRd(1, 0)
                .rd(1, 0)
                .take();
  FtRun R(T);
  EXPECT_EQ(R.warningCount(), 0u);
}

TEST(FastTrack, VolatileAccessesThemselvesNeverRace) {
  Trace T = TraceBuilder().fork(0, 1).volWr(0, 0).volWr(1, 0).take();
  FtRun R(T);
  EXPECT_EQ(R.warningCount(), 0u);
}

TEST(FastTrack, OneWarningPerVariable) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(0, 0)
                .wr(1, 0)
                .wr(0, 0)
                .wr(1, 0)
                .take();
  FtRun R(T);
  EXPECT_EQ(R.warningCount(), 1u);
}

TEST(FastTrack, RvcRecyclingDoesNotCauseFalseAlarms) {
  // Variable goes read-shared, deflates at a write, then goes read-shared
  // again. Stale Rvc entries from the first phase must not survive.
  Trace T = TraceBuilder()
                .fork(0, 1) // worker for phase 1
                .rd(0, 0)
                .rd(1, 0)   // inflate: Rvc[1] set
                .join(0, 1)
                .wr(0, 0)   // deflate
                .fork(0, 2)
                .rd(0, 0)
                .rd(2, 0)   // re-inflate: Rvc must be clean
                .join(0, 2)
                .wr(0, 0)   // compares Rvc ⊑ C0; stale Rvc[1] would alarm
                .take();
  FtRun R(T);
  EXPECT_EQ(R.warningCount(), 0u);
  EXPECT_EQ(R.rules().ReadShare, 2u);
  EXPECT_EQ(R.rules().WriteShared, 2u);
}

TEST(FastTrack, WriteAfterSharedDeflatesToEpochMode) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .rd(0, 0)
                .rd(1, 0)
                .join(0, 1)
                .wr(0, 0)
                .rd(0, 0) // exclusive again: epoch mode
                .rd(0, 0) // same epoch
                .take();
  FtRun R(T);
  EXPECT_EQ(R.Tool.inflatedReadStates(), 0u);
  EXPECT_EQ(R.rules().ReadSameEpoch, 1u);
}

//===----------------------------------------------------------------------===//
// Precision guarantee: detect at least the first race on each variable.
//===----------------------------------------------------------------------===//

TEST(FastTrack, ReportsRaceOnEveryRacyVariable) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(0, 0)
                .wr(1, 0) // race on x0
                .rd(0, 1)
                .wr(1, 1) // race on x1
                .lockedWr(0, 0, 2)
                .lockedWr(1, 0, 2) // no race on x2
                .take();
  FtRun R(T);
  EXPECT_EQ(R.warningCount(), 2u);
}

//===----------------------------------------------------------------------===//
// Options / ablations.
//===----------------------------------------------------------------------===//

TEST(FastTrack, AblationNoSameEpochStillPrecise) {
  FastTrackOptions Options;
  Options.SameEpochFastPath = false;
  Trace T = TraceBuilder().fork(0, 1).rd(0, 0).rd(0, 0).wr(1, 0).take();
  FtRun R(T, Options);
  EXPECT_EQ(R.rules().ReadSameEpoch, 0u);
  EXPECT_EQ(R.warningCount(), 1u); // read-write race still found
}

TEST(FastTrack, AblationNoEpochReadsUsesVectorClocks) {
  FastTrackOptions Options;
  Options.EpochReads = false;
  Trace T = TraceBuilder().rd(0, 0).acq(0, 0).rel(0, 0).rd(0, 0).take();
  FtRun R(T, Options);
  EXPECT_EQ(R.rules().ReadExclusive, 0u);
  EXPECT_EQ(R.rules().ReadShare, 1u);   // inflated immediately
  EXPECT_EQ(R.rules().ReadShared, 1u);
  EXPECT_EQ(R.Tool.inflatedReadStates(), 1u);
}

TEST(FastTrack, ExtendedSharedSameEpochCountsAsFastPath) {
  FastTrackOptions Options;
  Options.ExtendedSharedSameEpoch = true;
  Trace T = TraceBuilder()
                .fork(0, 1)
                .rd(0, 0)
                .rd(1, 0) // inflate
                .rd(1, 0) // same epoch on shared data
                .take();
  FtRun R(T, Options);
  EXPECT_EQ(R.rules().ReadSameEpoch, 1u);
  EXPECT_EQ(R.rules().ReadShared, 0u);

  // Without the extension the read takes the Shared rule.
  FtRun R2(T);
  EXPECT_EQ(R2.rules().ReadShared, 1u);
}

//===----------------------------------------------------------------------===//
// Filtering behaviour (prefilter pass flags) and accounting.
//===----------------------------------------------------------------------===//

TEST(FastTrack, SameEpochAccessesAreFilteredOut) {
  Trace T = TraceBuilder().rd(0, 0).rd(0, 0).wr(0, 1).wr(0, 1).take();
  FtRun R(T);
  // 2 of the 4 accesses were same-epoch hits -> not passed downstream.
  EXPECT_EQ(R.Result.AccessesPassed, 2u);
}

TEST(FastTrack, EpochStateUsesNoVectorClockOps) {
  // A purely thread-local + lock-protected workload should allocate no
  // per-variable VCs and perform only the O(n) ops of sync handling.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .rd(0, 0)
                .wr(0, 0)
                .lockedWr(0, 0, 1)
                .lockedWr(1, 0, 1)
                .join(0, 1)
                .take();
  resetClockStats();
  FastTrack Tool;
  replay(T, Tool);
  // No reads ever inflate, so the only VC traffic is from sync operations.
  EXPECT_EQ(Tool.inflatedReadStates(), 0u);
  EXPECT_EQ(Tool.ruleStats().ReadShare, 0u);
  EXPECT_EQ(Tool.ruleStats().WriteShared, 0u);
}

TEST(FastTrack, ShadowBytesGrowWithVariables) {
  TraceBuilder B;
  for (VarId X = 0; X != 100; ++X)
    B.wr(0, X);
  Trace T = B.take();
  FastTrack Tool;
  replay(T, Tool);
  EXPECT_GT(Tool.shadowBytes(), 100 * sizeof(uint64_t));
}

TEST(FastTrack, RuleStatsTotalsMatchAccessCounts) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .rd(0, 0)
                .rd(0, 0)
                .wr(0, 1)
                .rd(1, 2)
                .wr(1, 1)
                .take();
  FtRun R(T);
  EXPECT_EQ(R.rules().reads(), 3u);
  EXPECT_EQ(R.rules().writes(), 2u);
}

//===----------------------------------------------------------------------===//
// Recycled thread slots (online engine reuses joined threads' dense ids).
// Each case is cross-checked against the exact happens-before oracle to
// prove the stale-epoch comparisons — including dead-slot entries inside
// read-shared VCs — match the reference relation.
//===----------------------------------------------------------------------===//

TEST(FastTrack, RecycledSlotStaleWriteEpochIsOrdered) {
  // Tid 1 lives twice: write, join, then the reincarnation writes the
  // same variable. The first lifetime's epoch c@1 is stale when the
  // second write tests it; the reincarnating fork's join edge makes it
  // ordered, so no race.
  Trace T = TraceBuilder()
                .fork(0, 1) // 0
                .wr(1, 0)   // 1: first lifetime's write
                .join(0, 1) // 2
                .fork(0, 1) // 3: reincarnation of tid 1
                .wr(1, 0)   // 4: second lifetime's write
                .take();
  ClockStats Before = clockStats();
  FtRun R(T);
  ClockStats Delta = clockStats() - Before;
  EXPECT_EQ(R.warningCount(), 0u);
  EXPECT_EQ(Delta.Reincarnations, 1u);
  HappensBefore Oracle(T);
  EXPECT_TRUE(Oracle.happensBefore(1, 4));
}

TEST(FastTrack, RecycledSlotDoesNotMaskRacesWithLiveThreads) {
  // Recycling must not grant the reincarnation any ordering it does not
  // have: thread 2 was forked before tid 1's second lifetime and never
  // synchronized with it, so new-1's write races with 2's read.
  Trace T = TraceBuilder()
                .fork(0, 1) // 0
                .wr(1, 0)   // 1: first lifetime's write
                .join(0, 1) // 2
                .fork(0, 2) // 3
                .fork(0, 1) // 4: reincarnation of tid 1
                .wr(1, 0)   // 5: second lifetime's write
                .rd(2, 0)   // 6: concurrent with op 5
                .take();
  FtRun R(T);
  ASSERT_EQ(R.warningCount(), 1u);
  EXPECT_EQ(R.Tool.warnings()[0].OpIndex, 6u);
  EXPECT_EQ(R.Tool.warnings()[0].CurrentThread, 2u);
  EXPECT_EQ(R.Tool.warnings()[0].PriorThread, 1u);
  HappensBefore Oracle(T);
  EXPECT_TRUE(Oracle.concurrent(5, 6));  // the reported race is real
  EXPECT_TRUE(Oracle.happensBefore(1, 6)); // the stale write is not racy
}

TEST(FastTrack, RecycledSlotEntryInsideReadSharedVC) {
  // The read-shared VC holds an entry for dead tid 1 when new-1 writes.
  // The dead entry is ordered (via join + reincarnating fork); the live
  // concurrent reader 2 is not, and must be the one reported.
  Trace T = TraceBuilder()
                .wr(0, 0)   // 0
                .fork(0, 1) // 1
                .fork(0, 2) // 2
                .rd(1, 0)   // 3: first lifetime's read (inflates with 4)
                .rd(2, 0)   // 4: concurrent read → READ_SHARED
                .join(0, 1) // 5
                .fork(0, 1) // 6: reincarnation of tid 1
                .wr(1, 0)   // 7: tests the shared VC
                .take();
  FtRun R(T);
  ASSERT_EQ(R.warningCount(), 1u);
  EXPECT_EQ(R.Tool.warnings()[0].OpIndex, 7u);
  EXPECT_EQ(R.Tool.warnings()[0].PriorThread, 2u); // the live reader, not dead 1
  EXPECT_EQ(R.rules().WriteShared, 1u);
  HappensBefore Oracle(T);
  EXPECT_TRUE(Oracle.concurrent(4, 7));   // reader 2 really is concurrent
  EXPECT_TRUE(Oracle.happensBefore(3, 7)); // dead lifetime's read is ordered
}

TEST(FastTrack, RecycledSlotManyIncarnations) {
  // Ten sequential lifetimes under one tid, all writing the same
  // variable: every epoch left behind is stale for the next lifetime and
  // every comparison must come out ordered.
  TraceBuilder B;
  for (int I = 0; I != 10; ++I)
    B.fork(0, 1).wr(1, 0).join(0, 1);
  Trace T = B.take();
  ClockStats Before = clockStats();
  FtRun R(T);
  ClockStats Delta = clockStats() - Before;
  EXPECT_EQ(R.warningCount(), 0u);
  EXPECT_EQ(Delta.Reincarnations, 9u);
  HappensBefore Oracle(T);
  // Each lifetime's write happens before the next lifetime's.
  for (size_t I = 1; I + 3 < T.size(); I += 3)
    EXPECT_TRUE(Oracle.happensBefore(I, I + 3));
}
