#include "detectors/EmptyTool.h"

#include "framework/FastDispatch.h"
#include "framework/Replay.h"

// EmptyTool is header-only; this file anchors it in the library.

FT_REGISTER_FAST_REPLAY(::ft::EmptyTool);
FT_REGISTER_FAST_DISPATCH(::ft::EmptyTool);
