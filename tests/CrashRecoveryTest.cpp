//===--- CrashRecoveryTest.cpp - the flight recorder survives SIGKILL -----===//
//
// Tentpole piece 3 end to end: an online session recording segmented
// capture round-trips through recovery, and — the real contract — a
// child process SIGKILLed mid-run loses at most the one unsealed
// segment, with an offline replay of the recovered capture reproducing
// the online warnings the child managed to report before it died.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "framework/Replay.h"
#include "runtime/Instrument.h"
#include "trace/SegmentedCapture.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace ft;
namespace rt = ft::runtime;

namespace {

/// Removes a contiguous segment chain (and tolerates a long one left over
/// from a killed child).
void removeChain(const std::string &Prefix) {
  for (unsigned I = 0; I != 100000; ++I)
    if (std::remove(SegmentedTraceWriter::segmentPath(Prefix, I).c_str()) != 0)
      break;
}

bool fileExists(const std::string &Path) {
  return std::ifstream(Path).good();
}

} // namespace

TEST(CrashRecovery, SegmentedEngineSessionRoundTrips) {
  const std::string Prefix = "crashrt_roundtrip";
  removeChain(Prefix);

  FastTrack Detector;
  rt::OnlineOptions Options;
  Options.CapturePath = Prefix + ".trc";
  Options.CaptureSegmentBytes = 256; // force several seals
  Options.KeepCapture = true;        // keep the in-memory twin to compare
  // Exact-content comparison: no shedding allowed.
  Options.Degrade.Enabled = false;
  Options.Supervise.Enabled = false;

  rt::Shared<int> A, B;
  rt::Mutex M;
  rt::Engine Engine(Detector, Options);
  {
    rt::Thread T([&] {
      for (int I = 0; I != 40; ++I) {
        FT_WRITE(A, I); // races with the main thread's writes
        std::lock_guard<rt::Mutex> G(M);
        FT_WRITE(B, I);
      }
    });
    for (int I = 0; I != 40; ++I) {
      FT_WRITE(A, -I);
      std::lock_guard<rt::Mutex> G(M);
      FT_WRITE(B, -I);
    }
    T.join();
  }
  rt::OnlineReport Report = Engine.finish();
  ASSERT_FALSE(Report.Halted);
  EXPECT_GE(Report.CaptureSegments, 2u);

  // The on-disk chain is byte-for-byte the delivered stream.
  Trace Recovered;
  CaptureRecovery R = recoverSegmentedCapture(Prefix, Recovered);
  ASSERT_TRUE(R.ok()) << R.St.message();
  EXPECT_EQ(R.SegmentsSealed, Report.CaptureSegments);
  EXPECT_EQ(R.SegmentsTorn, 0u); // finish() seals the last segment
  EXPECT_EQ(R.Records, Report.EventsCaptured);
  EXPECT_EQ(serializeTrace(Recovered), serializeTrace(Report.Captured));

  // And replaying it reproduces the online warnings.
  FastTrack Offline;
  replay(Recovered, Offline);
  ASSERT_EQ(Offline.warnings().size(), Detector.warnings().size());
  for (size_t I = 0; I != Offline.warnings().size(); ++I) {
    EXPECT_EQ(Offline.warnings()[I].Var, Detector.warnings()[I].Var);
    EXPECT_EQ(Offline.warnings()[I].OpIndex, Detector.warnings()[I].OpIndex);
  }
  removeChain(Prefix);
}

#if !defined(_WIN32)

namespace {

/// The child body: an online session with segmented capture and a
/// warning log flushed per warning, running a racy workload forever
/// (until the parent SIGKILLs us). Never returns.
[[noreturn]] void crashChildBody(const std::string &Prefix) {
  std::FILE *WarningLog = std::fopen((Prefix + ".warnings").c_str(), "w");
  if (!WarningLog)
    _exit(3);

  static FastTrack Detector;
  rt::OnlineOptions Options;
  Options.CapturePath = Prefix + ".trc";
  Options.CaptureSegmentBytes = 4096;
  Options.KeepCapture = false;
  Options.ValidateCapture = false;
  Options.Degrade.Enabled = false; // keep raw-op indices 1:1 with capture
  Options.OnWarning = [WarningLog](const RaceWarning &W) {
    // One complete line per warning, pushed to the kernel immediately so
    // SIGKILL cannot lose it (a torn last line is discarded by the
    // parent's parser).
    std::fprintf(WarningLog, "%u %zu\n", W.Var, W.OpIndex);
    std::fflush(WarningLog);
  };

  static rt::Engine Engine(Detector, Options);
  constexpr unsigned NumVars = 4096;
  static std::vector<rt::Shared<int>> Vars(NumVars);
  auto Body = [] {
    for (uint64_t I = 0;; ++I) {
      FT_WRITE(Vars[I % NumVars], static_cast<int>(I));
      if (I % 16 == 15) // throttle so the parent can kill us mid-chain
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  };
  // Two unsynchronized threads over the same variables: a steady stream
  // of fresh races, one warning per variable.
  rt::Thread T1(Body);
  rt::Thread T2(Body);
  for (;;)
    std::this_thread::sleep_for(std::chrono::seconds(1));
}

} // namespace

TEST(CrashRecovery, SigkillLosesAtMostOneSegment) {
  const std::string Prefix = "crashrt_kill";
  removeChain(Prefix);
  std::remove((Prefix + ".warnings").c_str());

  pid_t Child = fork();
  ASSERT_GE(Child, 0) << "fork failed";
  if (Child == 0)
    crashChildBody(Prefix); // never returns

  // Wait until the child has sealed at least two segments and reported
  // at least one warning, then kill it without warning mid-stream.
  bool Ready = false;
  for (int I = 0; I != 2000; ++I) {
    if (fileExists(SegmentedTraceWriter::segmentPath(Prefix, 2)) &&
        fileExists(Prefix + ".warnings")) {
      Ready = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  kill(Child, SIGKILL);
  int WaitStatus = 0;
  waitpid(Child, &WaitStatus, 0);
  ASSERT_TRUE(Ready) << "child produced no sealed segments in time";
  ASSERT_TRUE(WIFSIGNALED(WaitStatus));

  // At most the unsealed tail is gone; everything sealed recovers.
  Trace Recovered;
  CaptureRecovery R = recoverSegmentedCapture(Prefix, Recovered);
  ASSERT_TRUE(R.ok()) << R.St.message();
  EXPECT_GE(R.SegmentsSealed, 2u);
  EXPECT_LE(R.SegmentsTorn, 1u);
  ASSERT_GT(R.Records, 0u);

  // The recovered capture is a prefix of the delivered stream, so an
  // offline replay must reproduce the online warnings up to that point:
  // every warning the child managed to log at a raw-op index inside the
  // recovered prefix appears identically in the replay.
  FastTrack Offline;
  replay(Recovered, Offline);

  std::ifstream Log(Prefix + ".warnings", std::ios::binary);
  ASSERT_TRUE(Log.good());
  std::string LogBytes((std::istreambuf_iterator<char>(Log)),
                       std::istreambuf_iterator<char>());
  // Only newline-terminated lines are trusted; SIGKILL may have torn the
  // last one mid-write.
  LogBytes.resize(LogBytes.rfind('\n') == std::string::npos
                      ? 0
                      : LogBytes.rfind('\n') + 1);
  size_t Checked = 0;
  size_t LineStart = 0;
  while (LineStart < LogBytes.size()) {
    size_t LineEnd = LogBytes.find('\n', LineStart);
    std::string Line = LogBytes.substr(LineStart, LineEnd - LineStart);
    LineStart = LineEnd + 1;
    unsigned Var = 0;
    size_t OpIndex = 0;
    ASSERT_EQ(std::sscanf(Line.c_str(), "%u %zu", &Var, &OpIndex), 2);
    if (OpIndex >= R.Records)
      continue; // warning fired past the recovered prefix
    bool Found = false;
    for (const RaceWarning &W : Offline.warnings())
      Found |= W.Var == Var && W.OpIndex == OpIndex;
    EXPECT_TRUE(Found) << "online warning (var " << Var << ", op " << OpIndex
                       << ") missing from the replay of the recovery";
    ++Checked;
  }
  EXPECT_GT(Checked, 0u) << "no online warning landed inside the recovered "
                            "prefix; the test checked nothing";

  removeChain(Prefix);
  std::remove((Prefix + ".warnings").c_str());
}

#endif // !_WIN32
