//===----------------------------------------------------------------------===//
//
// Experiment E12 (extension) — per-event cost of the online runtime shim.
//
// The offline benchmarks (E2) measure detector cost per *recorded* event;
// this harness measures what the in-process runtime adds on top for real
// std::thread programs: interning, ticket draw, ring hand-off, and the
// sequencer round trip (docs/ARCHITECTURE.md, "Online runtime"). Four
// configurations over the same lock-plus-shared-counter workload:
//
//   native       plain std::mutex / int — no instrumentation at all
//   no engine    ft::runtime wrappers with no active session (the
//                pass-through cost a library pays for being *checkable*)
//   EMPTY        online session driving the EMPTY tool — pure runtime
//                overhead: rings + sequencer, no analysis
//   FASTTRACK    online session driving FastTrack — the full product
//
// In the paper's Table 1 terms, EMPTY/native is the instrumentation base
// overhead and FASTTRACK/EMPTY the analysis slowdown; online both shims
// ride the application's own threads instead of a trace file.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FastTrack.h"
#include "detectors/EmptyTool.h"
#include "runtime/Instrument.h"
#include "support/Stopwatch.h"
#include "support/Table.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

using namespace ft;
using namespace ft::bench;
namespace rt = ft::runtime;

namespace {

struct RunResult {
  double Seconds = 0;
  uint64_t Events = 0; // instrumentation events generated (0 for native)
};

/// The workload: \p NumThreads threads, each performing \p Iters rounds of
/// lock → read-modify-write → unlock on a striped counter array. Mutex /
/// Shared are template parameters so the identical loop runs with native
/// and instrumented primitives.
constexpr unsigned Stripes = 4;

template <typename MutexT, typename CellT, typename ThreadT>
double runWorkload(unsigned NumThreads, int Iters) {
  MutexT Locks[Stripes];
  CellT Cells[Stripes] = {};
  Stopwatch Watch;
  {
    std::vector<ThreadT> Threads;
    Threads.reserve(NumThreads);
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        for (int I = 0; I != Iters; ++I) {
          unsigned S = (T + static_cast<unsigned>(I)) % Stripes;
          Locks[S].lock();
          Cells[S].write(Cells[S].read() + 1);
          Locks[S].unlock();
        }
      });
    for (ThreadT &T : Threads)
      T.join();
  }
  return Watch.seconds();
}

/// Adapter giving a plain int the Shared<int> read/write spelling.
struct PlainCell {
  int V = 0;
  int read() const { return V; }
  void write(int X) { V = X; }
};

double best(double A, double B) { return A == 0 || B < A ? B : A; }

RunResult timeNative(unsigned NumThreads, int Iters) {
  RunResult R;
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep)
    R.Seconds = best(
        R.Seconds,
        runWorkload<std::mutex, PlainCell, std::thread>(NumThreads, Iters));
  return R;
}

RunResult timePassThrough(unsigned NumThreads, int Iters) {
  RunResult R;
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep)
    R.Seconds = best(R.Seconds,
                     runWorkload<rt::Mutex, rt::Shared<int>, rt::Thread>(
                         NumThreads, Iters));
  return R;
}

RunResult timeOnline(Tool &Detector, unsigned NumThreads, int Iters,
                     const rt::OnlineOptions &Base = rt::OnlineOptions()) {
  RunResult R;
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep) {
    Detector.clearWarnings();
    rt::OnlineOptions Options = Base;
    Options.KeepCapture = false; // measure the shim, not trace retention
    Options.ValidateCapture = false;
    // Fixed-fidelity measurement: the rung is whatever the caller pinned
    // (Full by default), and the supervisor must not shed accesses or
    // degrade further mid-run — that would quietly shrink the workload.
    Options.Supervise.Enabled = false;
    rt::Engine Engine(Detector, Options);
    double Seconds =
        runWorkload<rt::Mutex, rt::Shared<int>, rt::Thread>(NumThreads, Iters);
    rt::OnlineReport Report = Engine.finish();
    if (Report.Halted)
      std::fprintf(stderr, "warning: online session halted mid-bench\n");
    R.Events = Report.EventsDispatched; // capture is off; count delivered ops
    R.Seconds = best(R.Seconds, Seconds);
  }
  return R;
}

std::string nsPerEvent(const RunResult &R) {
  if (R.Events == 0)
    return "-";
  return fixed(1e9 * R.Seconds / static_cast<double>(R.Events), 0);
}

/// Options pinning the session at full fidelity: no ladder at all.
rt::OnlineOptions fullFidelity() {
  rt::OnlineOptions Options;
  Options.Degrade.Enabled = false;
  return Options;
}

// --- shard scaling (E12 extension) -------------------------------------
//
// Aggregate detection throughput at Shards ∈ {1, 2, 4}. The workload is
// deliberately shadow-bound rather than lock-bound: every thread reads a
// pseudo-random tour of the whole var space (read-shared — no warnings,
// so FastTrack stays on its read-epoch fast path and the bench measures
// pipeline + shadow cost, not report formatting). Uniform touches over
// the space mean the single sequencer walks the entire VarState array
// between revisits, while a shard worker revisits only the 1/N slice the
// block-cyclic map assigns it — the locality that pays even when the
// machine has fewer cores than shards. A shared mutex taken every
// SyncEvery events keeps the cross-shard sync spine exercised without
// ordering the tours; it is sparse because this series measures access
// throughput, not barrier pacing (the sync-heavy regime is covered by
// the equivalence tests).

constexpr uint64_t SyncEvery = 65536;

/// Var-space size for the scaling series (env FT_SHARD_VARS overrides;
/// must be a power of two). The default (2^18 vars = 4 MiB of VarState)
/// is sized so the regimes actually differ on a small host: the single
/// sequencer's shadow exceeds L2 outright, a 2-shard slice just matches
/// it, and a 4-shard slice (1 MiB) fits alongside its ring.
unsigned shardSpaceVars() {
  if (const char *V = std::getenv("FT_SHARD_VARS"))
    return static_cast<unsigned>(std::atoi(V));
  return 1u << 18;
}

/// One timed sharded session. Reps live in the caller, which interleaves
/// them round-robin across shard counts: on a shared machine the noise
/// floor drifts on a seconds scale, so consecutive same-config reps
/// sample correlated noise while the quantity under test — the *ratio*
/// between shard counts — wants all configs sampled in the same window.
RunResult runShardedOnce(unsigned Shards, unsigned NumThreads,
                         uint64_t EventsPerThread) {
  const unsigned SpaceVars = shardSpaceVars();
  FastTrack Detector;
  RunResult R;
  {
    rt::OnlineOptions Options;
    Options.Shards = Shards;
    Options.MaxVars = SpaceVars;
    Options.RingCapacity = 1u << 16;
    // Shard rings sized to stay cache-resident: the workers dispatch in
    // place out of these rings, so ring bytes are repeatedly live — at
    // 1<<13 slots a ring is 128 KiB and four of them still fit in L2
    // beside the shadow slices. Oversizing them (1<<16 = 1 MiB each) costs
    // more in eviction than the extra slack ever buys.
    Options.ShardRingCapacity = 1u << 13;
    Options.SequencerBatch = 4096;
    Options.KeepCapture = false;
    Options.ValidateCapture = false;
    Options.Degrade.Enabled = false;
    Options.Supervise.Enabled = false;

    // Construction is outside the timed region (matching timeOnline): it
    // is dominated by allocating and zeroing the clones' shadow spaces —
    // an O(Shards x Vars) one-time cost that would otherwise be billed
    // against a steady-state throughput number. The post-workload drain
    // stays inside: detection is only done when finish() returns.
    rt::Engine Engine(Detector, Options);
    Stopwatch Watch;
    rt::Mutex Spine;
    {
      std::vector<rt::Thread> Threads;
      Threads.reserve(NumThreads);
      for (unsigned T = 0; T != NumThreads; ++T)
        Threads.emplace_back([&, T] {
          rt::Engine *E = rt::Engine::current();
          uint64_t X = 0x9e3779b97f4a7c15ull * (T + 1);
          for (uint64_t I = 0; I != EventsPerThread; ++I) {
            X = X * 6364136223846793005ull + 1442695040888963407ull;
            E->emit(OpKind::Read,
                    static_cast<uint32_t>((X >> 33) & (SpaceVars - 1)));
            if ((I + 1) % SyncEvery == 0) {
              Spine.lock();
              Spine.unlock();
            }
          }
        });
      for (rt::Thread &T : Threads)
        T.join();
    }
    rt::OnlineReport Report = Engine.finish();
    // Throughput includes the post-workload drain: the detector is only
    // done when the last routed event has been dispatched.
    double Seconds = Watch.seconds();
    if (Report.Halted)
      std::fprintf(stderr, "warning: sharded session halted mid-bench\n");
    R.Events = Report.EventsDispatched;
    R.Seconds = Seconds;
  }
  return R;
}

/// Options pinning the session at one degraded rung (StartRung skips the
/// overload trigger; the one-rung ladder is exhausted, so the session
/// runs the whole workload there).
rt::OnlineOptions pinnedRung(DegradeStep Step) {
  rt::OnlineOptions Options;
  Options.Degrade.Ladder = {Step};
  Options.Degrade.StartRung = 1;
  return Options;
}

// --- thread churn (E13) -------------------------------------------------
//
// Per-event throughput when the *threads* turn over instead of the data:
// a fixed task count run by ChurnLanes concurrent lanes, where each lane
// retires its worker thread and forks a fresh one every TasksPerThread
// tasks (0 = one long-lived worker per lane — the no-churn baseline).
// Every fork after the first reincarnates the joined predecessor's slot,
// so the series prices the recycling path (join → drain → reincarnate)
// and pins the lifecycle invariant the churn tests assert: peak slots
// track max-live threads (2 per lane + main), not total threads forked.

constexpr unsigned ChurnLanes = 4;
constexpr unsigned EventsPerTask = 16;

struct ChurnResult {
  RunResult Run;
  unsigned SlotsAllocated = 0;
  unsigned PeakLiveSlots = 0;
  uint64_t ThreadsRecycled = 0;
  uint64_t ThreadsForked = 0;
};

ChurnResult runChurnOnce(unsigned TasksPerThread, unsigned TasksPerLane) {
  FastTrack Detector;
  ChurnResult R;
  rt::OnlineOptions Options;
  Options.MaxThreads = 2 * ChurnLanes + 1; // lane + its live worker, + main
  Options.KeepCapture = false;
  Options.ValidateCapture = false;
  Options.Degrade.Enabled = false;
  Options.Supervise.Enabled = false;

  std::atomic<uint64_t> Forked{0};
  rt::Engine Engine(Detector, Options);
  Stopwatch Watch;
  {
    std::vector<rt::Shared<int>> Vars(ChurnLanes); // lane-private: race-free
    std::vector<rt::Thread> Lanes;
    Lanes.reserve(ChurnLanes);
    for (unsigned L = 0; L != ChurnLanes; ++L)
      Lanes.emplace_back([&, L] {
        auto RunTasks = [&](unsigned From, unsigned To) {
          rt::Thread Worker([&Vars, L, From, To] {
            for (unsigned T = From; T != To; ++T)
              for (unsigned E = 0; E != EventsPerTask; ++E)
                FT_WRITE(Vars[L], static_cast<int>(T + E));
          });
          Worker.join(); // join → next fork: the lane's writes all chain
          Forked.fetch_add(1, std::memory_order_relaxed);
        };
        if (TasksPerThread == 0) {
          RunTasks(0, TasksPerLane);
          return;
        }
        for (unsigned T = 0; T < TasksPerLane; T += TasksPerThread)
          RunTasks(T, std::min(T + TasksPerThread, TasksPerLane));
      });
    for (rt::Thread &T : Lanes)
      T.join();
  }
  rt::OnlineReport Report = Engine.finish();
  R.Run.Seconds = Watch.seconds(); // includes the post-workload drain
  if (Report.Halted)
    std::fprintf(stderr, "warning: churn session halted mid-bench\n");
  R.Run.Events = Report.EventsDispatched;
  R.SlotsAllocated = Report.SlotsAllocated;
  R.PeakLiveSlots = Report.PeakLiveSlots;
  R.ThreadsRecycled = Report.ThreadsRecycled;
  R.ThreadsForked = ChurnLanes + Forked.load(std::memory_order_relaxed);
  return R;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("bench_online_overhead", argc, argv);
  banner("Online runtime overhead: per-event shim cost (extension E12)");

  const int Iters =
      static_cast<int>(50000 * sizeFactor()); // events/thread = 4 x Iters
  std::printf("workload: N threads x %d iterations of lock/incr/unlock on "
              "%u stripes\n(4 events per iteration: acq rd wr rel); "
              "best of %u reps\n\n",
              Iters, Stripes, repetitions());

  Table Out;
  Out.addHeader({"threads", "config", "seconds", "events", "ns/event",
                 "vs native", "vs EMPTY"});
  for (unsigned NumThreads : {1u, 2u, 4u}) {
    RunResult Native = timeNative(NumThreads, Iters);
    RunResult Pass = timePassThrough(NumThreads, Iters);
    EmptyTool Empty;
    RunResult EmptyRun = timeOnline(Empty, NumThreads, Iters, fullFidelity());
    FastTrack FT;
    RunResult FTRun = timeOnline(FT, NumThreads, Iters, fullFidelity());
    // The degraded-rung series: FastTrack pinned at coarse granularity
    // (divisor 64: every access still delivered, ids remapped) and at
    // 1-in-8 access sampling (7/8 of accesses shed before dispatch) —
    // what an overloaded session actually pays after stepping down.
    FastTrack FTCoarse;
    RunResult CoarseRun = timeOnline(
        FTCoarse, NumThreads, Iters,
        pinnedRung({DegradeStep::Kind::CoarseGranularity, 64}));
    FastTrack FTSample;
    RunResult SampleRun = timeOnline(
        FTSample, NumThreads, Iters,
        pinnedRung({DegradeStep::Kind::AccessSampling, 8}));

    auto Row = [&](const char *Name, const RunResult &R, double VsEmpty) {
      Out.addRow({std::to_string(NumThreads), Name, fixed(R.Seconds, 3),
                  R.Events ? withCommas(R.Events) : "-", nsPerEvent(R),
                  fixed(R.Seconds / Native.Seconds, 1) + "x",
                  VsEmpty > 0 ? fixed(VsEmpty, 1) + "x" : "-"});
    };
    Row("native", Native, 0);
    Row("no engine", Pass, 0);
    Row("EMPTY", EmptyRun, 0);
    Row("FASTTRACK", FTRun, FTRun.Seconds / EmptyRun.Seconds);
    Row("FT coarse64", CoarseRun, CoarseRun.Seconds / EmptyRun.Seconds);
    Row("FT sample8", SampleRun, SampleRun.Seconds / EmptyRun.Seconds);
    Out.addSeparator();

    // Degraded rungs shed work, so normalize them by the events the
    // application *emitted* (4 per iteration), not by the shrunken
    // delivered count — that is the per-op price the application pays.
    const double Emitted = 4.0 * double(Iters) * double(NumThreads);

    const std::string Prefix = "t" + std::to_string(NumThreads) + "_";
    Report.metric(Prefix + "native_seconds", Native.Seconds, "s");
    Report.metric(Prefix + "passthrough_seconds", Pass.Seconds, "s");
    Report.metric(Prefix + "empty_seconds", EmptyRun.Seconds, "s");
    Report.metric(Prefix + "fasttrack_seconds", FTRun.Seconds, "s");
    if (EmptyRun.Events)
      Report.metric(Prefix + "empty_ns_per_event",
                    1e9 * EmptyRun.Seconds / double(EmptyRun.Events), "ns");
    if (FTRun.Events) {
      Report.metric(Prefix + "fasttrack_ns_per_event",
                    1e9 * FTRun.Seconds / double(FTRun.Events), "ns");
      Report.metric(Prefix + "events", double(FTRun.Events));
    }
    Report.metric(Prefix + "fasttrack_coarse64_ns_per_event",
                  1e9 * CoarseRun.Seconds / Emitted, "ns");
    Report.metric(Prefix + "fasttrack_sample8_ns_per_event",
                  1e9 * SampleRun.Seconds / Emitted, "ns");
  }
  std::printf("%s", Out.render().c_str());

  // The shard-scaling series: aggregate FastTrack throughput with the
  // detection state partitioned across per-shard sequencers.
  const unsigned ScaleThreads = 4;
  const uint64_t PerThread =
      static_cast<uint64_t>(400000 * sizeFactor());
  std::printf("\nshard scaling: %u app threads x %llu shadow-bound events "
              "over %u vars\n(throughput includes the post-workload "
              "drain); best of %u interleaved reps\n\n",
              ScaleThreads, static_cast<unsigned long long>(PerThread),
              shardSpaceVars(), repetitions());
  // Reps are interleaved round-robin across shard counts (see
  // runShardedOnce) so every config samples the same noise window.
  const unsigned ShardCounts[] = {1u, 2u, 4u};
  RunResult ScaleBest[3];
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep)
    for (size_t C = 0; C != 3; ++C) {
      RunResult One =
          runShardedOnce(ShardCounts[C], ScaleThreads, PerThread);
      ScaleBest[C].Events = One.Events;
      ScaleBest[C].Seconds = best(ScaleBest[C].Seconds, One.Seconds);
    }
  Table Scale;
  Scale.addHeader({"shards", "seconds", "events", "events/sec", "vs 1"});
  double Baseline = 0;
  for (size_t C = 0; C != 3; ++C) {
    const RunResult &R = ScaleBest[C];
    double PerSec = static_cast<double>(R.Events) / R.Seconds;
    if (ShardCounts[C] == 1)
      Baseline = PerSec;
    Scale.addRow({std::to_string(ShardCounts[C]), fixed(R.Seconds, 3),
                  withCommas(R.Events), withCommas(uint64_t(PerSec)),
                  fixed(PerSec / Baseline, 2) + "x"});
    const std::string Prefix =
        "shards" + std::to_string(ShardCounts[C]) + "_";
    Report.metric(Prefix + "seconds", R.Seconds, "s");
    Report.metric(Prefix + "events_per_sec", PerSec, "events/s");
  }
  std::printf("%s", Scale.render().c_str());

  // The thread-churn series (E13): fixed work, varying thread turnover.
  // "churn N%" forks a fresh worker every 100/N tasks; every such fork
  // reincarnates a joined slot, so slot counts stay at max-live whatever
  // the turnover.
  const unsigned TasksPerLane =
      static_cast<unsigned>(250 * sizeFactor());
  struct ChurnPoint {
    const char *Label;
    unsigned Percent;        // of tasks that start on a fresh thread
    unsigned TasksPerThread; // 0 = long-lived workers (no churn)
  };
  const ChurnPoint Points[] = {
      {"churn0", 0, 0}, {"churn10", 10, 10}, {"churn50", 50, 2}};
  std::printf("\nthread churn: %u lanes x %u tasks x %u events, a fresh "
              "worker thread every\n1/rate tasks through a %u-slot table; "
              "best of %u reps\n\n",
              ChurnLanes, TasksPerLane, EventsPerTask, 2 * ChurnLanes + 1,
              repetitions());
  Table ChurnOut;
  ChurnOut.addHeader({"churn", "threads", "slots", "peak live", "recycled",
                      "seconds", "events/sec"});
  for (const ChurnPoint &P : Points) {
    ChurnResult Best;
    for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep) {
      ChurnResult One = runChurnOnce(P.TasksPerThread, TasksPerLane);
      if (Best.Run.Seconds == 0 || One.Run.Seconds < Best.Run.Seconds)
        Best = One;
    }
    double PerSec =
        static_cast<double>(Best.Run.Events) / Best.Run.Seconds;
    ChurnOut.addRow({std::to_string(P.Percent) + "%",
                     withCommas(Best.ThreadsForked),
                     std::to_string(Best.SlotsAllocated),
                     std::to_string(Best.PeakLiveSlots),
                     withCommas(Best.ThreadsRecycled),
                     fixed(Best.Run.Seconds, 3), withCommas(uint64_t(PerSec))});
    const std::string Prefix = std::string(P.Label) + "_";
    Report.metric(Prefix + "events_per_sec", PerSec, "events/s");
    Report.metric(Prefix + "peak_slots", Best.SlotsAllocated);
    Report.metric(Prefix + "threads_recycled",
                  double(Best.ThreadsRecycled));
  }
  std::printf("%s", ChurnOut.render().c_str());

  std::printf("\nreading the table: 'no engine'/native is the dormant-shim "
              "tax, EMPTY/native\nthe full runtime pipeline (rings + "
              "sequencer) with zero analysis, and\nFASTTRACK/EMPTY the "
              "detector itself — the online analogue of Table 1's\n"
              "slowdown normalization.\n");
  return Report.write() ? 0 : 1;
}
