#include "hb/RaceOracle.h"

#include <algorithm>

using namespace ft;

namespace {

/// An access record used for per-variable pair enumeration.
struct Access {
  size_t Index;
  ThreadId Thread;
  bool IsWrite;
};

} // namespace

std::vector<RacePair> ft::findRaces(const Trace &T,
                                    const RaceOracleOptions &Options) {
  HappensBefore Hb(T);

  // Bucket accesses by variable.
  std::vector<std::vector<Access>> ByVar(T.numVars());
  for (size_t I = 0, E = T.size(); I != E; ++I) {
    const Operation &Op = T[I];
    if (!isAccess(Op.Kind))
      continue;
    ByVar[Op.Target].push_back({I, Op.Thread, Op.Kind == OpKind::Write});
  }

  std::vector<RacePair> Races;
  auto atLimit = [&] {
    return Options.MaxPairs != 0 && Races.size() >= Options.MaxPairs;
  };

  for (VarId X = 0; X != ByVar.size() && !atLimit(); ++X) {
    const std::vector<Access> &Accesses = ByVar[X];
    bool Found = false;
    for (size_t J = 1; J < Accesses.size() && !Found && !atLimit(); ++J) {
      const Access &B = Accesses[J];
      for (size_t I = 0; I != J; ++I) {
        const Access &A = Accesses[I];
        if (!A.IsWrite && !B.IsWrite)
          continue; // read-read pairs never conflict
        if (Hb.happensBefore(A.Index, B.Index))
          continue;
        Races.push_back({X, A.Index, B.Index,
                         T[A.Index].Kind, T[B.Index].Kind, A.Thread,
                         B.Thread});
        if (Options.FirstPerVar) {
          Found = true;
          break;
        }
        if (atLimit())
          break;
      }
    }
  }

  // Order by the position of the later access, then the earlier one, to
  // give a deterministic, replay-ordered report.
  std::sort(Races.begin(), Races.end(),
            [](const RacePair &A, const RacePair &B) {
              if (A.SecondIndex != B.SecondIndex)
                return A.SecondIndex < B.SecondIndex;
              return A.FirstIndex < B.FirstIndex;
            });
  return Races;
}

std::vector<VarId> ft::racyVars(const Trace &T) {
  RaceOracleOptions Options;
  Options.FirstPerVar = true;
  std::vector<VarId> Vars;
  for (const RacePair &Race : findRaces(T, Options))
    Vars.push_back(Race.Var);
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars;
}

bool ft::isRaceFree(const Trace &T) {
  RaceOracleOptions Options;
  Options.MaxPairs = 1;
  return findRaces(T, Options).empty();
}
