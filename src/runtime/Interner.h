//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pointer-to-dense-id interning for live program entities.
///
/// The offline pipeline works over dense thread/variable/lock ids because
/// every analysis pre-sizes flat shadow arrays from them. A live program
/// has addresses instead. The interner assigns each distinct object
/// address the next dense id of its kind, first come first served — the
/// runtime analogue of RoadRunner's shadow-location mapping. Ids are
/// stable for the lifetime of one Engine; the instrumentation shims cache
/// them per object (see Instrument.h) so the hash lookup is paid once per
/// object, not once per access.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_RUNTIME_INTERNER_H
#define FASTTRACK_RUNTIME_INTERNER_H

#include "trace/Ids.h"

#include <mutex>
#include <unordered_map>

namespace ft::runtime {

/// The kind of entity an id names. Each kind is its own dense id space,
/// matching the trace format.
enum class EntityKind : uint8_t { Var, Lock, Volatile };

/// Thread-safe pointer→dense-id tables, one per entity kind, plus the
/// thread-id allocator. Interning the same pointer twice (including
/// concurrently) returns the same id.
class EntityInterner {
public:
  /// Returns the dense id for \p Obj in \p Kind's space, allocating the
  /// next id on first sight.
  uint32_t intern(EntityKind Kind, const void *Obj) {
    std::lock_guard<std::mutex> Guard(Mu);
    auto &Table = table(Kind);
    auto [It, Inserted] = Table.try_emplace(Obj, Table.size());
    (void)Inserted;
    return It->second;
  }

  /// Allocates the next dense thread id (the first call returns 0, the
  /// main thread). Thread ids are never tied to addresses: std::thread
  /// objects move, and ids must outlive them for the join event.
  ThreadId allocateThreadId() {
    std::lock_guard<std::mutex> Guard(Mu);
    return NextThread++;
  }

  /// Entity counts so far (max id + 1 per space).
  uint32_t numVars() const { return count(EntityKind::Var); }
  uint32_t numLocks() const { return count(EntityKind::Lock); }
  uint32_t numVolatiles() const { return count(EntityKind::Volatile); }
  uint32_t numThreads() const {
    std::lock_guard<std::mutex> Guard(Mu);
    return NextThread;
  }

private:
  std::unordered_map<const void *, uint32_t> &table(EntityKind Kind) {
    switch (Kind) {
    case EntityKind::Var:
      return Vars;
    case EntityKind::Lock:
      return Locks;
    case EntityKind::Volatile:
      return Volatiles;
    }
    return Vars; // unreachable
  }

  uint32_t count(EntityKind Kind) const {
    std::lock_guard<std::mutex> Guard(Mu);
    return const_cast<EntityInterner *>(this)->table(Kind).size();
  }

  mutable std::mutex Mu;
  std::unordered_map<const void *, uint32_t> Vars;
  std::unordered_map<const void *, uint32_t> Locks;
  std::unordered_map<const void *, uint32_t> Volatiles;
  ThreadId NextThread = 0;
};

} // namespace ft::runtime

#endif // FASTTRACK_RUNTIME_INTERNER_H
