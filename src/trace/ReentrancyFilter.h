//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks per-(thread, lock) nesting depth to strip redundant re-entrant
/// acquire/release pairs, as RoadRunner does before events reach tools
/// (Section 4, "ROADRUNNER"). Shared by the serial replay loop and the
/// shard-partition pre-pass so both engines dispatch exactly the same
/// lock events.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_REENTRANCYFILTER_H
#define FASTTRACK_TRACE_REENTRANCYFILTER_H

#include "trace/Ids.h"

#include <unordered_map>
#include <vector>

namespace ft {

class ReentrancyFilter {
public:
  ReentrancyFilter() = default;

  /// Sized variant: when the thread × lock space is small (the common
  /// case — this is an O(1) array lookup per lock event instead of a
  /// hash probe), depths live in a dense table. Falls back to the hash
  /// map for huge id spaces.
  ReentrancyFilter(unsigned NumThreads, unsigned NumLocks) {
    if (static_cast<uint64_t>(NumThreads) * NumLocks <= DenseLimit) {
      Locks = NumLocks;
      Dense.assign(static_cast<size_t>(NumThreads) * NumLocks, 0);
    }
  }

  /// Returns true when this acquire is the outermost one (dispatch it).
  bool onAcquire(ThreadId T, LockId M) {
    if (!Dense.empty())
      return ++Dense[static_cast<size_t>(T) * Locks + M] == 1;
    return ++Depth[key(T, M)] == 1;
  }

  /// Returns true when this release exits the outermost level.
  bool onRelease(ThreadId T, LockId M) {
    if (!Dense.empty()) {
      unsigned &D = Dense[static_cast<size_t>(T) * Locks + M];
      if (D == 0)
        return true; // Infeasible trace; dispatch and let tools cope.
      return --D == 0;
    }
    auto It = Depth.find(key(T, M));
    if (It == Depth.end() || It->second == 0)
      return true; // Infeasible trace; dispatch and let tools cope.
    if (--It->second == 0) {
      Depth.erase(It);
      return true;
    }
    return false;
  }

private:
  static constexpr uint64_t DenseLimit = 1u << 20;

  static uint64_t key(ThreadId T, LockId M) {
    return (static_cast<uint64_t>(T) << 32) | M;
  }
  unsigned Locks = 0;
  std::vector<unsigned> Dense;
  std::unordered_map<uint64_t, unsigned> Depth;
};

} // namespace ft

#endif // FASTTRACK_TRACE_REENTRANCYFILTER_H
