//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The degradation ladder, shared by every governor in the repository.
///
/// Three subsystems shed precision under pressure: the offline resource
/// governor (framework/ResourceGovernor.h) restarts replay at coarser
/// granularity, the online driver (framework/OnlineDriver.h) transforms
/// the live stream rung by rung, and the governed shadow table
/// (shadow/ShadowPolicy.h) summarizes cold pages in place. All three walk
/// the same divisor ladder — fine → 8 → 64 → ShadowPageVars — so this
/// header is the single source of truth for the rung constants, the rung
/// descriptions, and the memory-driven rung the shadow governor adds.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_DEGRADE_H
#define FASTTRACK_FRAMEWORK_DEGRADE_H

#include "shadow/ShadowPolicy.h"
#include "shadow/ShadowTable.h"

#include <vector>

namespace ft {

class MemoryTracker;

/// The canonical coarse-granularity divisors (fields per object), in the
/// order they are applied. The final divisor folds exactly one shadow
/// page region (ShadowPageVars fields) per object, aligning maximal
/// coarsening with the paged table's geometry: fully degraded shadow is
/// one slot per page of the fine-grained table — the same fold the
/// shadow governor's page summarization applies in place.
inline constexpr unsigned DegradeDivisorLadder[] = {8, 64, ShadowPageVars};

/// One rung of the overload-degradation ladder.
struct DegradeStep {
  enum class Kind : uint8_t {
    /// Map variable ids through a widening divisor (fields-per-object),
    /// like ResourceGovernor's 8/64/512 rungs. Divisors are absolute,
    /// not cumulative: the step's Param replaces any earlier divisor.
    CoarseGranularity,
    /// Deliver a deterministic 1 in Param accesses; drop the rest.
    AccessSampling,
    /// Drop every access; only the sync spine reaches the tool.
    SyncOnly,
    /// The memory-driven rung: the governed shadow table has summarized
    /// cold pages to page-granularity slots (warnings may coarsen to the
    /// page region; no race is missed). The stream is *not* transformed —
    /// the precision loss already happened inside the table, and it is a
    /// deterministic function of the delivered stream, so a degraded
    /// capture still replays to identical warnings. Crossing this rung
    /// records the transition and its diagnostic.
    ShadowSummarize,
  };
  Kind K = Kind::CoarseGranularity;
  unsigned Param = 8;
};

/// The offline governor's default divisor rungs as a vector (its ladder
/// is divisors only; restart-based degradation has no sampling rung).
inline std::vector<unsigned> defaultDivisorLadder() {
  return {std::begin(DegradeDivisorLadder), std::end(DegradeDivisorLadder)};
}

/// The online driver's default ladder: the shared divisor rungs, then
/// access shedding.
inline std::vector<DegradeStep> defaultOnlineLadder() {
  std::vector<DegradeStep> Ladder;
  for (unsigned Divisor : DegradeDivisorLadder)
    Ladder.push_back({DegradeStep::Kind::CoarseGranularity, Divisor});
  Ladder.push_back({DegradeStep::Kind::AccessSampling, 8});
  Ladder.push_back({DegradeStep::Kind::SyncOnly, 0});
  return Ladder;
}

/// Policy for stepping down under overload instead of halting. The
/// effective configuration at rung R is the cumulative result of applying
/// ladder steps [0, R): the latest coarse divisor, the latest sampling
/// modulus, and whether a SyncOnly step was crossed.
struct DegradePolicy {
  /// Pin the whole ladder off: every trigger that would have degraded
  /// halts instead (the pre-PR-5 behavior).
  bool Enabled = true;

  /// Rungs in the order they are applied (see defaultOnlineLadder). When
  /// Memory.Enabled, the driver prepends a ShadowSummarize rung so the
  /// first memory-pressure transition is the in-table fold, before any
  /// stream transform.
  std::vector<DegradeStep> Ladder = defaultOnlineLadder();

  /// Shadow-memory budget in bytes; 0 disables the budget trigger. The
  /// driver probes Tool::shadowBytes() every BudgetCheckEveryOps raw ops
  /// and steps down one rung per breached probe. Once the ladder is
  /// exhausted the run continues unbudgeted (with a Note diagnostic),
  /// exactly like the governor's final rung.
  uint64_t ShadowBudgetBytes = 0;
  unsigned BudgetCheckEveryOps = 4096;

  /// Optional tracker observing every budget probe (live/peak bytes).
  MemoryTracker *Tracker = nullptr;

  /// Ladder steps pre-applied at construction (0 = start Full). Lets the
  /// benches measure a pinned rung without manufacturing overload.
  unsigned StartRung = 0;

  /// Shadow-table self-governance (temperature tracking, cold-page
  /// compression, watermark shedding). Offered to the tool via
  /// Tool::configureShadowPolicy before begin(); tools without a governed
  /// table decline and the driver falls back to ladder-only budgeting.
  /// When Memory.BudgetBytes is 0 but ShadowBudgetBytes is set, the
  /// driver forwards the latter so one knob governs both layers.
  ShadowMemoryPolicy Memory;
};

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_DEGRADE_H
