//===--- FastTrack64Test.cpp - the 64-bit epoch variant (Section 4) -------===//
//
// "While 32-bit epochs has been sufficient for all programs tested,
//  switching to 64-bit epochs would enable the FASTTRACK to handle large
//  thread identifiers or clock values."
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "core/ToolRegistry.h"
#include "framework/Replay.h"
#include "hb/RaceOracle.h"
#include "trace/RandomTrace.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ft;

namespace {

/// A trace with more threads than 8-bit tids can express.
Trace manyThreadTrace(unsigned Workers) {
  TraceBuilder B;
  for (ThreadId U = 1; U <= Workers; ++U)
    B.fork(0, U);
  // Every worker touches its own variable plus one shared, lock-protected
  // counter; two high-numbered workers race on one extra variable.
  for (ThreadId U = 1; U <= Workers; ++U) {
    B.rd(U, U).wr(U, U);
    B.lockedWr(U, 0, 0);
  }
  B.wr(Workers - 1, Workers + 1);
  B.rd(Workers, Workers + 1); // race
  for (ThreadId U = 1; U <= Workers; ++U)
    B.join(0, U);
  return B.take();
}

} // namespace

TEST(FastTrack64, AgreesWithFastTrack32WithinSmallTidRange) {
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    RandomTraceConfig Config;
    Config.Seed = Seed;
    Config.ChaosProbability = 0.3;
    Trace T = generateRandomTrace(Config);

    FastTrack Ft32;
    FastTrack64 Ft64;
    replay(T, Ft32);
    replay(T, Ft64);
    ASSERT_EQ(Ft64.warnings().size(), Ft32.warnings().size())
        << "seed " << Seed;
    for (size_t I = 0; I != Ft32.warnings().size(); ++I) {
      EXPECT_EQ(Ft64.warnings()[I].Var, Ft32.warnings()[I].Var);
      EXPECT_EQ(Ft64.warnings()[I].OpIndex, Ft32.warnings()[I].OpIndex);
    }
  }
}

TEST(FastTrack64, HandlesMoreThanTwoHundredFiftySixThreads) {
  Trace T = manyThreadTrace(400);
  ASSERT_GT(T.numThreads(), 256u);

  FastTrack64 Detector;
  replay(T, Detector);
  ASSERT_EQ(Detector.warnings().size(), 1u);
  EXPECT_EQ(Detector.warnings()[0].Var, 401u);
  EXPECT_EQ(Detector.warnings()[0].CurrentThread, 400u);
  EXPECT_EQ(Detector.warnings()[0].PriorThread, 399u);
}

TEST(FastTrack64, MatchesOracleOnManyThreadTrace) {
  Trace T = manyThreadTrace(300);
  std::vector<VarId> Expected = racyVars(T);
  FastTrack64 Detector;
  replay(T, Detector);
  std::vector<VarId> Got;
  for (const RaceWarning &W : Detector.warnings())
    Got.push_back(W.Var);
  std::sort(Got.begin(), Got.end());
  EXPECT_EQ(Got, Expected);
}

TEST(FastTrack64, ThirtyTwoBitVariantRefusesLargeTidSpaces) {
  // The 32-bit layout asserts its 8-bit tid bound rather than silently
  // corrupting epochs.
  Trace T = manyThreadTrace(300);
  FastTrack Detector;
  EXPECT_DEATH(replay(T, Detector), "exceeds this epoch layout");
}

TEST(FastTrack64, RegisteredInToolRegistry) {
  auto Detector = createTool("fasttrack64");
  ASSERT_NE(Detector, nullptr);
  EXPECT_STREQ(Detector->name(), "FastTrack64");
  auto Ft32 = createTool("fasttrack");
  EXPECT_STREQ(Ft32->name(), "FastTrack");
}

TEST(FastTrack64, RuleStatsAndAdaptiveRepresentationWork) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .rd(0, 0)
                .rd(1, 0) // inflate
                .join(0, 1)
                .wr(0, 0) // deflate
                .take();
  FastTrack64 Detector;
  replay(T, Detector);
  EXPECT_EQ(Detector.ruleStats().ReadShare, 1u);
  EXPECT_EQ(Detector.ruleStats().WriteShared, 1u);
  EXPECT_EQ(Detector.inflatedReadStates(), 0u);
  EXPECT_TRUE(Detector.warnings().empty());
}
