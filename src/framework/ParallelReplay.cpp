#include "framework/ParallelReplay.h"

#include "framework/SyncSpine.h"
#include "framework/VectorClockToolBase.h"
#include "support/Stopwatch.h"
#include "trace/ReentrancyFilter.h"
#include "trace/ShardPartition.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

using namespace ft;

namespace {

/// What one worker hands back to the engine. Workers touch only their
/// own slot, so no synchronization beyond thread join is needed (and the
/// whole engine is clean under -fsanitize=thread).
struct WorkerReport {
  double Seconds = 0;
  uint64_t AccessesSeen = 0;
  uint64_t AccessesPassed = 0;
  ClockStats Clocks; ///< The worker thread's counter delta.
};

/// Shared watchdog state. Workers publish a progress counter with relaxed
/// stores (the monitor only needs to see *some* eventually-visible change,
/// not a happens-before edge) and poll the cancel flag on the same cadence.
struct WatchdogState {
  static constexpr uint64_t Done = ~uint64_t(0);
  std::atomic<bool> Cancel{false};
  std::vector<std::atomic<uint64_t>> Progress;
  explicit WatchdogState(unsigned Shards) : Progress(Shards) {}
};

/// How often (in trace positions) workers touch the watchdog counters.
constexpr uint32_t ProgressStride = 1024;

/// Returns true when the worker should abandon its scan.
inline bool heartbeat(WatchdogState *Dog, unsigned Shard, uint32_t I) {
  if (!Dog || (I & (ProgressStride - 1)) != 0)
    return false;
  Dog->Progress[Shard].store(I, std::memory_order_relaxed);
  return Dog->Cancel.load(std::memory_order_relaxed);
}

/// Workers scan the whole (immutable, shared) trace and filter their own
/// accesses with this pure membership test — the access schedules are
/// never materialized, so the filtering is parallel work, not a serial
/// pre-pass. Granularity-mapped ids keep whole objects in one shard.
inline bool ownsAccess(VarId Mapped, unsigned Shard, unsigned NumShards) {
  return Mapped % NumShards == Shard;
}

void runSpineWorker(const Trace &T, const SyncSpine &Spine,
                    const GranularityMap &Map, const ToolContext &Context,
                    Tool &Clone, unsigned Shard, unsigned NumShards,
                    WatchdogState *Dog, WorkerReport &Report) {
  ClockStats Before = clockStats();
  Stopwatch Watch;
  Clone.begin(Context);

  // The access rules read only the accessing thread's clock, so spine
  // updates are installed lazily: at an access by thread t, fast-forward
  // t's cursor past every update that precedes the access and install
  // just the latest one (a pointer store — the spine is immutable).
  // Skipped intermediate updates cost a pointer bump, and threads that
  // never touch this shard cost nothing.
  auto &VC = static_cast<VectorClockToolBase &>(Clone);
  std::vector<size_t> Cursor(Spine.PerThread.size(), 0);
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.size()); I != E; ++I) {
    if (heartbeat(Dog, Shard, I))
      break; // Cancelled; the engine discards this shard's results.
    const Operation &Op = T[I];
    if (Op.Kind != OpKind::Read && Op.Kind != OpKind::Write)
      continue;
    VarId X = Map.map(Op.Target);
    if (!ownsAccess(X, Shard, NumShards))
      continue;

    const std::vector<SpineUpdate> &Ups = Spine.PerThread[Op.Thread];
    size_t &Cur = Cursor[Op.Thread];
    size_t Next = Cur;
    while (Next != Ups.size() && Ups[Next].OpIndex < I)
      ++Next;
    if (Next != Cur) {
      VC.applySpineClock(Op.Thread, Ups[Next - 1].Clock);
      Cur = Next;
    }

    ++Report.AccessesSeen;
    Report.AccessesPassed += Op.Kind == OpKind::Read
                                 ? Clone.onRead(Op.Thread, X, I)
                                 : Clone.onWrite(Op.Thread, X, I);
  }

  Clone.end();
  if (Dog)
    Dog->Progress[Shard].store(WatchdogState::Done, std::memory_order_relaxed);
  Report.Seconds = Watch.seconds();
  Report.Clocks = clockStats() - Before;
}

void runSyncReplayWorker(const Trace &T, const GranularityMap &Map,
                         const ToolContext &Context, Tool &Clone,
                         unsigned Shard, unsigned NumShards,
                         bool FilterReentrantLocks, WatchdogState *Dog,
                         WorkerReport &Report) {
  ClockStats Before = clockStats();
  Stopwatch Watch;
  Clone.begin(Context);

  // Every worker replays the full sync schedule through its own clone,
  // each running the same re-entrancy filter the serial engine runs, so
  // all clones see the identical dispatched lock events.
  ReentrancyFilter Reentrancy(T.numThreads(), T.numLocks());
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.size()); I != E; ++I) {
    if (heartbeat(Dog, Shard, I))
      break; // Cancelled; the engine discards this shard's results.
    const Operation &Op = T[I];
    switch (Op.Kind) {
    case OpKind::Read:
    case OpKind::Write: {
      VarId X = Map.map(Op.Target);
      if (!ownsAccess(X, Shard, NumShards))
        continue;
      ++Report.AccessesSeen;
      Report.AccessesPassed += Op.Kind == OpKind::Read
                                   ? Clone.onRead(Op.Thread, X, I)
                                   : Clone.onWrite(Op.Thread, X, I);
      continue;
    }
    case OpKind::Acquire:
      if (FilterReentrantLocks && !Reentrancy.onAcquire(Op.Thread, Op.Target))
        continue;
      break;
    case OpKind::Release:
      if (FilterReentrantLocks && !Reentrancy.onRelease(Op.Thread, Op.Target))
        continue;
      break;
    default:
      break;
    }
    dispatchSyncOp(Clone, T, Op, I);
  }

  Clone.end();
  if (Dog)
    Dog->Progress[Shard].store(WatchdogState::Done, std::memory_order_relaxed);
  Report.Seconds = Watch.seconds();
  Report.Clocks = clockStats() - Before;
}

/// The injected stall: publish no progress until cancelled. Simulates a
/// worker wedged on its scan (the cooperative-cancellation analogue of a
/// hung thread — a truly deadlocked worker could never be joined).
void runStalledWorker(WatchdogState &Dog) {
  while (!Dog.Cancel.load(std::memory_order_relaxed))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

} // namespace

ParallelReplayResult ft::parallelReplay(const Trace &T, Tool &Primary,
                                        const ParallelReplayOptions &Options) {
  ParallelReplayResult Result;

  unsigned Shards = Options.NumShards;
  if (Shards == 0)
    Shards = std::max(1u, std::thread::hardware_concurrency());

  auto *Shardable = dynamic_cast<ShardableTool *>(&Primary);
  if (!Shardable || Shards <= 1 || T.empty()) {
    Result.Total = replay(T, Primary, Options.Replay);
    return Result;
  }

  Stopwatch TotalWatch;
  ClockStats Before = clockStats();
  GranularityMap Map = GranularityMap::make(Options.Replay);
  ToolContext Context = makeToolContext(T, Map);

  std::vector<std::unique_ptr<Tool>> Clones;
  Clones.reserve(Shards);
  for (unsigned K = 0; K != Shards; ++K)
    Clones.push_back(Shardable->cloneForShard());

  // SpineDriven requires the clone to expose applySpineClock; degrade to
  // SyncReplay otherwise (a misdeclared tool stays correct, just slower).
  ShardMode Mode = Shardable->shardMode();
  if (Mode == ShardMode::SpineDriven &&
      !dynamic_cast<VectorClockToolBase *>(Clones.front().get()))
    Mode = ShardMode::SyncReplay;

  // --- 1. Serial pre-pass: the dispatched sync schedule, and the spine
  // for vector-clock tools. This is the Amdahl bound on speedup; all
  // per-access work happens in the workers.
  Stopwatch PrePassWatch;
  std::vector<uint32_t> SyncOps;
  SyncSpine Spine;
  if (Mode == ShardMode::SpineDriven) {
    SpinePrePass Pre = buildSyncSpine(T, Options.Replay.FilterReentrantLocks);
    SyncOps = std::move(Pre.SyncOps);
    Spine = std::move(Pre.Spine);
  } else {
    SyncOps = collectSyncOps(T, Options.Replay.FilterReentrantLocks);
  }
  Result.PrePassSeconds = PrePassWatch.seconds();
  Result.PlanBytes = SyncOps.capacity() * sizeof(uint32_t);
  Result.SpineBytes = Spine.memoryBytes();
  Result.SpineUpdates = Spine.numUpdates();

  // --- 2. Sharded replay. ----------------------------------------------
  bool Filter = Options.Replay.FilterReentrantLocks;
  std::vector<WorkerReport> Reports(Shards);
  std::vector<std::thread> Workers;
  Workers.reserve(Shards);

  WatchdogState Dog(Shards);
  WatchdogState *DogPtr = Options.WatchdogTimeoutMs != 0 ? &Dog : nullptr;
  unsigned StalledShard = 0;
  std::atomic<bool> WorkersDone{false};
  std::thread Monitor;
  if (DogPtr) {
    Monitor = std::thread([&, Timeout = Options.WatchdogTimeoutMs] {
      using Clock = std::chrono::steady_clock;
      // Short poll slices regardless of the timeout: the loop must also
      // notice WorkersDone promptly, or joining the monitor would stall
      // the engine for a poll period after a healthy run.
      unsigned PollMs = std::min(10u, std::max(1u, Timeout / 4));
      std::vector<uint64_t> Last(Shards, 0);
      std::vector<Clock::time_point> LastChange(Shards, Clock::now());
      while (!WorkersDone.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(PollMs));
        Clock::time_point Now = Clock::now();
        for (unsigned K = 0; K != Shards; ++K) {
          uint64_t P = Dog.Progress[K].load(std::memory_order_relaxed);
          if (P == WatchdogState::Done)
            continue;
          if (P != Last[K]) {
            Last[K] = P;
            LastChange[K] = Now;
            continue;
          }
          if (Now - LastChange[K] >= std::chrono::milliseconds(Timeout)) {
            StalledShard = K;
            Dog.Cancel.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }

  for (unsigned K = 0; K != Shards; ++K) {
    Tool &Clone = *Clones[K];
    WorkerReport &Report = Reports[K];
    if (DogPtr && Options.InjectStallShard == static_cast<int>(K))
      Workers.emplace_back([&] { runStalledWorker(Dog); });
    else if (Mode == ShardMode::SpineDriven)
      Workers.emplace_back([&, K] {
        runSpineWorker(T, Spine, Map, Context, Clone, K, Shards, DogPtr,
                       Report);
      });
    else
      Workers.emplace_back([&, K] {
        runSyncReplayWorker(T, Map, Context, Clone, K, Shards, Filter, DogPtr,
                            Report);
      });
  }
  for (std::thread &Worker : Workers)
    Worker.join();
  WorkersDone.store(true, std::memory_order_relaxed);
  if (Monitor.joinable())
    Monitor.join();

  if (Dog.Cancel.load(std::memory_order_relaxed)) {
    // A worker stalled. The clones hold partial, unusable state; the
    // primary tool was never touched, so the serial engine reruns the
    // trace from scratch — correct results at one-core speed.
    Result.WatchdogFired = true;
    Result.Diags.push_back(
        {StatusCode::Stalled, Severity::Warning, 0, NoOpIndex,
         "parallel replay worker " + std::to_string(StalledShard) +
             " made no progress for " +
             std::to_string(Options.WatchdogTimeoutMs) +
             " ms; cancelled the sharded attempt and fell back to serial "
             "replay"});
    Result.Total = replay(T, Primary, Options.Replay);
    Result.Total.Seconds = TotalWatch.seconds();
    return Result;
  }

  // --- 3. Deterministic merge. -----------------------------------------
  uint64_t Accesses = 0;
  std::vector<RaceWarning> Merged;
  for (unsigned K = 0; K != Shards; ++K) {
    const std::vector<RaceWarning> &Ws = Clones[K]->warnings();
    Merged.insert(Merged.end(), Ws.begin(), Ws.end());
    Accesses += Reports[K].AccessesSeen;
    Result.Total.AccessesPassed += Reports[K].AccessesPassed;
    Result.Total.ShadowBytes += Clones[K]->shadowBytes();
    Result.ShardSeconds.push_back(Reports[K].Seconds);
    clockStats() += Reports[K].Clocks;
  }
  // Each access reports at most one warning and every access lives in
  // exactly one shard, so op indices are unique: sorting by OpIndex
  // reconstructs the serial engine's warning order exactly.
  std::sort(Merged.begin(), Merged.end(),
            [](const RaceWarning &A, const RaceWarning &B) {
              return A.OpIndex < B.OpIndex;
            });
  Primary.adoptWarnings(Merged);
  for (unsigned K = 0; K != Shards; ++K)
    Shardable->mergeShard(*Clones[K]);

  Result.Sharded = true;
  Result.Mode = Mode;
  Result.Shards = Shards;
  Result.Total.Events = SyncOps.size() + Accesses;
  Result.Total.NumWarnings = Primary.warnings().size();
  Result.Total.Clocks = clockStats() - Before;
  Result.Total.Seconds = TotalWatch.seconds();
  return Result;
}
