//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compressed two-level shadow map backing FastTrack's per-variable
/// state (docs/ARCHITECTURE.md, "Shadow memory").
///
/// FastTrack's whole thesis is that the common-case access touches O(1)
/// shadow state, yet a naive per-variable record charges every variable
/// for the rare case: two epochs plus an inline read vector clock that
/// only the ~0.1 % read-shared variables ever materialize, laid out AoS
/// in a flat array pre-sized to the declared variable count. This file
/// applies the production shape used by Valgrind-family tools (two-level
/// shadow maps with compressed per-address states) and Helgrind+ (shadow
/// values packed into machine words):
///
///   - **Primary map, level 1**: a page directory indexed by
///     `VarId >> ShadowPageShift`. A null entry is the distinguished
///     compact state for a never-accessed region — it costs one pointer
///     regardless of how many variables the region declares.
///   - **Primary map, level 2**: fixed-size pages allocated on first
///     touch. A page holds the packed hot fields only — write epoch W
///     and read epoch R side by side, so the same-epoch fast paths and
///     the O(1) race checks read exactly one cache line (~8 variables
///     per line with 32-bit epochs). Spaces at or below
///     ShadowEagerVarLimit skip lazy faulting: one contiguous block
///     backs every page and accesses go through a flat pointer, so small
///     programs pay zero indirection over the dense layout.
///   - **Side store**: the rare read-shared vector clocks are hoisted
///     out of the per-variable record into a per-table array keyed by a
///     compact handle. The handle reuses R's tag bits: the top tid value
///     of the epoch layout is reserved as the READ_SHARED tag (it was
///     already burned by the all-ones sentinel) and the clock bits carry
///     the side-store index. Inflation and deflation therefore move a
///     4-byte handle instead of carrying 32+ inline bytes per variable
///     forever, and freed handles park on a free list so a
///     deflate → re-inflate cycle recycles both the handle and the
///     clock's heap buffer (the Figure 5 Rvc-recycling behaviour,
///     table-wide instead of per-variable).
///
/// Consequences the rest of the system relies on:
///   - shadow RSS is proportional to *touched pages*, not the declared
///     variable count — million-variable address spaces cost kilobytes
///     until touched;
///   - the hot slot is 2×sizeof(EpochT) (8 bytes for the paper's 32-bit
///     layout, down from 48 with the inline-VC record), so dense scans
///     stream 6x less shadow memory;
///   - sharded clones fault in only the pages their shard's variables
///     live on, making per-shard shadow an LLC-friendly slice for free;
///   - the resource governor's final coarse-granularity rung folds
///     exactly one shadow page region onto one shadow slot
///     (ShadowPageVars fields per object), so the degraded shadow is one
///     slot per page of the fine-grained one.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_SHADOW_SHADOWTABLE_H
#define FASTTRACK_SHADOW_SHADOWTABLE_H

#include "clock/VectorClock.h"
#include "trace/Ids.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ft {

/// Shadow page geometry, shared by both epoch layouts (and by the
/// degradation ladder, whose final rung maps one page region to one
/// shadow slot — see framework/ResourceGovernor.h). 512 slots keep a
/// 32-bit-epoch page at exactly one 4 KiB allocation.
inline constexpr uint32_t ShadowPageShift = 9;
inline constexpr uint32_t ShadowPageVars = 1u << ShadowPageShift;

/// Variable spaces up to this size are backed eagerly by one contiguous
/// page block and accessed flat, skipping the directory's dependent load
/// (measurably ~6 % of FastTrack's replay overhead on cache-resident
/// workloads). Compression has nothing to win below this: the whole
/// fine-grained shadow is at most a megabyte. Above it, pages fault in
/// on first touch and footprint follows touched pages.
inline constexpr size_t ShadowEagerVarLimit = 64 * 1024;

/// The two-level SoA shadow map over epoch representation \p EpochT.
///
/// The table owns storage and representation only; the FastTrack rules
/// that interpret W/R live in core/FastTrack.cpp. Thread-count contract:
/// the top tid of the epoch layout is the READ_SHARED handle tag, so
/// detectors using this table admit at most EpochT::MaxTid threads
/// (255 / 65535), one fewer than the raw epoch packing.
template <typename EpochT> class ShadowTable {
public:
  using RawT = decltype(EpochT().raw());

  static constexpr uint32_t PageShift = ShadowPageShift;
  static constexpr uint32_t PageSize = ShadowPageVars;
  static constexpr uint32_t PageMask = PageSize - 1;

  /// The packed hot pair. W and R are adjacent so every Figure 2 rule's
  /// O(1) checks (same-epoch, Wx ≼ Ct, epoch-Rx ≼ Ct) read one line.
  struct Slot {
    EpochT W;
    EpochT R;
  };

  /// A level-2 page: nothing but slots, zero-initialized to ⊥ on fault-in.
  struct Page {
    Slot Slots[PageSize];
  };

  ShadowTable() = default;
  ShadowTable(const ShadowTable &) = delete;
  ShadowTable &operator=(const ShadowTable &) = delete;
  ~ShadowTable() { releasePages(); }

  /// Re-sizes the directory for \p NumVars variables and drops all pages
  /// and side-store state (Tool::begin semantics). Spaces at or below
  /// ShadowEagerVarLimit are materialized as one contiguous block (the
  /// directory still points into it, so snapshot iteration is uniform);
  /// larger spaces start empty and fault pages in on first touch.
  void reset(size_t NumVars) {
    releasePages();
    const size_t NumPages = (NumVars + PageMask) >> PageShift;
    Dir.assign(NumPages, nullptr);
    Vars = NumVars;
    Resident = 0;
    Clocks.clear();
    FreeHandles.clear();
    Live = 0;
    if (NumVars != 0 && NumVars <= ShadowEagerVarLimit)
      materializeEagerly(NumPages);
  }

  /// The hot-path accessor: returns the slot for \p X. Small tables take
  /// the flat path — identical address arithmetic to the dense layout
  /// behind one always-predicted branch. Large tables pay one extra
  /// (cache-resident) directory load, faulting the page in on first
  /// touch; the directory is 8 bytes per 512 variables.
  Slot &slot(VarId X) {
    assert(X < Vars && "variable id outside the shadow table");
    if (__builtin_expect(FlatSlots != nullptr, 1))
      return FlatSlots[X];
    Page *P = Dir[X >> PageShift];
    if (__builtin_expect(P == nullptr, 0))
      P = faultIn(X >> PageShift);
    return P->Slots[X & PageMask];
  }

  /// \name READ_SHARED handles (R's tag bits).
  /// @{

  /// True when \p R carries a side-store handle rather than a read epoch.
  static constexpr bool isInflated(EpochT R) {
    return (R.raw() >> EpochT::ClockBits) == EpochT::MaxTid;
  }

  /// The side-store index carried by an inflated \p R.
  static constexpr uint32_t handleOf(EpochT R) {
    return static_cast<uint32_t>(R.raw() & EpochT::MaxClock);
  }

  /// Packs side-store index \p H into the reserved-tid tag space.
  static EpochT handleEpoch(uint32_t H) {
    return EpochT::fromRaw((RawT(EpochT::MaxTid) << EpochT::ClockBits) |
                           RawT(H));
  }

  /// Allocates a side-store clock (recycling a freed handle and its
  /// buffer when one is parked) and returns the tagged R value for it.
  /// The clock is ⊥ — recycled buffers are zeroed here, because stale
  /// entries predate the write that deflated them and would raise false
  /// alarms if kept.
  EpochT inflate() {
    uint32_t H;
    if (!FreeHandles.empty()) {
      H = FreeHandles.back();
      FreeHandles.pop_back();
      Clocks[H].resetToBottom();
    } else {
      H = static_cast<uint32_t>(Clocks.size());
      assert(RawT(H) < EpochT::MaxClock &&
             "side-store handle space exhausted for this epoch layout");
      Clocks.emplace_back();
    }
    ++Live;
    return handleEpoch(H);
  }

  /// Returns the inflated \p R's handle to the free list. The clock's
  /// buffer is kept for the next inflation.
  void deflate(EpochT R) {
    assert(isInflated(R));
    FreeHandles.push_back(handleOf(R));
    --Live;
  }

  /// The read vector clock behind an inflated \p R.
  VectorClock &clockFor(EpochT R) {
    assert(isInflated(R));
    return Clocks[handleOf(R)];
  }
  const VectorClock &clockFor(EpochT R) const {
    assert(isInflated(R));
    return Clocks[handleOf(R)];
  }

  /// Currently inflated (read-shared) variables.
  uint64_t inflatedStates() const { return Live; }

  /// Side-store slots ever materialized (high-water mark; freed handles
  /// stay allocated for reuse).
  size_t sideStoreSlots() const { return Clocks.size(); }

  /// @}

  /// \name Geometry and snapshot iteration (no faulting).
  /// @{

  size_t numVars() const { return Vars; }
  size_t numPages() const { return Dir.size(); }
  size_t residentPages() const { return Resident; }

  /// The page for index \p PI, or null for a never-accessed region.
  const Page *pageAt(size_t PI) const { return Dir[PI]; }

  /// Slots of page \p PI that map to declared variables (the last page
  /// may be partial).
  uint32_t slotsInPage(size_t PI) const {
    size_t Base = PI << PageShift;
    size_t Left = Vars - Base;
    return Left < PageSize ? static_cast<uint32_t>(Left) : PageSize;
  }

  /// @}

  /// Bytes owned by the table: the directory, resident pages, the side
  /// store's slot array and any heap-spilled (ClockArena) clock buffers,
  /// and the handle free list. Walking the side store is O(inflation
  /// high-water), matching the amortized contract of shadowBytes()
  /// probes.
  size_t memoryBytes() const {
    size_t Bytes = Dir.capacity() * sizeof(Page *) + Resident * sizeof(Page);
    Bytes += Clocks.capacity() * sizeof(VectorClock);
    for (const VectorClock &Clock : Clocks)
      Bytes += Clock.memoryBytes();
    Bytes += FreeHandles.capacity() * sizeof(uint32_t);
    return Bytes;
  }

private:
  Page *faultIn(size_t PI); // out of line: first touch is the cold path
  void materializeEagerly(size_t NumPages);
  void releasePages() noexcept;

  std::vector<Page *> Dir;        ///< Level 1: null = never-accessed region.
  /// Flat view of the eager block for small tables (null when paging).
  /// Page holds nothing but its slot array, so the block's slots are
  /// contiguous and FlatSlots[X] is exactly Dir[X >> 9]->Slots[X & 511].
  Slot *FlatSlots = nullptr;
  std::unique_ptr<Page[]> EagerBlock; ///< Owns the contiguous small-table pages.
  size_t Vars = 0;                ///< Declared variable count.
  size_t Resident = 0;            ///< Pages faulted in (all, when eager).
  std::vector<VectorClock> Clocks;///< Side store, indexed by handle.
  std::vector<uint32_t> FreeHandles; ///< Deflated handles awaiting reuse.
  uint64_t Live = 0;              ///< Handles currently in use.
};

extern template class ShadowTable<Epoch>;
extern template class ShadowTable<Epoch64>;

} // namespace ft

#endif // FASTTRACK_SHADOW_SHADOWTABLE_H
