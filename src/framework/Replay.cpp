#include "framework/Replay.h"

using namespace ft;

ToolContext ft::makeToolContext(const Trace &T, const GranularityMap &Map) {
  ToolContext Context;
  Context.NumThreads = T.numThreads();
  Context.NumLocks = T.numLocks();
  Context.NumVolatiles = T.numVolatiles();
  if (Map.identity()) {
    Context.NumVars = T.numVars();
  } else {
    unsigned MaxVar = 0;
    for (VarId X = 0; X != T.numVars(); ++X)
      MaxVar = std::max(MaxVar, Map.map(X) + 1);
    Context.NumVars = MaxVar;
  }
  return Context;
}

void ft::dispatchSyncOp(Tool &Checker, const Trace &T, const Operation &Op,
                        size_t I) {
  switch (Op.Kind) {
  case OpKind::Acquire:
    Checker.onAcquire(Op.Thread, Op.Target, I);
    break;
  case OpKind::Release:
    Checker.onRelease(Op.Thread, Op.Target, I);
    break;
  case OpKind::Fork:
    Checker.onFork(Op.Thread, Op.Target, I);
    break;
  case OpKind::Join:
    Checker.onJoin(Op.Thread, Op.Target, I);
    break;
  case OpKind::VolatileRead:
    Checker.onVolatileRead(Op.Thread, Op.Target, I);
    break;
  case OpKind::VolatileWrite:
    Checker.onVolatileWrite(Op.Thread, Op.Target, I);
    break;
  case OpKind::Barrier:
    Checker.onBarrier(T.barrierSet(Op.Target), I);
    break;
  case OpKind::AtomicBegin:
    Checker.onAtomicBegin(Op.Thread, I);
    break;
  case OpKind::AtomicEnd:
    Checker.onAtomicEnd(Op.Thread, I);
    break;
  case OpKind::Read:
  case OpKind::Write:
    break; // handled by the access path
  }
}

namespace {

/// The fast-replay registry. Filled by FastReplayRegistrar static
/// initializers (single-threaded, before main) and only read afterwards,
/// so plain storage suffices. Fixed capacity: registrations past the cap
/// are dropped, which only costs those tools the fast path.
struct FastReplayRegistry {
  static constexpr size_t MaxProbes = 32;
  FastReplayProbeFn Probes[MaxProbes] = {};
  size_t NumProbes = 0;
};

FastReplayRegistry &fastReplayRegistry() {
  static FastReplayRegistry Registry;
  return Registry;
}

} // namespace

void ft::registerFastReplay(FastReplayProbeFn Probe) {
  FastReplayRegistry &Registry = fastReplayRegistry();
  if (Registry.NumProbes < FastReplayRegistry::MaxProbes)
    Registry.Probes[Registry.NumProbes++] = Probe;
}

ReplayResult ft::replay(const Trace &T, Tool &Checker,
                        const ReplayOptions &Options) {
  const FastReplayRegistry &Registry = fastReplayRegistry();
  ReplayResult Result;
  for (size_t I = 0; I != Registry.NumProbes; ++I)
    if (Registry.Probes[I](T, Checker, Options, Result))
      return Result;
  return replayWithTool<Tool>(T, Checker, Options);
}

PipelineResult ft::replayFiltered(const Trace &T, Tool &Filter,
                                  Tool &Downstream,
                                  const ReplayOptions &Options) {
  GranularityMap Map = GranularityMap::make(Options);
  PipelineResult Result;
  ClockStats Before = clockStats();
  ToolContext Context = makeToolContext(T, Map);

  Stopwatch Watch;
  Filter.begin(Context);
  Downstream.begin(Context);
  Result.Total.StoppedAtOp = detail::replayLoop(
      T, Options, Map,
      [&](OpKind Kind, ThreadId Thread, VarId X, size_t I) {
        ++Result.AccessesSeen;
        if (Kind == OpKind::Read) {
          if (!Filter.onRead(Thread, X, I))
            return;
          ++Result.AccessesForwarded;
          Downstream.onRead(Thread, X, I);
        } else {
          if (!Filter.onWrite(Thread, X, I))
            return;
          ++Result.AccessesForwarded;
          Downstream.onWrite(Thread, X, I);
        }
      },
      [&](const Operation &Op, size_t I) {
        dispatchSyncOp(Filter, T, Op, I);
        dispatchSyncOp(Downstream, T, Op, I);
      },
      [&] { return Filter.shadowBytes() + Downstream.shadowBytes(); },
      Result.Total.Events, Result.Total.BudgetExceeded);
  Filter.end();
  Downstream.end();
  Result.Total.Seconds = Watch.seconds();

  Result.Total.Clocks = clockStats() - Before;
  Result.Total.ShadowBytes = Filter.shadowBytes() + Downstream.shadowBytes();
  Result.Total.NumWarnings =
      Filter.warnings().size() + Downstream.warnings().size();
  Result.Total.AccessesPassed = Result.AccessesForwarded;
  return Result;
}
