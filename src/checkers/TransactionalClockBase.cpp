#include "checkers/TransactionalClockBase.h"

using namespace ft;

void TransactionalClockBase::begin(const ToolContext &Context) {
  Clocks.assign(Context.NumThreads, VectorClock());
  for (ThreadId T = 0; T != Context.NumThreads; ++T)
    Clocks[T].inc(T);
  Txns.assign(Context.NumThreads, TxnState());
  Vars.assign(Context.NumVars, VarShadow());
  Locks.assign(Context.NumLocks, ChannelShadow());
  Volatiles.assign(Context.NumVolatiles, ChannelShadow());
  Violations.clear();
}

void TransactionalClockBase::reportViolation(ThreadId T, size_t OpIndex,
                                             std::string Detail) {
  TxnState &Txn = Txns[T];
  if (Txn.Violated)
    return;
  Txn.Violated = true;
  Violations.push_back({T, Txn.BeginIndex, OpIndex, std::move(Detail)});
}

void TransactionalClockBase::consumeEdge(ThreadId T,
                                         const VectorClock &Source,
                                         ThreadId From, size_t OpIndex,
                                         const char *EdgeDesc) {
  if (Txns[T].Active && From != UnknownThread && From != T)
    checkIncomingEdge(T, Source, From, OpIndex, EdgeDesc);
  Clocks[T].joinWith(Source);
}

bool TransactionalClockBase::onRead(ThreadId T, VarId X, size_t OpIndex) {
  VarShadow &Shadow = Vars[X];
  // A self-edge (Writer == T) is program order: already ⊑ Clocks[T].
  if (Shadow.Writer != UnknownThread && Shadow.Writer != T)
    consumeEdge(T, Shadow.WriteClock, Shadow.Writer, OpIndex,
                "write-read edge");

  // Record/update this thread's reader entry.
  for (auto &[Reader, Clock] : Shadow.Readers)
    if (Reader == T) {
      Clock.copyFrom(Clocks[T]);
      return true;
    }
  Shadow.Readers.emplace_back(T, Clocks[T]);
  return true;
}

bool TransactionalClockBase::onWrite(ThreadId T, VarId X, size_t OpIndex) {
  VarShadow &Shadow = Vars[X];
  if (Shadow.Writer != UnknownThread && Shadow.Writer != T)
    consumeEdge(T, Shadow.WriteClock, Shadow.Writer, OpIndex,
                "write-write edge");
  for (auto &[Reader, Clock] : Shadow.Readers) {
    if (Reader == T)
      continue;
    consumeEdge(T, Clock, Reader, OpIndex, "read-write edge");
  }
  Shadow.WriteClock.copyFrom(Clocks[T]);
  Shadow.Writer = T;
  Shadow.Readers.clear();
  return true;
}

void TransactionalClockBase::onAcquire(ThreadId T, LockId M,
                                       size_t OpIndex) {
  ChannelShadow &Lock = Locks[M];
  if (Lock.LastOwner != UnknownThread)
    consumeEdge(T, Lock.Clock, Lock.LastOwner, OpIndex, "lock edge");
}

void TransactionalClockBase::onRelease(ThreadId T, LockId M, size_t) {
  Locks[M].Clock.copyFrom(Clocks[T]);
  Locks[M].LastOwner = T;
  Clocks[T].inc(T);
}

void TransactionalClockBase::onFork(ThreadId T, ThreadId U, size_t) {
  Clocks[U].joinWith(Clocks[T]);
  Clocks[T].inc(T);
}

void TransactionalClockBase::onJoin(ThreadId T, ThreadId U, size_t OpIndex) {
  consumeEdge(T, Clocks[U], U, OpIndex, "join edge");
  Clocks[U].inc(U);
}

void TransactionalClockBase::onVolatileRead(ThreadId T, VolatileId V,
                                            size_t OpIndex) {
  ChannelShadow &Vol = Volatiles[V];
  if (Vol.LastOwner != UnknownThread)
    consumeEdge(T, Vol.Clock, Vol.LastOwner, OpIndex, "volatile edge");
}

void TransactionalClockBase::onVolatileWrite(ThreadId T, VolatileId V,
                                             size_t) {
  Volatiles[V].Clock.joinWith(Clocks[T]);
  Volatiles[V].LastOwner = T;
  Clocks[T].inc(T);
}

void TransactionalClockBase::onBarrier(const std::vector<ThreadId> &Threads,
                                       size_t) {
  VectorClock Joined;
  for (ThreadId U : Threads)
    Joined.joinWith(Clocks[U]);
  for (ThreadId U : Threads) {
    Clocks[U].copyFrom(Joined);
    Clocks[U].inc(U);
  }
}

void TransactionalClockBase::onAtomicBegin(ThreadId T, size_t OpIndex) {
  TxnState &Txn = Txns[T];
  // Nested blocks flatten into the outermost one (as in Velodrome).
  if (Txn.Active) {
    ++Txn.Depth;
    return;
  }
  Clocks[T].inc(T); // ops of this block carry a fresh clock value
  Txn.Active = true;
  Txn.Violated = false;
  Txn.Depth = 1;
  Txn.BeginIndex = OpIndex;
  Txn.BeginClock = Clocks[T].get(T);
  Txn.BeginSnapshot.copyFrom(Clocks[T]);
}

void TransactionalClockBase::onAtomicEnd(ThreadId T, size_t) {
  TxnState &Txn = Txns[T];
  if (Txn.Depth > 0 && --Txn.Depth == 0)
    Txn.Active = false;
}

size_t TransactionalClockBase::shadowBytes() const {
  size_t Bytes = 0;
  for (const VectorClock &Clock : Clocks)
    Bytes += sizeof(VectorClock) + Clock.memoryBytes();
  for (const TxnState &Txn : Txns)
    Bytes += sizeof(TxnState) + Txn.BeginSnapshot.memoryBytes();
  for (const VarShadow &Shadow : Vars) {
    Bytes += sizeof(VarShadow) + Shadow.WriteClock.memoryBytes();
    for (const auto &[Reader, Clock] : Shadow.Readers) {
      (void)Reader;
      Bytes += sizeof(std::pair<ThreadId, VectorClock>) + Clock.memoryBytes();
    }
  }
  for (const ChannelShadow &Lock : Locks)
    Bytes += sizeof(ChannelShadow) + Lock.Clock.memoryBytes();
  for (const ChannelShadow &Vol : Volatiles)
    Bytes += sizeof(ChannelShadow) + Vol.Clock.memoryBytes();
  return Bytes;
}
