//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent builder for constructing traces in tests and examples.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_TRACEBUILDER_H
#define FASTTRACK_TRACE_TRACEBUILDER_H

#include "trace/Trace.h"

namespace ft {

/// Builds traces with chained calls mirroring the paper's notation:
///
/// \code
///   Trace T = TraceBuilder()
///                 .wr(0, X).rel(0, M).acq(1, M).wr(1, X)
///                 .take();
/// \endcode
///
/// The builder does not enforce feasibility; pair it with TraceValidator
/// when a test needs that guarantee.
class TraceBuilder {
public:
  TraceBuilder &rd(ThreadId T, VarId X) {
    Result.append(ft::rd(T, X));
    return *this;
  }
  TraceBuilder &wr(ThreadId T, VarId X) {
    Result.append(ft::wr(T, X));
    return *this;
  }
  TraceBuilder &acq(ThreadId T, LockId M) {
    Result.append(ft::acq(T, M));
    return *this;
  }
  TraceBuilder &rel(ThreadId T, LockId M) {
    Result.append(ft::rel(T, M));
    return *this;
  }
  TraceBuilder &fork(ThreadId T, ThreadId U) {
    Result.append(ft::fork(T, U));
    return *this;
  }
  TraceBuilder &join(ThreadId T, ThreadId U) {
    Result.append(ft::join(T, U));
    return *this;
  }
  TraceBuilder &volRd(ThreadId T, VolatileId V) {
    Result.append(ft::volRd(T, V));
    return *this;
  }
  TraceBuilder &volWr(ThreadId T, VolatileId V) {
    Result.append(ft::volWr(T, V));
    return *this;
  }
  TraceBuilder &barrier(const std::vector<ThreadId> &Threads) {
    Result.appendBarrier(Threads);
    return *this;
  }
  TraceBuilder &atomicBegin(ThreadId T) {
    Result.append(ft::atomicBegin(T));
    return *this;
  }
  TraceBuilder &atomicEnd(ThreadId T) {
    Result.append(ft::atomicEnd(T));
    return *this;
  }

  /// Appends a lock-protected access sequence acq(t,m) op rel(t,m).
  TraceBuilder &lockedRd(ThreadId T, LockId M, VarId X) {
    return acq(T, M).rd(T, X).rel(T, M);
  }
  TraceBuilder &lockedWr(ThreadId T, LockId M, VarId X) {
    return acq(T, M).wr(T, X).rel(T, M);
  }

  /// Returns the built trace, leaving the builder empty.
  Trace take() { return std::move(Result); }

  /// Peeks at the trace built so far.
  const Trace &trace() const { return Result; }

private:
  Trace Result;
};

} // namespace ft

#endif // FASTTRACK_TRACE_TRACEBUILDER_H
