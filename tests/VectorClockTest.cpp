//===--- VectorClockTest.cpp - vector clock algebra laws ------------------===//

#include "clock/ClockArena.h"
#include "clock/VectorClock.h"

#include <gtest/gtest.h>

using namespace ft;

TEST(VectorClock, BottomIsAllZero) {
  VectorClock V;
  EXPECT_TRUE(V.isBottom());
  EXPECT_EQ(V.get(0), 0u);
  EXPECT_EQ(V.get(100), 0u);
}

TEST(VectorClock, SetAndGet) {
  VectorClock V;
  V.set(3, 7);
  EXPECT_EQ(V.get(3), 7u);
  EXPECT_EQ(V.get(0), 0u);
  EXPECT_EQ(V.get(4), 0u);
  EXPECT_FALSE(V.isBottom());
}

TEST(VectorClock, IncIncrementsOnlyOneEntry) {
  VectorClock V;
  V.inc(2);
  V.inc(2);
  V.inc(0);
  EXPECT_EQ(V.get(2), 2u);
  EXPECT_EQ(V.get(0), 1u);
  EXPECT_EQ(V.get(1), 0u);
}

TEST(VectorClock, JoinIsPointwiseMax) {
  VectorClock A, B;
  A.set(0, 4);
  A.set(1, 0);
  B.set(0, 2);
  B.set(1, 8);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 4u);
  EXPECT_EQ(A.get(1), 8u);
}

TEST(VectorClock, JoinGrowsToLargerClock) {
  VectorClock A, B;
  B.set(5, 9);
  A.joinWith(B);
  EXPECT_EQ(A.get(5), 9u);
}

TEST(VectorClock, LeqIsPointwise) {
  VectorClock A, B;
  A.set(0, 4);
  B.set(0, 4);
  B.set(1, 8);
  EXPECT_TRUE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
}

TEST(VectorClock, LeqHandlesImplicitZeros) {
  VectorClock A, B;
  A.set(3, 1);
  EXPECT_TRUE(VectorClock().leq(A));
  EXPECT_FALSE(A.leq(VectorClock()));
}

TEST(VectorClock, LeqLawsOnSamples) {
  // Reflexivity, antisymmetry-ish (via ==), transitivity on a few samples.
  VectorClock A, B, C;
  A.set(0, 1);
  B.set(0, 1);
  B.set(1, 2);
  C.set(0, 3);
  C.set(1, 2);
  EXPECT_TRUE(A.leq(A));
  EXPECT_TRUE(A.leq(B));
  EXPECT_TRUE(B.leq(C));
  EXPECT_TRUE(A.leq(C));
}

TEST(VectorClock, JoinIsLeastUpperBoundOnSamples) {
  VectorClock A, B;
  A.set(0, 4);
  B.set(1, 8);
  VectorClock J = A;
  J.joinWith(B);
  EXPECT_TRUE(A.leq(J));
  EXPECT_TRUE(B.leq(J));
  // Any other upper bound dominates the join.
  VectorClock U;
  U.set(0, 9);
  U.set(1, 9);
  EXPECT_TRUE(J.leq(U));
}

TEST(VectorClock, EqualityIgnoresTrailingZeros) {
  VectorClock A, B;
  A.set(0, 1);
  B.set(0, 1);
  B.set(5, 0);
  EXPECT_TRUE(A == B);
}

TEST(VectorClock, EpochLeqMatchesPaperDefinition) {
  // c@t ≼ V iff c ≤ V(t). The Section 3 example: 4@0 ≼ <4,8,...> holds.
  VectorClock C1;
  C1.set(0, 4);
  C1.set(1, 8);
  EXPECT_TRUE(C1.epochLeq(Epoch::make(0, 4)));
  EXPECT_TRUE(C1.epochLeq(Epoch::make(1, 8)));
  EXPECT_FALSE(C1.epochLeq(Epoch::make(0, 5)));
  EXPECT_TRUE(C1.epochLeq(Epoch())); // ⊥e ≼ anything
}

TEST(VectorClock, EpochOfExtractsCurrentEpoch) {
  VectorClock C;
  C.set(2, 9);
  EXPECT_EQ(C.epochOf(2), Epoch::make(2, 9));
  EXPECT_EQ(C.epochOf(0), Epoch::make(0, 0));
}

TEST(VectorClock, StrRendersEntries) {
  VectorClock C;
  C.set(0, 4);
  C.set(1, 8);
  EXPECT_EQ(C.str(), "<4,8>");
  EXPECT_EQ(C.str(3), "<4,8,0>");
}

TEST(VectorClockStats, CountsAllocationsAndOps) {
  resetClockStats();
  {
    VectorClock A(4);
    VectorClock B(4);
    A.joinWith(B);
    (void)A.leq(B);
    VectorClock C = A; // copy: allocation + copy op
    (void)C;
  }
  ClockStats S = clockStats();
  EXPECT_EQ(S.Allocations, 3u);
  EXPECT_EQ(S.JoinOps, 1u);
  EXPECT_EQ(S.CompareOps, 1u);
  EXPECT_EQ(S.CopyOps, 1u);
  EXPECT_EQ(S.totalOps(), 3u);
}

TEST(VectorClockStats, EpochLeqIsNotCounted) {
  resetClockStats();
  VectorClock C(8);
  for (int I = 0; I != 100; ++I)
    (void)C.epochLeq(Epoch::make(0, 1));
  EXPECT_EQ(clockStats().totalOps(), 0u);
}

TEST(VectorClockStats, DeltaSubtraction) {
  resetClockStats();
  VectorClock A(2), B(2);
  ClockStats Before = clockStats();
  A.joinWith(B);
  ClockStats Delta = clockStats() - Before;
  EXPECT_EQ(Delta.JoinOps, 1u);
  EXPECT_EQ(Delta.Allocations, 0u);
}

TEST(VectorClock, MemoryBytesReflectsCapacity) {
  VectorClock V(16);
  EXPECT_GE(V.memoryBytes(), 16 * sizeof(ClockValue));
  EXPECT_EQ(VectorClock().memoryBytes(), 0u);
}

TEST(VectorClock, MoveDoesNotCountAllocation) {
  resetClockStats();
  VectorClock A(4);
  uint64_t After = clockStats().Allocations;
  VectorClock B = std::move(A);
  (void)B;
  EXPECT_EQ(clockStats().Allocations, After);
}

// --- inline/heap boundary (small-buffer storage) ---

TEST(VectorClock, GrowsAcrossInlineBoundaryPreservingEntries) {
  VectorClock V;
  for (ThreadId T = 0; T != VectorClock::InlineCapacity; ++T)
    V.set(T, T + 1);
  EXPECT_EQ(V.memoryBytes(), 0u) << "inline storage owns no heap";
  V.set(VectorClock::InlineCapacity, 99); // spills to a heap block
  EXPECT_GE(V.memoryBytes(),
            (VectorClock::InlineCapacity + 1) * sizeof(ClockValue));
  for (ThreadId T = 0; T != VectorClock::InlineCapacity; ++T)
    EXPECT_EQ(V.get(T), T + 1) << "entry " << T << " lost in the spill";
  EXPECT_EQ(V.get(VectorClock::InlineCapacity), 99u);
}

TEST(VectorClock, ImplicitZerosPastStoredSizeAfterSpill) {
  VectorClock V;
  V.set(20, 5); // heap-backed, size 21, capacity larger
  EXPECT_EQ(V.size(), 21u);
  EXPECT_EQ(V.get(10), 0u);
  EXPECT_EQ(V.get(21), 0u);
  EXPECT_EQ(V.get(1000), 0u);
  V.inc(25); // grow within the same block
  EXPECT_EQ(V.get(25), 1u);
  EXPECT_EQ(V.get(24), 0u);
}

TEST(VectorClock, JoinAcrossDifferentStoredSizes) {
  VectorClock Small, Large;
  Small.set(2, 7);                 // inline, size 3
  Large.set(20, 4);                // heap, size 21
  Large.set(2, 1);

  VectorClock A = Small;
  A.joinWith(Large);               // inline clock absorbs a heap clock
  EXPECT_EQ(A.get(2), 7u);
  EXPECT_EQ(A.get(20), 4u);
  EXPECT_EQ(A.size(), 21u);

  VectorClock B = Large;
  B.joinWith(Small);               // heap clock absorbs an inline clock
  EXPECT_EQ(B.get(2), 7u);
  EXPECT_EQ(B.get(20), 4u);
  EXPECT_TRUE(A == B) << "join must commute across representations";
}

TEST(VectorClock, JoinAtNonMultipleOfFourSizes) {
  // The join loop pads its trip count to 4 lanes; sizes 5 and 7 exercise
  // both a padded tail read and a padded tail write.
  VectorClock A, B;
  for (ThreadId T = 0; T != 5; ++T)
    A.set(T, 10 + T);
  for (ThreadId T = 0; T != 7; ++T)
    B.set(T, 14 - T);
  A.joinWith(B);
  for (ThreadId T = 0; T != 7; ++T)
    EXPECT_EQ(A.get(T), std::max<ClockValue>(T < 5 ? 10 + T : 0, 14 - T));
  EXPECT_EQ(A.get(7), 0u);
}

TEST(VectorClock, LeqAcrossDifferentStoredSizes) {
  VectorClock Wide, Narrow;
  Wide.set(10, 3); // heap, size 11
  Narrow.set(1, 5); // inline, size 2
  EXPECT_FALSE(Wide.leq(Narrow)) << "entry 10 faces an implicit zero";
  EXPECT_FALSE(Narrow.leq(Wide)) << "entry 1 faces an implicit zero";
  Wide.set(1, 5);
  EXPECT_FALSE(Wide.leq(Narrow));
  Wide.set(10, 0); // stored zero past Narrow's size is not a violation
  EXPECT_TRUE(Wide.leq(Narrow));
  EXPECT_TRUE(Narrow.leq(Wide));
}

TEST(VectorClock, ResetToBottomKeepsBufferAndSize) {
  VectorClock V;
  V.set(20, 5);
  size_t Bytes = V.memoryBytes();
  V.resetToBottom();
  EXPECT_TRUE(V.isBottom());
  EXPECT_EQ(V.size(), 21u) << "reset recycles the buffer, not the size";
  EXPECT_EQ(V.memoryBytes(), Bytes) << "reset must not release the buffer";
  uint64_t Allocs = clockStats().Allocations;
  V.set(5, 1); // refill after recycle: no new materialization
  EXPECT_EQ(clockStats().Allocations, Allocs);
  EXPECT_EQ(V.get(5), 1u);
  EXPECT_EQ(V.get(20), 0u);
}

TEST(VectorClock, MemoryBytesInlineVsHeap) {
  EXPECT_EQ(VectorClock().memoryBytes(), 0u);
  EXPECT_EQ(VectorClock(VectorClock::InlineCapacity).memoryBytes(), 0u);
  VectorClock Spilled(VectorClock::InlineCapacity + 1);
  EXPECT_GE(Spilled.memoryBytes(),
            (VectorClock::InlineCapacity + 1) * sizeof(ClockValue));
}

TEST(VectorClock, AssignShrinkZeroesAbandonedTail) {
  VectorClock Wide, Narrow;
  Wide.set(6, 9); // size 7
  Narrow.set(0, 1); // size 1
  Wide = Narrow; // shrink in place: entries 1..6 must become zero
  EXPECT_EQ(Wide.size(), 1u);
  EXPECT_EQ(Wide.get(0), 1u);
  Wide.joinWith(VectorClock(7)); // re-expose entries 1..6
  for (ThreadId T = 1; T != 7; ++T)
    EXPECT_EQ(Wide.get(T), 0u) << "stale entry " << T << " after shrink";
}

// --- ClockStats accounting pinned across spellings ---

TEST(VectorClockStats, CopyCountsOnceRegardlessOfSpelling) {
  resetClockStats();
  VectorClock A(4);
  A.set(0, 3);

  VectorClock ByCtor = A;
  EXPECT_EQ(clockStats().CopyOps, 1u);

  VectorClock ByAssign;
  ByAssign = A;
  EXPECT_EQ(clockStats().CopyOps, 2u);

  VectorClock ByCopyFrom;
  ByCopyFrom.copyFrom(A);
  EXPECT_EQ(clockStats().CopyOps, 3u);

  // Each spelling also materialized one fresh clock (plus A itself).
  EXPECT_EQ(clockStats().Allocations, 4u);
}

TEST(VectorClockStats, CopyFromEmptySourceCountsNothing) {
  resetClockStats();
  VectorClock Empty;
  VectorClock ByCtor = Empty;
  VectorClock ByAssign;
  ByAssign = Empty;
  VectorClock ByCopyFrom;
  ByCopyFrom.copyFrom(Empty);
  EXPECT_EQ(clockStats().CopyOps, 0u);
  EXPECT_EQ(clockStats().Allocations, 0u);
}

TEST(VectorClockStats, AssignOntoMaterializedClockCountsCopyOnly) {
  resetClockStats();
  VectorClock A(4), B(4);
  A.set(0, 1);
  EXPECT_EQ(clockStats().Allocations, 2u);
  B = A; // B already owns a buffer: copy, no allocation
  EXPECT_EQ(clockStats().CopyOps, 1u);
  EXPECT_EQ(clockStats().Allocations, 2u);
}

TEST(VectorClockStats, SelfAssignCountsNothing) {
  resetClockStats();
  VectorClock A(4);
  A = *&A;
  A.copyFrom(A);
  EXPECT_EQ(clockStats().CopyOps, 0u);
}

TEST(VectorClockStats, GrowthOfMaterializedClockIsNotAnAllocation) {
  resetClockStats();
  VectorClock V;
  V.set(0, 1); // materializes
  EXPECT_EQ(clockStats().Allocations, 1u);
  V.set(20, 2); // grows across the inline boundary: arena traffic, not
                // a counted allocation
  V.set(200, 3);
  EXPECT_EQ(clockStats().Allocations, 1u);
}

// --- the arena behind heap-backed clocks ---

TEST(ClockArena, RecyclesReleasedBlocks) {
  { // Park at least one block of the class a size-21 clock uses.
    VectorClock V;
    V.set(20, 5);
  }
  ClockArena::resetStats();
  {
    VectorClock V;
    V.set(20, 5); // same class: must come from the free list
    EXPECT_EQ(V.get(20), 5u);
    EXPECT_EQ(V.get(10), 0u) << "recycled block leaked old entries";
  }
  ClockArenaStats S = ClockArena::stats();
  EXPECT_EQ(S.FreshBlocks, 0u) << "steady-state growth hit the allocator";
  EXPECT_GE(S.ReusedBlocks, 1u);
}

TEST(ClockArena, ReusedBlocksComeBackZeroed) {
  {
    VectorClock V;
    for (ThreadId T = 0; T != 30; ++T)
      V.set(T, 0xDEAD);
  }
  VectorClock V;
  V.set(29, 1); // same size class as the poisoned block
  for (ThreadId T = 0; T != 29; ++T)
    EXPECT_EQ(V.get(T), 0u) << "entry " << T;
}
