//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sync spine: per-thread vector clocks at synchronization points of
/// a trace, precomputed once by a serial pass.
///
/// The Figure 3 rules make the C (thread) and L (lock/volatile) clocks a
/// function of the sync events alone — data accesses never feed back into
/// them. The spine exploits that: it applies exactly
/// VectorClockToolBase's rules to a standalone (C, L) state and records
/// the thread clocks that sharded workers will need. Spine-driven shard
/// workers then *install* these recorded clocks (a pointer store — the
/// spine is immutable and outlives the workers) instead of re-deriving
/// them, and the L component is never replicated per worker at all.
///
/// Two laziness levels keep the spine small and the serial pre-pass
/// short (it is the Amdahl bound on parallel speedup):
///
///   - Recording is deferred to each thread's first data access after
///     its clock changed, so sync churn between two accesses by the same
///     thread collapses into one recorded clock, and threads that stop
///     accessing data stop costing anything. The recorded OpIndex is the
///     index of the last sync event that changed the clock.
///   - Workers install updates lazily per accessing thread: at an access
///     by thread t, fast-forward t's cursor and install just the latest
///     preceding clock. This is sound because the access rules of every
///     spine-driven detector read only the *accessing* thread's clock.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_SYNCSPINE_H
#define FASTTRACK_FRAMEWORK_SYNCSPINE_H

#include "clock/VectorClock.h"
#include "trace/Trace.h"

#include <vector>

namespace ft {

/// One recorded thread-clock state.
struct SpineUpdate {
  uint32_t OpIndex;  ///< Last sync event that changed the clock.
  VectorClock Clock; ///< The thread's clock after that event.
};

/// The spine of one trace, keyed by thread: PerThread[t] holds the
/// recorded states of C_t in ascending OpIndex order.
struct SyncSpine {
  std::vector<std::vector<SpineUpdate>> PerThread;

  /// Total updates across all threads.
  size_t numUpdates() const;
  /// Heap bytes held by the recorded clocks.
  size_t memoryBytes() const;
};

/// Everything the spine-driven engine precomputes, in one trace pass.
struct SpinePrePass {
  /// The dispatched sync schedule (re-entrant lock events stripped when
  /// requested), as collectSyncOps would return it.
  std::vector<uint32_t> SyncOps;
  SyncSpine Spine;
};

/// Builds the sync schedule and the spine in a single pass over \p T.
/// The initial clock state matches VectorClockToolBase::begin — every
/// thread starts at inc_t(⊥V) — so a freshly begun clone plus the
/// spine's updates reconstructs the serial clock sequence exactly at
/// every access.
SpinePrePass buildSyncSpine(const Trace &T, bool FilterReentrantLocks);

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_SYNCSPINE_H
