//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static elision analysis: classify every shared-variable access
/// site of a resolved MiniConc program so the planner (Elision.h) can
/// compile away the instrumentation the detector never needed.
///
/// The pass runs between Sema and execution and assigns each shared
/// *variable* (scalars individually, arrays as one unit) one verdict:
///
///   - **ThreadLocal** — after excluding main's pre-fork initialization
///     accesses (which happen-before every forked thread via the fork
///     edge), at most one dynamic thread can ever touch the variable.
///     No conflicting concurrent pair exists on any schedule.
///   - **LockConsistent** — some common lock is in the must-hold set of
///     every (post-pre-fork) access site. Any two conflicting accesses
///     sit in critical sections on that lock, so the rel→acq edge
///     orders them on every schedule.
///   - **MustInstrument** — neither proof applies; every access keeps
///     its event.
///
/// Eliding the rd/wr events of a ThreadLocal or LockConsistent variable
/// is *race-preserving*: access events never contribute happens-before
/// edges (only acq/rel/fork/join/volatile/barrier events move clocks),
/// so removing them cannot change any other variable's warnings, and
/// the elided variable itself was just proven warning-free on every
/// schedule. The full argument, and why each sub-analysis only ever
/// over-approximates, is in docs/ARCHITECTURE.md ("The elision layer");
/// the AnalysisTest soundness harness checks it program-by-program
/// against the happens-before oracle.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_ANALYSIS_ANALYSIS_H
#define FASTTRACK_ANALYSIS_ANALYSIS_H

#include "lang/Ast.h"

#include <string>
#include <vector>

namespace ft::analysis {

enum class Verdict : uint8_t { MustInstrument, ThreadLocal, LockConsistent };

/// "must-instrument" / "thread-local" / "lock-consistent".
const char *verdictName(Verdict V);

/// One classified access site (one rd/wr-emitting AST node).
struct SiteReport {
  unsigned Line = 0;
  unsigned Column = 0;
  std::string Function; ///< Enclosing function name.
  std::string Variable; ///< Declared name (arrays unsubscripted).
  uint32_t GlobalIndex = 0; ///< Index into Program.Globals.
  bool IsWrite = false;
  bool PreFork = false; ///< Runs only before the first possible fork.
  std::vector<std::string> HeldLocks; ///< Must-held lock names at site.
  Verdict V = Verdict::MustInstrument; ///< The variable's verdict.
  std::string Reason;
  lang::Expr *Node = nullptr; ///< For the planner; not for display.
};

/// One classified shared variable (scalar or whole array).
struct VarClass {
  std::string Name;
  uint32_t GlobalIndex = 0;
  Verdict V = Verdict::MustInstrument;
  std::string Reason;
  unsigned NumSites = 0; ///< Access sites of this variable.
};

struct AnalysisResult {
  std::vector<SiteReport> Sites; ///< In AST walk order.
  std::vector<VarClass> Vars;    ///< One per Program.Globals entry.
};

/// Classifies every shared-access site of \p P, which must have been
/// successfully resolved (Sema). Does not modify the AST; the planner
/// in Elision.h lowers the result into per-site ElideEvent stamps.
AnalysisResult analyzeProgram(lang::Program &P);

} // namespace ft::analysis

#endif // FASTTRACK_ANALYSIS_ANALYSIS_H
