#include "support/Format.h"

#include <cstdio>

using namespace ft;

std::string ft::withCommas(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  Result.reserve(Digits.size() + Digits.size() / 3);
  size_t Lead = Digits.size() % 3;
  if (Lead == 0)
    Lead = 3;
  for (size_t I = 0; I != Digits.size(); ++I) {
    if (I != 0 && (I - Lead) % 3 == 0 && I >= Lead)
      Result += ',';
    Result += Digits[I];
  }
  return Result;
}

std::string ft::fixed(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string ft::humanBytes(uint64_t Bytes) {
  static const char *Units[] = {"B", "KB", "MB", "GB", "TB"};
  double Scaled = static_cast<double>(Bytes);
  unsigned Unit = 0;
  while (Scaled >= 1024.0 && Unit + 1 < 5) {
    Scaled /= 1024.0;
    ++Unit;
  }
  return fixed(Scaled, Unit == 0 ? 0 : 1) + " " + Units[Unit];
}

std::string ft::slowdown(double Ratio) { return fixed(Ratio, 1) + "x"; }

std::string ft::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string ft::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}
