//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "framework/FastDispatch.h"

#include <vector>

namespace ft {

namespace {

std::vector<FastDispatchEntry> &fastDispatchRegistry() {
  static std::vector<FastDispatchEntry> Registry;
  return Registry;
}

} // namespace

void registerFastDispatch(FastDispatchEntry Entry) {
  fastDispatchRegistry().push_back(Entry);
}

FastDispatchRunFn resolveFastDispatch(const Tool &Checker) {
  for (const FastDispatchEntry &Entry : fastDispatchRegistry())
    if (Entry.Matches(Checker))
      return Entry.Run;
  return nullptr;
}

} // namespace ft
