//===----------------------------------------------------------------------===//
//
// Experiment E1 — Figure 2/3 annotations: the operation mix of the
// benchmark suite and the firing frequency of every FastTrack (and
// DJIT+) analysis rule, printed next to the paper's measured numbers.
//
// Paper: reads 82.3% / writes 14.5% / sync 3.3%;
//   FastTrack reads:  SAME EPOCH 63.4%, SHARED 20.8%, EXCLUSIVE 15.7%,
//                     SHARE 0.1%;
//   FastTrack writes: SAME EPOCH 71.0%, EXCLUSIVE 28.9%, SHARED 0.1%;
//   DJIT+: READ SAME EPOCH 78.0%, WRITE SAME EPOCH 71.0%.
// Constant-time fast paths handle upwards of 96% of all operations.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FastTrack.h"
#include "detectors/DjitPlus.h"
#include "support/Table.h"
#include "trace/TraceStats.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace ft;
using namespace ft::bench;

int main(int argc, char **argv) {
  BenchReport Report("bench_rule_frequency", argc, argv);
  banner("Figure 2/3: operation mix and analysis-rule frequencies");

  TraceStats Mix;
  FastTrackRuleStats Ft;
  DjitRuleStats Djit;

  auto addStats = [](TraceStats &Into, const TraceStats &From) {
    Into.Reads += From.Reads;
    Into.Writes += From.Writes;
    Into.Acquires += From.Acquires;
    Into.Releases += From.Releases;
    Into.Forks += From.Forks;
    Into.Joins += From.Joins;
    Into.VolatileReads += From.VolatileReads;
    Into.VolatileWrites += From.VolatileWrites;
    Into.Barriers += From.Barriers;
    Into.AtomicMarkers += From.AtomicMarkers;
  };

  for (const Workload &W : benchmarkSuite()) {
    Trace T = W.Generate(/*Seed=*/1, sizeFactor());
    addStats(Mix, computeStats(T));

    FastTrack FtTool;
    replay(T, FtTool);
    const FastTrackRuleStats &R = FtTool.ruleStats();
    Ft.ReadSameEpoch += R.ReadSameEpoch;
    Ft.ReadShared += R.ReadShared;
    Ft.ReadExclusive += R.ReadExclusive;
    Ft.ReadShare += R.ReadShare;
    Ft.WriteSameEpoch += R.WriteSameEpoch;
    Ft.WriteExclusive += R.WriteExclusive;
    Ft.WriteShared += R.WriteShared;

    DjitPlus DjitTool;
    replay(T, DjitTool);
    Djit.ReadSameEpoch += DjitTool.ruleStats().ReadSameEpoch;
    Djit.ReadGeneral += DjitTool.ruleStats().ReadGeneral;
    Djit.WriteSameEpoch += DjitTool.ruleStats().WriteSameEpoch;
    Djit.WriteGeneral += DjitTool.ruleStats().WriteGeneral;
  }

  auto pct = [](uint64_t Part, uint64_t Whole) {
    return Whole ? fixed(100.0 * Part / Whole, 1) + "%" : "-";
  };

  Table MixTable;
  MixTable.addHeader({"Operation class", "Measured", "Paper"});
  MixTable.addRow({"reads", pct(Mix.Reads, Mix.total()), "82.3%"});
  MixTable.addRow({"writes", pct(Mix.Writes, Mix.total()), "14.5%"});
  MixTable.addRow({"sync + threading", pct(Mix.syncOps(), Mix.total()),
                   "3.3%"});
  std::fputs(MixTable.render().c_str(), stdout);

  Table Rules;
  Rules.addHeader({"Rule", "Measured", "Paper"});
  Rules.addRow({"[FT READ SAME EPOCH]", pct(Ft.ReadSameEpoch, Ft.reads()),
                "63.4%"});
  Rules.addRow({"[FT READ SHARED]", pct(Ft.ReadShared, Ft.reads()), "20.8%"});
  Rules.addRow({"[FT READ EXCLUSIVE]", pct(Ft.ReadExclusive, Ft.reads()),
                "15.7%"});
  Rules.addRow({"[FT READ SHARE]", pct(Ft.ReadShare, Ft.reads()), "0.1%"});
  Rules.addRow({"[FT WRITE SAME EPOCH]", pct(Ft.WriteSameEpoch, Ft.writes()),
                "71.0%"});
  Rules.addRow({"[FT WRITE EXCLUSIVE]", pct(Ft.WriteExclusive, Ft.writes()),
                "28.9%"});
  Rules.addRow({"[FT WRITE SHARED]", pct(Ft.WriteShared, Ft.writes()),
                "0.1%"});
  Rules.addSeparator();
  Rules.addRow({"[DJIT+ READ SAME EPOCH]",
                pct(Djit.ReadSameEpoch, Djit.reads()), "78.0%"});
  Rules.addRow({"[DJIT+ READ] (O(n))", pct(Djit.ReadGeneral, Djit.reads()),
                "22.0%"});
  Rules.addRow({"[DJIT+ WRITE SAME EPOCH]",
                pct(Djit.WriteSameEpoch, Djit.writes()), "71.0%"});
  Rules.addRow({"[DJIT+ WRITE] (O(n))", pct(Djit.WriteGeneral, Djit.writes()),
                "29.0%"});
  std::printf("\n");
  std::fputs(Rules.render().c_str(), stdout);

  uint64_t Accesses = Ft.reads() + Ft.writes();
  uint64_t FastPath = Ft.fastPathOps();
  std::printf("\nConstant-time fast paths handled %s of %s accesses "
              "(%.2f%%; paper: >99%% of reads+writes, >96%% of all ops).\n",
              withCommas(FastPath).c_str(), withCommas(Accesses).c_str(),
              Accesses ? 100.0 * FastPath / Accesses : 0.0);
  auto frac = [](uint64_t Part, uint64_t Whole) {
    return Whole ? 100.0 * double(Part) / double(Whole) : 0.0;
  };
  Report.metric("reads_pct", frac(Mix.Reads, Mix.total()), "%");
  Report.metric("writes_pct", frac(Mix.Writes, Mix.total()), "%");
  Report.metric("sync_pct", frac(Mix.syncOps(), Mix.total()), "%");
  Report.metric("ft_read_same_epoch_pct", frac(Ft.ReadSameEpoch, Ft.reads()),
                "%");
  Report.metric("ft_write_same_epoch_pct", frac(Ft.WriteSameEpoch, Ft.writes()),
                "%");
  Report.metric("fast_path_pct", frac(FastPath, Accesses), "%");
  return Report.write() ? 0 : 1;
}
