//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable-sharded partitioning of a trace, the basis of the parallel
/// replay engine (docs/ARCHITECTURE.md, "Sharded replay").
///
/// The access rules of every sharding-compatible detector touch only the
/// shadow state of the accessed variable plus the accessing thread's
/// synchronization state, and the synchronization state itself evolves
/// independently of data accesses. A trace therefore splits into
///
///   - one shared *sync schedule*: the non-access operations that the
///     replay engine would dispatch (after re-entrant lock filtering),
///     identical for every shard; and
///   - per-shard *access schedules*: the rd/wr operations whose (possibly
///     granularity-remapped) variable hashes into the shard,
///
/// such that replaying shard k's accesses interleaved with the sync
/// schedule — in original trace order — visits exactly the serial
/// engine's state sequence for shard k's variables.
///
/// The access schedules are never materialized: shard membership is the
/// pure test `MapVar(x) % NumShards == k`, so each worker scans the
/// (immutable, shared) trace and filters its own accesses — parallel
/// work instead of a serial pre-pass. Only the sync schedule is
/// collected up front; it feeds the sync spine and the engine's event
/// accounting.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_SHARDPARTITION_H
#define FASTTRACK_TRACE_SHARDPARTITION_H

#include "trace/Trace.h"

#include <vector>

namespace ft {

/// Returns the indices of the non-access operations the replay engine
/// would dispatch, in trace order. With \p FilterReentrantLocks,
/// re-entrant acquire/release pairs are stripped exactly as the serial
/// engine strips them, so spine construction sees the same lock events
/// the tools would.
std::vector<uint32_t> collectSyncOps(const Trace &T,
                                     bool FilterReentrantLocks);

} // namespace ft

#endif // FASTTRACK_TRACE_SHARDPARTITION_H
