#include "lang/Lexer.h"

#include <cctype>
#include <utility>

using namespace ft::lang;

const char *ft::lang::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwShared:
    return "'shared'";
  case TokenKind::KwVolatile:
    return "'volatile'";
  case TokenKind::KwLock:
    return "'lock'";
  case TokenKind::KwBarrier:
    return "'barrier'";
  case TokenKind::KwFn:
    return "'fn'";
  case TokenKind::KwLocal:
    return "'local'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwSync:
    return "'sync'";
  case TokenKind::KwAtomic:
    return "'atomic'";
  case TokenKind::KwSpawn:
    return "'spawn'";
  case TokenKind::KwJoin:
    return "'join'";
  case TokenKind::KwAwait:
    return "'await'";
  case TokenKind::KwWait:
    return "'wait'";
  case TokenKind::KwNotify:
    return "'notify'";
  case TokenKind::KwNotifyAll:
    return "'notifyall'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::AndAnd:
    return "'&&'";
  case TokenKind::OrOr:
    return "'||'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  }
  return "?";
}

namespace {

struct KeywordEntry {
  const char *Name;
  TokenKind Kind;
};

const KeywordEntry Keywords[] = {
    {"shared", TokenKind::KwShared},   {"volatile", TokenKind::KwVolatile},
    {"lock", TokenKind::KwLock},       {"barrier", TokenKind::KwBarrier},
    {"fn", TokenKind::KwFn},           {"local", TokenKind::KwLocal},
    {"let", TokenKind::KwLet},         {"if", TokenKind::KwIf},
    {"else", TokenKind::KwElse},       {"while", TokenKind::KwWhile},
    {"sync", TokenKind::KwSync},       {"atomic", TokenKind::KwAtomic},
    {"spawn", TokenKind::KwSpawn},     {"join", TokenKind::KwJoin},
    {"await", TokenKind::KwAwait},     {"print", TokenKind::KwPrint},
    {"wait", TokenKind::KwWait},       {"notify", TokenKind::KwNotify},
    {"notifyall", TokenKind::KwNotifyAll},
    {"return", TokenKind::KwReturn},
};

class LexerImpl {
public:
  explicit LexerImpl(std::string_view Source) : Source(Source) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    while (true) {
      Token Tok = next();
      bool AtEnd = Tok.Kind == TokenKind::Eof;
      Tokens.push_back(std::move(Tok));
      if (AtEnd)
        break;
    }
    return Tokens;
  }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }

  bool skipTrivia(Token &ErrorOut) {
    while (Pos < Source.size()) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (Pos < Source.size() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        unsigned StartLine = Line, StartColumn = Column;
        advance();
        advance();
        while (Pos < Source.size() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (Pos >= Source.size()) {
          ErrorOut = makeToken(TokenKind::Error, StartLine, StartColumn);
          ErrorOut.Text = "unterminated block comment";
          return false;
        }
        advance();
        advance();
        continue;
      }
      break;
    }
    return true;
  }

  Token makeToken(TokenKind Kind, unsigned TokLine, unsigned TokColumn) {
    Token Tok;
    Tok.Kind = Kind;
    Tok.Line = TokLine;
    Tok.Column = TokColumn;
    return Tok;
  }

  Token next() {
    Token ErrorTok;
    if (!skipTrivia(ErrorTok))
      return ErrorTok;
    if (Pos >= Source.size())
      return makeToken(TokenKind::Eof, Line, Column);

    unsigned TokLine = Line, TokColumn = Column;
    char C = advance();

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Name(1, C);
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_')
        Name += advance();
      for (const KeywordEntry &Entry : Keywords)
        if (Name == Entry.Name)
          return makeToken(Entry.Kind, TokLine, TokColumn);
      Token Tok = makeToken(TokenKind::Identifier, TokLine, TokColumn);
      Tok.Text = std::move(Name);
      return Tok;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t Value = C - '0';
      bool Overflow = false;
      std::string Spelling(1, C);
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        char D = advance();
        Spelling += D;
        if (Value > (INT64_MAX - (D - '0')) / 10)
          Overflow = true;
        else
          Value = Value * 10 + (D - '0');
      }
      if (Overflow) {
        Token Tok = makeToken(TokenKind::Error, TokLine, TokColumn);
        Tok.Text = "integer literal '" + Spelling + "' overflows";
        return Tok;
      }
      Token Tok = makeToken(TokenKind::IntLiteral, TokLine, TokColumn);
      Tok.Text = std::move(Spelling);
      Tok.IntValue = Value;
      return Tok;
    }

    auto simple = [&](TokenKind Kind) { return makeToken(Kind, TokLine, TokColumn); };
    switch (C) {
    case '(':
      return simple(TokenKind::LParen);
    case ')':
      return simple(TokenKind::RParen);
    case '{':
      return simple(TokenKind::LBrace);
    case '}':
      return simple(TokenKind::RBrace);
    case '[':
      return simple(TokenKind::LBracket);
    case ']':
      return simple(TokenKind::RBracket);
    case ',':
      return simple(TokenKind::Comma);
    case ';':
      return simple(TokenKind::Semicolon);
    case '+':
      return simple(TokenKind::Plus);
    case '-':
      return simple(TokenKind::Minus);
    case '*':
      return simple(TokenKind::Star);
    case '/':
      return simple(TokenKind::Slash);
    case '%':
      return simple(TokenKind::Percent);
    case '=':
      if (peek() == '=') {
        advance();
        return simple(TokenKind::EqEq);
      }
      return simple(TokenKind::Assign);
    case '<':
      if (peek() == '=') {
        advance();
        return simple(TokenKind::Le);
      }
      return simple(TokenKind::Lt);
    case '>':
      if (peek() == '=') {
        advance();
        return simple(TokenKind::Ge);
      }
      return simple(TokenKind::Gt);
    case '!':
      if (peek() == '=') {
        advance();
        return simple(TokenKind::NotEq);
      }
      return simple(TokenKind::Not);
    case '&':
      if (peek() == '&') {
        advance();
        return simple(TokenKind::AndAnd);
      }
      break;
    case '|':
      if (peek() == '|') {
        advance();
        return simple(TokenKind::OrOr);
      }
      break;
    default:
      break;
    }
    Token Tok = makeToken(TokenKind::Error, TokLine, TokColumn);
    Tok.Text = std::string("unexpected character '") + C + "'";
    return Tok;
  }

  std::string_view Source;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace

std::vector<Token> ft::lang::lex(std::string_view Source) {
  return LexerImpl(Source).run();
}
