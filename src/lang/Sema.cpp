#include "lang/Sema.h"

#include "lang/Parser.h"

#include <map>

using namespace ft;
using namespace ft::lang;

namespace {

class Resolver {
public:
  Resolver(Program &P, std::vector<Diag> &Diags) : P(P), Diags(Diags) {}

  bool run() {
    size_t Before = Diags.size();
    assignGlobalIds();
    for (uint32_t I = 0; I != P.Functions.size(); ++I)
      resolveFunction(P.Functions[I]);
    checkMain();
    return Diags.size() == Before;
  }

private:
  void error(unsigned Line, unsigned Column, std::string Message) {
    Diags.push_back({Line, Column, std::move(Message)});
  }

  void checkUniqueGlobal(const std::string &Name, unsigned Line) {
    if (!GlobalNames.insert({Name, 0}).second)
      error(Line, 1, "duplicate global declaration of '" + Name + "'");
  }

  void assignGlobalIds() {
    VarId NextVar = 0;
    for (GlobalVar &Var : P.Globals) {
      checkUniqueGlobal(Var.Name, Var.Line);
      Var.BaseId = NextVar;
      NextVar += Var.Size;
      SharedByName[Var.Name] = &Var;
    }
    P.NumVarIds = NextVar;
    for (uint32_t I = 0; I != P.Volatiles.size(); ++I) {
      checkUniqueGlobal(P.Volatiles[I].Name, P.Volatiles[I].Line);
      P.Volatiles[I].Id = I;
      VolatileByName[P.Volatiles[I].Name] = I;
    }
    for (uint32_t I = 0; I != P.Locks.size(); ++I) {
      checkUniqueGlobal(P.Locks[I].Name, P.Locks[I].Line);
      P.Locks[I].Id = I;
      LockByName[P.Locks[I].Name] = I;
    }
    for (uint32_t I = 0; I != P.Barriers.size(); ++I) {
      checkUniqueGlobal(P.Barriers[I].Name, P.Barriers[I].Line);
      P.Barriers[I].Id = I;
      BarrierByName[P.Barriers[I].Name] = I;
    }
    for (uint32_t I = 0; I != P.Functions.size(); ++I) {
      const Function &Fn = P.Functions[I];
      if (!FunctionByName.insert({Fn.Name, I}).second)
        error(Fn.Line, 1, "duplicate function '" + Fn.Name + "'");
    }
  }

  void checkMain() {
    auto It = FunctionByName.find("main");
    if (It == FunctionByName.end()) {
      error(1, 1, "program has no 'fn main()'");
      return;
    }
    P.MainIndex = static_cast<int>(It->second);
    if (!P.Functions[It->second].Params.empty())
      error(P.Functions[It->second].Line, 1,
            "'fn main' must take no parameters");
  }

  //===--------------------------------------------------------------===//
  // Per-function resolution.
  //===--------------------------------------------------------------===//

  void resolveFunction(Function &Fn) {
    LocalSlots.clear();
    NextSlot = 0;
    for (const std::string &Param : Fn.Params) {
      if (LocalSlots.count(Param))
        error(Fn.Line, 1,
              "duplicate parameter '" + Param + "' in '" + Fn.Name + "'");
      LocalSlots[Param] = NextSlot++;
    }
    resolveStmt(*Fn.Body);
    Fn.NumLocals = NextSlot;
  }

  void resolveStmt(Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Block:
      for (StmtPtr &Child : S.Stmts)
        resolveStmt(*Child);
      return;
    case StmtKind::DeclLocal: {
      if (S.Value)
        resolveExpr(*S.Value);
      // Function-level scoping: redeclaration is an error, and the slot
      // is visible from here to the end of the function.
      auto [It, Inserted] = LocalSlots.insert({S.Name, NextSlot});
      if (!Inserted) {
        error(S.Line, S.Column, "redeclaration of local '" + S.Name + "'");
      } else {
        ++NextSlot;
      }
      S.RefIndex = It->second;
      return;
    }
    case StmtKind::Assign:
      resolveExpr(*S.Value);
      resolveExpr(*S.Target);
      if (S.Target->Kind == ExprKind::VarRef &&
          S.Target->Ref == RefKind::SharedArray)
        error(S.Target->Line, S.Target->Column,
              "cannot assign whole array '" + S.Target->Name + "'");
      return;
    case StmtKind::If:
      resolveExpr(*S.Value);
      resolveStmt(*S.Body);
      if (S.Else)
        resolveStmt(*S.Else);
      return;
    case StmtKind::While:
      resolveExpr(*S.Value);
      resolveStmt(*S.Body);
      return;
    case StmtKind::Sync: {
      auto It = LockByName.find(S.Name);
      if (It == LockByName.end())
        error(S.Line, S.Column, "unknown lock '" + S.Name + "'");
      else
        S.RefIndex = It->second;
      resolveStmt(*S.Body);
      return;
    }
    case StmtKind::Wait:
    case StmtKind::Notify:
    case StmtKind::NotifyAll: {
      auto It = LockByName.find(S.Name);
      if (It == LockByName.end())
        error(S.Line, S.Column, "unknown lock '" + S.Name + "'");
      else
        S.RefIndex = It->second;
      return;
    }
    case StmtKind::Atomic:
      resolveStmt(*S.Body);
      return;
    case StmtKind::Join:
    case StmtKind::Print:
    case StmtKind::ExprStmt:
      resolveExpr(*S.Value);
      return;
    case StmtKind::Await: {
      auto It = BarrierByName.find(S.Name);
      if (It == BarrierByName.end())
        error(S.Line, S.Column, "unknown barrier '" + S.Name + "'");
      else
        S.RefIndex = It->second;
      return;
    }
    case StmtKind::Return:
      if (S.Value)
        resolveExpr(*S.Value);
      return;
    }
  }

  void resolveExpr(Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      return;
    case ExprKind::VarRef: {
      // Locals shadow globals; then shared scalars, then volatiles.
      if (auto It = LocalSlots.find(E.Name); It != LocalSlots.end()) {
        E.Ref = RefKind::Local;
        E.RefIndex = It->second;
        return;
      }
      if (auto It = SharedByName.find(E.Name); It != SharedByName.end()) {
        const GlobalVar *Var = It->second;
        if (Var->Size != 1) {
          E.Ref = RefKind::SharedArray;
          E.RefIndex = Var->BaseId;
          E.ArraySize = Var->Size;
          error(E.Line, E.Column,
                "array '" + E.Name + "' must be subscripted");
          return;
        }
        E.Ref = RefKind::Shared;
        E.RefIndex = Var->BaseId;
        return;
      }
      if (auto It = VolatileByName.find(E.Name);
          It != VolatileByName.end()) {
        E.Ref = RefKind::Volatile;
        E.RefIndex = It->second;
        return;
      }
      error(E.Line, E.Column, "unknown variable '" + E.Name + "'");
      return;
    }
    case ExprKind::Index: {
      resolveExpr(*E.Lhs);
      auto It = SharedByName.find(E.Name);
      if (It == SharedByName.end() || It->second->Size == 1) {
        error(E.Line, E.Column, "'" + E.Name + "' is not a shared array");
        return;
      }
      E.Ref = RefKind::SharedArray;
      E.RefIndex = It->second->BaseId;
      E.ArraySize = It->second->Size;
      return;
    }
    case ExprKind::Unary:
      resolveExpr(*E.Lhs);
      return;
    case ExprKind::Binary:
      resolveExpr(*E.Lhs);
      resolveExpr(*E.Rhs);
      return;
    case ExprKind::Call:
    case ExprKind::Spawn: {
      for (ExprPtr &Arg : E.Args)
        resolveExpr(*Arg);
      auto It = FunctionByName.find(E.Name);
      if (It == FunctionByName.end()) {
        error(E.Line, E.Column, "unknown function '" + E.Name + "'");
        return;
      }
      E.CalleeIndex = It->second;
      const Function &Callee = P.Functions[It->second];
      if (Callee.Params.size() != E.Args.size())
        error(E.Line, E.Column,
              "'" + E.Name + "' expects " +
                  std::to_string(Callee.Params.size()) + " argument(s), got " +
                  std::to_string(E.Args.size()));
      return;
    }
    }
  }

  Program &P;
  std::vector<Diag> &Diags;

  std::map<std::string, int> GlobalNames;
  std::map<std::string, const GlobalVar *> SharedByName;
  std::map<std::string, uint32_t> VolatileByName;
  std::map<std::string, uint32_t> LockByName;
  std::map<std::string, uint32_t> BarrierByName;
  std::map<std::string, uint32_t> FunctionByName;

  std::map<std::string, uint32_t> LocalSlots;
  uint32_t NextSlot = 0;
};

} // namespace

bool ft::lang::resolveProgram(Program &P, std::vector<Diag> &Diags) {
  return Resolver(P, Diags).run();
}

bool ft::lang::compileProgram(std::string_view Source, Program &Out,
                              std::vector<Diag> &Diags) {
  if (!parseProgram(Source, Out, Diags))
    return false;
  return resolveProgram(Out, Diags);
}
