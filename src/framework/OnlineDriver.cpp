#include "framework/OnlineDriver.h"

#include "framework/FastDispatch.h"
#include "runtime/EventRing.h"
#include "support/MemoryTracker.h"

#include <algorithm>
#include <exception>

using namespace ft;

OnlineDriver::OnlineDriver(Tool &Checker, const ToolContext &Capacity,
                           OnlineDriverOptions Opts)
    : Checker(Checker), Capacity(Capacity), Options(std::move(Opts)),
      Reentrancy(Capacity.NumThreads, Capacity.NumLocks) {
  if (Options.Role != DriverRole::AdmissionOnly)
    FastRun = resolveFastDispatch(Checker);
  DegradePolicy &D = Options.Degrade;
  if (D.Enabled && D.Memory.Enabled) {
    // Offer self-governance to the tool before begin() (the policy takes
    // effect at the table's next reset). One budget knob governs both
    // layers: an unset table budget inherits the ladder's.
    ShadowMemoryPolicy M = D.Memory;
    if (M.BudgetBytes == 0)
      M.BudgetBytes = D.ShadowBudgetBytes;
    MemoryGoverned = Checker.configureShadowPolicy(M);
    if (MemoryGoverned)
      // The first memory-pressure transition is the in-table fold, taken
      // before any stream transform (see DegradeStep::Kind::ShadowSummarize).
      D.Ladder.insert(D.Ladder.begin(),
                      {DegradeStep::Kind::ShadowSummarize, 0});
  }
  if (D.Enabled && D.StartRung != 0) {
    Rung = D.StartRung < D.Ladder.size() ? D.StartRung
                                         : static_cast<unsigned>(D.Ladder.size());
    applyRung();
  }
  if (D.Enabled &&
      (D.ShadowBudgetBytes != 0 || MemoryGoverned ||
       Options.ForceBudgetBreachAtRawOp != OnlineDriverOptions::NoFault))
    NextProbe = std::max<unsigned>(1, D.BudgetCheckEveryOps);
  Checker.begin(Capacity);
}

void OnlineDriver::halt(std::string Message) {
  halt(StatusCode::ResourceExhausted, std::move(Message));
}

void OnlineDriver::halt(StatusCode Code, std::string Message) {
  Diagnostic D;
  D.Code = Code;
  D.Sev = Severity::Error;
  D.OpIndex = Raw;
  D.Message = std::move(Message);
  Diags.push_back(std::move(D));
  Halted = true;
}

/// Recomputes the effective transform from ladder steps [0, Rung).
void OnlineDriver::applyRung() {
  Divisor = 1;
  SampleEvery = 1;
  SyncOnlyMode = false;
  const std::vector<DegradeStep> &Ladder = Options.Degrade.Ladder;
  for (unsigned I = 0; I != Rung && I < Ladder.size(); ++I) {
    const DegradeStep &S = Ladder[I];
    switch (S.K) {
    case DegradeStep::Kind::CoarseGranularity:
      Divisor = std::max(1u, S.Param);
      break;
    case DegradeStep::Kind::AccessSampling:
      SampleEvery = std::max(1u, S.Param);
      break;
    case DegradeStep::Kind::SyncOnly:
      SyncOnlyMode = true;
      break;
    case DegradeStep::Kind::ShadowSummarize:
      // No stream transform: the precision fold happened inside the
      // governed shadow table. Crossing the rung records the transition.
      break;
    }
  }
}

bool OnlineDriver::stepDown(StatusCode Code, const std::string &Reason) {
  const DegradePolicy &D = Options.Degrade;
  if (!D.Enabled || Rung >= D.Ladder.size())
    return false;
  const DegradeStep &S = D.Ladder[Rung];
  ++Rung;
  ++Degradations;
  applyRung();
  std::string What;
  switch (S.K) {
  case DegradeStep::Kind::CoarseGranularity:
    What = "coarse granularity (divisor " + std::to_string(Divisor) + ")";
    break;
  case DegradeStep::Kind::AccessSampling:
    What = "access sampling (1 in " + std::to_string(SampleEvery) + ")";
    break;
  case DegradeStep::Kind::SyncOnly:
    What = "sync-only (all accesses shed)";
    break;
  case DegradeStep::Kind::ShadowSummarize:
    What = "shadow summarization (page-granularity cold shadow)";
    break;
  }
  Diagnostic Diag;
  Diag.Code = Code;
  Diag.Sev = Severity::Warning;
  Diag.OpIndex = Raw;
  Diag.Message = "degraded to rung " + std::to_string(Rung) + "/" +
                 std::to_string(D.Ladder.size()) + ": " + What + " — " + Reason;
  Diags.push_back(std::move(Diag));
  return true;
}

bool OnlineDriver::requestStepDown(StatusCode Code, const std::string &Reason) {
  if (Halted)
    return false;
  return stepDown(Code, Reason);
}

void OnlineDriver::probeBudget() {
  const DegradePolicy &D = Options.Degrade;
  uint64_t Live =
      Options.ShadowBytes ? Options.ShadowBytes() : Checker.shadowBytes();
  if (D.Tracker)
    D.Tracker->sampleLive(Live);

  // Memory-governed tools shed for themselves (watermark summarization,
  // denied-allocation fallbacks); the probe's job is to surface the first
  // such transition as the ShadowSummarize rung and its diagnostic.
  if (MemoryGoverned && !MemoryRungNoted) {
    ShadowGovernorStats S = Options.GovernorStats
                                ? Options.GovernorStats()
                                : Checker.shadowGovernorStats();
    if (S.BudgetTrips != 0 || S.AllocDenied != 0) {
      MemoryRungNoted = true;
      const std::string Why =
          S.AllocDenied != 0
              ? "shadow allocation denied; cold pages summarized at page "
                "granularity"
              : "shadow memory high watermark tripped; cold pages summarized "
                "at page granularity";
      if (Rung < D.Ladder.size() &&
          D.Ladder[Rung].K == DegradeStep::Kind::ShadowSummarize)
        stepDown(StatusCode::ResourceExhausted, Why);
      else
        // A deeper rung is already active (or the ladder was customized
        // without the memory rung): record the event without stepping.
        Diags.push_back(
            {StatusCode::ResourceExhausted, Severity::Note, 0, Raw, Why});
    }
  }

  bool Breach = D.ShadowBudgetBytes != 0 && Live > D.ShadowBudgetBytes;
  if (Options.ForceBudgetBreachAtRawOp != OnlineDriverOptions::NoFault &&
      Raw >= Options.ForceBudgetBreachAtRawOp) {
    Breach = true;
    // One forced breach per configured index; later probes read reality.
    Options.ForceBudgetBreachAtRawOp = OnlineDriverOptions::NoFault;
  }
  if (Breach &&
      !stepDown(StatusCode::ResourceExhausted,
                "shadow memory " + std::to_string(Live) + " bytes over budget " +
                    std::to_string(D.ShadowBudgetBytes) + " bytes")) {
    // Ladder exhausted: keep running unbudgeted (the governor's final-rung
    // rule) and stop probing — detection beats death.
    Diags.push_back({StatusCode::ResourceExhausted, Severity::Note, 0, Raw,
                     "shadow budget still breached at final rung; continuing "
                     "unbudgeted"});
    NextProbe = ~0ull;
    return;
  }
  NextProbe = Raw + std::max<unsigned>(1, D.BudgetCheckEveryOps);
}

void OnlineDriver::drainWarnings() {
  const std::vector<RaceWarning> &Ws = Checker.warnings();
  while (SinkCursor < Ws.size()) {
    if (Options.WarningSink)
      Options.WarningSink(Ws[SinkCursor]);
    ++SinkCursor;
  }
}

OnlineDriver::DispatchOutcome OnlineDriver::offer(Operation &Op) {
  if (Halted)
    return DispatchOutcome::Rejected;
  if (Raw >= NextProbe)
    probeBudget();

  // Degraded transforms apply to accesses only — sync events are the HB
  // spine and pass through every rung untouched, keeping the ordering
  // relation exact however much access precision is shed.
  bool IsAccess = Op.Kind == OpKind::Read || Op.Kind == OpKind::Write;
  if (Rung != 0 && IsAccess) {
    if (SyncOnlyMode) {
      ++AccessesDropped;
      return DispatchOutcome::Dropped;
    }
    if (SampleEvery != 1 && (AccessCounter++ % SampleEvery) != 0) {
      ++AccessesDropped;
      return DispatchOutcome::Dropped;
    }
    if (Divisor != 1)
      Op.Target /= Divisor;
  }

  // Capacity checks before the index is consumed: a rejected operation is
  // not part of the stream (the flight recorder must drop it too, so a
  // halted run's capture stays replayable up to the halt point).
  if (Op.Thread >= Capacity.NumThreads) {
    halt("thread id " + std::to_string(Op.Thread) +
         " exceeds declared capacity (" +
         std::to_string(Capacity.NumThreads) + " threads)");
    return DispatchOutcome::Rejected;
  }
  switch (Op.Kind) {
  case OpKind::Read:
  case OpKind::Write: {
    // An over-capacity variable is the one breach a coarse rung can
    // absorb: widen the divisor until the mapped id fits (or accesses are
    // shed entirely). Only when the ladder cannot help does it halt.
    const uint32_t Orig = Op.Target * Divisor; // lower bound of its bucket
    while (Op.Target >= Capacity.NumVars) {
      if (!stepDown(StatusCode::ResourceExhausted,
                    "variable id " + std::to_string(Orig) +
                        " exceeds declared capacity (" +
                        std::to_string(Capacity.NumVars) + " variables)")) {
        halt("variable id " + std::to_string(Orig) +
             " exceeds declared capacity (" +
             std::to_string(Capacity.NumVars) + " variables)");
        return DispatchOutcome::Rejected;
      }
      if (SyncOnlyMode) {
        ++AccessesDropped;
        return DispatchOutcome::Dropped;
      }
      Op.Target = Orig / Divisor;
    }
    break;
  }
  case OpKind::Acquire:
  case OpKind::Release:
    if (Op.Target >= Capacity.NumLocks) {
      halt("lock id " + std::to_string(Op.Target) +
           " exceeds declared capacity (" + std::to_string(Capacity.NumLocks) +
           " locks)");
      return DispatchOutcome::Rejected;
    }
    break;
  case OpKind::Fork:
  case OpKind::Join:
    if (Op.Target >= Capacity.NumThreads) {
      halt("thread id " + std::to_string(Op.Target) +
           " exceeds declared capacity (" +
           std::to_string(Capacity.NumThreads) + " threads)");
      return DispatchOutcome::Rejected;
    }
    break;
  case OpKind::VolatileRead:
  case OpKind::VolatileWrite:
    if (Op.Target >= Capacity.NumVolatiles) {
      halt("volatile id " + std::to_string(Op.Target) +
           " exceeds declared capacity (" +
           std::to_string(Capacity.NumVolatiles) + " volatiles)");
      return DispatchOutcome::Rejected;
    }
    break;
  case OpKind::Barrier:
    // Barrier thread sets live in a Trace side table; an online stream
    // has none. The in-process runtime never emits barriers.
    halt("barrier operations cannot be dispatched online");
    return DispatchOutcome::Rejected;
  case OpKind::AtomicBegin:
  case OpKind::AtomicEnd:
    break;
  }

  size_t I = Raw++;
  if (Options.Role == DriverRole::AdmissionOnly) {
    // Admission ends here: the event is part of the delivered stream (the
    // caller captures it and routes it to a shard driver), but the tool is
    // never called from this instance. The re-entrant lock filter still
    // runs so filtered events own a raw index — they belong in the capture
    // for offline-replay index fidelity — while lastAdmittedFiltered()
    // tells the router not to route them (shard drivers run with the
    // filter off; routing would double-apply the stripped semantics).
    LastFiltered =
        (Op.Kind == OpKind::Acquire && Options.FilterReentrantLocks &&
         !Reentrancy.onAcquire(Op.Thread, Op.Target)) ||
        (Op.Kind == OpKind::Release && Options.FilterReentrantLocks &&
         !Reentrancy.onRelease(Op.Thread, Op.Target));
    if (!LastFiltered)
      ++Dispatched;
    return DispatchOutcome::Delivered;
  }
  // A tool that throws must not unwind into the sequencer thread (that
  // would terminate the host process — the one outcome the online runtime
  // exists to avoid). The op is rolled back out of the stream: its shadow
  // effects may be torn, so the analysis halts with a ToolFault.
  try {
    switch (Op.Kind) {
    case OpKind::Read:
      ++Dispatched;
      AccessesPassed += Checker.onRead(Op.Thread, Op.Target, I);
      break;
    case OpKind::Write:
      ++Dispatched;
      AccessesPassed += Checker.onWrite(Op.Thread, Op.Target, I);
      break;
    case OpKind::Acquire:
      if (Options.FilterReentrantLocks &&
          !Reentrancy.onAcquire(Op.Thread, Op.Target))
        break;
      ++Dispatched;
      Checker.onAcquire(Op.Thread, Op.Target, I);
      break;
    case OpKind::Release:
      if (Options.FilterReentrantLocks &&
          !Reentrancy.onRelease(Op.Thread, Op.Target))
        break;
      ++Dispatched;
      Checker.onRelease(Op.Thread, Op.Target, I);
      break;
    case OpKind::Fork:
      ++Dispatched;
      Checker.onFork(Op.Thread, Op.Target, I);
      break;
    case OpKind::Join:
      ++Dispatched;
      Checker.onJoin(Op.Thread, Op.Target, I);
      break;
    case OpKind::VolatileRead:
      ++Dispatched;
      Checker.onVolatileRead(Op.Thread, Op.Target, I);
      break;
    case OpKind::VolatileWrite:
      ++Dispatched;
      Checker.onVolatileWrite(Op.Thread, Op.Target, I);
      break;
    case OpKind::AtomicBegin:
      ++Dispatched;
      Checker.onAtomicBegin(Op.Thread, I);
      break;
    case OpKind::AtomicEnd:
      ++Dispatched;
      Checker.onAtomicEnd(Op.Thread, I);
      break;
    case OpKind::Barrier:
      break; // unreachable: rejected above
    }
    drainWarnings();
  } catch (const std::exception &E) {
    --Raw;
    halt(StatusCode::ToolFault, std::string("tool '") + Checker.name() +
                                    "' threw during dispatch: " + E.what());
    return DispatchOutcome::Rejected;
  } catch (...) {
    --Raw;
    halt(StatusCode::ToolFault, std::string("tool '") + Checker.name() +
                                    "' threw a non-std exception during "
                                    "dispatch");
    return DispatchOutcome::Rejected;
  }
  return DispatchOutcome::Delivered;
}

bool OnlineDriver::admitAccessRun(ThreadId Thread,
                                  const runtime::OnlineEvent *Run, size_t N) {
  if (Options.Role != DriverRole::AdmissionOnly || Halted || Rung != 0 ||
      Raw >= NextProbe || NextProbe - Raw < N || Thread >= Capacity.NumThreads)
    return false;
  const uint32_t MaxVar = Capacity.NumVars;
  for (size_t I = 0; I != N; ++I) {
    assert((Run[I].Kind == OpKind::Read || Run[I].Kind == OpKind::Write) &&
           "admitAccessRun fed a non-access event");
    if (Run[I].Target >= MaxVar)
      return false;
  }
  Raw += N;
  Dispatched += N;
  LastFiltered = false;
  return true;
}

bool OnlineDriver::dispatchRun(const runtime::OnlineEvent *Run, size_t N) {
  if (Halted)
    return false;
  // Events arrive pre-admitted: capacity, rung transforms, and lock
  // filtering already ran on the admission side, so this loop pays none of
  // offer()'s per-event checks. Access stretches go through the
  // devirtualized run loop when one is registered for the tool's concrete
  // type; sync events dispatch virtually one at a time (they are rare and
  // their handlers do real vector-clock work anyway).
  size_t I = 0;
  try {
    while (I != N) {
      const runtime::OnlineEvent &E = Run[I];
      if (E.Kind == OpKind::Read || E.Kind == OpKind::Write) {
        size_t End = I + 1;
        while (End != N && (Run[End].Kind == OpKind::Read ||
                            Run[End].Kind == OpKind::Write))
          ++End;
        const size_t Len = End - I;
        if (FastRun) {
          AccessesPassed += FastRun(Checker, Run + I, Len);
        } else {
          for (size_t J = I; J != End; ++J) {
            const runtime::OnlineEvent &A = Run[J];
            AccessesPassed +=
                A.Kind == OpKind::Read
                    ? Checker.onRead(A.Thread, A.Target,
                                     static_cast<size_t>(A.Seq))
                    : Checker.onWrite(A.Thread, A.Target,
                                      static_cast<size_t>(A.Seq));
          }
        }
        Dispatched += Len;
        I = End;
        continue;
      }
      const size_t Idx = static_cast<size_t>(E.Seq);
      switch (E.Kind) {
      case OpKind::Acquire:
        Checker.onAcquire(E.Thread, E.Target, Idx);
        break;
      case OpKind::Release:
        Checker.onRelease(E.Thread, E.Target, Idx);
        break;
      case OpKind::Fork:
        Checker.onFork(E.Thread, E.Target, Idx);
        break;
      case OpKind::Join:
        Checker.onJoin(E.Thread, E.Target, Idx);
        break;
      case OpKind::VolatileRead:
        Checker.onVolatileRead(E.Thread, E.Target, Idx);
        break;
      case OpKind::VolatileWrite:
        Checker.onVolatileWrite(E.Thread, E.Target, Idx);
        break;
      case OpKind::AtomicBegin:
        Checker.onAtomicBegin(E.Thread, Idx);
        break;
      case OpKind::AtomicEnd:
        Checker.onAtomicEnd(E.Thread, Idx);
        break;
      case OpKind::Barrier:
      case OpKind::Read:
      case OpKind::Write:
        break; // unreachable: admission rejects barriers; accesses above
      }
      ++Dispatched;
      ++I;
    }
    drainWarnings();
  } catch (const std::exception &E) {
    // Anchor the fault at the raw index of the group that threw (for an
    // access run, its first event — the thrower's exact index is lost to
    // the batched loop).
    Raw = Run[I].Seq;
    halt(StatusCode::ToolFault, std::string("tool '") + Checker.name() +
                                    "' threw during dispatch: " + E.what());
    return false;
  } catch (...) {
    Raw = Run[I].Seq;
    halt(StatusCode::ToolFault, std::string("tool '") + Checker.name() +
                                    "' threw a non-std exception during "
                                    "dispatch");
    return false;
  }
  return true;
}

void OnlineDriver::finish() {
  if (Finished)
    return;
  Finished = true;
  try {
    Checker.end();
    drainWarnings();
  } catch (const std::exception &E) {
    halt(StatusCode::ToolFault,
         std::string("tool '") + Checker.name() + "' threw during end(): " +
             E.what());
  } catch (...) {
    halt(StatusCode::ToolFault, std::string("tool '") + Checker.name() +
                                    "' threw a non-std exception during "
                                    "end()");
  }
}
