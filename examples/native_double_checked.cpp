//===----------------------------------------------------------------------===//
//
// Native port of examples/programs/double_checked.mc: broken double-checked
// locking on real std::threads, race-checked online. The fast-path read of
// 'initialized' races with the initializing write on every schedule (one of
// the real warning classes FastTrack found in Eclipse, §5.3), so the online
// run must report races — and the fix, promoting the flag to a volatile
// (Section 4's vrd/vwr extension), must silence them. Both runs are
// re-checked offline from the flight-recorder capture.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "framework/Replay.h"
#include "runtime/Instrument.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace ft;
namespace rt = ft::runtime;

namespace {

/// The .mc program, verbatim: unprotected fast-path read, then the
/// lock-protected check and initialization, then an unprotected read of
/// the payload.
struct BrokenLazyInit {
  rt::Mutex InitLock;
  rt::Shared<int> Singleton;
  rt::Shared<int> Initialized;

  int getInstance() {
    if (FT_READ(Initialized) == 0) { // unprotected fast-path read: RACE
      std::lock_guard<rt::Mutex> Guard(InitLock);
      if (FT_READ(Initialized) == 0) {
        FT_WRITE(Singleton, 42);
        FT_WRITE(Initialized, 1);
      }
    }
    return FT_READ(Singleton); // unprotected read of the payload: RACE
  }
};

/// The fix: 'initialized' becomes a volatile, so the fast-path read
/// acquires the initializing write's release edge and the payload read is
/// ordered after the payload write.
struct FixedLazyInit {
  rt::Mutex InitLock;
  rt::Shared<int> Singleton;
  rt::Volatile<int> Initialized;

  int getInstance() {
    if (Initialized.read() == 0) {
      std::lock_guard<rt::Mutex> Guard(InitLock);
      if (Initialized.read() == 0) {
        FT_WRITE(Singleton, 42);
        Initialized.write(1);
      }
    }
    return FT_READ(Singleton);
  }
};

bool sameWarnings(const std::vector<RaceWarning> &A,
                  const std::vector<RaceWarning> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Var != B[I].Var || A[I].OpIndex != B[I].OpIndex ||
        A[I].CurrentThread != B[I].CurrentThread ||
        A[I].CurrentKind != B[I].CurrentKind ||
        A[I].PriorThread != B[I].PriorThread ||
        A[I].PriorKind != B[I].PriorKind || A[I].Detail != B[I].Detail)
      return false;
  return true;
}

/// Runs two user threads through \p Lazy.getInstance() under an online
/// FastTrack session; returns the report and checks online == offline.
template <typename LazyInit>
rt::OnlineReport check(const char *Title, const char *CapturePath,
                       bool &EquivalenceOk,
                       const rt::OnlineOptions &BaseOptions) {
  std::printf("--- %s ---\n", Title);
  FastTrack Detector;
  rt::OnlineOptions Options = BaseOptions;
  Options.CapturePath = CapturePath;
  Options.OnWarning = [](const RaceWarning &W) {
    std::printf("  ONLINE WARNING: %s\n", toString(W).c_str());
  };

  rt::Engine Engine(Detector, Options);
  LazyInit Lazy;
  rt::Thread A([&Lazy] { (void)Lazy.getInstance(); });
  rt::Thread B([&Lazy] { (void)Lazy.getInstance(); });
  A.join();
  B.join();
  int Value = Lazy.getInstance(); // main thread, after both joins
  rt::OnlineReport Report = Engine.finish();

  for (const Diagnostic &D : Report.Diags)
    std::printf("  %s\n", toString(D).c_str());

  FastTrack Offline;
  replay(Report.Captured, Offline);
  EquivalenceOk = sameWarnings(Detector.warnings(), Offline.warnings()) &&
                  !Report.Halted && Report.Diags.empty();

  std::printf("getInstance() = %d; %llu events, %zu warning(s) online, "
              "offline replay %s\n\n",
              Value, (unsigned long long)Report.EventsCaptured,
              Report.NumWarnings,
              EquivalenceOk ? "identical" : "MISMATCH");
  return Report;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("native double-checked locking — online race detection\n"
              "=====================================================\n\n");

  rt::OnlineOptions BaseOptions;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--degrade") == 0 && I + 1 < argc) {
      BaseOptions.Degrade.Enabled = std::strcmp(argv[++I], "off") != 0;
    } else if (std::strcmp(argv[I], "--capture-segment-bytes") == 0 &&
               I + 1 < argc) {
      // Nonzero switches both captures to crash-safe sealed segments.
      BaseOptions.CaptureSegmentBytes =
          static_cast<size_t>(std::strtoull(argv[++I], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--degrade on|off] "
                   "[--capture-segment-bytes N]\n",
                   argv[0]);
      return 2;
    }
  }

  bool BrokenEq = false, FixedEq = false;
  rt::OnlineReport Broken = check<BrokenLazyInit>(
      "broken: plain flag (RACY by design)", "native_double_checked.trc",
      BrokenEq, BaseOptions);
  rt::OnlineReport Fixed = check<FixedLazyInit>(
      "fixed: volatile flag (race-free)", "native_double_checked_fixed.trc",
      FixedEq, BaseOptions);

  bool Ok = BrokenEq && FixedEq && Broken.NumWarnings > 0 &&
            Fixed.NumWarnings == 0;
  std::printf("verdict: %s (broken variant %zu warning(s), fixed variant "
              "%zu)\n",
              Ok ? "PASS" : "FAIL", Broken.NumWarnings, Fixed.NumWarnings);
  return Ok ? 0 : 1;
}
