#include "detectors/MultiRace.h"

#include "framework/Replay.h"

using namespace ft;

void MultiRace::begin(const ToolContext &Context) {
  VectorClockToolBase::begin(Context);
  Held.reset(Context.NumThreads);
  Vars.assign(Context.NumVars, VarShadow());
  Stats = MultiRaceStats();
  Generation = 0;
}

void MultiRace::onAcquire(ThreadId T, LockId M, size_t OpIndex) {
  VectorClockToolBase::onAcquire(T, M, OpIndex);
  Held.acquire(T, M);
}

void MultiRace::onRelease(ThreadId T, LockId M, size_t OpIndex) {
  VectorClockToolBase::onRelease(T, M, OpIndex);
  Held.release(T, M);
}

void MultiRace::onBarrier(const std::vector<ThreadId> &Threads,
                          size_t OpIndex) {
  VectorClockToolBase::onBarrier(Threads, OpIndex);
  ++Generation;
}

void MultiRace::refresh(VarShadow &Shadow) {
  if (Shadow.Generation == Generation)
    return;
  Shadow.State = EraserVarState::Virgin;
  Shadow.Candidates.clear();
  Shadow.LockSetDead = false;
  Shadow.Generation = Generation;
}

bool MultiRace::updateDiscipline(VarShadow &Shadow, ThreadId T,
                                 bool IsWrite) {
  ++Stats.LockSetOps;
  if (Shadow.LockSetDead)
    return false;
  switch (Shadow.State) {
  case EraserVarState::Virgin:
    Shadow.State = EraserVarState::Exclusive;
    Shadow.Owner = T;
    return true;
  case EraserVarState::Exclusive:
    if (Shadow.Owner == T)
      return true;
    Shadow.State =
        IsWrite ? EraserVarState::SharedModified : EraserVarState::Shared;
    Shadow.Candidates = Held.held(T);
    break;
  case EraserVarState::Shared:
    if (IsWrite)
      Shadow.State = EraserVarState::SharedModified;
    Shadow.Candidates.intersectWith(Held.held(T));
    break;
  case EraserVarState::SharedModified:
    Shadow.Candidates.intersectWith(Held.held(T));
    break;
  }
  if (Shadow.State == EraserVarState::Shared)
    return true; // read-only sharing is always race-free
  if (!Shadow.Candidates.empty())
    return true;
  Shadow.LockSetDead = true;
  return false;
}

void MultiRace::reportAccessRace(ThreadId T, VarId X, size_t OpIndex,
                                 OpKind Kind, const VectorClock &Prior,
                                 OpKind PriorKind) {
  const VectorClock &Ct = threadClock(T);
  ThreadId Conflicting = UnknownThread;
  for (ThreadId U = 0; U != Prior.size(); ++U)
    if (Prior.get(U) > Ct.get(U)) {
      Conflicting = U;
      break;
    }
  RaceWarning W;
  W.Var = X;
  W.OpIndex = OpIndex;
  W.CurrentThread = T;
  W.CurrentKind = Kind;
  W.PriorThread = Conflicting;
  W.PriorKind = PriorKind;
  W.Detail = std::string(opKindName(PriorKind)) + "-" + opKindName(Kind) +
             " race";
  reportRace(std::move(W));
}

bool MultiRace::onRead(ThreadId T, VarId X, size_t OpIndex) {
  VarShadow &Shadow = Vars[X];
  if (Shadow.R.get(T) == currentClock(T)) {
    ++Stats.SameEpochHits;
    return false;
  }
  refresh(Shadow);
  bool Protected = updateDiscipline(Shadow, T, /*IsWrite=*/false);
  if (!Protected) {
    ++Stats.VcComparisons;
    if (!Shadow.W.leq(threadClock(T)))
      reportAccessRace(T, X, OpIndex, OpKind::Read, Shadow.W, OpKind::Write);
  }
  Shadow.R.set(T, currentClock(T));
  return true;
}

bool MultiRace::onWrite(ThreadId T, VarId X, size_t OpIndex) {
  VarShadow &Shadow = Vars[X];
  if (Shadow.W.get(T) == currentClock(T)) {
    ++Stats.SameEpochHits;
    return false;
  }
  refresh(Shadow);
  bool Protected = updateDiscipline(Shadow, T, /*IsWrite=*/true);
  if (!Protected) {
    ++Stats.VcComparisons;
    const VectorClock &Ct = threadClock(T);
    if (!Shadow.W.leq(Ct))
      reportAccessRace(T, X, OpIndex, OpKind::Write, Shadow.W,
                       OpKind::Write);
    else if (!Shadow.R.leq(Ct))
      reportAccessRace(T, X, OpIndex, OpKind::Write, Shadow.R, OpKind::Read);
  }
  Shadow.W.set(T, currentClock(T));
  return true;
}

size_t MultiRace::shadowBytes() const {
  size_t Bytes = VectorClockToolBase::shadowBytes() + Held.memoryBytes();
  for (const VarShadow &Shadow : Vars)
    Bytes += sizeof(VarShadow) + Shadow.R.memoryBytes() +
             Shadow.W.memoryBytes() + Shadow.Candidates.memoryBytes();
  return Bytes;
}

FT_REGISTER_FAST_REPLAY(::ft::MultiRace);
