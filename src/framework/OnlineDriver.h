//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online dispatch entry point: the push-mode sibling of replay().
///
/// replay() pulls events out of an immutable Trace; an OnlineDriver is
/// handed events one at a time, in the total order they were observed, by
/// a producer that does not yet know how the execution ends — the
/// in-process runtime of src/runtime, a streaming ingester, or a test.
/// The driver applies the exact per-event semantics of the serial replay
/// loop (re-entrant lock filtering, raw-stream op indices) so that a tool
/// driven online reports byte-for-byte the warnings an offline replay of
/// the same stream would: the online/offline equivalence contract the
/// runtime's flight recorder depends on.
///
/// Because events arrive from a live program, entity counts cannot be
/// known up front. The driver is constructed with a *capacity*
/// ToolContext — the tool pre-sizes its shadow state from it exactly as
/// it would for a trace — and every incoming operation is bounds-checked
/// against that capacity. An over-capacity operation halts analysis with
/// a resource-exhausted diagnostic rather than corrupting shadow state;
/// the application is never the party that fails.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_ONLINEDRIVER_H
#define FASTTRACK_FRAMEWORK_ONLINEDRIVER_H

#include "framework/Tool.h"
#include "support/Status.h"
#include "trace/ReentrancyFilter.h"

#include <functional>
#include <vector>

namespace ft {

/// Options controlling one online dispatch session.
struct OnlineDriverOptions {
  /// Strip redundant re-entrant lock acquires/releases before dispatch,
  /// as the serial replay loop does. Keep this in sync with the replay
  /// options used to re-check a captured stream offline.
  bool FilterReentrantLocks = true;

  /// Invoked once per new warning, immediately after the event that
  /// raised it was dispatched — the "report races as they happen" sink.
  /// Called from whichever thread calls dispatch(); may be empty.
  std::function<void(const RaceWarning &)> WarningSink;
};

/// Drives one Tool from a live, totally-ordered event stream.
///
/// Not thread-safe: exactly one thread (the runtime's sequencer) may call
/// dispatch()/finish(). Concurrency belongs to the producers upstream;
/// by the time events reach the driver they are already merged.
class OnlineDriver {
public:
  /// Calls Checker.begin(Capacity); the capacity bounds the entity ids
  /// dispatch() will accept (tools index shadow state without checks).
  OnlineDriver(Tool &Checker, const ToolContext &Capacity,
               OnlineDriverOptions Options = OnlineDriverOptions());

  /// Feeds the next operation of the merged stream. Every accepted
  /// operation consumes one raw op index — including re-entrant lock
  /// events the filter strips — so indices agree with an offline replay
  /// of the captured stream. Barrier operations cannot be dispatched
  /// online (their thread sets live in a Trace side table) and halt the
  /// driver.
  ///
  /// \returns true when the operation was accepted (dispatched or
  /// filtered); false when the driver is halted — by this operation
  /// exceeding capacity or by an earlier halt. A rejected operation must
  /// not be recorded by a flight recorder.
  bool dispatch(const Operation &Op);

  /// Calls Checker.end() and flushes the warning sink. Idempotent.
  void finish();

  /// True once an over-capacity or unsupported operation stopped the
  /// analysis. The application may keep running; events are dropped.
  bool halted() const { return Halted; }

  /// Raw op indices consumed (== the length of a faithful capture).
  uint64_t rawOps() const { return Raw; }

  /// Events actually forwarded to the tool (post lock filtering).
  uint64_t dispatched() const { return Dispatched; }

  /// Accesses whose handler returned the pass flag.
  uint64_t accessesPassed() const { return AccessesPassed; }

  /// Diagnostics describing any halt, anchored to the raw op index.
  const std::vector<Diagnostic> &diags() const { return Diags; }

  const ToolContext &capacity() const { return Capacity; }

private:
  void halt(std::string Message);
  void drainWarnings();

  Tool &Checker;
  ToolContext Capacity;
  OnlineDriverOptions Options;
  ReentrancyFilter Reentrancy;
  std::vector<Diagnostic> Diags;
  uint64_t Raw = 0;
  uint64_t Dispatched = 0;
  uint64_t AccessesPassed = 0;
  size_t SinkCursor = 0;
  bool Halted = false;
  bool Finished = false;
};

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_ONLINEDRIVER_H
