//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured error model shared by the ingestion and replay layers.
///
/// A production trace service cannot afford `bool + std::string` error
/// plumbing: callers need to distinguish an unreadable file from a
/// malformed record from an exhausted resource budget, attach diagnostics
/// to the exact input line or trace operation, and keep going when a
/// problem is recoverable. Two types carry that information everywhere:
///
///   - \ref Status — the outcome of a whole operation (one code + message);
///   - \ref Diagnostic — one problem, anchored to a line or op index, with
///     a severity that says whether the pipeline recovered from it.
///
/// TraceIO's salvage parser, the trace validator, the checkpointed replay
/// driver, and the resource governor all report through these types.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_SUPPORT_STATUS_H
#define FASTTRACK_SUPPORT_STATUS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace ft {

/// What went wrong, machine-checkably. Ok is the unique success code.
enum class StatusCode : uint8_t {
  Ok,
  IoError,           ///< File missing/unreadable/short write.
  ParseError,        ///< Malformed trace text (or error budget exhausted).
  ValidationError,   ///< Feasibility violation (Section 2.1 constraints).
  CheckpointError,   ///< Corrupt/incompatible checkpoint image.
  ResourceExhausted, ///< A configured memory/time budget was exceeded.
  Stalled,           ///< A watchdog detected no forward progress.
  Cancelled,         ///< The run was interrupted before completion.
  ToolFault,         ///< A tool threw from an event handler.
};

/// Stable lowercase name, e.g. "parse-error".
const char *statusCodeName(StatusCode Code);

/// How bad one diagnostic is. Anything at or below Warning means the
/// pipeline recovered and the result is usable (possibly degraded).
enum class Severity : uint8_t {
  Note,    ///< Informational (e.g. "resumed from checkpoint at op 5000").
  Warning, ///< Recovered: record skipped, granularity degraded, fallback.
  Error,   ///< The operation failed; the result is incomplete.
  Fatal,   ///< The operation aborted outright.
};

/// Stable lowercase name, e.g. "warning".
const char *severityName(Severity Sev);

/// Sentinel for Diagnostic::OpIndex when the diagnostic is not anchored
/// to a trace operation.
inline constexpr size_t NoOpIndex = ~size_t(0);

/// One structured problem report. Field layout is deliberately plain so
/// harnesses can assert on codes and anchors instead of grepping
/// messages.
struct Diagnostic {
  StatusCode Code = StatusCode::Ok;
  Severity Sev = Severity::Error;
  /// 1-based input line the problem was found on; 0 when not anchored to
  /// a source line (e.g. validator and replay diagnostics).
  unsigned Line = 0;
  /// Index of the trace operation involved; NoOpIndex when none.
  size_t OpIndex = NoOpIndex;
  std::string Message;
};

/// Renders like "warning: line 12: bad thread id 'x' [parse-error]".
std::string toString(const Diagnostic &D);

/// The outcome of a whole operation: a code plus a human-readable
/// message. Cheap to copy when Ok (empty message).
class Status {
public:
  /// Default-constructed status is success.
  Status() = default;

  static Status okStatus() { return Status(); }

  static Status error(StatusCode Code, std::string Message) {
    Status S;
    S.Code = Code;
    S.Msg = std::move(Message);
    return S;
  }

  bool ok() const { return Code == StatusCode::Ok; }
  explicit operator bool() const { return ok(); }

  StatusCode code() const { return Code; }
  const std::string &message() const { return Msg; }

  /// Renders like "parse-error: line 3: expected 2 operand(s)" (or "ok").
  std::string toString() const;

private:
  StatusCode Code = StatusCode::Ok;
  std::string Msg;
};

} // namespace ft

#endif // FASTTRACK_SUPPORT_STATUS_H
