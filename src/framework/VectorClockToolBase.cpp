#include "framework/VectorClockToolBase.h"

using namespace ft;

void VectorClockToolBase::begin(const ToolContext &Context) {
  C.assign(Context.NumThreads, VectorClock());
  ClockCache.assign(Context.NumThreads, 0);
  View.assign(Context.NumThreads, nullptr);
  // σ0: C = λt.inc_t(⊥V) — every thread starts at clock 1 in its own entry.
  for (ThreadId T = 0; T != Context.NumThreads; ++T) {
    C[T].inc(T);
    View[T] = &C[T]; // C is fully sized; its elements never move again
    refreshClock(T);
  }
  L.assign(Context.NumLocks, VectorClock());
  LVolatile.assign(Context.NumVolatiles, VectorClock());
}

void VectorClockToolBase::onAcquire(ThreadId T, LockId M, size_t) {
  C[T].joinWith(L[M]);
}

void VectorClockToolBase::onRelease(ThreadId T, LockId M, size_t) {
  L[M].copyFrom(C[T]);
  C[T].inc(T);
  refreshClock(T);
}

void VectorClockToolBase::onFork(ThreadId T, ThreadId U, size_t) {
  C[U].joinWith(C[T]);
  refreshClock(U);
  C[T].inc(T);
  refreshClock(T);
}

void VectorClockToolBase::onJoin(ThreadId T, ThreadId U, size_t) {
  C[T].joinWith(C[U]);
  refreshClock(T);
  C[U].inc(U);
  refreshClock(U);
}

void VectorClockToolBase::onVolatileRead(ThreadId T, VolatileId V, size_t) {
  C[T].joinWith(LVolatile[V]);
}

void VectorClockToolBase::onVolatileWrite(ThreadId T, VolatileId V, size_t) {
  LVolatile[V].joinWith(C[T]);
  C[T].inc(T);
  refreshClock(T);
}

void VectorClockToolBase::onBarrier(const std::vector<ThreadId> &Threads,
                                    size_t) {
  VectorClock Joined;
  for (ThreadId U : Threads)
    Joined.joinWith(C[U]);
  for (ThreadId U : Threads) {
    C[U].copyFrom(Joined);
    C[U].inc(U);
    refreshClock(U);
  }
}

size_t VectorClockToolBase::shadowBytes() const {
  size_t Bytes = 0;
  for (const VectorClock &Clock : C)
    Bytes += sizeof(VectorClock) + Clock.memoryBytes();
  for (const VectorClock &Clock : L)
    Bytes += sizeof(VectorClock) + Clock.memoryBytes();
  for (const VectorClock &Clock : LVolatile)
    Bytes += sizeof(VectorClock) + Clock.memoryBytes();
  Bytes += ClockCache.capacity() * sizeof(ClockValue);
  Bytes += View.capacity() * sizeof(const VectorClock *);
  return Bytes;
}
