//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compressed two-level shadow map backing FastTrack's per-variable
/// state (docs/ARCHITECTURE.md, "Shadow memory").
///
/// FastTrack's whole thesis is that the common-case access touches O(1)
/// shadow state, yet a naive per-variable record charges every variable
/// for the rare case: two epochs plus an inline read vector clock that
/// only the ~0.1 % read-shared variables ever materialize, laid out AoS
/// in a flat array pre-sized to the declared variable count. This file
/// applies the production shape used by Valgrind-family tools (two-level
/// shadow maps with compressed per-address states) and Helgrind+ (shadow
/// values packed into machine words):
///
///   - **Primary map, level 1**: a page directory indexed by
///     `VarId >> ShadowPageShift`. A null entry is the distinguished
///     compact state for a never-accessed region — it costs one pointer
///     regardless of how many variables the region declares.
///   - **Primary map, level 2**: fixed-size pages allocated on first
///     touch. A page holds the packed hot fields only — write epoch W
///     and read epoch R side by side, so the same-epoch fast paths and
///     the O(1) race checks read exactly one cache line (~8 variables
///     per line with 32-bit epochs). Spaces at or below
///     ShadowEagerVarLimit skip lazy faulting: one contiguous block
///     backs every page and accesses go through a flat pointer, so small
///     programs pay zero indirection over the dense layout.
///   - **Side store**: the rare read-shared vector clocks are hoisted
///     out of the per-variable record into a per-table array keyed by a
///     compact handle. The handle reuses R's tag bits: the top tid value
///     of the epoch layout is reserved as the READ_SHARED tag (it was
///     already burned by the all-ones sentinel) and the clock bits carry
///     the side-store index. Inflation and deflation therefore move a
///     4-byte handle instead of carrying 32+ inline bytes per variable
///     forever, and freed handles park on a free list so a
///     deflate → re-inflate cycle recycles both the handle and the
///     clock's heap buffer (the Figure 5 Rvc-recycling behaviour,
///     table-wide instead of per-variable).
///   - **Memory governance** (opt-in via ShadowMemoryPolicy): pages carry
///     a last-touch generation stamp; a periodic maintenance tick
///     (deterministically keyed on dispatched accesses, never wall clock)
///     compresses cold write-only pages into lossless same-epoch/
///     delta-packed encodings that decompress bit-identically on the next
///     touch, and releases cold all-bottom pages outright. Under a byte
///     budget, crossing the high watermark arms *pressure shedding*: cold
///     pages are summarized — oldest first — down to one page-granularity
///     slot holding the per-tid join of the page's write and read
///     histories. That is exactly the fold of the degradation ladder's
///     ShadowPageVars rung applied in place: warnings may coarsen to the
///     page region, but no race is missed (joins only grow the histories
///     a conflicting access is checked against). Shedding disarms at the
///     low watermark (hysteresis). Because every decision is a function
///     of the delivered access stream, a governed capture replays to
///     identical warnings.
///
/// Consequences the rest of the system relies on:
///   - shadow RSS is proportional to *touched pages*, not the declared
///     variable count — million-variable address spaces cost kilobytes
///     until touched — and under a governed budget it is *bounded*;
///   - the hot slot is 2×sizeof(EpochT) (8 bytes for the paper's 32-bit
///     layout, down from 48 with the inline-VC record), so dense scans
///     stream 6x less shadow memory;
///   - sharded clones fault in only the pages their shard's variables
///     live on, making per-shard shadow an LLC-friendly slice for free;
///   - the resource governor's final coarse-granularity rung folds
///     exactly one shadow page region onto one shadow slot
///     (ShadowPageVars fields per object, framework/Degrade.h), so both
///     the degraded shadow and a summarized page are one slot per page
///     of the fine-grained table.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_SHADOW_SHADOWTABLE_H
#define FASTTRACK_SHADOW_SHADOWTABLE_H

#include "clock/VectorClock.h"
#include "shadow/ShadowPolicy.h"
#include "trace/Ids.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ft {

/// Shadow page geometry, shared by both epoch layouts (and by the
/// degradation ladder, whose final rung maps one page region to one
/// shadow slot — see framework/Degrade.h). 512 slots keep a
/// 32-bit-epoch page at exactly one 4 KiB allocation.
inline constexpr uint32_t ShadowPageShift = 9;
inline constexpr uint32_t ShadowPageVars = 1u << ShadowPageShift;

/// Variable spaces up to this size are backed eagerly by one contiguous
/// page block and accessed flat, skipping the directory's dependent load
/// (measurably ~6 % of FastTrack's replay overhead on cache-resident
/// workloads). Compression has nothing to win below this: the whole
/// fine-grained shadow is at most a megabyte. Above it, pages fault in
/// on first touch and footprint follows touched pages.
inline constexpr size_t ShadowEagerVarLimit = 64 * 1024;

/// Lifecycle of one shadow page region under the paged layout. Eager
/// tables have no per-page lifecycle (every page is resident forever).
enum class ShadowPageState : uint8_t {
  Untouched,  ///< Null directory entry, no encoded state: all slots ⊥.
  Resident,   ///< Backed by a materialized Page.
  Compressed, ///< Cold write-only page, held as a lossless packed image.
  Summarized, ///< Folded to one page-granularity summary slot (pressure).
};

/// The two-level SoA shadow map over epoch representation \p EpochT.
///
/// The table owns storage and representation only; the FastTrack rules
/// that interpret W/R live in core/FastTrack.cpp. Thread-count contract:
/// the top tid of the epoch layout is the READ_SHARED handle tag, so
/// detectors using this table admit at most EpochT::MaxTid threads
/// (255 / 65535), one fewer than the raw epoch packing.
///
/// **Governed tables may hand out an inflated W.** A summarized page
/// whose cold writes came from multiple threads joins them into a
/// side-store vector clock, tagged into W exactly like a read-shared R.
/// Detectors must branch on isInflated(W) before epoch-comparing it; the
/// same-epoch fast path needs no change (a tagged handle never equals a
/// real epoch).
template <typename EpochT> class ShadowTable {
public:
  using RawT = decltype(EpochT().raw());

  static constexpr uint32_t PageShift = ShadowPageShift;
  static constexpr uint32_t PageSize = ShadowPageVars;
  static constexpr uint32_t PageMask = PageSize - 1;

  /// Widest raw-epoch span a delta-packed page can encode (u8 deltas).
  static constexpr RawT MaxDelta = 255;

  /// The packed hot pair. W and R are adjacent so every Figure 2 rule's
  /// O(1) checks (same-epoch, Wx ≼ Ct, epoch-Rx ≼ Ct) read one line.
  struct Slot {
    EpochT W;
    EpochT R;
  };

  /// A level-2 page: nothing but slots, zero-initialized to ⊥ on fault-in.
  struct Page {
    Slot Slots[PageSize];
  };

  /// Lossless packed image of a cold write-only page. Uniform pages
  /// (every occupied W identical) drop the delta array entirely; near-
  /// uniform pages (raw span ≤ MaxDelta) pack one byte per slot. Either
  /// way decompression is pure integer reconstruction — BaseW + delta —
  /// so the expanded page is bit-identical to the one compressed.
  struct CompressedPage {
    RawT BaseW = 0;                     ///< Smallest occupied raw W.
    uint64_t Occupied[PageSize / 64] = {}; ///< Bitmap of non-⊥ slots.
    std::unique_ptr<uint8_t[]> Deltas;  ///< Null = uniform page.
  };

  ShadowTable() = default;
  ShadowTable(const ShadowTable &) = delete;
  ShadowTable &operator=(const ShadowTable &) = delete;
  ~ShadowTable() { releasePages(); }

  /// Installs the governance policy. Takes effect at the next reset()
  /// (Tool::begin), so a running table's representation never changes
  /// under an in-flight rule.
  void setPolicy(const ShadowMemoryPolicy &P) { Policy = P; }
  const ShadowMemoryPolicy &policy() const { return Policy; }

  /// True when this table is actively governing (policy enabled and the
  /// space is paged — eager tables are at most a megabyte and exempt).
  bool governed() const { return Governed; }

  /// Telemetry accumulated since the last reset().
  const ShadowGovernorStats &governorStats() const { return Stats; }

  /// Re-sizes the directory for \p NumVars variables and drops all pages
  /// and side-store state (Tool::begin semantics). Spaces at or below
  /// ShadowEagerVarLimit are materialized as one contiguous block (the
  /// directory still points into it, so snapshot iteration is uniform);
  /// larger spaces start empty and fault pages in on first touch.
  void reset(size_t NumVars) {
    releasePages();
    const size_t NumPages = (NumVars + PageMask) >> PageShift;
    Dir.assign(NumPages, nullptr);
    Vars = NumVars;
    Resident = 0;
    Clocks.clear();
    FreeHandles.clear();
    Live = 0;
    Stats = ShadowGovernorStats();
    Gen = 1;
    PageAllocs = 0;
    InflateAllocs = 0;
    SheddingArmed = false;
    ShedStalled = false;
    Meta.clear();
    const bool Eager = NumVars != 0 && NumVars <= ShadowEagerVarLimit;
    if (Eager) {
      materializeEagerly(NumPages);
    } else {
      // Per-page lifecycle state exists for every paged table (a restored
      // checkpoint may install summarized pages even when ungoverned);
      // only the temperature stamping and maintenance are gated.
      Meta.resize(NumPages);
    }
    Governed = Policy.Enabled && !Eager;
    Bytes = Governed ? memoryBytes() : 0;
    if (Governed)
      Stats.ShadowBytesHighWater = Bytes;
  }

  /// The hot-path accessor: returns the slot for \p X. Small tables take
  /// the flat path — identical address arithmetic to the dense layout
  /// behind one always-predicted branch. Large tables pay one extra
  /// (cache-resident) directory load, faulting the page in on first
  /// touch; the directory is 8 bytes per 512 variables. Compressed and
  /// summarized regions route through the cold path: compressed pages
  /// re-expand bit-identically, summarized regions serve their single
  /// page-granularity slot.
  Slot &slot(VarId X) {
    assert(X < Vars && "variable id outside the shadow table");
    if (__builtin_expect(FlatSlots != nullptr, 1))
      return FlatSlots[X];
    const size_t PI = X >> PageShift;
    Page *P = Dir[PI];
    if (__builtin_expect(P == nullptr, 0))
      return coldSlot(X, PI);
    if (__builtin_expect(Governed, 0))
      Meta[PI].LastTouch = Gen;
    return P->Slots[X & PageMask];
  }

  /// One governance maintenance tick. Call cadence defines the
  /// temperature clock (ShadowMemoryPolicy::MaintainEveryAccesses): the
  /// generation advances, pages that just crossed ColdAgeTicks without a
  /// touch are compressed (or released when all-⊥), the byte count is
  /// resynced exactly, and the watermarks are re-evaluated. No-op when
  /// not governed.
  void maintain();

  /// \name READ_SHARED handles (R's tag bits).
  /// @{

  /// True when \p R carries a side-store handle rather than a read epoch.
  static constexpr bool isInflated(EpochT R) {
    return (R.raw() >> EpochT::ClockBits) == EpochT::MaxTid;
  }

  /// The side-store index carried by an inflated \p R.
  static constexpr uint32_t handleOf(EpochT R) {
    return static_cast<uint32_t>(R.raw() & EpochT::MaxClock);
  }

  /// Packs side-store index \p H into the reserved-tid tag space.
  static EpochT handleEpoch(uint32_t H) {
    return EpochT::fromRaw((RawT(EpochT::MaxTid) << EpochT::ClockBits) |
                           RawT(H));
  }

  /// Allocates a side-store clock (recycling a freed handle and its
  /// buffer when one is parked) and returns the tagged R value for it.
  /// The clock is ⊥ — recycled buffers are zeroed here, because stale
  /// entries predate the write that deflated them and would raise false
  /// alarms if kept. Governed tables route fresh growth through the
  /// injected allocation-failure gate: a denied growth arms pressure
  /// shedding — which refills the free list by deflating summarized
  /// pages' handles — and retries recycling before falling back.
  EpochT inflate() {
    if (__builtin_expect(Governed, 0) && FreeHandles.empty())
      takeInflateFault();
    return inflateRaw();
  }

  /// Restore-path inflation: assigns a handle without consulting the
  /// policy's fault gate, so checkpoint restore never consumes injected
  /// fault ordinals (those belong to the replayed access stream).
  EpochT inflateForRestore() { return inflateRaw(); }

  /// Returns the inflated \p R's handle to the free list. The clock's
  /// buffer is kept for the next inflation.
  void deflate(EpochT R) {
    assert(isInflated(R));
    FreeHandles.push_back(handleOf(R));
    --Live;
  }

  /// The read vector clock behind an inflated \p R.
  VectorClock &clockFor(EpochT R) {
    assert(isInflated(R));
    return Clocks[handleOf(R)];
  }
  const VectorClock &clockFor(EpochT R) const {
    assert(isInflated(R));
    return Clocks[handleOf(R)];
  }

  /// Currently inflated (read-shared) variables.
  uint64_t inflatedStates() const { return Live; }

  /// Side-store slots ever materialized (high-water mark; freed handles
  /// stay allocated for reuse).
  size_t sideStoreSlots() const { return Clocks.size(); }

  /// Renumbers live side-store handles in page order and drops retired
  /// buffers, so a snapshot walking pages front to back reads (and a
  /// restore re-assigns) handles sequentially — sequential side-store
  /// I/O instead of allocation-history order. Purely an internal
  /// renumbering: logical state, and therefore serialized images (which
  /// never encode handles), are unchanged.
  void compactSideStore();

  /// @}

  /// \name Geometry and snapshot iteration (no faulting).
  /// @{

  size_t numVars() const { return Vars; }
  size_t numPages() const { return Dir.size(); }
  size_t residentPages() const { return Resident; }

  /// True for lazily-paged tables (per-page lifecycle states exist).
  bool paged() const { return !Meta.empty(); }

  /// The page for index \p PI, or null when the region holds no
  /// materialized page (never-accessed, compressed, or summarized —
  /// disambiguate with pageStateAt).
  const Page *pageAt(size_t PI) const { return Dir[PI]; }

  /// Lifecycle state of page \p PI (eager tables are always Resident).
  ShadowPageState pageStateAt(size_t PI) const {
    if (!Meta.empty())
      return Meta[PI].State;
    return Dir[PI] ? ShadowPageState::Resident : ShadowPageState::Untouched;
  }

  /// Materializes the logical slot contents of page \p PI into \p Out
  /// (PageSize entries, ⊥-filled first) without faulting or mutating —
  /// compressed pages are expanded into \p Out, so a snapshot of a
  /// compressed page is byte-identical to one of its resident twin.
  /// \returns false when the page has no per-slot content (Untouched or
  /// Summarized).
  bool readPageContent(size_t PI, Slot *Out) const;

  /// The page-granularity summary slot of a Summarized page.
  const Slot &summaryAt(size_t PI) const {
    assert(pageStateAt(PI) == ShadowPageState::Summarized);
    return Meta[PI].Summary;
  }

  /// Installs \p S as page \p PI's summary slot (checkpoint restore of a
  /// kPageSummarized record). The page must hold no materialized state.
  void installSummary(size_t PI, const Slot &S) {
    assert(!Meta.empty() && "summarized pages require a paged table");
    assert(Dir[PI] == nullptr && "summary would shadow a materialized page");
    Meta[PI].State = ShadowPageState::Summarized;
    Meta[PI].Summary = S;
  }

  /// Slots of page \p PI that map to declared variables (the last page
  /// may be partial).
  uint32_t slotsInPage(size_t PI) const {
    size_t Base = PI << PageShift;
    size_t Left = Vars - Base;
    return Left < PageSize ? static_cast<uint32_t>(Left) : PageSize;
  }

  /// @}

  /// Bytes owned by the table: the directory, resident pages, page
  /// lifecycle metadata and compressed images, the side store's slot
  /// array and any heap-spilled (ClockArena) clock buffers, and the
  /// handle free list. Walking the side store is O(inflation
  /// high-water), matching the amortized contract of shadowBytes()
  /// probes.
  size_t memoryBytes() const {
    size_t Total = Dir.capacity() * sizeof(Page *) + Resident * sizeof(Page);
    Total += Meta.capacity() * sizeof(PageMeta);
    for (const PageMeta &M : Meta)
      if (M.Packed)
        Total += compressedBytes(*M.Packed);
    Total += Clocks.capacity() * sizeof(VectorClock);
    for (const VectorClock &Clock : Clocks)
      Total += Clock.memoryBytes();
    Total += FreeHandles.capacity() * sizeof(uint32_t);
    return Total;
  }

private:
  /// Per-page governance state, allocated for every paged table (24-32
  /// bytes per 512 variables; the stamping is what's gated on Governed).
  struct PageMeta {
    uint32_t LastTouch = 0; ///< Generation of the last slot() touch.
    ShadowPageState State = ShadowPageState::Untouched;
    std::unique_ptr<CompressedPage> Packed; ///< When State == Compressed.
    Slot Summary{};                         ///< When State == Summarized.
  };

  static size_t compressedBytes(const CompressedPage &C) {
    return sizeof(CompressedPage) + (C.Deltas ? PageSize : 0);
  }

  uint64_t highWaterBytes() const {
    return static_cast<uint64_t>(static_cast<double>(Policy.BudgetBytes) *
                                 Policy.HighWaterFrac);
  }
  uint64_t lowWaterBytes() const {
    return static_cast<uint64_t>(static_cast<double>(Policy.BudgetBytes) *
                                 Policy.LowWaterFrac);
  }

  Page *faultIn(size_t PI); // out of line: first touch is the cold path
  Slot &coldSlot(VarId X, size_t PI);
  void materializeEagerly(size_t NumPages);
  void releasePages() noexcept;

  /// The side-store allocation with no fault gate (internal joins and
  /// checkpoint restore must not consume injected-fault ordinals).
  EpochT inflateRaw() {
    uint32_t H;
    if (!FreeHandles.empty()) {
      H = FreeHandles.back();
      FreeHandles.pop_back();
      Clocks[H].resetToBottom();
    } else {
      H = static_cast<uint32_t>(Clocks.size());
      assert(RawT(H) < EpochT::MaxClock &&
             "side-store handle space exhausted for this epoch layout");
      Clocks.emplace_back();
    }
    ++Live;
    return handleEpoch(H);
  }

  bool takePageAllocFault();
  void takeInflateFault();
  void notePressure();
  bool compressPage(size_t PI);
  Page *decompressPage(size_t PI);
  void summarizePage(size_t PI);
  void shedColdPages(bool StopAtFreeHandle);
  EpochT foldClock(VectorClock &&VC);

  std::vector<Page *> Dir;        ///< Level 1: null = no materialized page.
  /// Flat view of the eager block for small tables (null when paging).
  /// Page holds nothing but its slot array, so the block's slots are
  /// contiguous and FlatSlots[X] is exactly Dir[X >> 9]->Slots[X & 511].
  Slot *FlatSlots = nullptr;
  std::unique_ptr<Page[]> EagerBlock; ///< Owns the contiguous small-table pages.
  size_t Vars = 0;                ///< Declared variable count.
  size_t Resident = 0;            ///< Pages faulted in (all, when eager).
  std::vector<PageMeta> Meta;     ///< Per-page lifecycle (paged mode only).
  std::vector<VectorClock> Clocks;///< Side store, indexed by handle.
  std::vector<uint32_t> FreeHandles; ///< Deflated handles awaiting reuse.
  uint64_t Live = 0;              ///< Handles currently in use.

  // --- governance state (see shadow/ShadowPolicy.h) ---
  ShadowMemoryPolicy Policy;
  ShadowGovernorStats Stats;
  bool Governed = false;
  bool SheddingArmed = false; ///< High watermark crossed, not yet back
                              ///< under the low one.
  bool ShedStalled = false;   ///< A shed pass could not reach the low
                              ///< watermark (everything left is hot);
                              ///< suppresses rescans until the next
                              ///< generation creates new cold candidates.
  uint32_t Gen = 1;           ///< Temperature generation (maintain ticks).
  /// Running byte estimate between maintenance ticks: page fault-ins,
  /// compressions, and releases update it immediately (the fault-in /
  /// inflation budget probes read it); side-store growth and container
  /// capacity drift are folded in by maintain()'s exact resync.
  uint64_t Bytes = 0;
  uint64_t PageAllocs = 0;    ///< Page allocations attempted (fault
                              ///< ordinal space for FailPageAllocAt).
  uint64_t InflateAllocs = 0; ///< Fresh side-store growths attempted
                              ///< (ordinal space for FailInflateAt).
};

extern template class ShadowTable<Epoch>;
extern template class ShadowTable<Epoch64>;

} // namespace ft

#endif // FASTTRACK_SHADOW_SHADOWTABLE_H
