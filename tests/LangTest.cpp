//===--- LangTest.cpp - MiniConc lexer, parser, sema, interpreter ---------===//

#include "lang/Interp.h"
#include "lang/Lexer.h"
#include "lang/Sema.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"
#include "hb/RaceOracle.h"

#include <gtest/gtest.h>

using namespace ft;
using namespace ft::lang;

namespace {

InterpResult runOk(const std::string &Source, uint64_t Seed = 1) {
  std::vector<Diag> Diags;
  InterpOptions Options;
  Options.Seed = Seed;
  InterpResult Result = runSource(Source, Diags, Options);
  EXPECT_TRUE(Diags.empty()) << (Diags.empty() ? "" : toString(Diags[0]));
  EXPECT_TRUE(Result.Ok) << toString(Result.Error);
  return Result;
}

std::vector<Diag> compileErrors(const std::string &Source) {
  Program P;
  std::vector<Diag> Diags;
  compileProgram(Source, P, Diags);
  return Diags;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer.
//===----------------------------------------------------------------------===//

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  auto Tokens = lex("fn main() { local x = 1 <= 2 && 3 != 4; }");
  std::vector<TokenKind> Kinds;
  for (const Token &Tok : Tokens)
    Kinds.push_back(Tok.Kind);
  std::vector<TokenKind> Expected = {
      TokenKind::KwFn,     TokenKind::Identifier, TokenKind::LParen,
      TokenKind::RParen,   TokenKind::LBrace,     TokenKind::KwLocal,
      TokenKind::Identifier, TokenKind::Assign,   TokenKind::IntLiteral,
      TokenKind::Le,       TokenKind::IntLiteral, TokenKind::AndAnd,
      TokenKind::IntLiteral, TokenKind::NotEq,    TokenKind::IntLiteral,
      TokenKind::Semicolon, TokenKind::RBrace,    TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, SkipsCommentsTracksLines) {
  auto Tokens = lex("// line\n/* block\nspans */ x");
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Line, 3u);
}

TEST(Lexer, ReportsBadCharactersAndOverflow) {
  auto Tokens = lex("@");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Error);
  auto Tokens2 = lex("99999999999999999999999");
  EXPECT_EQ(Tokens2[0].Kind, TokenKind::Error);
  auto Tokens3 = lex("/* unterminated");
  EXPECT_EQ(Tokens3[0].Kind, TokenKind::Error);
}

//===----------------------------------------------------------------------===//
// Parser and Sema diagnostics.
//===----------------------------------------------------------------------===//

TEST(Parser, ReportsMissingSemicolonWithLocation) {
  auto Diags = compileErrors("shared x\nfn main() { }");
  ASSERT_FALSE(Diags.empty());
  EXPECT_EQ(Diags[0].Line, 2u);
  EXPECT_NE(Diags[0].Message.find("';'"), std::string::npos);
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  auto Diags = compileErrors("fn main() { local = ; junk &&& ; }");
  EXPECT_GE(Diags.size(), 2u);
}

TEST(Sema, UnknownNamesAreRejected) {
  auto Diags = compileErrors("fn main() { x = 1; }");
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Message.find("unknown variable 'x'"),
            std::string::npos);
}

TEST(Sema, RequiresMain) {
  auto Diags = compileErrors("fn helper() { }");
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Message.find("no 'fn main()'"), std::string::npos);
}

TEST(Sema, ChecksArity) {
  auto Diags =
      compileErrors("fn f(a, b) { }\nfn main() { let t = spawn f(1); }");
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Message.find("expects 2 argument(s)"),
            std::string::npos);
}

TEST(Sema, DuplicateDeclarationsRejected) {
  EXPECT_FALSE(compileErrors("shared x; lock x; fn main() { }").empty());
  EXPECT_FALSE(
      compileErrors("fn main() { local a = 1; local a = 2; }").empty());
  EXPECT_FALSE(compileErrors("fn f() { } fn f() { } fn main() { }").empty());
}

TEST(Sema, ArrayUsageChecked) {
  EXPECT_FALSE(
      compileErrors("shared a[4]; fn main() { a = 1; }").empty());
  EXPECT_FALSE(compileErrors("shared x; fn main() { x[0] = 1; }").empty());
  EXPECT_TRUE(
      compileErrors("shared a[4]; fn main() { a[1] = 1; }").empty());
}

TEST(Sema, LocalsShadowGlobals) {
  // The local 'x' shadows the shared one: no shared events are emitted.
  InterpResult R = runOk("shared x;\n"
                         "fn main() { local x = 5; x = x + 1; print x; }");
  EXPECT_EQ(R.Output, "6\n");
  EXPECT_EQ(computeStats(R.EventTrace).total(), 0u);
}

//===----------------------------------------------------------------------===//
// Interpreter: sequential semantics.
//===----------------------------------------------------------------------===//

TEST(Interp, ArithmeticAndPrecedence) {
  InterpResult R = runOk("fn main() {\n"
                         "  print 2 + 3 * 4;\n"
                         "  print (2 + 3) * 4;\n"
                         "  print 10 / 3;\n"
                         "  print 10 % 3;\n"
                         "  print -5 + 1;\n"
                         "  print !0;\n"
                         "  print !7;\n"
                         "}");
  EXPECT_EQ(R.Output, "14\n20\n3\n1\n-4\n1\n0\n");
}

TEST(Interp, ComparisonsAndShortCircuit) {
  InterpResult R = runOk("fn boom() { return 1 / 0; }\n"
                         "fn main() {\n"
                         "  print 1 < 2;\n"
                         "  print 2 <= 1;\n"
                         "  print 0 && boom();\n" // must short-circuit
                         "  print 1 || boom();\n"
                         "  print 1 && 2;\n"
                         "}");
  EXPECT_EQ(R.Output, "1\n0\n0\n1\n1\n");
}

TEST(Interp, ControlFlow) {
  InterpResult R = runOk("fn main() {\n"
                         "  local i = 0;\n"
                         "  local sum = 0;\n"
                         "  while (i < 5) { sum = sum + i; i = i + 1; }\n"
                         "  if (sum == 10) { print 1; } else { print 0; }\n"
                         "  if (sum == 11) { print 1; } else if (sum == 10) "
                         "{ print 2; } else { print 3; }\n"
                         "}");
  EXPECT_EQ(R.Output, "1\n2\n");
}

TEST(Interp, FunctionsAndRecursion) {
  InterpResult R = runOk("fn fib(n) {\n"
                         "  if (n < 2) { return n; }\n"
                         "  return fib(n - 1) + fib(n - 2);\n"
                         "}\n"
                         "fn main() { print fib(10); }");
  EXPECT_EQ(R.Output, "55\n");
}

TEST(Interp, ImplicitReturnIsZero) {
  InterpResult R = runOk("fn f() { }\nfn main() { print f(); }");
  EXPECT_EQ(R.Output, "0\n");
}

TEST(Interp, SharedArraysReadAndWrite) {
  InterpResult R = runOk("shared a[3];\n"
                         "fn main() {\n"
                         "  local i = 0;\n"
                         "  while (i < 3) { a[i] = i * i; i = i + 1; }\n"
                         "  print a[0] + a[1] + a[2];\n"
                         "}");
  EXPECT_EQ(R.Output, "5\n");
  TraceStats Stats = computeStats(R.EventTrace);
  EXPECT_EQ(Stats.Writes, 3u);
  EXPECT_EQ(Stats.Reads, 3u);
}

TEST(Interp, RuntimeErrors) {
  std::vector<Diag> Diags;
  InterpResult R1 = runSource("fn main() { print 1 / 0; }", Diags);
  EXPECT_FALSE(R1.Ok);
  EXPECT_NE(R1.Error.Message.find("division by zero"), std::string::npos);

  InterpResult R2 =
      runSource("shared a[2]; fn main() { a[5] = 1; }", Diags);
  EXPECT_FALSE(R2.Ok);
  EXPECT_NE(R2.Error.Message.find("out of bounds"), std::string::npos);

  InterpResult R3 = runSource("fn main() { join 42; }", Diags);
  EXPECT_FALSE(R3.Ok);
  EXPECT_NE(R3.Error.Message.find("invalid thread handle"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Interpreter: concurrency and event emission.
//===----------------------------------------------------------------------===//

TEST(Interp, SpawnJoinEmitsForkJoinEvents) {
  InterpResult R = runOk("shared x;\n"
                         "fn child() { x = 1; }\n"
                         "fn main() { let t = spawn child(); join t; "
                         "print x; }");
  EXPECT_EQ(R.Output, "1\n");
  TraceStats Stats = computeStats(R.EventTrace);
  EXPECT_EQ(Stats.Forks, 1u);
  EXPECT_EQ(Stats.Joins, 1u);
  EXPECT_TRUE(isFeasible(R.EventTrace));
}

TEST(Interp, SyncEmitsAcquireRelease) {
  InterpResult R = runOk("shared x; lock m;\n"
                         "fn main() { sync (m) { x = x + 1; } print x; }");
  EXPECT_EQ(R.Output, "1\n");
  TraceStats Stats = computeStats(R.EventTrace);
  EXPECT_EQ(Stats.Acquires, 1u);
  EXPECT_EQ(Stats.Releases, 1u);
}

TEST(Interp, ReentrantSyncEmitsOneAcquireReleasePair) {
  InterpResult R = runOk("shared x; lock m;\n"
                         "fn inner() { sync (m) { x = x + 1; } }\n"
                         "fn main() { sync (m) { inner(); } print x; }");
  EXPECT_EQ(R.Output, "1\n");
  TraceStats Stats = computeStats(R.EventTrace);
  EXPECT_EQ(Stats.Acquires, 1u);
  EXPECT_EQ(Stats.Releases, 1u);
  EXPECT_TRUE(isFeasible(R.EventTrace)); // strict: no re-entrant pairs
}

TEST(Interp, ReturnInsideSyncReleasesTheLock) {
  InterpResult R = runOk("shared x; lock m;\n"
                         "fn f() { sync (m) { x = 1; return 7; } }\n"
                         "fn main() { print f(); sync (m) { x = 2; } "
                         "print x; }");
  EXPECT_EQ(R.Output, "7\n2\n");
  TraceStats Stats = computeStats(R.EventTrace);
  EXPECT_EQ(Stats.Acquires, 2u);
  EXPECT_EQ(Stats.Releases, 2u);
}

TEST(Interp, AtomicBlocksEmitMarkers) {
  InterpResult R = runOk("shared x;\n"
                         "fn main() { atomic { x = 1; x = 2; } }");
  TraceStats Stats = computeStats(R.EventTrace);
  EXPECT_EQ(Stats.AtomicMarkers, 2u);
  EXPECT_TRUE(isFeasible(R.EventTrace));
}

TEST(Interp, VolatilesEmitVolatileEvents) {
  InterpResult R = runOk("volatile flag;\n"
                         "fn main() { flag = 1; print flag; }");
  EXPECT_EQ(R.Output, "1\n");
  TraceStats Stats = computeStats(R.EventTrace);
  EXPECT_EQ(Stats.VolatileWrites, 1u);
  EXPECT_EQ(Stats.VolatileReads, 1u);
}

TEST(Interp, BarrierReleasesAllParties) {
  InterpResult R = runOk("shared x; barrier b(2);\n"
                         "fn worker() { x = 1; await b; }\n"
                         "fn main() { let t = spawn worker(); await b; "
                         "print x; join t; }");
  EXPECT_EQ(R.Output, "1\n");
  TraceStats Stats = computeStats(R.EventTrace);
  EXPECT_EQ(Stats.Barriers, 1u);
  EXPECT_TRUE(isFeasible(R.EventTrace));
}

TEST(Interp, MutexActuallyExcludes) {
  // Both threads increment under the lock 200 times; with exclusion the
  // final value is exactly 400 on every schedule.
  const char *Source = "shared x; lock m;\n"
                       "fn worker() {\n"
                       "  local i = 0;\n"
                       "  while (i < 200) {\n"
                       "    sync (m) { x = x + 1; }\n"
                       "    i = i + 1;\n"
                       "  }\n"
                       "}\n"
                       "fn main() {\n"
                       "  let t1 = spawn worker();\n"
                       "  let t2 = spawn worker();\n"
                       "  join t1; join t2;\n"
                       "  print x;\n"
                       "}";
  for (uint64_t Seed : {1, 7, 99}) {
    InterpResult R = runOk(Source, Seed);
    EXPECT_EQ(R.Output, "400\n") << "seed " << Seed;
    EXPECT_TRUE(isFeasible(R.EventTrace)) << "seed " << Seed;
  }
}

TEST(Interp, RacyIncrementCanLoseUpdates) {
  // Unsynchronized read-modify-write: some schedule loses an update.
  const char *Source = "shared x;\n"
                       "fn worker() {\n"
                       "  local i = 0;\n"
                       "  while (i < 50) { x = x + 1; i = i + 1; }\n"
                       "}\n"
                       "fn main() {\n"
                       "  let t1 = spawn worker();\n"
                       "  let t2 = spawn worker();\n"
                       "  join t1; join t2;\n"
                       "  print x;\n"
                       "}";
  bool SawLostUpdate = false;
  for (uint64_t Seed = 1; Seed != 20 && !SawLostUpdate; ++Seed) {
    InterpResult R = runOk(Source, Seed);
    SawLostUpdate = R.Output != "100\n";
  }
  EXPECT_TRUE(SawLostUpdate);
}

TEST(Interp, DeadlockIsDetected) {
  std::vector<Diag> Diags;
  // Two threads awaiting a 3-party barrier that never fills.
  InterpResult R = runSource("barrier b(3);\n"
                             "fn worker() { await b; }\n"
                             "fn main() { let t = spawn worker(); "
                             "await b; join t; }",
                             Diags);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("deadlock"), std::string::npos);
}

TEST(Interp, StepBudgetGuard) {
  std::vector<Diag> Diags;
  InterpOptions Options;
  Options.MaxSteps = 1000;
  InterpResult R =
      runSource("fn main() { while (1) { } }", Diags, Options);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("step budget"), std::string::npos);
}

TEST(Interp, DeterministicUnderSameSeed) {
  const char *Source = "shared x; lock m;\n"
                       "fn w(n) { local i = 0; while (i < n) { sync (m) "
                       "{ x = x + 1; } i = i + 1; } }\n"
                       "fn main() { let a = spawn w(20); let b = spawn "
                       "w(30); join a; join b; print x; }";
  InterpResult R1 = runOk(Source, 1234);
  InterpResult R2 = runOk(Source, 1234);
  EXPECT_EQ(R1.Steps, R2.Steps);
  EXPECT_EQ(R1.Output, R2.Output);
  ASSERT_EQ(R1.EventTrace.size(), R2.EventTrace.size());
  for (size_t I = 0; I != R1.EventTrace.size(); ++I)
    EXPECT_EQ(R1.EventTrace[I], R2.EventTrace[I]) << "op " << I;
}

TEST(Interp, SchedulesDifferUnderDifferentSeeds) {
  const char *Source = "shared x;\n"
                       "fn w() { local i = 0; while (i < 30) "
                       "{ x = i; i = i + 1; } }\n"
                       "fn main() { let a = spawn w(); let b = spawn w(); "
                       "join a; join b; }";
  InterpResult R1 = runOk(Source, 1);
  InterpResult R2 = runOk(Source, 2);
  bool Differ = R1.EventTrace.size() != R2.EventTrace.size();
  for (size_t I = 0; !Differ && I != R1.EventTrace.size(); ++I)
    Differ = !(R1.EventTrace[I] == R2.EventTrace[I]);
  EXPECT_TRUE(Differ);
}

TEST(Interp, TracesAreAlwaysFeasible) {
  const char *Source =
      "shared x; shared a[4]; lock m; volatile flag; barrier b(3);\n"
      "fn worker(id) {\n"
      "  local i = 0;\n"
      "  while (i < 20) {\n"
      "    sync (m) { x = x + 1; a[id % 4] = x; }\n"
      "    if (i == 10) { flag = id; }\n"
      "    i = i + 1;\n"
      "  }\n"
      "  await b;\n"
      "  atomic { a[0] = a[0] + flag; }\n"
      "}\n"
      "fn main() {\n"
      "  let t1 = spawn worker(1);\n"
      "  let t2 = spawn worker(2);\n"
      "  await b;\n"
      "  join t1; join t2;\n"
      "  print a[0];\n"
      "}";
  for (uint64_t Seed = 1; Seed != 25; ++Seed) {
    InterpResult R = runOk(Source, Seed);
    auto Violations = validateTrace(R.EventTrace);
    EXPECT_TRUE(Violations.empty())
        << "seed " << Seed << ": "
        << (Violations.empty() ? "" : Violations[0].Message);
  }
}

//===----------------------------------------------------------------------===//
// Wait / notify (Section 4: wait = release + subsequent acquire; notify
// induces no happens-before edges and emits nothing).
//===----------------------------------------------------------------------===//

TEST(Interp, WaitNotifyProducerConsumer) {
  const char *Source =
      "shared value; shared produced; lock m;\n"
      "fn producer() {\n"
      "  sync (m) {\n"
      "    value = 42;\n"
      "    produced = 1;\n"
      "    notify m;\n"
      "  }\n"
      "}\n"
      "fn main() {\n"
      "  let p = spawn producer();\n"
      "  sync (m) {\n"
      "    while (produced == 0) { wait m; }\n"
      "    print value;\n"
      "  }\n"
      "  join p;\n"
      "}";
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    InterpResult R = runOk(Source, Seed);
    EXPECT_EQ(R.Output, "42\n") << "seed " << Seed;
    EXPECT_TRUE(isFeasible(R.EventTrace)) << "seed " << Seed;
  }
}

TEST(Interp, WaitEmitsReleaseAndReacquire) {
  // One schedule where main must actually wait: its sync runs first.
  const char *Source = "shared flag; lock m;\n"
                       "fn setter() { sync (m) { flag = 1; notifyall m; } }\n"
                       "fn main() {\n"
                       "  let t = spawn setter();\n"
                       "  sync (m) { while (flag == 0) { wait m; } }\n"
                       "  join t;\n"
                       "}";
  bool SawWait = false;
  for (uint64_t Seed = 1; Seed != 20 && !SawWait; ++Seed) {
    InterpResult R = runOk(Source, Seed);
    TraceStats Stats = computeStats(R.EventTrace);
    ASSERT_EQ(Stats.Acquires, Stats.Releases) << "seed " << Seed;
    // A schedule where main waited has >2 acquire/release pairs: its
    // sync entry, the wait's release/reacquire, and the setter's pair.
    SawWait = Stats.Acquires > 2;
    EXPECT_TRUE(isFeasible(R.EventTrace)) << "seed " << Seed;
  }
  EXPECT_TRUE(SawWait);
}

TEST(Interp, NotifyAllWakesEveryWaiter) {
  const char *Source =
      "shared go; shared woke; lock m;\n"
      "fn waiter() {\n"
      "  sync (m) {\n"
      "    while (go == 0) { wait m; }\n"
      "    woke = woke + 1;\n"
      "  }\n"
      "}\n"
      "fn main() {\n"
      "  let a = spawn waiter();\n"
      "  let b = spawn waiter();\n"
      "  let c = spawn waiter();\n"
      "  sync (m) { go = 1; notifyall m; }\n"
      "  join a; join b; join c;\n"
      "  print woke;\n"
      "}";
  for (uint64_t Seed = 1; Seed != 10; ++Seed) {
    InterpResult R = runOk(Source, Seed);
    EXPECT_EQ(R.Output, "3\n") << "seed " << Seed;
  }
}

TEST(Interp, WaitWithoutLockIsARuntimeError) {
  std::vector<Diag> Diags;
  InterpResult R = runSource("lock m;\nfn main() { wait m; }", Diags);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("not held"), std::string::npos);

  InterpResult R2 = runSource("lock m;\nfn main() { notify m; }", Diags);
  EXPECT_FALSE(R2.Ok);
  EXPECT_NE(R2.Error.Message.find("not held"), std::string::npos);
}

TEST(Interp, LostWakeupDeadlockIsDetected) {
  // The notify fires before the wait on some schedule ordering: since the
  // whole notifier runs under the lock before main's sync can enter, a
  // schedule where the setter's critical section completes first leaves
  // main waiting forever.
  const char *Source = "lock m;\n"
                       "fn poker() { sync (m) { notify m; } }\n"
                       "fn main() {\n"
                       "  let t = spawn poker();\n"
                       "  sync (m) { wait m; }\n"
                       "  join t;\n"
                       "}";
  std::vector<Diag> Diags;
  bool SawDeadlock = false;
  for (uint64_t Seed = 1; Seed != 20 && !SawDeadlock; ++Seed) {
    InterpOptions Options;
    Options.Seed = Seed;
    InterpResult R = runSource(Source, Diags, Options);
    ASSERT_TRUE(Diags.empty());
    if (!R.Ok) {
      EXPECT_NE(R.Error.Message.find("deadlock"), std::string::npos);
      SawDeadlock = true;
    }
  }
  EXPECT_TRUE(SawDeadlock);
}

TEST(Interp, WaitNotifyTraceIsRaceFreeUnderFastTrack) {
  // The condition-variable hand-off orders producer writes before the
  // consumer's reads purely through wait's release/acquire pair.
  const char *Source =
      "shared data; shared ready; lock m;\n"
      "fn producer() { sync (m) { data = 7; ready = 1; notify m; } }\n"
      "fn main() {\n"
      "  let p = spawn producer();\n"
      "  sync (m) { while (ready == 0) { wait m; } }\n"
      "  print data;\n"
      "  join p;\n"
      "}";
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    InterpResult R = runOk(Source, Seed);
    EXPECT_TRUE(isRaceFree(R.EventTrace)) << "seed " << Seed;
  }
}

TEST(Sema, WaitNotifyRequireKnownLock) {
  EXPECT_FALSE(compileErrors("fn main() { wait nope; }").empty());
  EXPECT_FALSE(compileErrors("fn main() { notify nope; }").empty());
  EXPECT_FALSE(compileErrors("fn main() { notifyall nope; }").empty());
}

//===----------------------------------------------------------------------===//
// Corner cases of the abstract machine.
//===----------------------------------------------------------------------===//

TEST(Interp, ReturnThroughNestedSyncAndAtomicUnwinds) {
  // Returning from deep inside sync+atomic must emit the matching rel
  // and aend events, in order.
  const char *Source =
      "shared x; lock m; lock n;\n"
      "fn f() {\n"
      "  sync (m) { atomic { sync (n) { x = 1; return 9; } } }\n"
      "}\n"
      "fn main() { print f(); sync (m) { x = 2; } }";
  InterpResult R = runOk(Source);
  EXPECT_EQ(R.Output, "9\n");
  TraceStats Stats = computeStats(R.EventTrace);
  EXPECT_EQ(Stats.Acquires, 3u);
  EXPECT_EQ(Stats.Releases, 3u);
  EXPECT_EQ(Stats.AtomicMarkers, 2u);
  EXPECT_TRUE(isFeasible(R.EventTrace));
}

TEST(Interp, SpawnFromWorkerThread) {
  const char *Source = "shared x;\n"
                       "fn leaf() { x = x + 1; }\n"
                       "fn mid() { let t = spawn leaf(); join t; x = x + 1; }\n"
                       "fn main() { let t = spawn mid(); join t; print x; }";
  InterpResult R = runOk(Source);
  EXPECT_EQ(R.Output, "2\n");
  EXPECT_TRUE(isFeasible(R.EventTrace));
  EXPECT_TRUE(isRaceFree(R.EventTrace)); // fork/join chain orders all
}

TEST(Interp, SpawnResultUsableInExpressions) {
  // Thread handles are ordinary integers; main has handle 0.
  InterpResult R = runOk("fn w() { local z = 0; }\n"
                         "fn main() { let t = spawn w(); print t; join t; }");
  EXPECT_EQ(R.Output, "1\n");
}

TEST(Interp, DeepRecursionWithinReason) {
  InterpResult R = runOk("fn sum(n) { if (n == 0) { return 0; } "
                         "return n + sum(n - 1); }\n"
                         "fn main() { print sum(200); }");
  EXPECT_EQ(R.Output, "20100\n");
}

TEST(Interp, WhileConditionWithSideEffectFunctions) {
  InterpResult R = runOk("shared c;\n"
                         "fn bump() { c = c + 1; return c; }\n"
                         "fn main() { while (bump() < 4) { } print c; }");
  EXPECT_EQ(R.Output, "4\n");
}

TEST(Interp, DoubleJoinIsHarmlessAndEmitsOneEvent) {
  InterpResult R = runOk("shared x;\nfn w() { x = 1; }\n"
                         "fn main() { let t = spawn w(); join t; join t; }");
  EXPECT_EQ(computeStats(R.EventTrace).Joins, 1u);
  EXPECT_TRUE(isFeasible(R.EventTrace));
}

TEST(Interp, ArrayIndexExpressionsAreEvaluatedOnce) {
  InterpResult R = runOk("shared a[4]; shared i;\n"
                         "fn main() {\n"
                         "  a[i + 1] = 5;\n"
                         "  print a[1];\n"
                         "}");
  EXPECT_EQ(R.Output, "5\n");
}

TEST(Interp, NegativeArrayIndexCaught) {
  std::vector<Diag> Diags;
  InterpResult R =
      runSource("shared a[4]; fn main() { a[0 - 1] = 1; }", Diags);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.Message.find("out of bounds"), std::string::npos);
}

TEST(Interp, BarrierIsReusableAcrossPhases) {
  const char *Source =
      "shared x; barrier b(2);\n"
      "fn w() { x = 1; await b; await b; }\n"
      "fn main() { let t = spawn w(); await b; x = 2; await b; join t; "
      "print x; }";
  // Wait: main's write between the barriers is ordered against the
  // worker's pre-barrier write; the trace must have two barrier events.
  InterpResult R = runOk(Source);
  EXPECT_EQ(computeStats(R.EventTrace).Barriers, 2u);
  EXPECT_TRUE(isRaceFree(R.EventTrace));
}
