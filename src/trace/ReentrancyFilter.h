//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks per-(thread, lock) nesting depth to strip redundant re-entrant
/// acquire/release pairs, as RoadRunner does before events reach tools
/// (Section 4, "ROADRUNNER"). Shared by the serial replay loop and the
/// shard-partition pre-pass so both engines dispatch exactly the same
/// lock events.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_REENTRANCYFILTER_H
#define FASTTRACK_TRACE_REENTRANCYFILTER_H

#include "support/ByteStream.h"
#include "trace/Ids.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace ft {

class ReentrancyFilter {
public:
  ReentrancyFilter() = default;

  /// Sized variant: when the thread × lock space is small (the common
  /// case — this is an O(1) array lookup per lock event instead of a
  /// hash probe), depths live in a dense table. Falls back to the hash
  /// map for huge id spaces.
  ReentrancyFilter(unsigned NumThreads, unsigned NumLocks) {
    if (static_cast<uint64_t>(NumThreads) * NumLocks <= DenseLimit) {
      Locks = NumLocks;
      Dense.assign(static_cast<size_t>(NumThreads) * NumLocks, 0);
    }
  }

  /// Returns true when this acquire is the outermost one (dispatch it).
  bool onAcquire(ThreadId T, LockId M) {
    if (!Dense.empty())
      return ++Dense[static_cast<size_t>(T) * Locks + M] == 1;
    return ++Depth[key(T, M)] == 1;
  }

  /// Returns true when this release exits the outermost level.
  bool onRelease(ThreadId T, LockId M) {
    if (!Dense.empty()) {
      unsigned &D = Dense[static_cast<size_t>(T) * Locks + M];
      if (D == 0)
        return true; // Infeasible trace; dispatch and let tools cope.
      return --D == 0;
    }
    auto It = Depth.find(key(T, M));
    if (It == Depth.end() || It->second == 0)
      return true; // Infeasible trace; dispatch and let tools cope.
    if (--It->second == 0) {
      Depth.erase(It);
      return true;
    }
    return false;
  }

  /// Checkpoint support: the filter's nesting depths are replay-cursor
  /// state — resuming a trace mid-stream must dispatch exactly the lock
  /// events the uninterrupted run would have. Sparse depths are written
  /// in sorted key order so images are deterministic.
  void snapshot(ByteWriter &Writer) const {
    Writer.u32(Locks);
    Writer.u64(Dense.size());
    for (unsigned D : Dense)
      Writer.u32(D);
    std::vector<std::pair<uint64_t, unsigned>> Sorted(Depth.begin(),
                                                      Depth.end());
    std::sort(Sorted.begin(), Sorted.end());
    Writer.u64(Sorted.size());
    for (const auto &[Key, D] : Sorted) {
      Writer.u64(Key);
      Writer.u32(D);
    }
  }

  /// Restores what snapshot() wrote. \returns false on a malformed image.
  bool restore(ByteReader &Reader) {
    Locks = Reader.u32();
    uint64_t DenseSize = Reader.u64();
    // Divide rather than multiply: a hostile length must not wrap around
    // and slip past the bound into a huge allocation.
    if (Reader.failed() || DenseSize > Reader.remaining() / 4)
      return false;
    Dense.assign(DenseSize, 0);
    for (unsigned &D : Dense)
      D = Reader.u32();
    Depth.clear();
    uint64_t SparseSize = Reader.u64();
    if (Reader.failed() || SparseSize > Reader.remaining() / 12)
      return false;
    for (uint64_t I = 0; I != SparseSize; ++I) {
      uint64_t Key = Reader.u64();
      Depth[Key] = Reader.u32();
    }
    return !Reader.failed();
  }

private:
  static constexpr uint64_t DenseLimit = 1u << 20;

  static uint64_t key(ThreadId T, LockId M) {
    return (static_cast<uint64_t>(T) << 32) | M;
  }
  unsigned Locks = 0;
  std::vector<unsigned> Dense;
  std::unordered_map<uint64_t, unsigned> Depth;
};

} // namespace ft

#endif // FASTTRACK_TRACE_REENTRANCYFILTER_H
