//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-thread free-list arena for vector-clock heap buffers.
///
/// VectorClock stores up to VectorClock::InlineCapacity entries inline;
/// wider clocks need a heap block. Those blocks come from here instead of
/// the global allocator: released blocks park on a thread-local free list
/// (one list per power-of-two capacity class) and are handed back on the
/// next acquire of the same class. The paths that matter are FastTrack's
/// [FT READ SHARE] inflation and DJIT+/BasicVC per-variable clock growth —
/// with recycling, neither touches `operator new` in steady state.
///
/// The lists are thread-local on purpose: the sharded replay engine runs
/// tool clones on worker threads, and a shared pool would put a lock (or
/// CAS traffic) on the clock-growth path. A block released on a different
/// thread than it was acquired on simply migrates to the releasing
/// thread's pool; each list is only ever touched by its owning thread, so
/// the arena is data-race-free with no atomics at all.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CLOCK_CLOCKARENA_H
#define FASTTRACK_CLOCK_CLOCKARENA_H

#include <cstdint>

namespace ft {

/// Activity counters for the calling thread's arena (test/bench
/// observability; not part of the paper's Table 2 accounting).
struct ClockArenaStats {
  /// Blocks obtained from the global allocator (free list missed).
  uint64_t FreshBlocks = 0;
  /// Blocks served from the free list (global allocator avoided).
  uint64_t ReusedBlocks = 0;
  /// Blocks currently parked on the free lists.
  uint64_t CachedBlocks = 0;
};

/// The arena interface. All methods act on the calling thread's pool.
class ClockArena {
public:
  /// Smallest heap block, in entries. Capacities are powers of two from
  /// here up, so every released block fits a well-known class.
  static constexpr uint32_t MinEntries = 16;

  /// Largest block the free lists cache, in entries (64 KiB of clock
  /// values). Wider blocks — thousands of threads — bypass the cache.
  static constexpr uint32_t MaxCachedEntries = 16384;

  /// Returns a zero-filled block of at least \p MinNeeded entries;
  /// \p CapOut receives the actual (power-of-two) capacity.
  static uint32_t *acquire(uint32_t MinNeeded, uint32_t &CapOut);

  /// Returns \p Block (previously acquire()d with capacity \p Cap) to the
  /// calling thread's pool.
  static void release(uint32_t *Block, uint32_t Cap) noexcept;

  /// The calling thread's counters.
  static ClockArenaStats stats();

  /// Zeroes the calling thread's Fresh/Reused counters (CachedBlocks
  /// reflects live state and is not reset).
  static void resetStats();
};

} // namespace ft

#endif // FASTTRACK_CLOCK_CLOCKARENA_H
