//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ShardableTool mixin: how a Tool opts in to variable-sharded
/// parallel replay (docs/ARCHITECTURE.md, "Sharded replay";
/// docs/TOOL_AUTHORING.md, step 6).
///
/// A tool may opt in when its access handlers touch only (a) the shadow
/// state of the accessed variable and (b) per-thread synchronization
/// state that evolves independently of data accesses. All pure race
/// detectors in this repository satisfy that; the transactional checkers
/// (Atomizer, Velodrome, SingleTrack), whose per-thread clocks join along
/// *data communication* edges, do not — they simply never implement this
/// interface and ParallelReplay falls back to serial replay for them.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_SHARDABLETOOL_H
#define FASTTRACK_FRAMEWORK_SHARDABLETOOL_H

#include <memory>

namespace ft {

class ByteReader;
class ByteWriter;
class Tool;

/// How a shard worker reconstructs the synchronization state a tool's
/// access handlers read.
enum class ShardMode : uint8_t {
  /// Every worker replays the full sync schedule through its own clone
  /// (plus its shard's accesses). Right for tools with cheap, non-VC
  /// sync state — e.g. Eraser's locks-held sets.
  SyncReplay,

  /// Workers never see sync events: the engine precomputes the per-thread
  /// vector clocks at every sync point once (the "sync spine") and
  /// installs them into each clone via
  /// VectorClockToolBase::applySpineClock. Requires the tool's sync
  /// behaviour to be exactly VectorClockToolBase's Figure 3 rules; the
  /// engine verifies the clone is a VectorClockToolBase and otherwise
  /// degrades to SyncReplay.
  SpineDriven,
};

/// Interface a Tool additionally implements (multiple inheritance) to
/// participate in ParallelReplay.
class ShardableTool {
public:
  virtual ~ShardableTool();

  virtual ShardMode shardMode() const = 0;

  /// Returns a fresh, un-begun instance configured identically to this
  /// tool (same options/flags). One clone is created per shard.
  virtual std::unique_ptr<Tool> cloneForShard() const = 0;

  /// Folds \p ShardTool's instrumentation counters (rule statistics and
  /// the like) into this — the primary — instance. Called once per clone
  /// after all workers join; \p ShardTool is always an object returned by
  /// this tool's cloneForShard(). Warnings are merged separately by the
  /// engine (Tool::adoptWarnings), so implementations only fold counters.
  virtual void mergeShard(Tool &ShardTool) = 0;

  /// \name Checkpoint hooks (framework/Checkpoint.h)
  /// A tool additionally opts in to checkpoint/resume of long replays by
  /// serializing its complete analysis state — everything its handlers
  /// read or write, including instrumentation counters — such that a
  /// restored instance continues bit-identically. Warnings and the
  /// replay cursor are saved by the checkpoint driver; these hooks cover
  /// only tool-owned shadow state. VectorClockToolBase provides
  /// snapshotClocks/restoreClocks for the C/L components.
  /// @{

  /// True when snapshotShadow/restoreShadow are implemented.
  virtual bool supportsCheckpoint() const { return false; }

  /// Serializes all tool-owned analysis state into \p Writer.
  virtual void snapshotShadow(ByteWriter &Writer) const { (void)Writer; }

  /// Restores state serialized by snapshotShadow. begin() has already
  /// been called with the same ToolContext the snapshotting instance
  /// saw. \returns false when the image is malformed (the driver then
  /// reports a structured CheckpointError instead of crashing).
  virtual bool restoreShadow(ByteReader &Reader) {
    (void)Reader;
    return false;
  }

  /// @}
};

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_SHARDABLETOOL_H
