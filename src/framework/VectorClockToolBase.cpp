#include "framework/VectorClockToolBase.h"

#include "support/ByteStream.h"

using namespace ft;

void VectorClockToolBase::begin(const ToolContext &Context) {
  C.assign(Context.NumThreads, VectorClock());
  ClockCache.assign(Context.NumThreads, 0);
  View.assign(Context.NumThreads, nullptr);
  // σ0: C = λt.inc_t(⊥V) — every thread starts at clock 1 in its own entry.
  for (ThreadId T = 0; T != Context.NumThreads; ++T) {
    C[T].inc(T);
    View[T] = &C[T]; // C is fully sized; its elements never move again
    refreshClock(T);
  }
  L.assign(Context.NumLocks, VectorClock());
  LVolatile.assign(Context.NumVolatiles, VectorClock());
}

void VectorClockToolBase::onAcquire(ThreadId T, LockId M, size_t) {
  C[T].joinWith(L[M]);
}

void VectorClockToolBase::onRelease(ThreadId T, LockId M, size_t) {
  L[M].copyFrom(C[T]);
  C[T].inc(T);
  refreshClock(T);
}

void VectorClockToolBase::onFork(ThreadId T, ThreadId U, size_t) {
  // Slot reincarnation (the online engine recycles joined threads' ids):
  // begin() set every own-entry to 1 and only a join of U bumps Cu(U)
  // further, so an own-entry above 1 here means U's slot carries a dead
  // previous lifetime. No special handling is needed — Cu still holds the
  // dead thread's final clock f, the predecessor's join already moved
  // Cu(U) to f+1, and the join below layers the parent's clock on top.
  // The fork edge thus doubles as the implicit dead-U → new-U edge: every
  // stale epoch c@U (c ≤ f) left in write/read shadow state — including
  // entries inside read-shared VCs — tests happens-before the new
  // lifetime's work, and the new lifetime's own epochs start at f+1, so
  // they never collide with the dead one's. (Races *between* the dead
  // thread and its reincarnation are suppressed by construction, exactly
  // as the real fork/join ordering demands.)
  if (C[U].get(U) > 1)
    ++clockStats().Reincarnations;
  C[U].joinWith(C[T]);
  refreshClock(U);
  C[T].inc(T);
  refreshClock(T);
}

void VectorClockToolBase::onJoin(ThreadId T, ThreadId U, size_t) {
  C[T].joinWith(C[U]);
  refreshClock(T);
  C[U].inc(U);
  refreshClock(U);
}

void VectorClockToolBase::onVolatileRead(ThreadId T, VolatileId V, size_t) {
  C[T].joinWith(LVolatile[V]);
}

void VectorClockToolBase::onVolatileWrite(ThreadId T, VolatileId V, size_t) {
  LVolatile[V].joinWith(C[T]);
  C[T].inc(T);
  refreshClock(T);
}

void VectorClockToolBase::onBarrier(const std::vector<ThreadId> &Threads,
                                    size_t) {
  VectorClock Joined;
  for (ThreadId U : Threads)
    Joined.joinWith(C[U]);
  for (ThreadId U : Threads) {
    C[U].copyFrom(Joined);
    C[U].inc(U);
    refreshClock(U);
  }
}

void VectorClockToolBase::writeClock(ByteWriter &Writer,
                                     const VectorClock &Clock) {
  // Canonical form: trailing zeros are trimmed. Restore re-derives sizes
  // from the highest nonzero entry, so without trimming an uninterrupted
  // run and a resumed one could serialize semantically-equal clocks with
  // different stored sizes — breaking the bit-identical-image contract
  // the checkpoint tests verify against.
  uint32_t Size = Clock.size();
  while (Size != 0 && Clock.get(Size - 1) == 0)
    --Size;
  Writer.u32(Size);
  for (ThreadId T = 0; T != Size; ++T)
    Writer.u32(Clock.get(T));
}

bool VectorClockToolBase::readClock(ByteReader &Reader, VectorClock &Clock) {
  uint32_t Size = Reader.u32();
  // Bound the size by the bytes actually available so a corrupt length
  // cannot drive a multi-gigabyte allocation before reads start failing.
  if (Reader.failed() || static_cast<uint64_t>(Size) * 4 > Reader.remaining())
    return false;
  Clock = VectorClock();
  for (uint32_t T = 0; T != Size; ++T) {
    ClockValue V = Reader.u32();
    if (V != 0)
      Clock.set(T, V);
  }
  return !Reader.failed();
}

void VectorClockToolBase::snapshotClocks(ByteWriter &Writer) const {
  Writer.u32(C.size());
  for (const VectorClock &Clock : C)
    writeClock(Writer, Clock);
  Writer.u32(L.size());
  for (const VectorClock &Clock : L)
    writeClock(Writer, Clock);
  Writer.u32(LVolatile.size());
  for (const VectorClock &Clock : LVolatile)
    writeClock(Writer, Clock);
}

bool VectorClockToolBase::restoreClocks(ByteReader &Reader) {
  if (Reader.u32() != C.size())
    return false;
  for (ThreadId T = 0; T != C.size(); ++T) {
    if (!readClock(Reader, C[T]))
      return false;
    View[T] = &C[T];
    refreshClock(T);
  }
  if (Reader.u32() != L.size())
    return false;
  for (VectorClock &Clock : L)
    if (!readClock(Reader, Clock))
      return false;
  if (Reader.u32() != LVolatile.size())
    return false;
  for (VectorClock &Clock : LVolatile)
    if (!readClock(Reader, Clock))
      return false;
  return !Reader.failed();
}

size_t VectorClockToolBase::shadowBytes() const {
  size_t Bytes = 0;
  for (const VectorClock &Clock : C)
    Bytes += sizeof(VectorClock) + Clock.memoryBytes();
  for (const VectorClock &Clock : L)
    Bytes += sizeof(VectorClock) + Clock.memoryBytes();
  for (const VectorClock &Clock : LVolatile)
    Bytes += sizeof(VectorClock) + Clock.memoryBytes();
  Bytes += ClockCache.capacity() * sizeof(ClockValue);
  Bytes += View.capacity() * sizeof(const VectorClock *);
  return Bytes;
}
