#include "checkers/Velodrome.h"

using namespace ft;

void Velodrome::checkIncomingEdge(ThreadId T, const VectorClock &Source,
                                  ThreadId From, size_t OpIndex,
                                  const std::string &EdgeDesc) {
  // Cycle: the edge's producer already observed an operation of this
  // still-active block (its view of t reaches into the block).
  if (Source.get(T) >= txn(T).BeginClock)
    reportViolation(T, OpIndex,
                    "serializability cycle via " + EdgeDesc +
                        " from thread " + std::to_string(From));
}
