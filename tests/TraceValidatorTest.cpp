//===--- TraceValidatorTest.cpp - feasibility rules of Section 2.1 --------===//

#include "trace/TraceBuilder.h"
#include "trace/TraceValidator.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

std::vector<TraceViolation> check(const Trace &T) { return validateTrace(T); }

} // namespace

TEST(TraceValidator, EmptyTraceIsFeasible) {
  Trace T;
  EXPECT_TRUE(isFeasible(T));
}

TEST(TraceValidator, WellFormedForkJoinLocking) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .lockedWr(0, 0, 0)
                .lockedRd(1, 0, 0)
                .join(0, 1)
                .take();
  EXPECT_TRUE(isFeasible(T));
}

// Rule 1: no thread acquires a lock previously acquired but not released.
TEST(TraceValidator, DoubleAcquireByOtherThreadIsInfeasible) {
  Trace T = TraceBuilder().fork(0, 1).acq(0, 0).acq(1, 0).take();
  auto V = check(T);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0].OpIndex, 2u);
  EXPECT_NE(V[0].Message.find("acquired while held"), std::string::npos);
}

TEST(TraceValidator, ReentrantAcquireRejectedByDefault) {
  Trace T = TraceBuilder().acq(0, 0).acq(0, 0).take();
  EXPECT_FALSE(isFeasible(T));
}

TEST(TraceValidator, ReentrantAcquireAllowedWithOption) {
  Trace T =
      TraceBuilder().acq(0, 0).acq(0, 0).rel(0, 0).rel(0, 0).take();
  TraceValidatorOptions Options;
  Options.AllowReentrantLocks = true;
  EXPECT_TRUE(isFeasible(T, Options));
  EXPECT_FALSE(isFeasible(T));
}

TEST(TraceValidator, ReentrantUnderflowStillCaught) {
  Trace T = TraceBuilder().acq(0, 0).rel(0, 0).rel(0, 0).take();
  TraceValidatorOptions Options;
  Options.AllowReentrantLocks = true;
  EXPECT_FALSE(isFeasible(T, Options));
}

// Rule 2: no thread releases a lock it did not previously acquire.
TEST(TraceValidator, ReleaseWithoutAcquireIsInfeasible) {
  Trace T = TraceBuilder().rel(0, 3).take();
  auto V = check(T);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_NE(V[0].Message.find("does not hold"), std::string::npos);
}

TEST(TraceValidator, ReleaseOfLockHeldByOtherThreadIsInfeasible) {
  Trace T = TraceBuilder().fork(0, 1).acq(0, 0).rel(1, 0).take();
  EXPECT_FALSE(isFeasible(T));
}

// Rule 3: no operations of u before fork(t,u) or after join(v,u).
TEST(TraceValidator, OperationBeforeForkIsInfeasible) {
  Trace T = TraceBuilder().wr(1, 0).fork(0, 1).take();
  auto V = check(T);
  ASSERT_FALSE(V.empty());
  EXPECT_NE(V[0].Message.find("before being forked"), std::string::npos);
}

TEST(TraceValidator, OperationAfterJoinIsInfeasible) {
  Trace T = TraceBuilder().fork(0, 1).wr(1, 0).join(0, 1).wr(1, 0).take();
  auto V = check(T);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0].OpIndex, 3u);
  EXPECT_NE(V[0].Message.find("after being joined"), std::string::npos);
}

TEST(TraceValidator, UnforkedThreadAllowedWhenOptionDisabled) {
  Trace T = TraceBuilder().wr(1, 0).take();
  TraceValidatorOptions Options;
  Options.RequireFork = false;
  EXPECT_TRUE(isFeasible(T, Options));
  EXPECT_FALSE(isFeasible(T));
}

// Rule 4: at least one operation of u between fork(t,u) and join(v,u).
TEST(TraceValidator, EmptyForkJoinSpanIsInfeasible) {
  Trace T = TraceBuilder().fork(0, 1).join(0, 1).take();
  auto V = check(T);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_NE(V[0].Message.find("rule 4"), std::string::npos);
}

TEST(TraceValidator, SelfForkAndSelfJoinRejected) {
  EXPECT_FALSE(isFeasible(TraceBuilder().fork(0, 0).take()));
  Trace T = TraceBuilder().fork(0, 1).wr(1, 0).join(1, 1).take();
  EXPECT_FALSE(isFeasible(T));
}

TEST(TraceValidator, DoubleForkRejected) {
  Trace T = TraceBuilder().fork(0, 1).wr(1, 0).fork(0, 1).take();
  EXPECT_FALSE(isFeasible(T));
}

TEST(TraceValidator, JoinOfUnforkedThreadRejected) {
  Trace T = TraceBuilder().join(0, 1).take();
  EXPECT_FALSE(isFeasible(T));
}

TEST(TraceValidator, DoubleJoinRejected) {
  Trace T =
      TraceBuilder().fork(0, 1).wr(1, 0).join(0, 1).join(0, 1).take();
  EXPECT_FALSE(isFeasible(T));
}

TEST(TraceValidator, BarrierOfRunningThreadsIsFeasible) {
  Trace T = TraceBuilder().fork(0, 1).barrier({0, 1}).wr(1, 0).join(0, 1)
                .take();
  EXPECT_TRUE(isFeasible(T));
}

TEST(TraceValidator, BarrierOfUnforkedThreadRejected) {
  Trace T = TraceBuilder().barrier({0, 1}).take();
  EXPECT_FALSE(isFeasible(T));
}

TEST(TraceValidator, BarrierCountsAsOperationForRule4) {
  // The only "operation" of thread 1 between fork and join is barrier
  // membership; that suffices.
  Trace T = TraceBuilder().fork(0, 1).barrier({0, 1}).join(0, 1).take();
  EXPECT_TRUE(isFeasible(T));
}

TEST(TraceValidator, UnbalancedAtomicMarkers) {
  EXPECT_FALSE(isFeasible(TraceBuilder().atomicEnd(0).take()));
  EXPECT_FALSE(isFeasible(TraceBuilder().atomicBegin(0).take()));
  EXPECT_TRUE(isFeasible(
      TraceBuilder().atomicBegin(0).wr(0, 0).atomicEnd(0).take()));
}

TEST(TraceValidator, NestedAtomicBlocksAllowed) {
  Trace T = TraceBuilder()
                .atomicBegin(0)
                .atomicBegin(0)
                .wr(0, 0)
                .atomicEnd(0)
                .atomicEnd(0)
                .take();
  EXPECT_TRUE(isFeasible(T));
}

TEST(TraceValidator, ReportsMultipleViolations) {
  Trace T = TraceBuilder().rel(0, 0).rel(0, 1).take();
  EXPECT_EQ(check(T).size(), 2u);
}

TEST(TraceValidator, BarrierOfJoinedThreadRejected) {
  // Thread 1 is joined before the barrier; barrier membership is an
  // action, so it violates "no thread acts after being joined".
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .join(0, 1)
                .barrier({0, 1})
                .take();
  auto V = check(T);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0].OpIndex, 3u);
  EXPECT_NE(V[0].Message.find("after being joined"), std::string::npos);
}

TEST(TraceValidator, JoinByThirdThreadIsFeasible) {
  // The joiner need not be the forker.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .wr(1, 0)
                .wr(2, 1)
                .join(2, 1)
                .join(0, 2)
                .take();
  EXPECT_TRUE(isFeasible(T));
}

TEST(TraceValidator, JoinOfAlreadyJoinedThreadByAnotherThreadRejected) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .wr(1, 0)
                .wr(2, 1)
                .join(0, 1)
                .join(2, 1) // thread 1 already joined
                .take();
  auto V = check(T);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0].OpIndex, 5u);
  EXPECT_NE(V[0].Message.find("not running"), std::string::npos);
}

TEST(TraceValidator, ReforkOfJoinedThreadRejected) {
  // By default the thread lifecycle is fork → act → join, once; only
  // AllowTidReuse (the online engine's recycled slots) relaxes this.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .join(0, 1)
                .fork(0, 1)
                .take();
  auto V = check(T);
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0].OpIndex, 3u);
  EXPECT_NE(V[0].Message.find("forked twice"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// AllowTidReuse: recycled-slot captures (fork-after-join of the same tid).
//===----------------------------------------------------------------------===//

namespace {

TraceValidatorOptions tidReuse() {
  TraceValidatorOptions Options;
  Options.AllowTidReuse = true;
  return Options;
}

} // namespace

TEST(TraceValidator, TidReuseAcceptsForkAfterJoin) {
  // Two complete lifetimes of tid 1, back to back — exactly what a
  // recycled engine slot captures.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .join(0, 1)
                .fork(0, 1)
                .rd(1, 0)
                .join(0, 1)
                .take();
  EXPECT_TRUE(isFeasible(T, tidReuse()));
  EXPECT_FALSE(isFeasible(T)); // default still rejects the refork
}

TEST(TraceValidator, TidReuseAcceptsManyIncarnations) {
  TraceBuilder B;
  for (int I = 0; I != 5; ++I)
    B.fork(0, 1).wr(1, static_cast<VarId>(I)).join(0, 1);
  EXPECT_TRUE(isFeasible(B.take(), tidReuse()));
}

TEST(TraceValidator, TidReuseStillRejectsActInTheJoinedGap) {
  // An op of tid 1 after its join but before its next fork belongs to no
  // lifetime — still rule (3), reuse or not.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .join(0, 1)
                .wr(1, 0) // the gap
                .fork(0, 1)
                .rd(1, 0)
                .join(0, 1)
                .take();
  auto V = validateTrace(T, tidReuse());
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0].OpIndex, 3u);
  EXPECT_NE(V[0].Message.find("acts after being joined"), std::string::npos);
}

TEST(TraceValidator, TidReuseStillRejectsDoubleForkWhileRunning) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .fork(0, 1) // still running: not a reincarnation
                .take();
  auto V = validateTrace(T, tidReuse());
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0].OpIndex, 2u);
  EXPECT_NE(V[0].Message.find("forked twice"), std::string::npos);
}

TEST(TraceValidator, TidReuseStillRejectsSelfFork) {
  Trace T = TraceBuilder().fork(0, 1).wr(1, 0).join(0, 1).take();
  Trace Self = TraceBuilder().fork(0, 0).take();
  EXPECT_TRUE(isFeasible(T, tidReuse()));
  EXPECT_FALSE(isFeasible(Self, tidReuse()));
}

TEST(TraceValidator, TidReuseEnforcesRule4PerIncarnation) {
  // The first lifetime of tid 1 has an op, the second does not: rule (4)
  // must flag the second incarnation's empty span even though OpCount[1]
  // is nonzero overall.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .join(0, 1)
                .fork(0, 1)
                .join(0, 1) // empty second lifetime
                .take();
  auto V = validateTrace(T, tidReuse());
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0].OpIndex, 4u);
  EXPECT_NE(V[0].Message.find("rule 4"), std::string::npos);

  TraceValidatorOptions Lax = tidReuse();
  Lax.RequireThreadOps = false; // the shed-capture combination
  EXPECT_TRUE(isFeasible(T, Lax));
}

TEST(TraceValidator, TidReuseJoinOfJoinedTidStillRejected) {
  // Reuse legalizes re-*fork*, never re-*join*: the second join sees a
  // Joined (not Running) tid.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .join(0, 1)
                .join(0, 1)
                .take();
  auto V = validateTrace(T, tidReuse());
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0].OpIndex, 3u);
  EXPECT_NE(V[0].Message.find("not running"), std::string::npos);
}

TEST(TraceValidator, TidReuseIncarnationsMayUseDifferentParents) {
  // Lifetimes are independent: thread 2 may fork the reincarnation and a
  // third thread may reap it.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .wr(1, 0)
                .join(2, 1)
                .fork(2, 1)
                .rd(1, 1)
                .join(0, 1)
                .join(0, 2)
                .take();
  EXPECT_TRUE(isFeasible(T, tidReuse()));
}

TEST(TraceValidator, SingleThreadBarrierSatisfiesRule4) {
  // Degenerate barrier of one thread still counts as that thread's
  // operation between fork and join.
  Trace T = TraceBuilder().fork(0, 1).barrier({1}).join(0, 1).take();
  EXPECT_TRUE(isFeasible(T));
}

TEST(TraceValidator, JoinedThreadInBarrierReportsEveryViolation) {
  // Both joined members of the barrier are reported, not just the first.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .wr(1, 0)
                .wr(2, 1)
                .join(0, 1)
                .join(0, 2)
                .barrier({1, 2})
                .take();
  auto V = check(T);
  ASSERT_EQ(V.size(), 2u);
  EXPECT_EQ(V[0].OpIndex, 6u);
  EXPECT_EQ(V[1].OpIndex, 6u);
}
