//===--- WarningTest.cpp - warning rendering and the dedup policy ---------===//

#include "framework/Tool.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

/// Minimal tool exposing the protected reporting interface.
class ReportingTool : public Tool {
public:
  const char *name() const override { return "Reporting"; }
  bool report(RaceWarning W) { return reportRace(std::move(W)); }
  bool warned(VarId X) const { return alreadyWarned(X); }
};

RaceWarning warning(VarId Var, size_t OpIndex, ThreadId Current,
                    OpKind CurrentKind, ThreadId Prior, OpKind PriorKind,
                    std::string Detail = "") {
  RaceWarning W;
  W.Var = Var;
  W.OpIndex = OpIndex;
  W.CurrentThread = Current;
  W.CurrentKind = CurrentKind;
  W.PriorThread = Prior;
  W.PriorKind = PriorKind;
  W.Detail = std::move(Detail);
  return W;
}

} // namespace

TEST(RenderWarning, FullConflictWithDetail) {
  RaceWarning W = warning(3, 17, 1, OpKind::Write, 0, OpKind::Write,
                          "write-write race");
  EXPECT_EQ(toString(W), "race on x3 at op 17: wr by thread 1 conflicts "
                         "with wr by thread 0 (write-write race)");
}

TEST(RenderWarning, UnknownPriorOmitsConflictClause) {
  // Eraser's state machine does not always know the prior thread; the
  // renderer must not print the UnknownThread sentinel.
  RaceWarning W =
      warning(5, 2, 2, OpKind::Read, UnknownThread, OpKind::Write);
  EXPECT_EQ(toString(W), "race on x5 at op 2: rd by thread 2");
}

TEST(RenderWarning, UnknownPriorKeepsDetail) {
  RaceWarning W = warning(0, 0, 0, OpKind::Write, UnknownThread,
                          OpKind::Write, "empty lockset");
  EXPECT_EQ(toString(W), "race on x0 at op 0: wr by thread 0 (empty "
                         "lockset)");
}

TEST(RenderWarning, NoDetailOmitsParenthetical) {
  RaceWarning W = warning(9, 100, 3, OpKind::Read, 1, OpKind::Write);
  EXPECT_EQ(toString(W),
            "race on x9 at op 100: rd by thread 3 conflicts with wr by "
            "thread 1");
}

TEST(WarningDedup, OneWarningPerVariable) {
  ReportingTool T;
  EXPECT_TRUE(T.report(warning(4, 1, 0, OpKind::Write, 1, OpKind::Write)));
  EXPECT_TRUE(T.warned(4));
  // A second warning for the same variable is dropped, whatever its
  // fields say (the paper's tools report at most one race per field).
  EXPECT_FALSE(T.report(warning(4, 9, 2, OpKind::Read, 0, OpKind::Write)));
  ASSERT_EQ(T.warnings().size(), 1u);
  EXPECT_EQ(T.warnings()[0].OpIndex, 1u);

  // Other variables are unaffected.
  EXPECT_FALSE(T.warned(5));
  EXPECT_TRUE(T.report(warning(5, 3, 1, OpKind::Read, 0, OpKind::Write)));
  EXPECT_EQ(T.warnings().size(), 2u);
}

TEST(WarningDedup, ClearWarningsResetsThePolicy) {
  ReportingTool T;
  ASSERT_TRUE(T.report(warning(7, 0, 0, OpKind::Write, 1, OpKind::Read)));
  T.clearWarnings();
  EXPECT_TRUE(T.warnings().empty());
  EXPECT_FALSE(T.warned(7));
  EXPECT_TRUE(T.report(warning(7, 5, 1, OpKind::Write, 0, OpKind::Write)));
}

TEST(WarningDedup, AdoptWarningsAppliesThePolicyInOrder) {
  ReportingTool T;
  ASSERT_TRUE(T.report(warning(1, 0, 0, OpKind::Write, 1, OpKind::Write)));
  std::vector<RaceWarning> Merged = {
      warning(2, 3, 1, OpKind::Read, 0, OpKind::Write),
      warning(1, 4, 2, OpKind::Read, 0, OpKind::Write), // dup of var 1
      warning(2, 6, 2, OpKind::Write, 1, OpKind::Read), // dup of var 2
      warning(3, 8, 0, OpKind::Write, 2, OpKind::Write),
  };
  EXPECT_EQ(T.adoptWarnings(Merged), 2u); // vars 2 and 3 only
  ASSERT_EQ(T.warnings().size(), 3u);
  EXPECT_EQ(T.warnings()[1].Var, 2u);
  EXPECT_EQ(T.warnings()[1].OpIndex, 3u); // first var-2 warning won
  EXPECT_EQ(T.warnings()[2].Var, 3u);
}
