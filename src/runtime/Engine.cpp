#include "runtime/Engine.h"

#include "framework/ShardableTool.h"
#include "runtime/FaultPlan.h"
#include "trace/TraceIO.h"
#include "trace/TraceValidator.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace ft;
using namespace ft::runtime;

namespace {

/// The one live session (shims attach through Engine::current()).
std::atomic<Engine *> CurrentEngine{nullptr};

/// Session stamps start at 1 so a zero-initialized object cache never
/// matches a real generation.
std::atomic<uint64_t> GenerationCounter{0};

ToolContext capacityContext(const OnlineOptions &Options) {
  ToolContext Context;
  Context.NumThreads = Options.MaxThreads;
  Context.NumVars = Options.MaxVars;
  Context.NumLocks = Options.MaxLocks;
  Context.NumVolatiles = Options.MaxVolatiles;
  return Context;
}

/// The session's shadow-governance policy: the configured one, with the
/// FaultPlan's real allocation failures folded in (arming either shadow
/// fault forces governance on — the gates live inside the governed
/// table), and an unset table budget inheriting the ladder's.
ShadowMemoryPolicy effectiveMemoryPolicy(const OnlineOptions &Options) {
  ShadowMemoryPolicy M = Options.Degrade.Memory;
  if (Options.Faults) {
    if (Options.Faults->FailShadowPageAllocAt != FaultPlan::None) {
      M.Enabled = true;
      M.FailPageAllocAt = Options.Faults->FailShadowPageAllocAt;
    }
    if (Options.Faults->FailSideStoreInflateAt != FaultPlan::None) {
      M.Enabled = true;
      M.FailInflateAt = Options.Faults->FailSideStoreInflateAt;
    }
  }
  if (M.Enabled && M.BudgetBytes == 0)
    M.BudgetBytes = Options.Degrade.ShadowBudgetBytes;
  return M;
}

OnlineDriverOptions driverOptions(const OnlineOptions &Options,
                                  unsigned NumShards,
                                  std::function<uint64_t()> ShadowBytes,
                                  std::function<ShadowGovernorStats()> Gov) {
  OnlineDriverOptions Driver;
  // With shards the primary driver is admission-only: it owns the ladder,
  // the capacity checks, the raw indices, and the lock filter, but the
  // tool handlers run in the shard workers' DispatchOnly drivers. Its
  // budget probes read the shadow bytes and governance telemetry the
  // workers publish (its own tool instance never grows), and the warning
  // sink stays empty — shard drivers sink warnings live; installing it
  // here too would replay every adopted warning a second time at
  // finish().
  Driver.Role =
      NumShards > 1 ? DriverRole::AdmissionOnly : DriverRole::Full;
  Driver.ShadowBytes = std::move(ShadowBytes);
  Driver.GovernorStats = std::move(Gov);
  Driver.FilterReentrantLocks = Options.FilterReentrantLocks;
  if (NumShards == 1)
    Driver.WarningSink = Options.OnWarning;
  Driver.Degrade = Options.Degrade;
  Driver.Degrade.Memory = effectiveMemoryPolicy(Options);
  if (Options.Faults)
    Driver.ForceBudgetBreachAtRawOp = Options.Faults->ForceBudgetBreachAtRawOp;
  return Driver;
}

/// How many shard sequencers this session actually runs. Shards > 1
/// requires the ShardableTool clone/merge hooks; a tool without them
/// falls back to the single-sequencer engine (the constructor attaches
/// the explanatory Note).
unsigned resolveShardCount(const OnlineOptions &Options, Tool &Checker) {
  unsigned N = Options.Shards == 0 ? 1 : Options.Shards;
  N = std::min(N, 64u);
  if (N > 1 && dynamic_cast<ShardableTool *>(&Checker) == nullptr)
    return 1;
  return N;
}

/// Which engine/channel the calling thread is bound to. Rebinding is
/// lazy: a thread carrying a stale binding (from a finished session)
/// re-registers against the live engine on first emit.
struct TlsBinding {
  const void *E = nullptr;
  void *Ch = nullptr;
};
thread_local TlsBinding Binding;

} // namespace

Engine *Engine::current() {
  return CurrentEngine.load(std::memory_order_acquire);
}

/// One shard worker's whole world. BatchPtr/BatchLen/BatchPos/SyncSeen
/// are worker-private in the steady state, but they live here (not on the
/// worker's stack) so a restarted worker resumes *exactly* where its
/// wedged predecessor stopped. The batch is consumed in place (peekRun):
/// events stay in the ring until dispatched-and-release()d, so the
/// undispatched suffix survives a worker swap by construction. Access is
/// serialized by the supervisor's join-before-respawn discipline.
struct Engine::Shard {
  Shard(unsigned Index, size_t RingCapacity, size_t BatchCap)
      : Index(Index), BatchCap(BatchCap), Ring(RingCapacity) {}

  const unsigned Index;
  const size_t BatchCap; ///< Upper bound on one peeked batch — bounds how
                         ///< long the worker can go between halt/epoch
                         ///< checks, like the router's SequencerBatch.
  EventRing Ring; ///< router → worker (SPSC; Seq = raw op index).
  std::unique_ptr<Tool> Clone;          ///< Shard-local tool instance.
  std::unique_ptr<OnlineDriver> Driver; ///< DispatchOnly over Clone.
  std::thread Worker;

  std::atomic<uint64_t> Routed{0};  ///< Events the router pushed.
  std::atomic<uint64_t> Drained{0}; ///< Events the worker dispatched or
                                    ///< discarded — the shard's drain
                                    ///< watermark (stall detection).
  std::atomic<uint64_t> SyncDone{0}; ///< Sync ordinals fully dispatched:
                                     ///< the ticket watermark siblings
                                     ///< wait on at the spine barrier.
  std::atomic<bool> AtBarrier{false}; ///< Worker is waiting at the spine
                                      ///< barrier (legitimately idle —
                                      ///< not a stall).
  std::atomic<uint64_t> ShadowPublished{0}; ///< Clone->shadowBytes() as
                                            ///< of the last batch refill;
                                            ///< read by the admission
                                            ///< driver's budget probe.
  std::atomic<uint64_t> TripsPublished{0};  ///< Clone governor BudgetTrips
                                            ///< as of the last publish.
  std::atomic<uint64_t> DeniedPublished{0}; ///< Clone governor AllocDenied
                                            ///< as of the last publish.
  std::atomic<uint64_t> Epoch{0}; ///< Bumped to abandon the worker.
  std::atomic<unsigned> Restarts{0};
  std::atomic<uint64_t> Discards{0}; ///< Post-halt discards worker-side.

  // Restart-resume state (see struct comment). BatchPtr points into the
  // ring's buffer (stable storage); [BatchPos, BatchLen) is the peeked,
  // not-yet-released remainder.
  const OnlineEvent *BatchPtr = nullptr;
  size_t BatchLen = 0;
  size_t BatchPos = 0;
  uint64_t SyncSeen = 0;    ///< Sync ordinals this worker has dispatched.
  uint64_t RefillCount = 0; ///< Throttles the shadow-size publish.
  unsigned EmptyPolls = 0;  ///< Consecutive empty refills (idle backoff).
};

Engine::Engine(Tool &Checker, OnlineOptions Opts)
    : Checker(Checker), Options(std::move(Opts)),
      Gen(GenerationCounter.fetch_add(1, std::memory_order_relaxed) + 1),
      NumShards(resolveShardCount(Options, Checker)),
      Driver(Checker, capacityContext(Options),
             driverOptions(Options, NumShards,
                           NumShards > 1
                               ? std::function<uint64_t()>(
                                     [this] { return shardShadowBytes(); })
                               : std::function<uint64_t()>(),
                           NumShards > 1
                               ? std::function<ShadowGovernorStats()>(
                                     [this] { return shardGovernorStats(); })
                               : std::function<ShadowGovernorStats()>())),
      MemCapture(Options.KeepCapture ||
                 (!Options.CapturePath.empty() &&
                  Options.CaptureSegmentBytes == 0)),
      Capturing(false) {
  if (!Options.CapturePath.empty() && Options.CaptureSegmentBytes != 0) {
    // Segmented flight recorder: CapturePath names the chain prefix (a
    // trailing .trc is stripped — segments carry their own extension).
    std::string Prefix = Options.CapturePath;
    if (Prefix.size() > 4 &&
        Prefix.compare(Prefix.size() - 4, 4, ".trc") == 0)
      Prefix.resize(Prefix.size() - 4);
    SegmentWriterOptions SW;
    SW.SegmentBytes = Options.CaptureSegmentBytes;
    SegWriter = std::make_unique<SegmentedTraceWriter>(Prefix, SW);
  }
  Capturing = MemCapture || SegWriter != nullptr;
  if (Options.ShardBlockVars == 0)
    Options.ShardBlockVars = 1;
  if ((Options.ShardBlockVars & (Options.ShardBlockVars - 1)) == 0 &&
      (NumShards & (NumShards - 1)) == 0) {
    ShardDivShift = static_cast<unsigned>(__builtin_ctz(Options.ShardBlockVars));
    ShardIdxMask = NumShards - 1;
  }
  if (Options.Shards > 1 && NumShards == 1)
    superviseNote(Severity::Note, StatusCode::ValidationError,
                  std::string("tool '") + Checker.name() +
                      "' does not implement ShardableTool; falling back "
                      "to the single-sequencer engine");

  if (NumShards > 1) {
    auto &Shardable = dynamic_cast<ShardableTool &>(Checker);
    const size_t BatchCap = std::max<size_t>(1, Options.SequencerBatch);
    const size_t RingCap =
        Options.ShardRingCapacity != 0
            ? Options.ShardRingCapacity
            : std::max(Options.RingCapacity, 4 * BatchCap);
    // Per-shard governance: each clone self-governs against an equal
    // slice of the byte budget (the admission driver's ladder probe still
    // sees the sum via shardGovernorStats). Configured before the shard
    // driver exists — its begin() is what applies the policy.
    ShadowMemoryPolicy ShardMem = effectiveMemoryPolicy(Options);
    if (ShardMem.BudgetBytes != 0)
      ShardMem.BudgetBytes =
          std::max<uint64_t>(1, ShardMem.BudgetBytes / NumShards);
    for (unsigned I = 0; I != NumShards; ++I) {
      auto S = std::make_unique<Shard>(I, RingCap, BatchCap);
      S->Clone = Shardable.cloneForShard();
      if (Options.Degrade.Enabled && ShardMem.Enabled)
        ShardMemoryGoverned = S->Clone->configureShadowPolicy(ShardMem);
      OnlineDriverOptions DO;
      DO.Role = DriverRole::DispatchOnly;
      // Admission already ran the lock filter and the ladder transform on
      // everything in this shard's ring; running either again would
      // desync the clone from the capture.
      DO.FilterReentrantLocks = false;
      DO.Degrade.Enabled = false;
      if (Options.OnWarning)
        DO.WarningSink = [this](const RaceWarning &W) {
          std::lock_guard<std::mutex> Guard(SinkMu);
          Options.OnWarning(W);
        };
      S->Driver = std::make_unique<OnlineDriver>(
          *S->Clone, capacityContext(Options), std::move(DO));
      ShardSet.push_back(std::move(S));
    }
  }

  // The constructing thread is the session's main thread, dense id 0 (a
  // slot that is always live — the main thread is never joined).
  {
    std::lock_guard<std::mutex> Guard(ChannelMu);
    Binding = {this, takeSlotLocked(/*ForeignThread=*/false)};
  }

  assert(CurrentEngine.load(std::memory_order_relaxed) == nullptr &&
         "one online session at a time");
  CurrentEngine.store(this, std::memory_order_release);

  if (NumShards > 1) {
    for (std::unique_ptr<Shard> &S : ShardSet) {
      Shard *P = S.get();
      P->Worker = std::thread([this, P] { shardLoop(*P, 0); });
    }
    SequencerThread = std::thread([this] { routerLoop(0); });
  } else {
    SequencerThread = std::thread([this] { sequencerLoop(0); });
  }
  if (Options.Supervise.Enabled)
    SupervisorThread = std::thread([this] { supervisorLoop(); });
}

Engine::~Engine() {
  if (!Finished)
    (void)finish();
}

Engine::Channel *Engine::registerThreadLocked(ThreadId Id) {
  Channels.push_back(std::make_unique<Channel>(Id, Options.RingCapacity));
  NumChannels.store(Channels.size(), std::memory_order_release);
  ++LiveSlots;
  PeakLiveSlots = std::max(PeakLiveSlots, LiveSlots);
  return Channels.back().get();
}

void Engine::promoteDrainedLocked() {
  // Retiring → Free once the sequencer has drained the dead thread's
  // ring. Ring.empty() is an acquire on both ends, so a true answer means
  // every event of the dead incarnation has been popped — and popped
  // events dispatch strictly before anything the successor will push,
  // because dispatch order is ticket order and the successor's tickets
  // all postdate the parent's join ticket.
  size_t Out = 0;
  for (Channel *Ch : RetiringSlots) {
    if (Ch->Ring.empty()) {
      Ch->State = SlotState::Free;
      FreeSlots.push_back(Ch);
    } else {
      RetiringSlots[Out++] = Ch;
    }
  }
  RetiringSlots.resize(Out);
}

Engine::Channel *Engine::takeSlotLocked(bool ForeignThread,
                                        bool FreshDespiteRetiring) {
  promoteDrainedLocked();
  // Reincarnation first: same dense id, so the tool's VC column still
  // holds the dead incarnation's final clock and the coming fork's join
  // doubles as the dead→successor happens-before edge (see the class
  // comment). Foreign threads never reincarnate a slot: without a fork
  // event a recycled id would splice an unrelated thread into the dead
  // thread's history with no edge to justify it — they get fresh slots
  // (conservatively unordered) or run untracked.
  bool MayRecycle = !ForeignThread && Options.RecycleThreadSlots;
  if (MayRecycle && !FreeSlots.empty()) {
    Channel *Ch = FreeSlots.back();
    FreeSlots.pop_back();
    Ch->State = SlotState::Live;
    ++ThreadsRecycled;
    ++LiveSlots;
    PeakLiveSlots = std::max(PeakLiveSlots, LiveSlots);
    return Ch;
  }
  // A retiring slot is a recycled slot in a few ring-drain microseconds:
  // prefer waiting for it (acquireSlot's bounded loop) over widening the
  // table, so VC width and shadow memory track *max-live* threads, not
  // churn. Only once the caller's drain wait has expired does a fresh
  // slot beat an undrained one.
  if (MayRecycle && !RetiringSlots.empty() && !FreshDespiteRetiring)
    return nullptr;
  if (Channels.size() < Options.MaxThreads)
    return registerThreadLocked(Interner.allocateThreadId());
  return nullptr;
}

Engine::Channel *Engine::acquireSlot(bool ForeignThread) {
  {
    std::lock_guard<std::mutex> Guard(ChannelMu);
    if (Channel *Ch = takeSlotLocked(ForeignThread))
      return Ch;
    if (ForeignThread || !Options.RecycleThreadSlots ||
        RetiringSlots.empty())
      return nullptr;
  }
  // A joined thread's slot is still draining. Draining is the sequencer's
  // normal job (ring-latency fast); the one legitimate slow case is a
  // stalled sequencer, which the supervisor recovers within its own
  // deadline — so wait bounded rather than failing eagerly or forever.
  Stopwatch Wait;
  const uint64_t DeadlineNs =
      static_cast<uint64_t>(Options.SlotDrainWaitMs) * 1000000ull;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    std::lock_guard<std::mutex> Guard(ChannelMu);
    if (Channel *Ch = takeSlotLocked(ForeignThread))
      return Ch;
    if (RetiringSlots.empty() || Wait.nanoseconds() >= DeadlineNs ||
        Halted.load(std::memory_order_acquire))
      // Give up on the drain: take a fresh slot if the table still has
      // room (robustness beats width), else report exhaustion.
      return takeSlotLocked(ForeignThread, /*FreshDespiteRetiring=*/true);
  }
}

void Engine::noteExhaustion(const char *Who) {
  ForksRejected.fetch_add(1, std::memory_order_relaxed);
  // One diagnostic and one ladder request however many threads bounce:
  // shedding a rung helps retiring rings drain faster, but no amount of
  // degradation conjures slots, so repeating the request is noise.
  if (ExhaustionNoted.exchange(true, std::memory_order_acq_rel))
    return;
  superviseNote(Severity::Warning, StatusCode::ResourceExhausted,
                std::string(Who) + ": thread-slot table exhausted (" +
                    std::to_string(Options.MaxThreads) +
                    " slots all live or undrained); over-cap threads run "
                    "untracked, their events dropped and counted");
  if (Options.Degrade.Enabled)
    PendingDegrade.fetch_add(1, std::memory_order_relaxed);
}

Engine::Channel *Engine::channelForCurrentThread() {
  if (Binding.E == this)
    return static_cast<Channel *>(Binding.Ch); // null = untracked binding
  // A thread the runtime has not seen: auto-register so its events are
  // analyzed rather than lost. Without a fork edge its accesses are
  // conservatively unordered with every other thread; captures containing
  // it fail the validator's fork-before-first-op rule (see class comment).
  // Always a fresh slot, never a recycled one (see takeSlotLocked); on
  // exhaustion the thread runs untracked rather than halting detection.
  Channel *Ch = acquireSlot(/*ForeignThread=*/true);
  if (!Ch)
    noteExhaustion("foreign thread");
  Binding = {this, Ch};
  return Ch;
}

void Engine::bindCurrentThread(ThreadId Id) {
  // The slot was reserved (and its channel created) by forkThread(); the
  // thread-creation edge orders this producer's ring accesses after the
  // previous incarnation's, so the SPSC ring hand-off needs no extra
  // synchronization.
  std::lock_guard<std::mutex> Guard(ChannelMu);
  for (const std::unique_ptr<Channel> &Ch : Channels)
    if (Ch->Id == Id) {
      Binding = {this, Ch.get()};
      return;
    }
  // Hand-rolled caller with an id the engine never issued: register it so
  // events are analyzed rather than lost (pre-recycling behavior).
  Binding = {this, registerThreadLocked(Id)};
}

void Engine::bindCurrentThreadUntracked() { Binding = {this, nullptr}; }

void Engine::emit(OpKind Kind, uint32_t Target) {
  Channel *Ch = channelForCurrentThread();
  if (!Ch) {
    // Untracked thread (slot exhaustion): never silent, never fatal.
    UntrackedEvents.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Acquire pairs with the release store at every halt site: see the
  // Halted declaration for why relaxed would be wrong here.
  if (Halted.load(std::memory_order_acquire)) {
    Ch->DroppedPostHalt.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Backpressure: park until the sequencer drains. The ticket is drawn
  // only after space is certain, so the sequencer never waits on a seq
  // number owned by a parked thread (that would deadlock the pipeline) —
  // and an event shed while parked owns no ticket either, so shedding
  // leaves no gap in the sequence.
  if (!Ch->Ring.hasSpace() && !parkUntilSpace(Ch, Kind))
    return;
  OnlineEvent E;
  E.Seq = Seq.fetch_add(1, std::memory_order_relaxed);
  E.Kind = Kind;
  E.Target = Target;
  Ch->Ring.push(E);
}

bool Engine::parkUntilSpace(Channel *Ch, OpKind Kind) {
  // The cold path: the producer is about to block on the detector. The
  // supervisor bounds that: a parked *access* is shed after MaxParkMs (or
  // immediately in drop-and-count mode) and counted; sync events are the
  // HB spine and keep waiting — the watchdog recovers the sequencer
  // within its own deadline, so even they cannot wait unboundedly unless
  // supervision is pinned off.
  Ch->Parks.fetch_add(1, std::memory_order_relaxed);
  ProducersParked.fetch_add(1, std::memory_order_relaxed);
  const bool Droppable = isAccess(Kind) && Options.Supervise.Enabled;
  const uint64_t DeadlineNs =
      static_cast<uint64_t>(Options.Supervise.MaxParkMs) * 1000000ull;
  Stopwatch Park;
  unsigned Spins = 0;
  bool GotSpace = false;
  for (;;) {
    if (Ch->Ring.hasSpace()) {
      GotSpace = true;
      break;
    }
    if (Halted.load(std::memory_order_acquire)) {
      Ch->DroppedPostHalt.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (Droppable) {
      if (DropAccesses.load(std::memory_order_acquire)) {
        Ch->DroppedOverload.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (Park.nanoseconds() >= DeadlineNs) {
        Ch->DroppedOverload.fetch_add(1, std::memory_order_relaxed);
        DeadlineDrops.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    if (++Spins < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ProducersParked.fetch_sub(1, std::memory_order_relaxed);
  return GotSpace;
}

Status Engine::tryForkThread(ThreadId &Child) {
  Child = NoThread;
  Channel *Slot = acquireSlot(/*ForeignThread=*/false);
  if (!Slot) {
    // Max-live genuinely exceeds the cap: a structured error, a one-time
    // supervisor diagnostic, and (when enabled) one ladder downgrade —
    // the production answer to "out of slots", where PR 3's fixed table
    // made the driver halt detection on the first over-cap thread id.
    noteExhaustion("forkThread");
    return Status::error(StatusCode::ResourceExhausted,
                         "thread-slot table exhausted (" +
                             std::to_string(Options.MaxThreads) +
                             " slots all live or undrained); child will "
                             "run untracked");
  }
  Child = Slot->Id;
  // Ticketed before the native thread starts, so fork(t, u) precedes
  // every event of u in the merged order — and, for a recycled slot,
  // strictly after the predecessor's join ticket, so the tool sees
  // join(t, u) ... fork(t', u) with nothing of u in between.
  emit(OpKind::Fork, Child);
  return Status();
}

ThreadId Engine::forkThread() {
  ThreadId Child = NoThread;
  (void)tryForkThread(Child);
  return Child;
}

void Engine::joinThread(ThreadId Child) {
  if (Child == NoThread)
    return; // untracked child: no slot, no events, no edge to emit
  // Ticketed after the native join returned, so every event of the child
  // precedes join(t, u) in the merged order.
  emit(OpKind::Join, Child);
  if (!Options.RecycleThreadSlots)
    return;
  // Retire the slot. The ring may still hold undrained events (they all
  // predate the join ticket just drawn); the slot becomes reusable only
  // once the sequencer has emptied it (promoteDrainedLocked).
  std::lock_guard<std::mutex> Guard(ChannelMu);
  for (const std::unique_ptr<Channel> &Ch : Channels)
    if (Ch->Id == Child && Ch->State == SlotState::Live) {
      Ch->State = SlotState::Retiring;
      RetiringSlots.push_back(Ch.get());
      --LiveSlots;
      break;
    }
}

void Engine::noteMaxBacklog(uint64_t Backlog) {
  uint64_t Seen = MaxBacklogSeen.load(std::memory_order_relaxed);
  while (Backlog > Seen &&
         !MaxBacklogSeen.compare_exchange_weak(Seen, Backlog,
                                               std::memory_order_relaxed))
    ;
}

void Engine::sequencerLoop(uint64_t Epoch) {
  // A successor resumes exactly at the predecessor's published watermark:
  // batches are popped, dispatched, and published atomically with respect
  // to abandonment (the epoch is only checked between batches).
  uint64_t Next = NextSeq.load(std::memory_order_acquire);
  std::vector<Channel *> Snapshot;
  size_t Known = 0;
  const size_t BatchCap = std::max<size_t>(1, Options.SequencerBatch);
  std::vector<OnlineEvent> Batch(BatchCap);
  std::vector<Operation> Delivered;
  Delivered.reserve(BatchCap);
  const FaultPlan *Faults = Options.Faults;
  uint64_t LocalMaxBacklog = 0;
  bool Abandoned = false;
  while (!Abandoned) {
    if (SequencerEpoch.load(std::memory_order_acquire) != Epoch)
      break;
    // Rung downgrades requested by the supervisor are applied here: the
    // driver is single-threaded, so only the sequencer may touch it.
    if (unsigned K = PendingDegrade.exchange(0, std::memory_order_acq_rel)) {
      while (K-- != 0 &&
             Driver.requestStepDown(StatusCode::Stalled,
                                    "supervisor: sustained overload"))
        ;
    }
    // Rebuild the channel snapshot only when a registration happened;
    // the steady-state sweep never touches ChannelMu.
    if (NumChannels.load(std::memory_order_acquire) != Known) {
      std::lock_guard<std::mutex> Guard(ChannelMu);
      Snapshot.clear();
      for (const std::unique_ptr<Channel> &Ch : Channels)
        Snapshot.push_back(Ch.get());
      Known = Channels.size();
    }
    uint64_t Backlog = Seq.load(std::memory_order_relaxed) - Next;
    if (Backlog > LocalMaxBacklog)
      LocalMaxBacklog = Backlog;
    bool Progress = false;
    for (Channel *Ch : Snapshot) {
      // Drain this ring's run of consecutive tickets in batches: the
      // events are copied out and their slots released in one Head store
      // (so a parked producer unblocks early), then dispatched from the
      // local buffer. A short batch means the run ended — either the
      // ring is out of events or its head ticket is from the future, so
      // move on to the other rings.
      for (;;) {
        // Injected wedge (FaultPlan): busy-wait *before* consuming the
        // ticket, so nothing is popped-but-undelivered — the supervisor
        // abandons this thread and its successor resumes cleanly here.
        if (Faults && Faults->takeStall(Next)) {
          while (SequencerEpoch.load(std::memory_order_acquire) == Epoch)
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          Abandoned = true;
          break;
        }
        size_t Cap = BatchCap;
        if (Faults &&
            Faults->StallsArmed.load(std::memory_order_relaxed) != 0 &&
            Faults->StallAtTicket > Next &&
            Faults->StallAtTicket - Next < Cap)
          // Stop the batch right before the stall ticket so the check
          // above sees it exactly (a batch advances Next wholesale).
          Cap = static_cast<size_t>(Faults->StallAtTicket - Next);
        size_t N = Ch->Ring.popRunInto(Next, Batch.data(), Cap);
        if (N == 0)
          break;
        Progress = true;
        Delivered.clear();
        for (size_t I = 0; I != N; ++I) {
          if (Halted.load(std::memory_order_relaxed)) {
            // Ticketed before the halt landed; discarded but counted —
            // no silent loss (the relaxed load is fine: this thread set
            // the flag itself or will re-check via the driver).
            ++DiscardedPostHalt;
            continue;
          }
          Operation Op(Batch[I].Kind, Ch->Id, Batch[I].Target);
          OnlineDriver::DispatchOutcome Outcome = Driver.offer(Op);
          if (Outcome == OnlineDriver::DispatchOutcome::Delivered) {
            if (Capturing)
              Delivered.push_back(Op);
            if (Faults && Faults->inStorm(Batch[I].Seq))
              std::this_thread::sleep_for(
                  std::chrono::microseconds(Faults->DelayPerDeliveryUs));
          } else if (Outcome == OnlineDriver::DispatchOutcome::Rejected) {
            // Unrecoverable driver halt. Release pairs with the acquire
            // in emit(): the driver's diagnostics are fully written
            // before producers can observe the flag (see Halted).
            Halted.store(true, std::memory_order_release);
            ++DiscardedPostHalt;
          }
        }
        if (!Delivered.empty()) {
          // Batched capture (no per-event branch in the steady state):
          // the whole delivered run lands in one appendRun / one
          // segment write.
          if (MemCapture)
            Capture.appendRun(Delivered.data(), Delivered.size());
          if (SegWriter)
            SegWriter->append(Delivered.data(), Delivered.size());
        }
        // Publish the merge watermark per batch: the watchdog reads it
        // for stall detection and a successor resumes from it. The
        // OnlineOptions::SequencerBatch invariant: published watermarks
        // are strictly increasing and only ever move past *fully*
        // processed batches.
        assert(Next > NextSeq.load(std::memory_order_relaxed) &&
               "per-batch watermark must advance monotonically");
        NextSeq.store(Next, std::memory_order_release);
        if (N != Cap)
          break;
      }
      if (Abandoned)
        break;
    }
    if (Abandoned)
      break;
    if (Progress)
      continue;
    // No ring held ticket Next: either it is in flight (drawn but not yet
    // published — a handful of instructions), or nothing is happening.
    if (!Running.load(std::memory_order_acquire) &&
        Next == Seq.load(std::memory_order_acquire))
      break;
    std::this_thread::yield();
  }
  noteMaxBacklog(LocalMaxBacklog);
  // Vector-clock counters are thread-local (see ClockStats.h); each
  // sequencer incarnation folds its block in at exit. ClocksMu covers the
  // sharded engine, where shard workers can exit concurrently.
  std::lock_guard<std::mutex> Guard(ClocksMu);
  SequencerClocks += clockStats();
}

unsigned Engine::shardIndexFor(uint32_t Target) const {
  // Block-cyclic on the POST-transform id. Routing after the admission
  // driver's coarse-rung remap is what keeps sharding exactly equivalent
  // to the serial engine on every rung: whatever id the transform
  // produced is the id whose VarState the access updates, so every access
  // to that state lands in the same shard, in admission order.
  if (ShardDivShift != ~0u)
    return static_cast<unsigned>((Target >> ShardDivShift) & ShardIdxMask);
  return static_cast<unsigned>((Target / Options.ShardBlockVars) % NumShards);
}

uint64_t Engine::shardShadowBytes() const {
  // The admission driver's budget-probe source. Probing the clones'
  // containers from the router thread would race the workers; instead
  // each worker publishes its clone's size at every batch refill and the
  // probe sums the published values (staleness of one batch is fine — the
  // budget trigger is a trend detector, not an invariant).
  uint64_t Total = 0;
  for (const std::unique_ptr<Shard> &S : ShardSet)
    Total += S->ShadowPublished.load(std::memory_order_relaxed);
  return Total;
}

ShadowGovernorStats Engine::shardGovernorStats() const {
  // The admission driver's governance-poll source (same publish-and-sum
  // discipline as shardShadowBytes — probing the clones directly from the
  // router thread would race the workers). Only the two counters the
  // probe branches on are published; finish() reads the clones' full
  // stats after the workers are joined.
  ShadowGovernorStats Total;
  for (const std::unique_ptr<Shard> &S : ShardSet) {
    Total.BudgetTrips += S->TripsPublished.load(std::memory_order_relaxed);
    Total.AllocDenied += S->DeniedPublished.load(std::memory_order_relaxed);
  }
  return Total;
}

bool Engine::routeToShard(Shard &S, const OnlineEvent &E) {
  // The router must NEVER abandon an admitted event: it is already in the
  // capture and owns a raw index, so dropping it would desync every
  // shard's state from the capture the equivalence contract replays. A
  // full ring is backpressure (the shard is behind) or a wedged worker —
  // either way the fix is on the shard side, so the router parks and
  // raises RouterBlockedOnShard, which (a) tells the supervisor its
  // frozen watermark is the shard's fault and (b) keeps the supervisor
  // from restarting a router it could never join. Only a halt lets the
  // router give up, counted by the caller.
  if (S.Ring.hasSpace()) {
    S.Ring.push(E);
    S.Routed.fetch_add(1, std::memory_order_release);
    return true;
  }
  RouterBlockedOnShard.store(true, std::memory_order_release);
  unsigned Spins = 0;
  bool Pushed = false;
  for (;;) {
    if (S.Ring.hasSpace()) {
      S.Ring.push(E);
      S.Routed.fetch_add(1, std::memory_order_release);
      Pushed = true;
      break;
    }
    if (Halted.load(std::memory_order_acquire))
      break;
    if (++Spins < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  RouterBlockedOnShard.store(false, std::memory_order_release);
  return Pushed;
}

void Engine::routerLoop(uint64_t Epoch) {
  // The sharded engine's first pipeline stage: sequencerLoop's merge and
  // admission stages verbatim (same watermark/restart contract, same
  // fault hooks, same capture), with tool dispatch replaced by routing —
  // admitted accesses go to the shard owning their variable, admitted
  // sync events to every shard (the cross-shard spine). The raw index the
  // admission driver just assigned rides in OnlineEvent::Seq so shard
  // tools see single-sequencer op indices.
  uint64_t Next = NextSeq.load(std::memory_order_acquire);
  std::vector<Channel *> Snapshot;
  size_t Known = 0;
  const size_t BatchCap = std::max<size_t>(1, Options.SequencerBatch);
  std::vector<OnlineEvent> Batch(BatchCap);
  std::vector<Operation> Delivered;
  Delivered.reserve(BatchCap);
  // Routed accesses are staged per shard and flushed as whole runs
  // (EventRing::pushRun: one release store per run, not one per event) —
  // transport is what sharding pays over the single sequencer, so it is
  // kept off the per-event path. Flushes happen when a stage fills,
  // before any broadcast sync (per-shard ring order must match admission
  // order), and before every watermark publish (a batch only counts as
  // "routed" once its staged events are in the rings).
  // Capped at 1024 events: past that the flush amortization is already
  // total, and NumShards stage buffers at SequencerBatch size would cost
  // more in cache footprint than the batching saves.
  const size_t StageCap = std::max<size_t>(
      1, std::min({BatchCap, ShardSet.front()->Ring.capacity() / 2,
                   static_cast<size_t>(1024)}));
  std::vector<std::vector<OnlineEvent>> Stage(NumShards);
  for (std::vector<OnlineEvent> &Buf : Stage)
    Buf.reserve(StageCap);
  auto FlushShard = [&](unsigned SI) {
    std::vector<OnlineEvent> &Buf = Stage[SI];
    if (Buf.empty())
      return;
    Shard &S = *ShardSet[SI];
    size_t Off = 0;
    unsigned Spins = 0;
    bool Flagged = false;
    while (Off != Buf.size()) {
      size_t K = S.Ring.pushRun(Buf.data() + Off, Buf.size() - Off);
      if (K != 0) {
        S.Routed.fetch_add(K, std::memory_order_release);
        Off += K;
        Spins = 0;
        continue;
      }
      // Full ring: same park-don't-drop contract as routeToShard.
      if (Halted.load(std::memory_order_acquire)) {
        DiscardedPostHalt += Buf.size() - Off;
        break;
      }
      if (!Flagged) {
        Flagged = true;
        RouterBlockedOnShard.store(true, std::memory_order_release);
      }
      if (++Spins < 64)
        std::this_thread::yield();
      else
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    if (Flagged)
      RouterBlockedOnShard.store(false, std::memory_order_release);
    Buf.clear();
  };
  const FaultPlan *Faults = Options.Faults;
  uint64_t LocalMaxBacklog = 0;
  unsigned IdlePolls = 0;
  bool Abandoned = false;
  while (!Abandoned) {
    if (SequencerEpoch.load(std::memory_order_acquire) != Epoch)
      break;
    if (unsigned K = PendingDegrade.exchange(0, std::memory_order_acq_rel)) {
      while (K-- != 0 &&
             Driver.requestStepDown(StatusCode::Stalled,
                                    "supervisor: sustained overload"))
        ;
    }
    if (NumChannels.load(std::memory_order_acquire) != Known) {
      std::lock_guard<std::mutex> Guard(ChannelMu);
      Snapshot.clear();
      for (const std::unique_ptr<Channel> &Ch : Channels)
        Snapshot.push_back(Ch.get());
      Known = Channels.size();
    }
    uint64_t Backlog = Seq.load(std::memory_order_relaxed) - Next;
    if (Backlog > LocalMaxBacklog)
      LocalMaxBacklog = Backlog;
    bool Progress = false;
    for (Channel *Ch : Snapshot) {
      for (;;) {
        if (Faults && Faults->takeStall(Next)) {
          while (SequencerEpoch.load(std::memory_order_acquire) == Epoch)
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          Abandoned = true;
          break;
        }
        size_t Cap = BatchCap;
        if (Faults &&
            Faults->StallsArmed.load(std::memory_order_relaxed) != 0 &&
            Faults->StallAtTicket > Next &&
            Faults->StallAtTicket - Next < Cap)
          Cap = static_cast<size_t>(Faults->StallAtTicket - Next);
        size_t N = Ch->Ring.popRunInto(Next, Batch.data(), Cap);
        if (N == 0)
          break;
        Progress = true;
        Delivered.clear();
        size_t I = 0;
        while (I != N) {
          if (Halted.load(std::memory_order_relaxed)) {
            ++DiscardedPostHalt;
            ++I;
            continue;
          }
          // Access stretches take the batched admission fast path: one
          // admitAccessRun() call consumes the whole stretch's raw
          // indices and events move straight from the merge batch into
          // the shard stages, without materializing per-event Operations
          // or paying offer()'s per-event checks. Anything that needs to
          // look at events individually — a degraded rung, a pending
          // budget probe, a capacity breach, armed faults — falls back to
          // the per-event path below, which owns the exact semantics.
          if (!Faults && isAccess(Batch[I].Kind)) {
            size_t End = I + 1;
            while (End != N && isAccess(Batch[End].Kind))
              ++End;
            const size_t Len = End - I;
            if (Driver.admitAccessRun(Ch->Id, &Batch[I], Len)) {
              const uint64_t Base = Driver.rawOps() - Len;
              for (size_t J = I; J != End; ++J) {
                if (Capturing)
                  Delivered.push_back(
                      Operation(Batch[J].Kind, Ch->Id, Batch[J].Target));
                OnlineEvent Routed;
                Routed.Seq = Base + (J - I);
                Routed.Kind = Batch[J].Kind;
                Routed.Target = Batch[J].Target;
                Routed.Thread = Ch->Id;
                unsigned SI = shardIndexFor(Routed.Target);
                Stage[SI].push_back(Routed);
                if (Stage[SI].size() >= StageCap)
                  FlushShard(SI);
              }
              I = End;
              continue;
            }
          }
          Operation Op(Batch[I].Kind, Ch->Id, Batch[I].Target);
          OnlineDriver::DispatchOutcome Outcome = Driver.offer(Op);
          if (Outcome == OnlineDriver::DispatchOutcome::Delivered) {
            if (Capturing)
              Delivered.push_back(Op);
            OnlineEvent Routed;
            Routed.Seq = Driver.rawOps() - 1; // the index just assigned
            Routed.Kind = Op.Kind;
            Routed.Target = Op.Target;
            Routed.Thread = Ch->Id;
            if (isAccess(Op.Kind)) {
              unsigned SI = shardIndexFor(Op.Target);
              Stage[SI].push_back(Routed);
              if (Stage[SI].size() >= StageCap)
                FlushShard(SI);
            } else if (!Driver.lastAdmittedFiltered()) {
              // The spine: every shard sees every admitted sync event, in
              // admission order — that shared subsequence is what makes a
              // per-shard sync *ordinal* well defined without carrying an
              // extra field. Filter-stripped lock events are captured
              // (they own raw indices) but never routed: shard drivers
              // run with the filter off. Staged accesses flush first so
              // every ring receives the sync after the accesses admitted
              // before it.
              for (unsigned SI = 0; SI != NumShards; ++SI)
                FlushShard(SI);
              for (std::unique_ptr<Shard> &S : ShardSet)
                if (!routeToShard(*S, Routed))
                  ++DiscardedPostHalt;
            }
            if (Faults && Faults->inStorm(Batch[I].Seq))
              std::this_thread::sleep_for(
                  std::chrono::microseconds(Faults->DelayPerDeliveryUs));
          } else if (Outcome == OnlineDriver::DispatchOutcome::Rejected) {
            Halted.store(true, std::memory_order_release);
            ++DiscardedPostHalt;
          }
          ++I;
        }
        if (!Delivered.empty()) {
          if (MemCapture)
            Capture.appendRun(Delivered.data(), Delivered.size());
          if (SegWriter)
            SegWriter->append(Delivered.data(), Delivered.size());
        }
        // Same per-batch watermark contract as sequencerLoop: published
        // only after the whole batch is admitted, captured, AND routed —
        // staged events count as routed only once flushed into their
        // rings — so a restarted router never re-admits (duplicate raw
        // indices) or skips (holes in the capture) an event.
        for (unsigned SI = 0; SI != NumShards; ++SI)
          FlushShard(SI);
        assert(Next > NextSeq.load(std::memory_order_relaxed) &&
               "per-batch watermark must advance monotonically");
        NextSeq.store(Next, std::memory_order_release);
        if (N != Cap)
          break;
      }
      if (Abandoned)
        break;
    }
    if (Abandoned)
      break;
    if (Progress) {
      IdlePolls = 0;
      continue;
    }
    if (!Running.load(std::memory_order_acquire) &&
        Next == Seq.load(std::memory_order_acquire))
      break;
    // Same idle backoff as the shard workers: on an oversubscribed host a
    // yield-spinning router competes with the producers it is waiting on.
    if (++IdlePolls < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  noteMaxBacklog(LocalMaxBacklog);
  std::lock_guard<std::mutex> Guard(ClocksMu);
  SequencerClocks += clockStats();
}

void Engine::shardLoop(Shard &S, uint64_t MyEpoch) {
  // One shard sequencer: drains the shard's routed stream into its
  // DispatchOnly driver. Accesses dispatch in whole runs (batched,
  // devirtualized where registered); each sync event first waits at the
  // spine barrier until every sibling has finished the preceding sync
  // ordinal. The barrier is *pacing*, not precision: each variable's
  // state lives in exactly one shard and every clone sees the full sync
  // spine in order, so warnings would be identical without it — but it
  // bounds cross-shard skew to one sync era (limiting how far one shard's
  // shadow state can run ahead) and gives the supervisor an unambiguous
  // signal (a worker frozen *outside* the barrier is stalled; one waiting
  // inside it is a sibling's victim).
  OnlineDriver &D = *S.Driver;
  const FaultPlan *Faults = Options.Faults;
  // Mirrors the primary driver's own probe gate (OnlineDriver.cpp): with
  // no budget and no tracker nobody reads ShadowPublished; without
  // governed clones nobody reads the governor publishes.
  const bool ShadowProbeNeeded = Options.Degrade.ShadowBudgetBytes != 0 ||
                                 Options.Degrade.Tracker != nullptr;
  const bool GovernorProbeNeeded = ShardMemoryGoverned;
  for (;;) {
    if (S.Epoch.load(std::memory_order_acquire) != MyEpoch)
      break;
    if (S.BatchPos == S.BatchLen) {
      // Refill. Tool::shadowBytes() walks the clone's whole shadow (it is
      // O(vars) for every shipped detector), so publish it only when the
      // router actually probes budgets, and then only every 16th refill —
      // roughly the primary driver's own BudgetCheckEveryOps cadence.
      if ((ShadowProbeNeeded || GovernorProbeNeeded) &&
          (S.RefillCount++ & 15u) == 0) {
        if (ShadowProbeNeeded)
          S.ShadowPublished.store(S.Clone->shadowBytes(),
                                  std::memory_order_relaxed);
        if (GovernorProbeNeeded) {
          const ShadowGovernorStats GS = S.Clone->shadowGovernorStats();
          S.TripsPublished.store(GS.BudgetTrips, std::memory_order_relaxed);
          S.DeniedPublished.store(GS.AllocDenied, std::memory_order_relaxed);
        }
      }
      // Zero-copy refill: dispatch straight out of the ring (peekRun) and
      // release slots only as they are consumed. Skipping the copy keeps
      // a second 16-bytes-per-event load+store — and a batch buffer the
      // size of L1 — off the worker's hot path, and makes restart-resume
      // automatic: whatever this incarnation never releases is still in
      // the ring for its successor.
      S.BatchPos = 0;
      S.BatchLen = S.Ring.peekRun(S.BatchPtr);
      if (S.BatchLen > S.BatchCap)
        S.BatchLen = S.BatchCap;
      if (S.BatchLen == 0) {
        if (RouterDone.load(std::memory_order_acquire) && S.Ring.empty())
          break;
        // Idle backoff: a yield-spinning worker is harmless with spare
        // cores but on an oversubscribed host N spinners steal the very
        // quanta the producers and router need to refill this ring.
        if (++S.EmptyPolls < 64)
          std::this_thread::yield();
        else
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      S.EmptyPolls = 0;
    }
    if (Halted.load(std::memory_order_acquire)) {
      // Routed before the halt landed; discarded but counted.
      const uint64_t Rest = S.BatchLen - S.BatchPos;
      S.Discards.fetch_add(Rest, std::memory_order_relaxed);
      S.Drained.fetch_add(Rest, std::memory_order_release);
      S.Ring.release(Rest);
      S.BatchPos = S.BatchLen;
      continue;
    }
    const OnlineEvent &E = S.BatchPtr[S.BatchPos];
    // Injected shard wedge (FaultPlan): park *before* dispatching,
    // holding BatchPos, until the supervisor abandons this incarnation —
    // the successor resumes at the exact wedge point. Entering the park
    // consumes the armed stall, so the successor's re-check passes.
    if (Faults && Faults->takeShardStall(S.Index, E.Seq)) {
      while (S.Epoch.load(std::memory_order_acquire) == MyEpoch &&
             !Halted.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    if (E.Kind == OpKind::Read || E.Kind == OpKind::Write) {
      // Access run: everything up to the next sync event (or an armed
      // injected stall, so the park above sees it exactly).
      size_t End = S.BatchPos + 1;
      while (End != S.BatchLen) {
        const OnlineEvent &A = S.BatchPtr[End];
        if (A.Kind != OpKind::Read && A.Kind != OpKind::Write)
          break;
        if (Faults && Faults->shardStallHits(S.Index, A.Seq))
          break;
        ++End;
      }
      const size_t Len = End - S.BatchPos;
      if (!D.dispatchRun(&S.BatchPtr[S.BatchPos], Len))
        Halted.store(true, std::memory_order_release);
      S.BatchPos = End;
      S.Drained.fetch_add(Len, std::memory_order_release);
      S.Ring.release(Len);
      continue;
    }
    // Sync event: the cross-shard spine barrier. Ordinal K is implied by
    // position — every shard receives the same sync subsequence in the
    // same order.
    const uint64_t K = S.SyncSeen + 1;
    S.AtBarrier.store(true, std::memory_order_release);
    bool Bail = false;
    for (;;) {
      bool AllDone = true;
      for (const std::unique_ptr<Shard> &Other : ShardSet)
        if (Other->SyncDone.load(std::memory_order_acquire) + 1 < K) {
          AllDone = false;
          break;
        }
      if (AllDone)
        break;
      if (S.Epoch.load(std::memory_order_acquire) != MyEpoch ||
          Halted.load(std::memory_order_acquire) ||
          SequencerGaveUp.load(std::memory_order_acquire)) {
        Bail = true;
        break;
      }
      std::this_thread::yield();
    }
    S.AtBarrier.store(false, std::memory_order_release);
    if (Bail)
      continue; // the loop top turns epoch/halt into exit/discard
    if (!D.dispatchRun(&S.BatchPtr[S.BatchPos], 1))
      Halted.store(true, std::memory_order_release);
    ++S.BatchPos;
    S.SyncSeen = K;
    S.SyncDone.store(K, std::memory_order_release);
    S.Drained.fetch_add(1, std::memory_order_release);
    S.Ring.release(1);
  }
  std::lock_guard<std::mutex> Guard(ClocksMu);
  SequencerClocks += clockStats();
}

void Engine::superviseNote(Severity Sev, StatusCode Code,
                           std::string Message) {
  std::lock_guard<std::mutex> Guard(SupMu);
  SupDiags.push_back({Code, Sev, 0, NoOpIndex, std::move(Message)});
}

void Engine::handleStall(uint64_t Watermark) {
  ++StallsSeen;
  superviseNote(
      Severity::Warning, StatusCode::Stalled,
      "sequencer stalled at watermark " + std::to_string(Watermark) +
          " past the " + std::to_string(Options.Supervise.StallDeadlineMs) +
          " ms deadline; unparking producers into drop-and-count mode");
  // Unpark blocked producers: parked accesses are shed and counted, sync
  // events keep waiting for the restarted sequencer to drain.
  DropAccesses.store(true, std::memory_order_release);
  if (StallsSeen >= 2 && Options.Degrade.Enabled) {
    PendingDegrade.fetch_add(1, std::memory_order_relaxed);
    superviseNote(Severity::Warning, StatusCode::Stalled,
                  "repeated sequencer stall: requested ladder downgrade");
  }
  if (Restarts.load(std::memory_order_relaxed) >=
      Options.Supervise.MaxRestarts) {
    // The true last resort: stop pretending the sequencer will recover.
    // The epoch bump releases a cooperatively-wedged thread (an injected
    // stall); a thread wedged inside a tool handler cannot be recovered
    // portably and would block this join — that failure mode is
    // documented, not handled.
    SequencerEpoch.fetch_add(1, std::memory_order_acq_rel);
    if (SequencerThread.joinable())
      SequencerThread.join();
    superviseNote(Severity::Error, StatusCode::Stalled,
                  "sequencer unrecoverable after " +
                      std::to_string(
                          Restarts.load(std::memory_order_relaxed)) +
                      " restart(s); detection halted");
    SequencerGaveUp.store(true, std::memory_order_release);
    // Release: the diagnostics above are visible before the flag (see
    // the Halted declaration).
    Halted.store(true, std::memory_order_release);
    return;
  }
  restartSequencerLocked();
}

void Engine::restartSequencerLocked() {
  // Abandon the wedged thread: it notices the epoch bump between batches
  // (or inside an injected stall loop) and exits. The successor resumes
  // from the published watermark; the predecessor publishes only after
  // completing a batch, so no event is lost or delivered twice.
  uint64_t NewEpoch =
      SequencerEpoch.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (SequencerThread.joinable())
    SequencerThread.join();
  Restarts.fetch_add(1, std::memory_order_relaxed);
  superviseNote(Severity::Note, StatusCode::Stalled, "sequencer restarted");
  if (NumShards > 1)
    SequencerThread = std::thread([this, NewEpoch] { routerLoop(NewEpoch); });
  else
    SequencerThread =
        std::thread([this, NewEpoch] { sequencerLoop(NewEpoch); });
}

void Engine::handleShardStall(Shard &S) {
  // The per-shard mirror of handleStall: a worker whose drain watermark
  // froze with routed events pending, outside the spine barrier, past the
  // deadline. Crucially only *this* shard is recycled — its siblings (and
  // the router, which may be parked on this shard's full ring) never stop
  // detecting.
  superviseNote(
      Severity::Warning, StatusCode::Stalled,
      "shard " + std::to_string(S.Index) +
          " sequencer stalled at drain watermark " +
          std::to_string(S.Drained.load(std::memory_order_relaxed)) +
          " past the " + std::to_string(Options.Supervise.StallDeadlineMs) +
          " ms deadline; restarting");
  if (S.Restarts.load(std::memory_order_relaxed) >=
      Options.Supervise.MaxRestarts) {
    superviseNote(
        Severity::Error, StatusCode::Stalled,
        "shard " + std::to_string(S.Index) + " sequencer unrecoverable after " +
            std::to_string(S.Restarts.load(std::memory_order_relaxed)) +
            " restart(s); detection halted");
    SequencerGaveUp.store(true, std::memory_order_release);
    Halted.store(true, std::memory_order_release);
    // The halt flag (plus the epoch bump, for a cooperatively-wedged
    // loop) makes the worker exit; join so finish() finds a quiet shard.
    S.Epoch.fetch_add(1, std::memory_order_acq_rel);
    if (S.Worker.joinable())
      S.Worker.join();
    return;
  }
  uint64_t NewEpoch = S.Epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (S.Worker.joinable())
    S.Worker.join();
  S.Restarts.fetch_add(1, std::memory_order_relaxed);
  superviseNote(Severity::Note, StatusCode::Stalled,
                "shard " + std::to_string(S.Index) + " sequencer restarted");
  Shard *P = &S;
  S.Worker = std::thread([this, P, NewEpoch] { shardLoop(*P, NewEpoch); });
}

void Engine::supervisorLoop() {
  const SupervisorOptions &S = Options.Supervise;
  uint64_t LastMark = NextSeq.load(std::memory_order_acquire);
  uint64_t LastDeadlineDrops = DeadlineDrops.load(std::memory_order_relaxed);
  unsigned StalledMs = 0;
  unsigned PressureTicks = 0;
  std::vector<uint64_t> ShardMarks(ShardSet.size(), 0);
  std::vector<unsigned> ShardStalledMs(ShardSet.size(), 0);
  while (SupervisorRun.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(S.TickMs));
    uint64_t Mark = NextSeq.load(std::memory_order_acquire);
    uint64_t Tickets = Seq.load(std::memory_order_acquire);
    if (Tickets > Mark)
      noteMaxBacklog(Tickets - Mark);

    // --- stall detection: outstanding tickets, frozen watermark. A
    // router parked on a full shard ring also freezes the watermark, but
    // the cure is restarting the *shard* (the scan below) — restarting
    // the router would hang this thread joining a parked router.
    if (Mark != LastMark) {
      StalledMs = 0;
      // The sequencer is draining again: leave drop-and-count mode.
      if (DropAccesses.load(std::memory_order_relaxed))
        DropAccesses.store(false, std::memory_order_release);
    } else if (Tickets != Mark &&
               !Halted.load(std::memory_order_acquire) &&
               !SequencerGaveUp.load(std::memory_order_acquire) &&
               !RouterBlockedOnShard.load(std::memory_order_acquire)) {
      StalledMs += S.TickMs;
      if (StalledMs >= S.StallDeadlineMs) {
        handleStall(Mark);
        StalledMs = 0;
      }
    } else {
      StalledMs = 0;
    }

    // --- per-shard stall detection (Shards > 1): routed events pending,
    // drain watermark frozen, and not parked at the spine barrier (a
    // barrier wait is a sibling's fault; the scan catches the sibling).
    for (size_t I = 0; I != ShardSet.size(); ++I) {
      Shard &Sh = *ShardSet[I];
      uint64_t Drained = Sh.Drained.load(std::memory_order_acquire);
      uint64_t Routed = Sh.Routed.load(std::memory_order_acquire);
      bool Idle = Routed <= Drained;
      if (Drained != ShardMarks[I] || Idle ||
          Sh.AtBarrier.load(std::memory_order_acquire) ||
          Halted.load(std::memory_order_acquire) ||
          SequencerGaveUp.load(std::memory_order_acquire)) {
        ShardStalledMs[I] = 0;
      } else {
        ShardStalledMs[I] += S.TickMs;
        if (ShardStalledMs[I] >= S.StallDeadlineMs) {
          handleShardStall(Sh);
          ShardStalledMs[I] = 0;
        }
      }
      ShardMarks[I] = Drained;
    }

    // --- pressure detection: producers continuously parked or shedding
    // accesses at the park deadline → the consumer is too slow for the
    // event rate; request one rung of load shedding per sustained window.
    uint64_t Drops = DeadlineDrops.load(std::memory_order_relaxed);
    bool Pressure = ProducersParked.load(std::memory_order_relaxed) > 0 ||
                    Drops != LastDeadlineDrops;
    if (Pressure && !Halted.load(std::memory_order_relaxed)) {
      if (++PressureTicks >= S.PressureTicksToDegrade) {
        if (Options.Degrade.Enabled) {
          PendingDegrade.fetch_add(1, std::memory_order_relaxed);
          superviseNote(Severity::Warning, StatusCode::Stalled,
                        "sustained ring pressure: requested ladder "
                        "downgrade");
        }
        PressureTicks = 0;
      }
    } else {
      PressureTicks = 0;
    }
    LastDeadlineDrops = Drops;
    LastMark = Mark;
  }
}

OnlineReport Engine::finish() {
  assert(!Finished && "finish() is callable once");
  Finished = true;

  // Drain: every ticket handed out has been merged (or discarded after a
  // halt). Requires all runtime Threads to be joined by the caller. When
  // the watchdog declared the sequencer dead, outstanding tickets will
  // never merge — skip the wait and report what happened.
  while (NextSeq.load(std::memory_order_acquire) <
             Seq.load(std::memory_order_acquire) &&
         !SequencerGaveUp.load(std::memory_order_acquire))
    std::this_thread::yield();
  // Sharded: the router has routed everything (the watermark is published
  // only after a batch is fully routed); now wait for every worker to
  // drain its routed stream too. A halted worker still advances its drain
  // watermark by discard-and-count, so this terminates unless a worker is
  // truly gone (gave-up) — then the leftovers are counted below.
  for (const std::unique_ptr<Shard> &S : ShardSet)
    while (S->Drained.load(std::memory_order_acquire) <
               S->Routed.load(std::memory_order_acquire) &&
           !SequencerGaveUp.load(std::memory_order_acquire))
      std::this_thread::yield();
  Running.store(false, std::memory_order_release);
  // Stop the supervisor first so no restart can race the joins below.
  SupervisorRun.store(false, std::memory_order_release);
  if (SupervisorThread.joinable())
    SupervisorThread.join();
  if (SequencerThread.joinable())
    SequencerThread.join();
  if (NumShards > 1) {
    // Only after the router is joined is RouterDone true in the sense the
    // workers rely on: no more pushes, ever.
    RouterDone.store(true, std::memory_order_release);
    for (const std::unique_ptr<Shard> &S : ShardSet)
      if (S->Worker.joinable())
        S->Worker.join();
    for (const std::unique_ptr<Shard> &S : ShardSet)
      S->Driver->finish();
    // Fold the shards back into the primary tool: warnings first, merged
    // in raw-index order so the set AND order match a single-sequencer
    // run byte for byte (each variable lives in exactly one shard, so the
    // one-warning-per-variable policy cannot collide across clones), then
    // the instrumentation counters via the ShardableTool hook.
    std::vector<RaceWarning> Merged;
    for (const std::unique_ptr<Shard> &S : ShardSet)
      for (const RaceWarning &W : S->Clone->warnings())
        Merged.push_back(W);
    std::stable_sort(Merged.begin(), Merged.end(),
                     [](const RaceWarning &A, const RaceWarning &B) {
                       return A.OpIndex != B.OpIndex ? A.OpIndex < B.OpIndex
                                                     : A.Var < B.Var;
                     });
    Checker.adoptWarnings(Merged);
    auto &Shardable = dynamic_cast<ShardableTool &>(Checker);
    for (const std::unique_ptr<Shard> &S : ShardSet)
      Shardable.mergeShard(*S->Clone);
  }
  Driver.finish();

  Report.Seconds = Watch.seconds();
  Report.Clocks = SequencerClocks;
  Report.EventsCaptured = Driver.rawOps();
  Report.EventsDispatched = Driver.dispatched();
  Report.NumWarnings = Checker.warnings().size();
  Report.Halted =
      Driver.halted() || Halted.load(std::memory_order_acquire);
  Report.Diags = Driver.diags();
  {
    std::lock_guard<std::mutex> Guard(SupMu);
    for (Diagnostic &D : SupDiags)
      Report.Diags.push_back(std::move(D));
    SupDiags.clear();
  }
  Report.DegradeRung = Driver.rung();
  Report.Degradations = Driver.degradations();
  Report.AccessesShed = Driver.accessesDropped();
  Report.SequencerRestarts = Restarts.load(std::memory_order_relaxed);
  Report.MaxBacklog = MaxBacklogSeen.load(std::memory_order_relaxed);
  Report.DroppedPostHalt = DiscardedPostHalt;
  Report.Shards = NumShards;
  for (const std::unique_ptr<Shard> &S : ShardSet) {
    Report.ShardRestarts += S->Restarts.load(std::memory_order_relaxed);
    Report.Halted = Report.Halted || S->Driver->halted();
    for (const Diagnostic &D : S->Driver->diags())
      Report.Diags.push_back(D);
    // Worker-side discards, plus anything still sitting in a dead
    // worker's ring (gave-up): counted, never silent.
    Report.DroppedPostHalt +=
        S->Discards.load(std::memory_order_relaxed) +
        (S->Routed.load(std::memory_order_relaxed) -
         S->Drained.load(std::memory_order_relaxed));
  }
  if (SequencerGaveUp.load(std::memory_order_acquire))
    // No sequencer will ever merge the outstanding tickets; count them as
    // dropped rather than pretending the stream simply ended.
    Report.DroppedPostHalt += Seq.load(std::memory_order_acquire) -
                              NextSeq.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> Guard(ChannelMu);
    for (const std::unique_ptr<Channel> &Ch : Channels) {
      uint64_t PH = Ch->DroppedPostHalt.load(std::memory_order_relaxed);
      uint64_t OV = Ch->DroppedOverload.load(std::memory_order_relaxed);
      uint64_t PK = Ch->Parks.load(std::memory_order_relaxed);
      Report.DroppedPostHalt += PH;
      Report.DroppedOverload += OV;
      Report.ParkEpisodes += PK;
      if ((PH | OV | PK) != 0)
        Report.PerThreadDrops.push_back({Ch->Id, PH, OV, PK});
    }
    // Lifecycle telemetry: with recycling, SlotsAllocated is the width
    // the tool actually paid for (= Interner's dense-id high-water mark),
    // bounded by max-live rather than total threads forked.
    Report.SlotsAllocated = static_cast<unsigned>(Channels.size());
    Report.PeakLiveSlots = PeakLiveSlots;
    Report.ThreadsRecycled = ThreadsRecycled;
  }
  Report.ForksRejected = ForksRejected.load(std::memory_order_relaxed);
  Report.UntrackedEvents = UntrackedEvents.load(std::memory_order_relaxed);
  Report.EventsElided = ElidedEvents.load(std::memory_order_relaxed);
  {
    // Memory-governance telemetry. Sharded: sum the clones (workers are
    // joined, so reading them is safe); the primary's table saw no
    // accesses and its reset-seeded high water would only distort the
    // sum. High waters add across shards — a conservative (never
    // understated) peak, since the shards' peaks need not coincide.
    ShadowGovernorStats GS;
    if (NumShards > 1)
      for (const std::unique_ptr<Shard> &S : ShardSet)
        GS += S->Clone->shadowGovernorStats();
    else
      GS = Checker.shadowGovernorStats();
    Report.ShadowBytesHighWater = GS.ShadowBytesHighWater;
    Report.PagesCompressed = GS.PagesCompressed;
    Report.PagesSummarized = GS.PagesSummarized;
    Report.BudgetTrips = GS.BudgetTrips;
  }
  if (Report.ForksRejected != 0)
    Report.Diags.push_back(
        {StatusCode::ResourceExhausted, Severity::Warning, 0, NoOpIndex,
         std::to_string(Report.ForksRejected) +
             " thread(s) ran untracked after slot-table exhaustion; " +
             std::to_string(Report.UntrackedEvents) +
             " of their event(s) dropped (counted, never silent)"});
  if (Report.DroppedPostHalt != 0)
    // One-shot: a single diagnostic however many events were lost; the
    // per-thread accounting lives in the counters above.
    Report.Diags.push_back(
        {StatusCode::Cancelled, Severity::Warning, 0, NoOpIndex,
         std::to_string(Report.DroppedPostHalt) +
             " event(s) dropped after detection halted (per-thread counts "
             "in the report)"});

  if (SegWriter) {
    (void)SegWriter->finish();
    Report.CaptureSegments = SegWriter->segmentsSealed();
    for (const Diagnostic &D : SegWriter->diags())
      Report.Diags.push_back(D);
  }
  if (MemCapture && Options.ValidateCapture) {
    TraceValidatorOptions VOpts;
    // Shedding can strip every access of a thread while its fork/join
    // spine is still delivered, which rule (4) would flag; that is a
    // legitimate degraded capture, not a malformed one.
    VOpts.RequireThreadOps =
        Report.AccessesShed == 0 && Report.DroppedOverload == 0;
    // Recycled slots legally re-fork a joined tid; the validator knows
    // the reincarnation protocol through this option.
    VOpts.AllowTidReuse = Options.RecycleThreadSlots;
    for (Diagnostic &D : validateTrace(Capture, VOpts))
      Report.Diags.push_back(std::move(D));
  }
  if (!Options.CapturePath.empty() && !SegWriter) {
    if (Status St = saveTraceFile(Options.CapturePath, Capture); !St.ok()) {
      Diagnostic D;
      D.Code = St.code();
      D.Sev = Severity::Error;
      D.Message = "flight recorder: " + St.message();
      Report.Diags.push_back(std::move(D));
    }
  }
  if (Options.KeepCapture)
    Report.Captured = std::move(Capture);

  if (Binding.E == this)
    Binding = {};
  CurrentEngine.store(nullptr, std::memory_order_release);
  return std::move(Report);
}
