#include "detectors/LockSet.h"

#include <algorithm>
#include <cassert>

using namespace ft;

LockSet::LockSet(std::vector<LockId> Init) : Locks(std::move(Init)) {
  std::sort(Locks.begin(), Locks.end());
  Locks.erase(std::unique(Locks.begin(), Locks.end()), Locks.end());
}

void LockSet::intersectWith(const LockSet &Other) {
  size_t Out = 0;
  size_t J = 0;
  for (size_t I = 0; I != Locks.size(); ++I) {
    while (J != Other.Locks.size() && Other.Locks[J] < Locks[I])
      ++J;
    if (J != Other.Locks.size() && Other.Locks[J] == Locks[I])
      Locks[Out++] = Locks[I];
  }
  Locks.resize(Out);
}

void LockSet::insert(LockId M) {
  auto It = std::lower_bound(Locks.begin(), Locks.end(), M);
  if (It == Locks.end() || *It != M)
    Locks.insert(It, M);
}

bool LockSet::contains(LockId M) const {
  return std::binary_search(Locks.begin(), Locks.end(), M);
}

void HeldLocks::reset(unsigned NumThreads) {
  Held.assign(NumThreads, LockSet());
}

void HeldLocks::acquire(ThreadId T, LockId M) {
  assert(T < Held.size() && "unknown thread");
  Held[T].insert(M);
}

void HeldLocks::release(ThreadId T, LockId M) {
  assert(T < Held.size() && "unknown thread");
  // Rebuild without M; release of an unheld lock is a no-op.
  std::vector<LockId> Remaining;
  Remaining.reserve(Held[T].size());
  for (LockId Held_ : Held[T].locks())
    if (Held_ != M)
      Remaining.push_back(Held_);
  Held[T] = LockSet(std::move(Remaining));
}

size_t HeldLocks::memoryBytes() const {
  size_t Bytes = 0;
  for (const LockSet &Set : Held)
    Bytes += sizeof(LockSet) + Set.memoryBytes();
  return Bytes;
}
