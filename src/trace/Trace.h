//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Trace type: a totally-ordered sequence of operations observed from
/// one execution of a multithreaded program (Section 2.1 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_TRACE_H
#define FASTTRACK_TRACE_TRACE_H

#include "trace/Operation.h"

#include <cassert>
#include <vector>

namespace ft {

/// A trace α: the observed interleaving of a multithreaded execution.
///
/// Besides the operation sequence, a trace owns the side table of barrier
/// thread sets (Barrier operations store an index into it) and tracks the
/// number of distinct threads, variables, locks, and volatiles so analyses
/// can pre-size their shadow state.
class Trace {
public:
  /// Appends \p Op, updating entity counts.
  void append(const Operation &Op);

  /// Appends \p N operations in one call, updating entity counts once per
  /// op but growing storage once. The online sequencer captures each
  /// drained batch through this, so the steady state has no per-event
  /// capture branch. Barriers are not allowed (use appendBarrier).
  void appendRun(const Operation *Ops, size_t N);

  /// Appends a barrier release of the thread set \p Threads and returns the
  /// stored operation. \p Threads must be nonempty.
  Operation appendBarrier(const std::vector<ThreadId> &Threads);

  /// Returns the barrier thread set with index \p SetIndex.
  const std::vector<ThreadId> &barrierSet(uint32_t SetIndex) const {
    assert(SetIndex < BarrierSets.size() && "barrier set index out of range");
    return BarrierSets[SetIndex];
  }

  const std::vector<Operation> &operations() const { return Ops; }
  size_t size() const { return Ops.size(); }
  bool empty() const { return Ops.empty(); }
  const Operation &operator[](size_t I) const {
    assert(I < Ops.size() && "operation index out of range");
    return Ops[I];
  }

  /// Upper bounds on entity ids seen so far (max id + 1). A trace always
  /// has at least one thread (the main thread, id 0).
  unsigned numThreads() const { return NumThreads; }
  unsigned numVars() const { return NumVars; }
  unsigned numLocks() const { return NumLocks; }
  unsigned numVolatiles() const { return NumVolatiles; }
  unsigned numBarrierSets() const { return BarrierSets.size(); }

  /// Reserves capacity for \p N operations.
  void reserve(size_t N) { Ops.reserve(N); }

  /// Removes all operations and side tables.
  void clear();

  using const_iterator = std::vector<Operation>::const_iterator;
  const_iterator begin() const { return Ops.begin(); }
  const_iterator end() const { return Ops.end(); }

private:
  void noteThread(ThreadId T) {
    if (T + 1 > NumThreads)
      NumThreads = T + 1;
  }

  std::vector<Operation> Ops;
  std::vector<std::vector<ThreadId>> BarrierSets;
  unsigned NumThreads = 1;
  unsigned NumVars = 0;
  unsigned NumLocks = 0;
  unsigned NumVolatiles = 0;
};

} // namespace ft

#endif // FASTTRACK_TRACE_TRACE_H
