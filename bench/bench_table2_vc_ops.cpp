//===----------------------------------------------------------------------===//
//
// Experiment E4 — Table 2: vector clocks allocated and O(n)-time vector
// clock operations, DJIT+ versus FastTrack, per benchmark.
//
// Paper totals: DJIT+ allocated 796,816,918 VCs and performed
// 5,103,592,958 O(n) operations; FastTrack allocated 5,142,120 and
// performed 71,284,601 — two orders of magnitude apart. Absolute numbers
// scale with workload volume; the orders-of-magnitude gap is the target.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FastTrack.h"
#include "detectors/DjitPlus.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace ft;
using namespace ft::bench;

int main(int argc, char **argv) {
  BenchReport Report("bench_table2_vc_ops", argc, argv);
  banner("Table 2: vector clock allocations and O(n) operations");

  Table Out;
  Out.addHeader({"Program", "DJIT+ allocs", "FastTrack allocs",
                 "DJIT+ VC ops", "FastTrack VC ops"});

  uint64_t TotalAllocs[2] = {0, 0};
  uint64_t TotalOps[2] = {0, 0};

  for (const Workload &W : benchmarkSuite()) {
    Trace T = W.Generate(/*Seed=*/1, sizeFactor());

    DjitPlus Djit;
    ReplayResult DjitResult = replay(T, Djit);
    FastTrack Ft;
    ReplayResult FtResult = replay(T, Ft);

    TotalAllocs[0] += DjitResult.Clocks.Allocations;
    TotalAllocs[1] += FtResult.Clocks.Allocations;
    TotalOps[0] += DjitResult.Clocks.totalOps();
    TotalOps[1] += FtResult.Clocks.totalOps();

    Out.addRow({W.Name, withCommas(DjitResult.Clocks.Allocations),
                withCommas(FtResult.Clocks.Allocations),
                withCommas(DjitResult.Clocks.totalOps()),
                withCommas(FtResult.Clocks.totalOps())});
  }

  Out.addSeparator();
  Out.addRow({"Total", withCommas(TotalAllocs[0]), withCommas(TotalAllocs[1]),
              withCommas(TotalOps[0]), withCommas(TotalOps[1])});
  std::fputs(Out.render().c_str(), stdout);

  double AllocRatio = TotalAllocs[1]
                          ? double(TotalAllocs[0]) / double(TotalAllocs[1])
                          : 0.0;
  double OpsRatio =
      TotalOps[1] ? double(TotalOps[0]) / double(TotalOps[1]) : 0.0;
  std::printf("\nDJIT+/FastTrack ratios: allocations %.0fx, VC ops %.0fx.\n",
              AllocRatio, OpsRatio);
  std::printf("Paper ratios: allocations ~155x, VC ops ~72x (both orders of "
              "magnitude).\n");
  Report.metric("djit_allocations", double(TotalAllocs[0]));
  Report.metric("fasttrack_allocations", double(TotalAllocs[1]));
  Report.metric("djit_vc_ops", double(TotalOps[0]));
  Report.metric("fasttrack_vc_ops", double(TotalOps[1]));
  Report.metric("alloc_ratio", AllocRatio, "x");
  Report.metric("vc_ops_ratio", OpsRatio, "x");
  return Report.write() ? 0 : 1;
}
