//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GOLDILOCKS: the precise lockset-based race detector of Elmas, Qadeer,
/// and Tasiran (PLDI 2007), re-implemented as in Section 5.1 of the
/// FastTrack paper.
///
/// Goldilocks represents the happens-before relation without vector
/// clocks. Each variable carries a set of "synchronization devices" —
/// threads, locks, and volatiles — and the set grows by transfer rules
/// applied at synchronization events:
///
///   rel(t,m):   if t ∈ LS then LS ∪= {m}
///   acq(t,m):   if m ∈ LS then LS ∪= {t}
///   fork(t,u):  if t ∈ LS then LS ∪= {u}
///   join(t,u):  if u ∈ LS then LS ∪= {t}
///   vol_wr(t,v): if t ∈ LS then LS ∪= {v}
///   vol_rd(t,v): if v ∈ LS then LS ∪= {t}
///   barrier(T): if LS ∩ T ≠ ∅ then LS ∪= T
///
/// An access by t is race-free iff LS is fresh (first access) or t ∈ LS
/// after applying all pending events; afterwards LS resets to {t}. Like
/// the original, the implementation is *lazy*: sync events append to a
/// global log and each per-variable set catches up on demand, which keeps
/// sync operations O(1) but makes accesses to rarely-touched variables
/// expensive — this detector is precise but slow, as in the paper.
///
/// The optional thread-local fast path reproduces the "unsound extension
/// to handle thread-local data efficiently" that the paper notes caused
/// Goldilocks to miss the three hedc races.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_DETECTORS_GOLDILOCKS_H
#define FASTTRACK_DETECTORS_GOLDILOCKS_H

#include "framework/Tool.h"

#include <vector>

namespace ft {

/// A set of synchronization devices: threads, locks, volatiles.
class DeviceSet {
public:
  static uint64_t threadDevice(ThreadId T) { return (uint64_t(1) << 32) | T; }
  static uint64_t lockDevice(LockId M) { return (uint64_t(2) << 32) | M; }
  static uint64_t volatileDevice(VolatileId V) {
    return (uint64_t(3) << 32) | V;
  }

  void insert(uint64_t Device);
  bool contains(uint64_t Device) const;
  void reset(uint64_t Device) {
    Devices.clear();
    Devices.push_back(Device);
  }
  void clear() { Devices.clear(); }
  bool empty() const { return Devices.empty(); }
  size_t size() const { return Devices.size(); }
  size_t memoryBytes() const { return Devices.capacity() * sizeof(uint64_t); }

private:
  std::vector<uint64_t> Devices; // sorted, unique
};

/// The Goldilocks analysis.
class Goldilocks : public Tool {
public:
  /// \p UnsoundThreadLocal enables the fast path for thread-local data
  /// used in the paper's comparison (default on, as benchmarked there);
  /// it can miss races between a variable's thread-local phase and later
  /// shared accesses. Disable it to make the analysis exactly precise.
  explicit Goldilocks(bool UnsoundThreadLocal = true)
      : UnsoundThreadLocal(UnsoundThreadLocal) {}

  const char *name() const override { return "Goldilocks"; }

  void begin(const ToolContext &Context) override;
  bool onRead(ThreadId T, VarId X, size_t OpIndex) override;
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override;
  void onAcquire(ThreadId T, LockId M, size_t OpIndex) override;
  void onRelease(ThreadId T, LockId M, size_t OpIndex) override;
  void onFork(ThreadId T, ThreadId U, size_t OpIndex) override;
  void onJoin(ThreadId T, ThreadId U, size_t OpIndex) override;
  void onVolatileRead(ThreadId T, VolatileId V, size_t OpIndex) override;
  void onVolatileWrite(ThreadId T, VolatileId V, size_t OpIndex) override;
  void onBarrier(const std::vector<ThreadId> &Threads,
                 size_t OpIndex) override;
  size_t shadowBytes() const override;

private:
  /// One entry of the global synchronization-event log.
  struct SyncEvent {
    enum Kind : uint8_t { Rel, Acq, Fork, Join, VolWr, VolRd, Barrier };
    Kind K;
    ThreadId T;
    uint32_t Target; // lock, volatile, other thread, or barrier-set index
  };

  /// A lazily-updated device set: LogPos marks how much of the log has
  /// been applied.
  struct LazySet {
    DeviceSet Set;
    size_t LogPos = 0;
  };

  struct VarShadow {
    LazySet Write;                                 ///< Set for last write.
    std::vector<std::pair<ThreadId, LazySet>> Readers; ///< Since last write.
    bool WriteSeen = false;
    /// Thread-local fast path state.
    bool ThreadLocal = true;
    ThreadId Owner = 0;
    bool OwnerKnown = false;
  };

  /// Applies log entries [LS.LogPos, log.size()) to LS.
  void catchUp(LazySet &LS);
  void resetTo(LazySet &LS, ThreadId T);
  void report(ThreadId T, VarId X, size_t OpIndex, OpKind Kind,
              const char *Detail);

  bool UnsoundThreadLocal;
  std::vector<SyncEvent> Log;
  std::vector<std::vector<ThreadId>> BarrierSets;
  std::vector<VarShadow> Vars;
};

} // namespace ft

#endif // FASTTRACK_DETECTORS_GOLDILOCKS_H
