//===----------------------------------------------------------------------===//
//
// Experiment E9 (micro) — the primitive costs behind the whole paper:
// O(1) epoch operations versus O(n) vector-clock operations as the
// thread count grows. Uses google-benchmark.
//
// Expected: epoch compare/assign flat across thread counts; VC join /
// compare / copy scale linearly with n — the gap FastTrack exploits.
//
//===----------------------------------------------------------------------===//

#include "clock/VectorClock.h"

#include <benchmark/benchmark.h>

using namespace ft;

namespace {

VectorClock denseClock(unsigned Threads, uint32_t Base) {
  VectorClock C;
  for (ThreadId T = 0; T != Threads; ++T)
    C.set(T, Base + T);
  return C;
}

void BM_EpochCompare(benchmark::State &State) {
  unsigned Threads = State.range(0);
  VectorClock C = denseClock(Threads, 10);
  Epoch E = Epoch::make(Threads / 2, 9);
  for (auto _ : State) {
    benchmark::DoNotOptimize(C.epochLeq(E));
  }
}

void BM_EpochAssign(benchmark::State &State) {
  Epoch E = Epoch::make(3, 41);
  Epoch Out;
  for (auto _ : State) {
    Out = E;
    benchmark::DoNotOptimize(Out);
  }
}

void BM_VcCompare(benchmark::State &State) {
  unsigned Threads = State.range(0);
  VectorClock A = denseClock(Threads, 10);
  VectorClock B = denseClock(Threads, 11);
  for (auto _ : State) {
    benchmark::DoNotOptimize(A.leq(B));
  }
}

void BM_VcJoin(benchmark::State &State) {
  unsigned Threads = State.range(0);
  VectorClock A = denseClock(Threads, 10);
  VectorClock B = denseClock(Threads, 11);
  for (auto _ : State) {
    A.joinWith(B);
    benchmark::DoNotOptimize(A);
  }
}

void BM_VcCopy(benchmark::State &State) {
  unsigned Threads = State.range(0);
  VectorClock A = denseClock(Threads, 10);
  VectorClock B;
  for (auto _ : State) {
    B.copyFrom(A);
    benchmark::DoNotOptimize(B);
  }
}

} // namespace

BENCHMARK(BM_EpochCompare)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_EpochAssign);
BENCHMARK(BM_VcCompare)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_VcJoin)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_VcCopy)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

BENCHMARK_MAIN();
