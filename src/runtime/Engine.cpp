#include "runtime/Engine.h"

#include "trace/TraceIO.h"
#include "trace/TraceValidator.h"

#include <cassert>

using namespace ft;
using namespace ft::runtime;

namespace {

/// The one live session (shims attach through Engine::current()).
std::atomic<Engine *> CurrentEngine{nullptr};

/// Session stamps start at 1 so a zero-initialized object cache never
/// matches a real generation.
std::atomic<uint64_t> GenerationCounter{0};

ToolContext capacityContext(const OnlineOptions &Options) {
  ToolContext Context;
  Context.NumThreads = Options.MaxThreads;
  Context.NumVars = Options.MaxVars;
  Context.NumLocks = Options.MaxLocks;
  Context.NumVolatiles = Options.MaxVolatiles;
  return Context;
}

OnlineDriverOptions driverOptions(const OnlineOptions &Options) {
  OnlineDriverOptions Driver;
  Driver.FilterReentrantLocks = Options.FilterReentrantLocks;
  Driver.WarningSink = Options.OnWarning;
  return Driver;
}

/// Which engine/channel the calling thread is bound to. Rebinding is
/// lazy: a thread carrying a stale binding (from a finished session)
/// re-registers against the live engine on first emit.
struct TlsBinding {
  const void *E = nullptr;
  void *Ch = nullptr;
};
thread_local TlsBinding Binding;

} // namespace

Engine *Engine::current() {
  return CurrentEngine.load(std::memory_order_acquire);
}

Engine::Engine(Tool &Checker, OnlineOptions Opts)
    : Checker(Checker), Options(std::move(Opts)),
      Gen(GenerationCounter.fetch_add(1, std::memory_order_relaxed) + 1),
      Driver(Checker, capacityContext(Options), driverOptions(Options)),
      Capturing(Options.KeepCapture || !Options.CapturePath.empty()) {
  // The constructing thread is the session's main thread, dense id 0.
  ThreadId Main = Interner.allocateThreadId();
  Binding = {this, registerThread(Main)};

  assert(CurrentEngine.load(std::memory_order_relaxed) == nullptr &&
         "one online session at a time");
  CurrentEngine.store(this, std::memory_order_release);

  SequencerThread = std::thread([this] { sequencerLoop(); });
}

Engine::~Engine() {
  if (!Finished)
    (void)finish();
}

Engine::Channel *Engine::registerThread(ThreadId Id) {
  std::lock_guard<std::mutex> Guard(ChannelMu);
  Channels.push_back(std::make_unique<Channel>(Id, Options.RingCapacity));
  NumChannels.store(Channels.size(), std::memory_order_release);
  return Channels.back().get();
}

Engine::Channel *Engine::channelForCurrentThread() {
  if (Binding.E == this)
    return static_cast<Channel *>(Binding.Ch);
  // A thread the runtime has not seen: auto-register so its events are
  // analyzed rather than lost. Without a fork edge its accesses are
  // conservatively unordered with every other thread; captures containing
  // it fail the validator's fork-before-first-op rule (see class comment).
  ThreadId Id = Interner.allocateThreadId();
  Channel *Ch = registerThread(Id);
  Binding = {this, Ch};
  return Ch;
}

void Engine::bindCurrentThread(ThreadId Id) {
  Binding = {this, registerThread(Id)};
}

void Engine::emit(OpKind Kind, uint32_t Target) {
  if (Halted.load(std::memory_order_relaxed))
    return;
  Channel *Ch = channelForCurrentThread();
  // Backpressure: park until the sequencer drains. The ticket is drawn
  // only after space is certain, so the sequencer never waits on a seq
  // number owned by a parked thread (that would deadlock the pipeline).
  while (!Ch->Ring.hasSpace()) {
    if (Halted.load(std::memory_order_relaxed))
      return;
    std::this_thread::yield();
  }
  OnlineEvent E;
  E.Seq = Seq.fetch_add(1, std::memory_order_relaxed);
  E.Kind = Kind;
  E.Target = Target;
  Ch->Ring.push(E);
}

ThreadId Engine::forkThread() {
  ThreadId Child = Interner.allocateThreadId();
  // Ticketed before the native thread starts, so fork(t, u) precedes
  // every event of u in the merged order.
  emit(OpKind::Fork, Child);
  return Child;
}

void Engine::joinThread(ThreadId Child) {
  // Ticketed after the native join returned, so every event of the child
  // precedes join(t, u) in the merged order.
  emit(OpKind::Join, Child);
}

void Engine::deliver(ThreadId T, const OnlineEvent &E) {
  if (Halted.load(std::memory_order_relaxed))
    return; // drain-and-discard once detection stopped
  Operation Op(E.Kind, T, E.Target);
  if (!Driver.dispatch(Op)) {
    Halted.store(true, std::memory_order_relaxed);
    return;
  }
  if (Capturing)
    Capture.append(Op);
}

void Engine::sequencerLoop() {
  uint64_t Next = 0;
  std::vector<Channel *> Snapshot;
  size_t Known = 0;
  const size_t BatchCap = std::max<size_t>(1, Options.SequencerBatch);
  std::vector<OnlineEvent> Batch(BatchCap);
  for (;;) {
    // Rebuild the channel snapshot only when a registration happened;
    // the steady-state sweep never touches ChannelMu.
    if (NumChannels.load(std::memory_order_acquire) != Known) {
      std::lock_guard<std::mutex> Guard(ChannelMu);
      Snapshot.clear();
      for (const std::unique_ptr<Channel> &Ch : Channels)
        Snapshot.push_back(Ch.get());
      Known = Channels.size();
    }
    bool Progress = false;
    for (Channel *Ch : Snapshot) {
      // Drain this ring's run of consecutive tickets in batches: the
      // events are copied out and their slots released in one Head store
      // (so a parked producer unblocks early), then dispatched from the
      // local buffer. A short batch means the run ended — either the
      // ring is out of events or its head ticket is from the future, so
      // move on to the other rings.
      for (;;) {
        size_t N = Ch->Ring.popRunInto(Next, Batch.data(), BatchCap);
        if (N == 0)
          break;
        Progress = true;
        for (size_t I = 0; I != N; ++I)
          deliver(Ch->Id, Batch[I]);
        if (N != BatchCap)
          break;
      }
    }
    if (Progress) {
      NextSeq.store(Next, std::memory_order_release);
      continue;
    }
    // No ring held ticket Next: either it is in flight (drawn but not yet
    // published — a handful of instructions), or nothing is happening.
    if (!Running.load(std::memory_order_acquire) &&
        Next == Seq.load(std::memory_order_acquire))
      break;
    std::this_thread::yield();
  }
  // Vector-clock counters are thread-local (see ClockStats.h); all online
  // VC work happened on this thread, so its block is the session's delta.
  SequencerClocks = clockStats();
}

OnlineReport Engine::finish() {
  assert(!Finished && "finish() is callable once");
  Finished = true;

  // Drain: every ticket handed out has been merged (or discarded after a
  // halt). Requires all runtime Threads to be joined by the caller.
  while (NextSeq.load(std::memory_order_acquire) <
         Seq.load(std::memory_order_acquire))
    std::this_thread::yield();
  Running.store(false, std::memory_order_release);
  SequencerThread.join();
  Driver.finish();

  Report.Seconds = Watch.seconds();
  Report.Clocks = SequencerClocks;
  Report.EventsCaptured = Capture.size();
  Report.EventsDispatched = Driver.dispatched();
  Report.NumWarnings = Checker.warnings().size();
  Report.Halted = Driver.halted();
  Report.Diags = Driver.diags();

  if (Capturing && Options.ValidateCapture)
    for (Diagnostic &D : validateTrace(Capture))
      Report.Diags.push_back(std::move(D));
  if (!Options.CapturePath.empty()) {
    if (Status St = saveTraceFile(Options.CapturePath, Capture); !St.ok()) {
      Diagnostic D;
      D.Code = St.code();
      D.Sev = Severity::Error;
      D.Message = "flight recorder: " + St.message();
      Report.Diags.push_back(std::move(D));
    }
  }
  if (Options.KeepCapture)
    Report.Captured = std::move(Capture);

  if (Binding.E == this)
    Binding = {};
  CurrentEngine.store(nullptr, std::memory_order_release);
  return std::move(Report);
}
