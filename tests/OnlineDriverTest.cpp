//===--- OnlineDriverTest.cpp - push-mode dispatch vs the replay loop -----===//

#include "core/FastTrack.h"
#include "detectors/Eraser.h"
#include "framework/OnlineDriver.h"
#include "framework/Replay.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

/// Feeds every operation of \p T to a fresh driver over \p Checker.
OnlineDriver pushAll(const Trace &T, Tool &Checker,
                     const ToolContext &Capacity,
                     OnlineDriverOptions Options = {}) {
  OnlineDriver Driver(Checker, Capacity, std::move(Options));
  for (const Operation &Op : T)
    Driver.dispatch(Op);
  Driver.finish();
  return Driver;
}

ToolContext capacity(unsigned Threads = 8, unsigned Vars = 64,
                     unsigned Locks = 8, unsigned Volatiles = 8) {
  ToolContext Context;
  Context.NumThreads = Threads;
  Context.NumVars = Vars;
  Context.NumLocks = Locks;
  Context.NumVolatiles = Volatiles;
  return Context;
}

void expectSameWarnings(const std::vector<RaceWarning> &A,
                        const std::vector<RaceWarning> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Var, B[I].Var);
    EXPECT_EQ(A[I].OpIndex, B[I].OpIndex);
    EXPECT_EQ(A[I].CurrentThread, B[I].CurrentThread);
    EXPECT_EQ(A[I].CurrentKind, B[I].CurrentKind);
    EXPECT_EQ(A[I].PriorThread, B[I].PriorThread);
    EXPECT_EQ(A[I].PriorKind, B[I].PriorKind);
    EXPECT_EQ(A[I].Detail, B[I].Detail);
  }
}

/// A trace exercising races, lock hand-offs, re-entrant locks, volatiles,
/// and fork/join — the op mix both engines must agree on.
Trace mixedTrace() {
  return TraceBuilder()
      .fork(0, 1)
      .fork(0, 2)
      .acq(0, 0)
      .acq(0, 0) // re-entrant: filtered by both engines
      .wr(0, 0)
      .rel(0, 0)
      .rel(0, 0)
      .acq(1, 0)
      .wr(1, 0) // ordered via m0: no race
      .rel(1, 0)
      .wr(2, 1)
      .rd(1, 1) // race on x1
      .volWr(1, 0)
      .volRd(2, 0)
      .wr(2, 2)
      .rd(1, 2) // race on x2 (vrd does not order t1 after t2's write)
      .join(0, 1)
      .join(0, 2)
      .rd(0, 0)
      .take();
}

} // namespace

TEST(OnlineDriver, WarningsMatchOfflineReplayExactly) {
  Trace T = mixedTrace();

  FastTrack Online;
  OnlineDriver Driver = pushAll(T, Online, capacity());

  FastTrack Offline;
  ReplayResult R = replay(T, Offline);

  expectSameWarnings(Online.warnings(), Offline.warnings());
  EXPECT_GT(Online.warnings().size(), 0u);
  EXPECT_EQ(Driver.rawOps(), T.size());
  EXPECT_EQ(Driver.dispatched(), R.Events);
  EXPECT_EQ(Driver.accessesPassed(), R.AccessesPassed);
  EXPECT_FALSE(Driver.halted());
  EXPECT_TRUE(Driver.diags().empty());
}

TEST(OnlineDriver, EraserAgreesWithOfflineReplayToo) {
  // A non-VC tool: the driver makes no assumptions about tool internals.
  Trace T = mixedTrace();
  Eraser Online, Offline;
  pushAll(T, Online, capacity());
  replay(T, Offline);
  expectSameWarnings(Online.warnings(), Offline.warnings());
}

TEST(OnlineDriver, RawIndicesCountFilteredLockEvents) {
  // The warning's OpIndex must name the position in the *raw* stream — a
  // capture replayed offline yields the same index even though the
  // re-entrant pair before the racy access was never dispatched.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(0, 0)
                .acq(0, 0)
                .rel(0, 0)
                .wr(0, 3)
                .rel(0, 0)
                .wr(1, 3) // raw op 6; two lock events before it filtered
                .take();
  FastTrack Online;
  OnlineDriver Driver = pushAll(T, Online, capacity());
  ASSERT_EQ(Online.warnings().size(), 1u);
  EXPECT_EQ(Online.warnings()[0].OpIndex, 6u);
  EXPECT_EQ(Driver.rawOps(), 7u);
  EXPECT_EQ(Driver.dispatched(), 5u); // 2 of 7 filtered
}

TEST(OnlineDriver, WarningSinkFiresImmediately) {
  std::vector<std::pair<size_t, size_t>> SinkLog; // (warning op, raw ops)
  FastTrack Checker;
  OnlineDriverOptions Options;
  OnlineDriver *DriverPtr = nullptr;
  Options.WarningSink = [&](const RaceWarning &W) {
    SinkLog.emplace_back(W.OpIndex, DriverPtr->rawOps());
  };
  OnlineDriver Driver(Checker, capacity(), Options);
  DriverPtr = &Driver;

  Trace T = TraceBuilder().fork(0, 1).wr(0, 0).wr(1, 0).wr(0, 1).take();
  for (const Operation &Op : T)
    Driver.dispatch(Op);
  Driver.finish();

  ASSERT_EQ(SinkLog.size(), 1u);
  EXPECT_EQ(SinkLog[0].first, 2u);  // the racy wr(1, x0)
  EXPECT_EQ(SinkLog[0].second, 3u); // sink ran before op 3 was offered
}

TEST(OnlineDriver, OverCapacityVariableHaltsWhenLadderPinnedOff) {
  FastTrack Checker;
  OnlineDriverOptions Options;
  Options.Degrade.Enabled = false; // pre-ladder behavior: halt outright
  OnlineDriver Driver(Checker, capacity(2, 4, 2, 2), Options);
  EXPECT_TRUE(Driver.dispatch(wr(0, 3)));  // at the edge: fine
  EXPECT_FALSE(Driver.dispatch(wr(0, 4))); // over: halt
  EXPECT_TRUE(Driver.halted());
  ASSERT_EQ(Driver.diags().size(), 1u);
  EXPECT_EQ(Driver.diags()[0].Code, StatusCode::ResourceExhausted);
  EXPECT_EQ(Driver.diags()[0].OpIndex, 1u); // rejected op consumed no index
  // Halted drivers reject everything; the raw stream stays replayable.
  EXPECT_FALSE(Driver.dispatch(wr(0, 0)));
  EXPECT_EQ(Driver.rawOps(), 1u);
  Driver.finish();
}

TEST(OnlineDriver, OverCapacityVariableCoarsensInsteadOfHalting) {
  FastTrack Checker;
  OnlineDriver Driver(Checker, capacity(2, 4, 2, 2)); // default ladder on
  EXPECT_TRUE(Driver.dispatch(wr(0, 3)));
  Operation Over = wr(0, 4); // over capacity: first coarse rung absorbs it
  EXPECT_EQ(Driver.offer(Over), OnlineDriver::DispatchOutcome::Delivered);
  EXPECT_EQ(Over.Target, 0u); // 4 / 8
  EXPECT_FALSE(Driver.halted());
  EXPECT_EQ(Driver.rung(), 1u);
  EXPECT_EQ(Driver.degradations(), 1u);
  ASSERT_EQ(Driver.diags().size(), 1u);
  EXPECT_EQ(Driver.diags()[0].Code, StatusCode::ResourceExhausted);
  EXPECT_EQ(Driver.diags()[0].Sev, Severity::Warning);
  // Every later access folds through the same divisor (coherent shadow).
  Operation Low = wr(0, 3);
  EXPECT_EQ(Driver.offer(Low), OnlineDriver::DispatchOutcome::Delivered);
  EXPECT_EQ(Low.Target, 0u); // 3 / 8
  EXPECT_EQ(Driver.rawOps(), 3u);
  Driver.finish();
}

TEST(OnlineDriver, LadderWidensUntilTheMappedIdFits) {
  // A wildly over-capacity id takes several coarse rungs in one offer.
  FastTrack Checker;
  OnlineDriver Driver(Checker, capacity(2, 4, 2, 2));
  Operation Far = wr(0, 600); // 600/8=75, /64=9 still over, /512=1 fits
  EXPECT_EQ(Driver.offer(Far), OnlineDriver::DispatchOutcome::Delivered);
  EXPECT_EQ(Far.Target, 1u);
  EXPECT_FALSE(Driver.halted());
  EXPECT_EQ(Driver.rung(), 3u);
  EXPECT_EQ(Driver.degradations(), 3u);
  Driver.finish();
}

TEST(OnlineDriver, SamplingRungDeliversDeterministicSubset) {
  FastTrack Checker;
  OnlineDriverOptions Options;
  Options.Degrade.Ladder = {{DegradeStep::Kind::AccessSampling, 4}};
  Options.Degrade.StartRung = 1; // pinned at 1-in-4 from the first op
  OnlineDriver Driver(Checker, capacity(), Options);
  unsigned Count = 0;
  for (int I = 0; I != 16; ++I) {
    Operation Op = wr(0, 0);
    Count += Driver.offer(Op) == OnlineDriver::DispatchOutcome::Delivered;
  }
  EXPECT_EQ(Count, 4u); // accesses 0, 4, 8, 12
  EXPECT_EQ(Driver.accessesDropped(), 12u);
  // A shed access consumes no raw index: the capture and its offline
  // replay still agree on every delivered op's index.
  EXPECT_EQ(Driver.rawOps(), 4u);
  // The sync spine is never sampled.
  Operation A = acq(0, 0);
  EXPECT_EQ(Driver.offer(A), OnlineDriver::DispatchOutcome::Delivered);
  Driver.finish();
}

TEST(OnlineDriver, SyncOnlyRungShedsAccessesButKeepsTheSpine) {
  FastTrack Checker;
  OnlineDriverOptions Options;
  Options.Degrade.Ladder = {{DegradeStep::Kind::SyncOnly, 0}};
  Options.Degrade.StartRung = 1;
  OnlineDriver Driver(Checker, capacity(), Options);
  Operation W = wr(0, 0);
  EXPECT_EQ(Driver.offer(W), OnlineDriver::DispatchOutcome::Dropped);
  EXPECT_TRUE(Driver.dispatch(fork(0, 1)));
  EXPECT_TRUE(Driver.dispatch(acq(1, 0)));
  EXPECT_TRUE(Driver.dispatch(rel(1, 0)));
  EXPECT_TRUE(Driver.dispatch(volWr(1, 0)));
  EXPECT_EQ(Driver.accessesDropped(), 1u);
  EXPECT_EQ(Driver.rawOps(), 4u);
  EXPECT_FALSE(Driver.halted());
  Driver.finish();
}

TEST(OnlineDriver, ForcedBudgetBreachStepsDownOnceAtTheProbe) {
  FastTrack Checker;
  OnlineDriverOptions Options;
  Options.Degrade.BudgetCheckEveryOps = 4;
  Options.ForceBudgetBreachAtRawOp = 4; // the fault-injection hook
  OnlineDriver Driver(Checker, capacity(), Options);
  for (int I = 0; I != 12; ++I)
    Driver.dispatch(wr(0, 1));
  // Exactly one transition: the forced breach fires at the first probe at
  // or after raw op 4; later probes read the real (zero-budget) state.
  EXPECT_EQ(Driver.rung(), 1u);
  EXPECT_EQ(Driver.degradations(), 1u);
  ASSERT_EQ(Driver.diags().size(), 1u);
  EXPECT_EQ(Driver.diags()[0].Code, StatusCode::ResourceExhausted);
  EXPECT_LE(Driver.diags()[0].OpIndex, 8u);
  Driver.finish();
}

TEST(OnlineDriver, BudgetBreachWalksLadderThenContinuesUnbudgeted) {
  FastTrack Checker;
  OnlineDriverOptions Options;
  Options.Degrade.ShadowBudgetBytes = 1; // always breached
  Options.Degrade.BudgetCheckEveryOps = 1;
  OnlineDriver Driver(Checker, capacity(), Options);
  // Sync ops keep consuming raw indices even on the SyncOnly rung, so the
  // probes keep firing until the ladder runs out.
  for (int I = 0; I != 16; ++I) {
    Driver.dispatch(acq(0, 0));
    Driver.dispatch(rel(0, 0));
  }
  EXPECT_FALSE(Driver.halted()); // never halts: detection beats death
  EXPECT_EQ(Driver.rung(), 5u);  // full default ladder exhausted
  bool Unbudgeted = false;
  for (const Diagnostic &D : Driver.diags())
    Unbudgeted |= D.Sev == Severity::Note &&
                  D.Message.find("unbudgeted") != std::string::npos;
  EXPECT_TRUE(Unbudgeted);
  Driver.finish();
}

TEST(OnlineDriver, RequestStepDownHonorsPinnedOffLadder) {
  {
    FastTrack Checker;
    OnlineDriverOptions Options;
    Options.Degrade.Enabled = false;
    OnlineDriver Driver(Checker, capacity(), Options);
    EXPECT_FALSE(Driver.requestStepDown(StatusCode::Stalled, "test"));
    EXPECT_EQ(Driver.rung(), 0u);
    Driver.finish();
  }
  {
    FastTrack Checker;
    OnlineDriver Driver(Checker, capacity());
    for (int I = 0; I != 5; ++I)
      EXPECT_TRUE(Driver.requestStepDown(StatusCode::Stalled, "test"));
    EXPECT_FALSE(Driver.requestStepDown(StatusCode::Stalled, "test"));
    EXPECT_EQ(Driver.rung(), 5u);
    EXPECT_FALSE(Driver.halted()); // final rung sheds; it does not halt
    Driver.finish();
  }
}

TEST(OnlineDriver, DegradedCaptureReplaysToIdenticalWarnings) {
  // The equivalence contract on a degraded rung: the capture is the
  // delivered subsequence, exactly as offer() left each op, and replaying
  // it offline reproduces the online warnings byte for byte.
  Trace T = mixedTrace();
  FastTrack Online;
  OnlineDriverOptions Options;
  Options.Degrade.Ladder = {{DegradeStep::Kind::CoarseGranularity, 2},
                            {DegradeStep::Kind::AccessSampling, 2}};
  Options.Degrade.StartRung = 2;
  OnlineDriver Driver(Online, capacity(), Options);
  Trace Capture;
  for (const Operation &Op : T) {
    Operation Copy = Op;
    if (Driver.offer(Copy) == OnlineDriver::DispatchOutcome::Delivered)
      Capture.append(Copy);
  }
  Driver.finish();
  EXPECT_LT(Capture.size(), T.size()); // sampling really shed accesses
  EXPECT_EQ(Capture.size(), Driver.rawOps());

  FastTrack Offline;
  replay(Capture, Offline);
  expectSameWarnings(Online.warnings(), Offline.warnings());
}

namespace {

/// Throws from the Nth read/write handler call.
class BombTool : public Tool {
public:
  explicit BombTool(uint64_t ThrowAt) : ThrowAt(ThrowAt) {}
  const char *name() const override { return "Bomb"; }
  bool onRead(ThreadId, VarId, size_t) override { return tick(); }
  bool onWrite(ThreadId, VarId, size_t) override { return tick(); }

private:
  bool tick() {
    if (Seen++ == ThrowAt)
      throw std::runtime_error("boom");
    return true;
  }
  uint64_t ThrowAt;
  uint64_t Seen = 0;
};

} // namespace

TEST(OnlineDriver, ThrowingToolHaltsWithToolFaultNotUnwind) {
  BombTool Checker(2);
  OnlineDriver Driver(Checker, capacity());
  EXPECT_TRUE(Driver.dispatch(wr(0, 0)));
  EXPECT_TRUE(Driver.dispatch(wr(0, 1)));
  Operation Bang = wr(0, 2);
  EXPECT_EQ(Driver.offer(Bang), OnlineDriver::DispatchOutcome::Rejected);
  EXPECT_TRUE(Driver.halted());
  // The throwing op was rolled back out of the stream: a capture holding
  // the two delivered ops replays cleanly.
  EXPECT_EQ(Driver.rawOps(), 2u);
  ASSERT_EQ(Driver.diags().size(), 1u);
  EXPECT_EQ(Driver.diags()[0].Code, StatusCode::ToolFault);
  EXPECT_NE(Driver.diags()[0].Message.find("boom"), std::string::npos);
  Driver.finish();
}

TEST(OnlineDriver, OverCapacityThreadAndLockAndVolatileHalt) {
  {
    FastTrack Checker;
    OnlineDriver Driver(Checker, capacity(2, 4, 2, 2));
    EXPECT_FALSE(Driver.dispatch(wr(2, 0)));
    EXPECT_TRUE(Driver.halted());
  }
  {
    FastTrack Checker;
    OnlineDriver Driver(Checker, capacity(2, 4, 2, 2));
    EXPECT_FALSE(Driver.dispatch(acq(0, 2)));
    EXPECT_TRUE(Driver.halted());
  }
  {
    FastTrack Checker;
    OnlineDriver Driver(Checker, capacity(2, 4, 2, 2));
    EXPECT_FALSE(Driver.dispatch(volRd(0, 2)));
    EXPECT_TRUE(Driver.halted());
  }
  {
    FastTrack Checker;
    OnlineDriver Driver(Checker, capacity(4, 4, 2, 2));
    EXPECT_FALSE(Driver.dispatch(fork(0, 4)));
    EXPECT_TRUE(Driver.halted());
  }
}

TEST(OnlineDriver, BarrierOperationsHalt) {
  FastTrack Checker;
  OnlineDriver Driver(Checker, capacity());
  Operation Barrier(OpKind::Barrier, 0, 0);
  EXPECT_FALSE(Driver.dispatch(Barrier));
  EXPECT_TRUE(Driver.halted());
}

TEST(OnlineDriver, FinishIsIdempotent) {
  FastTrack Checker;
  OnlineDriver Driver(Checker, capacity());
  Driver.dispatch(wr(0, 0));
  Driver.finish();
  Driver.finish(); // second call must not re-run Tool::end()
  EXPECT_EQ(Driver.rawOps(), 1u);
}
