//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread event channel: a bounded single-producer single-consumer
/// ring buffer carrying instrumentation events from one application thread
/// to the sequencer.
///
/// One ring per instrumented thread keeps the hot emit path free of
/// cross-thread contention: the producer touches only its own tail (and
/// reads the consumer's head with acquire ordering), the sequencer only
/// its own heads. The bound is the backpressure mechanism — a thread that
/// outruns the detector parks in emit() until the sequencer drains, so
/// detection memory stays O(threads × capacity) no matter how fast the
/// application generates events (the C11Tester/RoadRunner budgeting
/// discipline, not an unbounded log).
///
/// Two standard SPSC optimizations keep the indices off each other's
/// cache lines:
///  - Head and Tail live on separate 64-byte-aligned lines, so a push
///    never invalidates the line a pop is spinning on (and vice versa).
///  - Each side keeps a private cached copy of the other side's index and
///    only re-reads the shared atomic when the cache says the ring looks
///    full (producer) or empty (consumer). A steady-state push/pop pair
///    is then one relaxed load + one release store per side.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_RUNTIME_EVENTRING_H
#define FASTTRACK_RUNTIME_EVENTRING_H

#include "trace/Operation.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

namespace ft::runtime {

/// One instrumentation event in flight. The meaning of the fields depends
/// on which leg of the pipeline the event is traveling:
///
///  - In a *per-thread* ring (application thread → sequencer/router) the
///    producing thread is implied by the ring, Thread is unused, and Seq
///    is the global total-order ticket the merge runs on.
///  - In a *per-shard* ring (router → shard sequencer, Shards > 1) the
///    router has already merged and admitted the event: Thread is the
///    dense id of the emitting thread and Seq is the *raw op index* the
///    admission stage assigned — the OpIndex the shard's tool sees, so
///    warnings carry the same indices a single-sequencer run would.
struct OnlineEvent {
  uint64_t Seq = 0;
  OpKind Kind = OpKind::Read;
  uint32_t Target = 0;
  ThreadId Thread = 0;
};

/// Bounded SPSC ring of OnlineEvents. Capacity is rounded up to a power
/// of two. All cross-thread hand-off is acquire/release on Head/Tail, so
/// the ring is data-race-free by construction (certified by the CI TSan
/// job, which runs real producer threads against a real sequencer).
class EventRing {
public:
  explicit EventRing(size_t Capacity) {
    size_t Pow2 = 1;
    while (Pow2 < Capacity)
      Pow2 <<= 1;
    Buffer.resize(Pow2);
    Mask = Pow2 - 1;
  }

  EventRing(const EventRing &) = delete;
  EventRing &operator=(const EventRing &) = delete;

  size_t capacity() const { return Buffer.size(); }

  // --- producer side ---

  /// True when push() may be called. The producer owns Tail, so a true
  /// result cannot be invalidated by the consumer (draining only makes
  /// more room). Non-const: refreshes the producer's cached head when the
  /// ring looks full.
  bool hasSpace() {
    uint64_t T = Tail.load(std::memory_order_relaxed);
    if (T - HeadCache < Buffer.size())
      return true;
    HeadCache = Head.load(std::memory_order_acquire);
    return T - HeadCache < Buffer.size();
  }

  /// Appends \p E. Precondition: hasSpace().
  void push(const OnlineEvent &E) {
    uint64_t T = Tail.load(std::memory_order_relaxed);
    assert(T - Head.load(std::memory_order_acquire) < Buffer.size() &&
           "push on a full ring");
    Buffer[T & Mask] = E;
    Tail.store(T + 1, std::memory_order_release);
  }

  /// Batch append for the router: copies in as many of the \p N events as
  /// the ring has space for and publishes them with a single Tail store,
  /// so a whole routed run costs one release operation instead of one per
  /// event. Returns the number of events consumed from \p In (0 when the
  /// ring is full — the caller parks and retries with the remainder).
  size_t pushRun(const OnlineEvent *In, size_t N) {
    uint64_t T = Tail.load(std::memory_order_relaxed);
    if (T - HeadCache == Buffer.size()) {
      HeadCache = Head.load(std::memory_order_acquire);
      if (T - HeadCache == Buffer.size())
        return 0;
    }
    size_t Space = Buffer.size() - static_cast<size_t>(T - HeadCache);
    size_t K = N < Space ? N : Space;
    for (size_t I = 0; I != K; ++I)
      Buffer[(T + I) & Mask] = In[I];
    Tail.store(T + K, std::memory_order_release);
    return K;
  }

  // --- consumer side ---

  /// Returns the oldest event without consuming it, or nullptr when the
  /// ring is empty. The slot stays valid until the matching pop().
  /// Non-const: refreshes the consumer's cached tail when the ring looks
  /// empty.
  const OnlineEvent *peek() {
    uint64_t H = Head.load(std::memory_order_relaxed);
    if (H == TailCache) {
      TailCache = Tail.load(std::memory_order_acquire);
      if (H == TailCache)
        return nullptr;
    }
    return &Buffer[H & Mask];
  }

  /// Consumes the event peek() returned.
  void pop() {
    uint64_t H = Head.load(std::memory_order_relaxed);
    assert(H != Tail.load(std::memory_order_acquire) && "pop on empty ring");
    Head.store(H + 1, std::memory_order_release);
  }

  /// Batch drain for the sequencer: copies out up to \p Max consecutive
  /// events whose tickets continue the run \p NextSeq, advancing
  /// \p NextSeq past each one, and releases all consumed slots with a
  /// single Head store (so a parked producer sees the whole batch of
  /// space at once). Stops early at the first out-of-run ticket — that
  /// event stays in the ring for a later visit. Returns the number of
  /// events written to \p Out.
  size_t popRunInto(uint64_t &NextSeq, OnlineEvent *Out, size_t Max) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    if (H == TailCache) {
      TailCache = Tail.load(std::memory_order_acquire);
      if (H == TailCache)
        return 0;
    }
    size_t N = 0;
    while (N != Max && H != TailCache) {
      const OnlineEvent &E = Buffer[H & Mask];
      if (E.Seq != NextSeq)
        break;
      Out[N++] = E;
      ++H;
      ++NextSeq;
    }
    if (N != 0)
      Head.store(H, std::memory_order_release);
    return N;
  }

  /// Batch drain for a *routed* ring (router → shard), where tickets are
  /// the admission stage's raw indices and therefore not consecutive per
  /// shard: copies out up to \p Max events in FIFO order regardless of
  /// their Seq values, releasing all consumed slots with one Head store.
  /// Returns the number of events written to \p Out.
  size_t popInto(OnlineEvent *Out, size_t Max) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    if (H == TailCache) {
      TailCache = Tail.load(std::memory_order_acquire);
      if (H == TailCache)
        return 0;
    }
    size_t N = 0;
    while (N != Max && H != TailCache) {
      Out[N++] = Buffer[H & Mask];
      ++H;
    }
    Head.store(H, std::memory_order_release);
    return N;
  }

  /// Zero-copy batch consume for a routed ring: exposes the longest
  /// contiguous readable run (bounded by the buffer's wrap point) without
  /// copying it out. The slots stay owned by the consumer — and \p Ptr
  /// stays valid — until release()d, so a consumer can dispatch straight
  /// out of the ring and release incrementally as prefixes complete
  /// (nothing is lost if it is abandoned mid-run: the unreleased suffix
  /// is still in the ring for its successor). Returns the run length, 0
  /// when empty.
  size_t peekRun(const OnlineEvent *&Ptr) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    if (H == TailCache) {
      TailCache = Tail.load(std::memory_order_acquire);
      if (H == TailCache)
        return 0;
    }
    const size_t Idx = static_cast<size_t>(H & Mask);
    const size_t Avail = static_cast<size_t>(TailCache - H);
    const size_t UntilWrap = Buffer.size() - Idx;
    Ptr = &Buffer[Idx];
    return Avail < UntilWrap ? Avail : UntilWrap;
  }

  /// Releases the first \p N unreleased slots of a peekRun() run back to
  /// the producer (one Head store). Call only after the consumer is done
  /// reading them.
  void release(size_t N) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    assert(Tail.load(std::memory_order_acquire) - H >= N &&
           "releasing more slots than are readable");
    Head.store(H + N, std::memory_order_release);
  }

  bool empty() const {
    return Head.load(std::memory_order_acquire) ==
           Tail.load(std::memory_order_acquire);
  }

private:
  std::vector<OnlineEvent> Buffer;
  size_t Mask = 0;

  /// Consumer cache line: the shared head index plus the consumer's
  /// private cached copy of Tail.
  alignas(64) std::atomic<uint64_t> Head{0}; ///< Next slot to consume.
  uint64_t TailCache = 0;

  /// Producer cache line: the shared tail index plus the producer's
  /// private cached copy of Head.
  alignas(64) std::atomic<uint64_t> Tail{0}; ///< Next slot to fill.
  uint64_t HeadCache = 0;
};

} // namespace ft::runtime

#endif // FASTTRACK_RUNTIME_EVENTRING_H
