#include "clock/VectorClock.h"

#include <algorithm>
#include <cassert>

using namespace ft;

void VectorClock::spillTo(uint32_t Size) {
  assert(Size > Cap && "inline/in-place growth handled by growTo");
  uint32_t NewCap = 0;
  ClockValue *Block = ClockArena::acquire(Size, NewCap);
  std::memcpy(Block, data(), size_t(Count) * sizeof(ClockValue));
  releaseBuffer();
  Store.Heap = Block;
  Cap = NewCap;
  Count = Size; // Arena blocks come zeroed, so the tail invariant holds.
}

void VectorClock::assignGrow(const VectorClock &Other) {
  assert(Other.Count > Cap && "in-place assignment handled by assignFrom");
  ++clockStats().CopyOps;
  if (Count == 0)
    ++clockStats().Allocations;
  uint32_t NewCap = 0;
  ClockValue *Block = ClockArena::acquire(Other.Count, NewCap);
  std::memcpy(Block, Other.data(), size_t(Other.Count) * sizeof(ClockValue));
  releaseBuffer();
  Store.Heap = Block;
  Cap = NewCap;
  Count = Other.Count;
}

bool ft::operator==(const VectorClock &A, const VectorClock &B) {
  size_t Max = std::max<size_t>(A.size(), B.size());
  for (size_t I = 0; I != Max; ++I)
    if (A.get(static_cast<ThreadId>(I)) != B.get(static_cast<ThreadId>(I)))
      return false;
  return true;
}

std::string VectorClock::str(unsigned MinEntries) const {
  unsigned NumShown = std::max<unsigned>(size(), MinEntries);
  std::string Out = "<";
  for (unsigned I = 0; I != NumShown; ++I) {
    if (I != 0)
      Out += ',';
    Out += std::to_string(get(I));
  }
  Out += '>';
  return Out;
}
