//===----------------------------------------------------------------------===//
//
// The sixteen Table 1 benchmark analogues. Each generator documents the
// sharing structure of the Java original it models and its ground truth
// (real races, expected Eraser false alarms). The numbers in comments
// refer to the paper's Table 1 warning columns.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/WorkloadKit.h"

#include <algorithm>
#include <cmath>

using namespace ft;

namespace {

unsigned scaled(unsigned N, double Factor) {
  return std::max(1u, static_cast<unsigned>(std::lround(N * Factor)));
}

//===----------------------------------------------------------------------===//
// colt: scientific library driven from a mostly-serial harness. Very
// little sharing; 3 Eraser false alarms (volatile-style hand-offs), no
// real races.
//===----------------------------------------------------------------------===//

Trace makeColt(uint64_t Seed, double F) {
  WorkloadKit Kit(11, Seed);
  VarId Tl = Kit.allocVars(11 * 8);
  VarId Shared = Kit.allocVars(64);
  VarId Handoff = Kit.allocVars(3);
  VolatileId Flags = Kit.allocVolatiles(3);

  for (unsigned I = 0; I != 64; ++I)
    Kit.wr(0, Shared + I);
  Kit.forkAll();

  unsigned Rounds = scaled(400, F);
  Kit.rounds(Rounds, [&](ThreadId T, unsigned R) {
    Kit.threadLocalWork(T, Tl + (T - 1) * 8, 8, 24);
    if (R % 4 == 0)
      Kit.readSharedSweep(T, Shared, 64, 6);
  });
  // Three race-free volatile hand-offs that defeat the lockset discipline.
  for (unsigned I = 0; I != 3; ++I)
    Kit.volatileHandoffFalseAlarm(Kit.workerTid(I), Kit.workerTid(I + 3),
                                  Handoff + I, 1, Flags + I);
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// crypt: IDEA encryption — each worker sweeps large private array slices,
// with frequent epoch boundaries. Every element access is first-in-epoch,
// which is the worst case for DJIT+/BasicVC (O(n) per element) and the
// best case for epochs. Race-free.
//===----------------------------------------------------------------------===//

Trace makeCrypt(uint64_t Seed, double F) {
  WorkloadKit Kit(7, Seed);
  unsigned Slice = scaled(6000, F);
  VarId Data = Kit.allocVars(7 * Slice);
  LockId Locks = Kit.allocLocks(7);

  Kit.forkAll();
  for (unsigned Phase = 0; Phase != 3; ++Phase) {
    for (unsigned W = 0; W != 7; ++W) {
      ThreadId T = Kit.workerTid(W);
      Kit.epochChurnSweep(T, Locks + W, Data + W * Slice, Slice,
                          /*ElemsPerEpoch=*/32, /*Write=*/Phase != 1);
    }
  }
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// lufact: LU factorization — barrier per iteration, a read-shared pivot
// row, and partitioned row updates. Barriers end epochs, so most accesses
// are first-in-epoch. 4 Eraser false alarms; race-free.
//===----------------------------------------------------------------------===//

Trace makeLufact(uint64_t Seed, double F) {
  WorkloadKit Kit(4, Seed);
  unsigned Part = 96;
  VarId Pivot = Kit.allocVars(48);
  VarId Rows = Kit.allocVars(4 * Part);
  VarId Handoff = Kit.allocVars(4);
  VolatileId Flags = Kit.allocVolatiles(4);

  for (unsigned I = 0; I != 48; ++I)
    Kit.wr(0, Pivot + I);
  Kit.forkAll();

  unsigned Iterations = scaled(220, F);
  for (unsigned It = 0; It != Iterations; ++It) {
    Kit.barrierWorkers();
    for (unsigned W = 0; W != 4; ++W) {
      ThreadId T = Kit.workerTid(W);
      Kit.readSharedSweep(T, Pivot, 48, 24);
      for (unsigned I = 0; I != Part; ++I)
        Kit.wr(T, Rows + W * Part + I);
    }
    if (It < 4)
      Kit.volatileHandoffFalseAlarm(Kit.workerTid(It), Kit.workerTid((It + 1) % 4),
                                    Handoff + It, 1, Flags + It);
  }
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// moldyn: molecular dynamics — barrier phases, read-shared coordinates,
// and lock-protected force reduction. Race-free, no warnings.
//===----------------------------------------------------------------------===//

Trace makeMoldyn(uint64_t Seed, double F) {
  WorkloadKit Kit(4, Seed);
  VarId Coords = Kit.allocVars(256);
  VarId Forces = Kit.allocVars(64);
  VarId Tl = Kit.allocVars(4 * 8);
  LockId ForceLock = Kit.allocLocks(1);

  for (unsigned I = 0; I != 256; ++I)
    Kit.wr(0, Coords + I);
  Kit.forkAll();

  unsigned Phases = scaled(260, F);
  for (unsigned Phase = 0; Phase != Phases; ++Phase) {
    Kit.barrierWorkers();
    Kit.rounds(1, [&](ThreadId T, unsigned) {
      Kit.readSharedSweep(T, Coords, 256, 48);
      Kit.threadLocalWork(T, Tl + (T - 1) * 8, 8, 48);
      for (unsigned I = 0; I != 6; ++I)
        Kit.lockedRmw(T, ForceLock,
                      Forces + static_cast<VarId>(Kit.Rng.nextBelow(64)));
    });
  }
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// montecarlo: embarrassingly parallel simulation — dominated by
// thread-local work, with a lock-protected result vector at the end.
// Race-free; almost no vector clocks needed (25 allocated in Table 2).
//===----------------------------------------------------------------------===//

Trace makeMontecarlo(uint64_t Seed, double F) {
  WorkloadKit Kit(4, Seed);
  VarId Tl = Kit.allocVars(4 * 16);
  VarId Results = Kit.allocVars(32);
  LockId ResultLock = Kit.allocLocks(1);

  Kit.forkAll();
  unsigned Rounds = scaled(2200, F);
  Kit.rounds(Rounds, [&](ThreadId T, unsigned) {
    Kit.threadLocalWork(T, Tl + (T - 1) * 16, 16, 60);
  });
  Kit.rounds(scaled(24, F), [&](ThreadId T, unsigned R) {
    Kit.lockedRmw(T, ResultLock, Results + (R % 32));
  });
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// mtrt: SPEC ray tracer — a large read-shared scene plus thread-local
// rendering state, with one real (benign) race on a shared counter.
//===----------------------------------------------------------------------===//

Trace makeMtrt(uint64_t Seed, double F) {
  WorkloadKit Kit(5, Seed);
  VarId Scene = Kit.allocVars(512);
  VarId Tl = Kit.allocVars(5 * 8);
  VarId RacyCounter = Kit.allocVars(1);

  for (unsigned I = 0; I != 512; ++I)
    Kit.wr(0, Scene + I);
  Kit.forkAll();

  unsigned Rounds = scaled(450, F);
  Kit.rounds(Rounds, [&](ThreadId T, unsigned R) {
    Kit.readSharedSweep(T, Scene, 512, 40);
    Kit.threadLocalWork(T, Tl + (T - 1) * 8, 8, 16);
    if (R % 8 == 3 && T <= 2)
      Kit.racyRmw(T, RacyCounter); // real race: threads 1 and 2
  });
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// raja: a two-thread ray tracer; read-shared scene, thread-local pixels.
// Race-free, low overhead.
//===----------------------------------------------------------------------===//

Trace makeRaja(uint64_t Seed, double F) {
  WorkloadKit Kit(2, Seed);
  VarId Scene = Kit.allocVars(256);
  VarId Tl = Kit.allocVars(2 * 8);

  for (unsigned I = 0; I != 256; ++I)
    Kit.wr(0, Scene + I);
  Kit.forkAll();
  Kit.rounds(scaled(700, F), [&](ThreadId T, unsigned) {
    Kit.readSharedSweep(T, Scene, 256, 24);
    Kit.threadLocalWork(T, Tl + (T - 1) * 8, 8, 40);
  });
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// raytracer: Java Grande ray tracer — the famous real race on the
// 'checksum' field, updated by every worker without a lock.
//===----------------------------------------------------------------------===//

Trace makeRaytracer(uint64_t Seed, double F) {
  WorkloadKit Kit(4, Seed);
  VarId Scene = Kit.allocVars(384);
  VarId Tl = Kit.allocVars(4 * 8);
  VarId Checksum = Kit.allocVars(1);

  for (unsigned I = 0; I != 384; ++I)
    Kit.wr(0, Scene + I);
  Kit.forkAll();
  Kit.rounds(scaled(520, F), [&](ThreadId T, unsigned R) {
    Kit.readSharedSweep(T, Scene, 384, 32);
    Kit.threadLocalWork(T, Tl + (T - 1) * 8, 8, 20);
    if (R % 16 == 3)
      Kit.racyRmw(T, Checksum); // real write-write/read-write races
  });
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// sparse: sparse mat-vec — dominated by reads of a read-shared matrix
// with thread-local accumulation. Race-free.
//===----------------------------------------------------------------------===//

Trace makeSparse(uint64_t Seed, double F) {
  WorkloadKit Kit(4, Seed);
  VarId Matrix = Kit.allocVars(1024);
  VarId Out = Kit.allocVars(4 * 32);

  for (unsigned I = 0; I != 1024; ++I)
    Kit.wr(0, Matrix + I);
  Kit.forkAll();
  Kit.rounds(scaled(480, F), [&](ThreadId T, unsigned) {
    Kit.readSharedSweep(T, Matrix, 1024, 56);
    for (unsigned I = 0; I != 8; ++I)
      Kit.wr(T, Out + (T - 1) * 32 + static_cast<VarId>(Kit.Rng.nextBelow(32)));
  });
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// series: Fourier coefficients — almost pure thread-local computation
// (1.0x slowdowns across every tool). One Eraser false alarm.
//===----------------------------------------------------------------------===//

Trace makeSeries(uint64_t Seed, double F) {
  WorkloadKit Kit(4, Seed);
  VarId Tl = Kit.allocVars(4 * 4);
  VarId Handoff = Kit.allocVars(1);
  VolatileId Flag = Kit.allocVolatiles(1);

  Kit.forkAll();
  Kit.rounds(scaled(2600, F), [&](ThreadId T, unsigned) {
    Kit.threadLocalWork(T, Tl + (T - 1) * 4, 4, 60);
  });
  Kit.volatileHandoffFalseAlarm(Kit.workerTid(0), Kit.workerTid(1), Handoff,
                                1, Flag);
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// sor: red/black successive over-relaxation — barrier-separated phases;
// each worker writes its own color and reads the other color written in
// the previous phase. Race-free; 3 Eraser false alarms.
//===----------------------------------------------------------------------===//

Trace makeSor(uint64_t Seed, double F) {
  WorkloadKit Kit(4, Seed);
  unsigned CellsPerWorker = 64; // per color
  VarId Red = Kit.allocVars(4 * CellsPerWorker);
  VarId Black = Kit.allocVars(4 * CellsPerWorker);
  VarId Handoff = Kit.allocVars(3);
  VolatileId Flags = Kit.allocVolatiles(3);

  Kit.forkAll();
  unsigned Phases = scaled(320, F);
  for (unsigned Phase = 0; Phase != Phases; ++Phase) {
    Kit.barrierWorkers();
    bool RedPhase = Phase % 2 == 0;
    VarId Mine = RedPhase ? Red : Black;
    VarId Theirs = RedPhase ? Black : Red;
    for (unsigned W = 0; W != 4; ++W) {
      ThreadId T = Kit.workerTid(W);
      // Read neighbour cells of the opposite color (previous phase).
      unsigned Left = (W + 3) % 4, Right = (W + 1) % 4;
      for (unsigned I = 0; I != 8; ++I) {
        Kit.rd(T, Theirs + Left * CellsPerWorker + I);
        Kit.rd(T, Theirs + Right * CellsPerWorker + I);
      }
      for (unsigned I = 0; I != CellsPerWorker; ++I) {
        Kit.rd(T, Mine + W * CellsPerWorker + I);
        Kit.wr(T, Mine + W * CellsPerWorker + I);
      }
    }
    if (Phase < 3)
      Kit.volatileHandoffFalseAlarm(Kit.workerTid(Phase),
                                    Kit.workerTid((Phase + 2) % 4),
                                    Handoff + Phase, 1, Flags + Phase);
  }
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// tsp: branch-and-bound traveling salesman — a lock-protected work queue
// plus the classic benign race: the global bound is written under the
// lock but read without it. 1 real racy variable, 8 Eraser false alarms.
//===----------------------------------------------------------------------===//

Trace makeTsp(uint64_t Seed, double F) {
  WorkloadKit Kit(5, Seed);
  VarId Queue = Kit.allocVars(16);
  VarId MinBound = Kit.allocVars(1);
  VarId Tl = Kit.allocVars(5 * 8);
  VarId Handoff = Kit.allocVars(8);
  LockId QueueLock = Kit.allocLocks(1);
  VolatileId Flags = Kit.allocVolatiles(8);

  Kit.forkAll();
  Kit.rounds(scaled(380, F), [&](ThreadId T, unsigned R) {
    // Grab work and update the bound under the lock...
    Kit.acq(T, QueueLock);
    Kit.rd(T, Queue + (R % 16));
    Kit.wr(T, Queue + (R % 16));
    Kit.wr(T, MinBound);
    Kit.rel(T, QueueLock);
    // ...but poll the bound without it (the benign race).
    Kit.rd(T, MinBound);
    Kit.threadLocalWork(T, Tl + (T - 1) * 8, 8, 30);
  });
  for (unsigned I = 0; I != 8; ++I)
    Kit.volatileHandoffFalseAlarm(Kit.workerTid(I % 5),
                                  Kit.workerTid((I + 2) % 5),
                                  Handoff + I, 1, Flags + I);
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// elevator: a discrete-event simulator — lock-protected state machine,
// not compute-bound. Race-free, no warnings.
//===----------------------------------------------------------------------===//

Trace makeElevator(uint64_t Seed, double F) {
  WorkloadKit Kit(5, Seed);
  VarId State = Kit.allocVars(24);
  VarId Tl = Kit.allocVars(5 * 4);
  LockId StateLock = Kit.allocLocks(1);

  Kit.forkAll();
  Kit.rounds(scaled(120, F), [&](ThreadId T, unsigned R) {
    Kit.acq(T, StateLock);
    Kit.rd(T, State + (R % 24));
    Kit.rd(T, State + ((R + 7) % 24));
    Kit.wr(T, State + (R % 24));
    Kit.rel(T, StateLock);
    Kit.threadLocalWork(T, Tl + (T - 1) * 4, 4, 6);
  });
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// philo: dining philosophers — pure lock traffic on a ring of forks.
// Race-free, tiny.
//===----------------------------------------------------------------------===//

Trace makePhilo(uint64_t Seed, double F) {
  WorkloadKit Kit(6, Seed);
  VarId Plates = Kit.allocVars(6);
  LockId Forks = Kit.allocLocks(6);

  Kit.forkAll();
  Kit.rounds(scaled(80, F), [&](ThreadId T, unsigned) {
    unsigned W = T - 1;
    LockId First = Forks + std::min(W, (W + 1) % 6);
    LockId Second = Forks + std::max(W, (W + 1) % 6);
    Kit.acq(T, First);
    Kit.acq(T, Second);
    Kit.rd(T, Plates + W);
    Kit.wr(T, Plates + W);
    Kit.rel(T, Second);
    Kit.rel(T, First);
  });
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// hedc: web-metadata crawler with a thread pool — the interesting
// precision case. Three real races on task fields handed between pool
// threads without synchronization: Eraser catches one (the reader also
// writes) but silently misses two, and Goldilocks' unsound thread-local
// fast path misses all three (Section 5.1). One extra Eraser false alarm.
//===----------------------------------------------------------------------===//

Trace makeHedc(uint64_t Seed, double F) {
  WorkloadKit Kit(6, Seed);
  VarId Pool = Kit.allocVars(12);
  VarId TaskFields = Kit.allocVars(3);
  VarId Handoff = Kit.allocVars(2);
  VarId Tl = Kit.allocVars(6 * 4);
  LockId PoolLock = Kit.allocLocks(1);
  VolatileId Flag = Kit.allocVolatiles(1);

  Kit.forkAll();
  Kit.rounds(scaled(90, F), [&](ThreadId T, unsigned R) {
    Kit.lockedRmw(T, PoolLock, Pool + (R % 12));
    Kit.threadLocalWork(T, Tl + (T - 1) * 4, 4, 8);
  });
  // Race 1: writer hands off, reader reads *and writes* — Eraser's empty
  // lockset fires at the reader's write (the one hedc race it reports).
  Kit.wr(Kit.workerTid(0), TaskFields + 0);
  Kit.rd(Kit.workerTid(1), TaskFields + 0);
  Kit.wr(Kit.workerTid(1), TaskFields + 0);
  // Races 2 and 3: pure write->read hand-offs — invisible to Eraser's
  // Exclusive->Shared transition and to Goldilocks' thread-local mode.
  Kit.silentHandoffRace(Kit.workerTid(2), Kit.workerTid(3), TaskFields + 1);
  Kit.silentHandoffRace(Kit.workerTid(4), Kit.workerTid(5), TaskFields + 2);
  // The spurious warning.
  Kit.volatileHandoffFalseAlarm(Kit.workerTid(0), Kit.workerTid(2), Handoff,
                                1, Flag);
  Kit.joinAll();
  return Kit.take();
}

//===----------------------------------------------------------------------===//
// jbb: SPEC JBB business logic — the largest mixed workload: locks,
// read-shared catalogs, volatiles, heavy object churn. Two real races
// (one repeating, one silent hand-off) and one Eraser false alarm.
//===----------------------------------------------------------------------===//

Trace makeJbb(uint64_t Seed, double F) {
  WorkloadKit Kit(5, Seed);
  VarId Catalog = Kit.allocVars(768);
  VarId Orders = Kit.allocVars(64);
  VarId Stats = Kit.allocVars(1);
  VarId HandoffRace = Kit.allocVars(1);
  VarId Handoff = Kit.allocVars(2);
  VarId Tl = Kit.allocVars(5 * 12);
  LockId OrderLocks = Kit.allocLocks(8);
  VolatileId Beat = Kit.allocVolatiles(1);
  VolatileId Flags = Kit.allocVolatiles(2);

  for (unsigned I = 0; I != 768; ++I)
    Kit.wr(0, Catalog + I);
  Kit.forkAll();
  Kit.rounds(scaled(420, F), [&](ThreadId T, unsigned R) {
    Kit.readSharedSweep(T, Catalog, 768, 24);
    Kit.threadLocalWork(T, Tl + (T - 1) * 12, 12, 24);
    unsigned Slot = static_cast<unsigned>(Kit.Rng.nextBelow(8));
    Kit.acq(T, OrderLocks + Slot);
    Kit.rd(T, Orders + Slot * 8 + (R % 8));
    Kit.wr(T, Orders + Slot * 8 + (R % 8));
    Kit.rel(T, OrderLocks + Slot);
    if (R % 32 == 11)
      Kit.racyRmw(T, Stats); // real repeating race
    if (R % 64 == 21)
      Kit.volWr(T, Beat);
    else if (R % 64 == 40)
      Kit.volRd(T, Beat);
  });
  Kit.silentHandoffRace(Kit.workerTid(1), Kit.workerTid(3), HandoffRace);
  Kit.volatileHandoffFalseAlarm(Kit.workerTid(2), Kit.workerTid(4),
                                Handoff + 0, 1, Flags + 0);
  Kit.volatileHandoffFalseAlarm(Kit.workerTid(0), Kit.workerTid(3),
                                Handoff + 1, 1, Flags + 1);
  Kit.joinAll();
  return Kit.take();
}

} // namespace

const std::vector<Workload> &ft::benchmarkSuite() {
  static const std::vector<Workload> Suite = {
      {"colt", 11, true, 0, 3, makeColt},
      {"crypt", 7, true, 0, 0, makeCrypt},
      {"lufact", 4, true, 0, 4, makeLufact},
      {"moldyn", 4, true, 0, 0, makeMoldyn},
      {"montecarlo", 4, true, 0, 0, makeMontecarlo},
      {"mtrt", 5, true, 1, 0, makeMtrt},
      {"raja", 2, true, 0, 0, makeRaja},
      {"raytracer", 4, true, 1, 0, makeRaytracer},
      {"sparse", 4, true, 0, 0, makeSparse},
      {"series", 4, true, 0, 1, makeSeries},
      {"sor", 4, true, 0, 3, makeSor},
      {"tsp", 5, true, 1, 8, makeTsp},
      {"elevator", 5, false, 0, 0, makeElevator},
      {"philo", 6, false, 0, 0, makePhilo},
      {"hedc", 6, false, 3, 1, makeHedc},
      {"jbb", 5, false, 2, 2, makeJbb},
  };
  return Suite;
}

const Workload *ft::findWorkload(const std::string &Name) {
  for (const Workload &W : benchmarkSuite())
    if (W.Name == Name)
      return &W;
  for (const Workload &W : eclipseOperations())
    if (W.Name == Name)
      return &W;
  return nullptr;
}
