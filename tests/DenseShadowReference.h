//===--- DenseShadowReference.h - dense AoS FastTrack oracle for tests ----===//
//
// A deliberately naive FastTrack implementation over the pre-paged shadow
// layout: one flat array-of-structs VarState per declared variable, with
// the read vector clock inline and the all-ones READ_SHARED sentinel of
// the paper. It exists so tests can assert warning-for-warning
// equivalence between the production paged/SoA ShadowTable detector and
// an independent dense implementation of the same Figure 2 rules —
// catching representation bugs (handle aliasing, page-boundary faults,
// recycled side-store buffers) that detectors sharing the table could
// not.
//
// Test-only: never link this into shipped targets.
//
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TESTS_DENSESHADOWREFERENCE_H
#define FASTTRACK_TESTS_DENSESHADOWREFERENCE_H

#include "framework/VectorClockToolBase.h"

#include <vector>

namespace ft {

template <typename EpochT>
class DenseShadowReference : public VectorClockToolBase {
public:
  const char *name() const override { return "DenseShadowReference"; }

  void begin(const ToolContext &Context) override {
    VectorClockToolBase::begin(Context);
    Vars.assign(Context.NumVars, VarState());
  }

  bool onRead(ThreadId T, VarId X, size_t OpIndex) override {
    VarState &State = Vars[X];
    EpochT Et = EpochT::make(T, currentClock(T));
    if (State.R == Et) // [FT READ SAME EPOCH]
      return false;

    const VectorClock &Ct = threadClock(T);
    if (!Ct.epochLeq(State.W))
      report(T, X, OpIndex, OpKind::Read, State.W.tid(), OpKind::Write,
             "write-read race");

    if (State.R.isReadShared()) { // [FT READ SHARED]
      State.Rvc.set(T, Ct.get(T));
      return true;
    }
    if (Ct.epochLeq(State.R)) { // [FT READ EXCLUSIVE]
      State.R = Et;
      return true;
    }
    // [FT READ SHARE]
    State.Rvc.resetToBottom();
    State.Rvc.set(State.R.tid(), static_cast<ClockValue>(State.R.clock()));
    State.Rvc.set(T, Ct.get(T));
    State.R = EpochT::readShared();
    return true;
  }

  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override {
    VarState &State = Vars[X];
    EpochT Et = EpochT::make(T, currentClock(T));
    if (State.W == Et) // [FT WRITE SAME EPOCH]
      return false;

    const VectorClock &Ct = threadClock(T);
    if (!Ct.epochLeq(State.W))
      report(T, X, OpIndex, OpKind::Write, State.W.tid(), OpKind::Write,
             "write-write race");

    if (!State.R.isReadShared()) { // [FT WRITE EXCLUSIVE]
      if (!Ct.epochLeq(State.R))
        report(T, X, OpIndex, OpKind::Write, State.R.tid(), OpKind::Read,
               "read-write race");
    } else { // [FT WRITE SHARED]
      if (!State.Rvc.leq(Ct)) {
        ThreadId Reader = UnknownThread;
        for (ThreadId U = 0; U != State.Rvc.size(); ++U)
          if (State.Rvc.get(U) > Ct.get(U)) {
            Reader = U;
            break;
          }
        report(T, X, OpIndex, OpKind::Write, Reader, OpKind::Read,
               "read-write race");
      }
      State.Rvc.resetToBottom();
      State.R = EpochT();
    }
    State.W = Et;
    return true;
  }

private:
  struct VarState {
    EpochT W;
    EpochT R;
    VectorClock Rvc;
  };

  void report(ThreadId T, VarId X, size_t OpIndex, OpKind Kind,
              ThreadId PriorThread, OpKind PriorKind, const char *Detail) {
    RaceWarning W;
    W.Var = X;
    W.OpIndex = OpIndex;
    W.CurrentThread = T;
    W.CurrentKind = Kind;
    W.PriorThread = PriorThread;
    W.PriorKind = PriorKind;
    W.Detail = Detail;
    reportRace(std::move(W));
  }

  std::vector<VarState> Vars;
};

using DenseFastTrackReference = DenseShadowReference<Epoch>;

} // namespace ft

#endif // FASTTRACK_TESTS_DENSESHADOWREFERENCE_H
