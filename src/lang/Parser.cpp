#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <cassert>

using namespace ft::lang;

std::string ft::lang::toString(const Diag &D) {
  return std::to_string(D.Line) + ":" + std::to_string(D.Column) + ": " +
         D.Message;
}

namespace {

/// Binding powers for the precedence climber.
int binaryPrecedence(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::OrOr:
    return 1;
  case TokenKind::AndAnd:
    return 2;
  case TokenKind::EqEq:
  case TokenKind::NotEq:
    return 3;
  case TokenKind::Lt:
  case TokenKind::Le:
  case TokenKind::Gt:
  case TokenKind::Ge:
    return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 6;
  default:
    return 0;
  }
}

BinaryOp binaryOpFor(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::OrOr:
    return BinaryOp::Or;
  case TokenKind::AndAnd:
    return BinaryOp::And;
  case TokenKind::EqEq:
    return BinaryOp::Eq;
  case TokenKind::NotEq:
    return BinaryOp::Ne;
  case TokenKind::Lt:
    return BinaryOp::Lt;
  case TokenKind::Le:
    return BinaryOp::Le;
  case TokenKind::Gt:
    return BinaryOp::Gt;
  case TokenKind::Ge:
    return BinaryOp::Ge;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Mod;
  default:
    assert(false && "not a binary operator token");
    return BinaryOp::Add;
  }
}

class Parser {
public:
  Parser(std::vector<Token> Tokens, Program &Out, std::vector<Diag> &Diags)
      : Tokens(std::move(Tokens)), Out(Out), Diags(Diags) {}

  void run() {
    while (!at(TokenKind::Eof)) {
      size_t Before = Pos;
      parseTopLevel();
      if (Pos == Before)
        advance(); // ensure progress on malformed input
    }
  }

private:
  //===--------------------------------------------------------------===//
  // Token helpers.
  //===--------------------------------------------------------------===//

  const Token &peek() const { return Tokens[Pos]; }
  bool at(TokenKind Kind) const { return peek().Kind == Kind; }

  const Token &advance() {
    const Token &Tok = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return Tok;
  }

  bool accept(TokenKind Kind) {
    if (!at(Kind))
      return false;
    advance();
    return true;
  }

  /// Consumes \p Kind or reports an error (returning false).
  bool expect(TokenKind Kind, const char *Context) {
    if (accept(Kind))
      return true;
    error(peek(), std::string("expected ") + tokenKindName(Kind) + " " +
                      Context + ", found " + tokenKindName(peek().Kind));
    return false;
  }

  void error(const Token &Tok, std::string Message) {
    if (Tok.Kind == TokenKind::Error)
      Message = Tok.Text; // surface the lexer's message
    Diags.push_back({Tok.Line, Tok.Column, std::move(Message)});
  }

  /// Skips ahead to a statement/declaration boundary after an error.
  void synchronize() {
    while (!at(TokenKind::Eof)) {
      if (accept(TokenKind::Semicolon))
        return;
      if (at(TokenKind::RBrace) || at(TokenKind::KwFn))
        return;
      advance();
    }
  }

  //===--------------------------------------------------------------===//
  // Declarations.
  //===--------------------------------------------------------------===//

  void parseTopLevel() {
    const Token &Tok = peek();
    switch (Tok.Kind) {
    case TokenKind::KwShared:
      parseSharedDecl();
      return;
    case TokenKind::KwVolatile:
      parseSimpleDecl(TokenKind::KwVolatile);
      return;
    case TokenKind::KwLock:
      parseSimpleDecl(TokenKind::KwLock);
      return;
    case TokenKind::KwBarrier:
      parseBarrierDecl();
      return;
    case TokenKind::KwFn:
      parseFunction();
      return;
    default:
      error(Tok, "expected a declaration ('shared', 'volatile', 'lock', "
                 "'barrier', or 'fn'), found " +
                     std::string(tokenKindName(Tok.Kind)));
      synchronize();
      return;
    }
  }

  void parseSharedDecl() {
    unsigned Line = peek().Line;
    advance(); // shared
    if (!at(TokenKind::Identifier)) {
      error(peek(), "expected variable name after 'shared'");
      synchronize();
      return;
    }
    GlobalVar Var;
    Var.Name = advance().Text;
    Var.Line = Line;
    if (accept(TokenKind::LBracket)) {
      if (!at(TokenKind::IntLiteral) || peek().IntValue <= 0) {
        error(peek(), "array size must be a positive integer literal");
        synchronize();
        return;
      }
      Var.Size = static_cast<uint32_t>(advance().IntValue);
      expect(TokenKind::RBracket, "after array size");
    }
    expect(TokenKind::Semicolon, "after 'shared' declaration");
    Out.Globals.push_back(std::move(Var));
  }

  void parseSimpleDecl(TokenKind Keyword) {
    unsigned Line = peek().Line;
    advance(); // volatile / lock
    if (!at(TokenKind::Identifier)) {
      error(peek(), "expected name in declaration");
      synchronize();
      return;
    }
    std::string Name = advance().Text;
    expect(TokenKind::Semicolon, "after declaration");
    if (Keyword == TokenKind::KwVolatile)
      Out.Volatiles.push_back({std::move(Name), 0, Line});
    else
      Out.Locks.push_back({std::move(Name), 0, Line});
  }

  void parseBarrierDecl() {
    unsigned Line = peek().Line;
    advance(); // barrier
    if (!at(TokenKind::Identifier)) {
      error(peek(), "expected barrier name");
      synchronize();
      return;
    }
    BarrierDecl Decl;
    Decl.Name = advance().Text;
    Decl.Line = Line;
    if (expect(TokenKind::LParen, "after barrier name")) {
      if (!at(TokenKind::IntLiteral) || peek().IntValue < 2) {
        error(peek(), "barrier arity must be an integer literal >= 2");
        synchronize();
        return;
      }
      Decl.Arity = static_cast<uint32_t>(advance().IntValue);
      expect(TokenKind::RParen, "after barrier arity");
    }
    expect(TokenKind::Semicolon, "after barrier declaration");
    Out.Barriers.push_back(std::move(Decl));
  }

  void parseFunction() {
    Function Fn;
    Fn.Line = peek().Line;
    advance(); // fn
    if (!at(TokenKind::Identifier)) {
      error(peek(), "expected function name after 'fn'");
      synchronize();
      return;
    }
    Fn.Name = advance().Text;
    if (expect(TokenKind::LParen, "after function name") &&
        !accept(TokenKind::RParen)) {
      do {
        if (!at(TokenKind::Identifier)) {
          error(peek(), "expected parameter name");
          break;
        }
        Fn.Params.push_back(advance().Text);
      } while (accept(TokenKind::Comma));
      expect(TokenKind::RParen, "after parameter list");
    }
    Fn.Body = parseBlock();
    Out.Functions.push_back(std::move(Fn));
  }

  //===--------------------------------------------------------------===//
  // Statements.
  //===--------------------------------------------------------------===//

  StmtPtr makeStmt(StmtKind Kind) {
    auto S = std::make_unique<Stmt>(Kind);
    S->Line = peek().Line;
    S->Column = peek().Column;
    return S;
  }

  StmtPtr parseBlock() {
    auto Block = makeStmt(StmtKind::Block);
    if (!expect(TokenKind::LBrace, "to open a block"))
      return Block;
    while (!at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
      size_t Before = Pos;
      if (StmtPtr S = parseStatement())
        Block->Stmts.push_back(std::move(S));
      if (Pos == Before)
        advance();
    }
    expect(TokenKind::RBrace, "to close the block");
    return Block;
  }

  StmtPtr parseStatement() {
    switch (peek().Kind) {
    case TokenKind::LBrace:
      return parseBlock();
    case TokenKind::KwLocal:
    case TokenKind::KwLet:
      return parseDeclLocal();
    case TokenKind::KwIf:
      return parseIf();
    case TokenKind::KwWhile:
      return parseWhile();
    case TokenKind::KwSync:
      return parseSync();
    case TokenKind::KwAtomic: {
      auto S = makeStmt(StmtKind::Atomic);
      advance();
      S->Body = parseBlock();
      return S;
    }
    case TokenKind::KwJoin: {
      auto S = makeStmt(StmtKind::Join);
      advance();
      S->Value = parseExpr();
      expect(TokenKind::Semicolon, "after 'join'");
      return S;
    }
    case TokenKind::KwAwait: {
      auto S = makeStmt(StmtKind::Await);
      advance();
      if (at(TokenKind::Identifier))
        S->Name = advance().Text;
      else
        error(peek(), "expected barrier name after 'await'");
      expect(TokenKind::Semicolon, "after 'await'");
      return S;
    }
    case TokenKind::KwWait:
    case TokenKind::KwNotify:
    case TokenKind::KwNotifyAll: {
      TokenKind Kw = peek().Kind;
      auto S = makeStmt(Kw == TokenKind::KwWait     ? StmtKind::Wait
                        : Kw == TokenKind::KwNotify ? StmtKind::Notify
                                                    : StmtKind::NotifyAll);
      advance();
      if (at(TokenKind::Identifier))
        S->Name = advance().Text;
      else
        error(peek(), std::string("expected lock name after ") +
                          tokenKindName(Kw));
      expect(TokenKind::Semicolon, "after wait/notify");
      return S;
    }
    case TokenKind::KwPrint: {
      auto S = makeStmt(StmtKind::Print);
      advance();
      S->Value = parseExpr();
      expect(TokenKind::Semicolon, "after 'print'");
      return S;
    }
    case TokenKind::KwReturn: {
      auto S = makeStmt(StmtKind::Return);
      advance();
      if (!at(TokenKind::Semicolon))
        S->Value = parseExpr();
      expect(TokenKind::Semicolon, "after 'return'");
      return S;
    }
    default:
      return parseAssignOrExprStatement();
    }
  }

  StmtPtr parseDeclLocal() {
    auto S = makeStmt(StmtKind::DeclLocal);
    advance(); // local / let
    if (!at(TokenKind::Identifier)) {
      error(peek(), "expected name after 'local'/'let'");
      synchronize();
      return S;
    }
    S->Name = advance().Text;
    if (accept(TokenKind::Assign))
      S->Value = parseExpr();
    expect(TokenKind::Semicolon, "after local declaration");
    return S;
  }

  StmtPtr parseIf() {
    auto S = makeStmt(StmtKind::If);
    advance(); // if
    expect(TokenKind::LParen, "after 'if'");
    S->Value = parseExpr();
    expect(TokenKind::RParen, "after condition");
    S->Body = parseBlock();
    if (accept(TokenKind::KwElse)) {
      if (at(TokenKind::KwIf))
        S->Else = parseIf(); // else-if chain
      else
        S->Else = parseBlock();
    }
    return S;
  }

  StmtPtr parseWhile() {
    auto S = makeStmt(StmtKind::While);
    advance(); // while
    expect(TokenKind::LParen, "after 'while'");
    S->Value = parseExpr();
    expect(TokenKind::RParen, "after condition");
    S->Body = parseBlock();
    return S;
  }

  StmtPtr parseSync() {
    auto S = makeStmt(StmtKind::Sync);
    advance(); // sync
    expect(TokenKind::LParen, "after 'sync'");
    if (at(TokenKind::Identifier))
      S->Name = advance().Text;
    else
      error(peek(), "expected lock name in 'sync'");
    expect(TokenKind::RParen, "after lock name");
    S->Body = parseBlock();
    return S;
  }

  StmtPtr parseAssignOrExprStatement() {
    ExprPtr E = parseExpr();
    if (accept(TokenKind::Assign)) {
      auto S = makeStmt(StmtKind::Assign);
      if (E && E->Kind != ExprKind::VarRef && E->Kind != ExprKind::Index)
        error(peek(), "assignment target must be a variable or array "
                      "element");
      S->Target = std::move(E);
      S->Value = parseExpr();
      expect(TokenKind::Semicolon, "after assignment");
      return S;
    }
    auto S = makeStmt(StmtKind::ExprStmt);
    S->Value = std::move(E);
    expect(TokenKind::Semicolon, "after expression statement");
    return S;
  }

  //===--------------------------------------------------------------===//
  // Expressions (precedence climbing).
  //===--------------------------------------------------------------===//

  ExprPtr makeExpr(ExprKind Kind, const Token &Tok) {
    auto E = std::make_unique<Expr>(Kind);
    E->Line = Tok.Line;
    E->Column = Tok.Column;
    return E;
  }

  ExprPtr parseExpr(int MinPrecedence = 1) {
    ExprPtr Lhs = parseUnary();
    while (true) {
      int Precedence = binaryPrecedence(peek().Kind);
      if (Precedence < MinPrecedence)
        return Lhs;
      Token OpTok = advance();
      ExprPtr Rhs = parseExpr(Precedence + 1);
      auto E = makeExpr(ExprKind::Binary, OpTok);
      E->BOp = binaryOpFor(OpTok.Kind);
      E->Lhs = std::move(Lhs);
      E->Rhs = std::move(Rhs);
      Lhs = std::move(E);
    }
  }

  ExprPtr parseUnary() {
    if (at(TokenKind::Minus) || at(TokenKind::Not)) {
      Token OpTok = advance();
      auto E = makeExpr(ExprKind::Unary, OpTok);
      E->UOp =
          OpTok.Kind == TokenKind::Minus ? UnaryOp::Neg : UnaryOp::Not;
      E->Lhs = parseUnary();
      return E;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const Token &Tok = peek();
    switch (Tok.Kind) {
    case TokenKind::IntLiteral: {
      auto E = makeExpr(ExprKind::IntLit, Tok);
      E->IntValue = advance().IntValue;
      return E;
    }
    case TokenKind::LParen: {
      advance();
      ExprPtr E = parseExpr();
      expect(TokenKind::RParen, "after parenthesized expression");
      return E;
    }
    case TokenKind::KwSpawn: {
      Token SpawnTok = advance();
      auto E = makeExpr(ExprKind::Spawn, SpawnTok);
      if (at(TokenKind::Identifier))
        E->Name = advance().Text;
      else
        error(peek(), "expected function name after 'spawn'");
      parseCallArgs(*E);
      return E;
    }
    case TokenKind::Identifier: {
      Token NameTok = advance();
      if (at(TokenKind::LParen)) {
        auto E = makeExpr(ExprKind::Call, NameTok);
        E->Name = NameTok.Text;
        parseCallArgs(*E);
        return E;
      }
      if (accept(TokenKind::LBracket)) {
        auto E = makeExpr(ExprKind::Index, NameTok);
        E->Name = NameTok.Text;
        E->Lhs = parseExpr();
        expect(TokenKind::RBracket, "after array subscript");
        return E;
      }
      auto E = makeExpr(ExprKind::VarRef, NameTok);
      E->Name = NameTok.Text;
      return E;
    }
    default:
      error(Tok, "expected an expression, found " +
                     std::string(tokenKindName(Tok.Kind)));
      advance();
      auto E = makeExpr(ExprKind::IntLit, Tok);
      return E; // zero literal as recovery value
    }
  }

  void parseCallArgs(Expr &E) {
    if (!expect(TokenKind::LParen, "to open the argument list"))
      return;
    if (accept(TokenKind::RParen))
      return;
    do {
      E.Args.push_back(parseExpr());
    } while (accept(TokenKind::Comma));
    expect(TokenKind::RParen, "after arguments");
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  Program &Out;
  std::vector<Diag> &Diags;
};

} // namespace

bool ft::lang::parseProgram(std::string_view Source, Program &Out,
                            std::vector<Diag> &Diags) {
  size_t DiagsBefore = Diags.size();
  Parser P(lex(Source), Out, Diags);
  P.run();
  return Diags.size() == DiagsBefore;
}
