//===----------------------------------------------------------------------===//
//
// Experiment E9 (micro) — the primitive costs behind the whole paper:
// O(1) epoch operations versus O(n) vector-clock operations as the
// thread count grows. Uses google-benchmark.
//
// Expected: epoch compare/assign flat across thread counts; VC join /
// compare / copy scale linearly with n — the gap FastTrack exploits.
//
//===----------------------------------------------------------------------===//

#include "clock/VectorClock.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace ft;

namespace {

VectorClock denseClock(unsigned Threads, uint32_t Base) {
  VectorClock C;
  for (ThreadId T = 0; T != Threads; ++T)
    C.set(T, Base + T);
  return C;
}

void BM_EpochCompare(benchmark::State &State) {
  unsigned Threads = State.range(0);
  VectorClock C = denseClock(Threads, 10);
  Epoch E = Epoch::make(Threads / 2, 9);
  for (auto _ : State) {
    benchmark::DoNotOptimize(C.epochLeq(E));
  }
}

void BM_EpochAssign(benchmark::State &State) {
  Epoch E = Epoch::make(3, 41);
  Epoch Out;
  for (auto _ : State) {
    Out = E;
    benchmark::DoNotOptimize(Out);
  }
}

void BM_VcCompare(benchmark::State &State) {
  unsigned Threads = State.range(0);
  VectorClock A = denseClock(Threads, 10);
  VectorClock B = denseClock(Threads, 11);
  for (auto _ : State) {
    benchmark::DoNotOptimize(A.leq(B));
  }
}

void BM_VcJoin(benchmark::State &State) {
  unsigned Threads = State.range(0);
  VectorClock A = denseClock(Threads, 10);
  VectorClock B = denseClock(Threads, 11);
  for (auto _ : State) {
    A.joinWith(B);
    benchmark::DoNotOptimize(A);
  }
}

void BM_VcCopy(benchmark::State &State) {
  unsigned Threads = State.range(0);
  VectorClock A = denseClock(Threads, 10);
  VectorClock B;
  for (auto _ : State) {
    B.copyFrom(A);
    benchmark::DoNotOptimize(B);
  }
}

} // namespace

BENCHMARK(BM_EpochCompare)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_EpochAssign);
BENCHMARK(BM_VcCompare)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_VcJoin)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_VcCopy)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Custom main instead of BENCHMARK_MAIN(): accept the repo-wide
// `--json out.json` convention by rewriting it into google-benchmark's
// own --benchmark_out/--benchmark_out_format flags, so all bench_*
// binaries share one machine-readable interface.
int main(int argc, char **argv) {
  std::vector<std::string> Args;
  Args.reserve(static_cast<size_t>(argc) + 1);
  Args.emplace_back(argv[0]);
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string Path;
    if (Arg == "--json" && I + 1 < argc)
      Path = argv[++I];
    else if (Arg.rfind("--json=", 0) == 0)
      Path = Arg.substr(7);
    if (!Path.empty()) {
      Args.push_back("--benchmark_out=" + Path);
      Args.push_back("--benchmark_out_format=json");
    } else {
      Args.push_back(std::move(Arg));
    }
  }
  std::vector<char *> Argv;
  Argv.reserve(Args.size());
  for (std::string &Arg : Args)
    Argv.push_back(Arg.data());
  int Argc = static_cast<int>(Argv.size());
  benchmark::Initialize(&Argc, Argv.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
