#include "framework/Tool.h"

using namespace ft;

Tool::~Tool() = default;

void Tool::begin(const ToolContext &) {}
void Tool::end() {}

bool Tool::onRead(ThreadId, VarId, size_t) { return true; }
bool Tool::onWrite(ThreadId, VarId, size_t) { return true; }
void Tool::onAcquire(ThreadId, LockId, size_t) {}
void Tool::onRelease(ThreadId, LockId, size_t) {}
void Tool::onFork(ThreadId, ThreadId, size_t) {}
void Tool::onJoin(ThreadId, ThreadId, size_t) {}
void Tool::onVolatileRead(ThreadId, VolatileId, size_t) {}
void Tool::onVolatileWrite(ThreadId, VolatileId, size_t) {}
void Tool::onBarrier(const std::vector<ThreadId> &, size_t) {}
void Tool::onAtomicBegin(ThreadId, size_t) {}
void Tool::onAtomicEnd(ThreadId, size_t) {}

size_t Tool::shadowBytes() const { return 0; }

bool Tool::configureShadowPolicy(const ShadowMemoryPolicy &) { return false; }

ShadowGovernorStats Tool::shadowGovernorStats() const {
  return ShadowGovernorStats();
}

void Tool::clearWarnings() {
  Warnings.clear();
  WarnedVars.assign(WarnedVars.size(), false);
}

bool Tool::alreadyWarned(VarId X) const {
  return X < WarnedVars.size() && WarnedVars[X];
}

size_t Tool::adoptWarnings(const std::vector<RaceWarning> &Merged) {
  size_t Recorded = 0;
  for (const RaceWarning &W : Merged)
    Recorded += reportRace(W);
  return Recorded;
}

bool Tool::reportRace(RaceWarning W) {
  if (alreadyWarned(W.Var))
    return false;
  if (W.Var >= WarnedVars.size())
    WarnedVars.resize(W.Var + 1, false);
  WarnedVars[W.Var] = true;
  Warnings.push_back(std::move(W));
  return true;
}

std::string ft::toString(const RaceWarning &W) {
  std::string Out = "race on x" + std::to_string(W.Var) + " at op " +
                    std::to_string(W.OpIndex) + ": " +
                    opKindName(W.CurrentKind) + " by thread " +
                    std::to_string(W.CurrentThread);
  if (W.PriorThread != UnknownThread)
    Out += " conflicts with " + std::string(opKindName(W.PriorKind)) +
           " by thread " + std::to_string(W.PriorThread);
  if (!W.Detail.empty())
    Out += " (" + W.Detail + ")";
  return Out;
}
