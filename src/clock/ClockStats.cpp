#include "clock/ClockStats.h"

using namespace ft;

ClockStats &ft::clockStats() {
  static thread_local ClockStats Stats;
  return Stats;
}

void ft::resetClockStats() { clockStats() = ClockStats(); }
