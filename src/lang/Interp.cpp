#include "lang/Interp.h"

#include "lang/Sema.h"
#include "support/Rng.h"

#include <algorithm>

#include <cassert>

using namespace ft;
using namespace ft::lang;

namespace {

/// What a control-stack entry represents.
enum class FrameKind : uint8_t {
  Stmt,        ///< Node is a Stmt*.
  Expr,        ///< Node is an Expr*.
  CallMarker,  ///< Function boundary; Aux = locals base to restore.
  ReleaseLock, ///< Emit rel / drop re-entrancy level on exit; Aux = LockId.
  EndAtomic,   ///< Emit the closing atomic marker.
};

struct Frame {
  FrameKind Kind;
  const void *Node = nullptr;
  uint32_t Phase = 0;
  uint32_t Aux = 0;

  static Frame stmt(const Stmt *S) { return {FrameKind::Stmt, S, 0, 0}; }
  static Frame expr(const Expr *E) { return {FrameKind::Expr, E, 0, 0}; }
};

enum class ThreadStatus : uint8_t {
  Runnable,
  BlockedOnLock,
  BlockedOnJoin,
  AtBarrier,
  WaitingNotify, ///< Inside wait(m): released m, not yet notified.
  Finished,
};

struct MachineThread {
  ThreadId Id = 0;
  ThreadStatus Status = ThreadStatus::Runnable;
  uint32_t WaitTarget = 0; ///< Lock / thread / barrier blocked on.
  std::vector<Frame> Frames;
  std::vector<int64_t> Values; ///< Operand stack.
  std::vector<int64_t> Locals; ///< Flat local-slot storage.
  std::vector<uint32_t> BaseStack; ///< Locals base per active call.
  bool Joined = false; ///< A join event for this thread was emitted.
};

struct LockRuntime {
  bool Held = false;
  ThreadId Holder = 0;
  unsigned Depth = 0;
  /// Threads parked in wait(m), in arrival order (notify wakes the
  /// first, deterministically).
  std::vector<ThreadId> WaitQueue;
};

struct BarrierRuntime {
  std::vector<ThreadId> Waiting;
};

class Machine {
public:
  Machine(const Program &P, const InterpOptions &Options)
      : P(P), Options(Options), Rng(Options.Seed) {}

  InterpResult run();

private:
  //===--------------------------------------------------------------===//
  // Error handling (no exceptions: set the flag, unwind via checks).
  //===--------------------------------------------------------------===//

  void fail(unsigned Line, unsigned Column, std::string Message) {
    if (Failed)
      return;
    Failed = true;
    Result.Error = {Line, Column, std::move(Message)};
  }

  //===--------------------------------------------------------------===//
  // Thread management.
  //===--------------------------------------------------------------===//

  /// Creates a thread running \p Fn with \p Args; returns its id or -1.
  int spawnThread(uint32_t FnIndex, const std::vector<int64_t> &Args,
                  unsigned Line, unsigned Column) {
    if (Threads.size() >= Options.MaxThreads) {
      fail(Line, Column, "thread limit exceeded (" +
                             std::to_string(Options.MaxThreads) + ")");
      return -1;
    }
    const Function &Fn = P.Functions[FnIndex];
    auto Th = std::make_unique<MachineThread>();
    Th->Id = static_cast<ThreadId>(Threads.size());
    Th->Locals.assign(Fn.NumLocals, 0);
    for (size_t I = 0; I != Args.size(); ++I)
      Th->Locals[I] = Args[I];
    Th->BaseStack.push_back(0);
    Th->Frames.push_back({FrameKind::CallMarker, nullptr, 0, 0});
    Th->Frames.push_back(Frame::stmt(Fn.Body.get()));
    Threads.push_back(std::move(Th));
    return static_cast<int>(Threads.back()->Id);
  }

  void wakeBlockedOn(ThreadStatus Status, uint32_t Target) {
    for (auto &Th : Threads)
      if (Th->Status == Status && Th->WaitTarget == Target)
        Th->Status = ThreadStatus::Runnable;
  }

  //===--------------------------------------------------------------===//
  // Value/frame helpers.
  //===--------------------------------------------------------------===//

  int64_t popValue(MachineThread &Th) {
    assert(!Th.Values.empty() && "operand stack underflow");
    int64_t V = Th.Values.back();
    Th.Values.pop_back();
    return V;
  }

  uint32_t localsBase(const MachineThread &Th) const {
    assert(!Th.BaseStack.empty() && "no active call");
    return Th.BaseStack.back();
  }

  /// Finishes the current call: restores locals, pushes \p ReturnValue.
  /// The top frame must be the CallMarker.
  void popCallMarker(MachineThread &Th, int64_t ReturnValue) {
    Frame Marker = Th.Frames.back();
    assert(Marker.Kind == FrameKind::CallMarker && "expected call marker");
    Th.Frames.pop_back();
    Th.Locals.resize(Marker.Aux);
    Th.BaseStack.pop_back();
    Th.Values.push_back(ReturnValue);
  }

  /// Unwinds frames for 'return': emits pending lock releases and atomic
  /// ends, then completes the call with \p ReturnValue.
  void unwindForReturn(MachineThread &Th, int64_t ReturnValue) {
    while (!Th.Frames.empty()) {
      Frame F = Th.Frames.back();
      switch (F.Kind) {
      case FrameKind::CallMarker:
        popCallMarker(Th, ReturnValue);
        return;
      case FrameKind::ReleaseLock:
        releaseLock(Th, F.Aux);
        Th.Frames.pop_back();
        break;
      case FrameKind::EndAtomic:
        Result.EventTrace.append(atomicEnd(Th.Id));
        Th.Frames.pop_back();
        break;
      case FrameKind::Stmt:
      case FrameKind::Expr:
        Th.Frames.pop_back();
        break;
      }
    }
    assert(false && "return without an enclosing call marker");
  }

  void releaseLock(MachineThread &Th, LockId M) {
    LockRuntime &Lock = LockStates[M];
    assert(Lock.Held && Lock.Holder == Th.Id && "releasing unheld lock");
    if (--Lock.Depth == 0) {
      Lock.Held = false;
      Result.EventTrace.append(rel(Th.Id, M));
      wakeBlockedOn(ThreadStatus::BlockedOnLock, M);
    }
  }

  //===--------------------------------------------------------------===//
  // Stepping.
  //===--------------------------------------------------------------===//

  void step(MachineThread &Th);
  void stepStmt(MachineThread &Th, Frame &F, const Stmt &S);
  void stepExpr(MachineThread &Th, Frame &F, const Expr &E);

  /// Evaluates args one per phase; returns true when all are on the
  /// operand stack (and pops them into \p Out, first arg first).
  bool collectArgs(MachineThread &Th, Frame &F, const Expr &E,
                   std::vector<int64_t> &Out) {
    if (F.Phase < E.Args.size()) {
      unsigned Next = F.Phase;
      ++F.Phase;
      Th.Frames.push_back(Frame::expr(E.Args[Next].get()));
      return false;
    }
    Out.resize(E.Args.size());
    for (size_t I = E.Args.size(); I-- > 0;)
      Out[I] = popValue(Th);
    return true;
  }

  const Program &P;
  const InterpOptions &Options;
  Xoshiro256StarStar Rng;
  InterpResult Result;
  bool Failed = false;

  std::vector<std::unique_ptr<MachineThread>> Threads;
  std::vector<int64_t> Globals;
  std::vector<int64_t> VolatileValues;
  std::vector<LockRuntime> LockStates;
  std::vector<BarrierRuntime> BarrierStates;
};

void Machine::stepExpr(MachineThread &Th, Frame &F, const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    Th.Values.push_back(E.IntValue);
    Th.Frames.pop_back();
    return;

  case ExprKind::VarRef:
    switch (E.Ref) {
    case RefKind::Local:
      Th.Values.push_back(Th.Locals[localsBase(Th) + E.RefIndex]);
      break;
    case RefKind::Shared:
      if (E.ElideEvent)
        ++Result.EventsElided;
      else
        Result.EventTrace.append(rd(Th.Id, E.RefIndex));
      Th.Values.push_back(Globals[E.RefIndex]);
      break;
    case RefKind::Volatile:
      Result.EventTrace.append(volRd(Th.Id, E.RefIndex));
      Th.Values.push_back(VolatileValues[E.RefIndex]);
      break;
    case RefKind::SharedArray:
    case RefKind::Unresolved:
      fail(E.Line, E.Column, "internal: unresolved variable reference");
      break;
    }
    Th.Frames.pop_back();
    return;

  case ExprKind::Index: {
    if (F.Phase == 0) {
      F.Phase = 1;
      Th.Frames.push_back(Frame::expr(E.Lhs.get()));
      return;
    }
    int64_t Index = popValue(Th);
    if (Index < 0 || Index >= static_cast<int64_t>(E.ArraySize)) {
      fail(E.Line, E.Column,
           "index " + std::to_string(Index) + " out of bounds for '" +
               E.Name + "[" + std::to_string(E.ArraySize) + "]'");
      return;
    }
    VarId X = E.RefIndex + static_cast<VarId>(Index);
    if (E.ElideEvent)
      ++Result.EventsElided;
    else
      Result.EventTrace.append(rd(Th.Id, X));
    Th.Values.push_back(Globals[X]);
    Th.Frames.pop_back();
    return;
  }

  case ExprKind::Unary: {
    if (F.Phase == 0) {
      F.Phase = 1;
      Th.Frames.push_back(Frame::expr(E.Lhs.get()));
      return;
    }
    int64_t V = popValue(Th);
    Th.Values.push_back(E.UOp == UnaryOp::Neg ? -V : (V == 0 ? 1 : 0));
    Th.Frames.pop_back();
    return;
  }

  case ExprKind::Binary: {
    bool ShortCircuit = E.BOp == BinaryOp::And || E.BOp == BinaryOp::Or;
    if (F.Phase == 0) {
      F.Phase = 1;
      Th.Frames.push_back(Frame::expr(E.Lhs.get()));
      return;
    }
    if (F.Phase == 1) {
      if (ShortCircuit) {
        int64_t Lhs = popValue(Th);
        bool LhsTrue = Lhs != 0;
        if (E.BOp == BinaryOp::And ? !LhsTrue : LhsTrue) {
          Th.Values.push_back(LhsTrue ? 1 : 0);
          Th.Frames.pop_back();
          return;
        }
      }
      F.Phase = 2;
      Th.Frames.push_back(Frame::expr(E.Rhs.get()));
      return;
    }
    int64_t Rhs = popValue(Th);
    if (ShortCircuit) {
      Th.Values.push_back(Rhs != 0 ? 1 : 0);
      Th.Frames.pop_back();
      return;
    }
    int64_t Lhs = popValue(Th);
    int64_t Out = 0;
    switch (E.BOp) {
    case BinaryOp::Add:
      Out = Lhs + Rhs;
      break;
    case BinaryOp::Sub:
      Out = Lhs - Rhs;
      break;
    case BinaryOp::Mul:
      Out = Lhs * Rhs;
      break;
    case BinaryOp::Div:
    case BinaryOp::Mod:
      if (Rhs == 0) {
        fail(E.Line, E.Column, "division by zero");
        return;
      }
      Out = E.BOp == BinaryOp::Div ? Lhs / Rhs : Lhs % Rhs;
      break;
    case BinaryOp::Lt:
      Out = Lhs < Rhs;
      break;
    case BinaryOp::Le:
      Out = Lhs <= Rhs;
      break;
    case BinaryOp::Gt:
      Out = Lhs > Rhs;
      break;
    case BinaryOp::Ge:
      Out = Lhs >= Rhs;
      break;
    case BinaryOp::Eq:
      Out = Lhs == Rhs;
      break;
    case BinaryOp::Ne:
      Out = Lhs != Rhs;
      break;
    case BinaryOp::And:
    case BinaryOp::Or:
      break; // handled above
    }
    Th.Values.push_back(Out);
    Th.Frames.pop_back();
    return;
  }

  case ExprKind::Call: {
    std::vector<int64_t> Args;
    if (!collectArgs(Th, F, E, Args))
      return;
    const Function &Callee = P.Functions[E.CalleeIndex];
    Th.Frames.pop_back(); // replace the call expression...
    uint32_t Base = Th.Locals.size();
    Th.Frames.push_back({FrameKind::CallMarker, nullptr, 0, Base});
    Th.Locals.resize(Base + Callee.NumLocals, 0);
    for (size_t I = 0; I != Args.size(); ++I)
      Th.Locals[Base + I] = Args[I];
    Th.BaseStack.push_back(Base);
    Th.Frames.push_back(Frame::stmt(Callee.Body.get()));
    return;
  }

  case ExprKind::Spawn: {
    std::vector<int64_t> Args;
    if (!collectArgs(Th, F, E, Args))
      return;
    int NewTid = spawnThread(E.CalleeIndex, Args, E.Line, E.Column);
    if (NewTid < 0)
      return;
    Result.EventTrace.append(fork(Th.Id, static_cast<ThreadId>(NewTid)));
    Th.Values.push_back(NewTid);
    Th.Frames.pop_back();
    return;
  }
  }
}

void Machine::stepStmt(MachineThread &Th, Frame &F, const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Block:
    if (F.Phase < S.Stmts.size()) {
      const Stmt *Next = S.Stmts[F.Phase].get();
      ++F.Phase;
      Th.Frames.push_back(Frame::stmt(Next));
      return;
    }
    Th.Frames.pop_back();
    return;

  case StmtKind::DeclLocal:
    if (S.Value && F.Phase == 0) {
      F.Phase = 1;
      Th.Frames.push_back(Frame::expr(S.Value.get()));
      return;
    }
    Th.Locals[localsBase(Th) + S.RefIndex] = S.Value ? popValue(Th) : 0;
    Th.Frames.pop_back();
    return;

  case StmtKind::Assign: {
    if (F.Phase == 0) {
      F.Phase = 1;
      Th.Frames.push_back(Frame::expr(S.Value.get()));
      return;
    }
    const Expr &Target = *S.Target;
    if (Target.Kind == ExprKind::VarRef) {
      int64_t V = popValue(Th);
      switch (Target.Ref) {
      case RefKind::Local:
        Th.Locals[localsBase(Th) + Target.RefIndex] = V;
        break;
      case RefKind::Shared:
        if (Target.ElideEvent)
          ++Result.EventsElided;
        else
          Result.EventTrace.append(wr(Th.Id, Target.RefIndex));
        Globals[Target.RefIndex] = V;
        break;
      case RefKind::Volatile:
        Result.EventTrace.append(volWr(Th.Id, Target.RefIndex));
        VolatileValues[Target.RefIndex] = V;
        break;
      case RefKind::SharedArray:
      case RefKind::Unresolved:
        fail(Target.Line, Target.Column,
             "internal: unresolved assignment target");
        break;
      }
      Th.Frames.pop_back();
      return;
    }
    // Array element: evaluate the subscript, then store.
    if (F.Phase == 1) {
      F.Phase = 2;
      Th.Frames.push_back(Frame::expr(Target.Lhs.get()));
      return;
    }
    int64_t Index = popValue(Th);
    int64_t V = popValue(Th);
    if (Index < 0 || Index >= static_cast<int64_t>(Target.ArraySize)) {
      fail(Target.Line, Target.Column,
           "index " + std::to_string(Index) + " out of bounds for '" +
               Target.Name + "[" + std::to_string(Target.ArraySize) + "]'");
      return;
    }
    VarId X = Target.RefIndex + static_cast<VarId>(Index);
    if (Target.ElideEvent)
      ++Result.EventsElided;
    else
      Result.EventTrace.append(wr(Th.Id, X));
    Globals[X] = V;
    Th.Frames.pop_back();
    return;
  }

  case StmtKind::If:
    if (F.Phase == 0) {
      F.Phase = 1;
      Th.Frames.push_back(Frame::expr(S.Value.get()));
      return;
    }
    {
      int64_t Cond = popValue(Th);
      Th.Frames.pop_back();
      if (Cond != 0)
        Th.Frames.push_back(Frame::stmt(S.Body.get()));
      else if (S.Else)
        Th.Frames.push_back(Frame::stmt(S.Else.get()));
    }
    return;

  case StmtKind::While:
    if (F.Phase == 0) {
      F.Phase = 1;
      Th.Frames.push_back(Frame::expr(S.Value.get()));
      return;
    }
    if (popValue(Th) != 0) {
      F.Phase = 0; // re-test after the body
      Th.Frames.push_back(Frame::stmt(S.Body.get()));
      return;
    }
    Th.Frames.pop_back();
    return;

  case StmtKind::Sync: {
    LockRuntime &Lock = LockStates[S.RefIndex];
    if (Lock.Held && Lock.Holder != Th.Id) {
      Th.Status = ThreadStatus::BlockedOnLock;
      Th.WaitTarget = S.RefIndex;
      return; // frame stays; retried once the lock frees up
    }
    if (!Lock.Held) {
      Lock.Held = true;
      Lock.Holder = Th.Id;
      Lock.Depth = 1;
      Result.EventTrace.append(acq(Th.Id, S.RefIndex));
    } else {
      ++Lock.Depth; // re-entrant: no event (RoadRunner filters these)
    }
    const Stmt *Body = S.Body.get();
    Th.Frames.pop_back();
    Th.Frames.push_back({FrameKind::ReleaseLock, nullptr, 0, S.RefIndex});
    Th.Frames.push_back(Frame::stmt(Body));
    return;
  }

  case StmtKind::Atomic: {
    Result.EventTrace.append(atomicBegin(Th.Id));
    const Stmt *Body = S.Body.get();
    Th.Frames.pop_back();
    Th.Frames.push_back({FrameKind::EndAtomic, nullptr, 0, 0});
    Th.Frames.push_back(Frame::stmt(Body));
    return;
  }

  case StmtKind::Join: {
    if (F.Phase == 0) {
      F.Phase = 1;
      Th.Frames.push_back(Frame::expr(S.Value.get()));
      return;
    }
    int64_t Target = Th.Values.back(); // keep until unblocked
    if (Target < 0 || Target >= static_cast<int64_t>(Threads.size())) {
      fail(S.Line, S.Column,
           "join of invalid thread handle " + std::to_string(Target));
      return;
    }
    if (Target == Th.Id) {
      fail(S.Line, S.Column, "thread joins itself");
      return;
    }
    MachineThread &Other = *Threads[Target];
    if (Other.Status != ThreadStatus::Finished) {
      Th.Status = ThreadStatus::BlockedOnJoin;
      Th.WaitTarget = static_cast<uint32_t>(Target);
      return;
    }
    popValue(Th);
    if (!Other.Joined) {
      Other.Joined = true;
      Result.EventTrace.append(join(Th.Id, Other.Id));
    }
    Th.Frames.pop_back();
    return;
  }

  case StmtKind::Await: {
    BarrierRuntime &Barrier = BarrierStates[S.RefIndex];
    const BarrierDecl &Decl = P.Barriers[S.RefIndex];
    if (F.Phase == 1) { // woken up after the barrier fired
      Th.Frames.pop_back();
      return;
    }
    F.Phase = 1;
    Barrier.Waiting.push_back(Th.Id);
    if (Barrier.Waiting.size() < Decl.Arity) {
      Th.Status = ThreadStatus::AtBarrier;
      Th.WaitTarget = S.RefIndex;
      return;
    }
    // Last arriver: release everyone.
    Result.EventTrace.appendBarrier(Barrier.Waiting);
    for (ThreadId Waiter : Barrier.Waiting)
      Threads[Waiter]->Status = ThreadStatus::Runnable;
    Barrier.Waiting.clear();
    Th.Frames.pop_back();
    return;
  }

  case StmtKind::Wait: {
    LockRuntime &Lock = LockStates[S.RefIndex];
    if (F.Phase == 0) {
      // Entry: must hold the lock; release it fully (emitting the rel
      // event of the paper's wait modelling) and park.
      if (!Lock.Held || Lock.Holder != Th.Id) {
        fail(S.Line, S.Column,
             "wait on lock not held by the current thread");
        return;
      }
      F.Phase = 1;
      F.Aux = Lock.Depth; // restore the re-entrancy level on wake-up
      Lock.Held = false;
      Lock.Depth = 0;
      Result.EventTrace.append(rel(Th.Id, S.RefIndex));
      Lock.WaitQueue.push_back(Th.Id);
      Th.Status = ThreadStatus::WaitingNotify;
      Th.WaitTarget = S.RefIndex;
      wakeBlockedOn(ThreadStatus::BlockedOnLock, S.RefIndex);
      return;
    }
    // Notified: reacquire the lock ("the subsequent acquisition").
    if (Lock.Held && Lock.Holder != Th.Id) {
      Th.Status = ThreadStatus::BlockedOnLock;
      Th.WaitTarget = S.RefIndex;
      return;
    }
    Lock.Held = true;
    Lock.Holder = Th.Id;
    Lock.Depth = F.Aux;
    Result.EventTrace.append(acq(Th.Id, S.RefIndex));
    Th.Frames.pop_back();
    return;
  }

  case StmtKind::Notify:
  case StmtKind::NotifyAll: {
    // Notify "affects scheduling of threads but does not induce any
    // happens-before edges" (Section 4) — no event is emitted.
    LockRuntime &Lock = LockStates[S.RefIndex];
    if (!Lock.Held || Lock.Holder != Th.Id) {
      fail(S.Line, S.Column,
           "notify on lock not held by the current thread");
      return;
    }
    unsigned Count = S.Kind == StmtKind::Notify
                         ? std::min<size_t>(1, Lock.WaitQueue.size())
                         : Lock.WaitQueue.size();
    for (unsigned I = 0; I != Count; ++I) {
      ThreadId Waiter = Lock.WaitQueue[I];
      // Woken threads contend for the lock once the notifier releases.
      Threads[Waiter]->Status = ThreadStatus::BlockedOnLock;
      Threads[Waiter]->WaitTarget = S.RefIndex;
    }
    Lock.WaitQueue.erase(Lock.WaitQueue.begin(),
                         Lock.WaitQueue.begin() + Count);
    Th.Frames.pop_back();
    return;
  }

  case StmtKind::Print:
    if (F.Phase == 0) {
      F.Phase = 1;
      Th.Frames.push_back(Frame::expr(S.Value.get()));
      return;
    }
    Result.Output += std::to_string(popValue(Th));
    Result.Output += '\n';
    Th.Frames.pop_back();
    return;

  case StmtKind::Return:
    if (S.Value && F.Phase == 0) {
      F.Phase = 1;
      Th.Frames.push_back(Frame::expr(S.Value.get()));
      return;
    }
    {
      int64_t V = S.Value ? popValue(Th) : 0;
      Th.Frames.pop_back();
      unwindForReturn(Th, V);
    }
    return;

  case StmtKind::ExprStmt:
    if (F.Phase == 0) {
      F.Phase = 1;
      Th.Frames.push_back(Frame::expr(S.Value.get()));
      return;
    }
    popValue(Th); // discard the statement's value
    Th.Frames.pop_back();
    return;
  }
}

void Machine::step(MachineThread &Th) {
  assert(!Th.Frames.empty() && "stepping a finished thread");
  Frame &F = Th.Frames.back();
  switch (F.Kind) {
  case FrameKind::Stmt:
    stepStmt(Th, F, *static_cast<const Stmt *>(F.Node));
    return;
  case FrameKind::Expr:
    stepExpr(Th, F, *static_cast<const Expr *>(F.Node));
    return;
  case FrameKind::CallMarker:
    popCallMarker(Th, 0); // implicit 'return 0' at end of body
    return;
  case FrameKind::ReleaseLock:
    releaseLock(Th, F.Aux);
    Th.Frames.pop_back();
    return;
  case FrameKind::EndAtomic:
    Result.EventTrace.append(atomicEnd(Th.Id));
    Th.Frames.pop_back();
    return;
  }
}

InterpResult Machine::run() {
  Globals.assign(P.NumVarIds, 0);
  VolatileValues.assign(P.Volatiles.size(), 0);
  LockStates.assign(P.Locks.size(), LockRuntime());
  BarrierStates.assign(P.Barriers.size(), BarrierRuntime());

  assert(P.MainIndex >= 0 && "program must be resolved");
  spawnThread(static_cast<uint32_t>(P.MainIndex), {}, 0, 0);

  size_t Current = 0;
  while (!Failed) {
    // Retire finished threads and gather the runnable set.
    std::vector<size_t> Runnable;
    bool AnyUnfinished = false;
    for (size_t I = 0; I != Threads.size(); ++I) {
      MachineThread &Th = *Threads[I];
      if (Th.Status == ThreadStatus::Finished)
        continue;
      if (Th.Frames.empty()) {
        Th.Status = ThreadStatus::Finished;
        wakeBlockedOn(ThreadStatus::BlockedOnJoin, Th.Id);
        // A joiner may have just become runnable; recompute from scratch.
        Runnable.clear();
        I = static_cast<size_t>(-1);
        AnyUnfinished = false;
        continue;
      }
      AnyUnfinished = true;
      if (Th.Status == ThreadStatus::Runnable)
        Runnable.push_back(I);
    }
    if (!AnyUnfinished)
      break; // all done
    if (Runnable.empty()) {
      fail(0, 0, "deadlock: every live thread is blocked");
      break;
    }
    if (Result.Steps >= Options.MaxSteps) {
      fail(0, 0, "step budget exceeded (" +
                     std::to_string(Options.MaxSteps) + ")");
      break;
    }

    // Keep running the current thread unless it blocked/finished or the
    // scheduler decides to preempt.
    bool CurrentRunnable = false;
    for (size_t I : Runnable)
      CurrentRunnable |= I == Current;
    if (!CurrentRunnable || Rng.nextBool(Options.SwitchProbability))
      Current = Runnable[Rng.nextBelow(Runnable.size())];

    ++Result.Steps;
    step(*Threads[Current]);
  }

  Result.Ok = !Failed;
  return Result;
}

} // namespace

InterpResult ft::lang::interpret(const Program &P,
                                 const InterpOptions &Options) {
  Machine M(P, Options);
  return M.run();
}

InterpResult ft::lang::runSource(std::string_view Source,
                                 std::vector<Diag> &Diags,
                                 const InterpOptions &Options) {
  Program P;
  if (!compileProgram(Source, P, Diags)) {
    InterpResult Result;
    Result.Ok = false;
    if (!Diags.empty())
      Result.Error = Diags.front();
    return Result;
  }
  return interpret(P, Options);
}
