//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource governor: replay under a shadow-memory budget with
/// graceful degradation instead of death.
///
/// Section 4 of the paper describes granularity as the memory knob: fine
/// granularity shadows every field/element individually (Table 3's
/// per-tool memory column), coarse granularity folds whole objects onto
/// one shadow entry, trading precision for space. The governor operates
/// that knob automatically: it runs the replay with periodic
/// shadowBytes() probes, and when the live shadow state breaches the
/// budget it abandons the attempt, coarsens the granularity one rung
/// down the ladder, and restarts. The final rung runs unbudgeted, so a
/// governed replay always completes — possibly with reduced precision,
/// which is reported, never silently.
///
/// Degradation ladder (fields per object): fine → 8 → 64 →
/// ShadowPageVars (512). The final rung is deliberately one shadow page
/// region per object (VarId >> ShadowPageShift): fully degraded replay
/// folds each 4 KiB shadow page of the fine-grained table onto a single
/// slot, so the coarse table's directory geometry matches the fine one's
/// page grid (shadow/ShadowTable.h).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_RESOURCEGOVERNOR_H
#define FASTTRACK_FRAMEWORK_RESOURCEGOVERNOR_H

#include "framework/Degrade.h"
#include "framework/Replay.h"
#include "support/Status.h"

#include <vector>

namespace ft {

class MemoryTracker;

/// Options controlling one governed replay.
struct GovernorOptions {
  /// Shadow-memory budget in bytes. 0 means unlimited: the replay runs
  /// once at the caller's granularity and never degrades.
  uint64_t ShadowBudgetBytes = 0;

  /// Probe cadence, forwarded to ReplayOptions::BudgetCheckEveryOps.
  unsigned BudgetCheckEveryOps = 4096;

  /// Coarse-granularity rungs (fields per object), tried in order after
  /// the caller's own configuration breaches the budget. The last rung
  /// runs without a budget so the replay always completes; it folds one
  /// shadow page region per object so maximal degradation aligns with
  /// the paged table's geometry. The defaults are the shared divisor
  /// constants of framework/Degrade.h, so the offline governor, the
  /// online ladder, and the shadow governor's page fold stay in lockstep.
  std::vector<unsigned> Ladder = defaultDivisorLadder();

  /// Optional tracker observing every probe (live/peak shadow bytes).
  MemoryTracker *Tracker = nullptr;
};

/// Outcome of replayGoverned().
struct GovernedReplayResult {
  ReplayResult Result;           ///< Measurements of the completed attempt.
  Status St;
  std::vector<Diagnostic> Diags; ///< One Warning per degradation.
  unsigned Degradations = 0;     ///< Budget breaches → granularity drops.
  Granularity FinalGran = Granularity::Fine;
  unsigned FinalFieldsPerObject = 0; ///< 0 when FinalGran is Fine.
};

/// Replays \p T through \p Checker under \p Gov's budget, degrading
/// granularity per the ladder instead of failing. Each degraded attempt
/// restarts the analysis from the first event (Tool::begin() reinitializes
/// shadow state), so the completed attempt's warnings are exactly what a
/// from-scratch run at the final granularity produces. An explicit
/// ReplayOptions::VarToObject mapping is dropped on degradation (the
/// ladder uses the divisor mapping) — a diagnostic says so.
GovernedReplayResult
replayGoverned(const Trace &T, Tool &Checker,
               const ReplayOptions &Base = ReplayOptions(),
               const GovernorOptions &Gov = GovernorOptions());

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_RESOURCEGOVERNOR_H
