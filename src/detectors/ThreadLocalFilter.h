//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TL: the thread-local prefilter of the Section 5.2 composition table.
/// It forwards an access only once its variable has been touched by more
/// than one thread; purely thread-local data never reaches the downstream
/// checker. This is the cheapest useful prefilter and the baseline the
/// paper compares Eraser/DJIT+/FastTrack prefilters against.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_DETECTORS_THREADLOCALFILTER_H
#define FASTTRACK_DETECTORS_THREADLOCALFILTER_H

#include "framework/Tool.h"

#include <vector>

namespace ft {

/// Tracks, per variable, whether a second thread has accessed it.
class ThreadLocalFilter : public Tool {
public:
  const char *name() const override { return "TL"; }

  void begin(const ToolContext &Context) override;
  bool onRead(ThreadId T, VarId X, size_t OpIndex) override;
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override;
  size_t shadowBytes() const override;

private:
  bool access(ThreadId T, VarId X);

  /// Per variable: NoOwner (untouched), a thread id (thread-local so far),
  /// or Shared.
  static constexpr uint32_t NoOwner = ~0u;
  static constexpr uint32_t Shared = ~0u - 1;
  std::vector<uint32_t> Owner;
};

} // namespace ft

#endif // FASTTRACK_DETECTORS_THREADLOCALFILTER_H
