//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Building blocks for the synthetic workload generators: a main thread,
/// a set of worker threads, variable allocation, and the recurring
/// sharing patterns of the paper's benchmarks (thread-local loops,
/// lock-protected counters, read-shared tables, barrier phases,
/// epoch-churned array sweeps, and the hand-off idioms that trip or fool
/// the imprecise detectors).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_WORKLOADS_WORKLOADKIT_H
#define FASTTRACK_WORKLOADS_WORKLOADKIT_H

#include "support/Rng.h"
#include "trace/Trace.h"

#include <vector>

namespace ft {

/// Emits a structured multithreaded trace. Thread 0 is the main thread;
/// workers are 1..Workers. The kit interleaves worker "rounds" in rotated
/// order, which yields genuine concurrency between workers while keeping
/// generation deterministic.
class WorkloadKit {
public:
  WorkloadKit(unsigned Workers, uint64_t Seed)
      : Rng(Seed), Workers(Workers) {}

  unsigned workers() const { return Workers; }
  ThreadId workerTid(unsigned I) const { return I + 1; }

  /// Allocates \p Count fresh variable ids and returns the first.
  VarId allocVars(unsigned Count) {
    VarId First = NextVar;
    NextVar += Count;
    return First;
  }
  LockId allocLocks(unsigned Count) {
    LockId First = NextLock;
    NextLock += Count;
    return First;
  }
  VolatileId allocVolatiles(unsigned Count) {
    VolatileId First = NextVolatile;
    NextVolatile += Count;
    return First;
  }

  //===--------------------------------------------------------------===//
  // Raw events.
  //===--------------------------------------------------------------===//

  void rd(ThreadId T, VarId X) { Result.append(ft::rd(T, X)); }
  void wr(ThreadId T, VarId X) { Result.append(ft::wr(T, X)); }
  void acq(ThreadId T, LockId M) { Result.append(ft::acq(T, M)); }
  void rel(ThreadId T, LockId M) { Result.append(ft::rel(T, M)); }
  void volRd(ThreadId T, VolatileId V) { Result.append(ft::volRd(T, V)); }
  void volWr(ThreadId T, VolatileId V) { Result.append(ft::volWr(T, V)); }
  void atomicBegin(ThreadId T) { Result.append(ft::atomicBegin(T)); }
  void atomicEnd(ThreadId T) { Result.append(ft::atomicEnd(T)); }

  //===--------------------------------------------------------------===//
  // Structure.
  //===--------------------------------------------------------------===//

  /// Main forks every worker.
  void forkAll() {
    for (unsigned I = 0; I != Workers; ++I)
      Result.append(ft::fork(0, workerTid(I)));
  }

  /// Main joins every worker.
  void joinAll() {
    for (unsigned I = 0; I != Workers; ++I)
      Result.append(ft::join(0, workerTid(I)));
  }

  /// Barrier release across all workers (not the main thread), as in the
  /// Java Grande kernels.
  void barrierWorkers() {
    std::vector<ThreadId> Set;
    for (unsigned I = 0; I != Workers; ++I)
      Set.push_back(workerTid(I));
    Result.appendBarrier(Set);
  }

  /// Runs \p Rounds rounds; in each round every worker is visited once,
  /// in an order rotated per round, calling Fn(workerTid, round).
  template <typename Fn> void rounds(unsigned Rounds, Fn &&Body) {
    for (unsigned R = 0; R != Rounds; ++R) {
      unsigned Rotation = static_cast<unsigned>(Rng.nextBelow(Workers));
      for (unsigned I = 0; I != Workers; ++I) {
        unsigned W = (I + Rotation) % Workers;
        Body(workerTid(W), R);
      }
    }
  }

  //===--------------------------------------------------------------===//
  // Sharing patterns.
  //===--------------------------------------------------------------===//

  /// Thread-local compute: repeated read/write of the worker's own
  /// scalars. Produces same-epoch fast-path hits.
  void threadLocalWork(ThreadId T, VarId Base, unsigned Vars,
                       unsigned Ops) {
    for (unsigned I = 0; I != Ops; ++I) {
      VarId X = Base + static_cast<VarId>(Rng.nextBelow(Vars));
      if (Rng.nextBool(0.82))
        rd(T, X);
      else
        wr(T, X);
    }
  }

  /// Reads \p Count entries of a read-shared table (e.g. a scene graph or
  /// input matrix). Produces [FT READ SHARED] traffic.
  void readSharedSweep(ThreadId T, VarId Base, unsigned Vars,
                       unsigned Count) {
    for (unsigned I = 0; I != Count; ++I)
      rd(T, Base + static_cast<VarId>(Rng.nextBelow(Vars)));
  }

  /// A lock-protected read-modify-write of \p X under \p M.
  void lockedRmw(ThreadId T, LockId M, VarId X) {
    acq(T, M);
    rd(T, X);
    wr(T, X);
    rel(T, M);
  }

  /// An unsynchronized read-modify-write — a real (repeating) race.
  void racyRmw(ThreadId T, VarId X) {
    rd(T, X);
    wr(T, X);
  }

  /// Sweeps a private array slice, taking a lock every \p ElemsPerEpoch
  /// elements. The release ends the epoch, so each element's next access
  /// is first-in-epoch: DJIT+ pays an O(n) comparison per element while
  /// FastTrack pays an O(1) epoch check (the crypt/lufact cost profile).
  void epochChurnSweep(ThreadId T, LockId M, VarId Base, unsigned Elems,
                       unsigned ElemsPerEpoch, bool Write) {
    for (unsigned I = 0; I != Elems; ++I) {
      if (I % ElemsPerEpoch == 0) {
        acq(T, M);
        rel(T, M);
      }
      if (Write) {
        rd(T, Base + I); // in-place update reads the element first
        wr(T, Base + I);
      } else {
        rd(T, Base + I);
      }
    }
  }

  /// Race-free hand-off through a volatile flag that Eraser nevertheless
  /// reports: writer publishes \p Vars unlocked, then stores the flag;
  /// the reader consumes the flag and updates the data. The volatile
  /// edge orders the accesses, but no lock protects the data, so
  /// Eraser's candidate set empties (a guaranteed false alarm).
  void volatileHandoffFalseAlarm(ThreadId Writer, ThreadId Reader,
                                 VarId Base, unsigned Vars,
                                 VolatileId Flag) {
    for (unsigned I = 0; I != Vars; ++I)
      wr(Writer, Base + I);
    volWr(Writer, Flag);
    volRd(Reader, Flag);
    for (unsigned I = 0; I != Vars; ++I) {
      rd(Reader, Base + I);
      wr(Reader, Base + I);
    }
  }

  /// A one-shot unsynchronized hand-off: \p Writer writes, \p Reader
  /// later reads with no ordering. A real write-read race — and exactly
  /// the shape the Eraser state machine (Exclusive -> Shared, no warning)
  /// and Goldilocks' unsound thread-local fast path both miss, losing the
  /// hedc races of Section 5.1.
  void silentHandoffRace(ThreadId Writer, ThreadId Reader, VarId X) {
    wr(Writer, X);
    rd(Reader, X);
  }

  Trace take() { return std::move(Result); }

  Xoshiro256StarStar Rng;

private:
  unsigned Workers;
  Trace Result;
  VarId NextVar = 0;
  LockId NextLock = 0;
  VolatileId NextVolatile = 0;
};

} // namespace ft

#endif // FASTTRACK_WORKLOADS_WORKLOADKIT_H
