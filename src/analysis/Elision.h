//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The elision planner: lowers an AnalysisResult into the per-site
/// `InstrumentationPlan` the interpreter consults — concretely, the
/// `Expr::ElideEvent` stamp on every access site of a variable proven
/// ThreadLocal or LockConsistent — plus the plan telemetry (sites
/// elided, verdict counts) and the human-readable classification table
/// behind `miniconc_racecheck --dump-analysis`.
///
/// `planElision(P, R, {.Enabled = false})` is the `--no-elide` escape
/// hatch: it clears every stamp, restoring the exact pre-analysis event
/// stream (guarded byte-for-byte by AnalysisTest).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_ANALYSIS_ELISION_H
#define FASTTRACK_ANALYSIS_ELISION_H

#include "analysis/Analysis.h"

namespace ft::analysis {

struct ElisionOptions {
  /// Master switch: false clears every stamp (--no-elide).
  bool Enabled = true;
  /// Keep thread-local variables instrumented (ablation knob).
  bool ElideThreadLocal = true;
  /// Keep lock-consistent variables instrumented (ablation knob).
  bool ElideLockConsistent = true;
};

/// What one planning run decided (static counts; the dynamic "events
/// saved" counter is InterpResult::EventsElided).
struct ElisionPlan {
  bool Enabled = true;
  uint64_t SitesTotal = 0;
  uint64_t SitesElided = 0;
  uint64_t VarsThreadLocal = 0;
  uint64_t VarsLockConsistent = 0;
  uint64_t VarsMustInstrument = 0;
};

/// Stamps \p P's access sites according to \p R and \p Options.
/// Idempotent; re-planning with different options overwrites the stamps.
ElisionPlan planElision(lang::Program &P, const AnalysisResult &R,
                        const ElisionOptions &Options = ElisionOptions());

/// Convenience: analyzeProgram + planElision in one step.
ElisionPlan applyElision(lang::Program &P,
                         const ElisionOptions &Options = ElisionOptions());

/// Renders the per-site classification table (site, variable, access
/// kind, must-held locks, verdict, reason) for --dump-analysis.
std::string renderAnalysisTable(const AnalysisResult &R);

/// One-line plan summary, e.g. "elision: 7/9 sites elided (2 vars
/// thread-local, 1 lock-consistent, 1 must-instrument)".
std::string toString(const ElisionPlan &Plan);

} // namespace ft::analysis

#endif // FASTTRACK_ANALYSIS_ELISION_H
