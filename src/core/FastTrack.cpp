#include "core/FastTrack.h"

#include "framework/FastDispatch.h"
#include "framework/Replay.h"

#include "support/ByteStream.h"

using namespace ft;

template <typename EpochT>
void BasicFastTrack<EpochT>::begin(const ToolContext &Context) {
  assert(Context.NumThreads <= EpochT::MaxTid + 1 &&
         "thread count exceeds this epoch layout; use FastTrack64");
  VectorClockToolBase::begin(Context);
  Vars.assign(Context.NumVars, VarState());
  Rules = FastTrackRuleStats();
}

template <typename EpochT>
void BasicFastTrack<EpochT>::reportAccessRace(ThreadId T, VarId X,
                                              size_t OpIndex, OpKind Kind,
                                              ThreadId PriorThread,
                                              OpKind PriorKind,
                                              const char *Detail) {
  RaceWarning W;
  W.Var = X;
  W.OpIndex = OpIndex;
  W.CurrentThread = T;
  W.CurrentKind = Kind;
  W.PriorThread = PriorThread;
  W.PriorKind = PriorKind;
  W.Detail = Detail;
  reportRace(std::move(W));
}

template <typename EpochT>
ThreadId BasicFastTrack<EpochT>::concurrentReader(const VectorClock &Rvc,
                                                  ThreadId T) const {
  const VectorClock &Ct = threadClock(T);
  for (ThreadId U = 0; U != Rvc.size(); ++U)
    if (Rvc.get(U) > Ct.get(U))
      return U;
  return UnknownThread;
}

template <typename EpochT>
bool BasicFastTrack<EpochT>::onRead(ThreadId T, VarId X, size_t OpIndex) {
  VarState &State = Vars[X];
  EpochT Et = epochOf(T);

  // [FT READ SAME EPOCH]: single epoch comparison, 63.4 % of reads.
  if (Options.SameEpochFastPath && State.R == Et) {
    ++Rules.ReadSameEpoch;
    return false;
  }

  bool Shared = State.R.isReadShared();

  // Optional extension (Section 3): same-epoch hit on read-shared data.
  if (Options.ExtendedSharedSameEpoch && Shared &&
      State.Rvc.get(T) == Et.clock()) {
    ++Rules.ReadSameEpoch;
    return false;
  }

  const VectorClock &Ct = threadClock(T);

  // Write-read race check: Wx ≼ Ct, O(1).
  if (!Ct.epochLeq(State.W))
    reportAccessRace(T, X, OpIndex, OpKind::Read, State.W.tid(),
                     OpKind::Write, "write-read race");

  if (Shared) {
    // [FT READ SHARED]: O(1) update of this thread's Rvc entry.
    ++Rules.ReadShared;
    State.Rvc.set(T, Ct.get(T));
    return true;
  }

  if (Options.EpochReads && Ct.epochLeq(State.R)) {
    // [FT READ EXCLUSIVE]: the previous read happens-before this one, so
    // the epoch representation still suffices.
    ++Rules.ReadExclusive;
    State.R = Et;
    return true;
  }

  // [FT READ SHARE] (SLOW PATH): concurrent reads — inflate to a vector
  // clock holding both read epochs. The Rvc buffer is recycled, but must
  // be zeroed: entries from an earlier read-shared phase predate the
  // write that deflated it and would cause false alarms if kept.
  ++Rules.ReadShare;
  State.Rvc.resetToBottom();
  State.Rvc.set(State.R.tid(), static_cast<ClockValue>(State.R.clock()));
  State.Rvc.set(T, Ct.get(T));
  State.R = EpochT::readShared();
  return true;
}

template <typename EpochT>
bool BasicFastTrack<EpochT>::onWrite(ThreadId T, VarId X, size_t OpIndex) {
  VarState &State = Vars[X];
  EpochT Et = epochOf(T);

  // [FT WRITE SAME EPOCH]: 71.0 % of writes.
  if (Options.SameEpochFastPath && State.W == Et) {
    ++Rules.WriteSameEpoch;
    return false;
  }

  const VectorClock &Ct = threadClock(T);

  // Write-write race check: Wx ≼ Ct, O(1). All prior writes are totally
  // ordered (absent detected races), so the last write epoch suffices.
  if (!Ct.epochLeq(State.W))
    reportAccessRace(T, X, OpIndex, OpKind::Write, State.W.tid(),
                     OpKind::Write, "write-write race");

  if (!State.R.isReadShared()) {
    // [FT WRITE EXCLUSIVE]: read-write check against the read epoch, O(1).
    ++Rules.WriteExclusive;
    if (!Ct.epochLeq(State.R))
      reportAccessRace(T, X, OpIndex, OpKind::Write, State.R.tid(),
                       OpKind::Read, "read-write race");
  } else {
    // [FT WRITE SHARED] (SLOW PATH): full Rvc ⊑ Ct comparison, then the
    // read state deflates back to an epoch — later accesses cannot race
    // with the discarded reads without also racing with this write.
    ++Rules.WriteShared;
    if (!State.Rvc.leq(Ct))
      reportAccessRace(T, X, OpIndex, OpKind::Write,
                       concurrentReader(State.Rvc, T), OpKind::Read,
                       "read-write race");
    State.R = EpochT();
  }
  State.W = Et;
  return true;
}

template <typename EpochT>
size_t BasicFastTrack<EpochT>::shadowBytes() const {
  size_t Bytes = VectorClockToolBase::shadowBytes();
  for (const VarState &State : Vars)
    Bytes += sizeof(VarState) + State.Rvc.memoryBytes();
  return Bytes;
}

template <typename EpochT>
uint64_t BasicFastTrack<EpochT>::inflatedReadStates() const {
  uint64_t Count = 0;
  for (const VarState &State : Vars)
    Count += State.R.isReadShared();
  return Count;
}

template <typename EpochT>
void BasicFastTrack<EpochT>::snapshotShadow(ByteWriter &Writer) const {
  snapshotClocks(Writer);
  Writer.u32(Vars.size());
  for (const VarState &State : Vars) {
    Writer.u64(static_cast<uint64_t>(State.W.raw()));
    Writer.u64(static_cast<uint64_t>(State.R.raw()));
    // The Rvc buffer only matters while the variable is read-shared;
    // skipping it otherwise keeps checkpoints proportional to inflated
    // state, not variable count.
    if (State.R.isReadShared())
      writeClock(Writer, State.Rvc);
  }
  Writer.u64(Rules.ReadSameEpoch);
  Writer.u64(Rules.ReadShared);
  Writer.u64(Rules.ReadExclusive);
  Writer.u64(Rules.ReadShare);
  Writer.u64(Rules.WriteSameEpoch);
  Writer.u64(Rules.WriteExclusive);
  Writer.u64(Rules.WriteShared);
}

template <typename EpochT>
bool BasicFastTrack<EpochT>::restoreShadow(ByteReader &Reader) {
  if (!restoreClocks(Reader))
    return false;
  if (Reader.u32() != Vars.size())
    return false;
  using RawT = decltype(EpochT().raw());
  for (VarState &State : Vars) {
    State.W = EpochT::fromRaw(static_cast<RawT>(Reader.u64()));
    State.R = EpochT::fromRaw(static_cast<RawT>(Reader.u64()));
    if (State.R.isReadShared()) {
      if (!readClock(Reader, State.Rvc))
        return false;
    } else {
      State.Rvc = VectorClock();
    }
  }
  Rules.ReadSameEpoch = Reader.u64();
  Rules.ReadShared = Reader.u64();
  Rules.ReadExclusive = Reader.u64();
  Rules.ReadShare = Reader.u64();
  Rules.WriteSameEpoch = Reader.u64();
  Rules.WriteExclusive = Reader.u64();
  Rules.WriteShared = Reader.u64();
  return !Reader.failed();
}

namespace ft {
template class BasicFastTrack<Epoch>;
template class BasicFastTrack<Epoch64>;
} // namespace ft

FT_REGISTER_FAST_REPLAY(::ft::FastTrack);
FT_REGISTER_FAST_REPLAY(::ft::FastTrack64);

FT_REGISTER_FAST_DISPATCH(::ft::FastTrack);
FT_REGISTER_FAST_DISPATCH(::ft::FastTrack64);
