//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory-governance policy and telemetry for the shadow table
/// (docs/RUNTIME.md, "Memory governance").
///
/// The paged ShadowTable makes shadow memory *compact*; this policy makes
/// it *bounded*. A governed table stamps pages with a last-touch
/// generation, compresses cold write-only pages into lossless packed
/// encodings, and — when a byte budget's high watermark trips — summarizes
/// cold pages down to a single page-granularity slot (the sound coarse
/// fold of the degradation ladder's final divisor rung: warnings may
/// coarsen to the page region, no race is missed). Everything here is a
/// deterministic function of the delivered access stream, so governed
/// captures replay to the same warnings.
///
/// The struct lives beside the table (not in framework/) so the shadow
/// layer stays self-contained; framework's DegradePolicy and the runtime's
/// OnlineOptions embed it by value.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_SHADOW_SHADOWPOLICY_H
#define FASTTRACK_SHADOW_SHADOWPOLICY_H

#include <cstdint>

namespace ft {

/// How a shadow table governs its own footprint. Default-constructed, the
/// policy is inert: no temperature stamping, no compression, no budget.
struct ShadowMemoryPolicy {
  /// Sentinel for the allocation-fault knobs below.
  static constexpr uint64_t NoFault = ~0ull;

  /// Master switch. Off = the ungoverned PR-9 table, bit for bit.
  bool Enabled = false;

  /// Byte budget for ShadowTable::memoryBytes(); 0 = compress cold pages
  /// but never shed (no watermarks).
  uint64_t BudgetBytes = 0;

  /// Watermarks as fractions of BudgetBytes. Crossing High arms pressure
  /// shedding (cold pages summarized, oldest first); shedding disarms only
  /// once the footprint falls back under Low — the hysteresis band that
  /// keeps a footprint oscillating near the budget from thrashing
  /// summarize/fault-in cycles.
  double HighWaterFrac = 1.0;
  double LowWaterFrac = 0.75;

  /// Maintenance cadence in *accesses dispatched to the tool* (not wall
  /// clock, so governance is replay-deterministic). Each tick advances the
  /// temperature generation, compresses pages cold for ColdAgeTicks
  /// generations, and re-evaluates the watermarks against exact byte
  /// counts. 0 disables maintenance (stamping still happens).
  unsigned MaintainEveryAccesses = 4096;

  /// Generations without a touch before a page is compression-cold.
  /// Must be >= 1: a page touched in the current generation is never
  /// compressed or summarized, so slot references held by an in-flight
  /// access rule cannot dangle.
  unsigned ColdAgeTicks = 2;

  /// Fault injection (runtime/FaultPlan.h): the Nth shadow page
  /// allocation (0-based; fault-ins and decompressions both count)
  /// reports failure. The table serves the access from a page-granularity
  /// summary slot instead of dereferencing a page — the deterministic
  /// stand-in for a real allocator refusal. NoFault disables.
  uint64_t FailPageAllocAt = NoFault;

  /// Fault injection: the Nth *fresh* side-store clock allocation
  /// (0-based; free-list recycling is not an allocation) reports failure.
  /// The table arms pressure shedding — which refills the free list by
  /// deflating summarized pages' handles — and retries the free list
  /// before falling back to growth. NoFault disables.
  uint64_t FailInflateAt = NoFault;
};

/// Telemetry a governed table accumulates between reset()s. Aggregated
/// into OnlineReport; per-shard instances sum with operator+=.
struct ShadowGovernorStats {
  uint64_t PagesCompressed = 0;   ///< Cold pages packed losslessly.
  uint64_t PagesDecompressed = 0; ///< Packed pages re-expanded on touch.
  uint64_t PagesFreed = 0;        ///< All-bottom cold pages released.
  uint64_t PagesSummarized = 0;   ///< Pages folded to one summary slot.
  uint64_t BudgetTrips = 0;       ///< High-watermark crossings.
  uint64_t AllocDenied = 0;       ///< Injected allocation failures taken.
  uint64_t ShadowBytesHighWater = 0; ///< Peak governed memoryBytes().

  ShadowGovernorStats &operator+=(const ShadowGovernorStats &Other) {
    PagesCompressed += Other.PagesCompressed;
    PagesDecompressed += Other.PagesDecompressed;
    PagesFreed += Other.PagesFreed;
    PagesSummarized += Other.PagesSummarized;
    BudgetTrips += Other.BudgetTrips;
    AllocDenied += Other.AllocDenied;
    // High waters are per-table peaks at different instants; summing is
    // the conservative (never-understated) aggregate across shards.
    ShadowBytesHighWater += Other.ShadowBytesHighWater;
    return *this;
  }
};

} // namespace ft

#endif // FASTTRACK_SHADOW_SHADOWPOLICY_H
