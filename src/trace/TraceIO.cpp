#include "trace/TraceIO.h"

#include <cstdio>
#include <optional>

using namespace ft;

std::string ft::serializeTrace(const Trace &T) {
  std::string Out;
  Out.reserve(T.size() * 8);
  for (const Operation &Op : T) {
    Out += opKindName(Op.Kind);
    if (Op.Kind == OpKind::Barrier) {
      for (ThreadId U : T.barrierSet(Op.Target)) {
        Out += ' ';
        Out += std::to_string(U);
      }
    } else {
      Out += ' ';
      Out += std::to_string(Op.Thread);
      if (Op.Target != NoTarget) {
        Out += ' ';
        Out += std::to_string(Op.Target);
      }
    }
    Out += '\n';
  }
  return Out;
}

namespace {

/// Splits \p Text into lines and tokens without allocation-heavy streams.
class LineLexer {
public:
  explicit LineLexer(std::string_view Text) : Rest(Text) {}

  /// Fetches the next non-empty, non-comment line; returns false at EOF.
  bool nextLine(std::vector<std::string_view> &Tokens, unsigned &LineNo) {
    while (!Rest.empty()) {
      ++Line;
      size_t Eol = Rest.find('\n');
      std::string_view Raw =
          Eol == std::string_view::npos ? Rest : Rest.substr(0, Eol);
      Rest = Eol == std::string_view::npos ? std::string_view()
                                           : Rest.substr(Eol + 1);
      size_t Hash = Raw.find('#');
      if (Hash != std::string_view::npos)
        Raw = Raw.substr(0, Hash);
      Tokens.clear();
      size_t Pos = 0;
      while (Pos < Raw.size()) {
        while (Pos < Raw.size() && (Raw[Pos] == ' ' || Raw[Pos] == '\t' ||
                                    Raw[Pos] == '\r'))
          ++Pos;
        size_t Start = Pos;
        while (Pos < Raw.size() && Raw[Pos] != ' ' && Raw[Pos] != '\t' &&
               Raw[Pos] != '\r')
          ++Pos;
        if (Pos > Start)
          Tokens.push_back(Raw.substr(Start, Pos - Start));
      }
      if (!Tokens.empty()) {
        LineNo = Line;
        return true;
      }
    }
    return false;
  }

private:
  std::string_view Rest;
  unsigned Line = 0;
};

std::optional<uint32_t> parseU32(std::string_view Tok) {
  if (Tok.empty() || Tok.size() > 10)
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Tok) {
    if (C < '0' || C > '9')
      return std::nullopt;
    Value = Value * 10 + (C - '0');
  }
  if (Value > 0xffffffffULL)
    return std::nullopt;
  return static_cast<uint32_t>(Value);
}

std::optional<OpKind> kindFromName(std::string_view Name) {
  static const std::pair<const char *, OpKind> Names[] = {
      {"rd", OpKind::Read},          {"wr", OpKind::Write},
      {"acq", OpKind::Acquire},      {"rel", OpKind::Release},
      {"fork", OpKind::Fork},        {"join", OpKind::Join},
      {"vrd", OpKind::VolatileRead}, {"vwr", OpKind::VolatileWrite},
      {"barrier", OpKind::Barrier},  {"abegin", OpKind::AtomicBegin},
      {"aend", OpKind::AtomicEnd},
  };
  for (const auto &[Str, Kind] : Names)
    if (Name == Str)
      return Kind;
  return std::nullopt;
}

} // namespace

bool ft::parseTrace(std::string_view Text, Trace &Out, std::string &Error) {
  Out.clear();
  LineLexer Lexer(Text);
  std::vector<std::string_view> Tokens;
  unsigned LineNo = 0;
  auto fail = [&](const std::string &Message) {
    Error = "line " + std::to_string(LineNo) + ": " + Message;
    return false;
  };

  while (Lexer.nextLine(Tokens, LineNo)) {
    auto Kind = kindFromName(Tokens[0]);
    if (!Kind)
      return fail("unknown operation '" + std::string(Tokens[0]) + "'");

    if (*Kind == OpKind::Barrier) {
      if (Tokens.size() < 2)
        return fail("barrier needs at least one thread id");
      std::vector<ThreadId> Set;
      for (size_t I = 1; I != Tokens.size(); ++I) {
        auto Tid = parseU32(Tokens[I]);
        if (!Tid)
          return fail("bad thread id '" + std::string(Tokens[I]) + "'");
        Set.push_back(*Tid);
      }
      Out.appendBarrier(Set);
      continue;
    }

    bool HasTarget =
        *Kind != OpKind::AtomicBegin && *Kind != OpKind::AtomicEnd;
    size_t Expected = HasTarget ? 3 : 2;
    if (Tokens.size() != Expected)
      return fail("expected " + std::to_string(Expected - 1) +
                  " operand(s) for '" + std::string(Tokens[0]) + "'");

    auto Tid = parseU32(Tokens[1]);
    if (!Tid)
      return fail("bad thread id '" + std::string(Tokens[1]) + "'");
    uint32_t Target = NoTarget;
    if (HasTarget) {
      auto Parsed = parseU32(Tokens[2]);
      if (!Parsed)
        return fail("bad target id '" + std::string(Tokens[2]) + "'");
      Target = *Parsed;
    }
    Out.append(Operation(*Kind, *Tid, Target));
  }
  return true;
}

bool ft::saveTraceFile(const std::string &Path, const Trace &T,
                       std::string &Error) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  std::string Text = serializeTrace(T);
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  std::fclose(File);
  if (Written != Text.size()) {
    Error = "short write to '" + Path + "'";
    return false;
  }
  return true;
}

bool ft::loadTraceFile(const std::string &Path, Trace &Out,
                       std::string &Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Error = "cannot open '" + Path + "' for reading";
    return false;
  }
  std::string Text;
  char Buf[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Text.append(Buf, Got);
  std::fclose(File);
  return parseTrace(Text, Out, Error);
}
