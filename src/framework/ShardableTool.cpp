#include "framework/ShardableTool.h"

using namespace ft;

ShardableTool::~ShardableTool() = default;
