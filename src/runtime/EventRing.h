//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread event channel: a bounded single-producer single-consumer
/// ring buffer carrying instrumentation events from one application thread
/// to the sequencer.
///
/// One ring per instrumented thread keeps the hot emit path free of
/// cross-thread contention: the producer touches only its own tail (and
/// reads the consumer's head with acquire ordering), the sequencer only
/// its own heads. The bound is the backpressure mechanism — a thread that
/// outruns the detector parks in emit() until the sequencer drains, so
/// detection memory stays O(threads × capacity) no matter how fast the
/// application generates events (the C11Tester/RoadRunner budgeting
/// discipline, not an unbounded log).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_RUNTIME_EVENTRING_H
#define FASTTRACK_RUNTIME_EVENTRING_H

#include "trace/Operation.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

namespace ft::runtime {

/// One instrumentation event in flight. The producing thread is implied
/// by the ring it travels through; Seq is the global total-order ticket
/// the sequencer merges on.
struct OnlineEvent {
  uint64_t Seq = 0;
  OpKind Kind = OpKind::Read;
  uint32_t Target = 0;
};

/// Bounded SPSC ring of OnlineEvents. Capacity is rounded up to a power
/// of two. All cross-thread hand-off is acquire/release on Head/Tail, so
/// the ring is data-race-free by construction (certified by the CI TSan
/// job, which runs real producer threads against a real sequencer).
class EventRing {
public:
  explicit EventRing(size_t Capacity) {
    size_t Pow2 = 1;
    while (Pow2 < Capacity)
      Pow2 <<= 1;
    Buffer.resize(Pow2);
    Mask = Pow2 - 1;
  }

  EventRing(const EventRing &) = delete;
  EventRing &operator=(const EventRing &) = delete;

  size_t capacity() const { return Buffer.size(); }

  // --- producer side ---

  /// True when push() may be called. The producer owns Tail, so a true
  /// result cannot be invalidated by the consumer (draining only makes
  /// more room).
  bool hasSpace() const {
    return Tail.load(std::memory_order_relaxed) -
               Head.load(std::memory_order_acquire) <
           Buffer.size();
  }

  /// Appends \p E. Precondition: hasSpace().
  void push(const OnlineEvent &E) {
    uint64_t T = Tail.load(std::memory_order_relaxed);
    assert(T - Head.load(std::memory_order_acquire) < Buffer.size() &&
           "push on a full ring");
    Buffer[T & Mask] = E;
    Tail.store(T + 1, std::memory_order_release);
  }

  // --- consumer side ---

  /// Returns the oldest event without consuming it, or nullptr when the
  /// ring is empty. The slot stays valid until the matching pop().
  const OnlineEvent *peek() const {
    uint64_t H = Head.load(std::memory_order_relaxed);
    if (H == Tail.load(std::memory_order_acquire))
      return nullptr;
    return &Buffer[H & Mask];
  }

  /// Consumes the event peek() returned.
  void pop() {
    uint64_t H = Head.load(std::memory_order_relaxed);
    assert(H != Tail.load(std::memory_order_acquire) && "pop on empty ring");
    Head.store(H + 1, std::memory_order_release);
  }

  bool empty() const {
    return Head.load(std::memory_order_acquire) ==
           Tail.load(std::memory_order_acquire);
  }

private:
  std::vector<OnlineEvent> Buffer;
  size_t Mask = 0;
  std::atomic<uint64_t> Head{0}; ///< Next slot to consume (sequencer).
  std::atomic<uint64_t> Tail{0}; ///< Next slot to fill (owning thread).
};

} // namespace ft::runtime

#endif // FASTTRACK_RUNTIME_EVENTRING_H
