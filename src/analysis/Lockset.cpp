#include "analysis/Lockset.h"

using namespace ft;
using namespace ft::analysis;
using namespace ft::lang;

namespace {

std::set<uint32_t> intersect(const std::set<uint32_t> &A,
                             const std::set<uint32_t> &B) {
  std::set<uint32_t> Out;
  for (uint32_t X : A)
    if (B.count(X))
      Out.insert(X);
  return Out;
}

} // namespace

LocksetInfo ft::analysis::computeLocksets(const Program &P,
                                          const ProgramFacts &Facts) {
  const size_t N = P.Functions.size();
  LocksetInfo Info;

  std::set<uint32_t> Top;
  for (uint32_t L = 0; L != P.Locks.size(); ++L)
    Top.insert(L);

  // Decreasing fixpoint from ⊤; main enters from the system with no
  // locks held, so it is pinned to ∅ whatever calls it.
  Info.ContextLocks.assign(N, Top);
  Info.ContextLocks[P.MainIndex].clear();
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (uint32_t F = 0; F != N; ++F) {
      if (F == static_cast<uint32_t>(P.MainIndex))
        continue;
      std::set<uint32_t> Ctx = Top;
      for (size_t EI : Facts.EdgesInto[F]) {
        const CallEdgeFact &E = Facts.Edges[EI];
        std::set<uint32_t> Contribution;
        if (!E.IsSpawn) {
          Contribution = Info.ContextLocks[E.Caller];
          Contribution.insert(E.HeldWithin.begin(), E.HeldWithin.end());
        }
        Ctx = intersect(Ctx, Contribution);
      }
      if (Ctx != Info.ContextLocks[F]) {
        Info.ContextLocks[F] = std::move(Ctx);
        Changed = true;
      }
    }
  }

  Info.SiteLocks.reserve(Facts.Sites.size());
  for (const AccessSiteFact &Site : Facts.Sites) {
    std::set<uint32_t> Held = Info.ContextLocks[Site.Fn];
    Held.insert(Site.HeldWithin.begin(), Site.HeldWithin.end());
    Info.SiteLocks.push_back(std::move(Held));
  }
  return Info;
}
