#include "shadow/ShadowTable.h"

#include <algorithm>

using namespace ft;

template <typename EpochT>
typename ShadowTable<EpochT>::Page *ShadowTable<EpochT>::faultIn(size_t PI) {
  // Value-initialization zeroes every slot: raw 0 is ⊥e for both fields,
  // so a fresh page is indistinguishable from never-accessed state.
  assert(!EagerBlock && "eager tables have every page resident");
  Page *P = new Page();
  Dir[PI] = P;
  ++Resident;
  return P;
}

/// The non-resident arm of slot(): decides how a region with a null
/// directory entry serves the access. Never-accessed regions fault a
/// fresh page in; compressed pages re-expand bit-identically; summarized
/// regions answer from their single page-granularity slot. The injected
/// allocation-failure gate sits in front of both page-allocating arms —
/// a denied allocation is served at page granularity instead of
/// crashing, which is the whole OOM-robustness contract.
template <typename EpochT>
typename ShadowTable<EpochT>::Slot &ShadowTable<EpochT>::coldSlot(VarId X,
                                                                  size_t PI) {
  PageMeta &M = Meta[PI];
  if (Governed)
    M.LastTouch = Gen;
  if (M.State == ShadowPageState::Summarized)
    return M.Summary;
  if (M.State == ShadowPageState::Compressed) {
    if (takePageAllocFault()) {
      summarizePage(PI); // folds the packed image; allocates no page
      return M.Summary;
    }
    return decompressPage(PI)->Slots[X & PageMask];
  }
  assert(M.State == ShadowPageState::Untouched);
  if (Governed && takePageAllocFault()) {
    M.State = ShadowPageState::Summarized;
    M.Summary = Slot{};
    ++Stats.PagesSummarized;
    return M.Summary;
  }
  Page *P = faultIn(PI);
  M.State = ShadowPageState::Resident;
  if (Governed) {
    Bytes += sizeof(Page);
    notePressure();
  }
  return P->Slots[X & PageMask];
}

template <typename EpochT>
void ShadowTable<EpochT>::materializeEagerly(size_t NumPages) {
  static_assert(sizeof(Page) == PageSize * sizeof(Slot),
                "pages must tile so the eager block's slots are flat");
  EagerBlock.reset(new Page[NumPages]()); // value-init: every slot ⊥
  for (size_t PI = 0; PI != NumPages; ++PI)
    Dir[PI] = &EagerBlock[PI];
  FlatSlots = EagerBlock[0].Slots;
  Resident = NumPages;
}

template <typename EpochT> void ShadowTable<EpochT>::releasePages() noexcept {
  if (EagerBlock) {
    EagerBlock.reset();
    FlatSlots = nullptr;
  } else {
    for (Page *P : Dir)
      delete P;
  }
  Dir.clear();
  Meta.clear();
  Resident = 0;
}

template <typename EpochT> bool ShadowTable<EpochT>::takePageAllocFault() {
  if (__builtin_expect(PageAllocs++ != Policy.FailPageAllocAt, 1))
    return false;
  ++Stats.AllocDenied;
  return true;
}

template <typename EpochT> void ShadowTable<EpochT>::takeInflateFault() {
  if (__builtin_expect(InflateAllocs++ != Policy.FailInflateAt, 1))
    return;
  ++Stats.AllocDenied;
  // Denied growth: shed cold pages until a deflated handle lands on the
  // free list (summaries join read histories, parking their handles), so
  // the caller's inflateRaw() recycles instead of growing. If nothing
  // cold holds a handle the fallback is growth — detection beats death.
  shedColdPages(/*StopAtFreeHandle=*/true);
}

/// Re-evaluates the watermarks against the running byte estimate. Armed
/// shedding sheds down to the low watermark and disarms only once under
/// it — the hysteresis band that keeps a footprint oscillating near the
/// budget from thrashing summarize/fault-in cycles.
template <typename EpochT> void ShadowTable<EpochT>::notePressure() {
  if (Bytes > Stats.ShadowBytesHighWater)
    Stats.ShadowBytesHighWater = Bytes;
  if (Policy.BudgetBytes == 0)
    return;
  if (!SheddingArmed && Bytes > highWaterBytes()) {
    SheddingArmed = true;
    ++Stats.BudgetTrips;
  }
  if (SheddingArmed && !ShedStalled)
    shedColdPages(/*StopAtFreeHandle=*/false);
  if (SheddingArmed && Bytes <= lowWaterBytes())
    SheddingArmed = false;
}

template <typename EpochT> void ShadowTable<EpochT>::maintain() {
  if (!Governed)
    return;
  ++Gen;
  ShedStalled = false; // a new generation creates new cold candidates
  const unsigned Age = std::max(1u, Policy.ColdAgeTicks);
  for (size_t PI = 0, E = Dir.size(); PI != E; ++PI) {
    PageMeta &M = Meta[PI];
    // Compress exactly when the page crosses the cold threshold: a page
    // that stays cold was already tried once at the boundary (and either
    // packed or proved incompressible), so the sweep never rescans the
    // long-cold tail.
    if (M.State == ShadowPageState::Resident && M.LastTouch + Age == Gen)
      compressPage(PI);
  }
  // Exact resync: container capacities and side-store churn drift the
  // running estimate between ticks; governance decisions re-anchor here.
  Bytes = memoryBytes();
  notePressure();
}

/// Tries to pack resident page \p PI. Only write-only pages qualify (any
/// read state means the page is warm in a way packing can't serve), and
/// the occupied write epochs must span at most MaxDelta raw units so one
/// byte per slot reconstructs them exactly. All-⊥ pages are released
/// outright — indistinguishable from never-accessed state.
template <typename EpochT> bool ShadowTable<EpochT>::compressPage(size_t PI) {
  Page *P = Dir[PI];
  assert(P && !EagerBlock);
  const uint32_t Used = slotsInPage(PI);
  RawT MinW = 0, MaxW = 0;
  bool Any = false;
  for (uint32_t I = 0; I != Used; ++I) {
    const Slot &S = P->Slots[I];
    if (S.R.raw() != 0)
      return false; // read state present: not a write-only page
    const RawT W = S.W.raw();
    if (W == 0)
      continue;
    if (!Any) {
      MinW = MaxW = W;
      Any = true;
    } else {
      MinW = std::min(MinW, W);
      MaxW = std::max(MaxW, W);
    }
  }
  PageMeta &M = Meta[PI];
  if (!Any) {
    delete P;
    Dir[PI] = nullptr;
    --Resident;
    Bytes -= sizeof(Page);
    M.State = ShadowPageState::Untouched;
    ++Stats.PagesFreed;
    return true;
  }
  if (MaxW - MinW > MaxDelta)
    return false; // epoch span too wide for byte deltas
  auto C = std::make_unique<CompressedPage>();
  C->BaseW = MinW;
  const bool Uniform = MinW == MaxW;
  if (!Uniform)
    C->Deltas.reset(new uint8_t[PageSize]());
  for (uint32_t I = 0; I != Used; ++I) {
    const RawT W = P->Slots[I].W.raw();
    if (W == 0)
      continue;
    C->Occupied[I >> 6] |= uint64_t(1) << (I & 63);
    if (!Uniform)
      C->Deltas[I] = static_cast<uint8_t>(W - MinW);
  }
  delete P;
  Dir[PI] = nullptr;
  --Resident;
  Bytes -= sizeof(Page);
  Bytes += compressedBytes(*C);
  M.Packed = std::move(C);
  M.State = ShadowPageState::Compressed;
  ++Stats.PagesCompressed;
  return true;
}

template <typename EpochT>
typename ShadowTable<EpochT>::Page *
ShadowTable<EpochT>::decompressPage(size_t PI) {
  PageMeta &M = Meta[PI];
  assert(M.State == ShadowPageState::Compressed);
  Page *P = faultIn(PI);
  const CompressedPage &C = *M.Packed;
  for (uint32_t I = 0; I != PageSize; ++I)
    if (C.Occupied[I >> 6] & (uint64_t(1) << (I & 63)))
      P->Slots[I].W = EpochT::fromRaw(
          C.Deltas ? static_cast<RawT>(C.BaseW + C.Deltas[I]) : C.BaseW);
  Bytes -= compressedBytes(C);
  Bytes += sizeof(Page);
  M.Packed.reset();
  M.State = ShadowPageState::Resident;
  ++Stats.PagesDecompressed;
  notePressure();
  return Dir[PI];
}

/// Reduces a joined per-tid history to the cheapest faithful epoch form:
/// ⊥ when empty, c@t when a single thread contributed, otherwise an
/// inflated side-store clock. Clock-0 entries never constrain a ≼ check
/// (every clock is ≥ 0), so they are dropped — which is what lets a
/// single-writer page keep an epoch W instead of inflating.
template <typename EpochT>
EpochT ShadowTable<EpochT>::foldClock(VectorClock &&VC) {
  ThreadId Tid = 0;
  unsigned NonZero = 0;
  for (ThreadId U = 0; U != VC.size(); ++U)
    if (VC.get(U) != 0) {
      ++NonZero;
      Tid = U;
    }
  if (NonZero == 0)
    return EpochT();
  if (NonZero == 1)
    return EpochT::make(Tid, static_cast<RawT>(VC.get(Tid)));
  EpochT H = inflateRaw();
  Clocks[handleOf(H)] = std::move(VC);
  return H;
}

/// Folds page \p PI (resident or compressed) into one page-granularity
/// summary slot: W and R become the per-tid joins of every slot's write
/// and read history — exactly the shadow-side image of the degradation
/// ladder's ShadowPageVars rung. Joining only grows the histories a
/// later access is checked against, so no race is missed; distinct
/// variables' histories may now alias, so warnings can coarsen to the
/// page region (and that is the documented, reported precision loss).
template <typename EpochT> void ShadowTable<EpochT>::summarizePage(size_t PI) {
  PageMeta &M = Meta[PI];
  std::vector<Slot> Buf;
  const Slot *Slots = nullptr;
  const uint32_t Used = slotsInPage(PI);
  const bool WasResident = M.State == ShadowPageState::Resident;
  if (WasResident) {
    assert(Dir[PI]);
    Slots = Dir[PI]->Slots;
  } else {
    assert(M.State == ShadowPageState::Compressed);
    Buf.resize(PageSize);
    const CompressedPage &C = *M.Packed;
    for (uint32_t I = 0; I != PageSize; ++I)
      if (C.Occupied[I >> 6] & (uint64_t(1) << (I & 63)))
        Buf[I].W = EpochT::fromRaw(
            C.Deltas ? static_cast<RawT>(C.BaseW + C.Deltas[I]) : C.BaseW);
    Slots = Buf.data();
    Bytes -= compressedBytes(C);
    M.Packed.reset();
  }

  VectorClock WJoin, RJoin;
  for (uint32_t I = 0; I != Used; ++I) {
    const Slot &S = Slots[I];
    if (S.W.raw() != 0) {
      assert(!isInflated(S.W) && "pages never hold inflated write state");
      if (WJoin.get(S.W.tid()) < static_cast<ClockValue>(S.W.clock()))
        WJoin.set(S.W.tid(), static_cast<ClockValue>(S.W.clock()));
    }
    if (S.R.raw() == 0)
      continue;
    if (isInflated(S.R)) {
      RJoin.joinWith(Clocks[handleOf(S.R)]);
      deflate(S.R); // handle parks on the free list for reuse
    } else if (RJoin.get(S.R.tid()) < static_cast<ClockValue>(S.R.clock())) {
      RJoin.set(S.R.tid(), static_cast<ClockValue>(S.R.clock()));
    }
  }

  Slot Sum;
  Sum.W = foldClock(std::move(WJoin));
  Sum.R = foldClock(std::move(RJoin));
  if (WasResident) {
    delete Dir[PI];
    Dir[PI] = nullptr;
    --Resident;
    Bytes -= sizeof(Page);
  }
  M.State = ShadowPageState::Summarized;
  M.Summary = Sum;
  ++Stats.PagesSummarized;
}

/// Summarizes cold pages oldest-first. Only pages untouched in the
/// current generation are candidates, so a slot reference held by the
/// in-flight access rule (its page was just stamped) can never dangle.
/// With \p StopAtFreeHandle the pass stops as soon as a deflated handle
/// is available (the inflate-denial path); otherwise it stops at the low
/// watermark, or stalls until the next generation if everything left is
/// hot.
template <typename EpochT>
void ShadowTable<EpochT>::shedColdPages(bool StopAtFreeHandle) {
  std::vector<std::pair<uint32_t, uint32_t>> Cold;
  for (size_t PI = 0, E = Dir.size(); PI != E; ++PI) {
    const PageMeta &M = Meta[PI];
    if ((M.State == ShadowPageState::Resident ||
         M.State == ShadowPageState::Compressed) &&
        M.LastTouch < Gen)
      Cold.push_back({M.LastTouch, static_cast<uint32_t>(PI)});
  }
  // Oldest first; the page index breaks ties, so the order — and with it
  // every downstream warning — is a deterministic function of the stream.
  std::sort(Cold.begin(), Cold.end());
  const uint64_t Low = lowWaterBytes();
  for (const auto &Cand : Cold) {
    if (StopAtFreeHandle && !FreeHandles.empty())
      return;
    if (!StopAtFreeHandle && Bytes <= Low)
      return;
    summarizePage(Cand.second);
  }
  if (!StopAtFreeHandle && Bytes > Low)
    ShedStalled = true;
}

template <typename EpochT>
bool ShadowTable<EpochT>::readPageContent(size_t PI, Slot *Out) const {
  const ShadowPageState St = pageStateAt(PI);
  if (St == ShadowPageState::Untouched || St == ShadowPageState::Summarized)
    return false;
  if (const Page *P = Dir[PI]) {
    std::copy(P->Slots, P->Slots + PageSize, Out);
    return true;
  }
  std::fill(Out, Out + PageSize, Slot{});
  const CompressedPage &C = *Meta[PI].Packed;
  for (uint32_t I = 0; I != PageSize; ++I)
    if (C.Occupied[I >> 6] & (uint64_t(1) << (I & 63)))
      Out[I].W = EpochT::fromRaw(
          C.Deltas ? static_cast<RawT>(C.BaseW + C.Deltas[I]) : C.BaseW);
  return true;
}

template <typename EpochT> void ShadowTable<EpochT>::compactSideStore() {
  if (Clocks.empty())
    return;
  std::vector<VectorClock> NewClocks;
  NewClocks.reserve(Live);
  auto Renumber = [&](EpochT &R) {
    if (!isInflated(R))
      return;
    const uint32_t H = static_cast<uint32_t>(NewClocks.size());
    NewClocks.push_back(std::move(Clocks[handleOf(R)]));
    R = handleEpoch(H);
  };
  for (size_t PI = 0, E = Dir.size(); PI != E; ++PI) {
    if (!Meta.empty() && Meta[PI].State == ShadowPageState::Summarized) {
      Renumber(Meta[PI].Summary.W);
      Renumber(Meta[PI].Summary.R);
      continue;
    }
    if (Page *P = Dir[PI]) {
      const uint32_t Used = slotsInPage(PI);
      for (uint32_t I = 0; I != Used; ++I)
        Renumber(P->Slots[I].R);
    }
  }
  assert(NewClocks.size() == Live && "live handles must all be reachable");
  Clocks = std::move(NewClocks);
  FreeHandles.clear();
}

namespace ft {
template class ShadowTable<Epoch>;
template class ShadowTable<Epoch64>;
} // namespace ft
