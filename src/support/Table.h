//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal aligned ASCII table printer used by the benchmark harnesses to
/// regenerate the paper's tables on stdout.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_SUPPORT_TABLE_H
#define FASTTRACK_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace ft {

/// Accumulates rows of cells, then renders them with per-column alignment.
///
/// The first row added with addHeader() is underlined; numeric-looking cells
/// are right-aligned, text cells left-aligned.
class Table {
public:
  /// Adds the header row.
  void addHeader(std::vector<std::string> Cells);

  /// Adds a data row.
  void addRow(std::vector<std::string> Cells);

  /// Adds a horizontal separator at the current position.
  void addSeparator();

  /// Renders the table to a string terminated with a newline.
  std::string render() const;

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsHeader = false;
    bool IsSeparator = false;
  };
  std::vector<Row> Rows;
};

} // namespace ft

#endif // FASTTRACK_SUPPORT_TABLE_H
