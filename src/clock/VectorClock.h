//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks (Mattern 1988), the classical happens-before
/// representation reviewed in Section 2.2 of the paper:
///
///   V1 ⊑ V2   iff  ∀t. V1(t) ≤ V2(t)
///   V1 ⊔ V2   =    λt. max(V1(t), V2(t))
///   ⊥V        =    λt. 0
///   inc_t(V)  =    λu. if u = t then V(u) + 1 else V(u)
///
/// Every O(n)-time operation increments the global ClockStats counters so
/// Table 2 can be regenerated. Entries beyond the stored size are
/// implicitly zero, which keeps clocks for short-lived threads small.
///
/// Storage layout: the first InlineCapacity entries live inside the
/// object itself (no heap traffic for the thread counts that dominate
/// the bench suite); wider clocks move to a power-of-two heap block from
/// ClockArena. Whichever buffer is active, every entry in
/// [size(), capacity) is kept zero — the "zero tail" invariant. That is
/// what lets joinWith/leq/copyFrom run branch-free loops padded to a
/// multiple of 4 lanes with no scalar remainder: reading a neighbour's
/// tail yields zeros, and writing max(x, 0) into our own tail rewrites
/// zeros, so the padded lanes are semantically inert and the compiler
/// auto-vectorizes the whole loop (bench_clock_micro pins the resulting
/// throughput).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CLOCK_VECTORCLOCK_H
#define FASTTRACK_CLOCK_VECTORCLOCK_H

#include "clock/ClockArena.h"
#include "clock/ClockStats.h"
#include "clock/Epoch.h"
#include "trace/Ids.h"

#include <cstdint>
#include <cstring>
#include <string>

namespace ft {

/// The clock value type; 32 bits matches the paper's 24-bit packed clocks
/// with headroom (epoch packing asserts the 24-bit bound separately).
using ClockValue = uint32_t;

class VectorClock;
bool operator==(const VectorClock &A, const VectorClock &B);

/// A growable vector clock with implicit-zero semantics past its size.
class VectorClock {
public:
  /// Entries stored inline before the clock spills to a heap block.
  /// Eight covers every thread count the standard workloads use, and is
  /// a multiple of the 4-lane padding the vector loops rely on.
  static constexpr uint32_t InlineCapacity = 8;

  /// Builds ⊥V. No buffer is allocated until the clock becomes nonzero.
  VectorClock() = default;

  /// Builds ⊥V pre-sized for \p NumThreads threads (counted as one
  /// allocation when nonzero).
  explicit VectorClock(unsigned NumThreads) { growTo(NumThreads); }

  VectorClock(const VectorClock &Other) { assignFrom(Other); }

  VectorClock &operator=(const VectorClock &Other) {
    assignFrom(Other);
    return *this;
  }

  VectorClock(VectorClock &&Other) noexcept
      : Store(Other.Store), Count(Other.Count), Cap(Other.Cap) {
    Other.Store = Storage{};
    Other.Count = 0;
    Other.Cap = InlineCapacity;
  }

  VectorClock &operator=(VectorClock &&Other) noexcept {
    if (this == &Other)
      return *this;
    releaseBuffer();
    Store = Other.Store;
    Count = Other.Count;
    Cap = Other.Cap;
    Other.Store = Storage{};
    Other.Count = 0;
    Other.Cap = InlineCapacity;
    return *this;
  }

  ~VectorClock() { releaseBuffer(); }

  /// Returns V(t); zero for entries past the stored size.
  ClockValue get(ThreadId T) const { return T < Count ? data()[T] : 0; }

  /// Sets V(t) := Clock, growing as needed.
  void set(ThreadId T, ClockValue Clock) {
    growTo(T + 1);
    data()[T] = Clock;
  }

  /// inc_t: increments this clock's own entry for \p T.
  void inc(ThreadId T) {
    growTo(T + 1);
    ++data()[T];
  }

  /// ⊔: joins \p Other into this clock in place. O(n); counted.
  void joinWith(const VectorClock &Other) {
    ++clockStats().JoinOps;
    const uint32_t N = Other.Count;
    if (N == 0)
      return;
    growTo(N);
    ClockValue *A = data();
    const ClockValue *B = Other.data();
    // Padded to 4 lanes: B's tail reads zeros, A's tail rewrites zeros.
    for (uint32_t I = 0, R = roundUp4(N); I != R; ++I)
      A[I] = A[I] < B[I] ? B[I] : A[I];
  }

  /// ⊑: pointwise ≤ against \p Other. O(n); counted.
  bool leq(const VectorClock &Other) const {
    ++clockStats().CompareOps;
    const ClockValue *A = data();
    const ClockValue *B = Other.data();
    const uint32_t R = roundUp4(Count < Other.Count ? Count : Other.Count);
    // Branch-free: accumulate violations instead of early-exiting, so
    // the loop has a constant trip count and vectorizes.
    ClockValue Gt = 0;
    for (uint32_t I = 0; I != R; ++I)
      Gt |= ClockValue(A[I] > B[I]);
    // Entries we store past Other's padded width face implicit zeros on
    // the right-hand side, so any nonzero one is a violation.
    ClockValue Tail = 0;
    for (uint32_t I = R, E = roundUp4(Count); I < E; ++I)
      Tail |= A[I];
    return (Gt | Tail) == 0;
  }

  /// Copies \p Other into this clock. O(n); counted. (operator= does the
  /// same; this spelling documents intent at call sites.)
  void copyFrom(const VectorClock &Other) { assignFrom(Other); }

  /// Zeroes every entry, keeping the buffer for reuse. Not counted: this
  /// models FastTrack recycling a read vector clock (Figure 5 reuses
  /// x.Rvc when a variable becomes read-shared again).
  void resetToBottom() {
    std::memset(data(), 0, size_t(Count) * sizeof(ClockValue));
  }

  /// ≼: epoch-to-vector-clock comparison, c@t ≼ V iff c ≤ V(t). O(1) and
  /// deliberately *not* counted — this is FastTrack's constant-time fast
  /// path.
  template <typename RawT, unsigned TidBits>
  bool epochLeq(BasicEpoch<RawT, TidBits> E) const {
    return E.clock() <= get(E.tid());
  }

  /// Returns the epoch E(t) = V(t)@t of this clock for thread \p T.
  Epoch epochOf(ThreadId T) const { return Epoch::make(T, get(T)); }

  /// Number of stored entries (trailing entries may still be zero).
  unsigned size() const { return Count; }

  /// True when every entry is zero.
  bool isBottom() const {
    ClockValue Any = 0;
    const ClockValue *A = data();
    for (uint32_t I = 0, E = roundUp4(Count); I != E; ++I)
      Any |= A[I];
    return Any == 0;
  }

  /// Heap bytes owned by this clock (for memory-overhead accounting).
  /// Inline storage is part of the object and reports zero.
  size_t memoryBytes() const {
    return Cap > InlineCapacity ? size_t(Cap) * sizeof(ClockValue) : 0;
  }

  /// Renders like "<4,8,0>" showing \p MinEntries entries at least.
  std::string str(unsigned MinEntries = 0) const;

private:
  union Storage {
    ClockValue Inline[InlineCapacity];
    ClockValue *Heap;
  };

  static constexpr uint32_t roundUp4(uint32_t N) { return (N + 3u) & ~3u; }

  ClockValue *data() { return Cap <= InlineCapacity ? Store.Inline : Store.Heap; }
  const ClockValue *data() const {
    return Cap <= InlineCapacity ? Store.Inline : Store.Heap;
  }

  void releaseBuffer() noexcept {
    if (Cap > InlineCapacity)
      ClockArena::release(Store.Heap, Cap);
  }

  /// Extends the stored size to \p Size (no-op when already that wide).
  /// An empty clock becoming nonempty counts as the allocation; growing
  /// an already-materialized clock does not, since steady-state growth
  /// recycles arena blocks instead of hitting the global allocator.
  void growTo(uint32_t Size) {
    if (Size <= Count)
      return;
    if (Count == 0)
      ++clockStats().Allocations;
    if (Size <= Cap) {
      Count = Size; // Zero-tail invariant: [old Count, Cap) already zero.
      return;
    }
    spillTo(Size);
  }

  /// Copy assignment shared by operator=, copyFrom and the copy
  /// constructor, so ClockStats sees exactly one CopyOp per nonempty
  /// copy no matter which spelling the caller used.
  void assignFrom(const VectorClock &Other) {
    if (this == &Other)
      return;
    const uint32_t N = Other.Count;
    if (N > Cap) {
      assignGrow(Other);
      return;
    }
    if (N != 0) {
      ++clockStats().CopyOps;
      if (Count == 0)
        ++clockStats().Allocations;
    }
    ClockValue *A = data();
    if (Count > N)
      std::memset(A + N, 0, size_t(Count - N) * sizeof(ClockValue));
    std::memcpy(A, Other.data(), size_t(N) * sizeof(ClockValue));
    Count = N;
  }

  void spillTo(uint32_t Size);          // Re-buffer to hold Size entries.
  void assignGrow(const VectorClock &); // assignFrom when Other overflows Cap.

  Storage Store{};
  uint32_t Count = 0;
  uint32_t Cap = InlineCapacity;
};

} // namespace ft

#endif // FASTTRACK_CLOCK_VECTORCLOCK_H
