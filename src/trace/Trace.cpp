#include "trace/Trace.h"

#include <algorithm>

using namespace ft;

void Trace::append(const Operation &Op) {
  assert(Op.Kind != OpKind::Barrier &&
         "use appendBarrier for barrier operations");
  noteThread(Op.Thread);
  switch (Op.Kind) {
  case OpKind::Read:
  case OpKind::Write:
    if (Op.Target + 1 > NumVars)
      NumVars = Op.Target + 1;
    break;
  case OpKind::Acquire:
  case OpKind::Release:
    if (Op.Target + 1 > NumLocks)
      NumLocks = Op.Target + 1;
    break;
  case OpKind::Fork:
  case OpKind::Join:
    noteThread(Op.Target);
    break;
  case OpKind::VolatileRead:
  case OpKind::VolatileWrite:
    if (Op.Target + 1 > NumVolatiles)
      NumVolatiles = Op.Target + 1;
    break;
  case OpKind::Barrier:
  case OpKind::AtomicBegin:
  case OpKind::AtomicEnd:
    break;
  }
  Ops.push_back(Op);
}

void Trace::appendRun(const Operation *Run, size_t N) {
  Ops.reserve(Ops.size() + N);
  for (size_t I = 0; I != N; ++I) {
    const Operation &Op = Run[I];
    assert(Op.Kind != OpKind::Barrier &&
           "use appendBarrier for barrier operations");
    noteThread(Op.Thread);
    switch (Op.Kind) {
    case OpKind::Read:
    case OpKind::Write:
      if (Op.Target + 1 > NumVars)
        NumVars = Op.Target + 1;
      break;
    case OpKind::Acquire:
    case OpKind::Release:
      if (Op.Target + 1 > NumLocks)
        NumLocks = Op.Target + 1;
      break;
    case OpKind::Fork:
    case OpKind::Join:
      noteThread(Op.Target);
      break;
    case OpKind::VolatileRead:
    case OpKind::VolatileWrite:
      if (Op.Target + 1 > NumVolatiles)
        NumVolatiles = Op.Target + 1;
      break;
    case OpKind::Barrier:
    case OpKind::AtomicBegin:
    case OpKind::AtomicEnd:
      break;
    }
    Ops.push_back(Op);
  }
}

Operation Trace::appendBarrier(const std::vector<ThreadId> &Threads) {
  assert(!Threads.empty() && "barrier set must be nonempty");
  std::vector<ThreadId> Sorted = Threads;
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  for (ThreadId T : Sorted)
    noteThread(T);
  uint32_t SetIndex = BarrierSets.size();
  // Reuse an identical existing set if present (barriers repeat many times).
  for (uint32_t I = 0; I != BarrierSets.size(); ++I) {
    if (BarrierSets[I] == Sorted) {
      SetIndex = I;
      break;
    }
  }
  if (SetIndex == BarrierSets.size())
    BarrierSets.push_back(Sorted);
  Operation Op(OpKind::Barrier, Sorted.front(), SetIndex);
  Ops.push_back(Op);
  return Op;
}

void Trace::clear() {
  Ops.clear();
  BarrierSets.clear();
  NumThreads = 1;
  NumVars = 0;
  NumLocks = 0;
  NumVolatiles = 0;
}
