#include "analysis/CallGraph.h"

#include <algorithm>
#include <cassert>

using namespace ft;
using namespace ft::analysis;
using namespace ft::lang;

namespace {

/// Collects sites and call/spawn edges from one function body,
/// tracking the syntactic lock nesting and loop depth.
class FactWalker {
public:
  FactWalker(Program &P, ProgramFacts &Facts) : P(P), Facts(Facts) {}

  void run() {
    Facts.EdgesInto.assign(P.Functions.size(), {});
    Facts.EdgesFrom.assign(P.Functions.size(), {});
    Facts.ContainsSpawnDirect.assign(P.Functions.size(), false);
    for (uint32_t I = 0; I != P.Globals.size(); ++I)
      Facts.GlobalOfBaseId[P.Globals[I].BaseId] = I;
    for (uint32_t I = 0; I != P.Functions.size(); ++I) {
      Fn = I;
      LockStack.clear();
      LoopDepth = 0;
      walkStmt(*P.Functions[I].Body);
    }
    for (size_t E = 0; E != Facts.Edges.size(); ++E) {
      Facts.EdgesInto[Facts.Edges[E].Callee].push_back(E);
      Facts.EdgesFrom[Facts.Edges[E].Caller].push_back(E);
    }
  }

private:
  std::vector<uint32_t> heldSet() const {
    std::vector<uint32_t> Held(LockStack);
    std::sort(Held.begin(), Held.end());
    Held.erase(std::unique(Held.begin(), Held.end()), Held.end());
    return Held;
  }

  void addSite(Expr &E, uint32_t GlobalIndex, bool IsWrite) {
    AccessSiteFact Site;
    Site.Node = &E;
    Site.Fn = Fn;
    Site.GlobalIndex = GlobalIndex;
    Site.IsWrite = IsWrite;
    Site.HeldWithin = heldSet();
    Facts.Sites.push_back(std::move(Site));
  }

  void addEdge(Expr &E, bool IsSpawn) {
    CallEdgeFact Edge;
    Edge.Node = &E;
    Edge.Caller = Fn;
    Edge.Callee = E.CalleeIndex;
    Edge.IsSpawn = IsSpawn;
    Edge.InLoop = LoopDepth > 0;
    Edge.HeldWithin = heldSet();
    if (IsSpawn)
      Facts.ContainsSpawnDirect[Fn] = true;
    Facts.Edges.push_back(std::move(Edge));
  }

  void walkExpr(Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      return;
    case ExprKind::VarRef:
      if (E.Ref == RefKind::Shared)
        addSite(E, Facts.GlobalOfBaseId.at(E.RefIndex), /*IsWrite=*/false);
      return;
    case ExprKind::Index:
      walkExpr(*E.Lhs);
      addSite(E, Facts.GlobalOfBaseId.at(E.RefIndex), /*IsWrite=*/false);
      return;
    case ExprKind::Unary:
      walkExpr(*E.Lhs);
      return;
    case ExprKind::Binary:
      // The right operand of && / || runs conditionally; for must-hold
      // locksets that is irrelevant (if the access runs, the enclosing
      // syncs are held), so both sides walk uniformly.
      walkExpr(*E.Lhs);
      walkExpr(*E.Rhs);
      return;
    case ExprKind::Call:
    case ExprKind::Spawn:
      for (ExprPtr &Arg : E.Args)
        walkExpr(*Arg);
      addEdge(E, E.Kind == ExprKind::Spawn);
      return;
    }
  }

  void walkStmt(Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Block:
      for (StmtPtr &Child : S.Stmts)
        walkStmt(*Child);
      return;
    case StmtKind::DeclLocal:
      if (S.Value)
        walkExpr(*S.Value);
      return;
    case StmtKind::Assign: {
      walkExpr(*S.Value);
      Expr &Target = *S.Target;
      if (Target.Kind == ExprKind::VarRef) {
        if (Target.Ref == RefKind::Shared)
          addSite(Target, Facts.GlobalOfBaseId.at(Target.RefIndex),
                  /*IsWrite=*/true);
        return;
      }
      // Array-element store: the subscript is an ordinary read context.
      walkExpr(*Target.Lhs);
      addSite(Target, Facts.GlobalOfBaseId.at(Target.RefIndex),
              /*IsWrite=*/true);
      return;
    }
    case StmtKind::If:
      walkExpr(*S.Value);
      walkStmt(*S.Body);
      if (S.Else)
        walkStmt(*S.Else);
      return;
    case StmtKind::While:
      // The condition re-evaluates every iteration: loop context for
      // both it and the body (a spawn in either may run many times).
      ++LoopDepth;
      walkExpr(*S.Value);
      walkStmt(*S.Body);
      --LoopDepth;
      return;
    case StmtKind::Sync:
      LockStack.push_back(S.RefIndex);
      walkStmt(*S.Body);
      LockStack.pop_back();
      return;
    case StmtKind::Atomic:
      walkStmt(*S.Body);
      return;
    case StmtKind::Join:
    case StmtKind::Print:
    case StmtKind::ExprStmt:
      walkExpr(*S.Value);
      return;
    case StmtKind::Return:
      if (S.Value)
        walkExpr(*S.Value);
      return;
    case StmtKind::Await:
    case StmtKind::Wait:
    case StmtKind::Notify:
    case StmtKind::NotifyAll:
      // wait(m) releases and reacquires m, so the must-hold set at
      // every *subsequent* site is unchanged; no facts to record.
      return;
    }
  }

  Program &P;
  ProgramFacts &Facts;
  uint32_t Fn = 0;
  unsigned LoopDepth = 0;
  /// Enclosing sync statements, innermost last. Re-entrant acquisition
  /// of the same lock simply appears twice; heldSet() collapses it.
  std::vector<uint32_t> LockStack;
};

/// Does this subtree contain a Spawn, or a Call into a function that
/// may transitively spawn?
class SpawnReach {
public:
  explicit SpawnReach(const std::vector<bool> &MaySpawn)
      : MaySpawn(MaySpawn) {}

  bool stmt(const Stmt &S) const {
    switch (S.Kind) {
    case StmtKind::Block:
      for (const StmtPtr &Child : S.Stmts)
        if (stmt(*Child))
          return true;
      return false;
    case StmtKind::DeclLocal:
    case StmtKind::Join:
    case StmtKind::Print:
    case StmtKind::ExprStmt:
    case StmtKind::Return:
      return S.Value && expr(*S.Value);
    case StmtKind::Assign:
      return expr(*S.Value) ||
             (S.Target->Lhs && expr(*S.Target->Lhs));
    case StmtKind::If:
      return expr(*S.Value) || stmt(*S.Body) || (S.Else && stmt(*S.Else));
    case StmtKind::While:
      return expr(*S.Value) || stmt(*S.Body);
    case StmtKind::Sync:
    case StmtKind::Atomic:
      return stmt(*S.Body);
    case StmtKind::Await:
    case StmtKind::Wait:
    case StmtKind::Notify:
    case StmtKind::NotifyAll:
      return false;
    }
    return false;
  }

  bool expr(const Expr &E) const {
    switch (E.Kind) {
    case ExprKind::IntLit:
    case ExprKind::VarRef:
      return false;
    case ExprKind::Index:
    case ExprKind::Unary:
      return E.Lhs && expr(*E.Lhs);
    case ExprKind::Binary:
      return expr(*E.Lhs) || expr(*E.Rhs);
    case ExprKind::Spawn:
      return true;
    case ExprKind::Call:
      if (MaySpawn[E.CalleeIndex])
        return true;
      for (const ExprPtr &Arg : E.Args)
        if (expr(*Arg))
          return true;
      return false;
    }
    return false;
  }

private:
  const std::vector<bool> &MaySpawn;
};

/// Sets PreFork / PreForkCall on every fact whose Node lives in the
/// given subtree.
class PreForkMarker {
public:
  explicit PreForkMarker(ProgramFacts &Facts) : Facts(Facts) {
    for (size_t I = 0; I != Facts.Sites.size(); ++I)
      SiteByNode[Facts.Sites[I].Node] = I;
    for (size_t I = 0; I != Facts.Edges.size(); ++I)
      EdgeByNode[Facts.Edges[I].Node] = I;
  }

  void markStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Block:
      for (const StmtPtr &Child : S.Stmts)
        markStmt(*Child);
      return;
    case StmtKind::DeclLocal:
    case StmtKind::Join:
    case StmtKind::Print:
    case StmtKind::ExprStmt:
    case StmtKind::Return:
      if (S.Value)
        markExpr(*S.Value);
      return;
    case StmtKind::Assign:
      markExpr(*S.Value);
      markExpr(*S.Target);
      return;
    case StmtKind::If:
      markExpr(*S.Value);
      markStmt(*S.Body);
      if (S.Else)
        markStmt(*S.Else);
      return;
    case StmtKind::While:
      markExpr(*S.Value);
      markStmt(*S.Body);
      return;
    case StmtKind::Sync:
    case StmtKind::Atomic:
      markStmt(*S.Body);
      return;
    case StmtKind::Await:
    case StmtKind::Wait:
    case StmtKind::Notify:
    case StmtKind::NotifyAll:
      return;
    }
  }

  void markExpr(const Expr &E) {
    if (auto It = SiteByNode.find(&E); It != SiteByNode.end())
      Facts.Sites[It->second].PreFork = true;
    if (auto It = EdgeByNode.find(&E); It != EdgeByNode.end())
      Facts.Edges[It->second].PreForkCall = true;
    if (E.Lhs)
      markExpr(*E.Lhs);
    if (E.Rhs)
      markExpr(*E.Rhs);
    for (const ExprPtr &Arg : E.Args)
      markExpr(*Arg);
  }

private:
  ProgramFacts &Facts;
  std::map<const Expr *, size_t> SiteByNode;
  std::map<const Expr *, size_t> EdgeByNode;
};

} // namespace

ProgramFacts ft::analysis::collectFacts(Program &P) {
  assert(P.MainIndex >= 0 && "program must be resolved before analysis");
  ProgramFacts Facts;
  FactWalker(P, Facts).run();
  return Facts;
}

CallGraphInfo ft::analysis::buildCallGraph(const Program &P,
                                           ProgramFacts &Facts) {
  const size_t N = P.Functions.size();
  CallGraphInfo Info;

  // -- Transitive may-spawn: a function spawns, or calls one that does.
  Info.MaySpawn = Facts.ContainsSpawnDirect;
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (const CallEdgeFact &E : Facts.Edges)
      if (!E.IsSpawn && Info.MaySpawn[E.Callee] && !Info.MaySpawn[E.Caller]) {
        Info.MaySpawn[E.Caller] = true;
        Changed = true;
      }
  }

  // -- Execution multiplicity: main runs once; every call/spawn edge
  // contributes its caller's bound, lifted to Many inside a loop.
  // Saturating fixpoint over {Zero, One, Many}; recursion and multiple
  // call sites both saturate to Many.
  Info.FnMult.assign(N, Mult::Zero);
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (uint32_t F = 0; F != N; ++F) {
      Mult M = F == static_cast<uint32_t>(P.MainIndex) ? Mult::One
                                                       : Mult::Zero;
      for (size_t EI : Facts.EdgesInto[F]) {
        const CallEdgeFact &E = Facts.Edges[EI];
        M = multAdd(M, multMul(Info.FnMult[E.Caller],
                               E.InLoop ? Mult::Many : Mult::One));
      }
      if (M != Info.FnMult[F]) {
        Info.FnMult[F] = M;
        Changed = true;
      }
    }
  }

  // -- Pre-fork region of main: the top-level statement prefix that
  // cannot transitively spawn. Everything inside it (including whole
  // loops and branches) completes before the first fork, so its facts
  // are marked PreFork / PreForkCall.
  {
    SpawnReach Reach(Info.MaySpawn);
    PreForkMarker Marker(Facts);
    const Stmt &Body = *P.Functions[P.MainIndex].Body;
    assert(Body.Kind == StmtKind::Block && "function body is a block");
    for (const StmtPtr &S : Body.Stmts) {
      if (Reach.stmt(*S))
        break; // this statement may fork: the pre-fork prefix ends here
      Marker.markStmt(*S);
    }
  }

  // -- Functions executing only inside the pre-fork region: never
  // spawned, spawn-free, and every incoming call comes from main's
  // pre-fork prefix or from another such function. Greatest fixpoint by
  // iterated removal.
  Info.PreForkOnly.assign(N, false);
  for (uint32_t F = 0; F != N; ++F)
    Info.PreForkOnly[F] = F != static_cast<uint32_t>(P.MainIndex) &&
                          !Info.MaySpawn[F] && Info.FnMult[F] != Mult::Zero;
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (uint32_t F = 0; F != N; ++F) {
      if (!Info.PreForkOnly[F])
        continue;
      bool Ok = true;
      for (size_t EI : Facts.EdgesInto[F]) {
        const CallEdgeFact &E = Facts.Edges[EI];
        if (E.IsSpawn ||
            (E.Caller == static_cast<uint32_t>(P.MainIndex)
                 ? !E.PreForkCall
                 : !Info.PreForkOnly[E.Caller])) {
          Ok = false;
          break;
        }
      }
      if (!Ok) {
        Info.PreForkOnly[F] = false;
        Changed = true;
      }
    }
  }
  for (AccessSiteFact &Site : Facts.Sites)
    if (Info.PreForkOnly[Site.Fn])
      Site.PreFork = true;

  // -- Abstract threads: main plus every reachable spawn site.
  Info.Threads.push_back(
      {static_cast<uint32_t>(P.MainIndex), Mult::One, "main"});
  for (const CallEdgeFact &E : Facts.Edges) {
    if (!E.IsSpawn)
      continue;
    Mult Instances = multMul(Info.FnMult[E.Caller],
                             E.InLoop ? Mult::Many : Mult::One);
    if (Instances == Mult::Zero)
      continue; // the spawn site itself never runs
    AbstractThread T;
    T.Root = E.Callee;
    T.Instances = Instances;
    T.Name = "spawn " + P.Functions[E.Callee].Name + "@" +
             std::to_string(E.Node->Line);
    Info.Threads.push_back(std::move(T));
  }

  // -- Which threads may execute each function: call-edge closure from
  // each thread's root.
  Info.FnThreads.assign(N, {});
  for (uint32_t T = 0; T != Info.Threads.size(); ++T) {
    std::vector<bool> Seen(N, false);
    std::vector<uint32_t> Work{Info.Threads[T].Root};
    Seen[Info.Threads[T].Root] = true;
    while (!Work.empty()) {
      uint32_t F = Work.back();
      Work.pop_back();
      Info.FnThreads[F].push_back(T);
      for (size_t EI : Facts.EdgesFrom[F]) {
        const CallEdgeFact &E = Facts.Edges[EI];
        if (!E.IsSpawn && !Seen[E.Callee]) {
          Seen[E.Callee] = true;
          Work.push_back(E.Callee);
        }
      }
    }
  }

  return Info;
}
