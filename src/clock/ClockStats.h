//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global counters for vector-clock allocations and O(n)-time vector-clock
/// operations. Table 2 of the paper compares exactly these two quantities
/// between DJIT+ and FastTrack; the benchmark harness snapshots the
/// counters around each tool run and reports the delta.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CLOCK_CLOCKSTATS_H
#define FASTTRACK_CLOCK_CLOCKSTATS_H

#include <cstdint>

namespace ft {

/// Counts of vector-clock activity. All analyses in this repository share
/// one VectorClock implementation (as the paper's tools share RoadRunner's),
/// so these counters provide an apples-to-apples comparison.
struct ClockStats {
  /// Number of vector-clock buffers allocated (fresh or copy-constructed).
  uint64_t Allocations = 0;
  /// Number of O(n)-time joins (⊔).
  uint64_t JoinOps = 0;
  /// Number of O(n)-time pointwise comparisons (⊑).
  uint64_t CompareOps = 0;
  /// Number of O(n)-time whole-clock copies.
  uint64_t CopyOps = 0;

  /// Total O(n)-time operations.
  uint64_t totalOps() const { return JoinOps + CompareOps + CopyOps; }

  /// Pointwise difference (for snapshot deltas).
  ClockStats operator-(const ClockStats &Other) const {
    ClockStats Delta;
    Delta.Allocations = Allocations - Other.Allocations;
    Delta.JoinOps = JoinOps - Other.JoinOps;
    Delta.CompareOps = CompareOps - Other.CompareOps;
    Delta.CopyOps = CopyOps - Other.CopyOps;
    return Delta;
  }
};

/// Returns the mutable global counter block.
ClockStats &clockStats();

/// Zeroes the global counters.
void resetClockStats();

} // namespace ft

#endif // FASTTRACK_CLOCK_CLOCKSTATS_H
