#include "framework/SyncSpine.h"

#include "trace/ReentrancyFilter.h"

using namespace ft;

size_t SyncSpine::numUpdates() const {
  size_t N = 0;
  for (const std::vector<SpineUpdate> &Ups : PerThread)
    N += Ups.size();
  return N;
}

size_t SyncSpine::memoryBytes() const {
  size_t Bytes = PerThread.capacity() * sizeof(PerThread[0]);
  for (const std::vector<SpineUpdate> &Ups : PerThread) {
    Bytes += Ups.capacity() * sizeof(SpineUpdate);
    for (const SpineUpdate &U : Ups)
      Bytes += U.Clock.memoryBytes();
  }
  return Bytes;
}

SpinePrePass ft::buildSyncSpine(const Trace &T, bool FilterReentrantLocks) {
  SpinePrePass Out;
  SyncSpine &Spine = Out.Spine;
  Spine.PerThread.resize(T.numThreads());

  // σ0: C = λt.inc_t(⊥V), exactly VectorClockToolBase::begin. Workers
  // begin() their clones into this same state, so nothing is dirty yet.
  std::vector<VectorClock> C(T.numThreads());
  for (ThreadId U = 0; U != T.numThreads(); ++U)
    C[U].inc(U);
  std::vector<VectorClock> L(T.numLocks());
  std::vector<VectorClock> LVolatile(T.numVolatiles());

  // Deferred recording: remember that C_u changed (and at which sync
  // event); copy the clock into the spine only at u's next data access.
  std::vector<uint32_t> ChangedAt(T.numThreads(), 0);
  std::vector<uint8_t> Dirty(T.numThreads(), 0);
  auto touched = [&](uint32_t I, ThreadId U) {
    Dirty[U] = 1;
    ChangedAt[U] = I;
  };
  // Join that dirties only when the clock actually changes. A no-op join
  // (e.g. a thread reacquiring a lock it released — the common case in
  // disciplined programs) needs no new spine entry.
  auto joinTouch = [&](uint32_t I, ThreadId U, const VectorClock &Other) {
    if (Other.leq(C[U]))
      return;
    C[U].joinWith(Other);
    touched(I, U);
  };

  ReentrancyFilter Reentrancy(T.numThreads(), T.numLocks());
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.size()); I != E; ++I) {
    const Operation &Op = T[I];
    switch (Op.Kind) {
    case OpKind::Read:
    case OpKind::Write: {
      ThreadId U = Op.Thread;
      if (Dirty[U]) {
        Spine.PerThread[U].push_back({ChangedAt[U], C[U]});
        Dirty[U] = 0;
      }
      continue; // not a sync op
    }
    case OpKind::Acquire:
      if (FilterReentrantLocks && !Reentrancy.onAcquire(Op.Thread, Op.Target))
        continue;
      joinTouch(I, Op.Thread, L[Op.Target]);
      break;
    case OpKind::Release:
      if (FilterReentrantLocks && !Reentrancy.onRelease(Op.Thread, Op.Target))
        continue;
      L[Op.Target].copyFrom(C[Op.Thread]);
      C[Op.Thread].inc(Op.Thread);
      touched(I, Op.Thread);
      break;
    case OpKind::Fork:
      C[Op.Target].joinWith(C[Op.Thread]);
      touched(I, Op.Target);
      C[Op.Thread].inc(Op.Thread);
      touched(I, Op.Thread);
      break;
    case OpKind::Join:
      joinTouch(I, Op.Thread, C[Op.Target]);
      C[Op.Target].inc(Op.Target);
      touched(I, Op.Target);
      break;
    case OpKind::VolatileRead:
      joinTouch(I, Op.Thread, LVolatile[Op.Target]);
      break;
    case OpKind::VolatileWrite:
      LVolatile[Op.Target].joinWith(C[Op.Thread]);
      C[Op.Thread].inc(Op.Thread);
      touched(I, Op.Thread);
      break;
    case OpKind::Barrier: {
      const std::vector<ThreadId> &Threads = T.barrierSet(Op.Target);
      VectorClock Joined;
      for (ThreadId U : Threads)
        Joined.joinWith(C[U]);
      for (ThreadId U : Threads) {
        C[U].copyFrom(Joined);
        C[U].inc(U);
        touched(I, U);
      }
      break;
    }
    case OpKind::AtomicBegin:
    case OpKind::AtomicEnd:
      break; // no clock effect (and spine-driven tools ignore them)
    }
    Out.SyncOps.push_back(I);
  }
  return Out;
}
