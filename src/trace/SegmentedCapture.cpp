#include "trace/SegmentedCapture.h"

#include "trace/TraceIO.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace ft;

namespace {

constexpr char FooterTag[] = "# ftseg sealed ";

uint64_t fnv1a(uint64_t Seed, const char *Data, size_t N) {
  uint64_t H = Seed;
  for (size_t I = 0; I != N; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= 1099511628211ull;
  }
  return H;
}

constexpr uint64_t Fnv1aInit = 1469598103934665603ull;

/// Flushes stdio buffers and pushes the bytes to stable storage. A sealed
/// footer must never be durable before its payload, and fsync orders both.
bool syncFile(std::FILE *File) {
  if (std::fflush(File) != 0)
    return false;
#ifndef _WIN32
  if (fsync(fileno(File)) != 0)
    return false;
#endif
  return true;
}

} // namespace

std::string SegmentedTraceWriter::segmentPath(const std::string &Prefix,
                                              unsigned Index) {
  char Suffix[32];
  std::snprintf(Suffix, sizeof(Suffix), ".seg%06u.trc", Index);
  return Prefix + Suffix;
}

SegmentedTraceWriter::SegmentedTraceWriter(std::string Prefix,
                                           SegmentWriterOptions Options)
    : Prefix(std::move(Prefix)), Options(Options) {}

SegmentedTraceWriter::~SegmentedTraceWriter() { (void)finish(); }

void SegmentedTraceWriter::fail(std::string Message) {
  Diags.push_back({StatusCode::IoError, Severity::Error, 0, NoOpIndex,
                   "segmented capture: " + std::move(Message)});
  Broken = true;
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

bool SegmentedTraceWriter::ensureOpen() {
  if (File)
    return true;
  std::string Path = segmentPath(Prefix, NextIndex);
  File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    fail("cannot open '" + Path + "' for writing");
    return false;
  }
  ++NextIndex;
  PayloadBytes = 0;
  SegmentRecords = 0;
  Sum = Fnv1aInit;
  return true;
}

void SegmentedTraceWriter::seal() {
  char Footer[96];
  int Len = std::snprintf(Footer, sizeof(Footer),
                          "%srecords=%" PRIu64 " sum=%016" PRIx64 "\n",
                          FooterTag, SegmentRecords, Sum);
  if (std::fwrite(Footer, 1, static_cast<size_t>(Len), File) !=
      static_cast<size_t>(Len)) {
    fail("short write sealing segment " + std::to_string(NextIndex - 1));
    return;
  }
  if (Options.Fsync ? !syncFile(File) : std::fflush(File) != 0) {
    fail("flush/fsync failed sealing segment " + std::to_string(NextIndex - 1));
    return;
  }
  std::fclose(File);
  File = nullptr;
  ++Sealed;
}

void SegmentedTraceWriter::append(const Operation *Ops, size_t N) {
  if (Broken || Finished || N == 0)
    return;
  if (!ensureOpen())
    return;
  Buffer.clear();
  for (size_t I = 0; I != N; ++I)
    serializeOperation(Buffer, Ops[I]);
  if (std::fwrite(Buffer.data(), 1, Buffer.size(), File) != Buffer.size()) {
    fail("short write to segment " + std::to_string(NextIndex - 1));
    return;
  }
  if (Options.FlushEveryAppend && std::fflush(File) != 0) {
    fail("flush failed on segment " + std::to_string(NextIndex - 1));
    return;
  }
  Sum = fnv1a(Sum, Buffer.data(), Buffer.size());
  PayloadBytes += Buffer.size();
  SegmentRecords += N;
  TotalRecords += N;
  if (PayloadBytes >= Options.SegmentBytes)
    seal();
}

Status SegmentedTraceWriter::finish() {
  if (Finished)
    return Diags.empty() ? Status::okStatus()
                         : Status::error(StatusCode::IoError, Diags[0].Message);
  Finished = true;
  if (File && !Broken)
    seal();
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  if (!Diags.empty())
    return Status::error(StatusCode::IoError, Diags[0].Message);
  return Status::okStatus();
}

namespace {

/// Reads a whole segment file (segments are bounded by SegmentBytes plus
/// one footer, so slurping is safe). Returns false when the file does not
/// exist; fails through \p R on read errors.
bool slurpSegment(const std::string &Path, std::string &Out, bool &Exists,
                  CaptureRecovery &R) {
  Out.clear();
  Exists = false;
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  Exists = true;
  char Buf[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, Got);
  bool Err = std::ferror(File) != 0;
  std::fclose(File);
  if (Err) {
    R.St = Status::error(StatusCode::IoError, "read error on '" + Path + "'");
    R.Diags.push_back({StatusCode::IoError, Severity::Error, 0, NoOpIndex,
                       R.St.message()});
    return false;
  }
  return true;
}

/// If \p Content ends with a sealed footer line, strips it and returns
/// its records/sum fields.
bool splitFooter(std::string &Content, uint64_t &Records, uint64_t &Sum) {
  if (Content.empty() || Content.back() != '\n')
    return false;
  size_t LineStart = Content.rfind('\n', Content.size() - 2);
  LineStart = LineStart == std::string::npos ? 0 : LineStart + 1;
  const char *Line = Content.c_str() + LineStart;
  if (std::strncmp(Line, FooterTag, sizeof(FooterTag) - 1) != 0)
    return false;
  if (std::sscanf(Line + sizeof(FooterTag) - 1,
                  "records=%" SCNu64 " sum=%" SCNx64, &Records, &Sum) != 2)
    return false;
  Content.resize(LineStart);
  return true;
}

} // namespace

CaptureRecovery ft::recoverSegmentedCapture(const std::string &Prefix,
                                            Trace &Out) {
  Out.clear();
  CaptureRecovery R;
  std::string Content;
  for (unsigned Index = 0;; ++Index) {
    std::string Path = SegmentedTraceWriter::segmentPath(Prefix, Index);
    bool Exists = false;
    if (!slurpSegment(Path, Content, Exists, R)) {
      if (Exists) // read error already reported
        return R;
      break; // end of chain
    }

    uint64_t Records = 0, Sum = 0;
    bool IsSealed = splitFooter(Content, Records, Sum);

    if (IsSealed) {
      if (fnv1a(Fnv1aInit, Content.data(), Content.size()) != Sum) {
        R.St = Status::error(StatusCode::ValidationError,
                             "segment '" + Path + "' failed its checksum");
        R.Diags.push_back({StatusCode::ValidationError, Severity::Error, 0,
                           NoOpIndex, R.St.message()});
        return R; // later segments would leave a gap: stop at the prefix
      }
      Trace Part;
      ParseReport PR = parseTrace(Content, Part);
      if (!PR.ok() || PR.Records != Records) {
        R.St = Status::error(StatusCode::ValidationError,
                             "segment '" + Path +
                                 "' sealed but inconsistent: footer says " +
                                 std::to_string(Records) + " records, parsed " +
                                 std::to_string(PR.Records));
        R.Diags.push_back({StatusCode::ValidationError, Severity::Error, 0,
                           NoOpIndex, R.St.message()});
        return R;
      }
      Out.appendRun(Part.operations().data(), Part.size());
      R.Records += PR.Records;
      ++R.SegmentsSealed;
      continue;
    }

    // The torn tail: an open segment the crash cut off. Bytes after the
    // last newline are a record interrupted mid-write — discard them, then
    // keep records up to the first malformed line (budget 0 aborts the
    // salvage there, holding exactly the valid prefix).
    size_t LastNl = Content.rfind('\n');
    size_t Discarded =
        Content.size() - (LastNl == std::string::npos ? 0 : LastNl + 1);
    if (LastNl == std::string::npos)
      Content.clear();
    else
      Content.resize(LastNl + 1);
    Trace Part;
    ParseOptions Salvage;
    Salvage.Salvage = true;
    Salvage.ErrorBudget = 0;
    ParseReport PR = parseTrace(Content, Part, Salvage);
    Out.appendRun(Part.operations().data(), Part.size());
    R.Records += PR.Records;
    ++R.SegmentsTorn;
    R.Diags.push_back(
        {StatusCode::Ok, Severity::Note, 0, NoOpIndex,
         "torn tail '" + Path + "': recovered " + std::to_string(PR.Records) +
             " record(s), discarded " + std::to_string(Discarded) +
             " trailing byte(s)" +
             (PR.Skipped != 0 ? " and stopped at a malformed line" : "")});
    // Anything after an unsealed segment is unreachable in a consistent
    // chain; stop here so the result stays a prefix of the stream.
    break;
  }
  return R;
}
