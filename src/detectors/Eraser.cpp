#include "detectors/Eraser.h"

#include "framework/FastDispatch.h"
#include "framework/Replay.h"

using namespace ft;

void Eraser::begin(const ToolContext &Context) {
  Held.reset(Context.NumThreads);
  Vars.assign(Context.NumVars, VarShadow());
  Generation = 0;
}

void Eraser::onAcquire(ThreadId T, LockId M, size_t) { Held.acquire(T, M); }

void Eraser::onRelease(ThreadId T, LockId M, size_t) { Held.release(T, M); }

void Eraser::onBarrier(const std::vector<ThreadId> &, size_t) {
  // Barrier-aware extension: accesses in different barrier phases are
  // ordered, so every variable's discipline restarts. Implemented lazily
  // via a generation stamp to keep barriers O(1).
  if (BarrierAware)
    ++Generation;
}

void Eraser::refresh(VarShadow &Shadow) {
  if (Shadow.Generation == Generation)
    return;
  Shadow.State = EraserVarState::Virgin;
  Shadow.Candidates.clear();
  Shadow.Generation = Generation;
}

void Eraser::warnIfUnprotected(const VarShadow &Shadow, ThreadId T, VarId X,
                               size_t OpIndex, OpKind Kind) {
  if (!Shadow.Candidates.empty())
    return;
  RaceWarning W;
  W.Var = X;
  W.OpIndex = OpIndex;
  W.CurrentThread = T;
  W.CurrentKind = Kind;
  W.Detail = "empty lockset";
  reportRace(std::move(W));
}

bool Eraser::onRead(ThreadId T, VarId X, size_t OpIndex) {
  VarShadow &Shadow = Vars[X];
  refresh(Shadow);
  switch (Shadow.State) {
  case EraserVarState::Virgin:
    Shadow.State = EraserVarState::Exclusive;
    Shadow.Owner = T;
    return false;
  case EraserVarState::Exclusive:
    if (Shadow.Owner == T)
      return false;
    // Second thread reads: enter read-shared mode. Deliberately no warning
    // and the first thread's accesses are forgotten — the unsoundness that
    // makes Eraser miss some hedc races.
    Shadow.State = EraserVarState::Shared;
    Shadow.Candidates = Held.held(T);
    return false;
  case EraserVarState::Shared:
    // Reads of read-shared data refine C(v) but never warn; race-free,
    // so as a prefilter the access is dropped.
    Shadow.Candidates.intersectWith(Held.held(T));
    return false;
  case EraserVarState::SharedModified:
    Shadow.Candidates.intersectWith(Held.held(T));
    warnIfUnprotected(Shadow, T, X, OpIndex, OpKind::Read);
    // Forward only when the lockset discipline has failed.
    return Shadow.Candidates.empty();
  }
  return true;
}

bool Eraser::onWrite(ThreadId T, VarId X, size_t OpIndex) {
  VarShadow &Shadow = Vars[X];
  refresh(Shadow);
  switch (Shadow.State) {
  case EraserVarState::Virgin:
    Shadow.State = EraserVarState::Exclusive;
    Shadow.Owner = T;
    return false;
  case EraserVarState::Exclusive:
    if (Shadow.Owner == T)
      return false;
    Shadow.State = EraserVarState::SharedModified;
    Shadow.Candidates = Held.held(T);
    warnIfUnprotected(Shadow, T, X, OpIndex, OpKind::Write);
    return Shadow.Candidates.empty();
  case EraserVarState::Shared:
    Shadow.State = EraserVarState::SharedModified;
    Shadow.Candidates.intersectWith(Held.held(T));
    warnIfUnprotected(Shadow, T, X, OpIndex, OpKind::Write);
    return Shadow.Candidates.empty();
  case EraserVarState::SharedModified:
    Shadow.Candidates.intersectWith(Held.held(T));
    warnIfUnprotected(Shadow, T, X, OpIndex, OpKind::Write);
    return Shadow.Candidates.empty();
  }
  return true;
}

size_t Eraser::shadowBytes() const {
  size_t Bytes = Held.memoryBytes();
  for (const VarShadow &Shadow : Vars)
    Bytes += sizeof(VarShadow) + Shadow.Candidates.memoryBytes();
  return Bytes;
}

FT_REGISTER_FAST_REPLAY(::ft::Eraser);
FT_REGISTER_FAST_DISPATCH(::ft::Eraser);
