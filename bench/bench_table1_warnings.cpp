//===----------------------------------------------------------------------===//
//
// Experiment E3 — Table 1 (right half): warnings reported by each tool on
// each benchmark, with the oracle's ground truth.
//
// Paper column totals: Eraser 27, MultiRace 5, Goldilocks 3, BasicVC 8,
// DJIT+ 8, FastTrack 8 — FastTrack/DJIT+/BasicVC report exactly the real
// races; Eraser adds 19 false alarms and misses 2 hedc races; Goldilocks'
// unsound thread-local extension misses the hand-off races.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/ToolRegistry.h"
#include "hb/RaceOracle.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace ft;
using namespace ft::bench;

int main(int argc, char **argv) {
  BenchReport Report("bench_table1_warnings", argc, argv);
  banner("Table 1 (right): warnings per tool (oracle ground truth first)");

  const std::vector<std::string> Tools = {"eraser",  "multirace",
                                          "goldilocks", "basicvc",
                                          "djit+", "fasttrack"};
  Table Out;
  Out.addHeader({"Program", "RealRaces", "Eraser", "MultiRace", "Goldilocks",
                 "BasicVC", "DJIT+", "FastTrack"});

  // Warning counts run on a reduced size: race content is size-invariant
  // by construction, and the O(accesses^2) oracle stays cheap.
  double Factor = std::min(sizeFactor(), 0.05);
  std::vector<unsigned> Totals(Tools.size() + 1, 0);

  for (const Workload &W : benchmarkSuite()) {
    Trace T = W.Generate(/*Seed=*/1, Factor);
    unsigned Real = racyVars(T).size();
    Totals[0] += Real;
    std::vector<std::string> Row = {W.Name, std::to_string(Real)};
    for (size_t I = 0; I != Tools.size(); ++I) {
      auto Checker = createTool(Tools[I]);
      replay(T, *Checker);
      unsigned Count = Checker->warnings().size();
      Totals[I + 1] += Count;
      Row.push_back(std::to_string(Count));
    }
    Out.addRow(Row);
  }

  Out.addSeparator();
  std::vector<std::string> TotalRow = {"Total", std::to_string(Totals[0])};
  for (size_t I = 0; I != Tools.size(); ++I)
    TotalRow.push_back(std::to_string(Totals[I + 1]));
  Out.addRow(TotalRow);

  std::fputs(Out.render().c_str(), stdout);
  std::printf("\nPaper totals:  real 8, Eraser 27, MultiRace 5, "
              "Goldilocks 3, BasicVC 8, DJIT+ 8, FastTrack 8.\n");
  Report.metric("real_races", double(Totals[0]));
  for (size_t I = 0; I != Tools.size(); ++I)
    Report.metric(Tools[I] + "_warnings", double(Totals[I + 1]));
  return Report.write() ? 0 : 1;
}
