//===--- ShadowTableTest.cpp - the paged SoA shadow subsystem -------------===//
//
// Exercises shadow/ShadowTable.h both directly (page lifecycle, handle
// recycling, memory accounting) and through FastTrack (checkpoint images
// over the paged layout, legacy dense-image back-compat, recycled thread
// slots inside side-store clocks, and warning-for-warning equivalence
// against an independent dense AoS implementation of the same rules).
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "framework/Replay.h"
#include "shadow/ShadowTable.h"
#include "support/ByteStream.h"
#include "trace/RandomTrace.h"
#include "trace/TraceBuilder.h"

#include "DenseShadowReference.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

std::string shadowImage(const FastTrack &Tool) {
  ByteWriter Writer;
  Tool.snapshotShadow(Writer);
  return std::string(Writer.bytes());
}

/// Drives \p Checker over \p T exactly like the serial replay loop, but
/// in the open — so tests can probe or snapshot between operations.
/// \p From / \p To bound the dispatched range (checkpoint-resume style).
void drive(Tool &Checker, const Trace &T, size_t From, size_t To) {
  for (size_t I = From; I != To; ++I) {
    const Operation &Op = T[I];
    if (Op.Kind == OpKind::Read)
      Checker.onRead(Op.Thread, Op.Target, I);
    else if (Op.Kind == OpKind::Write)
      Checker.onWrite(Op.Thread, Op.Target, I);
    else
      dispatchSyncOp(Checker, T, Op, I);
  }
}

ToolContext contextFor(const Trace &T) {
  return makeToolContext(T, GranularityMap());
}

void expectSameWarnings(const std::vector<RaceWarning> &Expected,
                        const std::vector<RaceWarning> &Actual,
                        const char *Where) {
  ASSERT_EQ(Expected.size(), Actual.size()) << Where;
  for (size_t I = 0; I != Expected.size(); ++I) {
    EXPECT_EQ(Expected[I].Var, Actual[I].Var) << Where << " #" << I;
    EXPECT_EQ(Expected[I].OpIndex, Actual[I].OpIndex) << Where << " #" << I;
    EXPECT_EQ(Expected[I].CurrentThread, Actual[I].CurrentThread)
        << Where << " #" << I;
    EXPECT_EQ(Expected[I].PriorThread, Actual[I].PriorThread)
        << Where << " #" << I;
    EXPECT_EQ(Expected[I].Detail, Actual[I].Detail) << Where << " #" << I;
  }
}

/// Exposes the protected static clock codec and the clocks-section length
/// of a serialized image (needed to transcode images byte-level).
class ClockCodec : public VectorClockToolBase {
public:
  const char *name() const override { return "ClockCodec"; }
  using VectorClockToolBase::readClock;
  using VectorClockToolBase::writeClock;

  /// Length in bytes of the C/L clocks section at the head of a
  /// FastTrack shadow image for \p T.
  static size_t clocksSectionLength(const Trace &T, std::string_view Image) {
    ClockCodec Tool;
    Tool.begin(contextFor(T));
    ByteReader Reader(Image);
    EXPECT_TRUE(Tool.restoreClocks(Reader));
    return Image.size() - Reader.remaining();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Direct table tests
//===----------------------------------------------------------------------===//

TEST(ShadowTable, PagesFaultInOnFirstTouchOnly) {
  // Above the eager limit the table starts empty and pays per touch.
  constexpr size_t NumVars = 2 * ShadowEagerVarLimit;
  constexpr size_t NumPages = NumVars / ShadowPageVars;
  ShadowTable<Epoch> Table;
  Table.reset(NumVars);
  EXPECT_EQ(Table.numPages(), NumPages);
  EXPECT_EQ(Table.residentPages(), 0u);

  Table.slot(0).W = Epoch::make(1, 7);
  EXPECT_EQ(Table.residentPages(), 1u);
  Table.slot(ShadowPageVars - 1).R = Epoch::make(2, 3); // same page
  EXPECT_EQ(Table.residentPages(), 1u);
  Table.slot(NumVars - ShadowPageVars).W = Epoch::make(1, 9); // last page
  EXPECT_EQ(Table.residentPages(), 2u);

  // Slots persist across faults and unrelated touches.
  EXPECT_EQ(Table.slot(0).W, Epoch::make(1, 7));
  EXPECT_EQ(Table.slot(ShadowPageVars - 1).R, Epoch::make(2, 3));

  // reset() tears every page down.
  Table.reset(NumVars);
  EXPECT_EQ(Table.residentPages(), 0u);
  EXPECT_EQ(Table.slot(0).W.raw(), Epoch().raw());
}

TEST(ShadowTable, SmallTablesMaterializeEagerly) {
  // At or below the eager limit the whole space is resident from reset:
  // the flat fast path must behave exactly like the paged one, and the
  // footprint is still a fraction of the dense AoS layout's.
  ShadowTable<Epoch> Table;
  Table.reset(10 * ShadowPageVars);
  EXPECT_EQ(Table.numPages(), 10u);
  EXPECT_EQ(Table.residentPages(), 10u);

  Table.slot(7).W = Epoch::make(1, 7);
  Table.slot(9 * ShadowPageVars + 1).R = Epoch::make(2, 3);
  EXPECT_EQ(Table.slot(7).W, Epoch::make(1, 7));
  EXPECT_EQ(Table.pageAt(9)->Slots[1].R, Epoch::make(2, 3));
  EXPECT_EQ(Table.pageAt(0)->Slots[7].W, Epoch::make(1, 7));

  // reset() zeroes eager tables too.
  Table.reset(10 * ShadowPageVars);
  EXPECT_EQ(Table.slot(7).W.raw(), Epoch().raw());
}

TEST(ShadowTable, UntouchedMillionVarTableCostsOnlyTheDirectory) {
  ShadowTable<Epoch> Table;
  Table.reset(1u << 20);
  // 2048 directory pointers plus 2048 page-lifecycle records (the
  // governance metadata exists for every paged table so checkpoint
  // restore can install summarized pages); no pages, no side store.
  EXPECT_EQ(Table.residentPages(), 0u);
  EXPECT_LT(Table.memoryBytes(), 96u * 1024);
  // Dense AoS at 48 bytes/var (2 epochs + inline VC) would be ~48 MiB.
  EXPECT_LT(Table.memoryBytes() * 100, (1u << 20) * 48u);
}

TEST(ShadowTable, HandleRoundTripAndTagIsolation) {
  using Table = ShadowTable<Epoch>;
  // No real epoch — any tid the detector admits, any clock — ever looks
  // like a handle: the tag tid is reserved.
  for (ThreadId T = 0; T != Epoch::MaxTid; ++T) {
    EXPECT_FALSE(Table::isInflated(Epoch::make(T, 0)));
    EXPECT_FALSE(Table::isInflated(Epoch::make(T, Epoch::MaxClock)));
  }
  EXPECT_FALSE(Table::isInflated(Epoch()));
  EXPECT_TRUE(Table::isInflated(Epoch::readShared()));
  for (uint32_t H : {0u, 1u, 513u}) {
    Epoch E = Table::handleEpoch(H);
    EXPECT_TRUE(Table::isInflated(E));
    EXPECT_EQ(Table::handleOf(E), H);
  }
}

TEST(ShadowTable, InflateDeflateRecyclesHandleAndBuffer) {
  ShadowTable<Epoch> Table;
  Table.reset(ShadowPageVars);

  Epoch H1 = Table.inflate();
  Table.clockFor(H1).set(3, 17);
  EXPECT_EQ(Table.inflatedStates(), 1u);
  EXPECT_EQ(Table.sideStoreSlots(), 1u);

  Table.deflate(H1);
  EXPECT_EQ(Table.inflatedStates(), 0u);
  EXPECT_EQ(Table.sideStoreSlots(), 1u); // buffer parked, not freed

  // Re-inflation reuses the parked handle — and hands back a ⊥ clock:
  // the old entries predate the deflating write and must not leak.
  Epoch H2 = Table.inflate();
  EXPECT_EQ(ShadowTable<Epoch>::handleOf(H2),
            ShadowTable<Epoch>::handleOf(H1));
  EXPECT_EQ(Table.sideStoreSlots(), 1u);
  EXPECT_EQ(Table.clockFor(H2).get(3), 0u);

  // A second concurrent inflation grows the store.
  Epoch H3 = Table.inflate();
  EXPECT_NE(ShadowTable<Epoch>::handleOf(H3),
            ShadowTable<Epoch>::handleOf(H2));
  EXPECT_EQ(Table.sideStoreSlots(), 2u);
  EXPECT_EQ(Table.inflatedStates(), 2u);
}

TEST(ShadowTable, HeapSpilledSideStoreClocksAreAccounted) {
  // Regression: a read VC wider than VectorClock::InlineCapacity spills
  // to a heap (ClockArena) block; memoryBytes() must charge those bytes
  // or budget probes under-account read-shared-heavy workloads.
  ShadowTable<Epoch> Table;
  Table.reset(ShadowPageVars);
  Epoch H = Table.inflate();
  size_t Inline = Table.memoryBytes();

  Table.clockFor(H).set(VectorClock::InlineCapacity + 4, 9);
  size_t Spilled = Table.memoryBytes();
  EXPECT_EQ(Spilled - Inline, Table.clockFor(H).memoryBytes());
  EXPECT_GE(Spilled - Inline,
            (VectorClock::InlineCapacity + 5) * sizeof(ClockValue));
}

//===----------------------------------------------------------------------===//
// Detector-level tests
//===----------------------------------------------------------------------===//

TEST(ShadowTable, FastTrackResidencyTracksTouchedPagesNotNumVars) {
  // A million declared variables, a handful touched, spread across five
  // page regions: shadow cost must follow the touches.
  TraceBuilder B;
  B.fork(0, 1);
  for (VarId X : {0u, 5u, 600u, 601u, 300000u, 300100u, 999999u})
    B.wr(1, X).rd(1, X);
  B.join(0, 1);
  B.wr(0, 999999); // keep the last page's id the trace's max var
  Trace T = B.take();
  ASSERT_EQ(T.numVars(), 1000000u);

  FastTrack Tool;
  replay(T, Tool);
  EXPECT_TRUE(Tool.warnings().empty());
  // {0,5} and {600,601} share pages 0 and 1; 300000 and 300100 land on
  // pages 585 and 586; 999999 on page 1953.
  EXPECT_EQ(Tool.residentShadowPages(), 5u);
  // Dense AoS shadow was ~48 MiB here; the paged table stays well under
  // 1 MiB (directory + 5 pages).
  EXPECT_LT(Tool.shadowBytes(), 1u << 20);
}

TEST(ShadowTable, SpilledReadSharedClockMovesDetectorShadowBytes) {
  // Budget-probe view of the spill regression: once a variable is read
  // by more threads than fit inline, shadowBytes() must jump by at least
  // the spilled buffer. Twelve workers read x0 with no ordering between
  // their reads (each is forked and joined by thread 0 independently, so
  // reads stay concurrent and the state stays read-shared).
  constexpr unsigned Readers = 12;
  static_assert(Readers > VectorClock::InlineCapacity,
                "must exceed the inline clock to force an arena spill");
  TraceBuilder B;
  for (unsigned T = 1; T <= Readers; ++T)
    B.fork(0, T);
  for (unsigned T = 1; T <= Readers; ++T)
    B.rd(T, 0);
  for (unsigned T = 1; T <= Readers; ++T)
    B.join(0, T);
  Trace T = B.take();

  FastTrack Tool;
  Tool.begin(contextFor(T));
  size_t Before = Tool.shadowBytes();
  drive(Tool, T, 0, T.size());
  Tool.end();
  EXPECT_TRUE(Tool.warnings().empty());
  EXPECT_EQ(Tool.inflatedReadStates(), 1u);
  EXPECT_GE(Tool.shadowBytes(),
            Before + (Readers + 1) * sizeof(ClockValue));
}

TEST(ShadowTable, CheckpointRoundTripIsBitIdenticalAndResumable) {
  RandomTraceConfig Config;
  Config.Seed = 99;
  Config.NumThreads = 5;
  Config.NumVars = 3 * ShadowPageVars; // spans pages
  Config.OpsPerThread = 300;
  Config.ChaosProbability = 0.2;
  Trace T = generateRandomTrace(Config);

  FastTrack Reference;
  Reference.begin(contextFor(T));
  const size_t Cut = T.size() / 2;
  drive(Reference, T, 0, Cut);
  std::string Mid = shadowImage(Reference);
  const uint64_t MidInflated = Reference.inflatedReadStates();
  drive(Reference, T, Cut, T.size());
  Reference.end();
  std::string Final = shadowImage(Reference);

  // Restore the mid-trace image into a fresh tool and replay the rest:
  // the result must be byte-identical, warnings included.
  FastTrack Resumed;
  Resumed.begin(contextFor(T));
  ByteReader Reader(Mid);
  ASSERT_TRUE(Resumed.restoreShadow(Reader));
  EXPECT_EQ(shadowImage(Resumed), Mid); // restore → snapshot is identity
  EXPECT_EQ(Resumed.inflatedReadStates(), MidInflated);
  drive(Resumed, T, Cut, T.size());
  Resumed.end();
  EXPECT_EQ(shadowImage(Resumed), Final);

  std::vector<RaceWarning> Suffix(
      Reference.warnings().begin() +
          static_cast<ptrdiff_t>(Reference.warnings().size() -
                                 Resumed.warnings().size()),
      Reference.warnings().end());
  expectSameWarnings(Suffix, Resumed.warnings(), "resumed suffix");
}

TEST(ShadowTable, SnapshotIsCanonicalUnderHandlePermutation) {
  // Inflate x520 before x5, so the live tool's side store numbers them
  // handle 0 and 1 — the reverse of restore's var-order assignment. The
  // image must not care (handles never serialize), and a restored tool
  // running on permuted handle numbering must stay step-for-step
  // equivalent through further inflations and deflations.
  TraceBuilder B;
  B.fork(0, 1).fork(0, 2);
  B.rd(1, 520).rd(2, 520); // inflate x520 first → live handle 0
  B.rd(1, 5).rd(2, 5);     // then x5 → live handle 1
  const size_t Cut = 6;    // both inflated here
  B.volWr(2, 0).volRd(1, 0); // order 2's reads before 1's write
  B.wr(1, 520);              // deflate x520 (slow-path Rvc ⊑ C1 check)
  B.volWr(1, 1).volRd(2, 1); // order the write before 2's next read
  B.rd(2, 520).rd(1, 520);   // concurrent again: re-inflate, reusing the
                             // freed handle via the free list
  B.join(0, 1).join(0, 2);
  Trace T = B.take();

  FastTrack Live;
  Live.begin(contextFor(T));
  drive(Live, T, 0, Cut);
  ASSERT_EQ(Live.inflatedReadStates(), 2u);
  std::string Mid = shadowImage(Live);

  FastTrack Restored;
  Restored.begin(contextFor(T));
  ByteReader Reader(Mid);
  ASSERT_TRUE(Restored.restoreShadow(Reader));
  EXPECT_EQ(shadowImage(Restored), Mid);

  drive(Live, T, Cut, T.size());
  drive(Restored, T, Cut, T.size());
  EXPECT_TRUE(Live.warnings().empty());
  EXPECT_TRUE(Restored.warnings().empty());
  EXPECT_EQ(shadowImage(Restored), shadowImage(Live));
}

TEST(ShadowTable, LegacyDenseImageRestoresOntoPagedLayout) {
  // Transcode a current image into the pre-paged v1 format (u32 count +
  // one dense record per variable) at the byte level, restore it, and
  // demand the re-snapshot reproduce the v2 image exactly.
  RandomTraceConfig Config;
  Config.Seed = 41;
  Config.NumThreads = 4;
  Config.NumVars = 2 * ShadowPageVars + 37; // partial last page
  Config.OpsPerThread = 250;
  Config.ChaosProbability = 0.25;
  Trace T = generateRandomTrace(Config);

  FastTrack Reference;
  replay(T, Reference);
  std::string V2 = shadowImage(Reference);

  const size_t ClocksLen = ClockCodec::clocksSectionLength(T, V2);
  ByteReader In(std::string_view(V2).substr(ClocksLen));
  ASSERT_EQ(In.u32(), 0xffffffffu); // v2 format tag
  const uint64_t NumVars = In.u64();
  ASSERT_EQ(NumVars, T.numVars());

  ByteWriter Out;
  ASSERT_LT(NumVars, (1ull << 32)); // v1's headroom — hence the v2 header
  Out.u32(static_cast<uint32_t>(NumVars));
  const uint64_t SharedRaw = Epoch::readShared().raw();
  for (uint64_t X = 0; X != NumVars;) {
    const uint8_t Kind = In.u8();
    ASSERT_FALSE(In.failed());
    uint64_t Left = NumVars - X;
    uint64_t Used = Left < ShadowPageVars ? Left : ShadowPageVars;
    for (uint64_t I = 0; I != Used; ++I, ++X) {
      uint64_t W = Kind == 0 ? 0 : In.u64();
      uint64_t R = Kind == 2 ? In.u64() : 0;
      Out.u64(W);
      Out.u64(R);
      if (R == SharedRaw) {
        VectorClock Rvc;
        ASSERT_TRUE(ClockCodec::readClock(In, Rvc));
        ClockCodec::writeClock(Out, Rvc);
      }
    }
  }
  for (int I = 0; I != 7; ++I) // rule counters are unchanged across formats
    Out.u64(In.u64());
  ASSERT_FALSE(In.failed());
  ASSERT_EQ(In.remaining(), 0u);

  std::string V1 = V2.substr(0, ClocksLen) + Out.bytes();
  FastTrack Restored;
  Restored.begin(contextFor(T));
  ByteReader Reader(V1);
  ASSERT_TRUE(Restored.restoreShadow(Reader));
  EXPECT_EQ(shadowImage(Restored), V2);
}

TEST(ShadowTable, MalformedImagesAreRejected) {
  TraceBuilder B;
  B.fork(0, 1).wr(1, 0).rd(1, 1).join(0, 1);
  Trace T = B.take();
  FastTrack Tool;
  replay(T, Tool);
  std::string Image = shadowImage(Tool);

  // Truncation anywhere must fail cleanly, never crash or mis-restore.
  for (size_t Len : {Image.size() - 1, Image.size() / 2, size_t(4)}) {
    FastTrack Fresh;
    Fresh.begin(contextFor(T));
    ByteReader Reader(std::string_view(Image).substr(0, Len));
    EXPECT_FALSE(Fresh.restoreShadow(Reader)) << "len " << Len;
  }

  // A v1 image whose count disagrees with the trace is rejected.
  const size_t ClocksLen = ClockCodec::clocksSectionLength(T, Image);
  ByteWriter Wrong;
  Wrong.u32(T.numVars() + 1);
  std::string Bad = Image.substr(0, ClocksLen) + Wrong.bytes();
  FastTrack Fresh;
  Fresh.begin(contextFor(T));
  ByteReader Reader(Bad);
  EXPECT_FALSE(Fresh.restoreShadow(Reader));
}

TEST(ShadowTable, RecycledSlotStaleEpochsInsideSideStoreClocks) {
  // The online engine reuses dense thread slots; with the side store the
  // stale entries live behind a shared handle table. Reincarnate tid 1
  // several times around a read-shared variable and check the paged
  // detector against the independent dense implementation, warning for
  // warning (this trace has real races from the unsynchronized thread 3).
  TraceBuilder B;
  B.fork(0, 3);
  for (int I = 0; I != 20; ++I) {
    B.fork(0, 1).rd(1, 0).join(0, 1);  // reader lifetime of slot 1
    B.fork(0, 2).rd(2, 0).join(0, 2);  // keeps x0 read-shared
    if (I % 4 == 0)
      B.wr(3, 0);                       // concurrent writer: races
    B.fork(0, 1).wr(1, 0).join(0, 1);  // writer lifetime deflates x0
  }
  B.join(0, 3);
  Trace T = B.take();

  FastTrack Paged;
  DenseFastTrackReference Dense;
  replay(T, Paged);
  replay(T, Dense);
  EXPECT_FALSE(Paged.warnings().empty());
  expectSameWarnings(Dense.warnings(), Paged.warnings(), "recycled slots");
}

//===----------------------------------------------------------------------===//
// Memory governance: temperature, compression, watermarks, fault gates
//===----------------------------------------------------------------------===//

TEST(ShadowTable, ColdWriteOnlyPagesCompressAndDecompressBitIdentically) {
  constexpr size_t NumVars = 2 * ShadowEagerVarLimit; // paged: 256 pages
  ShadowMemoryPolicy P;
  P.Enabled = true; // defaults: ColdAgeTicks = 2, no budget
  ShadowTable<Epoch> Table;
  Table.setPolicy(P);
  Table.reset(NumVars);
  ASSERT_TRUE(Table.governed());

  // Page 0: uniform (every occupied W identical) — packs with no deltas.
  for (uint32_t I = 0; I != ShadowPageVars; ++I)
    Table.slot(I).W = Epoch::make(1, 7);
  // Page 1: near-uniform (span 199 ≤ MaxDelta) — packs one byte per slot,
  // with holes (⊥ slots) that must survive the round trip.
  for (uint32_t I = 0; I != ShadowPageVars; I += 2)
    Table.slot(ShadowPageVars + I).W = Epoch::make(1, 1 + (I % 200));
  // Page 2: raw span 399 > MaxDelta — incompressible, must stay resident.
  Table.slot(2 * ShadowPageVars).W = Epoch::make(1, 1);
  Table.slot(2 * ShadowPageVars + 1).W = Epoch::make(1, 400);
  // Page 3: touched but still all-⊥ — released outright when cold.
  (void)Table.slot(3 * ShadowPageVars);
  const size_t BytesHot = Table.memoryBytes();

  // One tick is not cold enough (ColdAgeTicks = 2): everything resident.
  Table.maintain();
  EXPECT_EQ(Table.governorStats().PagesCompressed, 0u);
  EXPECT_EQ(Table.pageStateAt(0), ShadowPageState::Resident);

  // The second tick crosses the cold threshold.
  Table.maintain();
  EXPECT_EQ(Table.pageStateAt(0), ShadowPageState::Compressed);
  EXPECT_EQ(Table.pageStateAt(1), ShadowPageState::Compressed);
  EXPECT_EQ(Table.pageStateAt(2), ShadowPageState::Resident);
  EXPECT_EQ(Table.pageStateAt(3), ShadowPageState::Untouched);
  EXPECT_EQ(Table.governorStats().PagesCompressed, 2u);
  EXPECT_EQ(Table.governorStats().PagesFreed, 1u);
  EXPECT_EQ(Table.residentPages(), 1u);
  EXPECT_LT(Table.memoryBytes(), BytesHot);

  // Touching a compressed slot re-expands the page bit-identically.
  for (uint32_t I = 0; I != ShadowPageVars; ++I) {
    EXPECT_EQ(Table.slot(I).W.raw(), Epoch::make(1, 7).raw()) << I;
    EXPECT_EQ(Table.slot(I).R.raw(), 0u) << I;
  }
  for (uint32_t I = 0; I != ShadowPageVars; ++I) {
    const uint64_t Want = I % 2 == 0 ? Epoch::make(1, 1 + (I % 200)).raw() : 0;
    EXPECT_EQ(Table.slot(ShadowPageVars + I).W.raw(), Want) << I;
    EXPECT_EQ(Table.slot(ShadowPageVars + I).R.raw(), 0u) << I;
  }
  EXPECT_EQ(Table.governorStats().PagesDecompressed, 2u);
  EXPECT_EQ(Table.pageStateAt(0), ShadowPageState::Resident);
  EXPECT_EQ(Table.slot(2 * ShadowPageVars + 1).W, Epoch::make(1, 400));
  EXPECT_EQ(Table.governorStats().PagesSummarized, 0u); // lossless only
}

TEST(ShadowTable, WatermarkTripShedsColdPagesOldestFirstWithHysteresis) {
  constexpr size_t NumVars = 2 * ShadowEagerVarLimit;
  ShadowMemoryPolicy P;
  P.Enabled = true;
  P.BudgetBytes = 64 * 1024; // low watermark at 48 KiB (default 0.75)
  ShadowTable<Epoch> Table;
  Table.setPolicy(P);
  Table.reset(NumVars);

  // Twenty resident pages ≈ 80 KiB of page storage: the high watermark
  // trips mid-streak, but nothing is cold in the current generation so
  // shedding stalls (and must not spin re-scanning, nor re-trip).
  for (uint32_t PI = 0; PI != 20; ++PI)
    Table.slot(PI * ShadowPageVars).W = Epoch::make(1, 10 + PI);
  EXPECT_EQ(Table.governorStats().BudgetTrips, 1u);
  EXPECT_EQ(Table.governorStats().PagesSummarized, 0u);
  EXPECT_GT(Table.memoryBytes(), P.BudgetBytes);
  EXPECT_GE(Table.governorStats().ShadowBytesHighWater, Table.memoryBytes());

  // The next generation makes the streak cold: shedding folds the oldest
  // pages (index-ordered among equals) down to the low watermark and
  // stops there — not at zero.
  Table.maintain();
  const ShadowGovernorStats &S = Table.governorStats();
  EXPECT_GT(S.PagesSummarized, 0u);
  EXPECT_LT(S.PagesSummarized, 20u);
  EXPECT_EQ(Table.pageStateAt(0), ShadowPageState::Summarized);
  EXPECT_EQ(Table.pageStateAt(19), ShadowPageState::Resident);
  EXPECT_LE(Table.memoryBytes(), 48u * 1024);
  EXPECT_EQ(S.BudgetTrips, 1u); // armed once, no thrash

  // The page summary is the sound fold: the single writer's epoch, no
  // read state, and every variable of the region aliases the one slot.
  EXPECT_EQ(Table.summaryAt(0).W, Epoch::make(1, 10));
  EXPECT_EQ(Table.summaryAt(0).R.raw(), 0u);
  EXPECT_EQ(&Table.slot(0), &Table.slot(5));

  // Under the low watermark the trip is disarmed: survivors compress on
  // their own cold schedule and new touches don't re-trip.
  Table.maintain();
  EXPECT_GT(Table.governorStats().PagesCompressed, 0u);
  Table.slot(30 * ShadowPageVars).W = Epoch::make(2, 1);
  EXPECT_EQ(Table.governorStats().BudgetTrips, 1u);
}

TEST(ShadowTable, DeniedPageFaultServesPageGranularitySummary) {
  ShadowMemoryPolicy P;
  P.Enabled = true;
  P.FailPageAllocAt = 0; // the very first page allocation is denied
  ShadowTable<Epoch> Table;
  Table.setPolicy(P);
  Table.reset(2 * ShadowEagerVarLimit);

  // The denied fault-in allocates nothing: the region degrades to one
  // page-granularity slot and the access is served from it.
  Epoch W = Epoch::make(2, 9);
  Table.slot(3 * ShadowPageVars + 100).W = W;
  EXPECT_EQ(Table.residentPages(), 0u);
  EXPECT_EQ(Table.pageStateAt(3), ShadowPageState::Summarized);
  EXPECT_EQ(Table.governorStats().AllocDenied, 1u);
  EXPECT_EQ(Table.governorStats().PagesSummarized, 1u);
  // Every variable of the denied region shares the slot.
  EXPECT_EQ(Table.slot(3 * ShadowPageVars).W, W);
  EXPECT_EQ(&Table.slot(3 * ShadowPageVars), &Table.slot(3 * ShadowPageVars + 511));

  // The fault is ordinal-keyed and single-shot: the next region faults in
  // normally and the denial is not re-taken.
  Table.slot(0).W = Epoch::make(1, 1);
  EXPECT_EQ(Table.residentPages(), 1u);
  EXPECT_EQ(Table.pageStateAt(0), ShadowPageState::Resident);
  EXPECT_EQ(Table.governorStats().AllocDenied, 1u);
}

TEST(ShadowTable, DeniedSideStoreGrowthRecyclesHandlesViaShedding) {
  ShadowMemoryPolicy P;
  P.Enabled = true;
  P.FailInflateAt = 2; // the third fresh growth is denied
  ShadowTable<Epoch> Table;
  Table.setPolicy(P);
  Table.reset(2 * ShadowEagerVarLimit);

  // Two read-shared variables on page 0, plus one write epoch — the cold
  // state a denied growth can shed for parts.
  Epoch H1 = Table.inflate();
  Table.clockFor(H1).set(1, 5);
  Table.clockFor(H1).set(2, 3);
  Epoch H2 = Table.inflate();
  Table.clockFor(H2).set(1, 7);
  Table.clockFor(H2).set(3, 2);
  Table.slot(10).R = H1;
  Table.slot(10).W = Epoch::make(1, 4);
  Table.slot(20).R = H2;
  Table.maintain(); // page 0 is now cold (untouched this generation)

  // Denied growth: shedding summarizes page 0, whose deflated handles
  // refill the free list, and the inflation recycles instead of growing.
  Epoch H3 = Table.inflate();
  EXPECT_EQ(Table.governorStats().AllocDenied, 1u);
  EXPECT_EQ(Table.governorStats().PagesSummarized, 1u);
  EXPECT_EQ(Table.sideStoreSlots(), 2u); // no growth happened
  ASSERT_TRUE(ShadowTable<Epoch>::isInflated(H3));
  EXPECT_EQ(Table.clockFor(H3).get(1), 0u); // recycled buffers are ⊥

  // The summary joined both read clocks (soundness: every prior reader
  // still constrains a later writer) and kept the lone write epoch.
  EXPECT_EQ(Table.pageStateAt(0), ShadowPageState::Summarized);
  const ShadowTable<Epoch>::Slot &Sum = Table.summaryAt(0);
  EXPECT_EQ(Sum.W, Epoch::make(1, 4));
  ASSERT_TRUE(ShadowTable<Epoch>::isInflated(Sum.R));
  const VectorClock &Joined = Table.clockFor(Sum.R);
  EXPECT_EQ(Joined.get(1), 7u);
  EXPECT_EQ(Joined.get(2), 3u);
  EXPECT_EQ(Joined.get(3), 2u);
}

TEST(ShadowTable, SideStoreSortAtSnapshotChangesNoImageByte) {
  // Inflation order (page 1, page 0, page 2) disagrees with page order,
  // so snapshot-time compaction genuinely renumbers — and must still
  // change no serialized byte, because images never encode handles.
  TraceBuilder B;
  B.fork(0, 1).fork(0, 2);
  B.rd(1, 520).rd(2, 520);
  B.rd(1, 5).rd(2, 5);
  B.rd(1, 1030).rd(2, 1030);
  B.join(0, 1).join(0, 2);
  Trace T = B.take();

  FastTrackOptions Unsorted;
  Unsorted.SortSideStoreOnSnapshot = false;
  FastTrack Plain(Unsorted);
  FastTrack Sorted;
  replay(T, Plain);
  replay(T, Sorted);
  EXPECT_EQ(Plain.inflatedReadStates(), 3u);
  std::string PlainImage = shadowImage(Plain);
  EXPECT_EQ(shadowImage(Sorted), PlainImage);
  // Compaction is idempotent: snapshotting again changes nothing.
  EXPECT_EQ(shadowImage(Sorted), PlainImage);
}

TEST(ShadowTable, CompressedPagesSnapshotIdenticallyToResidentTwins) {
  // A streaming-write workload over ~100 page regions, with page-0 churn
  // afterwards to drive the access-keyed maintenance ticks while the
  // streamed pages cool, and one genuine race through a page that has
  // already been compressed (the decompress-on-touch path mid-analysis).
  TraceBuilder B;
  B.fork(0, 1).fork(0, 2);
  for (unsigned PI = 1; PI <= 100; ++PI)
    B.wr(1, PI * ShadowPageVars);
  B.wr(1, 140 * ShadowPageVars - 1); // max var 71679 → paged table
  for (int I = 0; I != 300; ++I)
    B.wr(1, 0).rd(1, 0);
  B.wr(2, ShadowPageVars); // unsynchronized: write-write race on page 1
  B.join(0, 1).join(0, 2);
  Trace T = B.take();
  ASSERT_GT(T.numVars(), ShadowEagerVarLimit);

  FastTrackOptions Gov;
  Gov.Memory.Enabled = true;
  Gov.Memory.MaintainEveryAccesses = 64;
  Gov.Memory.ColdAgeTicks = 1;
  FastTrack Governed(Gov);
  FastTrack Plain;
  replay(T, Governed);
  replay(T, Plain);

  // Compression-only governance (no budget) is lossless: warning for
  // warning and byte for byte against the ungoverned table, even though
  // most streamed pages sit compressed at snapshot time.
  EXPECT_GT(Governed.shadowGovernorStats().PagesCompressed, 0u);
  EXPECT_GT(Governed.shadowGovernorStats().PagesDecompressed, 0u);
  EXPECT_EQ(Governed.shadowGovernorStats().PagesSummarized, 0u);
  EXPECT_FALSE(Plain.warnings().empty());
  expectSameWarnings(Plain.warnings(), Governed.warnings(), "compressed");
  EXPECT_EQ(shadowImage(Governed), shadowImage(Plain));
}

TEST(ShadowTable, SummarizedPagesCheckpointAndRestore) {
  // Force real pressure shedding with a tiny budget, then demand the v2
  // kPageSummarized records restore to a byte-identical image — both into
  // a same-policy tool and into an ungoverned one (summaries are logical
  // state; restoring them must not require governance to be on).
  TraceBuilder B;
  B.fork(0, 1).fork(0, 2);
  B.rd(1, 5 * ShadowPageVars).rd(2, 5 * ShadowPageVars);     // inflated R
  B.rd(1, 5 * ShadowPageVars + 3).rd(2, 5 * ShadowPageVars + 3);
  B.join(0, 2);
  for (unsigned PI = 0; PI != 120; ++PI)
    B.wr(1, PI * ShadowPageVars + (PI % 7));
  B.wr(1, 140 * ShadowPageVars - 1);
  for (int I = 0; I != 400; ++I)
    B.rd(1, 3); // hot page 0 keeps the tick clock running
  B.join(0, 1);
  Trace T = B.take();

  FastTrackOptions Gov;
  Gov.Memory.Enabled = true;
  Gov.Memory.BudgetBytes = 24 * 1024;
  Gov.Memory.MaintainEveryAccesses = 32;
  Gov.Memory.ColdAgeTicks = 1;
  FastTrack Tool(Gov);
  replay(T, Tool);
  ASSERT_GT(Tool.shadowGovernorStats().BudgetTrips, 0u);
  ASSERT_GT(Tool.shadowGovernorStats().PagesSummarized, 0u);
  std::string Image = shadowImage(Tool);

  FastTrack SamePolicy(Gov);
  SamePolicy.begin(contextFor(T));
  ByteReader Reader(Image);
  ASSERT_TRUE(SamePolicy.restoreShadow(Reader));
  EXPECT_EQ(shadowImage(SamePolicy), Image);

  FastTrack Ungoverned;
  Ungoverned.begin(contextFor(T));
  ByteReader Reader2(Image);
  ASSERT_TRUE(Ungoverned.restoreShadow(Reader2));
  EXPECT_EQ(shadowImage(Ungoverned), Image);
}

TEST(ShadowTable, PagedMatchesDenseReferenceOnRandomTraces) {
  // The tentpole's equivalence guarantee, against an implementation that
  // shares no shadow code with the production detector. Variable counts
  // straddle several pages so faults, partial pages, and handle churn
  // all occur.
  for (uint64_t Seed = 1; Seed != 30; ++Seed) {
    RandomTraceConfig Config;
    Config.Seed = Seed;
    Config.NumThreads = 2 + Seed % 5;
    Config.NumVars = static_cast<unsigned>(ShadowPageVars - 2 + Seed * 97);
    Config.NumLocks = 1 + Seed % 3;
    Config.OpsPerThread = 150 + Seed % 100;
    Config.ChaosProbability = 0.05 * static_cast<double>(Seed % 8);
    Trace T = generateRandomTrace(Config);

    FastTrack Paged;
    DenseFastTrackReference Dense;
    replay(T, Paged);
    replay(T, Dense);
    expectSameWarnings(Dense.warnings(), Paged.warnings(), "random trace");
  }
}
