#include "detectors/DjitPlus.h"

#include "framework/Replay.h"

using namespace ft;

void DjitPlus::begin(const ToolContext &Context) {
  VectorClockToolBase::begin(Context);
  Vars.assign(Context.NumVars, VarState());
  Rules = DjitRuleStats();
}

ThreadId DjitPlus::conflictingThread(const VectorClock &Prior,
                                     ThreadId T) const {
  const VectorClock &Ct = threadClock(T);
  for (ThreadId U = 0; U != Prior.size(); ++U)
    if (Prior.get(U) > Ct.get(U))
      return U;
  return UnknownThread;
}

void DjitPlus::reportAccessRace(ThreadId T, VarId X, size_t OpIndex,
                                OpKind Kind, const VectorClock &Prior,
                                OpKind PriorKind) {
  RaceWarning W;
  W.Var = X;
  W.OpIndex = OpIndex;
  W.CurrentThread = T;
  W.CurrentKind = Kind;
  W.PriorThread = conflictingThread(Prior, T);
  W.PriorKind = PriorKind;
  W.Detail = std::string(opKindName(PriorKind)) + "-" +
             opKindName(Kind) + " race";
  reportRace(std::move(W));
}

bool DjitPlus::onRead(ThreadId T, VarId X, size_t OpIndex) {
  VarState &State = Vars[X];
  // [DJIT+ READ SAME EPOCH]: 78.0 % of reads in the paper's benchmarks.
  if (State.R.get(T) == currentClock(T)) {
    ++Rules.ReadSameEpoch;
    return false;
  }
  // [DJIT+ READ]: O(n) comparison Wx ⊑ Ct.
  ++Rules.ReadGeneral;
  if (!State.W.leq(threadClock(T)))
    reportAccessRace(T, X, OpIndex, OpKind::Read, State.W, OpKind::Write);
  State.R.set(T, currentClock(T));
  return true;
}

bool DjitPlus::onWrite(ThreadId T, VarId X, size_t OpIndex) {
  VarState &State = Vars[X];
  // [DJIT+ WRITE SAME EPOCH]: 71.0 % of writes.
  if (State.W.get(T) == currentClock(T)) {
    ++Rules.WriteSameEpoch;
    return false;
  }
  // [DJIT+ WRITE]: two O(n) comparisons.
  ++Rules.WriteGeneral;
  const VectorClock &Ct = threadClock(T);
  bool WriteRace = !State.W.leq(Ct);
  bool ReadRace = !State.R.leq(Ct);
  if (WriteRace)
    reportAccessRace(T, X, OpIndex, OpKind::Write, State.W, OpKind::Write);
  else if (ReadRace)
    reportAccessRace(T, X, OpIndex, OpKind::Write, State.R, OpKind::Read);
  State.W.set(T, currentClock(T));
  return true;
}

size_t DjitPlus::shadowBytes() const {
  size_t Bytes = VectorClockToolBase::shadowBytes();
  for (const VarState &State : Vars)
    Bytes += sizeof(VarState) + State.R.memoryBytes() + State.W.memoryBytes();
  return Bytes;
}

FT_REGISTER_FAST_REPLAY(::ft::DjitPlus);
