//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifier types for the entities appearing in multithreaded program
/// traces (Figure 1 of the paper): threads t, u ∈ Tid, variables x ∈ Var,
/// locks m ∈ Lock, and volatile variables vx ∈ VolatileVar.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_IDS_H
#define FASTTRACK_TRACE_IDS_H

#include <cstdint>

namespace ft {

/// Thread identifier. Thread 0 is the main thread of every trace.
using ThreadId = uint32_t;

/// Shared-variable identifier (an object field or array element in the
/// paper's Java setting).
using VarId = uint32_t;

/// Lock identifier.
using LockId = uint32_t;

/// Volatile-variable identifier. Volatiles live in their own id space;
/// the framework maps them into the extended L component of the analysis
/// state (Section 4, "Extensions").
using VolatileId = uint32_t;

/// Sentinel meaning "no target" for operations without one.
inline constexpr uint32_t NoTarget = ~0u;

} // namespace ft

#endif // FASTTRACK_TRACE_IDS_H
