//===--- TraceIOTest.cpp - trace text format round trips ------------------===//
//
// Round-trip, diagnostic, salvage-mode, and fuzz-robustness tests for the
// trace text format. The parser is the ingestion boundary of the whole
// pipeline, so besides the happy path this suite feeds it truncated,
// corrupt, and adversarial bytes and asserts it always answers with
// structured diagnostics — never a crash, never silent data loss.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "trace/RandomTrace.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace ft;

namespace {

Trace sampleTrace() {
  TraceBuilder B;
  B.fork(0, 1).wr(0, 2).lockedRd(1, 0, 2).volWr(0, 1).volRd(1, 1);
  B.barrier({0, 1}).atomicBegin(1).rd(1, 2).atomicEnd(1).join(0, 1);
  return B.take();
}

/// True when \p Report has at least one diagnostic at \p Sev.
bool hasSeverity(const ParseReport &Report, Severity Sev) {
  for (const Diagnostic &D : Report.Diags)
    if (D.Sev == Sev)
      return true;
  return false;
}

} // namespace

TEST(TraceIO, SerializeProducesOneLinePerOp) {
  Trace T = sampleTrace();
  std::string Text = serializeTrace(T);
  size_t Lines = 0;
  for (char C : Text)
    Lines += C == '\n';
  EXPECT_EQ(Lines, T.size());
}

TEST(TraceIO, RoundTripPreservesOperations) {
  Trace T = sampleTrace();
  std::string Text = serializeTrace(T);
  Trace Parsed;
  ParseReport Report = parseTrace(Text, Parsed);
  ASSERT_TRUE(Report.ok()) << Report.St.toString();
  EXPECT_EQ(Report.Records, T.size());
  EXPECT_EQ(Report.Skipped, 0u);
  ASSERT_EQ(Parsed.size(), T.size());
  for (size_t I = 0; I != T.size(); ++I) {
    EXPECT_EQ(Parsed[I].Kind, T[I].Kind) << "op " << I;
    EXPECT_EQ(Parsed[I].Thread, T[I].Thread) << "op " << I;
    if (T[I].Kind == OpKind::Barrier)
      EXPECT_EQ(Parsed.barrierSet(Parsed[I].Target),
                T.barrierSet(T[I].Target));
    else
      EXPECT_EQ(Parsed[I].Target, T[I].Target) << "op " << I;
  }
  EXPECT_EQ(Parsed.numThreads(), T.numThreads());
  EXPECT_EQ(Parsed.numVars(), T.numVars());
}

TEST(TraceIO, ParsesCommentsAndBlankLines) {
  Trace Parsed;
  ParseReport Report = parseTrace("# header\n\n  rd 0 1  # trailing\n\n",
                                  Parsed);
  ASSERT_TRUE(Report.ok()) << Report.St.toString();
  ASSERT_EQ(Parsed.size(), 1u);
  EXPECT_EQ(Parsed[0], rd(0, 1));
}

TEST(TraceIO, ParsesWindowsLineEndings) {
  Trace Parsed;
  EXPECT_TRUE(parseTrace("rd 0 1\r\nwr 1 2\r\n", Parsed).ok());
  EXPECT_EQ(Parsed.size(), 2u);
}

TEST(TraceIO, RejectsUnknownOperation) {
  Trace Parsed;
  ParseReport Report = parseTrace("read 0 1\n", Parsed);
  ASSERT_FALSE(Report.ok());
  EXPECT_EQ(Report.St.code(), StatusCode::ParseError);
  ASSERT_EQ(Report.Diags.size(), 1u);
  EXPECT_EQ(Report.Diags[0].Line, 1u);
  EXPECT_EQ(Report.Diags[0].Sev, Severity::Error);
  EXPECT_NE(Report.Diags[0].Message.find("unknown operation"),
            std::string::npos);
}

TEST(TraceIO, RejectsWrongArity) {
  Trace Parsed;
  EXPECT_FALSE(parseTrace("rd 0\n", Parsed).ok());
  EXPECT_FALSE(parseTrace("rd 0 1 2\n", Parsed).ok());
  EXPECT_FALSE(parseTrace("abegin 0 1\n", Parsed).ok());
}

TEST(TraceIO, RejectsBadNumbers) {
  Trace Parsed;
  EXPECT_FALSE(parseTrace("rd zero 1\n", Parsed).ok());
  EXPECT_FALSE(parseTrace("rd 0 -1\n", Parsed).ok());
  EXPECT_FALSE(parseTrace("rd 0 99999999999\n", Parsed).ok());
}

TEST(TraceIO, RejectsOutOfRangeIds) {
  // Ids at or above MaxEntityId must be rejected: 2^32-1 would alias the
  // NoTarget sentinel, and Trace::numThreads (max id + 1) would wrap.
  Trace Parsed;
  std::string AtLimit = "rd 0 " + std::to_string(MaxEntityId) + "\n";
  ParseReport Report = parseTrace(AtLimit, Parsed);
  ASSERT_FALSE(Report.ok());
  EXPECT_NE(Report.Diags[0].Message.find("out of range"), std::string::npos);

  EXPECT_FALSE(parseTrace("rd 4294967295 0\n", Parsed).ok());
  EXPECT_FALSE(parseTrace("fork 0 4294967295\n", Parsed).ok());
  EXPECT_FALSE(
      parseTrace("barrier 0 " + std::to_string(MaxEntityId) + "\n", Parsed)
          .ok());

  // Just below the bound parses.
  std::string BelowLimit = "rd 0 " + std::to_string(MaxEntityId - 1) + "\n";
  EXPECT_TRUE(parseTrace(BelowLimit, Parsed).ok());
  EXPECT_EQ(Parsed.numVars(), MaxEntityId);

  // A tighter app-specific bound is honored.
  ParseOptions Tight;
  Tight.MaxId = 100;
  EXPECT_FALSE(parseTrace("rd 0 100\n", Parsed, Tight).ok());
  EXPECT_TRUE(parseTrace("rd 0 99\n", Parsed, Tight).ok());
}

TEST(TraceIO, RejectsDuplicateBarrierThreads) {
  Trace Parsed;
  ParseReport Report = parseTrace("barrier 0 1 2 1\n", Parsed);
  ASSERT_FALSE(Report.ok());
  EXPECT_NE(Report.Diags[0].Message.find("duplicate thread id"),
            std::string::npos);
  EXPECT_TRUE(parseTrace("barrier 0 1 2\n", Parsed).ok());
}

TEST(TraceIO, ReportsCorrectLineNumber) {
  Trace Parsed;
  ParseReport Report = parseTrace("rd 0 1\n# ok\nwr 1\n", Parsed);
  ASSERT_FALSE(Report.ok());
  ASSERT_EQ(Report.Diags.size(), 1u);
  EXPECT_EQ(Report.Diags[0].Line, 3u);
  EXPECT_NE(Report.St.message().find("line 3"), std::string::npos);
}

TEST(TraceIO, BarrierNeedsThreads) {
  Trace Parsed;
  EXPECT_FALSE(parseTrace("barrier\n", Parsed).ok());
}

TEST(TraceIO, SalvageSkipsMalformedRecords) {
  ParseOptions Options;
  Options.Salvage = true;
  Trace Parsed;
  ParseReport Report = parseTrace(
      "rd 0 1\nbogus line\nwr 0 2\nrd 0\nbarrier 1 1\nrd 0 3\n", Parsed,
      Options);
  ASSERT_TRUE(Report.ok()) << Report.St.toString();
  EXPECT_EQ(Report.Records, 3u);
  EXPECT_EQ(Report.Skipped, 3u);
  ASSERT_EQ(Parsed.size(), 3u);
  EXPECT_EQ(Parsed[0], rd(0, 1));
  EXPECT_EQ(Parsed[1], wr(0, 2));
  EXPECT_EQ(Parsed[2], rd(0, 3));
  // One Warning per skipped record, anchored to its line, plus a summary.
  unsigned Warnings = 0;
  for (const Diagnostic &D : Report.Diags)
    if (D.Sev == Severity::Warning) {
      ++Warnings;
      EXPECT_NE(D.Line, 0u);
      EXPECT_EQ(D.Code, StatusCode::ParseError);
    }
  EXPECT_EQ(Warnings, 3u);
  EXPECT_TRUE(hasSeverity(Report, Severity::Note));
}

TEST(TraceIO, SalvageErrorBudgetAborts) {
  ParseOptions Options;
  Options.Salvage = true;
  Options.ErrorBudget = 2;
  Trace Parsed;
  ParseReport Report =
      parseTrace("x\ny\nz\nrd 0 1\n", Parsed, Options);
  ASSERT_FALSE(Report.ok());
  EXPECT_EQ(Report.St.code(), StatusCode::ParseError);
  EXPECT_NE(Report.St.message().find("budget"), std::string::npos);
  EXPECT_TRUE(hasSeverity(Report, Severity::Fatal));
  // The record after the abort point was never consumed.
  EXPECT_EQ(Report.Records, 0u);
}

TEST(TraceIO, SalvageFlagsTruncatedFinalRecord) {
  ParseOptions Options;
  Options.Salvage = true;
  Trace Parsed;
  // File cut off mid-record: last line lacks both its target and newline.
  ParseReport Report = parseTrace("rd 0 1\nwr 0", Parsed, Options);
  ASSERT_TRUE(Report.ok());
  EXPECT_EQ(Report.Records, 1u);
  EXPECT_EQ(Report.Skipped, 1u);
  bool FlaggedTruncation = false;
  for (const Diagnostic &D : Report.Diags)
    FlaggedTruncation |= D.Message.find("truncated") != std::string::npos;
  EXPECT_TRUE(FlaggedTruncation);
}

TEST(TraceIO, FileRoundTrip) {
  Trace T = sampleTrace();
  std::string Path = ::testing::TempDir() + "/ft_trace_io_test.trc";
  Status St = saveTraceFile(Path, T);
  ASSERT_TRUE(St.ok()) << St.toString();
  Trace Loaded;
  ParseReport Report = loadTraceFile(Path, Loaded);
  ASSERT_TRUE(Report.ok()) << Report.St.toString();
  EXPECT_EQ(Loaded.size(), T.size());
  std::remove(Path.c_str());
}

TEST(TraceIO, LoadMissingFileFails) {
  Trace Loaded;
  ParseReport Report = loadTraceFile("/nonexistent/path.trc", Loaded);
  ASSERT_FALSE(Report.ok());
  EXPECT_EQ(Report.St.code(), StatusCode::IoError);
}

TEST(TraceIO, StreamingLoadMatchesInMemoryParse) {
  // Large enough that the trace text spans several 64 KiB read chunks,
  // exercising the partial-line carry between chunks.
  RandomTraceConfig Config;
  Config.Seed = 7;
  Config.NumThreads = 8;
  Config.NumVars = 64;
  Config.OpsPerThread = 4000;
  Config.ChaosProbability = 0.1;
  Config.BarrierProbability = 0.02;
  Trace T = generateRandomTrace(Config);
  std::string Text = serializeTrace(T);
  ASSERT_GT(Text.size(), 3u << 16);

  std::string Path = ::testing::TempDir() + "/ft_trace_io_stream.trc";
  ASSERT_TRUE(saveTraceFile(Path, T).ok());
  Trace Loaded;
  ParseReport Report = loadTraceFile(Path, Loaded);
  ASSERT_TRUE(Report.ok()) << Report.St.toString();
  ASSERT_EQ(Loaded.size(), T.size());
  EXPECT_EQ(serializeTrace(Loaded), Text);
  std::remove(Path.c_str());
}

TEST(TraceIO, FuzzRoundTripRandomTraces) {
  // Random feasible traces of every operation kind survive
  // serialize → parse → serialize bit-identically.
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    RandomTraceConfig Config;
    Config.Seed = Seed;
    Config.NumThreads = 2 + Seed % 5;
    Config.OpsPerThread = 150;
    Config.ChaosProbability = 0.2;
    Config.BarrierProbability = 0.05;
    Config.EmitAtomicBlocks = Seed % 2 == 0;
    Trace T = generateRandomTrace(Config);
    std::string Text = serializeTrace(T);
    Trace Parsed;
    ParseReport Report = parseTrace(Text, Parsed);
    ASSERT_TRUE(Report.ok()) << "seed " << Seed << ": "
                             << Report.St.toString();
    ASSERT_EQ(Parsed.size(), T.size()) << "seed " << Seed;
    EXPECT_EQ(serializeTrace(Parsed), Text) << "seed " << Seed;
  }
}

TEST(TraceIO, FuzzGarbageNeverCrashes) {
  // Pure random bytes — binary, not just text — in both strict and
  // salvage mode: the parser must return structured diagnostics, never
  // crash or hang.
  Xoshiro256StarStar Rng(0xfeedface);
  for (int Case = 0; Case != 200; ++Case) {
    size_t Len = Rng.nextBelow(512);
    std::string Garbage;
    Garbage.reserve(Len);
    for (size_t I = 0; I != Len; ++I)
      Garbage.push_back(static_cast<char>(Rng.nextBelow(256)));
    Trace Parsed;
    ParseOptions Salvage;
    Salvage.Salvage = true;
    parseTrace(Garbage, Parsed); // must not crash
    ParseReport Report = parseTrace(Garbage, Parsed, Salvage);
    if (!Report.ok()) {
      EXPECT_EQ(Report.St.code(), StatusCode::ParseError) << "case " << Case;
    }
  }
}

TEST(TraceIO, FuzzCorruptedTracesNeverCrash) {
  // Start from a valid serialized trace and flip random bytes; strict
  // mode fails cleanly or succeeds, salvage mode keeps whatever held.
  RandomTraceConfig Config;
  Config.Seed = 3;
  Config.OpsPerThread = 100;
  Config.BarrierProbability = 0.05;
  std::string Text = serializeTrace(generateRandomTrace(Config));
  Xoshiro256StarStar Rng(0xc0ffee);
  for (int Case = 0; Case != 100; ++Case) {
    std::string Mutated = Text;
    unsigned Flips = 1 + Rng.nextBelow(8);
    for (unsigned F = 0; F != Flips; ++F)
      Mutated[Rng.nextBelow(Mutated.size())] =
          static_cast<char>(Rng.nextBelow(256));
    Trace Parsed;
    parseTrace(Mutated, Parsed); // must not crash
    ParseOptions Salvage;
    Salvage.Salvage = true;
    Salvage.ErrorBudget = 1u << 20;
    ParseReport Report = parseTrace(Mutated, Parsed, Salvage);
    EXPECT_TRUE(Report.ok()) << "case " << Case;
  }
}
