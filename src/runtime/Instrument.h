//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation API: drop-in concurrency primitives that emit
/// trace events into the live Engine — the hand-written analogue of the
/// bytecode instrumentation RoadRunner inserts automatically.
///
///   ft::runtime::Thread    std::thread + fork/join edges
///   ft::runtime::Mutex     std::mutex + acq/rel events (BasicLockable)
///   ft::runtime::CondVar   condition variable over Mutex; waiting emits
///                          the rel/acq pair a real wait performs
///   ft::runtime::Shared<T> a checked plain variable: FT_READ/FT_WRITE
///                          emit rd/wr events with *no* ordering semantics
///   ft::runtime::Volatile<T> a checked volatile: emits vrd/vwr, which
///                          carry happens-before edges (Section 4)
///   ft::runtime::Unchecked<T> the elision end state: same storage, no
///                          events — for data proven race-free; see also
///                          Shared<T>::downgrade() (docs/TOOL_AUTHORING.md)
///
/// With no Engine live, every shim is a plain pass-through, so the same
/// program runs instrumented or not.
///
/// Two design points worth their comments:
///
///  - **Ticket placement encodes the synchronization order.** lock()
///    emits after the native lock is held and unlock() before it is
///    given up, so for any mutex the merged stream orders rel(t,m)
///    before the next acq(u,m); Volatile writes ticket before the store
///    and reads after the load, so a read that observed a write follows
///    it in the stream. That is what makes ticket order a legal
///    linearization.
///  - **Shared<T> stores through a relaxed std::atomic.** The *logical*
///    race is preserved exactly (rd/wr events with no inter-thread
///    edges — FastTrack flags it), but the C++ program itself stays
///    well-defined and ThreadSanitizer-clean, so deliberately racy
///    example programs can run under the CI TSan job that certifies the
///    runtime's own internals.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_RUNTIME_INSTRUMENT_H
#define FASTTRACK_RUNTIME_INSTRUMENT_H

#include "runtime/Engine.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>

namespace ft::runtime {

/// Per-object cache of the dense id the live Engine assigned this object,
/// stamped with the session generation so an object outliving a session
/// re-interns in the next one instead of replaying a stale id.
class CachedId {
public:
  uint32_t get(Engine &E, EntityKind Kind, const void *Obj) {
    // Readers pair the Gen acquire with the release below, so a matching
    // generation guarantees the Id store is visible. Concurrent first
    // uses both intern (idempotent: same pointer, same id) and write the
    // same values.
    if (Gen.load(std::memory_order_acquire) == E.generation())
      return Id.load(std::memory_order_relaxed);
    uint32_t Dense = E.internId(Kind, Obj);
    Id.store(Dense, std::memory_order_relaxed);
    Gen.store(E.generation(), std::memory_order_release);
    return Dense;
  }

private:
  std::atomic<uint64_t> Gen{0};
  std::atomic<uint32_t> Id{0};
};

/// std::mutex that reports acq/rel to the live Engine. BasicLockable, so
/// std::lock_guard<Mutex> and CondVar::wait compose with it.
class Mutex {
public:
  void lock() {
    M.lock();
    if (Engine *E = Engine::current())
      E->emit(OpKind::Acquire, Id.get(*E, EntityKind::Lock, this));
  }

  void unlock() {
    if (Engine *E = Engine::current())
      E->emit(OpKind::Release, Id.get(*E, EntityKind::Lock, this));
    M.unlock();
  }

private:
  std::mutex M;
  CachedId Id;
};

/// Condition variable over ft::runtime::Mutex. std::condition_variable_any
/// waits by calling the lockable's unlock()/lock(), which are the
/// instrumented ones — so a wait emits exactly the rel(m) ... acq(m) pair
/// the underlying operation performs, with the tickets placed while the
/// mutex is held on each side. Signals carry no event: in the lock-based
/// happens-before model the edge comes from the mutex hand-off.
class CondVar {
public:
  void wait(Mutex &M) { CV.wait(M); }

  template <typename Predicate> void wait(Mutex &M, Predicate Pred) {
    CV.wait(M, std::move(Pred));
  }

  void notifyOne() { CV.notify_one(); }
  void notifyAll() { CV.notify_all(); }

private:
  std::condition_variable_any CV;
};

/// std::thread that reports fork/join edges. The fork event is ticketed
/// before the native thread starts; the join event after the native join
/// returns — bracketing every child event in the merged order, which is
/// exactly the feasibility constraint TraceValidator enforces. The dense
/// id is a recycled *slot* (see Engine): a pool churning thousands of
/// short-lived Threads reuses the slots of the ones already joined. When
/// the slot table is exhausted (max-live over OnlineOptions::MaxThreads),
/// the child still runs — untracked, its events dropped and counted, with
/// id() == Engine::NoThread — so running out of detector capacity never
/// aborts the application.
class Thread {
public:
  Thread() = default;

  template <typename Fn, typename... Args>
  explicit Thread(Fn &&F, Args &&...A) {
    Engine *E = Engine::current();
    if (!E) {
      Impl = std::thread(std::forward<Fn>(F), std::forward<Args>(A)...);
      return;
    }
    Child = E->forkThread();
    HasChild = Child != Engine::NoThread;
    Impl = std::thread(
        [E, Id = Child](std::decay_t<Fn> Body, std::decay_t<Args>... Rest) {
          // Bind before the body so the child's first event lands in its
          // own ring; untracked children bind to no slot so their events
          // are counted as dropped rather than auto-registering a foreign
          // thread (which would double-spend the exhausted table).
          if (Id != Engine::NoThread)
            E->bindCurrentThread(Id);
          else
            E->bindCurrentThreadUntracked();
          std::invoke(std::move(Body), std::move(Rest)...);
        },
        std::forward<Fn>(F), std::forward<Args>(A)...);
  }

  Thread(Thread &&) = default;
  Thread &operator=(Thread &&) = default;

  void join() {
    Impl.join();
    if (!HasChild)
      return;
    if (Engine *E = Engine::current())
      E->joinThread(Child);
  }

  bool joinable() const { return Impl.joinable(); }

  /// The child's slot id, or Engine::NoThread for an untracked child
  /// (forked after slot exhaustion). Note recycled slots mean two
  /// Threads whose lifetimes do not overlap may report the same id.
  ThreadId id() const { return Child; }

private:
  std::thread Impl;
  ThreadId Child = 0;
  bool HasChild = false;
};

/// A race-checked plain shared variable. read()/write() emit rd/wr events
/// carrying no synchronization, so unprotected concurrent use is a
/// genuine (logical) race the detector reports. T must be trivially
/// copyable (it lives in a std::atomic; see the file comment for why).
template <typename T> class Shared {
  static_assert(std::is_trivially_copyable_v<T>,
                "Shared<T> requires a trivially copyable T");

public:
  Shared() : Value{} {}
  explicit Shared(T Initial) : Value(Initial) {}

  T read() const {
    if (Engine *E = Engine::current()) {
      if (Checked.load(std::memory_order_relaxed))
        E->emit(OpKind::Read, Id.get(*E, EntityKind::Var, this));
      else
        E->noteElided();
    }
    return Value.load(std::memory_order_relaxed);
  }

  void write(T V) {
    if (Engine *E = Engine::current()) {
      if (Checked.load(std::memory_order_relaxed))
        E->emit(OpKind::Write, Id.get(*E, EntityKind::Var, this));
      else
        E->noteElided();
    }
    Value.store(V, std::memory_order_relaxed);
  }

  /// Stops emitting rd/wr for this variable; subsequent accesses only
  /// bump OnlineReport::EventsElided. The annotation path for variables
  /// an external analysis (or the author) proved race-free — the native
  /// analogue of the planner stamping Expr::ElideEvent. Unsound if the
  /// proof is wrong: a downgraded race is invisible to the detector.
  /// Call from a single thread before sharing, or under the lock that
  /// protects the variable.
  void downgrade() { Checked.store(false, std::memory_order_relaxed); }

  /// Re-enables emission (e.g. when a new phase invalidates the proof).
  void upgrade() { Checked.store(true, std::memory_order_relaxed); }

  bool checked() const { return Checked.load(std::memory_order_relaxed); }

private:
  std::atomic<T> Value;
  std::atomic<bool> Checked{true};
  mutable CachedId Id;
};

/// An *uninstrumented* shared variable: same relaxed-atomic storage as
/// Shared<T> (so deliberately concurrent use stays TSan-clean) but no
/// engine lookup, no event, no counter — the zero-overhead end state for
/// data the author statically knows is race-free (thread-local by
/// construction, or consistently lock-protected). Use Shared<T> +
/// downgrade() instead when the claim should remain auditable at runtime
/// (downgraded accesses are still counted in the session report).
template <typename T> class Unchecked {
  static_assert(std::is_trivially_copyable_v<T>,
                "Unchecked<T> requires a trivially copyable T");

public:
  Unchecked() : Value{} {}
  explicit Unchecked(T Initial) : Value(Initial) {}

  T read() const { return Value.load(std::memory_order_relaxed); }
  void write(T V) { Value.store(V, std::memory_order_relaxed); }

private:
  std::atomic<T> Value;
};

/// A race-checked volatile (Java volatile / C++ seq_cst atomic): emits
/// vrd/vwr events, which the Figure 3 extension rules treat as
/// synchronization — writes release, reads acquire. Writes ticket before
/// the store and reads after the load, so whenever a read observes a
/// write it also follows it in the merged stream.
template <typename T> class Volatile {
  static_assert(std::is_trivially_copyable_v<T>,
                "Volatile<T> requires a trivially copyable T");

public:
  Volatile() : Value{} {}
  explicit Volatile(T Initial) : Value(Initial) {}

  T read() const {
    T V = Value.load(std::memory_order_seq_cst);
    if (Engine *E = Engine::current())
      E->emit(OpKind::VolatileRead, Id.get(*E, EntityKind::Volatile, this));
    return V;
  }

  void write(T V) {
    if (Engine *E = Engine::current())
      E->emit(OpKind::VolatileWrite, Id.get(*E, EntityKind::Volatile, this));
    Value.store(V, std::memory_order_seq_cst);
  }

private:
  std::atomic<T> Value;
  mutable CachedId Id;
};

} // namespace ft::runtime

/// Access shims in the style of compiler-inserted instrumentation calls.
/// FT_READ(x) yields the value; FT_WRITE(x, v) stores it.
#define FT_READ(SharedVar) ((SharedVar).read())
#define FT_WRITE(SharedVar, Value) ((SharedVar).write(Value))

#endif // FASTTRACK_RUNTIME_INSTRUMENT_H
