//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny binary codec for checkpoint images: fixed-width little-endian
/// integers, length-prefixed strings, and an FNV-1a checksum over the
/// emitted bytes. The reader is fully bounds-checked and *sticky* — after
/// the first short or malformed read every subsequent read fails — so
/// deserializers can decode an entire record and test failed() once,
/// which keeps restore paths both short and safe on corrupt or truncated
/// images (the fault-injection suite feeds it garbage on purpose).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_SUPPORT_BYTESTREAM_H
#define FASTTRACK_SUPPORT_BYTESTREAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ft {

/// 64-bit FNV-1a over \p Data, seedable for incremental use.
inline uint64_t fnv1a(std::string_view Data,
                      uint64_t Seed = 0xcbf29ce484222325ULL) {
  uint64_t Hash = Seed;
  for (unsigned char C : Data) {
    Hash ^= C;
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

/// Appends little-endian fields to a growing byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }

  void u32(uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }

  void u64(uint64_t V) {
    for (unsigned I = 0; I != 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }

  /// Length-prefixed byte string.
  void str(std::string_view S) {
    u64(S.size());
    Buf.append(S);
  }

  const std::string &bytes() const { return Buf; }
  size_t size() const { return Buf.size(); }

  /// Checksum of everything written so far.
  uint64_t checksum() const { return fnv1a(Buf); }

private:
  std::string Buf;
};

/// Bounds-checked reader over an immutable byte buffer. All reads return
/// a value (zero/empty on failure) and latch the failure flag.
class ByteReader {
public:
  explicit ByteReader(std::string_view Data) : Data(Data) {}

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(Data[Pos++]);
  }

  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (unsigned I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Data[Pos++]))
           << (8 * I);
    return V;
  }

  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (unsigned I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Data[Pos++]))
           << (8 * I);
    return V;
  }

  std::string str() {
    uint64_t Len = u64();
    if (Fail || Len > Data.size() - Pos) {
      Fail = true;
      return std::string();
    }
    std::string S(Data.substr(Pos, Len));
    Pos += Len;
    return S;
  }

  /// True once any read ran past the end (and for all reads after).
  bool failed() const { return Fail; }

  /// Bytes not yet consumed.
  size_t remaining() const { return Fail ? 0 : Data.size() - Pos; }

  /// Checksum of the bytes consumed so far (for validating a trailing
  /// checksum field against everything that preceded it).
  uint64_t checksumConsumed() const { return fnv1a(Data.substr(0, Pos)); }

private:
  bool need(size_t N) {
    if (Fail || Data.size() - Pos < N)
      Fail = true;
    return !Fail;
  }

  std::string_view Data;
  size_t Pos = 0;
  bool Fail = false;
};

} // namespace ft

#endif // FASTTRACK_SUPPORT_BYTESTREAM_H
