//===----------------------------------------------------------------------===//
//
// Experiment E11 (extension) — parallel sharded replay scaling.
//
// FastTrack's access rules read thread clocks that change only at
// synchronization points, so offline replay can shard variables across
// worker threads (docs/ARCHITECTURE.md, "Sharded replay"). This harness
// measures the serial engine against 1/2/4/8-shard parallel replay on a
// compute-bound workload, for every sharding-capable detector, in the
// style of E2: absolute seconds plus speedup over serial.
//
// Expected on an N-core machine: speedup approaching min(shards, N) for
// the access-dominated detectors (BasicVC has the most work per access
// and scales best); 1-shard parallel ≈ serial plus pre-pass overhead.
// On a single-core machine every column is ≈ 1.0x — the table then
// documents the engine's overhead, not its scaling.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FastTrack.h"
#include "core/ToolRegistry.h"
#include "detectors/BasicVC.h"
#include "detectors/DjitPlus.h"
#include "detectors/Eraser.h"
#include "framework/ParallelReplay.h"
#include "support/Table.h"
#include "trace/RandomTrace.h"

#include <cstdio>
#include <thread>

using namespace ft;
using namespace ft::bench;

namespace {

/// Best-of-reps parallel replay through a fresh clone-capable tool named
/// \p ToolName (fresh instance per rep so rule counters never mix).
ParallelReplayResult timedParallel(const Trace &T, const std::string &ToolName,
                                   unsigned Shards) {
  ParallelReplayOptions Options;
  Options.NumShards = Shards;
  ParallelReplayResult Best;
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep) {
    auto Checker = createTool(ToolName);
    ParallelReplayResult Result = parallelReplay(T, *Checker, Options);
    if (Rep == 0 || Result.Total.Seconds < Best.Total.Seconds)
      Best = Result;
  }
  return Best;
}

double timedSerial(const Trace &T, const std::string &ToolName) {
  double Best = 0;
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep) {
    auto Checker = createTool(ToolName);
    double Seconds = replay(T, *Checker).Seconds;
    if (Rep == 0 || Seconds < Best)
      Best = Seconds;
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("bench_parallel_replay", argc, argv);
  banner("Parallel sharded replay: 1/2/4/8 shards vs the serial engine");

  // Compute-bound regime (the paper's crypt/lufact/sor shape): access-
  // dominated, moderately contended, enough variables that every shard
  // stays busy.
  RandomTraceConfig Config;
  Config.Seed = 1234;
  Config.NumThreads = 16;
  Config.NumVars = 4096;
  Config.NumLocks = 16;
  Config.NumVolatiles = 4;
  Config.OpsPerThread =
      static_cast<unsigned>(120000.0 * sizeFactor() / Config.NumThreads);
  Config.ChaosProbability = 0.001;
  Config.BarrierProbability = 0.002;
  Config.MaxAccessBurst = 4;
  // Array-sweep kernels barely lock: mostly thread-local and read-shared
  // slices, with a thin lock-protected reduction. Keeping sync events
  // rare also keeps the serial pre-pass (Amdahl's bound on any multicore
  // speedup) a small fraction of the work.
  Config.ThreadLocalShare = 0.55;
  Config.ReadSharedShare = 0.30;
  Trace T = generateRandomTrace(Config);

  std::printf("workload: %s events, %u threads, %u variables; "
              "hardware threads: %u\n\n",
              withCommas(T.size()).c_str(), T.numThreads(), T.numVars(),
              std::thread::hardware_concurrency());

  const unsigned ShardCounts[] = {1, 2, 4, 8};
  const char *Tools[] = {"eraser", "basicvc", "djit+", "fasttrack",
                         "fasttrack64"};

  Table Out;
  Out.addHeader({"Tool", "Serial", "1 shard", "2 shards", "4 shards",
                 "8 shards", "Speedup@4", "Mode"});
  for (const char *Name : Tools) {
    double SerialSeconds = timedSerial(T, Name);
    Report.metric(std::string(Name) + "_serial_seconds", SerialSeconds, "s");
    std::vector<std::string> Row = {createTool(Name)->name(),
                                    fixed(SerialSeconds * 1e3, 1) + "ms"};
    double At4 = 0;
    const char *Mode = "serial";
    for (unsigned Shards : ShardCounts) {
      ParallelReplayResult Result = timedParallel(T, Name, Shards);
      Row.push_back(fixed(Result.Total.Seconds * 1e3, 1) + "ms");
      if (Shards == 4)
        At4 = Result.Total.Seconds;
      Report.metric(std::string(Name) + "_shards" + std::to_string(Shards) +
                        "_seconds",
                    Result.Total.Seconds, "s");
      if (Result.Sharded)
        Mode = Result.Mode == ShardMode::SpineDriven ? "spine" : "sync-replay";
    }
    Row.push_back(slowdown(At4 > 0 ? SerialSeconds / At4 : 0));
    Report.metric(std::string(Name) + "_speedup_at4",
                  At4 > 0 ? SerialSeconds / At4 : 0, "x");
    Row.push_back(Mode);
    Out.addRow(Row);
  }
  std::fputs(Out.render().c_str(), stdout);

  // Pre-pass cost, once (it is tool-independent per mode). Sync-replay
  // mode collects the sync schedule only; spine-driven mode additionally
  // simulates it into the spine. The pre-pass is the serial fraction
  // that bounds any multicore speedup (Amdahl), so both are reported.
  ParallelReplayResult PlanOnly = timedParallel(T, "eraser", 4);
  ParallelReplayResult Spined = timedParallel(T, "fasttrack", 4);
  std::printf("\npre-pass at 4 shards: sync schedule %.1fms (%s); "
              "+ sync spine %.1fms (%s,\n%zu updates) — %.1f%% of "
              "the spine-driven total\n",
              PlanOnly.PrePassSeconds * 1e3,
              humanBytes(PlanOnly.PlanBytes).c_str(),
              (Spined.PrePassSeconds - PlanOnly.PrePassSeconds) * 1e3,
              humanBytes(Spined.SpineBytes).c_str(), Spined.SpineUpdates,
              Spined.Total.Seconds > 0
                  ? 100.0 * Spined.PrePassSeconds / Spined.Total.Seconds
                  : 0);
  std::printf("\nExpected shape: speedup grows toward min(shards, cores) "
              "for the access-dominated\ndetectors; identical warnings and "
              "rule counters to serial replay in every cell\n(asserted by "
              "tests/ParallelReplayTest.cpp).\n");
  return Report.write() ? 0 : 1;
}
