//===----------------------------------------------------------------------===//
//
// Precision comparison: run every detector on three synchronization
// idioms and watch where the imprecise tools go wrong — exactly the
// failure modes Section 5.1 of the paper reports:
//
//   1. fork/join hand-off      -> Eraser false alarm;
//   2. barrier phases          -> barrier-oblivious Eraser false alarm;
//   3. silent write->read race -> Eraser and Goldilocks miss it (the
//      hedc pattern); the precise tools report it.
//
//===----------------------------------------------------------------------===//

#include "core/ToolRegistry.h"
#include "detectors/Eraser.h"
#include "framework/Replay.h"
#include "hb/RaceOracle.h"
#include "trace/TraceBuilder.h"

#include <cstdio>

using namespace ft;

static void compare(const char *Title, const Trace &T) {
  std::printf("--- %s ---\n", Title);
  std::printf("ground truth (happens-before oracle): %zu racy variable(s)\n",
              racyVars(T).size());
  for (const std::string &Name : registeredToolNames()) {
    if (Name == "empty")
      continue;
    auto Detector = createTool(Name);
    replay(T, *Detector);
    std::printf("  %-11s -> %zu warning(s)", Name.c_str(),
                Detector->warnings().size());
    if (!Detector->warnings().empty())
      std::printf("  [first: %s]",
                  toString(Detector->warnings().front()).c_str());
    std::printf("\n");
  }
  std::printf("\n");
}

int main() {
  std::printf("Eraser vs FastTrack: precision on non-lock idioms\n"
              "=================================================\n\n");

  // 1. Race-free fork/join hand-off: parent initializes, child updates,
  //    parent reads after join. No locks anywhere — and no race.
  compare("fork/join hand-off (race-free)",
          TraceBuilder()
              .wr(0, 0)
              .fork(0, 1)
              .rd(1, 0)
              .wr(1, 0)
              .join(0, 1)
              .rd(0, 0)
              .take());

  // 2. Race-free barrier phases: thread 1 writes in phase one, thread 0
  //    writes in phase two, thread 1 reads in phase three.
  compare("barrier-separated phases (race-free)",
          TraceBuilder()
              .fork(0, 1)
              .wr(1, 0)
              .barrier({0, 1})
              .wr(0, 0)
              .barrier({0, 1})
              .rd(1, 0)
              .take());

  // 2b. The same barrier trace through an Eraser that does not reason
  //     about barriers (the paper: "the total number of warnings is about
  //     three times higher if ERASER does not reason about barriers").
  {
    Trace T = TraceBuilder()
                  .fork(0, 1)
                  .wr(1, 0)
                  .barrier({0, 1})
                  .wr(0, 0)
                  .barrier({0, 1})
                  .rd(1, 0)
                  .take();
    Eraser Oblivious(/*BarrierAware=*/false);
    replay(T, Oblivious);
    std::printf("--- barrier-oblivious Eraser on the same trace ---\n");
    std::printf("  eraser(-barriers) -> %zu warning(s)  [false alarm]\n\n",
                Oblivious.warnings().size());
  }

  // 3. A real race Eraser cannot see: writer hands data to a reader with
  //    no synchronization at all. Eraser's Exclusive->Shared transition
  //    stays silent; Goldilocks' thread-local fast path forgets the
  //    writer. FastTrack (and DJIT+/BasicVC) report it.
  compare("silent write->read hand-off (REAL race, the hedc pattern)",
          TraceBuilder().fork(0, 1).wr(0, 0).rd(1, 0).take());

  std::printf("Summary: the precise detectors (FastTrack, DJIT+, BasicVC) "
              "match the oracle on all three;\nEraser false-alarms on 1 "
              "and misses 3; Goldilocks' default fast path misses 3.\n");
  return 0;
}
