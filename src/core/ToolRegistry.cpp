#include "core/ToolRegistry.h"

#include "core/FastTrack.h"
#include "detectors/BasicVC.h"
#include "detectors/DjitPlus.h"
#include "detectors/EmptyTool.h"
#include "detectors/Eraser.h"
#include "detectors/Goldilocks.h"
#include "detectors/MultiRace.h"
#include "detectors/ThreadLocalFilter.h"

#include <algorithm>
#include <cctype>

using namespace ft;

std::unique_ptr<Tool> ft::createTool(const std::string &Name) {
  std::string Key = Name;
  std::transform(Key.begin(), Key.end(), Key.begin(), [](unsigned char C) {
    return static_cast<char>(std::tolower(C));
  });
  if (Key == "empty")
    return std::make_unique<EmptyTool>();
  if (Key == "tl")
    return std::make_unique<ThreadLocalFilter>();
  if (Key == "eraser")
    return std::make_unique<Eraser>();
  if (Key == "goldilocks")
    return std::make_unique<Goldilocks>();
  if (Key == "basicvc")
    return std::make_unique<BasicVC>();
  if (Key == "djit+" || Key == "djit")
    return std::make_unique<DjitPlus>();
  if (Key == "multirace")
    return std::make_unique<MultiRace>();
  if (Key == "fasttrack")
    return std::make_unique<FastTrack>();
  if (Key == "fasttrack64")
    return std::make_unique<FastTrack64>();
  return nullptr;
}

std::vector<std::string> ft::registeredToolNames() {
  return {"empty",   "eraser",    "multirace", "goldilocks",
          "basicvc", "djit+", "fasttrack"};
}
