//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online detection engine: race-check real std::thread programs with
/// any existing Tool, no trace file required.
///
/// This is the third producer column of the architecture diagram and the
/// first one fed by real concurrency — the deployment model of the paper
/// (RoadRunner instrumenting a live JVM), transplanted to native C++.
/// An Engine session looks like:
///
/// \code
///   FastTrack Detector;
///   ft::runtime::OnlineOptions Options;
///   Options.CapturePath = "run.trc";        // optional flight recorder
///   {
///     ft::runtime::Engine Engine(Detector, Options);
///     // ... run code built from ft::runtime::Thread / Mutex / Shared<T>
///     ft::runtime::OnlineReport Report = Engine.finish();
///   }
///   // Detector.warnings() holds the races, reported as they happened.
/// \endcode
///
/// How the pieces fit (each one a paper-adjacent engineering idea):
///
///  - **Tickets.** Every instrumentation point draws a global sequence
///    number (one relaxed fetch_add) at a moment when the real operation
///    has made it safe: an acquire is ticketed while the lock is held, a
///    release before it is given up, a fork before the child starts, a
///    join after the child is reaped. Ticket order is therefore a legal
///    linearization of the execution — the total order the framework's
///    analyses are defined over.
///  - **Rings.** Each thread publishes its ticketed events into a private
///    bounded SPSC ring (EventRing.h). Emit is wait-free until the ring
///    fills; a full ring parks the thread (bounded-queue backpressure),
///    so the application can never race unboundedly ahead of the
///    detector.
///  - **The sequencer.** One drain thread merges the rings by ticket
///    number into the totally-ordered stream and feeds the framework's
///    OnlineDriver, which applies the serial replay loop's semantics
///    (re-entrant lock filtering, raw op indices) to the unmodified Tool.
///    Detection runs entirely off the application's critical path.
///  - **The flight recorder.** The merged stream is optionally captured
///    as a Trace and written as a .trc file on finish(), so any online
///    run can be re-checked offline — against the hb/ oracle, another
///    detector, or the same tool for the equivalence guarantee.
///
/// Threads created through ft::runtime::Thread get fork/join edges; any
/// other thread that touches instrumented state is auto-registered on
/// first emit (its events are analyzed, conservatively unordered — but a
/// capture containing such a thread will fail TraceValidator's
/// fork-before-first-op rule, so instrument thread creation too).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_RUNTIME_ENGINE_H
#define FASTTRACK_RUNTIME_ENGINE_H

#include "clock/ClockStats.h"
#include "framework/OnlineDriver.h"
#include "runtime/EventRing.h"
#include "runtime/Interner.h"
#include "support/Status.h"
#include "support/Stopwatch.h"
#include "trace/Trace.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ft::runtime {

/// Options for one online session.
struct OnlineOptions {
  /// Shadow-state capacity announced to the tool (tools pre-size flat
  /// arrays and index them unchecked, so the engine enforces the bounds;
  /// exceeding one halts detection — never the application). The default
  /// FastTrack epoch layout caps threads at 256 anyway.
  unsigned MaxThreads = 64;
  unsigned MaxVars = 1u << 16;
  unsigned MaxLocks = 1024;
  unsigned MaxVolatiles = 1024;

  /// Per-thread event-ring capacity (rounded up to a power of two). The
  /// backpressure bound: an application thread more than this many events
  /// ahead of the sequencer parks until it drains.
  size_t RingCapacity = 1024;

  /// How many consecutive events the sequencer copies out of a ring per
  /// visit before dispatching them (EventRing::popRunInto). Larger
  /// batches amortize the ring's atomic hand-off and release backpressure
  /// space in bulk; events are dispatched in ticket order either way.
  size_t SequencerBatch = 256;

  /// Strip redundant re-entrant lock events, as replay() does.
  bool FilterReentrantLocks = true;

  /// Keep the merged stream as a Trace in the report (the flight
  /// recorder's in-memory form; needed for in-process re-checks).
  bool KeepCapture = true;

  /// When nonempty, write the merged stream to this .trc file on
  /// finish() — the on-disk flight recorder.
  std::string CapturePath;

  /// Run TraceValidator over the capture on finish() and attach any
  /// violations to the report's diagnostics.
  bool ValidateCapture = true;

  /// Online warning sink: invoked from the sequencer thread the moment a
  /// race is detected, with the full RaceWarning (thread/op context).
  std::function<void(const RaceWarning &)> OnWarning;
};

/// What one online session measured and captured.
struct OnlineReport {
  double Seconds = 0;            ///< Wall-clock session time.
  uint64_t EventsCaptured = 0;   ///< Raw merged-stream length.
  uint64_t EventsDispatched = 0; ///< Events reaching the tool (post filter).
  size_t NumWarnings = 0;        ///< Tool warnings at finish.
  ClockStats Clocks;             ///< VC ops spent by online detection.
  bool Halted = false;           ///< Detection stopped (capacity breach).
  std::vector<Diagnostic> Diags; ///< Halt reasons, I/O and validator issues.
  Trace Captured;                ///< The merged stream (when KeepCapture).
};

/// One online detection session over one Tool. Construct it, run
/// instrumented code, call finish() after joining every runtime Thread.
/// At most one Engine is live at a time (the instrumentation shims find
/// it through Engine::current()).
class Engine {
public:
  explicit Engine(Tool &Checker, OnlineOptions Options = OnlineOptions());
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Drains all in-flight events, stops the sequencer, calls the tool's
  /// end(), writes/validates the capture, and returns the measurements.
  /// All threads created through ft::runtime::Thread must be joined
  /// first. Callable once; the destructor calls it if the caller did not.
  OnlineReport finish();

  /// The live engine instrumentation attaches to, or nullptr when no
  /// session is active (shims become pass-throughs).
  static Engine *current();

  /// Monotone session stamp; instrumented objects cache (generation, id)
  /// pairs so ids never leak across sessions.
  uint64_t generation() const { return Gen; }

  // --- instrumentation back end (called by the shims in Instrument.h) ---

  /// Dense id for \p Obj in \p Kind's space.
  uint32_t internId(EntityKind Kind, const void *Obj) {
    return Interner.intern(Kind, Obj);
  }

  /// Emits one event from the calling thread, drawing the next global
  /// ticket. Parks while the thread's ring is full (backpressure); drops
  /// the event when detection has halted.
  void emit(OpKind Kind, uint32_t Target);

  /// Allocates a dense id for a child thread about to start and emits
  /// fork(current, child). Call before the native thread launches so the
  /// fork precedes the child's first event in ticket order.
  ThreadId forkThread();

  /// Emits join(current, child). Call after the native join returns so
  /// every child event precedes it in ticket order.
  void joinThread(ThreadId Child);

  /// Binds the calling thread to dense id \p Id (child bootstrap).
  void bindCurrentThread(ThreadId Id);

private:
  /// One registered thread: its dense id and its event ring.
  struct Channel {
    explicit Channel(ThreadId Id, size_t RingCapacity)
        : Id(Id), Ring(RingCapacity) {}
    ThreadId Id;
    EventRing Ring;
  };

  Channel *channelForCurrentThread();
  Channel *registerThread(ThreadId Id);
  void sequencerLoop();
  void deliver(ThreadId T, const OnlineEvent &E);

  Tool &Checker;
  OnlineOptions Options;
  uint64_t Gen;
  EntityInterner Interner;
  OnlineDriver Driver;
  Trace Capture;
  bool Capturing;

  /// Registered channels; guarded by ChannelMu. Channels are never
  /// removed before teardown, so raw pointers handed to TLS bindings and
  /// the sequencer stay valid. NumChannels mirrors Channels.size() so the
  /// sequencer can notice registrations without taking the mutex on every
  /// sweep (it locks only to rebuild its snapshot).
  std::mutex ChannelMu;
  std::vector<std::unique_ptr<Channel>> Channels;
  std::atomic<size_t> NumChannels{0};

  std::atomic<uint64_t> Seq{0};      ///< Next ticket to hand out.
  std::atomic<uint64_t> NextSeq{0};  ///< Next ticket the sequencer expects.
  std::atomic<bool> Running{true};   ///< Cleared by finish().
  std::atomic<bool> Halted{false};   ///< Detection stopped; emits drop.

  std::thread SequencerThread;
  ClockStats SequencerClocks; ///< Sequencer-thread VC delta (set at exit).
  Stopwatch Watch;
  OnlineReport Report;
  bool Finished = false;
};

} // namespace ft::runtime

#endif // FASTTRACK_RUNTIME_ENGINE_H
