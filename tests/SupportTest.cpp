//===--- SupportTest.cpp - unit tests for src/support ---------------------===//

#include "support/Format.h"
#include "support/MemoryTracker.h"
#include "support/Rng.h"
#include "support/Stopwatch.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <set>

using namespace ft;

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64, DiffersAcrossSeeds) {
  SplitMix64 A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(SplitMix64Hash, IsBijectiveOnSamples) {
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I != 10000; ++I)
    Seen.insert(splitMix64(I));
  EXPECT_EQ(Seen.size(), 10000u);
}

TEST(Xoshiro, IsDeterministic) {
  Xoshiro256StarStar A(7), B(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Xoshiro, NextBelowStaysInRange) {
  Xoshiro256StarStar Rng(123);
  for (int I = 0; I != 10000; ++I)
    EXPECT_LT(Rng.nextBelow(17), 17u);
}

TEST(Xoshiro, NextBelowCoversRange) {
  Xoshiro256StarStar Rng(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 1000; ++I)
    Seen.insert(Rng.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Xoshiro, NextInRangeInclusive) {
  Xoshiro256StarStar Rng(5);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 5000; ++I) {
    int64_t V = Rng.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Xoshiro, NextBoolExtremes) {
  Xoshiro256StarStar Rng(5);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(Rng.nextBool(0.0));
    EXPECT_TRUE(Rng.nextBool(1.0));
  }
}

TEST(Xoshiro, NextBoolRoughlyFair) {
  Xoshiro256StarStar Rng(11);
  int Heads = 0;
  for (int I = 0; I != 10000; ++I)
    Heads += Rng.nextBool(0.5);
  EXPECT_GT(Heads, 4500);
  EXPECT_LT(Heads, 5500);
}

TEST(Xoshiro, NextDoubleUnitInterval) {
  Xoshiro256StarStar Rng(3);
  for (int I = 0; I != 10000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(PickWeighted, RespectsZeroWeights) {
  Xoshiro256StarStar Rng(21);
  double Weights[] = {0.0, 1.0, 0.0};
  for (int I = 0; I != 200; ++I)
    EXPECT_EQ(pickWeighted(Rng, Weights, 3), 1u);
}

TEST(PickWeighted, ApproximatesDistribution) {
  Xoshiro256StarStar Rng(22);
  double Weights[] = {82.3, 14.5, 3.2};
  int Counts[3] = {0, 0, 0};
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    ++Counts[pickWeighted(Rng, Weights, 3)];
  EXPECT_NEAR(Counts[0] / double(N), 0.823, 0.01);
  EXPECT_NEAR(Counts[1] / double(N), 0.145, 0.01);
  EXPECT_NEAR(Counts[2] / double(N), 0.032, 0.01);
}

TEST(Format, WithCommas) {
  EXPECT_EQ(withCommas(0), "0");
  EXPECT_EQ(withCommas(999), "999");
  EXPECT_EQ(withCommas(1000), "1,000");
  EXPECT_EQ(withCommas(1234567), "1,234,567");
  EXPECT_EQ(withCommas(796816918), "796,816,918");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(2.345, 1), "2.3");
  EXPECT_EQ(fixed(2.345, 2), "2.35"); // rounds
  EXPECT_EQ(fixed(10.0, 0), "10");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(humanBytes(512), "512 B");
  EXPECT_EQ(humanBytes(2048), "2.0 KB");
  EXPECT_EQ(humanBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(Format, Slowdown) { EXPECT_EQ(slowdown(8.53), "8.5x"); }

TEST(Format, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(MemoryTracker, TracksPeakAndLive) {
  MemoryTracker Tracker;
  Tracker.allocate(100);
  Tracker.allocate(50);
  EXPECT_EQ(Tracker.liveBytes(), 150u);
  EXPECT_EQ(Tracker.peakBytes(), 150u);
  Tracker.release(100);
  EXPECT_EQ(Tracker.liveBytes(), 50u);
  EXPECT_EQ(Tracker.peakBytes(), 150u);
  Tracker.allocate(10);
  EXPECT_EQ(Tracker.peakBytes(), 150u);
  EXPECT_EQ(Tracker.totalBytes(), 160u);
  Tracker.reset();
  EXPECT_EQ(Tracker.liveBytes(), 0u);
}

TEST(MemoryTracker, ReleaseClampsAtZero) {
  MemoryTracker Tracker;
  Tracker.allocate(10);
  Tracker.release(100);
  EXPECT_EQ(Tracker.liveBytes(), 0u);
}

TEST(MemoryTracker, SampleLiveReplacesReadingAndUpdatesPeak) {
  MemoryTracker Tracker;
  Tracker.sampleLive(500);
  EXPECT_EQ(Tracker.liveBytes(), 500u);
  EXPECT_EQ(Tracker.peakBytes(), 500u);
  // A lower sample replaces live (state shrank) but peak is sticky.
  Tracker.sampleLive(200);
  EXPECT_EQ(Tracker.liveBytes(), 200u);
  EXPECT_EQ(Tracker.peakBytes(), 500u);
}

TEST(MemoryTracker, BudgetBreachDetection) {
  MemoryTracker Tracker;
  EXPECT_FALSE(Tracker.overBudget()); // 0 budget = unlimited
  Tracker.sampleLive(1u << 20);
  EXPECT_FALSE(Tracker.overBudget());
  Tracker.setBudget(1000);
  EXPECT_EQ(Tracker.budgetBytes(), 1000u);
  EXPECT_TRUE(Tracker.overBudget());
  Tracker.sampleLive(1000);
  EXPECT_FALSE(Tracker.overBudget()); // at the budget, not over it
  Tracker.sampleLive(1001);
  EXPECT_TRUE(Tracker.overBudget());
}

TEST(MemoryTracker, BudgetSurvivesReset) {
  // The budget is configuration, not a counter: the governor resets the
  // counters between degraded attempts but the limit stays.
  MemoryTracker Tracker;
  Tracker.setBudget(64);
  Tracker.sampleLive(100);
  Tracker.reset();
  EXPECT_EQ(Tracker.liveBytes(), 0u);
  EXPECT_EQ(Tracker.budgetBytes(), 64u);
  EXPECT_FALSE(Tracker.overBudget());
  Tracker.sampleLive(65);
  EXPECT_TRUE(Tracker.overBudget());
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch Watch;
  EXPECT_GE(Watch.seconds(), 0.0);
  Watch.restart();
  EXPECT_GE(Watch.nanoseconds(), 0u);
}

TEST(Table, RendersAlignedColumns) {
  Table T;
  T.addHeader({"Program", "Slowdown"});
  T.addRow({"colt", "0.9x"});
  T.addRow({"montecarlo", "6.4x"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("Program"), std::string::npos);
  EXPECT_NE(Out.find("montecarlo"), std::string::npos);
  // Numeric column is right-aligned: "0.9x" gets padded to width of header.
  EXPECT_NE(Out.find("    0.9x"), std::string::npos);
}

TEST(Table, SeparatorSpansWidth) {
  Table T;
  T.addHeader({"A", "B"});
  T.addSeparator();
  T.addRow({"x", "y"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("----"), std::string::npos);
}
