//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string-formatting helpers shared by benches, examples, and error
/// reporting. Kept dependency-free (no iostream in library code).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_SUPPORT_FORMAT_H
#define FASTTRACK_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace ft {

/// Renders \p Value with thousands separators, e.g. 1234567 -> "1,234,567".
std::string withCommas(uint64_t Value);

/// Renders \p Value with \p Digits digits after the decimal point.
std::string fixed(double Value, int Digits = 1);

/// Renders a byte count in a human-friendly unit, e.g. "12.4 MB".
std::string humanBytes(uint64_t Bytes);

/// Renders a ratio as a slowdown factor, e.g. 8.53 -> "8.5x".
std::string slowdown(double Ratio);

/// Pads \p S on the left to \p Width columns (right alignment).
std::string padLeft(const std::string &S, size_t Width);

/// Pads \p S on the right to \p Width columns (left alignment).
std::string padRight(const std::string &S, size_t Width);

} // namespace ft

#endif // FASTTRACK_SUPPORT_FORMAT_H
