//===----------------------------------------------------------------------===//
//
// Experiment E10 (extension) — detector cost as the thread count grows.
//
// The paper's complexity argument: a VC-based detector pays O(n) time
// per first-in-epoch access while FastTrack pays O(1). The Java
// benchmarks cap at 11 threads, compressing the visible gap; this
// harness sweeps the thread count directly, and exercises the 64-bit
// epoch variant (Section 4) beyond the 8-bit tid space.
//
// Expected: Empty/Eraser/FastTrack slowdowns stay roughly flat as
// threads grow; DJIT+ and especially BasicVC climb with n.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FastTrack.h"
#include "detectors/BasicVC.h"
#include "detectors/DjitPlus.h"
#include "detectors/EmptyTool.h"
#include "detectors/Eraser.h"
#include "support/Table.h"
#include "trace/RandomTrace.h"

#include <cstdio>

using namespace ft;
using namespace ft::bench;

int main(int argc, char **argv) {
  BenchReport Report("bench_thread_scaling", argc, argv);
  banner("Thread scaling: per-access cost vs thread count");

  Table Out;
  Out.addHeader({"Threads", "Events", "Eraser", "BasicVC", "DJIT+",
                 "FastTrack", "FastTrack64"});

  const unsigned ThreadCounts[] = {4, 16, 64, 192, 400};
  for (unsigned Threads : ThreadCounts) {
    RandomTraceConfig Config;
    Config.Seed = 99;
    Config.NumThreads = Threads;
    Config.NumVars = Threads * 4 + 64;
    Config.NumLocks = 8;
    Config.NumVolatiles = 2;
    // Keep total events roughly constant across rows.
    Config.OpsPerThread = static_cast<unsigned>(
        (400000.0 * sizeFactor()) / Threads / 5);
    Config.ChaosProbability = 0.002;
    Config.BarrierProbability = 0.0;
    Config.MaxAccessBurst = 4;
    Trace T = generateRandomTrace(Config);

    EmptyTool Baseline;
    double EmptySeconds = timedReplay(T, Baseline).Seconds;
    auto slowdownOf = [&](Tool &Checker, const char *Name) {
      double Seconds = timedReplay(T, Checker).Seconds;
      double Ratio = EmptySeconds > 0 ? Seconds / EmptySeconds : 0;
      Report.metric("t" + std::to_string(Threads) + "_" + Name + "_slowdown",
                    Ratio, "x");
      return slowdown(Ratio);
    };

    std::vector<std::string> Row = {std::to_string(Threads),
                                    withCommas(T.size())};
    Eraser E;
    Row.push_back(slowdownOf(E, "eraser"));
    BasicVC Basic;
    Row.push_back(slowdownOf(Basic, "basicvc"));
    DjitPlus Djit;
    Row.push_back(slowdownOf(Djit, "djit+"));
    if (Threads <= 250) {
      FastTrack Ft;
      Row.push_back(slowdownOf(Ft, "fasttrack"));
    } else {
      Row.push_back("-"); // 8-bit tids exhausted: FastTrack64 territory
    }
    FastTrack64 Ft64;
    Row.push_back(slowdownOf(Ft64, "fasttrack64"));
    Out.addRow(Row);
  }

  std::fputs(Out.render().c_str(), stdout);
  std::printf("\nExpected shape: BasicVC and DJIT+ grow with the thread "
              "count (O(n) VC comparisons);\nFastTrack's epoch fast paths "
              "stay flat, and FastTrack64 extends past 256 threads with "
              "no penalty at small n.\n");
  return Report.write() ? 0 : 1;
}
