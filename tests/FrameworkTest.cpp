//===--- FrameworkTest.cpp - replay dispatcher, granularity, pipelines ----===//

#include "core/FastTrack.h"
#include "detectors/EmptyTool.h"
#include "detectors/Eraser.h"
#include "detectors/ThreadLocalFilter.h"
#include "framework/Replay.h"
#include "framework/VectorClockToolBase.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

/// Records every event it receives, for dispatch-order assertions.
class RecordingTool : public Tool {
public:
  const char *name() const override { return "Recorder"; }
  bool onRead(ThreadId T, VarId X, size_t) override {
    Log.push_back("rd " + std::to_string(T) + " " + std::to_string(X));
    return true;
  }
  bool onWrite(ThreadId T, VarId X, size_t) override {
    Log.push_back("wr " + std::to_string(T) + " " + std::to_string(X));
    return true;
  }
  void onAcquire(ThreadId T, LockId M, size_t) override {
    Log.push_back("acq " + std::to_string(T) + " " + std::to_string(M));
  }
  void onRelease(ThreadId T, LockId M, size_t) override {
    Log.push_back("rel " + std::to_string(T) + " " + std::to_string(M));
  }
  void onBarrier(const std::vector<ThreadId> &Threads, size_t) override {
    Log.push_back("barrier " + std::to_string(Threads.size()));
  }
  void begin(const ToolContext &Context) override { Ctx = Context; }

  std::vector<std::string> Log;
  ToolContext Ctx;
};

} // namespace

TEST(Replay, DispatchesEventsInOrder) {
  RecordingTool Tool;
  Trace T = TraceBuilder().rd(0, 1).acq(0, 2).wr(0, 1).rel(0, 2).take();
  ReplayResult R = replay(T, Tool);
  std::vector<std::string> Expected = {"rd 0 1", "acq 0 2", "wr 0 1",
                                       "rel 0 2"};
  EXPECT_EQ(Tool.Log, Expected);
  EXPECT_EQ(R.Events, 4u);
}

TEST(Replay, ContextCarriesEntityCounts) {
  RecordingTool Tool;
  Trace T = TraceBuilder().fork(0, 2).wr(2, 9).acq(2, 4).rel(2, 4).take();
  replay(T, Tool);
  EXPECT_EQ(Tool.Ctx.NumThreads, 3u);
  EXPECT_EQ(Tool.Ctx.NumVars, 10u);
  EXPECT_EQ(Tool.Ctx.NumLocks, 5u);
}

TEST(Replay, FiltersReentrantLockPairs) {
  RecordingTool Tool;
  Trace T = TraceBuilder()
                .acq(0, 0)
                .acq(0, 0) // re-entrant: filtered
                .rd(0, 0)
                .rel(0, 0) // inner release: filtered
                .rel(0, 0)
                .take();
  ReplayResult R = replay(T, Tool);
  std::vector<std::string> Expected = {"acq 0 0", "rd 0 0", "rel 0 0"};
  EXPECT_EQ(Tool.Log, Expected);
  EXPECT_EQ(R.Events, 3u);
}

TEST(Replay, ReentrantFilterCanBeDisabled) {
  RecordingTool Tool;
  Trace T = TraceBuilder().acq(0, 0).acq(0, 0).rel(0, 0).rel(0, 0).take();
  ReplayOptions Options;
  Options.FilterReentrantLocks = false;
  ReplayResult R = replay(T, Tool, Options);
  EXPECT_EQ(R.Events, 4u);
}

TEST(Replay, CoarseGranularityMergesVariables) {
  // Default coarse mapping: 8 fields per object. Vars 0..7 -> object 0.
  RecordingTool Tool;
  Trace T = TraceBuilder().wr(0, 0).wr(0, 7).wr(0, 8).take();
  ReplayOptions Options;
  Options.Gran = Granularity::Coarse;
  replay(T, Tool, Options);
  std::vector<std::string> Expected = {"wr 0 0", "wr 0 0", "wr 0 1"};
  EXPECT_EQ(Tool.Log, Expected);
  EXPECT_EQ(Tool.Ctx.NumVars, 2u);
}

TEST(Replay, CoarseGranularityWithExplicitMap) {
  RecordingTool Tool;
  Trace T = TraceBuilder().wr(0, 0).wr(0, 1).wr(0, 2).take();
  std::vector<uint32_t> Map = {5, 5, 6};
  ReplayOptions Options;
  Options.Gran = Granularity::Coarse;
  Options.VarToObject = &Map;
  replay(T, Tool, Options);
  std::vector<std::string> Expected = {"wr 0 5", "wr 0 5", "wr 0 6"};
  EXPECT_EQ(Tool.Log, Expected);
}

TEST(Replay, CoarseGranularityCausesFalseSharingWarnings) {
  // Two distinct fields protected by different locks are race-free under
  // fine granularity but collide under coarse (the Section 4 trade-off).
  Trace T = TraceBuilder()
                .fork(0, 1)
                .lockedWr(0, 0, 0)
                .lockedWr(1, 1, 1)
                .take();
  FastTrack Fine;
  replay(T, Fine);
  EXPECT_EQ(Fine.warnings().size(), 0u);

  FastTrack Coarse;
  ReplayOptions Options;
  Options.Gran = Granularity::Coarse;
  replay(T, Coarse, Options);
  EXPECT_EQ(Coarse.warnings().size(), 1u);
}

TEST(Replay, MeasuresClockStatsDelta) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(1, 0)
                .rel(1, 0)
                .join(0, 1)
                .take();
  FastTrack Tool;
  ReplayResult R = replay(T, Tool);
  EXPECT_GT(R.Clocks.totalOps(), 0u); // sync ops did VC work
  EXPECT_EQ(R.NumWarnings, 0u);
  EXPECT_GT(R.ShadowBytes, 0u);
}

namespace {

/// A mixed workload with real races, lock discipline, fork/join edges,
/// volatiles and a reentrant pair — enough to touch every dispatch path.
Trace devirtWorkload() {
  TraceBuilder B;
  B.fork(0, 1).fork(0, 2);
  for (VarId X = 0; X != 4; ++X)
    B.lockedWr(0, 0, X).lockedRd(1, 0, X);
  B.wr(1, 10).rd(2, 10);         // write-read race on 10
  B.rd(0, 11).rd(1, 11).wr(2, 11); // read-shared then racy write on 11
  B.acq(0, 1).acq(0, 1).rel(0, 1).rel(0, 1); // reentrant pair
  B.volWr(1, 0).volRd(2, 0);
  B.join(0, 1).join(0, 2).wr(0, 10);
  return B.take();
}

void expectSameReplayResults(const ReplayResult &A, const ReplayResult &B) {
  EXPECT_EQ(A.Events, B.Events);
  EXPECT_EQ(A.AccessesPassed, B.AccessesPassed);
  EXPECT_EQ(A.NumWarnings, B.NumWarnings);
  EXPECT_EQ(A.ShadowBytes, B.ShadowBytes);
  EXPECT_EQ(A.StoppedAtOp, B.StoppedAtOp);
  EXPECT_EQ(A.Clocks.Allocations, B.Clocks.Allocations);
  EXPECT_EQ(A.Clocks.JoinOps, B.Clocks.JoinOps);
  EXPECT_EQ(A.Clocks.CompareOps, B.Clocks.CompareOps);
  EXPECT_EQ(A.Clocks.CopyOps, B.Clocks.CopyOps);
}

} // namespace

TEST(Replay, DevirtualizedPathMatchesVirtualPathExactly) {
  Trace T = devirtWorkload();

  FastTrack Fast;
  ReplayResult FastResult = replay(T, Fast); // registry: devirtualized

  FastTrack Virt;
  Tool &Erased = Virt;
  ReplayResult VirtResult = replayWithTool<Tool>(T, Erased); // forced virtual

  expectSameReplayResults(FastResult, VirtResult);
  ASSERT_EQ(Fast.warnings().size(), Virt.warnings().size());
  EXPECT_GT(Fast.warnings().size(), 0u) << "workload must contain races";
  for (size_t I = 0; I != Fast.warnings().size(); ++I) {
    EXPECT_EQ(Fast.warnings()[I].Var, Virt.warnings()[I].Var);
    EXPECT_EQ(Fast.warnings()[I].OpIndex, Virt.warnings()[I].OpIndex);
    EXPECT_EQ(Fast.warnings()[I].Detail, Virt.warnings()[I].Detail);
  }
  const FastTrackRuleStats &FR = Fast.ruleStats();
  const FastTrackRuleStats &VR = Virt.ruleStats();
  EXPECT_EQ(FR.ReadSameEpoch, VR.ReadSameEpoch);
  EXPECT_EQ(FR.ReadShared, VR.ReadShared);
  EXPECT_EQ(FR.ReadExclusive, VR.ReadExclusive);
  EXPECT_EQ(FR.ReadShare, VR.ReadShare);
  EXPECT_EQ(FR.WriteSameEpoch, VR.WriteSameEpoch);
  EXPECT_EQ(FR.WriteExclusive, VR.WriteExclusive);
  EXPECT_EQ(FR.WriteShared, VR.WriteShared);
}

namespace {

/// Overrides a registered tool's access handlers; its exact type is NOT
/// registered, so replay() must take the virtual path (a devirtualized
/// FastTrack loop would silently skip these overrides).
class CountingFastTrack : public FastTrack {
public:
  bool onRead(ThreadId T, VarId X, size_t I) override {
    ++Reads;
    return FastTrack::onRead(T, X, I);
  }
  bool onWrite(ThreadId T, VarId X, size_t I) override {
    ++Writes;
    return FastTrack::onWrite(T, X, I);
  }
  uint64_t Reads = 0, Writes = 0;
};

} // namespace

TEST(Replay, SubclassOfRegisteredToolFallsBackToVirtualDispatch) {
  Trace T = devirtWorkload();
  CountingFastTrack Counting;
  replay(T, Counting);
  EXPECT_GT(Counting.Reads, 0u) << "override was bypassed";
  EXPECT_GT(Counting.Writes, 0u) << "override was bypassed";

  FastTrack Plain;
  replay(T, Plain);
  EXPECT_EQ(Counting.warnings().size(), Plain.warnings().size());
}

TEST(Tool, WarningDeduplicationPerVariable) {
  class AlwaysWarn : public Tool {
  public:
    const char *name() const override { return "AlwaysWarn"; }
    bool onWrite(ThreadId T, VarId X, size_t I) override {
      RaceWarning W;
      W.Var = X;
      W.OpIndex = I;
      W.CurrentThread = T;
      W.CurrentKind = OpKind::Write;
      reportRace(std::move(W));
      return true;
    }
  };
  AlwaysWarn Tool;
  Trace T = TraceBuilder().wr(0, 0).wr(0, 0).wr(0, 1).take();
  replay(T, Tool);
  EXPECT_EQ(Tool.warnings().size(), 2u);
  Tool.clearWarnings();
  EXPECT_TRUE(Tool.warnings().empty());
}

TEST(Warning, ToStringIncludesDetail) {
  RaceWarning W;
  W.Var = 3;
  W.OpIndex = 17;
  W.CurrentThread = 1;
  W.CurrentKind = OpKind::Write;
  W.PriorThread = 0;
  W.PriorKind = OpKind::Write;
  W.Detail = "write-write race";
  std::string S = toString(W);
  EXPECT_NE(S.find("x3"), std::string::npos);
  EXPECT_NE(S.find("op 17"), std::string::npos);
  EXPECT_NE(S.find("thread 1"), std::string::npos);
  EXPECT_NE(S.find("write-write race"), std::string::npos);
}

TEST(Pipeline, FiltersAccessesBeforeDownstream) {
  ThreadLocalFilter Filter;
  RecordingTool Downstream;
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(0, 0) // thread-local: dropped
                .wr(0, 0) // dropped
                .rd(1, 0) // shared now: forwarded
                .rd(0, 0) // forwarded
                .take();
  PipelineResult R = replayFiltered(T, Filter, Downstream);
  EXPECT_EQ(R.AccessesSeen, 4u);
  EXPECT_EQ(R.AccessesForwarded, 2u);
  std::vector<std::string> Expected = {"rd 1 0", "rd 0 0"};
  EXPECT_EQ(Downstream.Log, Expected);
}

TEST(Pipeline, SyncEventsReachBothTools) {
  EmptyTool Filter;
  RecordingTool Downstream;
  Trace T = TraceBuilder().acq(0, 0).rel(0, 0).take();
  replayFiltered(T, Filter, Downstream);
  std::vector<std::string> Expected = {"acq 0 0", "rel 0 0"};
  EXPECT_EQ(Downstream.Log, Expected);
}

TEST(Pipeline, FastTrackPrefilterDropsSameEpochAccesses) {
  FastTrack Filter;
  RecordingTool Downstream;
  TraceBuilder B;
  B.fork(0, 1);
  for (int I = 0; I != 10; ++I)
    B.rd(1, 0); // 1 first-in-epoch + 9 same-epoch
  PipelineResult R = replayFiltered(B.take(), Filter, Downstream);
  EXPECT_EQ(R.AccessesSeen, 10u);
  EXPECT_EQ(R.AccessesForwarded, 1u);
}

TEST(VectorClockToolBase, BarrierJoinsAllMembers) {
  class Probe : public VectorClockToolBase {
  public:
    const char *name() const override { return "Probe"; }
    using VectorClockToolBase::currentClock;
    using VectorClockToolBase::threadClock;
  };
  Probe Tool;
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(1, 0)
                .rel(1, 0)
                .barrier({0, 1})
                .take();
  replay(T, Tool);
  // After the barrier both threads' clocks dominate each other's
  // pre-barrier clocks; each was also incremented.
  EXPECT_GE(Tool.threadClock(0).get(1), 2u);
  EXPECT_GE(Tool.threadClock(1).get(0), 2u);
}
