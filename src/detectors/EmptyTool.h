//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EMPTY: the do-nothing tool of Section 5.1, used to measure the cost of
/// the framework itself. Every slowdown in the reproduced Table 1 is
/// normalised against EMPTY's running time, matching the paper's
/// methodology. As a prefilter it passes every access (the "NONE" column
/// of the Section 5.2 composition table).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_DETECTORS_EMPTYTOOL_H
#define FASTTRACK_DETECTORS_EMPTYTOOL_H

#include "framework/Tool.h"

namespace ft {

/// Performs no analysis; exists to price the event-dispatch overhead.
class EmptyTool : public Tool {
public:
  const char *name() const override { return "Empty"; }
};

} // namespace ft

#endif // FASTTRACK_DETECTORS_EMPTYTOOL_H
