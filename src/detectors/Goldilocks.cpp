#include "detectors/Goldilocks.h"

#include "framework/Replay.h"

#include <algorithm>

using namespace ft;

void DeviceSet::insert(uint64_t Device) {
  auto It = std::lower_bound(Devices.begin(), Devices.end(), Device);
  if (It == Devices.end() || *It != Device)
    Devices.insert(It, Device);
}

bool DeviceSet::contains(uint64_t Device) const {
  return std::binary_search(Devices.begin(), Devices.end(), Device);
}

void Goldilocks::begin(const ToolContext &Context) {
  Log.clear();
  BarrierSets.clear();
  Vars.assign(Context.NumVars, VarShadow());
}

void Goldilocks::onAcquire(ThreadId T, LockId M, size_t) {
  Log.push_back({SyncEvent::Acq, T, M});
}

void Goldilocks::onRelease(ThreadId T, LockId M, size_t) {
  Log.push_back({SyncEvent::Rel, T, M});
}

void Goldilocks::onFork(ThreadId T, ThreadId U, size_t) {
  Log.push_back({SyncEvent::Fork, T, U});
}

void Goldilocks::onJoin(ThreadId T, ThreadId U, size_t) {
  Log.push_back({SyncEvent::Join, T, U});
}

void Goldilocks::onVolatileRead(ThreadId T, VolatileId V, size_t) {
  Log.push_back({SyncEvent::VolRd, T, V});
}

void Goldilocks::onVolatileWrite(ThreadId T, VolatileId V, size_t) {
  Log.push_back({SyncEvent::VolWr, T, V});
}

void Goldilocks::onBarrier(const std::vector<ThreadId> &Threads, size_t) {
  uint32_t Index = BarrierSets.size();
  BarrierSets.push_back(Threads);
  Log.push_back({SyncEvent::Barrier, Threads.front(), Index});
}

void Goldilocks::catchUp(LazySet &LS) {
  for (size_t I = LS.LogPos, E = Log.size(); I != E; ++I) {
    const SyncEvent &Ev = Log[I];
    switch (Ev.K) {
    case SyncEvent::Rel:
      if (LS.Set.contains(DeviceSet::threadDevice(Ev.T)))
        LS.Set.insert(DeviceSet::lockDevice(Ev.Target));
      break;
    case SyncEvent::Acq:
      if (LS.Set.contains(DeviceSet::lockDevice(Ev.Target)))
        LS.Set.insert(DeviceSet::threadDevice(Ev.T));
      break;
    case SyncEvent::Fork:
      if (LS.Set.contains(DeviceSet::threadDevice(Ev.T)))
        LS.Set.insert(DeviceSet::threadDevice(Ev.Target));
      break;
    case SyncEvent::Join:
      if (LS.Set.contains(DeviceSet::threadDevice(Ev.Target)))
        LS.Set.insert(DeviceSet::threadDevice(Ev.T));
      break;
    case SyncEvent::VolWr:
      if (LS.Set.contains(DeviceSet::threadDevice(Ev.T)))
        LS.Set.insert(DeviceSet::volatileDevice(Ev.Target));
      break;
    case SyncEvent::VolRd:
      if (LS.Set.contains(DeviceSet::volatileDevice(Ev.Target)))
        LS.Set.insert(DeviceSet::threadDevice(Ev.T));
      break;
    case SyncEvent::Barrier: {
      const std::vector<ThreadId> &Set = BarrierSets[Ev.Target];
      bool Hit = false;
      for (ThreadId U : Set)
        if (LS.Set.contains(DeviceSet::threadDevice(U))) {
          Hit = true;
          break;
        }
      if (Hit)
        for (ThreadId U : Set)
          LS.Set.insert(DeviceSet::threadDevice(U));
      break;
    }
    }
  }
  LS.LogPos = Log.size();
}

void Goldilocks::resetTo(LazySet &LS, ThreadId T) {
  LS.Set.reset(DeviceSet::threadDevice(T));
  LS.LogPos = Log.size();
}

void Goldilocks::report(ThreadId T, VarId X, size_t OpIndex, OpKind Kind,
                        const char *Detail) {
  RaceWarning W;
  W.Var = X;
  W.OpIndex = OpIndex;
  W.CurrentThread = T;
  W.CurrentKind = Kind;
  W.Detail = Detail;
  reportRace(std::move(W));
}

bool Goldilocks::onRead(ThreadId T, VarId X, size_t OpIndex) {
  VarShadow &Shadow = Vars[X];
  if (UnsoundThreadLocal && Shadow.ThreadLocal) {
    if (!Shadow.OwnerKnown) {
      Shadow.Owner = T;
      Shadow.OwnerKnown = true;
      return false;
    }
    if (Shadow.Owner == T)
      return false;
    // Leave thread-local mode, forgetting the owner's accesses (the
    // unsound hand-off that misses the hedc races).
    Shadow.ThreadLocal = false;
    Shadow.WriteSeen = false;
    Shadow.Readers.clear();
  }
  Shadow.ThreadLocal = false;

  if (Shadow.WriteSeen &&
      !Shadow.Write.Set.contains(DeviceSet::threadDevice(T))) {
    // Short-circuit: membership can only grow as events apply, so a hit
    // needs no catch-up. (The original's "cheap checks", PLDI 2007 §4.)
    catchUp(Shadow.Write);
    if (!Shadow.Write.Set.contains(DeviceSet::threadDevice(T)))
      report(T, X, OpIndex, OpKind::Read, "write-read race");
  }

  for (auto &[Reader, LS] : Shadow.Readers)
    if (Reader == T) {
      resetTo(LS, T);
      return true;
    }
  Shadow.Readers.emplace_back(T, LazySet());
  resetTo(Shadow.Readers.back().second, T);
  return true;
}

bool Goldilocks::onWrite(ThreadId T, VarId X, size_t OpIndex) {
  VarShadow &Shadow = Vars[X];
  if (UnsoundThreadLocal && Shadow.ThreadLocal) {
    if (!Shadow.OwnerKnown) {
      Shadow.Owner = T;
      Shadow.OwnerKnown = true;
      return false;
    }
    if (Shadow.Owner == T)
      return false;
    Shadow.ThreadLocal = false;
    Shadow.WriteSeen = false;
    Shadow.Readers.clear();
  }
  Shadow.ThreadLocal = false;

  if (Shadow.WriteSeen &&
      !Shadow.Write.Set.contains(DeviceSet::threadDevice(T))) {
    catchUp(Shadow.Write);
    if (!Shadow.Write.Set.contains(DeviceSet::threadDevice(T)))
      report(T, X, OpIndex, OpKind::Write, "write-write race");
  }
  for (auto &[Reader, LS] : Shadow.Readers) {
    if (Reader == T || LS.Set.contains(DeviceSet::threadDevice(T)))
      continue;
    catchUp(LS);
    if (!LS.Set.contains(DeviceSet::threadDevice(T)))
      report(T, X, OpIndex, OpKind::Write, "read-write race");
  }

  resetTo(Shadow.Write, T);
  Shadow.WriteSeen = true;
  Shadow.Readers.clear();
  return true;
}

size_t Goldilocks::shadowBytes() const {
  size_t Bytes = Log.capacity() * sizeof(SyncEvent);
  for (const auto &Set : BarrierSets)
    Bytes += Set.capacity() * sizeof(ThreadId);
  for (const VarShadow &Shadow : Vars) {
    Bytes += sizeof(VarShadow) + Shadow.Write.Set.memoryBytes();
    for (const auto &[Reader, LS] : Shadow.Readers) {
      (void)Reader;
      Bytes += sizeof(std::pair<ThreadId, LazySet>) + LS.Set.memoryBytes();
    }
  }
  return Bytes;
}

FT_REGISTER_FAST_REPLAY(::ft::Goldilocks);
