//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Construction of analysis tools by name, mirroring RoadRunner's
/// "-tool <name>" command line. Examples and benches use this to stay
/// decoupled from concrete tool classes.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CORE_TOOLREGISTRY_H
#define FASTTRACK_CORE_TOOLREGISTRY_H

#include "framework/Tool.h"

#include <memory>
#include <string>
#include <vector>

namespace ft {

/// Creates a tool from a (case-insensitive) name: "empty", "tl", "eraser",
/// "goldilocks", "basicvc", "djit+" (or "djit"), "multirace", "fasttrack".
/// \returns nullptr for unknown names.
std::unique_ptr<Tool> createTool(const std::string &Name);

/// All registered tool names, in the column order of the paper's Table 1.
std::vector<std::string> registeredToolNames();

} // namespace ft

#endif // FASTTRACK_CORE_TOOLREGISTRY_H
