//===--- HappensBeforeTest.cpp - exact HB relation and race oracle --------===//

#include "hb/RaceOracle.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceValidator.h"

#include <gtest/gtest.h>

using namespace ft;

TEST(HappensBefore, ProgramOrder) {
  Trace T = TraceBuilder().wr(0, 0).rd(0, 0).take();
  HappensBefore Hb(T);
  EXPECT_TRUE(Hb.happensBefore(0, 1));
}

TEST(HappensBefore, UnorderedThreadsAreConcurrent) {
  Trace T = TraceBuilder().fork(0, 1).fork(0, 2).wr(1, 0).wr(2, 0).take();
  HappensBefore Hb(T);
  EXPECT_TRUE(Hb.concurrent(2, 3));
}

TEST(HappensBefore, LockingEdge) {
  // The Section 2.2 example: wr(0,x) rel(0,m) acq(1,m) wr(1,x), made
  // feasible with the matching acquire/release pairs.
  Trace T = TraceBuilder()
          .fork(0, 1)
          .acq(0, 0)
          .wr(0, 0)
          .rel(0, 0)
          .acq(1, 0)
          .wr(1, 0)
          .rel(1, 0)
          .take();
  ASSERT_TRUE(isFeasible(T));
  HappensBefore Hb(T);
  // wr(0,x) at index 2 happens before wr(1,x) at index 5 via the lock.
  EXPECT_TRUE(Hb.happensBefore(2, 5));
}

TEST(HappensBefore, NoEdgeWithoutCommonLock) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(0, 0)
                .wr(0, 0)
                .rel(0, 0)
                .acq(1, 1) // different lock
                .wr(1, 0)
                .rel(1, 1)
                .take();
  HappensBefore Hb(T);
  EXPECT_TRUE(Hb.concurrent(2, 5));
}

TEST(HappensBefore, ForkEdge) {
  Trace T = TraceBuilder().wr(0, 0).fork(0, 1).rd(1, 0).take();
  HappensBefore Hb(T);
  EXPECT_TRUE(Hb.happensBefore(0, 2));
}

TEST(HappensBefore, JoinEdge) {
  Trace T = TraceBuilder().fork(0, 1).wr(1, 0).join(0, 1).rd(0, 0).take();
  HappensBefore Hb(T);
  EXPECT_TRUE(Hb.happensBefore(1, 3));
}

TEST(HappensBefore, NoBackwardEdgeFromFork) {
  // Parent ops after fork are concurrent with the child.
  Trace T = TraceBuilder().fork(0, 1).wr(0, 0).rd(1, 0).take();
  HappensBefore Hb(T);
  EXPECT_TRUE(Hb.concurrent(1, 2));
}

TEST(HappensBefore, VolatileEdge) {
  // vol_wr(0) then vol_rd(1) orders surrounding accesses.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(0, 0)
                .volWr(0, 0)
                .volRd(1, 0)
                .rd(1, 0)
                .take();
  HappensBefore Hb(T);
  EXPECT_TRUE(Hb.happensBefore(1, 4));
}

TEST(HappensBefore, VolatileReadBeforeWriteGivesNoEdge) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .volRd(1, 0) // reads before any write: no edge
                .wr(0, 0)
                .volWr(0, 0)
                .rd(1, 0)
                .take();
  HappensBefore Hb(T);
  EXPECT_TRUE(Hb.concurrent(2, 4));
}

TEST(HappensBefore, BarrierOrdersPhases) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)      // 1: pre-barrier write by thread 1
                .barrier({0, 1})
                .rd(0, 0)      // 3: post-barrier read by thread 0
                .take();
  HappensBefore Hb(T);
  EXPECT_TRUE(Hb.happensBefore(1, 3));
}

TEST(HappensBefore, ThreadsStayConcurrentWithinBarrierPhase) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .barrier({0, 1})
                .wr(0, 0)
                .wr(1, 0)
                .take();
  HappensBefore Hb(T);
  EXPECT_TRUE(Hb.concurrent(2, 3));
}

TEST(RaceOracle, RaceFreeLockProtectedTrace) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .lockedWr(0, 0, 0)
                .lockedWr(1, 0, 0)
                .join(0, 1)
                .take();
  EXPECT_TRUE(isRaceFree(T));
}

TEST(RaceOracle, DetectsWriteWriteRace) {
  Trace T = TraceBuilder().fork(0, 1).wr(0, 0).wr(1, 0).take();
  auto Races = findRaces(T);
  ASSERT_EQ(Races.size(), 1u);
  EXPECT_EQ(Races[0].Var, 0u);
  EXPECT_EQ(Races[0].FirstIndex, 1u);
  EXPECT_EQ(Races[0].SecondIndex, 2u);
  EXPECT_EQ(Races[0].FirstKind, OpKind::Write);
  EXPECT_EQ(Races[0].SecondKind, OpKind::Write);
}

TEST(RaceOracle, DetectsWriteReadAndReadWriteRaces) {
  Trace T1 = TraceBuilder().fork(0, 1).wr(0, 0).rd(1, 0).take();
  auto R1 = findRaces(T1);
  ASSERT_EQ(R1.size(), 1u);
  EXPECT_EQ(R1[0].SecondKind, OpKind::Read);

  Trace T2 = TraceBuilder().fork(0, 1).rd(0, 0).wr(1, 0).take();
  auto R2 = findRaces(T2);
  ASSERT_EQ(R2.size(), 1u);
  EXPECT_EQ(R2[0].FirstKind, OpKind::Read);
  EXPECT_EQ(R2[0].SecondKind, OpKind::Write);
}

TEST(RaceOracle, ReadReadIsNeverARace) {
  Trace T = TraceBuilder().fork(0, 1).rd(0, 0).rd(1, 0).take();
  EXPECT_TRUE(isRaceFree(T));
}

TEST(RaceOracle, ForkJoinHandoffIsRaceFree) {
  Trace T = TraceBuilder()
                .wr(0, 0)
                .fork(0, 1)
                .rd(1, 0)
                .wr(1, 0)
                .join(0, 1)
                .rd(0, 0)
                .take();
  EXPECT_TRUE(isRaceFree(T));
}

TEST(RaceOracle, FirstPerVarLimitsReports) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(0, 0)
                .wr(1, 0)
                .wr(0, 0)
                .wr(1, 1)
                .wr(0, 1)
                .take();
  RaceOracleOptions Options;
  Options.FirstPerVar = true;
  auto Races = findRaces(T, Options);
  EXPECT_EQ(Races.size(), 2u); // one per variable

  auto All = findRaces(T);
  EXPECT_GT(All.size(), 2u);
}

TEST(RaceOracle, MaxPairsCap) {
  Trace T = TraceBuilder().fork(0, 1).wr(0, 0).wr(1, 0).wr(0, 0).take();
  RaceOracleOptions Options;
  Options.MaxPairs = 1;
  EXPECT_EQ(findRaces(T, Options).size(), 1u);
}

TEST(RaceOracle, RacyVarsSortedUnique) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(0, 3)
                .wr(1, 3)
                .wr(0, 1)
                .wr(1, 1)
                .take();
  std::vector<VarId> Expected = {1, 3};
  EXPECT_EQ(racyVars(T), Expected);
}

TEST(RaceOracle, ReadSharedThenOrderedWriteIsRaceFree) {
  // The Figure 4 pattern: two concurrent reads, then a write after join.
  Trace T = TraceBuilder()
                .wr(0, 0)
                .fork(0, 1)
                .rd(1, 0)
                .rd(0, 0)
                .join(0, 1)
                .wr(0, 0)
                .rd(0, 0)
                .take();
  EXPECT_TRUE(isRaceFree(T));
}
