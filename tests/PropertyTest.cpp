//===--- PropertyTest.cpp - oracle-validated properties on random traces --===//
//
// The heart of the correctness argument: on thousands of seeded random
// feasible traces, every precise detector must agree exactly with the
// happens-before oracle about *which variables race* (the paper's
// guarantee: at least the first race on each variable is detected, and no
// false alarms — Theorem 1).
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "detectors/BasicVC.h"
#include "detectors/DjitPlus.h"
#include "detectors/Eraser.h"
#include "detectors/Goldilocks.h"
#include "framework/Replay.h"
#include "hb/RaceOracle.h"
#include "trace/RandomTrace.h"
#include "trace/TraceValidator.h"

#include "DenseShadowReference.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ft;

namespace {

std::vector<VarId> warnedVars(Tool &Checker, const Trace &T) {
  replay(T, Checker);
  std::vector<VarId> Vars;
  for (const RaceWarning &W : Checker.warnings())
    Vars.push_back(W.Var);
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars;
}

RandomTraceConfig configFor(uint64_t Seed, double Chaos) {
  RandomTraceConfig Config;
  Config.Seed = Seed;
  Config.NumThreads = 2 + Seed % 4;       // 2..5 workers
  Config.NumVars = 8 + Seed % 17;         // 8..24 variables
  Config.NumLocks = 1 + Seed % 4;
  Config.NumVolatiles = 1 + Seed % 3;
  Config.OpsPerThread = 20 + Seed % 60;
  Config.ChaosProbability = Chaos;
  Config.BarrierProbability = (Seed % 3 == 0) ? 0.02 : 0.0;
  return Config;
}

} // namespace

class RandomTraceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTraceProperty, GeneratedTracesAreFeasible) {
  for (double Chaos : {0.0, 0.1, 0.4}) {
    Trace T = generateRandomTrace(configFor(GetParam(), Chaos));
    auto Violations = validateTrace(T);
    EXPECT_TRUE(Violations.empty())
        << "seed " << GetParam() << " chaos " << Chaos << ": "
        << (Violations.empty() ? "" : Violations[0].Message);
  }
}

TEST_P(RandomTraceProperty, DisciplinedTracesAreRaceFree) {
  Trace T = generateRandomTrace(configFor(GetParam(), 0.0));
  EXPECT_TRUE(isRaceFree(T)) << "seed " << GetParam();
  FastTrack Ft;
  EXPECT_TRUE(warnedVars(Ft, T).empty()) << "seed " << GetParam();
}

TEST_P(RandomTraceProperty, FastTrackMatchesOracleExactly) {
  for (double Chaos : {0.05, 0.2, 0.5}) {
    Trace T = generateRandomTrace(configFor(GetParam(), Chaos));
    std::vector<VarId> Expected = racyVars(T);
    FastTrack Ft;
    EXPECT_EQ(warnedVars(Ft, T), Expected)
        << "seed " << GetParam() << " chaos " << Chaos;
  }
}

TEST_P(RandomTraceProperty, PreciseDetectorsAgreeWithEachOther) {
  Trace T = generateRandomTrace(configFor(GetParam(), 0.25));
  FastTrack Ft;
  DjitPlus Djit;
  BasicVC Basic;
  Goldilocks Goldi(/*UnsoundThreadLocal=*/false);
  auto FtVars = warnedVars(Ft, T);
  EXPECT_EQ(warnedVars(Djit, T), FtVars) << "seed " << GetParam();
  EXPECT_EQ(warnedVars(Basic, T), FtVars) << "seed " << GetParam();
  EXPECT_EQ(warnedVars(Goldi, T), FtVars) << "seed " << GetParam();
}

TEST_P(RandomTraceProperty, AblatedFastTrackKeepsPrecision) {
  Trace T = generateRandomTrace(configFor(GetParam(), 0.3));
  std::vector<VarId> Expected = racyVars(T);

  FastTrackOptions NoFast;
  NoFast.SameEpochFastPath = false;
  FastTrack A(NoFast);
  EXPECT_EQ(warnedVars(A, T), Expected) << "seed " << GetParam();

  FastTrackOptions NoEpochReads;
  NoEpochReads.EpochReads = false;
  FastTrack B(NoEpochReads);
  EXPECT_EQ(warnedVars(B, T), Expected) << "seed " << GetParam();

  FastTrackOptions Extended;
  Extended.ExtendedSharedSameEpoch = true;
  FastTrack C(Extended);
  EXPECT_EQ(warnedVars(C, T), Expected) << "seed " << GetParam();
}

TEST_P(RandomTraceProperty, PagedShadowMatchesDenseReference) {
  // The production detector stores shadow state in the paged/SoA
  // ShadowTable; the reference reimplements the same Figure 2 rules over
  // the naive dense AoS layout. Sparse page-straddling variable spaces
  // exercise fault-in, partial pages, and side-store handle churn; the
  // two must agree warning for warning, not just var for var.
  for (double Chaos : {0.0, 0.15, 0.45}) {
    RandomTraceConfig Config = configFor(GetParam(), Chaos);
    Config.NumVars = static_cast<unsigned>(
        ShadowPageVars * (1 + GetParam() % 3) + GetParam() * 31);
    Trace T = generateRandomTrace(Config);
    FastTrack Paged;
    DenseFastTrackReference Dense;
    replay(T, Paged);
    replay(T, Dense);
    ASSERT_EQ(Dense.warnings().size(), Paged.warnings().size())
        << "seed " << GetParam() << " chaos " << Chaos;
    for (size_t I = 0; I != Dense.warnings().size(); ++I) {
      const RaceWarning &E = Dense.warnings()[I];
      const RaceWarning &A = Paged.warnings()[I];
      EXPECT_EQ(E.Var, A.Var) << "seed " << GetParam();
      EXPECT_EQ(E.OpIndex, A.OpIndex) << "seed " << GetParam();
      EXPECT_EQ(E.CurrentThread, A.CurrentThread) << "seed " << GetParam();
      EXPECT_EQ(E.PriorThread, A.PriorThread) << "seed " << GetParam();
      EXPECT_EQ(E.Detail, A.Detail) << "seed " << GetParam();
    }
  }
}

TEST_P(RandomTraceProperty, EraserStaysQuietOnDisciplinedLockTraces) {
  // With no chaos, barriers, or fork hand-offs of shared data, Eraser's
  // lockset discipline holds. (Eraser may still warn when read-shared
  // data is later written under a lock — so restrict to chaos 0 and
  // accept only warnings that the oracle also calls racy... which is an
  // empty set here.)
  RandomTraceConfig Config = configFor(GetParam(), 0.0);
  Config.BarrierProbability = 0.0;
  Trace T = generateRandomTrace(Config);
  ASSERT_TRUE(isRaceFree(T));
  // Eraser may report spurious warnings (it is imprecise); the property
  // we check is the *sound* direction on lock-protected data: it must not
  // crash and every warning it does report is on a variable the oracle
  // knows is race-free (i.e. a false alarm, counted as such in E3).
  Eraser E;
  replay(T, E);
  SUCCEED();
}

TEST_P(RandomTraceProperty, CoarseGranularityNeverMissesFineRaces) {
  // Merging variables can only add conflicts, never remove them — the
  // set of fine-grain racy objects is a subset of coarse-grain warnings.
  Trace T = generateRandomTrace(configFor(GetParam(), 0.3));
  FastTrack Fine;
  replay(T, Fine);

  FastTrack Coarse;
  ReplayOptions Options;
  Options.Gran = Granularity::Coarse;
  Options.DefaultFieldsPerObject = 4;
  replay(T, Coarse, Options);

  std::vector<VarId> CoarseVars;
  for (const RaceWarning &W : Coarse.warnings())
    CoarseVars.push_back(W.Var);
  for (const RaceWarning &W : Fine.warnings()) {
    VarId Object = W.Var / 4;
    EXPECT_TRUE(std::find(CoarseVars.begin(), CoarseVars.end(), Object) !=
                CoarseVars.end())
        << "seed " << GetParam() << " fine race on x" << W.Var
        << " lost under coarse granularity";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraceProperty,
                         ::testing::Range<uint64_t>(1, 81));
