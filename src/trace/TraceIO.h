//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of traces, one operation per line:
///
/// \code
///   # comment
///   rd 0 3          # rd(t=0, x=3)
///   wr 1 3
///   acq 0 2
///   rel 0 2
///   fork 0 1
///   join 0 1
///   vrd 0 1         # volatile read
///   vwr 0 1         # volatile write
///   barrier 0 1 2   # barrier release of threads {0,1,2}
///   abegin 0        # atomic-block begin
///   aend 0
/// \endcode
///
/// The format lets examples and external fuzzers feed traces to the
/// detectors without linking against the generators — which means the
/// parser is an ingestion boundary: inputs arrive truncated, corrupt, or
/// adversarial. Parsing therefore reports through the structured
/// diagnostic model (support/Status.h) and offers a *salvage mode* that
/// skips malformed records under a configurable error budget instead of
/// aborting at the first bad byte. File loading streams line by line, so
/// multi-gigabyte traces never hold a second whole-file copy in memory.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_TRACEIO_H
#define FASTTRACK_TRACE_TRACEIO_H

#include "support/Status.h"
#include "trace/Trace.h"

#include <string>
#include <string_view>
#include <vector>

namespace ft {

/// Upper bound (exclusive) on thread/variable/lock/volatile ids accepted
/// by the parser. Ids at or above this are rejected: unchecked 32-bit
/// ids would collide with the NoTarget sentinel and silently wrap the
/// entity counts tools use to pre-size shadow state (Trace::numThreads
/// computes max id + 1).
inline constexpr uint32_t MaxEntityId = 1u << 24;

/// Options controlling one parse.
struct ParseOptions {
  /// Salvage mode: skip malformed records, reporting one Warning
  /// diagnostic each, instead of failing at the first error. The trace
  /// that results holds every record that parsed.
  bool Salvage = false;

  /// Salvage error budget: after this many skipped records the parse
  /// aborts with ParseError (an input that is mostly garbage is more
  /// likely the wrong file than a damaged trace).
  size_t ErrorBudget = 100;

  /// Ids at or above this bound are rejected (see MaxEntityId).
  uint32_t MaxId = MaxEntityId;
};

/// The outcome of one parse: an overall status plus per-line diagnostics
/// and salvage accounting.
struct ParseReport {
  /// Ok, or the first/fatal failure. In salvage mode the parse is Ok as
  /// long as the error budget held, even when records were skipped.
  Status St;

  /// Per-line diagnostics: one Warning per salvaged record, one Error
  /// when the parse failed, Notes for salvage summaries.
  std::vector<Diagnostic> Diags;

  uint64_t Records = 0; ///< Operations appended to the output trace.
  uint64_t Skipped = 0; ///< Malformed records skipped (salvage mode).

  bool ok() const { return St.ok(); }
};

/// Renders \p T in the text format described above.
std::string serializeTrace(const Trace &T);

/// Appends one non-barrier operation's line (with trailing newline) to
/// \p Out. Barriers need the owning trace's side table; serializeTrace
/// handles them. Shared with the segmented flight recorder, which
/// serializes operations as they drain rather than from a whole Trace.
void serializeOperation(std::string &Out, const Operation &Op);

/// Parses the text format into \p Out (cleared first).
ParseReport parseTrace(std::string_view Text, Trace &Out,
                       const ParseOptions &Options = ParseOptions());

/// Writes \p T to \p Path.
Status saveTraceFile(const std::string &Path, const Trace &T);

/// Reads a trace from \p Path into \p Out, streaming the file line by
/// line (peak memory is one I/O chunk plus the trace itself, never a
/// second whole-file string).
ParseReport loadTraceFile(const std::string &Path, Trace &Out,
                          const ParseOptions &Options = ParseOptions());

} // namespace ft

#endif // FASTTRACK_TRACE_TRACEIO_H
