#include "hb/HappensBefore.h"

using namespace ft;

HappensBefore::HappensBefore(const Trace &T) : T(T) {
  unsigned NumThreads = T.numThreads();
  // Initial state σ0 = (λt.inc_t(⊥V), λm.⊥V, ...): each thread starts with
  // its own entry at 1 so distinct threads are never accidentally ordered.
  std::vector<VectorClock> C(NumThreads);
  for (ThreadId U = 0; U != NumThreads; ++U)
    C[U].inc(U);
  std::vector<VectorClock> L(T.numLocks());
  std::vector<VectorClock> LV(T.numVolatiles());

  Timestamps.reserve(T.size());
  Actors.reserve(T.size());

  for (const Operation &Op : T) {
    ThreadId Actor = Op.Thread;
    switch (Op.Kind) {
    case OpKind::Read:
    case OpKind::Write:
    case OpKind::AtomicBegin:
    case OpKind::AtomicEnd:
      Timestamps.push_back(C[Actor]);
      break;
    case OpKind::Acquire:
      // Acquire-like: stamp after joining the release edge.
      C[Actor].joinWith(L[Op.Target]);
      Timestamps.push_back(C[Actor]);
      break;
    case OpKind::Release:
      Timestamps.push_back(C[Actor]);
      L[Op.Target].copyFrom(C[Actor]);
      C[Actor].inc(Actor);
      break;
    case OpKind::Fork:
      Timestamps.push_back(C[Actor]);
      C[Op.Target].joinWith(C[Actor]);
      C[Actor].inc(Actor);
      break;
    case OpKind::Join:
      // Acquire-like for the joining thread.
      C[Actor].joinWith(C[Op.Target]);
      Timestamps.push_back(C[Actor]);
      C[Op.Target].inc(Op.Target);
      break;
    case OpKind::VolatileRead:
      // [FT READ VOLATILE]: C'_t = C_t ⊔ L_vx. Acquire-like.
      C[Actor].joinWith(LV[Op.Target]);
      Timestamps.push_back(C[Actor]);
      break;
    case OpKind::VolatileWrite:
      // [FT WRITE VOLATILE]: L'_vx = C_t ⊔ L_vx; C'_t = inc_t(C_t).
      Timestamps.push_back(C[Actor]);
      LV[Op.Target].joinWith(C[Actor]);
      C[Actor].inc(Actor);
      break;
    case OpKind::Barrier: {
      // [FT BARRIER RELEASE]: C'_t = inc_t(⊔_{u∈T} C_u) for t in the set.
      const std::vector<ThreadId> &Set = T.barrierSet(Op.Target);
      VectorClock Joined;
      for (ThreadId U : Set)
        Joined.joinWith(C[U]);
      Timestamps.push_back(Joined);
      for (ThreadId U : Set) {
        C[U].copyFrom(Joined);
        C[U].inc(U);
      }
      Actor = Set.front();
      break;
    }
    }
    Actors.push_back(Actor);
  }
}

bool HappensBefore::happensBefore(size_t Earlier, size_t Later) const {
  assert(Earlier < Later && "happensBefore requires trace order");
  assert(Later < Timestamps.size() && "operation index out of range");
  ThreadId Actor = Actors[Earlier];
  return Timestamps[Earlier].get(Actor) <= Timestamps[Later].get(Actor);
}
