//===----------------------------------------------------------------------===//
//
// racecheck: a small command-line front end over the trace text format —
// analyze recorded executions from any source with any of the detectors.
//
// Usage:
//   trace_file_tool                     # self-demo on a generated file
//   trace_file_tool FILE.trc [tool...]  # e.g. trace_file_tool t.trc
//                                       #      fasttrack eraser djit+
//   trace_file_tool --shards N FILE.trc [tool...]
//                                       # sharded parallel replay across
//                                       # N workers (0 = all cores)
//
//===----------------------------------------------------------------------===//

#include "core/ToolRegistry.h"
#include "framework/ParallelReplay.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace ft;

namespace {

/// -1: serial replay(). Otherwise the NumShards passed to parallelReplay
/// (0 = one shard per hardware thread).
int ShardsFlag = -1;

const char *modeName(const ParallelReplayResult &Result) {
  if (!Result.Sharded)
    return "serial";
  return Result.Mode == ShardMode::SpineDriven ? "spine-driven"
                                               : "sync-replay";
}

int analyze(const std::string &Path, const std::vector<std::string> &Tools) {
  Trace T;
  std::string Error;
  if (!loadTraceFile(Path, T, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  auto Violations = validateTrace(T);
  std::printf("%s: %zu events, %u threads, %u variables, %u locks\n",
              Path.c_str(), T.size(), T.numThreads(), T.numVars(),
              T.numLocks());
  if (!Violations.empty()) {
    std::printf("warning: trace is not feasible (%zu violations); first: "
                "op %zu: %s\n",
                Violations.size(), Violations[0].OpIndex,
                Violations[0].Message.c_str());
  }
  std::printf("%s", computeStats(T).summary().c_str());

  for (const std::string &Name : Tools) {
    auto Detector = createTool(Name);
    if (!Detector) {
      std::fprintf(stderr, "error: unknown tool '%s' (known:", Name.c_str());
      for (const std::string &Known : registeredToolNames())
        std::fprintf(stderr, " %s", Known.c_str());
      std::fprintf(stderr, ")\n");
      return 1;
    }
    if (ShardsFlag < 0) {
      ReplayResult Result = replay(T, *Detector);
      std::printf("\n[%s] %zu warning(s) in %.3fs\n", Detector->name(),
                  Detector->warnings().size(), Result.Seconds);
    } else {
      ParallelReplayOptions Options;
      Options.NumShards = static_cast<unsigned>(ShardsFlag);
      ParallelReplayResult Result = parallelReplay(T, *Detector, Options);
      std::printf("\n[%s] %zu warning(s) in %.3fs (%s", Detector->name(),
                  Detector->warnings().size(), Result.Total.Seconds,
                  modeName(Result));
      if (Result.Sharded)
        std::printf(", %u shards, pre-pass %.3fs", Result.Shards,
                    Result.PrePassSeconds);
      std::printf(")\n");
    }
    for (const RaceWarning &W : Detector->warnings())
      std::printf("  %s\n", toString(W).c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--shards") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --shards needs a count (0 = all "
                             "cores)\n");
        return 1;
      }
      ShardsFlag = std::atoi(Argv[++I]);
      if (ShardsFlag < 0) {
        std::fprintf(stderr, "error: invalid shard count '%s'\n", Argv[I]);
        return 1;
      }
      continue;
    }
    Args.push_back(std::move(Arg));
  }

  if (!Args.empty()) {
    std::vector<std::string> Tools(Args.begin() + 1, Args.end());
    if (Tools.empty())
      Tools.push_back("fasttrack");
    return analyze(Args[0], Tools);
  }

  // Self-demo: write a small racy trace to a file, then analyze it.
  std::printf("trace_file_tool self-demo (pass FILE.trc [tools...] to "
              "analyze your own traces;\n--shards N runs the parallel "
              "sharded engine, see docs/ARCHITECTURE.md)\n\n");
  Trace T = TraceBuilder()
                .fork(0, 1)
                .lockedWr(0, 0, 0)
                .lockedWr(1, 0, 0)
                .wr(0, 1)
                .rd(1, 1) // race on x1
                .join(0, 1)
                .take();
  std::string Path = "demo_trace.trc";
  std::string Error;
  if (!saveTraceFile(Path, T, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("wrote %s:\n%s\n", Path.c_str(), serializeTrace(T).c_str());
  return analyze(Path, {"fasttrack", "djit+", "eraser"});
}
