//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//

#include "clock/ClockArena.h"

#include <cassert>
#include <cstring>
#include <new>

namespace ft {
namespace {

/// Rounds \p N up to a power of two, at least ClockArena::MinEntries.
uint32_t classCapacity(uint32_t N) {
  uint32_t Cap = ClockArena::MinEntries;
  while (Cap < N)
    Cap <<= 1;
  return Cap;
}

/// Index of the free list holding blocks of capacity \p Cap.
/// MinEntries (16) maps to 0, 32 to 1, and so on.
unsigned classIndex(uint32_t Cap) {
  unsigned Idx = 0;
  for (uint32_t C = ClockArena::MinEntries; C < Cap; C <<= 1)
    ++Idx;
  return Idx;
}

constexpr unsigned NumClasses = 11; // 16 .. 16384 entries.

/// The calling thread's pool. Free blocks are chained intrusively: the
/// first 8 bytes of a parked block hold the pointer to the next one
/// (every block is >= 64 bytes, so the link always fits).
struct ThreadPool {
  void *Free[NumClasses] = {};
  ClockArenaStats Stats;

  ~ThreadPool() {
    // Return cached blocks to the allocator so LSan sees a clean exit.
    for (void *&Head : Free) {
      while (Head) {
        void *Next;
        std::memcpy(&Next, Head, sizeof(Next));
        ::operator delete(Head);
        Head = Next;
      }
    }
  }
};

ThreadPool &pool() {
  static thread_local ThreadPool P;
  return P;
}

} // namespace

uint32_t *ClockArena::acquire(uint32_t MinNeeded, uint32_t &CapOut) {
  const uint32_t Cap = classCapacity(MinNeeded);
  CapOut = Cap;
  ThreadPool &P = pool();
  if (Cap <= MaxCachedEntries) {
    void *&Head = P.Free[classIndex(Cap)];
    if (Head) {
      void *Block = Head;
      std::memcpy(&Head, Block, sizeof(void *));
      ++P.Stats.ReusedBlocks;
      --P.Stats.CachedBlocks;
      // Parked blocks are fully zeroed except for the intrusive link.
      std::memset(Block, 0, sizeof(void *));
      return static_cast<uint32_t *>(Block);
    }
  }
  ++P.Stats.FreshBlocks;
  void *Block = ::operator new(size_t(Cap) * sizeof(uint32_t));
  std::memset(Block, 0, size_t(Cap) * sizeof(uint32_t));
  return static_cast<uint32_t *>(Block);
}

void ClockArena::release(uint32_t *Block, uint32_t Cap) noexcept {
  assert(Block && Cap >= MinEntries && (Cap & (Cap - 1)) == 0 &&
         "block must come from acquire()");
  if (Cap > MaxCachedEntries) {
    ::operator delete(Block);
    return;
  }
  // Re-zero now so acquire() only has to clear the link word. The block
  // is hot in cache at release time (we just copied out of it), so this
  // is cheaper than zeroing a cold block later.
  std::memset(Block, 0, size_t(Cap) * sizeof(uint32_t));
  ThreadPool &P = pool();
  void *&Head = P.Free[classIndex(Cap)];
  std::memcpy(Block, &Head, sizeof(void *));
  Head = Block;
  ++P.Stats.CachedBlocks;
}

ClockArenaStats ClockArena::stats() { return pool().Stats; }

void ClockArena::resetStats() {
  ClockArenaStats &S = pool().Stats;
  S.FreshBlocks = 0;
  S.ReusedBlocks = 0;
}

} // namespace ft
