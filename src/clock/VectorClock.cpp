#include "clock/VectorClock.h"

#include <algorithm>
#include <cassert>

using namespace ft;

VectorClock::VectorClock(unsigned NumThreads) {
  if (NumThreads == 0)
    return;
  Clocks.assign(NumThreads, 0);
  ++clockStats().Allocations;
}

VectorClock::VectorClock(const VectorClock &Other) : Clocks(Other.Clocks) {
  if (!Clocks.empty()) {
    ++clockStats().Allocations;
    ++clockStats().CopyOps;
  }
}

VectorClock &VectorClock::operator=(const VectorClock &Other) {
  if (this == &Other)
    return *this;
  if (Clocks.capacity() < Other.Clocks.size())
    ++clockStats().Allocations;
  Clocks = Other.Clocks;
  ++clockStats().CopyOps;
  return *this;
}

void VectorClock::growTo(unsigned Size) {
  if (Size <= Clocks.size())
    return;
  if (Clocks.capacity() < Size && Clocks.empty())
    ++clockStats().Allocations;
  Clocks.resize(Size, 0);
}

void VectorClock::set(ThreadId T, ClockValue Clock) {
  growTo(T + 1);
  Clocks[T] = Clock;
}

void VectorClock::inc(ThreadId T) {
  growTo(T + 1);
  ++Clocks[T];
}

void VectorClock::joinWith(const VectorClock &Other) {
  ++clockStats().JoinOps;
  growTo(Other.Clocks.size());
  for (size_t I = 0, E = Other.Clocks.size(); I != E; ++I)
    Clocks[I] = std::max(Clocks[I], Other.Clocks[I]);
}

bool VectorClock::leq(const VectorClock &Other) const {
  ++clockStats().CompareOps;
  for (size_t I = 0, E = Clocks.size(); I != E; ++I)
    if (Clocks[I] > Other.get(static_cast<ThreadId>(I)))
      return false;
  return true;
}

bool VectorClock::isBottom() const {
  return std::all_of(Clocks.begin(), Clocks.end(),
                     [](ClockValue C) { return C == 0; });
}

bool ft::operator==(const VectorClock &A, const VectorClock &B) {
  size_t Max = std::max(A.Clocks.size(), B.Clocks.size());
  for (size_t I = 0; I != Max; ++I)
    if (A.get(static_cast<ThreadId>(I)) != B.get(static_cast<ThreadId>(I)))
      return false;
  return true;
}

std::string VectorClock::str(unsigned MinEntries) const {
  unsigned Count = std::max<unsigned>(Clocks.size(), MinEntries);
  std::string Out = "<";
  for (unsigned I = 0; I != Count; ++I) {
    if (I != 0)
      Out += ',';
    Out += std::to_string(get(I));
  }
  Out += '>';
  return Out;
}
