#include "trace/TraceValidator.h"

#include <map>

using namespace ft;

namespace {

/// Lifecycle of a thread relative to fork/join events.
enum class ThreadPhase : uint8_t {
  Unstarted, ///< Never seen. Only the main thread may act in this phase.
  Running,   ///< Forked (or main), not yet joined.
  Joined,    ///< join(v, u) has happened; u may not act again.
};

struct ValidatorState {
  const Trace &T;
  const TraceValidatorOptions &Options;
  std::vector<Diagnostic> Violations;

  /// Lock -> (holder thread, nesting depth); absent means free.
  std::map<LockId, std::pair<ThreadId, unsigned>> LockHolder;
  std::vector<ThreadPhase> Phase;
  /// Number of operations performed by each thread (counts barrier
  /// membership too, for rule 4).
  std::vector<uint64_t> OpCount;
  /// OpCount value at the moment the thread was forked; used for rule 4.
  std::vector<uint64_t> OpCountAtFork;
  std::vector<int> AtomicDepth;

  ValidatorState(const Trace &T, const TraceValidatorOptions &Options)
      : T(T), Options(Options) {
    Phase.assign(T.numThreads(), ThreadPhase::Unstarted);
    OpCount.assign(T.numThreads(), 0);
    OpCountAtFork.assign(T.numThreads(), 0);
    AtomicDepth.assign(T.numThreads(), 0);
    if (!Phase.empty())
      Phase[0] = ThreadPhase::Running;
  }

  void report(size_t Index, std::string Message) {
    Violations.push_back({StatusCode::ValidationError, Severity::Error,
                          /*Line=*/0, Index, std::move(Message)});
  }

  /// Checks that \p U may perform an operation at position \p Index.
  void checkActor(size_t Index, ThreadId U) {
    if (Phase[U] == ThreadPhase::Joined) {
      report(Index, "thread " + std::to_string(U) +
                        " acts after being joined");
      return;
    }
    if (Phase[U] == ThreadPhase::Unstarted && Options.RequireFork)
      report(Index,
             "thread " + std::to_string(U) + " acts before being forked");
  }

  void run();
  void visit(size_t Index, const Operation &Op);
};

void ValidatorState::visit(size_t Index, const Operation &Op) {
  if (Op.Kind == OpKind::Barrier) {
    for (ThreadId U : T.barrierSet(Op.Target)) {
      checkActor(Index, U);
      ++OpCount[U];
    }
    return;
  }

  checkActor(Index, Op.Thread);
  ++OpCount[Op.Thread];

  switch (Op.Kind) {
  case OpKind::Acquire: {
    auto It = LockHolder.find(Op.Target);
    if (It == LockHolder.end()) {
      LockHolder[Op.Target] = {Op.Thread, 1};
      break;
    }
    auto &[Holder, Depth] = It->second;
    if (Holder == Op.Thread && Options.AllowReentrantLocks) {
      ++Depth;
      break;
    }
    report(Index, "lock m" + std::to_string(Op.Target) +
                      " acquired while held by thread " +
                      std::to_string(Holder));
    break;
  }
  case OpKind::Release: {
    auto It = LockHolder.find(Op.Target);
    if (It == LockHolder.end() || It->second.first != Op.Thread) {
      report(Index, "thread " + std::to_string(Op.Thread) +
                        " releases lock m" + std::to_string(Op.Target) +
                        " it does not hold");
      break;
    }
    if (--It->second.second == 0)
      LockHolder.erase(It);
    break;
  }
  case OpKind::Fork: {
    ThreadId U = Op.Target;
    if (U == Op.Thread) {
      report(Index, "thread " + std::to_string(U) + " forks itself");
      break;
    }
    if (Phase[U] == ThreadPhase::Joined && Options.AllowTidReuse) {
      // Slot reincarnation: a joined tid is forked again as a fresh
      // lifetime. Rule-4 bookkeeping restarts from the current count, so
      // "no operation between fork and join" is enforced per incarnation;
      // checkActor still rejects any op of U in the joined gap between
      // the two lifetimes.
      Phase[U] = ThreadPhase::Running;
      OpCountAtFork[U] = OpCount[U];
      break;
    }
    if (Phase[U] != ThreadPhase::Unstarted) {
      report(Index, "thread " + std::to_string(U) + " forked twice");
      break;
    }
    if (OpCount[U] != 0)
      report(Index, "thread " + std::to_string(U) +
                        " has operations before its fork");
    Phase[U] = ThreadPhase::Running;
    OpCountAtFork[U] = OpCount[U];
    break;
  }
  case OpKind::Join: {
    ThreadId U = Op.Target;
    if (U == Op.Thread) {
      report(Index, "thread " + std::to_string(U) + " joins itself");
      break;
    }
    if (Phase[U] != ThreadPhase::Running) {
      report(Index, "join of thread " + std::to_string(U) +
                        " which is not running");
      break;
    }
    if (OpCount[U] == OpCountAtFork[U] && Options.RequireThreadOps)
      report(Index, "no operation of thread " + std::to_string(U) +
                        " between its fork and join (rule 4)");
    Phase[U] = ThreadPhase::Joined;
    break;
  }
  case OpKind::AtomicBegin:
    ++AtomicDepth[Op.Thread];
    break;
  case OpKind::AtomicEnd:
    if (--AtomicDepth[Op.Thread] < 0 && Options.CheckAtomicBalance) {
      report(Index, "atomic end without matching begin on thread " +
                        std::to_string(Op.Thread));
      AtomicDepth[Op.Thread] = 0;
    }
    break;
  case OpKind::Read:
  case OpKind::Write:
  case OpKind::VolatileRead:
  case OpKind::VolatileWrite:
  case OpKind::Barrier:
    break;
  }
}

void ValidatorState::run() {
  for (size_t I = 0, E = T.size(); I != E; ++I)
    visit(I, T[I]);
  if (Options.CheckAtomicBalance) {
    for (ThreadId U = 0; U != AtomicDepth.size(); ++U)
      if (AtomicDepth[U] > 0)
        report(T.size(), "unclosed atomic block on thread " +
                             std::to_string(U));
  }
}

} // namespace

std::vector<Diagnostic>
ft::validateTrace(const Trace &T, const TraceValidatorOptions &Options) {
  ValidatorState State(T, Options);
  State.run();
  return std::move(State.Violations);
}
