//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniConc. Produces an unresolved AST;
/// pair with resolveProgram() (Sema.h) or use compileProgram() for the
/// full pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_LANG_PARSER_H
#define FASTTRACK_LANG_PARSER_H

#include "lang/Ast.h"

#include <string_view>

namespace ft::lang {

/// Parses \p Source into \p Out. \returns true when no diagnostics were
/// produced. The parser recovers at statement boundaries, so several
/// errors can be reported at once.
bool parseProgram(std::string_view Source, Program &Out,
                  std::vector<Diag> &Diags);

} // namespace ft::lang

#endif // FASTTRACK_LANG_PARSER_H
