//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint/resume for long replays. Dynamic race detectors routinely
/// process traces with hundreds of millions of events (Table 2); a replay
/// killed near the end would otherwise start over from event zero. This
/// driver periodically serializes the complete analysis state — the
/// tool's shadow memory (σ = (C, L, R, W) for the vector-clock tools),
/// its accumulated warnings, the re-entrant-lock filter depths, and the
/// replay cursor — so a subsequent run resumes mid-trace and finishes
/// bit-identically to an uninterrupted one.
///
/// Checkpoint image (little-endian, produced via support/ByteStream.h):
///
///   u32  magic 'FTCK'          u32  format version
///   u64  trace fingerprint     — FNV-1a over every operation, the
///                                barrier sets, the entity counts, and
///                                the replay configuration (granularity,
///                                field mapping, lock filtering); a
///                                checkpoint never resumes against a
///                                different trace or configuration
///   str  tool name
///   u64  next op index         u64 events dispatched
///   u64  accesses passed
///   ...  ReentrancyFilter snapshot
///   u64  warning count, then each warning's fields
///   str  tool shadow blob      — ShardableTool::snapshotShadow()
///   u64  FNV-1a checksum of all preceding bytes
///
/// Images are written to `<path>.tmp` and renamed into place, so a crash
/// mid-write leaves the previous checkpoint intact. A checkpoint that
/// fails any validation step (bad checksum, wrong fingerprint, wrong
/// tool, truncation) is ignored with a diagnostic and the replay starts
/// from scratch — a stale or corrupt checkpoint can cost time, never
/// correctness.
///
/// Tools opt in via ShardableTool::supportsCheckpoint(); for others the
/// driver degrades to a plain uncheckpointed replay and says so. The
/// global clock-operation counters (Table 2 instrumentation) are
/// measurement, not analysis state, and report this run's delta only;
/// ReplayOptions::ShadowBudgetBytes is likewise ignored here — budgeted
/// runs go through replayGoverned() instead.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_CHECKPOINT_H
#define FASTTRACK_FRAMEWORK_CHECKPOINT_H

#include "framework/Replay.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace ft {

/// Options controlling one checkpointed replay.
struct CheckpointOptions {
  /// Checkpoint file path. Empty disables checkpointing entirely (the
  /// replay still runs; nothing is written or read).
  std::string Path;

  /// Write a checkpoint every this many trace operations (measured in
  /// absolute trace position, so write points are deterministic and
  /// independent of where a run started). 0 disables periodic writes.
  uint64_t EveryOps = 1u << 20;

  /// Attempt to resume from an existing image at Path.
  bool Resume = true;

  /// Keep the final checkpoint after a completed replay (default: a
  /// completed run deletes it, so the next run starts fresh).
  bool KeepOnSuccess = false;

  /// Fault injection: abandon the replay — as a kill -9 would, without
  /// flushing state or calling Tool::end() — after this many operations
  /// have been processed by *this run*. 0 disables. Test-only.
  uint64_t InjectCrashAfterOps = 0;
};

/// Outcome of replayCheckpointed().
struct CheckpointedReplayResult {
  ReplayResult Result;
  Status St;                     ///< Ok, or Cancelled on an injected crash.
  std::vector<Diagnostic> Diags; ///< Resume/skip/degrade notices.
  bool Resumed = false;          ///< A valid checkpoint was restored.
  uint64_t ResumedAtOp = 0;      ///< Cursor the restored image held.
  uint64_t CheckpointsWritten = 0;
};

/// Replays \p T through \p Checker with periodic checkpoints per \p Ck,
/// resuming from an existing valid image first. Event dispatch exactly
/// matches replay() — same re-entrancy filtering, same granularity
/// remapping — so a resumed run's warnings, rule counters, and shadow
/// state are bit-identical to an uninterrupted run's.
CheckpointedReplayResult
replayCheckpointed(const Trace &T, Tool &Checker,
                   const ReplayOptions &Replay = ReplayOptions(),
                   const CheckpointOptions &Ck = CheckpointOptions());

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_CHECKPOINT_H
