//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online analogue of Replay.h's fast-replay registry: devirtualized
/// *access-run* dispatch for OnlineDriver::dispatchRun.
///
/// The per-shard drain loop of the sharded online engine hands the driver
/// whole runs of already-admitted access events. Dispatching each one
/// through a virtual onRead/onWrite costs an indirect call per event and
/// hides the tool's same-epoch fast path from the inliner — exactly the
/// overhead replayWithTool<ToolT> eliminates offline. This registry
/// applies the same trick online: a tool's own translation unit registers
/// a run-dispatch function instantiated against its concrete type (the
/// qualified calls pin the overrides, so FastTrack's [FT READ/WRITE SAME
/// EPOCH] paths inline straight into the loop), and the driver resolves
/// it once, at construction, by exact dynamic type. A subclass that
/// overrides the handlers again fails the exact-typeid probe and safely
/// falls back to virtual dispatch; results are identical either way.
///
/// Layering note: this framework header includes runtime/EventRing.h for
/// the OnlineEvent wire format. EventRing.h is header-only and depends
/// only on trace/, so no link-time framework → runtime edge is created;
/// OnlineDriver.h itself only forward-declares OnlineEvent.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_FASTDISPATCH_H
#define FASTTRACK_FRAMEWORK_FASTDISPATCH_H

#include "framework/Tool.h"
#include "runtime/EventRing.h"

#include <typeinfo>

namespace ft {

/// Dispatches a run of admitted *access* events (Read/Write only) to
/// \p Checker, whose dynamic type matched the registrar's. Each event's
/// Seq field carries the raw op index assigned at admission. Returns the
/// number of accesses whose handler returned the pass flag.
using FastDispatchRunFn = uint64_t (*)(Tool &Checker,
                                       const runtime::OnlineEvent *Run,
                                       size_t N);

/// One registry entry: an exact-dynamic-type probe plus the devirtualized
/// run loop for that type.
struct FastDispatchEntry {
  bool (*Matches)(const Tool &Checker);
  FastDispatchRunFn Run;
};

/// Adds \p Entry to the registry consulted by resolveFastDispatch.
/// Called from static initializers in each tool's translation unit, so a
/// linked-in tool is automatically fast-pathed and an absent one costs
/// nothing.
void registerFastDispatch(FastDispatchEntry Entry);

/// Returns the registered run loop for \p Checker's exact dynamic type,
/// or nullptr when none matches (the driver then dispatches virtually).
FastDispatchRunFn resolveFastDispatch(const Tool &Checker);

template <typename ToolT> bool fastDispatchMatches(const Tool &Checker) {
  return typeid(Checker) == typeid(ToolT);
}

/// The generic run loop for concrete tool \p ToolT: qualified calls pin
/// the overrides so the access handlers inline (see replayWithTool).
template <typename ToolT>
uint64_t fastDispatchRun(Tool &Base, const runtime::OnlineEvent *Run,
                         size_t N) {
  ToolT &Checker = static_cast<ToolT &>(Base);
  uint64_t Passed = 0;
  for (size_t I = 0; I != N; ++I) {
    const runtime::OnlineEvent &E = Run[I];
    Passed += E.Kind == OpKind::Read
                  ? Checker.ToolT::onRead(E.Thread, E.Target,
                                          static_cast<size_t>(E.Seq))
                  : Checker.ToolT::onWrite(E.Thread, E.Target,
                                           static_cast<size_t>(E.Seq));
  }
  return Passed;
}

/// Registers fastDispatchRun<ToolT> at static-initialization time.
struct FastDispatchRegistrar {
  explicit FastDispatchRegistrar(FastDispatchEntry Entry) {
    registerFastDispatch(Entry);
  }
};

#define FT_FAST_DISPATCH_CONCAT2(A, B) A##B
#define FT_FAST_DISPATCH_CONCAT(A, B) FT_FAST_DISPATCH_CONCAT2(A, B)

/// Place in the tool's own .cpp, next to FT_REGISTER_FAST_REPLAY, where
/// the access handlers' bodies are visible to the instantiation.
#define FT_REGISTER_FAST_DISPATCH(ToolT)                                       \
  static ::ft::FastDispatchRegistrar FT_FAST_DISPATCH_CONCAT(                  \
      FtFastDispatchRegistrar_,                                                \
      __LINE__)({&::ft::fastDispatchMatches<ToolT>,                            \
                 &::ft::fastDispatchRun<ToolT>})

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_FASTDISPATCH_H
