//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VELODROME-style dynamic atomicity checker (Flanagan, Freund, Yi, PLDI
/// 2008), one of the two downstream analyses FastTrack accelerates in
/// Section 5.2 of the paper.
///
/// An atomic block is serializable iff it never lies on a cycle of the
/// transactional happens-before graph. Cycles can only close through an
/// *active* block: some operation of the block is observed by another
/// thread, and the block later consumes an edge that is causally after
/// that observation. Operationally: thread t's block begins at clock
/// value B = T_t(t); a violation occurs when an incoming edge's source
/// clock S satisfies S(t) ≥ B — the producer already saw part of this
/// very block.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CHECKERS_VELODROME_H
#define FASTTRACK_CHECKERS_VELODROME_H

#include "checkers/TransactionalClockBase.h"

namespace ft {

/// The atomicity checker.
class Velodrome : public TransactionalClockBase {
public:
  const char *name() const override { return "Velodrome"; }

protected:
  void checkIncomingEdge(ThreadId T, const VectorClock &Source,
                         ThreadId From, size_t OpIndex,
                         const std::string &EdgeDesc) override;
};

} // namespace ft

#endif // FASTTRACK_CHECKERS_VELODROME_H
