//===--- TraceIOTest.cpp - trace text format round trips ------------------===//

#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace ft;

namespace {

Trace sampleTrace() {
  TraceBuilder B;
  B.fork(0, 1).wr(0, 2).lockedRd(1, 0, 2).volWr(0, 1).volRd(1, 1);
  B.barrier({0, 1}).atomicBegin(1).rd(1, 2).atomicEnd(1).join(0, 1);
  return B.take();
}

} // namespace

TEST(TraceIO, SerializeProducesOneLinePerOp) {
  Trace T = sampleTrace();
  std::string Text = serializeTrace(T);
  size_t Lines = 0;
  for (char C : Text)
    Lines += C == '\n';
  EXPECT_EQ(Lines, T.size());
}

TEST(TraceIO, RoundTripPreservesOperations) {
  Trace T = sampleTrace();
  std::string Text = serializeTrace(T);
  Trace Parsed;
  std::string Error;
  ASSERT_TRUE(parseTrace(Text, Parsed, Error)) << Error;
  ASSERT_EQ(Parsed.size(), T.size());
  for (size_t I = 0; I != T.size(); ++I) {
    EXPECT_EQ(Parsed[I].Kind, T[I].Kind) << "op " << I;
    EXPECT_EQ(Parsed[I].Thread, T[I].Thread) << "op " << I;
    if (T[I].Kind == OpKind::Barrier)
      EXPECT_EQ(Parsed.barrierSet(Parsed[I].Target),
                T.barrierSet(T[I].Target));
    else
      EXPECT_EQ(Parsed[I].Target, T[I].Target) << "op " << I;
  }
  EXPECT_EQ(Parsed.numThreads(), T.numThreads());
  EXPECT_EQ(Parsed.numVars(), T.numVars());
}

TEST(TraceIO, ParsesCommentsAndBlankLines) {
  Trace Parsed;
  std::string Error;
  ASSERT_TRUE(parseTrace("# header\n\n  rd 0 1  # trailing\n\n", Parsed,
                         Error))
      << Error;
  ASSERT_EQ(Parsed.size(), 1u);
  EXPECT_EQ(Parsed[0], rd(0, 1));
}

TEST(TraceIO, ParsesWindowsLineEndings) {
  Trace Parsed;
  std::string Error;
  ASSERT_TRUE(parseTrace("rd 0 1\r\nwr 1 2\r\n", Parsed, Error)) << Error;
  EXPECT_EQ(Parsed.size(), 2u);
}

TEST(TraceIO, RejectsUnknownOperation) {
  Trace Parsed;
  std::string Error;
  EXPECT_FALSE(parseTrace("read 0 1\n", Parsed, Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos);
  EXPECT_NE(Error.find("unknown operation"), std::string::npos);
}

TEST(TraceIO, RejectsWrongArity) {
  Trace Parsed;
  std::string Error;
  EXPECT_FALSE(parseTrace("rd 0\n", Parsed, Error));
  EXPECT_FALSE(parseTrace("rd 0 1 2\n", Parsed, Error));
  EXPECT_FALSE(parseTrace("abegin 0 1\n", Parsed, Error));
}

TEST(TraceIO, RejectsBadNumbers) {
  Trace Parsed;
  std::string Error;
  EXPECT_FALSE(parseTrace("rd zero 1\n", Parsed, Error));
  EXPECT_FALSE(parseTrace("rd 0 -1\n", Parsed, Error));
  EXPECT_FALSE(parseTrace("rd 0 99999999999\n", Parsed, Error));
}

TEST(TraceIO, ReportsCorrectLineNumber) {
  Trace Parsed;
  std::string Error;
  EXPECT_FALSE(parseTrace("rd 0 1\n# ok\nwr 1\n", Parsed, Error));
  EXPECT_NE(Error.find("line 3"), std::string::npos);
}

TEST(TraceIO, BarrierNeedsThreads) {
  Trace Parsed;
  std::string Error;
  EXPECT_FALSE(parseTrace("barrier\n", Parsed, Error));
}

TEST(TraceIO, FileRoundTrip) {
  Trace T = sampleTrace();
  std::string Path = ::testing::TempDir() + "/ft_trace_io_test.trc";
  std::string Error;
  ASSERT_TRUE(saveTraceFile(Path, T, Error)) << Error;
  Trace Loaded;
  ASSERT_TRUE(loadTraceFile(Path, Loaded, Error)) << Error;
  EXPECT_EQ(Loaded.size(), T.size());
  std::remove(Path.c_str());
}

TEST(TraceIO, LoadMissingFileFails) {
  Trace Loaded;
  std::string Error;
  EXPECT_FALSE(loadTraceFile("/nonexistent/path.trc", Loaded, Error));
  EXPECT_FALSE(Error.empty());
}
