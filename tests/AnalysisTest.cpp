//===--- AnalysisTest.cpp - static elision classification & soundness -----===//
//
// Three layers of assurance for the elision subsystem (src/analysis):
//
//  1. Classification unit tests — the lockset and thread-locality
//     verdicts on hand-written programs, including the edge cases that
//     historically break static race analyses: reentrant acquisition,
//     path-dependent locks, forks inside critical sections, and reads
//     that precede the first lock-protected write.
//  2. Adversarial conservatism — late-escape programs where a variable
//     *looks* private until a later fork; the pass must refuse to elide.
//  3. The soundness harness — every corpus program, full vs elided, on
//     many schedules: identical program behavior (output, steps) and
//     warning-for-warning identical FastTrack reports, which also match
//     the exact happens-before oracle on the full trace. Plus the
//     --no-elide guard: planning with Enabled=false restores the
//     pre-analysis event stream byte for byte.
//
//===----------------------------------------------------------------------===//

#include "analysis/Elision.h"
#include "core/FastTrack.h"
#include "framework/Replay.h"
#include "hb/RaceOracle.h"
#include "lang/Interp.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace ft;
using namespace ft::lang;
using analysis::Verdict;

#ifndef FT_CORPUS_DIR
#error "FT_CORPUS_DIR must point at examples/programs"
#endif

namespace {

Program compileOrDie(const std::string &Source) {
  Program P;
  std::vector<Diag> Diags;
  bool Ok = compileProgram(Source, P, Diags);
  EXPECT_TRUE(Ok) << (Diags.empty() ? std::string("(no diagnostic)")
                                    : toString(Diags.front()));
  return P;
}

Verdict verdictOf(const analysis::AnalysisResult &R,
                  const std::string &Var) {
  for (const analysis::VarClass &V : R.Vars)
    if (V.Name == Var)
      return V.V;
  ADD_FAILURE() << "variable '" << Var << "' not classified";
  return Verdict::MustInstrument;
}

Verdict classify(const std::string &Source, const std::string &Var) {
  Program P = compileOrDie(Source);
  analysis::AnalysisResult R = analysis::analyzeProgram(P);
  return verdictOf(R, Var);
}

std::vector<VarId> warnedVars(const Trace &T) {
  FastTrack Detector;
  replay(T, Detector);
  std::vector<VarId> Vars;
  for (const RaceWarning &W : Detector.warnings())
    Vars.push_back(W.Var);
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars;
}

std::string readFileOrEmpty(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return {};
  std::string Text;
  char Buf[1 << 14];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Text.append(Buf, Got);
  std::fclose(File);
  return Text;
}

} // namespace

//===----------------------------------------------------------------------===//
// 1. Classification
//===----------------------------------------------------------------------===//

TEST(Classify, PerWorkerTalliesAreThreadLocal) {
  const char *Source = R"(
    shared tally;
    fn worker(n) {
      local i = 0;
      while (i < n) { tally = tally + 1; i = i + 1; }
    }
    fn main() {
      let t = spawn worker(5);
      join t;
    }
  )";
  EXPECT_EQ(classify(Source, "tally"), Verdict::ThreadLocal);
}

TEST(Classify, MainOnlyVariableIsThreadLocal) {
  const char *Source = R"(
    shared x;
    fn noise() { local i = 0; i = i + 1; }
    fn main() {
      let t = spawn noise();
      x = 1;
      x = x + 1;
      join t;
      print x;
    }
  )";
  EXPECT_EQ(classify(Source, "x"), Verdict::ThreadLocal);
}

TEST(Classify, PreForkInitDoesNotDefeatLockConsistency) {
  const char *Source = R"(
    shared total;
    lock m;
    fn worker() { sync (m) { total = total + 1; } }
    fn main() {
      total = 10;            // unlocked, but pre-fork: happens-before all
      let a = spawn worker();
      let b = spawn worker();
      join a; join b;
      sync (m) { print total; }
    }
  )";
  EXPECT_EQ(classify(Source, "total"), Verdict::LockConsistent);
}

TEST(Classify, SpawnInLoopDefeatsThreadLocality) {
  // One static spawn site, many dynamic threads: 'tally' is touched by
  // every instance, unlocked, so it must stay instrumented.
  const char *Source = R"(
    shared tally;
    fn worker() { tally = tally + 1; }
    fn main() {
      local i = 0;
      while (i < 3) {
        let t = spawn worker();
        join t;
        i = i + 1;
      }
    }
  )";
  EXPECT_EQ(classify(Source, "tally"), Verdict::MustInstrument);
}

TEST(Classify, ReentrantAcquireStillCountsAsHeld) {
  // The inner sync(m) releases at its own brace; the lock-stack model
  // must keep m in the outer region's must-hold set afterwards.
  const char *Source = R"(
    shared x;
    lock m;
    fn worker() {
      sync (m) {
        sync (m) { x = x + 1; }
        x = x + 2;            // still under the outer m
      }
    }
    fn main() {
      let a = spawn worker();
      let b = spawn worker();
      join a; join b;
    }
  )";
  EXPECT_EQ(classify(Source, "x"), Verdict::LockConsistent);
}

TEST(Classify, DifferentLocksOnDifferentPathsMustInstrument) {
  // Each site is locked, but no single lock covers all of them — the
  // classic lockset-intersection failure, and a genuine race.
  const char *Source = R"(
    shared x;
    lock m1;
    lock m2;
    fn left() { sync (m1) { x = x + 1; } }
    fn right() { sync (m2) { x = x + 1; } }
    fn main() {
      let a = spawn left();
      let b = spawn right();
      join a; join b;
    }
  )";
  EXPECT_EQ(classify(Source, "x"), Verdict::MustInstrument);
}

TEST(Classify, ForkInsideCriticalSectionDoesNotInheritTheLock) {
  // main spawns while holding m; the child does NOT hold m, so x is not
  // lock-consistent (and really does race with main's locked access).
  const char *Source = R"(
    shared x;
    lock m;
    fn child() { x = x + 1; }
    fn main() {
      local t = 0;
      sync (m) {
        x = 1;
        t = spawn child();
      }
      join t;
    }
  )";
  EXPECT_EQ(classify(Source, "x"), Verdict::MustInstrument);
}

TEST(Classify, ForkInsideCriticalSectionChildWithOwnLockIsConsistent) {
  // Same shape, but the child takes m itself: every access holds m.
  const char *Source = R"(
    shared x;
    lock m;
    fn child() { sync (m) { x = x + 1; } }
    fn main() {
      local t = 0;
      sync (m) {
        x = 1;
        t = spawn child();
      }
      join t;
    }
  )";
  EXPECT_EQ(classify(Source, "x"), Verdict::LockConsistent);
}

TEST(Classify, ReadBeforeFirstLockedWriteMustInstrument) {
  // The worker peeks at x unlocked before entering the locked protocol;
  // that one read defeats consistency for the whole variable.
  const char *Source = R"(
    shared x;
    lock m;
    fn worker() {
      if (x > 0) {            // unlocked read
        sync (m) { x = x + 1; }
      }
    }
    fn main() {
      let a = spawn worker();
      let b = spawn worker();
      join a; join b;
    }
  )";
  EXPECT_EQ(classify(Source, "x"), Verdict::MustInstrument);
}

TEST(Classify, ArraysClassifyAsOneUnit) {
  // One racy element poisons the whole array (indices are not separated
  // statically).
  const char *Source = R"(
    shared buf[4];
    lock m;
    fn locked() { sync (m) { buf[0] = 1; } }
    fn unlocked() { buf[3] = 2; }
    fn main() {
      let a = spawn locked();
      let b = spawn unlocked();
      join a; join b;
    }
  )";
  EXPECT_EQ(classify(Source, "buf"), Verdict::MustInstrument);
}

TEST(Classify, VolatilesAreNeverElisionCandidates) {
  const char *Source = R"(
    shared x;
    volatile flag;
    fn worker() { x = 1; flag = 1; }
    fn main() {
      let t = spawn worker();
      while (flag == 0) { }
      print x;
      join t;
    }
  )";
  Program P = compileOrDie(Source);
  analysis::AnalysisResult R = analysis::analyzeProgram(P);
  for (const analysis::VarClass &V : R.Vars)
    EXPECT_NE(V.Name, "flag") << "volatiles must not be classified";
  for (const analysis::SiteReport &S : R.Sites)
    EXPECT_NE(S.Variable, "flag");
}

//===----------------------------------------------------------------------===//
// 2. Adversarial conservatism: late escape
//===----------------------------------------------------------------------===//

namespace {

/// x looks main-private for a long prefix, then escapes to a thread
/// forked late. The pre-fork refinement must stop at the *first* spawn
/// in main, so every one of main's accesses after it stays effective.
const char *LateEscape = R"(
  shared x;
  fn noise() { local i = 0; i = i + 1; }
  fn late() { x = x + 100; }
  fn main() {
    x = 1;                     // pre-fork: genuinely safe
    let n = spawn noise();     // first spawn: refinement boundary
    x = x + 1;                 // post-fork main access, unlocked
    join n;
    let t = spawn late();      // x escapes HERE
    x = x + 1;                 // races with late()
    join t;
    print x;
  }
)";

} // namespace

TEST(LateEscape, VariableStaysInstrumented) {
  EXPECT_EQ(classify(LateEscape, "x"), Verdict::MustInstrument);
}

TEST(LateEscape, ElisionPreservesTheRaceOnEverySchedule) {
  Program Full = compileOrDie(LateEscape);
  Program Elided = compileOrDie(LateEscape);
  analysis::ElisionPlan Plan = analysis::applyElision(Elided);

  bool SawRace = false;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    InterpOptions Options;
    Options.Seed = Seed;
    InterpResult A = interpret(Full, Options);
    InterpResult B = interpret(Elided, Options);
    ASSERT_TRUE(A.Ok && B.Ok) << "seed " << Seed;
    EXPECT_EQ(warnedVars(A.EventTrace), warnedVars(B.EventTrace))
        << "seed " << Seed;
    SawRace |= !warnedVars(B.EventTrace).empty();
  }
  EXPECT_TRUE(SawRace) << "the adversarial program never raced — the "
                          "conservatism claim was not exercised";
  (void)Plan;
}

//===----------------------------------------------------------------------===//
// 3. Soundness harness over the corpus + the --no-elide guard
//===----------------------------------------------------------------------===//

namespace {

const char *CorpusFiles[] = {
    "philosophers.mc",   "bounded_buffer.mc", "stencil.mc",
    "readers_writer.mc", "double_checked.mc", "worker_ledger.mc",
};

} // namespace

class ElisionSoundness : public ::testing::TestWithParam<const char *> {
protected:
  std::string source() const {
    return readFileOrEmpty(std::string(FT_CORPUS_DIR) + "/" + GetParam());
  }
};

TEST_P(ElisionSoundness, WarningForWarningEquivalentToFullInstrumentation) {
  std::string Source = source();
  ASSERT_FALSE(Source.empty()) << GetParam();

  Program Full = compileOrDie(Source);
  Program Elided = compileOrDie(Source);
  analysis::applyElision(Elided);

  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    InterpOptions Options;
    Options.Seed = Seed;
    InterpResult A = interpret(Full, Options);
    InterpResult B = interpret(Elided, Options);
    ASSERT_TRUE(A.Ok) << GetParam() << " seed " << Seed;
    ASSERT_TRUE(B.Ok) << GetParam() << " seed " << Seed;

    // Elision must not perturb the program itself.
    EXPECT_EQ(A.Output, B.Output) << GetParam() << " seed " << Seed;
    EXPECT_EQ(A.Steps, B.Steps) << GetParam() << " seed " << Seed;
    EXPECT_EQ(A.EventsElided, 0u);
    EXPECT_EQ(B.EventTrace.size() + B.EventsElided, A.EventTrace.size())
        << GetParam() << " seed " << Seed
        << ": elision must only remove events, never add or reorder";

    // Warning-for-warning equivalence, and both match the exact HB
    // oracle on the fully instrumented trace.
    std::vector<VarId> Oracle = racyVars(A.EventTrace);
    std::sort(Oracle.begin(), Oracle.end());
    Oracle.erase(std::unique(Oracle.begin(), Oracle.end()), Oracle.end());
    EXPECT_EQ(warnedVars(A.EventTrace), Oracle)
        << GetParam() << " seed " << Seed;
    EXPECT_EQ(warnedVars(B.EventTrace), Oracle)
        << GetParam() << " seed " << Seed;
  }
}

TEST_P(ElisionSoundness, NoElideRestoresTheExactEventStream) {
  std::string Source = source();
  ASSERT_FALSE(Source.empty()) << GetParam();

  Program Pristine = compileOrDie(Source);
  Program Toggled = compileOrDie(Source);

  // Elide, then retract with the --no-elide path; the stamps must all
  // clear, not linger.
  analysis::applyElision(Toggled);
  analysis::ElisionOptions Off;
  Off.Enabled = false;
  analysis::applyElision(Toggled, Off);

  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    InterpOptions Options;
    Options.Seed = Seed;
    InterpResult A = interpret(Pristine, Options);
    InterpResult B = interpret(Toggled, Options);
    ASSERT_TRUE(A.Ok && B.Ok) << GetParam() << " seed " << Seed;
    EXPECT_EQ(B.EventsElided, 0u) << GetParam() << " seed " << Seed;
    ASSERT_EQ(A.EventTrace.size(), B.EventTrace.size())
        << GetParam() << " seed " << Seed;
    for (size_t I = 0; I != A.EventTrace.size(); ++I)
      ASSERT_EQ(A.EventTrace[I], B.EventTrace[I])
          << GetParam() << " seed " << Seed << " op " << I;
    EXPECT_EQ(A.Output, B.Output) << GetParam() << " seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ElisionSoundness,
                         ::testing::ValuesIn(CorpusFiles),
                         [](const ::testing::TestParamInfo<const char *>
                                &Info) {
                           std::string Name = Info.param;
                           Name.resize(Name.size() - 3); // drop ".mc"
                           for (char &C : Name)
                             if (!std::isalnum(
                                     static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

//===----------------------------------------------------------------------===//
// Plan telemetry
//===----------------------------------------------------------------------===//

TEST(ElisionPlan, WorkerLedgerElidesEverything) {
  std::string Source =
      readFileOrEmpty(std::string(FT_CORPUS_DIR) + "/worker_ledger.mc");
  ASSERT_FALSE(Source.empty());
  Program P = compileOrDie(Source);
  analysis::ElisionPlan Plan = analysis::applyElision(P);

  EXPECT_EQ(Plan.VarsMustInstrument, 0u);
  EXPECT_EQ(Plan.VarsThreadLocal, 2u);    // tallyA, tallyB
  EXPECT_EQ(Plan.VarsLockConsistent, 1u); // total
  EXPECT_EQ(Plan.SitesElided, Plan.SitesTotal);
  EXPECT_GT(Plan.SitesTotal, 0u);

  InterpResult Run = interpret(P);
  ASSERT_TRUE(Run.Ok);
  EXPECT_EQ(Run.Output, "50\n");
  EXPECT_GT(Run.EventsElided, 0u);
  // The headline claim: most of this program's events are accesses to
  // proven-race-free data, and they all disappear.
  double Saved = (double)Run.EventsElided /
                 (double)(Run.EventsElided + Run.EventTrace.size());
  EXPECT_GE(Saved, 0.30);
}

TEST(ElisionPlan, AblationKnobsKeepChosenVerdictsInstrumented) {
  std::string Source =
      readFileOrEmpty(std::string(FT_CORPUS_DIR) + "/worker_ledger.mc");
  ASSERT_FALSE(Source.empty());
  Program P = compileOrDie(Source);

  analysis::ElisionOptions OnlyLocks;
  OnlyLocks.ElideThreadLocal = false;
  analysis::ElisionPlan Plan = analysis::applyElision(P, OnlyLocks);
  EXPECT_GT(Plan.SitesElided, 0u);
  EXPECT_LT(Plan.SitesElided, Plan.SitesTotal);

  InterpResult Run = interpret(P);
  ASSERT_TRUE(Run.Ok);
  // The thread-local tallies now emit again; the trace must still be
  // race-free and the program output unchanged.
  EXPECT_EQ(Run.Output, "50\n");
  EXPECT_TRUE(warnedVars(Run.EventTrace).empty());
}
