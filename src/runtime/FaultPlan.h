//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the online runtime.
///
/// The resilience machinery of Engine.h — the degradation ladder, the
/// sequencer watchdog, tool quarantine, crash-safe capture — only earns
/// trust if every rung and recovery transition is exercised by a
/// reproducible test rather than by luck. A FaultPlan describes *where*
/// in the merged stream misbehavior strikes, keyed on global ticket
/// numbers (the one coordinate that is deterministic across runs of the
/// same workload schedule) and raw op indices:
///
///  - **Sequencer stalls/deaths.** The sequencer busy-waits instead of
///    merging ticket StallAtTicket, as if wedged in a slow consumer; it
///    only resumes when the supervisor abandons it (restart) — so each
///    armed stall consumes one watchdog recovery. Arm it twice to drive
///    the restart-then-downgrade path.
///  - **Ring-full storms.** Every delivered event in a ticket window is
///    slowed by a fixed delay, backing events up into the producers'
///    rings until they park — the overload that walks the ladder.
///  - **Allocation failures.** A budget probe is forced to report a
///    shadow-memory breach at a chosen raw op (forwarded to
///    OnlineDriverOptions::ForceBudgetBreachAtRawOp).
///  - **Tool exceptions.** ThrowAfterTool wraps any Tool and throws from
///    a chosen access handler call — the quarantine scenario.
///
/// The stall counter is mutable because the plan is observed from the
/// sequencer thread while tests hold it by const pointer; it is the only
/// mutable state and is internally synchronized.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_RUNTIME_FAULTPLAN_H
#define FASTTRACK_RUNTIME_FAULTPLAN_H

#include "framework/Tool.h"

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ft::runtime {

/// Where misbehavior strikes one online session. Default-constructed, a
/// plan injects nothing.
struct FaultPlan {
  static constexpr uint64_t None = ~0ull;

  /// The sequencer busy-waits instead of merging this ticket, until the
  /// supervisor abandons the thread. NOTE: with no supervisor
  /// (SupervisorOptions::Enabled = false) an armed stall wedges the
  /// session forever — exactly the failure the watchdog exists for.
  uint64_t StallAtTicket = None;

  /// How many times the stall re-arms: the restarted sequencer hits the
  /// same un-merged ticket again, so 2 drives stall → restart → stall →
  /// restart + rung downgrade.
  mutable std::atomic<unsigned> StallsArmed{0};

  /// Ring-full storm: each event *delivered* while the next ticket lies
  /// in [DelayFromTicket, DelayToTicket) costs this many microseconds in
  /// the sequencer, simulating a slow consumer.
  uint64_t DelayFromTicket = None;
  uint64_t DelayToTicket = None;
  unsigned DelayPerDeliveryUs = 0;

  /// Forwarded to OnlineDriverOptions::ForceBudgetBreachAtRawOp: the
  /// first budget probe at or after this raw op reports a breach.
  uint64_t ForceBudgetBreachAtRawOp = None;

  /// Real allocation-failure injection inside the governed shadow table
  /// (forwarded to ShadowMemoryPolicy::FailPageAllocAt): the Nth shadow
  /// page allocation attempt is denied, exercising the zero-allocation
  /// summarized-page fallback. Setting either shadow fault forces
  /// OnlineOptions::Degrade.Memory.Enabled for the session.
  uint64_t FailShadowPageAllocAt = None;

  /// Same for fresh side-store growth (ShadowMemoryPolicy::FailInflateAt):
  /// the Nth new clock allocation is denied, exercising shed-and-recycle
  /// before the growth fallback.
  uint64_t FailSideStoreInflateAt = None;

  FaultPlan() = default;
  FaultPlan(const FaultPlan &) = delete;
  FaultPlan &operator=(const FaultPlan &) = delete;

  /// True when the sequencer should stall before merging \p Ticket.
  /// Consumes one armed stall.
  bool takeStall(uint64_t Ticket) const {
    if (Ticket != StallAtTicket)
      return false;
    unsigned Armed = StallsArmed.load(std::memory_order_relaxed);
    while (Armed != 0) {
      if (StallsArmed.compare_exchange_weak(Armed, Armed - 1,
                                            std::memory_order_relaxed))
        return true;
    }
    return false;
  }

  /// True when a delivery at \p Ticket falls inside the storm window.
  bool inStorm(uint64_t Ticket) const {
    return DelayPerDeliveryUs != 0 && Ticket >= DelayFromTicket &&
           Ticket < DelayToTicket;
  }

  // --- sharded-engine faults (OnlineOptions::Shards > 1) ---

  /// Shard whose worker stalls. Per-thread tickets are invisible to shard
  /// workers (they drain raw-indexed routed events), so shard stalls are
  /// keyed on the raw op index instead: worker StallShard busy-waits
  /// before dispatching the first routed event with Seq >=
  /// StallShardAtRaw, until the supervisor restarts it. Sibling shards
  /// keep draining throughout — that isolation is the scenario under
  /// test.
  unsigned StallShard = 0;
  uint64_t StallShardAtRaw = None;

  /// How many times the shard stall re-arms (mirrors StallsArmed).
  mutable std::atomic<unsigned> ShardStallsArmed{0};

  /// True when shard \p Shard should stall before dispatching the routed
  /// event with raw index \p RawIndex — non-consuming, so a restarted
  /// worker re-checking the same wedged batch position stays wedged until
  /// takeShardStall() disarms it.
  bool shardStallHits(unsigned Shard, uint64_t RawIndex) const {
    return Shard == StallShard && StallShardAtRaw != None &&
           RawIndex >= StallShardAtRaw &&
           ShardStallsArmed.load(std::memory_order_relaxed) != 0;
  }

  /// Consumes one armed shard stall (the worker calls this as it enters
  /// the busy-wait; the supervisor's restart then finds the stall
  /// disarmed and the resumed worker proceeds).
  bool takeShardStall(unsigned Shard, uint64_t RawIndex) const {
    if (!shardStallHits(Shard, RawIndex))
      return false;
    unsigned Armed = ShardStallsArmed.load(std::memory_order_relaxed);
    while (Armed != 0) {
      if (ShardStallsArmed.compare_exchange_weak(Armed, Armed - 1,
                                                 std::memory_order_relaxed))
        return true;
    }
    return false;
  }
};

/// Tool decorator that forwards every event to \p Inner and throws from
/// the Nth access handler call — the misbehaving member of a composition.
/// Compose it into a ToolGroup to test quarantine, or hand it straight to
/// an Engine to test the driver's halt-with-ToolFault backstop.
class ThrowAfterTool : public Tool {
public:
  ThrowAfterTool(Tool &Inner, uint64_t ThrowAtAccess)
      : Inner(Inner), ThrowAt(ThrowAtAccess) {}

  const char *name() const override { return "ThrowAfter"; }
  void begin(const ToolContext &Context) override { Inner.begin(Context); }
  void end() override { Inner.end(); }

  bool onRead(ThreadId T, VarId X, size_t OpIndex) override {
    detonate();
    return Inner.onRead(T, X, OpIndex);
  }
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override {
    detonate();
    return Inner.onWrite(T, X, OpIndex);
  }
  void onAcquire(ThreadId T, LockId M, size_t OpIndex) override {
    Inner.onAcquire(T, M, OpIndex);
  }
  void onRelease(ThreadId T, LockId M, size_t OpIndex) override {
    Inner.onRelease(T, M, OpIndex);
  }
  void onFork(ThreadId T, ThreadId U, size_t OpIndex) override {
    Inner.onFork(T, U, OpIndex);
  }
  void onJoin(ThreadId T, ThreadId U, size_t OpIndex) override {
    Inner.onJoin(T, U, OpIndex);
  }
  void onVolatileRead(ThreadId T, VolatileId V, size_t OpIndex) override {
    Inner.onVolatileRead(T, V, OpIndex);
  }
  void onVolatileWrite(ThreadId T, VolatileId V, size_t OpIndex) override {
    Inner.onVolatileWrite(T, V, OpIndex);
  }
  size_t shadowBytes() const override { return Inner.shadowBytes(); }

  /// Accesses seen before the bang.
  uint64_t accessesSeen() const { return Seen; }

private:
  void detonate() {
    if (Seen++ == ThrowAt)
      throw std::runtime_error("injected tool fault at access " +
                               std::to_string(ThrowAt));
  }

  Tool &Inner;
  uint64_t ThrowAt;
  uint64_t Seen = 0;
};

} // namespace ft::runtime

#endif // FASTTRACK_RUNTIME_FAULTPLAN_H
