//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Operation type: one event of a multithreaded program trace.
///
/// This realizes Figure 1 of the paper, extended with the operations the
/// implementation section adds: volatile reads/writes, barrier releases,
/// and atomic-block markers (consumed by the downstream atomicity and
/// determinism checkers of Section 5.2, ignored by race detectors).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_OPERATION_H
#define FASTTRACK_TRACE_OPERATION_H

#include "trace/Ids.h"

#include <string>

namespace ft {

/// The kind of a trace operation.
enum class OpKind : uint8_t {
  Read,          ///< rd(t, x)
  Write,         ///< wr(t, x)
  Acquire,       ///< acq(t, m)
  Release,       ///< rel(t, m)
  Fork,          ///< fork(t, u): thread t forks thread u
  Join,          ///< join(t, u): thread t joins thread u
  VolatileRead,  ///< vol_rd(t, vx)
  VolatileWrite, ///< vol_wr(t, vx)
  Barrier,       ///< barrier_rel(T): thread set index in Aux
  AtomicBegin,   ///< begin of an atomic block of thread t
  AtomicEnd,     ///< end of an atomic block of thread t
};

/// Returns the mnemonic used in the trace text format, e.g. "rd".
const char *opKindName(OpKind Kind);

/// Returns true for rd/wr (the operations race detectors check).
inline bool isAccess(OpKind Kind) {
  return Kind == OpKind::Read || Kind == OpKind::Write;
}

/// Returns true for operations that target another thread (fork/join).
inline bool isThreadOp(OpKind Kind) {
  return Kind == OpKind::Fork || Kind == OpKind::Join;
}

/// Returns true for acq/rel.
inline bool isLockOp(OpKind Kind) {
  return Kind == OpKind::Acquire || Kind == OpKind::Release;
}

/// Returns true for vol_rd/vol_wr.
inline bool isVolatileOp(OpKind Kind) {
  return Kind == OpKind::VolatileRead || Kind == OpKind::VolatileWrite;
}

/// One event of a trace. 12 bytes; traces hold millions of these.
struct Operation {
  OpKind Kind;
  /// The thread performing the operation. For Barrier this is the lowest
  /// thread id in the released set (the full set lives in the trace's
  /// barrier-set table).
  ThreadId Thread;
  /// Target entity: VarId for accesses, LockId for lock ops, ThreadId for
  /// fork/join, VolatileId for volatile ops, barrier-set index for Barrier,
  /// NoTarget for atomic markers.
  uint32_t Target;

  Operation() : Kind(OpKind::Read), Thread(0), Target(NoTarget) {}
  Operation(OpKind Kind, ThreadId Thread, uint32_t Target)
      : Kind(Kind), Thread(Thread), Target(Target) {}

  friend bool operator==(const Operation &A, const Operation &B) {
    return A.Kind == B.Kind && A.Thread == B.Thread && A.Target == B.Target;
  }
};

/// Convenience constructors mirroring the paper's notation.
inline Operation rd(ThreadId T, VarId X) {
  return Operation(OpKind::Read, T, X);
}
inline Operation wr(ThreadId T, VarId X) {
  return Operation(OpKind::Write, T, X);
}
inline Operation acq(ThreadId T, LockId M) {
  return Operation(OpKind::Acquire, T, M);
}
inline Operation rel(ThreadId T, LockId M) {
  return Operation(OpKind::Release, T, M);
}
inline Operation fork(ThreadId T, ThreadId U) {
  return Operation(OpKind::Fork, T, U);
}
inline Operation join(ThreadId T, ThreadId U) {
  return Operation(OpKind::Join, T, U);
}
inline Operation volRd(ThreadId T, VolatileId V) {
  return Operation(OpKind::VolatileRead, T, V);
}
inline Operation volWr(ThreadId T, VolatileId V) {
  return Operation(OpKind::VolatileWrite, T, V);
}
inline Operation atomicBegin(ThreadId T) {
  return Operation(OpKind::AtomicBegin, T, NoTarget);
}
inline Operation atomicEnd(ThreadId T) {
  return Operation(OpKind::AtomicEnd, T, NoTarget);
}

/// Renders an operation like "rd(1,x4)" for diagnostics.
std::string toString(const Operation &Op);

} // namespace ft

#endif // FASTTRACK_TRACE_OPERATION_H
